// Command bbscenario runs declarative counterfactual scenario packs
// against the reproduction registry, opa-test-style: the baseline world
// plus one delta world per pack at every seed, one PASS/FAIL line per
// expectation, summary counts, exit 1 on any FAIL.
//
// Usage:
//
//	bbscenario -all                           # run testdata/scenarios/
//	bbscenario -all -run 'cap-'               # filter packs by regexp
//	bbscenario -all -json report.json         # machine-readable report
//	bbscenario testdata/scenarios/cap-removal.json
package main

import (
	"os"

	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/scenario"
)

func main() {
	ctx, stop := cli.Context()
	defer stop()
	os.Exit(scenario.Main(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
