// Command bbgen generates the study's three synthetic datasets (end-host
// panel, gateway panel, retail-plan survey) and writes them as CSV files.
//
// Usage:
//
//	bbgen -out data/ -seed 1 -users 8000 -fcc 2000 -days 3 -switches 2000
//
// The output directory receives users.csv, switches.csv and plans.csv in
// the schema documented in internal/dataset.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/cli"
)

func main() {
	var (
		out      = flag.String("out", "data", "output directory for the CSV files")
		seed     = flag.Uint64("seed", 1, "world seed (all data is deterministic in it)")
		users    = flag.Int("users", 8000, "end-host users in the primary year")
		fcc      = flag.Int("fcc", 2000, "US gateway-panel users")
		days     = flag.Int("days", 3, "observation days simulated per user")
		switches = flag.Int("switches", 2000, "service-upgrade records")
		minPer   = flag.Int("min-per-country", 30, "minimum primary-year users per country")
		ndt      = flag.Bool("ndt", false, "measure every line with the packet-level simulator (slow)")
		workers  = flag.Int("workers", 0, "concurrent generation workers (0 = GOMAXPROCS, 1 = sequential; output is identical either way)")
		gz       = flag.Bool("gzip", false, "write gzip-compressed CSVs (users.csv.gz etc.; bbrepro -data reads either)")
		shards   = flag.Int("shards", 0, "write the user panel out-of-core as N shard files (users-00000-of-0000N.csv …); 0 builds in memory. Resident memory stays bounded regardless of -users")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels generation and the save; writes are atomic,
	// so an interrupted bbgen leaves no partial table files behind.
	ctx, stop := cli.Context()
	defer stop()

	cfg := broadband.WorldConfig{
		Seed:          *seed,
		Users:         *users,
		FCCUsers:      *fcc,
		Days:          *days,
		SwitchTarget:  *switches,
		MinPerCountry: *minPer,
		Workers:       *workers,
	}
	if *ndt {
		cfg.Measurement = broadband.MeasureNDT
	}
	start := time.Now()
	if *shards > 0 {
		fmt.Fprintf(os.Stderr, "bbgen: generating world out-of-core (seed=%d, users=%d, shards=%d)...\n", *seed, *users, *shards)
		rep, err := broadband.BuildWorldSharded(ctx, cfg, broadband.ShardSpec{Dir: *out, Shards: *shards, Gzip: *gz})
		if err != nil {
			cli.Exit("bbgen", err, 1)
		}
		if n := rep.SkippedHouseholds(); n > 0 {
			fmt.Fprintf(os.Stderr, "bbgen: %d households skipped (no affordable plan after every redraw)\n", n)
		}
		fmt.Fprintf(os.Stderr, "bbgen: wrote %d users (%d shards), %d switches, %d plans to %s in %v (peak RSS %s)\n",
			rep.Users, len(rep.ShardFiles), rep.Switches, rep.Plans, *out,
			time.Since(start).Round(time.Millisecond), cli.PeakRSS())
		return
	}
	fmt.Fprintf(os.Stderr, "bbgen: generating world (seed=%d, users=%d)...\n", *seed, *users)
	world, err := broadband.BuildWorldCtx(ctx, cfg)
	if err != nil {
		cli.Exit("bbgen", err, 1)
	}
	if n := world.SkippedHouseholds(); n > 0 {
		fmt.Fprintf(os.Stderr, "bbgen: %d households skipped (no affordable plan after every redraw)\n", n)
	}
	if err := broadband.SaveDatasetCtx(ctx, &world.Data, *out, broadband.SaveOptions{Gzip: *gz, Workers: *workers}); err != nil {
		cli.Exit("bbgen", err, 1)
	}
	fmt.Fprintf(os.Stderr, "bbgen: wrote %d users, %d switches, %d plans to %s in %v\n",
		len(world.Data.Users), len(world.Data.Switches), len(world.Data.Plans), *out,
		time.Since(start).Round(time.Millisecond))
}
