// Command bbverify is the regression gate for the reproduction: it
// regenerates every registry artifact at the default (or given) world
// configuration, serializes each to its canonical JSON form, diffs the
// result against the checked-in goldens under testdata/golden/, and
// evaluates the assertion manifest that encodes EXPERIMENTS.md's shape
// scorecard. Any drift or violated assertion exits nonzero with a
// per-artifact report naming the drifted fields.
//
// Usage:
//
//	bbverify                          # verify goldens + assertions at the default world
//	bbverify -update                  # regenerate testdata/golden/ from this tree
//	bbverify -report drift.json       # also write the machine-readable drift report
//	bbverify -users 8000 -golden /tmp/g -manifest ""   # custom world, goldens only
//
// Exit status: 0 when everything verifies, 1 on drift or assertion
// violations, 2 when the harness itself fails (generation or an artifact
// erroring out).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/fsx"
	"github.com/nwca/broadband/internal/golden"
	"github.com/nwca/broadband/internal/par"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 20140705, "world seed")
		users    = flag.Int("users", 5000, "end-host users in the primary year")
		fcc      = flag.Int("fcc", 1200, "US gateway-panel users")
		days     = flag.Int("days", 2, "observation days per user")
		switches = flag.Int("switches", 900, "service-upgrade records")
		minPer   = flag.Int("min-per-country", 30, "minimum primary-year users per country")
		workers  = flag.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		dataDir  = flag.String("data", "", "verify a dataset directory written by bbgen instead of generating a world")
		dir      = flag.String("golden", "testdata/golden", "golden artifact directory")
		manifest = flag.String("manifest", "testdata/assertions.json", "assertion manifest (empty to skip assertions)")
		update   = flag.Bool("update", false, "regenerate the golden files instead of verifying them")
		report   = flag.String("report", "", "also write the JSON drift report to this file")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bbverify: "+format+"\n", args...)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels generation and the fan-out; golden and
	// report writes are atomic, so an interrupted -update cannot leave a
	// half-written golden.
	ctx, stop := cli.Context()
	defer stop()

	start := time.Now()
	var data *broadband.Dataset
	if *dataDir != "" {
		loaded, err := broadband.LoadDataset(*dataDir)
		if err != nil {
			fail("%v", err)
		}
		data = loaded
	} else {
		world, err := broadband.BuildWorldCtx(ctx, broadband.WorldConfig{
			Seed:          *seed,
			Users:         *users,
			FCCUsers:      *fcc,
			Days:          *days,
			SwitchTarget:  *switches,
			MinPerCountry: *minPer,
			Workers:       *workers,
		})
		if err != nil {
			cli.Exit("bbverify", err, 2)
		}
		data = &world.Data
	}

	entries := broadband.Experiments()
	arts := make([]golden.Artifact, len(entries))
	runErrs := make([]error, len(entries))
	ctxErr := par.ForNCtx(ctx, par.Workers(*workers), len(entries), func(i int) error {
		rep, err := broadband.Run(entries[i].ID, data, *seed)
		arts[i] = golden.Artifact{ID: entries[i].ID, Obj: rep}
		runErrs[i] = err
		return nil
	})
	if ctxErr != nil {
		cli.Exit("bbverify", ctxErr, 2)
	}
	for i, e := range entries {
		if runErrs[i] != nil {
			fail("%s: %v", e.ID, runErrs[i])
		}
	}
	fmt.Fprintf(os.Stderr, "bbverify: %d artifacts regenerated in %v (seed=%d, users=%d)\n",
		len(arts), time.Since(start).Round(time.Millisecond), *seed, len(data.Users))

	var m *golden.Manifest
	if *manifest != "" {
		loaded, err := golden.LoadManifest(*manifest)
		if err != nil {
			fail("%v", err)
		}
		m = loaded
	}

	if *update {
		if err := golden.Update(arts, *dir); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "bbverify: wrote %d goldens to %s\n", len(arts), *dir)
	}

	r, err := golden.Verify(arts, *dir, m)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(r.Render())
	if *report != "" {
		if err := fsx.RetryWrite(context.Background(), fsx.RetryPolicy{}, *report, r.JSON(), 0o644); err != nil {
			fail("%v", err)
		}
	}
	if !r.OK() {
		fmt.Fprintf(os.Stderr, "bbverify: %d of %d artifacts drifted or violated assertions\n",
			r.Failed(), len(r.Artifacts))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bbverify: all %d artifacts verified\n", len(r.Artifacts))
}
