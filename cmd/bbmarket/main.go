// Command bbmarket explores the synthetic retail broadband market world:
// per-country plan catalogs, the two market price metrics (access price and
// upgrade cost), and regional summaries.
//
// Usage:
//
//	bbmarket                 # summary table of every market
//	bbmarket -country JP     # one country's catalog and metrics
//	bbmarket -regions        # the Table 5 regional aggregation
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 20140705, "catalog generation seed")
		country = flag.String("country", "", "show one country's catalog (ISO code)")
		regions = flag.Bool("regions", false, "show regional upgrade-cost shares")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM stops the per-country sweep at the next market.
	ctx, stop := cli.Context()
	defer stop()

	profiles := market.World()
	catalogs := market.BuildAllCatalogs(profiles, randx.New(*seed).Split("catalogs"))

	if *country != "" {
		cat, ok := catalogs[*country]
		if !ok {
			fmt.Fprintf(os.Stderr, "bbmarket: unknown country %q\n", *country)
			os.Exit(1)
		}
		sum, err := market.Summarize(cat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbmarket: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s (%s) — %s\n", cat.Country.Name, cat.Country.Code, cat.Country.Region)
		fmt.Printf("GDP per capita (PPP): $%.0f\n", cat.Country.GDPPerCapitaPPP)
		fmt.Printf("access price:  %v/month (group %v)\n", sum.AccessPrice, sum.AccessGroup)
		fmt.Printf("upgrade cost:  %v (r=%.2f over %d plans, reliable=%v)\n\n",
			sum.Upgrade.Slope, sum.Upgrade.R, sum.Upgrade.N, sum.Upgrade.Reliable())
		for _, p := range cat.Plans {
			fmt.Printf("  %v\n", p)
		}
		return
	}

	if *regions {
		type agg struct{ n, o1, o5, o10 int }
		byRegion := map[market.Region]*agg{}
		for _, cat := range catalogs {
			sum, err := market.Summarize(cat)
			if err != nil || !sum.Upgrade.Reliable() {
				continue
			}
			a := byRegion[sum.Country.Region]
			if a == nil {
				a = &agg{}
				byRegion[sum.Country.Region] = a
			}
			a.n++
			s := float64(sum.Upgrade.Slope)
			if s > 1 {
				a.o1++
			}
			if s > 5 {
				a.o5++
			}
			if s > 10 {
				a.o10++
			}
		}
		fmt.Printf("%-28s %4s %6s %6s %6s\n", "Region", "n", ">$1", ">$5", ">$10")
		for _, r := range market.Regions() {
			a := byRegion[r]
			if a == nil {
				continue
			}
			fmt.Printf("%-28s %4d %5.0f%% %5.0f%% %5.0f%%\n", r, a.n,
				100*float64(a.o1)/float64(a.n), 100*float64(a.o5)/float64(a.n), 100*float64(a.o10)/float64(a.n))
		}
		return
	}

	codes := make([]string, 0, len(catalogs))
	for cc := range catalogs {
		codes = append(codes, cc)
	}
	sort.Strings(codes)
	fmt.Printf("%-4s %-22s %-28s %10s %14s %6s\n", "cc", "country", "region", "access", "upgrade", "plans")
	for _, cc := range codes {
		if err := ctx.Err(); err != nil {
			cli.Exit("bbmarket", err, 1)
		}
		cat := catalogs[cc]
		sum, err := market.Summarize(cat)
		if err != nil {
			continue
		}
		fmt.Printf("%-4s %-22s %-28s %10v %14v %6d\n",
			cc, cat.Country.Name, cat.Country.Region, sum.AccessPrice, sum.Upgrade.Slope, len(cat.Plans))
	}
}
