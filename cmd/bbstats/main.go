// Command bbstats computes the streaming characterization overview (the
// online analogue of the paper's Fig. 1) over a dataset directory — the
// monolithic users.csv(.gz) or an out-of-core shard set — in one pass with
// bounded resident memory.
//
// Usage:
//
//	bbstats -data data/                 # human-readable overview
//	bbstats -data data/ -json           # canonical JSON artifact
//	bbstats -data data/ -maxrss-mb 512  # fail if peak RSS exceeds budget
//
// -maxrss-mb makes the process its own memory harness: after the pass it
// reads the kernel's high-water RSS and exits nonzero over budget. CI's
// out-of-core smoke drives a 1M-user shard set through this gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/experiments"
	"github.com/nwca/broadband/internal/golden"
)

func main() {
	var (
		data     = flag.String("data", "data", "dataset directory (monolithic or sharded users table)")
		asJSON   = flag.Bool("json", false, "emit the overview as canonical JSON instead of text")
		maxRSSMB = flag.Int64("maxrss-mb", 0, "fail when peak RSS exceeds this budget in MiB (0 = no budget)")
	)
	flag.Parse()

	us, err := dataset.StreamUsersDir(*data)
	if err != nil {
		cli.Exit("bbstats", err, 1)
	}
	overview, err := experiments.OverviewFromSource(us)
	if cerr := us.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cli.Exit("bbstats", err, 1)
	}

	if *asJSON {
		raw, err := golden.Marshal(overview)
		if err != nil {
			cli.Exit("bbstats", err, 1)
		}
		os.Stdout.Write(raw)
		fmt.Println()
	} else {
		fmt.Print(overview.Render())
	}

	fmt.Fprintf(os.Stderr, "bbstats: %d users streamed from %s, peak RSS %s\n", overview.Users, *data, cli.PeakRSS())
	if *maxRSSMB > 0 {
		peak := cli.PeakRSSBytes()
		if peak == 0 {
			cli.Exit("bbstats", fmt.Errorf("-maxrss-mb set but peak RSS is unreadable on this platform"), 1)
		}
		if budget := *maxRSSMB << 20; peak > budget {
			cli.Exit("bbstats", fmt.Errorf("peak RSS %s exceeds the %d MiB budget", cli.PeakRSS(), *maxRSSMB), 1)
		}
	}
}
