// Command bbchaos is the chaos harness: it perturbs a dataset with the
// deterministic fault injector, loads the damaged files through the
// quarantine layer, reruns the full experiment registry, and checks the
// scorecard still satisfies the assertion manifest. It answers, end to end,
// "how much measurement damage can the reproduction absorb before its
// conclusions move?"
//
// Usage:
//
//	bbchaos                          # default world, 1% faults
//	bbchaos -rate 0.05 -seed 7      # heavier damage, replayable by seed
//	bbchaos -data data/ -rate 0.01  # perturb a copy of an existing dataset
//	bbchaos -report chaos.json      # machine-readable injection+drift report
//
// The source dataset is never modified: faults are injected into a
// throwaway copy (-keep preserves it for inspection). Exit status: 0 when
// the damaged dataset loads within the error budget and every artifact
// satisfies the manifest's scale-invariant checks, 1 when the budget trips
// or an assertion fails, 2 when the harness itself fails, 130 on interrupt.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/chaos"
	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/fsx"
	"github.com/nwca/broadband/internal/golden"
)

// report is the machine-readable outcome written by -report.
type report struct {
	Seed       uint64                      `json:"seed"`
	Rate       float64                     `json:"rate"`
	Injected   *chaos.Log                  `json:"injected"`
	Quarantine *broadband.QuarantineReport `json:"quarantine,omitempty"`
	LoadError  string                      `json:"load_error,omitempty"`
	Violations map[string][]string         `json:"violations,omitempty"`
}

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "chaos seed (the fault pattern is a pure function of it)")
		rate      = flag.Float64("rate", 0.01, "per-row fault probability")
		truncate  = flag.Float64("truncate", 0, "per-table shard-truncation probability")
		corrupt   = flag.Float64("corrupt", 0, "per-table gzip-corruption probability (gzip datasets)")
		dataDir   = flag.String("data", "", "perturb a copy of this dataset directory instead of generating a world")
		worldSeed = flag.Uint64("world-seed", 20140705, "world seed when generating")
		users     = flag.Int("users", 2000, "end-host users when generating")
		fcc       = flag.Int("fcc", 500, "US gateway-panel users when generating")
		days      = flag.Int("days", 2, "observation days per user when generating")
		switches  = flag.Int("switches", 400, "service-upgrade records when generating")
		minPer    = flag.Int("min-per-country", 10, "minimum primary-year users per country when generating")
		badFrac   = flag.Float64("max-bad-frac", 0, "quarantine error budget as a bad-row fraction (0 = the default 5%)")
		manifest  = flag.String("manifest", "testdata/assertions.json", "assertion manifest (empty to skip the scorecard)")
		reportTo  = flag.String("report", "", "write the JSON injection+drift report to this file")
		keep      = flag.String("keep", "", "keep the perturbed dataset in this directory instead of a throwaway temp dir")
		workers   = flag.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := cli.Context()
	defer stop()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bbchaos: "+format+"\n", args...)
		os.Exit(2)
	}

	// Stage the pristine dataset in the work directory; the injector only
	// ever touches the copy.
	workDir := *keep
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "bbchaos-*")
		if err != nil {
			fail("%v", err)
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	} else if err := os.MkdirAll(workDir, 0o755); err != nil {
		fail("%v", err)
	}

	start := time.Now()
	if *dataDir != "" {
		if err := copyDataset(*dataDir, workDir); err != nil {
			fail("%v", err)
		}
	} else {
		world, err := broadband.BuildWorldCtx(ctx, broadband.WorldConfig{
			Seed:          *worldSeed,
			Users:         *users,
			FCCUsers:      *fcc,
			Days:          *days,
			SwitchTarget:  *switches,
			MinPerCountry: *minPer,
			Workers:       *workers,
		})
		if err != nil {
			cli.Exit("bbchaos", err, 2)
		}
		if err := broadband.SaveDatasetCtx(ctx, &world.Data, workDir, broadband.SaveOptions{Workers: *workers}); err != nil {
			cli.Exit("bbchaos", err, 2)
		}
	}

	in := chaos.New(chaos.Config{
		Seed:         *seed,
		Rate:         *rate,
		TruncateProb: *truncate,
		CorruptProb:  *corrupt,
	})
	log, err := in.PerturbDir(workDir)
	if err != nil {
		fail("injecting faults: %v", err)
	}
	fmt.Fprint(os.Stderr, log.Render())

	rep := &report{Seed: *seed, Rate: *rate, Injected: log}
	exit := func(code int) {
		if *reportTo != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fail("%v", err)
			}
			if err := fsx.RetryWrite(context.Background(), fsx.RetryPolicy{}, *reportTo, append(data, '\n'), 0o644); err != nil {
				fail("%v", err)
			}
		}
		os.Exit(code)
	}

	d, qrep, err := broadband.LoadDatasetRobust(workDir, broadband.QuarantineOptions{MaxBadFrac: *badFrac})
	rep.Quarantine = qrep
	if qrep != nil {
		fmt.Fprint(os.Stderr, qrep.Render())
	}
	if err != nil {
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			cli.Exit("bbchaos", err, 2)
		}
		rep.LoadError = err.Error()
		fmt.Fprintf(os.Stderr, "bbchaos: damaged dataset rejected: %v\n", err)
		exit(1)
	}

	if err := ctx.Err(); err != nil {
		cli.Exit("bbchaos", err, 2)
	}
	reports, err := broadband.RunAllWorkersCtx(ctx, d, *worldSeed, *workers)
	if err != nil {
		cli.Exit("bbchaos", err, 2)
	}

	violations := map[string][]string{}
	if *manifest != "" {
		m, err := golden.LoadManifest(*manifest)
		if err != nil {
			fail("%v", err)
		}
		for i, e := range broadband.Experiments() {
			v, err := golden.ToValue(reports[i])
			if err != nil {
				fail("%s: %v", e.ID, err)
			}
			// Only the scale-invariant subset is meaningful here: quarantined
			// rows shrink the population, so exact-value checks are expected
			// to move while signs and orderings must not.
			for _, viol := range golden.EvalChecks(v, m.Checks(e.ID), true) {
				violations[e.ID] = append(violations[e.ID], viol.String())
			}
		}
	}
	rep.Violations = violations
	fmt.Fprintf(os.Stderr, "bbchaos: %d artifacts recomputed on the damaged dataset in %v\n",
		len(reports), time.Since(start).Round(time.Millisecond))
	if len(violations) > 0 {
		for id, vs := range violations {
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "bbchaos: %s: %s\n", id, v)
			}
		}
		fmt.Fprintf(os.Stderr, "bbchaos: conclusions moved under fault rate %g (%d artifacts violated)\n", *rate, len(violations))
		exit(1)
	}
	fmt.Fprintf(os.Stderr, "bbchaos: scorecard intact under fault rate %g\n", *rate)
	exit(0)
}

// copyDataset copies the three table files (plain or .gz) from src into dst
// without touching src.
func copyDataset(src, dst string) error {
	copied := 0
	for _, base := range chaos.Tables {
		for _, name := range []string{base, base + ".gz"} {
			from, err := os.Open(filepath.Join(src, name))
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			if err != nil {
				return err
			}
			_, err = fsx.CopyAtomic(filepath.Join(dst, name), io.Reader(from))
			from.Close()
			if err != nil {
				return err
			}
			copied++
			break
		}
	}
	if copied != len(chaos.Tables) {
		return fmt.Errorf("bbchaos: %s does not hold a complete dataset (%d of %d tables)", src, copied, len(chaos.Tables))
	}
	return nil
}
