// Command bbbench records the repository's performance trajectory: it runs
// the canonical benchmark set (internal/bench) and writes a BENCH_<n>.json
// file — ns/op, allocs/op, B/op and MB/s per benchmark plus host metadata —
// that later commits compare against with -baseline.
//
// Usage:
//
//	bbbench                               # full set → BENCH_9.json
//	bbbench -set smoke -benchtime 100ms   # reduced CI set, shorter runs
//	bbbench -baseline BENCH_7.json        # also gate: exit 1 on >20% regression
//	bbbench -baseline auto                # gate against the newest BENCH_<n>.json
//	bbbench -baseline BENCH_7.json -tolerance 0.35
//	bbbench -list                         # enumerate specs and exit
//
// -baseline auto picks the committed BENCH_<n>.json with the highest index,
// compared numerically (BENCH_10 beats BENCH_6 — a lexical sort would get
// that backwards), and is resolved before the run writes -out, so a run can
// never gate against its own output. With no baseline present, auto
// records without gating.
//
// A regression is ns/op exceeding the baseline by more than the tolerance:
// cur > base × (1 + tolerance). Specs marked GateAllocs additionally hold
// allocs/op to the same rule — allocation counts on the gated hot paths
// (world build, experiment fan-out) are deterministic enough to gate on.
// Host metadata is recorded so trajectories from different machines are
// not mistaken for comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/nwca/broadband/internal/bench"
)

func main() {
	// Register the testing flags (-test.benchtime et al.) so bbbench can
	// forward its -benchtime to testing.Benchmark.
	testing.Init()
	var (
		out       = flag.String("out", "BENCH_9.json", "trajectory file to write")
		set       = flag.String("set", "full", "benchmark set: full or smoke")
		benchtime = flag.String("benchtime", "1s", "per-benchmark target time (or Nx iteration count)")
		baseline  = flag.String("baseline", "", "prior trajectory to compare against (or \"auto\" for the newest BENCH_<n>.json); regressions exit nonzero")
		tolerance = flag.Float64("tolerance", 0.20, "allowed relative slowdown vs -baseline (0.20 = 20%)")
		only      = flag.String("only", "", "run a single spec by name")
		list      = flag.Bool("list", false, "list specs and exit")
	)
	flag.Parse()

	specs, err := bench.Select(*set)
	if err != nil {
		fail(err)
	}
	if *list {
		for _, s := range specs {
			tag := ""
			if s.Smoke {
				tag = "  (smoke)"
			}
			fmt.Printf("%-22s%s\n", s.Name, tag)
		}
		return
	}
	if *only != "" {
		found := false
		for _, s := range specs {
			if s.Name == *only {
				specs = []bench.Spec{s}
				found = true
				break
			}
		}
		if !found {
			fail(fmt.Errorf("no spec named %q in set %q", *only, *set))
		}
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fail(fmt.Errorf("bad -benchtime: %w", err))
	}
	// Resolve the baseline before anything is written: -out may itself be a
	// BENCH_<n>.json, and "auto" must never pick the file this run creates.
	baselinePath := *baseline
	if baselinePath == "auto" {
		var err error
		baselinePath, err = bench.LatestBaseline(".")
		if err != nil {
			fail(err)
		}
		if baselinePath == "" {
			fmt.Fprintln(os.Stderr, "bbbench: no BENCH_<n>.json baseline found; recording without gating")
		} else {
			fmt.Fprintf(os.Stderr, "bbbench: gating against %s\n", baselinePath)
		}
	}

	traj := bench.NewTrajectory(time.Now())
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "bbbench: %s...\n", s.Name)
		r, err := bench.Measure(s)
		if err != nil {
			fail(err)
		}
		line := fmt.Sprintf("%-22s %10d iters %14.1f ns/op %9d allocs/op %12d B/op",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if r.MBPerS > 0 {
			line += fmt.Sprintf(" %10.1f MB/s", r.MBPerS)
		}
		fmt.Println(line)
		traj.Benchmarks = append(traj.Benchmarks, r)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := traj.Write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "bbbench: wrote %s (%d benchmarks)\n", *out, len(traj.Benchmarks))

	if baselinePath == "" {
		return
	}
	bf, err := os.Open(baselinePath)
	if err != nil {
		fail(err)
	}
	base, err := bench.ReadTrajectory(bf)
	bf.Close()
	if err != nil {
		fail(err)
	}
	if base.OS != traj.OS || base.Arch != traj.Arch {
		fmt.Fprintf(os.Stderr, "bbbench: warning: baseline host %s/%s differs from this host %s/%s; ns/op comparison is unreliable\n",
			base.OS, base.Arch, traj.OS, traj.Arch)
	}
	deltas, missing, err := bench.CompareGated(traj, base, *tolerance, bench.AllocGate(specs))
	if err != nil {
		fail(err)
	}
	// A baseline entry missing from the current run is a warning when some
	// other set still defines the spec (a smoke run against a full-set
	// baseline), and a failure when no spec anywhere does — a renamed or
	// deleted spec must retire its baseline entry explicitly, not silently.
	universe, err := bench.Select("full")
	if err != nil {
		fail(err)
	}
	unknown := make(map[string]bool)
	for _, name := range bench.MissingUnknown(missing, universe) {
		unknown[name] = true
	}
	for _, name := range missing {
		if unknown[name] {
			fmt.Fprintf(os.Stderr, "bbbench: baseline benchmark %q matches no current spec (renamed or dropped?)\n", name)
		} else {
			fmt.Fprintf(os.Stderr, "bbbench: warning: baseline benchmark %q not in this run (still defined in the full set)\n", name)
		}
	}
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		line := fmt.Sprintf("%-22s %14.1f -> %14.1f ns/op  (%.2fx)  %s",
			d.Name, d.BaseNs, d.CurNs, d.Ratio, verdict)
		if d.AllocGated {
			allocVerdict := "ok"
			if d.AllocRegressed {
				allocVerdict = "REGRESSED"
			}
			line += fmt.Sprintf("  | %d -> %d allocs/op (%.2fx) %s",
				d.BaseAllocs, d.CurAllocs, d.AllocRatio, allocVerdict)
		}
		fmt.Println(line)
	}
	failed := false
	if reg := bench.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "bbbench: %d of %d benchmarks regressed beyond %.0f%% of %s\n",
			len(reg), len(deltas), *tolerance*100, baselinePath)
		failed = true
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "bbbench: %d baseline benchmark(s) match no current spec; rename them in %s or record a new baseline\n",
			len(unknown), baselinePath)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bbbench: no regressions vs %s (tolerance %.0f%%)\n", baselinePath, *tolerance*100)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "bbbench: %v\n", err)
	os.Exit(2)
}
