// Command bbrepro regenerates every table and figure of the paper against a
// freshly generated synthetic world and prints the reproductions.
//
// Usage:
//
//	bbrepro                       # run everything at default world size
//	bbrepro -only "Table 2"       # one artifact
//	bbrepro -users 8000 -seed 7   # bigger world, different seed
//	bbrepro -list                 # enumerate artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/golden"
	"github.com/nwca/broadband/internal/par"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 20140705, "world seed")
		users    = flag.Int("users", 5000, "end-host users in the primary year")
		fcc      = flag.Int("fcc", 1200, "US gateway-panel users")
		days     = flag.Int("days", 2, "observation days per user")
		switches = flag.Int("switches", 900, "service-upgrade records")
		minPer   = flag.Int("min-per-country", 30, "minimum primary-year users per country")
		only     = flag.String("only", "", "run a single artifact, e.g. \"Table 2\" or \"Fig. 6\"")
		list     = flag.Bool("list", false, "list artifacts and exit")
		dataDir  = flag.String("data", "", "analyze a dataset directory written by bbgen instead of generating a world")
		ext      = flag.Bool("ext", false, "also run the extension analyses (beyond the paper's artifacts)")
		workers  = flag.Int("workers", 0, "concurrent workers for generation and experiments (0 = GOMAXPROCS, 1 = sequential)")
		verify   = flag.Bool("verify", false, "after printing, check artifacts against testdata/golden and the assertion manifest; exit nonzero on drift")
		golDir   = flag.String("golden", "testdata/golden", "golden directory for -verify")
		manifest = flag.String("manifest", "testdata/assertions.json", "assertion manifest for -verify (empty to skip assertions)")
	)
	flag.Parse()

	if *list {
		for _, e := range broadband.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		for _, e := range broadband.ExtensionExperiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	// Ctrl-C / SIGTERM cancels generation and the experiment fan-out.
	ctx, stop := cli.Context()
	defer stop()

	start := time.Now()
	var data *broadband.Dataset
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "bbrepro: loading dataset from %s...\n", *dataDir)
		loaded, err := broadband.LoadDataset(*dataDir)
		if err != nil {
			cli.Exit("bbrepro", err, 1)
		}
		data = loaded
	} else {
		fmt.Fprintf(os.Stderr, "bbrepro: generating world (seed=%d, users=%d)...\n", *seed, *users)
		world, err := broadband.BuildWorldCtx(ctx, broadband.WorldConfig{
			Seed:          *seed,
			Users:         *users,
			FCCUsers:      *fcc,
			Days:          *days,
			SwitchTarget:  *switches,
			MinPerCountry: *minPer,
			Workers:       *workers,
		})
		if err != nil {
			cli.Exit("bbrepro", err, 1)
		}
		if n := world.SkippedHouseholds(); n > 0 {
			fmt.Fprintf(os.Stderr, "bbrepro: %d households skipped (no affordable plan after every redraw)\n", n)
		}
		data = &world.Data
	}
	fmt.Fprintf(os.Stderr, "bbrepro: dataset ready in %v (%d users, %d switches, %d plans)\n\n",
		time.Since(start).Round(time.Millisecond),
		len(data.Users), len(data.Switches), len(data.Plans))

	if *only != "" {
		rep, err := broadband.Run(*only, data, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		return
	}
	entries := broadband.Experiments()
	if *ext {
		entries = append(entries, broadband.ExtensionExperiments()...)
	}
	// Fan the artifacts out over the worker pool; results are collected by
	// index so the printed order matches the registry whatever the worker
	// interleaving. Every failure is reported (not just the first) and any
	// failure makes the run exit non-zero. An experiment error does not stop
	// the others — only cancellation stops dispatch.
	reports := make([]broadband.Report, len(entries))
	errs := make([]error, len(entries))
	ctxErr := par.ForNCtx(ctx, par.Workers(*workers), len(entries), func(i int) error {
		reports[i], errs[i] = broadband.Run(entries[i].ID, data, *seed)
		return nil
	})
	if ctxErr != nil {
		cli.Exit("bbrepro", ctxErr, 1)
	}
	failed := 0
	for i, e := range entries {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %s: %v\n", e.ID, errs[i])
			failed++
			continue
		}
		fmt.Println(reports[i].Render())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bbrepro: %d of %d artifacts failed\n", failed, len(entries))
		os.Exit(1)
	}
	if *verify {
		// Only the paper's registry artifacts carry goldens; with -ext the
		// extension reports print above but are not gated.
		arts := make([]golden.Artifact, 0, len(entries))
		for i, e := range entries {
			if _, ok := broadband.FindExperiment(e.ID); ok {
				arts = append(arts, golden.Artifact{ID: e.ID, Obj: reports[i]})
			}
		}
		var m *golden.Manifest
		if *manifest != "" {
			loaded, err := golden.LoadManifest(*manifest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
				os.Exit(1)
			}
			m = loaded
		}
		r, err := golden.Verify(arts, *golDir, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, r.Render())
		if !r.OK() {
			fmt.Fprintf(os.Stderr, "bbrepro: verify: %d of %d artifacts drifted\n", r.Failed(), len(r.Artifacts))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bbrepro: verify: all %d artifacts match the goldens\n", len(r.Artifacts))
	}
}
