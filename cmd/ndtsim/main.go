// Command ndtsim runs one NDT-style measurement (RTT probe train, bulk TCP
// download and upload) over a configurable simulated access line and prints
// the result — a direct demo of the packet-level substrate.
//
// Usage:
//
//	ndtsim -down 10Mbps -up 1Mbps -rtt 40ms -loss 0.5 -duration 10
//	ndtsim -down 8Mbps -up 768kbps -rtt 600ms -loss 2 -burst   # satellite-ish
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/netsim"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

func main() {
	var (
		down     = flag.String("down", "10Mbps", "downstream capacity")
		up       = flag.String("up", "1Mbps", "upstream capacity")
		rtt      = flag.Duration("rtt", 40*time.Millisecond, "base round-trip time")
		lossPct  = flag.Float64("loss", 0.1, "stationary packet-loss percentage")
		burst    = flag.Bool("burst", false, "use a bursty (Gilbert–Elliott) loss channel")
		duration = flag.Float64("duration", 10, "seconds per throughput test (virtual time)")
		seed     = flag.Uint64("seed", 1, "random seed for the loss processes")
		loaded   = flag.Bool("loaded", false, "also measure latency under load (bufferbloat)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM stops between measurement phases (each phase runs in
	// virtual time and finishes in well under a second of wall clock).
	ctx, stop := cli.Context()
	defer stop()

	downRate, err := unit.ParseBitrate(*down)
	if err != nil {
		fatal(err)
	}
	upRate, err := unit.ParseBitrate(*up)
	if err != nil {
		fatal(err)
	}
	loss := unit.LossFromPercent(*lossPct)
	model := netsim.LossModel{Rate: loss}
	if *burst {
		// Two-thirds of the loss budget in 30%-lossy bursts.
		model = netsim.LossModel{
			Rate:       loss / 3,
			Burst:      true,
			PBadToGood: 0.2,
			PGoodToBad: 0.2 * (2 * float64(loss) / 3 / 0.3) / (1 - 2*float64(loss)/3/0.3),
			BadLoss:    0.3,
		}
	}
	oneWay := rtt.Seconds() / 2
	line := netsim.AccessLine{
		Down: netsim.LinkConfig{Rate: downRate, Delay: oneWay, Loss: model, Name: "down"},
		Up:   netsim.LinkConfig{Rate: upRate, Delay: oneWay, Loss: model, Name: "up"},
	}

	fmt.Printf("line: %v down / %v up, base RTT %v, loss %v (burst=%v)\n",
		downRate, upRate, *rtt, loss, *burst)
	if err := ctx.Err(); err != nil {
		cli.Exit("ndtsim", err, 1)
	}
	res, err := netsim.RunNDT(line, netsim.NDTConfig{Duration: *duration}, randx.New(*seed))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("download:     %v\n", res.DownloadRate)
	fmt.Printf("upload:       %v\n", res.UploadRate)
	fmt.Printf("rtt:          %.1f ms\n", res.RTT*1000)
	fmt.Printf("channel loss: %v\n", res.ChannelLoss)
	fmt.Printf("total loss:   %v (includes self-induced queue drops)\n", res.TotalLoss)
	st := res.DownStats
	fmt.Printf("down link:    %d sent, %d delivered, %d queue drops, %d channel drops\n",
		st.Sent, st.Delivered, st.DroppedQueue, st.DroppedLoss)
	mathis := netsim.MathisThroughput(1460*unit.Byte, res.RTT, res.ChannelLoss)
	fmt.Printf("mathis bound: %v\n", mathis)

	if *loaded {
		if err := ctx.Err(); err != nil {
			cli.Exit("ndtsim", err, 1)
		}
		lr, err := netsim.MeasureLoadedRTT(line, *duration, randx.New(*seed).Split("loaded"))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded rtt:   %.1f ms (×%.1f over idle %.1f ms, %d probes)\n",
			lr.LoadedRTT*1000, lr.Inflation, lr.IdleRTT*1000, lr.Probes)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ndtsim: %v\n", err)
	os.Exit(1)
}
