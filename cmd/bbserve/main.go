// Command bbserve runs the broadband-analytics server: panel uploads
// through the quarantine boundary, artifact queries for every registry
// entry, and ad-hoc scenario runs, behind per-request deadlines, admission
// control, and panic recovery. SIGINT/SIGTERM starts a graceful drain —
// readiness flips to 503, in-flight requests finish under the drain
// deadline — and the process exits 130 by the repo's interrupt convention.
//
//	bbserve -addr :8080 -store /var/lib/bbserve
//	curl -fsS localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/nwca/broadband/internal/cli"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "dataset storage directory (empty = in-memory)")
	maxInFlight := flag.Int("max-inflight", serve.DefaultMaxInFlight, "concurrent requests served before shedding with 429")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
	maxUpload := flag.Int64("max-upload", serve.DefaultMaxUploadBytes, "upload body cap in bytes")
	badFrac := flag.Float64("max-bad-frac", 0, "upload quarantine error budget (0 = default 5%)")
	flag.Parse()

	logger := log.New(os.Stderr, "bbserve: ", log.LstdFlags)

	var store serve.Store
	if *storeDir != "" {
		ds, err := serve.NewDiskStore(*storeDir)
		if err != nil {
			cli.Exit("bbserve", err, 1)
		}
		store = ds
	}

	srv := serve.New(serve.Config{
		Store:          store,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		MaxUploadBytes: *maxUpload,
		Quarantine:     dataset.QuarantineOptions{MaxBadFrac: *badFrac},
		Log:            logger,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          logger,
	}

	ctx, stop := cli.Context()
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("listening on %s (store=%s timeout=%s max-inflight=%d)",
		*addr, storeDesc(*storeDir), *timeout, *maxInFlight)

	select {
	case err := <-errc:
		cli.Exit("bbserve", err, 1)
	case <-ctx.Done():
	}

	// Signal received: drain requests, then shut the listener down, both
	// under the same deadline. Drain errors are reported but do not block
	// exit — the deadline is the promise.
	logger.Printf("signal received; draining (deadline %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	logger.Printf("drained; exiting")
	cli.Exit("bbserve", ctx.Err(), 1) // context.Canceled → exit 130
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return fmt.Sprintf("disk:%s", dir)
}
