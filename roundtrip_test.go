package broadband_test

import (
	"path/filepath"
	"testing"

	broadband "github.com/nwca/broadband"
)

// TestCSVRoundTripPreservesAnalyses checks the bbgen → bbrepro contract:
// an experiment computed on a freshly generated world and on the same world
// after a CSV save/load cycle must report identical results.
func TestCSVRoundTripPreservesAnalyses(t *testing.T) {
	world := apiTestWorld(t)
	dir := filepath.Join(t.TempDir(), "rt")
	if err := world.Data.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := broadband.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users) != len(world.Data.Users) || len(loaded.Switches) != len(world.Data.Switches) {
		t.Fatalf("round trip changed sizes: %d/%d users, %d/%d switches",
			len(loaded.Users), len(world.Data.Users), len(loaded.Switches), len(world.Data.Switches))
	}
	for _, id := range []string{"Table 1", "Fig. 1", "Fig. 10", "Table 5"} {
		orig, err := broadband.Run(id, &world.Data, 9)
		if err != nil {
			t.Fatalf("%s on original: %v", id, err)
		}
		back, err := broadband.Run(id, loaded, 9)
		if err != nil {
			t.Fatalf("%s on loaded: %v", id, err)
		}
		if orig.Render() != back.Render() {
			t.Errorf("%s differs after CSV round trip:\n--- original ---\n%s--- loaded ---\n%s",
				id, orig.Render(), back.Render())
		}
	}
}
