package broadband_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	broadband "github.com/nwca/broadband"
)

// TestCSVRoundTripPreservesAnalyses checks the bbgen → bbrepro contract:
// an experiment computed on a freshly generated world and on the same world
// after a CSV save/load cycle must report identical results.
func TestCSVRoundTripPreservesAnalyses(t *testing.T) {
	world := apiTestWorld(t)
	dir := filepath.Join(t.TempDir(), "rt")
	if err := world.Data.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := broadband.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users) != len(world.Data.Users) || len(loaded.Switches) != len(world.Data.Switches) {
		t.Fatalf("round trip changed sizes: %d/%d users, %d/%d switches",
			len(loaded.Users), len(world.Data.Users), len(loaded.Switches), len(world.Data.Switches))
	}
	for _, id := range []string{"Table 1", "Fig. 1", "Fig. 10", "Table 5"} {
		orig, err := broadband.Run(id, &world.Data, 9)
		if err != nil {
			t.Fatalf("%s on original: %v", id, err)
		}
		back, err := broadband.Run(id, loaded, 9)
		if err != nil {
			t.Fatalf("%s on loaded: %v", id, err)
		}
		if orig.Render() != back.Render() {
			t.Errorf("%s differs after CSV round trip:\n--- original ---\n%s--- loaded ---\n%s",
				id, orig.Render(), back.Render())
		}
	}
}

// TestCSVSaveLoadSaveByteIdentical is the lossless-serialization contract:
// floats are written in shortest round-trippable form, so saving a loaded
// dataset reproduces every file bit-for-bit — and the sharded parallel
// encoder must not perturb that, whatever its worker count.
func TestCSVSaveLoadSaveByteIdentical(t *testing.T) {
	world := apiTestWorld(t)
	first := filepath.Join(t.TempDir(), "first")
	if err := world.Data.SaveDir(first); err != nil {
		t.Fatal(err)
	}
	loaded, err := broadband.LoadDataset(first)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 0} {
		second := filepath.Join(t.TempDir(), "second")
		if err := broadband.SaveDataset(loaded, second, broadband.SaveOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"users.csv", "switches.csv", "plans.csv"} {
			a, err := os.ReadFile(filepath.Join(first, name))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(second, name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("workers=%d: %s not byte-identical after save→load→save", workers, name)
			}
		}
	}
}

// TestGzipDatasetPreservesAnalyses runs an experiment against a world that
// traveled through the compressed transport.
func TestGzipDatasetPreservesAnalyses(t *testing.T) {
	world := apiTestWorld(t)
	dir := filepath.Join(t.TempDir(), "gz")
	if err := broadband.SaveDataset(&world.Data, dir, broadband.SaveOptions{Gzip: true}); err != nil {
		t.Fatal(err)
	}
	loaded, err := broadband.LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := broadband.Run("Table 1", &world.Data, 9)
	if err != nil {
		t.Fatal(err)
	}
	back, err := broadband.Run("Table 1", loaded, 9)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Render() != back.Render() {
		t.Error("Table 1 differs after gzip round trip")
	}
}
