package broadband_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/chaos"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/golden"
)

// The root chaos suite is the end-to-end robustness gate: the full registry
// must survive a lightly faulted dataset with its scorecard intact, and
// heavy faults must fail typed — never with a panic, never silently.

var (
	chaosWorldOnce sync.Once
	chaosWorld     *broadband.World
	chaosWorldErr  error
)

// chaosTestWorld builds the chaos suite's shared world once: the
// metamorphic matrix's smallest configuration, big enough that a ≤1% fault
// rate is statistically visible but still loads in seconds.
func chaosTestWorld(t *testing.T) *broadband.World {
	t.Helper()
	chaosWorldOnce.Do(func() {
		chaosWorld, chaosWorldErr = broadband.BuildWorld(metaWorld(1000, 20140705))
	})
	if chaosWorldErr != nil {
		t.Fatalf("chaos world: %v", chaosWorldErr)
	}
	return chaosWorld
}

// saveChaosWorld writes the shared world into a fresh directory.
func saveChaosWorld(t *testing.T, gz bool) string {
	t.Helper()
	dir := t.TempDir()
	if err := broadband.SaveDataset(&chaosTestWorld(t).Data, dir, broadband.SaveOptions{Gzip: gz}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestChaosRegistryUnderLowFaultRate is the headline acceptance check: at
// fault rates at or below 1%, the quarantine layer absorbs the damage and
// every registry artifact still satisfies the scale-invariant assertions.
func TestChaosRegistryUnderLowFaultRate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry chaos matrix is slow; skipped with -short")
	}
	m, err := golden.LoadManifest("testdata/assertions.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.002, 0.01} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%g", rate), func(t *testing.T) {
			t.Parallel()
			dir := saveChaosWorld(t, true)
			log, err := chaos.New(chaos.Config{Seed: 20140705, Rate: rate}).PerturbDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(log.Events) == 0 {
				t.Fatalf("rate %g injected nothing into a %d-user world", rate, len(chaosTestWorld(t).Data.Users))
			}
			d, rep, err := broadband.LoadDatasetRobust(dir, broadband.QuarantineOptions{})
			if err != nil {
				t.Fatalf("robust load failed within budget:\n%s\n%v", rep.Render(), err)
			}
			if rep.RowsKept >= rep.RowsRead && rate >= 0.01 {
				t.Errorf("quarantine saw no damage at rate %g: kept %d of %d", rate, rep.RowsKept, rep.RowsRead)
			}
			for _, e := range broadband.Experiments() {
				repArt, err := broadband.Run(e.ID, d, 20140705)
				if err != nil {
					t.Errorf("%s: %v", e.ID, err)
					continue
				}
				v, err := golden.ToValue(repArt)
				if err != nil {
					t.Errorf("%s: %v", e.ID, err)
					continue
				}
				for _, viol := range golden.EvalChecks(v, m.Checks(e.ID), true) {
					t.Errorf("%s: %s", e.ID, viol)
				}
			}
		})
	}
}

// TestChaosHighRateFailsTyped: at a 20% fault rate the load must refuse
// the dataset — and the refusal must be the typed, summarizing budget
// error, not a panic or an anonymous failure.
func TestChaosHighRateFailsTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the shared chaos world; skipped with -short")
	}
	dir := saveChaosWorld(t, false)
	if _, err := chaos.New(chaos.Config{Seed: 13, Rate: 0.20}).PerturbDir(dir); err != nil {
		t.Fatal(err)
	}
	_, rep, err := broadband.LoadDatasetRobust(dir, broadband.QuarantineOptions{})
	if err == nil {
		t.Fatalf("a 20%% fault rate loaded inside a 5%% budget; report:\n%s", rep.Render())
	}
	var be *broadband.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T: %v", err, err)
	}
	if rep == nil || len(rep.Diags) == 0 {
		t.Error("failed load must still hand back its quarantine diagnostics")
	}
}

// TestChaosInterruptedSaveLeavesNoPartialArtifacts pins the atomic-write
// guarantee under cancellation: whenever the save is interrupted, every
// table file either exists complete or does not exist at all, and no
// temporary files survive.
func TestChaosInterruptedSaveLeavesNoPartialArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the shared chaos world; skipped with -short")
	}
	d := &chaosTestWorld(t).Data
	delays := []time.Duration{-1, 0, 200 * time.Microsecond, 2 * time.Millisecond}
	for i, delay := range delays {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		if delay < 0 {
			cancel() // interrupt before the first byte
		} else {
			go func() { time.Sleep(delay); cancel() }()
		}
		err := broadband.SaveDatasetCtx(ctx, d, dir, broadband.SaveOptions{})
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("case %d: unexpected save error: %v", i, err)
		}
		if delay < 0 && err == nil {
			t.Fatalf("case %d: pre-cancelled save reported success", i)
		}
		assertNoPartialTables(t, dir, d)
	}
}

// assertNoPartialTables fails the test if dir holds temp files or a table
// file that does not parse back to its complete row population.
func assertNoPartialTables(t *testing.T, dir string, d *broadband.Dataset) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") || strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temporary file %q survived the interrupted save", e.Name())
		}
	}
	counts := map[string]int{
		"users.csv":    len(d.Users),
		"switches.csv": len(d.Switches),
		"plans.csv":    len(d.Plans),
	}
	for base, want := range counts {
		path := filepath.Join(dir, base)
		f, err := os.Open(path)
		if errors.Is(err, os.ErrNotExist) {
			continue // never committed: exactly the guarantee
		}
		if err != nil {
			t.Fatal(err)
		}
		got, rerr := countRows(base, f)
		f.Close()
		if rerr != nil {
			t.Errorf("%s exists but is not fully parseable: %v", base, rerr)
		} else if got != want {
			t.Errorf("%s exists with %d of %d rows — a partial artifact", base, got, want)
		}
	}
}

func countRows(base string, f *os.File) (int, error) {
	switch base {
	case "users.csv":
		rows, err := dataset.ReadUsers(f)
		return len(rows), err
	case "switches.csv":
		rows, err := dataset.ReadSwitches(f)
		return len(rows), err
	default:
		rows, err := dataset.ReadPlans(f)
		return len(rows), err
	}
}

// TestChaosRunAllCtxCancellation: a cancelled fan-out stops dispatching and
// reports the cancellation; a pre-cancelled context runs nothing.
func TestChaosRunAllCtxCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the shared chaos world; skipped with -short")
	}
	d := &chaosTestWorld(t).Data
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := broadband.RunAllCtx(ctx, d, 20140705); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunAllCtx returned %v", err)
	}
	// An undisturbed context must still run the whole registry.
	reports, err := broadband.RunAllCtx(context.Background(), d, 20140705)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(broadband.Experiments()) {
		t.Fatalf("got %d reports for %d experiments", len(reports), len(broadband.Experiments()))
	}
}
