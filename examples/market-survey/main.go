// Market survey: the Sec. 5/6 pricing analyses over the synthetic retail
// plan survey — access prices, upgrade-cost slopes, regional shares and the
// case-study affordability table.
//
//	go run ./examples/market-survey
package main

import (
	"fmt"
	"log"
	"sort"

	broadband "github.com/nwca/broadband"
)

func main() {
	world, err := broadband.BuildWorld(broadband.WorldConfig{
		Seed: 7, Users: 1500, FCCUsers: 100, Days: 1, SwitchTarget: 50, MinPerCountry: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. The survey itself: how many plans, how many markets.
	fmt.Printf("survey: %d plans across %d markets\n\n", len(world.Data.Plans), len(world.Data.Markets))

	// 2. Access-price bands (Sec. 5's grouping).
	type band struct{ cheap, mid, expensive []string }
	var b band
	for cc, ms := range world.Data.Markets {
		switch {
		case ms.AccessPrice <= 25:
			b.cheap = append(b.cheap, cc)
		case ms.AccessPrice <= 60:
			b.mid = append(b.mid, cc)
		default:
			b.expensive = append(b.expensive, cc)
		}
	}
	for _, g := range []struct {
		name string
		ccs  []string
	}{
		{"($0, $25]", b.cheap}, {"($25, $60]", b.mid}, {"($60, inf)", b.expensive},
	} {
		sort.Strings(g.ccs)
		fmt.Printf("access %-12s %2d markets: %v\n", g.name, len(g.ccs), g.ccs)
	}
	fmt.Println()

	// 3. Upgrade-cost distribution (Fig. 10) and regional shares (Table 5),
	// via the reproduction harness.
	for _, id := range []string{"Fig. 10", "Table 5", "Table 4"} {
		rep, err := broadband.Run(id, &world.Data, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Render())
		fmt.Println()
	}

	// 4. A custom query: the five cheapest and five most expensive markets
	// per advertised Mbps at the 10 Mbps point.
	type pricePoint struct {
		cc    string
		price float64
	}
	var points []pricePoint
	for cc, ms := range world.Data.Markets {
		points = append(points, pricePoint{cc, ms.AccessPrice.Dollars() + 9*float64(ms.Upgrade.Slope)})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].price < points[j].price })
	fmt.Println("cheapest implied 10 Mbps price:")
	for _, p := range points[:5] {
		fmt.Printf("  %s  $%.2f/month\n", p.cc, p.price)
	}
	fmt.Println("most expensive implied 10 Mbps price:")
	for _, p := range points[len(points)-5:] {
		fmt.Printf("  %s  $%.2f/month\n", p.cc, p.price)
	}
}
