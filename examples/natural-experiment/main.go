// Natural experiment: design a custom causal study with the matching
// engine — "does long latency depress demand?" — and validate the design
// with a placebo treatment that must come out null.
//
//	go run ./examples/natural-experiment
package main

import (
	"fmt"
	"log"

	broadband "github.com/nwca/broadband"
)

func main() {
	world, err := broadband.BuildWorld(broadband.WorldConfig{
		Seed: 99, Users: 2200, FCCUsers: 100, Days: 2, SwitchTarget: 50, MinPerCountry: 15,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Split the end-host population by latency.
	var fast, slow []*broadband.User
	for i := range world.Data.Users {
		u := &world.Data.Users[i]
		if u.Vantage != broadband.VantageDasu {
			continue
		}
		switch {
		case u.RTT <= 0.128:
			fast = append(fast, u)
		case u.RTT > 0.512:
			slow = append(slow, u)
		}
	}
	fmt.Printf("populations: %d low-latency, %d high-latency users\n\n", len(fast), len(slow))

	// The real experiment: H = low-latency users impose higher peak demand,
	// after matching away capacity, loss and market prices.
	matcher := broadband.Matcher{Confounders: []broadband.Confounder{
		broadband.ByCapacity(), broadband.ByLoss(),
		broadband.ByAccessPrice(), broadband.ByUpgradeCost(),
	}}
	exp := broadband.Experiment{
		Name:      "low latency raises demand",
		Treatment: fast,
		Control:   slow,
		Matcher:   matcher,
		Outcome:   func(u *broadband.User) float64 { return float64(u.Usage.PeakNoBT) },
	}
	res, err := exp.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("real treatment:   ", res)
	for _, b := range res.Balance {
		fmt.Println("  balance:", b)
	}

	// The placebo: an odd user ID cannot cause anything. The same machinery
	// must report chance-level agreement — if it does not, the design (not
	// the world) is broken.
	var odd, even []*broadband.User
	for i := range world.Data.Users {
		u := &world.Data.Users[i]
		if u.Vantage != broadband.VantageDasu {
			continue
		}
		if u.ID%2 == 1 {
			odd = append(odd, u)
		} else {
			even = append(even, u)
		}
	}
	placebo := broadband.Experiment{
		Name:      "placebo: odd user id",
		Treatment: odd,
		Control:   even,
		Matcher: broadband.Matcher{Confounders: []broadband.Confounder{
			broadband.ByCapacity(), broadband.ByRTT(), broadband.ByLoss(),
		}},
		Outcome: func(u *broadband.User) float64 { return float64(u.Usage.PeakNoBT) },
	}
	pres, err := placebo.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("placebo treatment:", pres)
	if pres.Sig.Significant() {
		fmt.Println("!! the placebo came out significant — distrust the design")
	} else {
		fmt.Println("placebo is null, as it must be")
	}
}
