// Upgrade study: the within-subject design of Sec. 3.2 over the service-
// switch panel — every usage metric, plus the per-initial-tier breakdown
// of Fig. 5 computed by hand from the public Switch records.
//
//	go run ./examples/upgrade-study
package main

import (
	"fmt"
	"log"

	broadband "github.com/nwca/broadband"
)

func main() {
	world, err := broadband.BuildWorld(broadband.WorldConfig{
		Seed: 3, Users: 1800, FCCUsers: 100, Days: 2, SwitchTarget: 450,
	})
	if err != nil {
		log.Fatal(err)
	}
	switches := world.Data.Switches
	fmt.Printf("switch panel: %d users observed on a slower and a faster service\n\n", len(switches))

	// Table 1's design over all four metrics.
	metrics := []struct {
		name string
		get  func(broadband.UsageSummary) float64
	}{
		{"mean w/ BT", func(s broadband.UsageSummary) float64 { return float64(s.Mean) }},
		{"peak w/ BT", func(s broadband.UsageSummary) float64 { return float64(s.Peak) }},
		{"mean no BT", func(s broadband.UsageSummary) float64 { return float64(s.MeanNoBT) }},
		{"peak no BT", func(s broadband.UsageSummary) float64 { return float64(s.PeakNoBT) }},
	}
	for _, m := range metrics {
		res, err := broadband.RunPaired(m.name, switches, m.get)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}

	// Fig. 5 by hand: average change in peak (no BT) demand by initial tier.
	fmt.Println("\naverage peak (no BT) change by initial tier:")
	tiers := []struct {
		name   string
		lo, hi broadband.Bitrate
	}{
		{"0.25-1 Mbps", broadband.Mbps(0.25), broadband.Mbps(1)},
		{"1-4 Mbps", broadband.Mbps(1), broadband.Mbps(4)},
		{"4-16 Mbps", broadband.Mbps(4), broadband.Mbps(16)},
		{"16-64 Mbps", broadband.Mbps(16), broadband.Mbps(64)},
	}
	for _, tier := range tiers {
		var sum float64
		var n int
		for _, s := range switches {
			if s.FromDown > tier.lo && s.FromDown <= tier.hi {
				sum += float64(s.After.PeakNoBT - s.Before.PeakNoBT)
				n++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  %-12s %+8.3f Mbps  (n=%d)\n", tier.name, sum/float64(n)/1e6, n)
	}

	// How big is the median jump?
	doubled := 0
	for _, s := range switches {
		if s.ToDown >= 2*s.FromDown {
			doubled++
		}
	}
	fmt.Printf("\n%d%% of switches at least doubled the measured capacity\n", 100*doubled/len(switches))
}
