// Policy counterfactual: the paper's Sec. 9 suggests policy makers may get
// more from widening access to a medium, high-quality service (~10 Mbps)
// than from pushing top speeds. Because the world generator's causal
// structure is explicit, that policy can actually be simulated: build a
// baseline world and two intervention worlds — one that halves access
// prices in expensive markets ("access push"), one that halves upgrade
// slopes in cheap markets ("speed push") — and compare adoption and
// realized demand.
//
//	go run ./examples/policy-counterfactual
package main

import (
	"fmt"
	"log"

	broadband "github.com/nwca/broadband"
)

func buildWorldWith(mutate func(*broadband.MarketProfile)) (*broadband.World, error) {
	profiles := broadband.DefaultMarkets()
	if mutate != nil {
		for i := range profiles {
			mutate(&profiles[i])
		}
	}
	return broadband.BuildWorld(broadband.WorldConfig{
		Seed: 61, Users: 1800, FCCUsers: 50, Days: 1,
		SwitchTarget: 20, MinPerCountry: 15,
		Profiles: profiles,
	})
}

// summarize reports adoption (realized subscriber count) and demand within
// a fixed country set — the markets that were expensive at BASELINE, so
// the same populations are compared across counterfactual worlds.
func summarize(w *broadband.World, countries map[string]bool) (users int, meanDemandMbps, medianCapMbps float64) {
	var demand []float64
	var caps []float64
	for i := range w.Data.Users {
		u := &w.Data.Users[i]
		if u.Vantage != broadband.VantageDasu || !countries[u.Country] {
			continue
		}
		users++
		demand = append(demand, float64(u.Usage.MeanNoBT)/1e6)
		caps = append(caps, float64(u.Capacity)/1e6)
	}
	meanDemandMbps = mean(demand)
	medianCapMbps = median(caps)
	return users, meanDemandMbps, medianCapMbps
}

func main() {
	baseline, err := buildWorldWith(nil)
	if err != nil {
		log.Fatal(err)
	}
	// Intervention 1: halve the price of access in expensive markets
	// (subsidized entry tiers), leaving upgrade slopes alone.
	accessPush, err := buildWorldWith(func(p *broadband.MarketProfile) {
		if p.AccessPriceUSD > 60 {
			p.AccessPriceUSD /= 2
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// Intervention 2: halve the upgrade slope everywhere (cheaper top
	// speeds), leaving entry prices alone.
	speedPush, err := buildWorldWith(func(p *broadband.MarketProfile) {
		p.UpgradeCostPerMbps /= 2
	})
	if err != nil {
		log.Fatal(err)
	}

	// The comparison population: countries expensive at baseline.
	expensive := map[string]bool{}
	for cc, ms := range baseline.Data.Markets {
		if ms.AccessPrice > 60 {
			expensive[cc] = true
		}
	}
	fmt.Printf("outcomes in the %d markets that are expensive (access > $60) at baseline:\n", len(expensive))
	fmt.Printf("  %-22s %10s %14s %14s\n", "world", "users", "mean demand", "median cap")
	for _, row := range []struct {
		name string
		w    *broadband.World
	}{
		{"baseline", baseline},
		{"access price halved", accessPush},
		{"upgrade slope halved", speedPush},
	} {
		n, d, c := summarize(row.w, expensive)
		fmt.Printf("  %-22s %10d %11.3f Mb %11.2f Mb\n", row.name, n, d, c)
	}
	fmt.Println()
	fmt.Println("reading: cheaper ACCESS grows the subscriber base of expensive markets")
	fmt.Println("(households that were priced offline appear in the panel), which is the")
	fmt.Println("paper's policy point; cheaper UPGRADES mostly shift existing subscribers")
	fmt.Println("to faster tiers they then under-utilize.")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
