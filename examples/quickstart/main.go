// Quickstart: generate a small synthetic broadband world and reproduce the
// paper's headline natural experiment (Table 1 — does a faster service make
// the same user consume more?).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	broadband "github.com/nwca/broadband"
)

func main() {
	// A world is deterministic in its seed: three datasets (end-host
	// panel, US gateway panel, retail-plan survey) in one call.
	world, err := broadband.BuildWorld(broadband.WorldConfig{
		Seed:         42,
		Users:        1200,
		FCCUsers:     250,
		Days:         2,
		SwitchTarget: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d users, %d service switches, %d retail plans, %d markets\n\n",
		len(world.Data.Users), len(world.Data.Switches), len(world.Data.Plans), len(world.Data.Markets))

	// Reproduce Table 1: the within-user upgrade experiment.
	rep, err := broadband.Run("Table 1", &world.Data, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())

	// And Fig. 7: the case-study capacity/utilization orderings.
	rep, err = broadband.Run("Fig. 7", &world.Data, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
}
