package broadband_test

import (
	"flag"
	"testing"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/golden"
)

// -update regenerates testdata/golden/ from the current tree instead of
// verifying against it (the in-process equivalent of `bbverify -update`):
//
//	go test -run TestGoldenArtifacts -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from the current tree")

// canonicalWorld is the default reproduction configuration — the same
// parameters bbverify and bbrepro default to, and the world the committed
// goldens were generated from.
var canonicalWorld = broadband.WorldConfig{
	Seed:          20140705,
	Users:         5000,
	FCCUsers:      1200,
	Days:          2,
	SwitchTarget:  900,
	MinPerCountry: 30,
}

// TestGoldenArtifacts is the golden-regression gate: every registry
// artifact regenerated at the canonical world must match its checked-in
// golden byte-for-byte (the pipeline is deterministic) and satisfy the
// assertion manifest. Run with -update after an intentional model change,
// then review the golden diff like any other code change.
func TestGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("canonical world generation is slow; skipped with -short")
	}
	world, err := broadband.BuildWorld(canonicalWorld)
	if err != nil {
		t.Fatal(err)
	}
	entries := broadband.Experiments()
	arts := make([]golden.Artifact, len(entries))
	for i, e := range entries {
		rep, err := broadband.Run(e.ID, &world.Data, canonicalWorld.Seed)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		arts[i] = golden.Artifact{ID: e.ID, Obj: rep}
	}
	if *updateGolden {
		if err := golden.Update(arts, "testdata/golden"); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %d goldens", len(arts))
	}
	m, err := golden.LoadManifest("testdata/assertions.json")
	if err != nil {
		t.Fatal(err)
	}
	r, err := golden.Verify(arts, "testdata/golden", m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("%d of %d artifacts drifted:\n%s", r.Failed(), len(r.Artifacts), r.Render())
	}
}
