package broadband_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/golden"
)

// The metamorphic suite checks properties the reproduction must keep under
// transformations of the pipeline that should not matter:
//
//   - population scale and seed: halving or doubling the world, or reseeding
//     it, must preserve every scale_invariant check in the assertion
//     manifest (the scorecard's signs and orderings, not its exact values);
//   - worker count: RunAllWorkers must emit byte-identical artifacts for
//     any pool size;
//   - serialization transport: artifacts computed on a world that traveled
//     through the CSV save/load cycle (plain or gzip) must be byte-identical
//     to artifacts computed on the in-memory original.

// metaWorldScales are the primary-year populations of the metamorphic
// matrix: the default reproduction's neighborhood, halved and doubled once.
var metaWorldScales = []int{1000, 2000, 4000}

// metaWorldSeeds reseed each scale: the paper's date seed and two
// unrelated ones.
var metaWorldSeeds = []uint64{20140705, 7, 99}

// metaWorld scales the secondary panels with the primary population the way
// the default configuration does (gateway panel ≈ users/4, switch panel ≈
// users/5) so the whole world grows together.
func metaWorld(users int, seed uint64) broadband.WorldConfig {
	return broadband.WorldConfig{
		Seed:          seed,
		Users:         users,
		FCCUsers:      users / 4,
		Days:          2,
		SwitchTarget:  users / 5,
		MinPerCountry: 10,
	}
}

// TestMetamorphicScaleAndSeed runs the scale_invariant subset of the
// assertion manifest at every (population, seed) in the matrix.
func TestMetamorphicScaleAndSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic matrix builds 9 worlds; skipped with -short")
	}
	m, err := golden.LoadManifest("testdata/assertions.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, users := range metaWorldScales {
		for _, seed := range metaWorldSeeds {
			users, seed := users, seed
			t.Run(fmt.Sprintf("users=%d/seed=%d", users, seed), func(t *testing.T) {
				t.Parallel()
				world, err := broadband.BuildWorld(metaWorld(users, seed))
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range broadband.Experiments() {
					checks := m.Checks(e.ID)
					rep, err := broadband.Run(e.ID, &world.Data, seed)
					if err != nil {
						t.Errorf("%s: %v", e.ID, err)
						continue
					}
					v, err := golden.ToValue(rep)
					if err != nil {
						t.Errorf("%s: %v", e.ID, err)
						continue
					}
					for _, viol := range golden.EvalChecks(v, checks, true) {
						t.Errorf("%s: %s", e.ID, viol)
					}
				}
			})
		}
	}
}

// marshalReports serializes every registry artifact of a dataset to its
// canonical golden form, keyed by artifact ID.
func marshalReports(t *testing.T, d *broadband.Dataset, seed uint64, workers int) map[string][]byte {
	t.Helper()
	reports, err := broadband.RunAllWorkers(d, seed, workers)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(reports))
	for i, e := range broadband.Experiments() {
		b, err := golden.Marshal(reports[i])
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out[e.ID] = b
	}
	return out
}

// TestWorkerCountEquivalence checks that the experiment fan-out is
// deterministic in the worker pool size: sequential, default and oversized
// pools must produce byte-identical canonical artifacts.
func TestWorkerCountEquivalence(t *testing.T) {
	w := apiTestWorld(t)
	want := marshalReports(t, &w.Data, 7, 1)
	for _, workers := range []int{0, 3} {
		got := marshalReports(t, &w.Data, 7, workers)
		for id, b := range want {
			if !bytes.Equal(b, got[id]) {
				t.Errorf("workers=%d: %s differs from sequential run", workers, id)
			}
		}
	}
}

// TestTransportEquivalence checks that the CSV transport is invisible to
// the analyses: artifacts computed on a saved-and-reloaded world (plain and
// gzip) are byte-identical to artifacts computed on its canonical on-disk
// form. Unit-scaled fields (Mbps, ms, percent) round once on the first
// save, so the fixed point — one cycle in — is the reference, the same
// contract TestScaledFieldsStableAfterOneCycle pins at the codec layer.
func TestTransportEquivalence(t *testing.T) {
	w := apiTestWorld(t)
	canon := filepath.Join(t.TempDir(), "canon")
	if err := w.Data.SaveDir(canon); err != nil {
		t.Fatal(err)
	}
	base, err := broadband.LoadDataset(canon)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReports(t, base, 7, 0)
	for _, gzip := range []bool{false, true} {
		name := "plain"
		if gzip {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), name)
			if err := broadband.SaveDataset(base, dir, broadband.SaveOptions{Gzip: gzip}); err != nil {
				t.Fatal(err)
			}
			loaded, err := broadband.LoadDataset(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := marshalReports(t, loaded, 7, 0)
			for id, b := range want {
				if !bytes.Equal(b, got[id]) {
					t.Errorf("%s: %s drifted through the %s transport", name, id, name)
				}
			}
		})
	}
}
