// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact against a shared synthetic world),
// plus ablation benches for the design choices DESIGN.md calls out and
// micro-benches of the load-bearing substrates.
//
//	go test -bench=. -benchmem
package broadband_test

import (
	"fmt"
	"sync"
	"testing"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/netsim"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/synth"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// benchWorld is generated once and shared by every artifact bench.
var (
	benchOnce  sync.Once
	benchData  *dataset.Dataset
	benchBuild error
)

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		w, err := synth.Build(synth.Config{
			Seed: 20140705, Users: 2000, FCCUsers: 500, Days: 2,
			SwitchTarget: 350, MinPerCountry: 25,
		})
		if err != nil {
			benchBuild = err
			return
		}
		benchData = &w.Data
	})
	if benchBuild != nil {
		b.Fatal(benchBuild)
	}
	return benchData
}

// benchArtifact regenerates one paper artifact per iteration.
func benchArtifact(b *testing.B, id string) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := broadband.Run(id, d, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

// One benchmark per table and figure (DESIGN.md per-experiment index).

func BenchmarkFig01Characteristics(b *testing.B)         { benchArtifact(b, "Fig. 1") }
func BenchmarkFig02CapacityVsUsage(b *testing.B)         { benchArtifact(b, "Fig. 2") }
func BenchmarkFig03FCCvsDasu(b *testing.B)               { benchArtifact(b, "Fig. 3") }
func BenchmarkTable01UserUpgrades(b *testing.B)          { benchArtifact(b, "Table 1") }
func BenchmarkFig04SlowFastCDF(b *testing.B)             { benchArtifact(b, "Fig. 4") }
func BenchmarkFig05UpgradeByTier(b *testing.B)           { benchArtifact(b, "Fig. 5") }
func BenchmarkTable02CapacityMatching(b *testing.B)      { benchArtifact(b, "Table 2") }
func BenchmarkFig06Longitudinal(b *testing.B)            { benchArtifact(b, "Fig. 6") }
func BenchmarkTable03AccessPrice(b *testing.B)           { benchArtifact(b, "Table 3") }
func BenchmarkTable04CaseStudy(b *testing.B)             { benchArtifact(b, "Table 4") }
func BenchmarkFig07CaseStudyCDF(b *testing.B)            { benchArtifact(b, "Fig. 7") }
func BenchmarkFig08UtilizationByTier(b *testing.B)       { benchArtifact(b, "Fig. 8") }
func BenchmarkFig09DemandByTier(b *testing.B)            { benchArtifact(b, "Fig. 9") }
func BenchmarkFig10UpgradeCostCDF(b *testing.B)          { benchArtifact(b, "Fig. 10") }
func BenchmarkTable05RegionalUpgradeCost(b *testing.B)   { benchArtifact(b, "Table 5") }
func BenchmarkTable06UpgradeCostExperiment(b *testing.B) { benchArtifact(b, "Table 6") }
func BenchmarkTable07Latency(b *testing.B)               { benchArtifact(b, "Table 7") }
func BenchmarkFig11IndiaLatency(b *testing.B)            { benchArtifact(b, "Fig. 11") }
func BenchmarkTable08PacketLoss(b *testing.B)            { benchArtifact(b, "Table 8") }
func BenchmarkFig12IndiaLoss(b *testing.B)               { benchArtifact(b, "Fig. 12") }

// Extension analyses (beyond the paper's artifacts).

func BenchmarkExtAUsageCaps(b *testing.B)        { benchArtifact(b, "Ext. A") }
func BenchmarkExtBUserCategories(b *testing.B)   { benchArtifact(b, "Ext. B") }
func BenchmarkExtCDesignComparison(b *testing.B) { benchArtifact(b, "Ext. C") }

// BenchmarkWorldGeneration measures the end-to-end dataset pipeline at a
// small scale (choice model + measurement + traffic generation per user).
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := synth.Build(synth.Config{
			Seed: uint64(i + 1), Users: 150, FCCUsers: 30, Days: 1, SwitchTarget: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(w.Data.Users) == 0 {
			b.Fatal("empty world")
		}
	}
}

// benchBuildWorldWorkers measures world generation at a fixed worker count;
// output is byte-identical across counts, so the benches differ only in
// wall-clock.
func benchBuildWorldWorkers(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		w, err := synth.Build(synth.Config{
			Seed: uint64(i + 1), Users: 600, FCCUsers: 120, Days: 1,
			SwitchTarget: 60, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(w.Data.Users) == 0 {
			b.Fatal("empty world")
		}
	}
}

// BenchmarkBuildWorldSequential pins the Workers=1 baseline.
func BenchmarkBuildWorldSequential(b *testing.B) { benchBuildWorldWorkers(b, 1) }

// BenchmarkBuildWorldParallel uses the full GOMAXPROCS pool.
func BenchmarkBuildWorldParallel(b *testing.B) { benchBuildWorldWorkers(b, 0) }

// BenchmarkRunAllParallel measures the full registry fan-out against the
// shared bench world at the default worker count.
func BenchmarkRunAllParallel(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broadband.RunAllWorkers(d, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMatcher measures the windowed nearest-neighbor matcher on synthetic
// covariates at a given population size (treated = n, control = 2n).
func benchMatcher(b *testing.B, n int) {
	rng := randx.New(uint64(n))
	mk := func(count int, idBase int64) []*dataset.User {
		us := make([]*dataset.User, count)
		for i := range us {
			us[i] = &dataset.User{
				ID:   idBase + int64(i),
				RTT:  0.01 + 0.2*rng.Float64(),
				Loss: unit.LossRate(0.002 * rng.Float64()),
			}
		}
		return us
	}
	treated := mk(n, 1)
	control := mk(2*n, int64(10*n))
	m := core.Matcher{Confounders: []core.Confounder{core.ConfounderRTT(), core.ConfounderLoss()}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(treated, control, randx.New(uint64(i)))
	}
}

func BenchmarkMatcher200(b *testing.B)  { benchMatcher(b, 200) }
func BenchmarkMatcher1000(b *testing.B) { benchMatcher(b, 1000) }
func BenchmarkMatcher5000(b *testing.B) { benchMatcher(b, 5000) }

// --- Ablation benches (design choices called out in DESIGN.md §4) ---

// benchCaliper runs the capacity matching experiment at a given caliper
// width and reports the matched-pair yield as a custom metric.
func benchCaliper(b *testing.B, caliper float64) {
	d := benchDataset(b)
	users := dataset.Select(d.Users, dataset.ByVantage(dataset.VantageDasu))
	var treated, control []*dataset.User
	for _, u := range users {
		switch {
		case u.Capacity > 6.4e6 && u.Capacity <= 12.8e6:
			treated = append(treated, u)
		case u.Capacity > 3.2e6 && u.Capacity <= 6.4e6:
			control = append(control, u)
		}
	}
	m := core.Matcher{
		Caliper: caliper,
		Confounders: []core.Confounder{
			core.ConfounderRTT(), core.ConfounderLoss(), core.ConfounderAccessPrice(),
		},
	}
	pairs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := m.Match(treated, control, randx.New(uint64(i)))
		pairs = len(ps)
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// BenchmarkAblationCaliperPaper uses the paper's 25% caliper.
func BenchmarkAblationCaliperPaper(b *testing.B) { benchCaliper(b, 0.25) }

// BenchmarkAblationCaliperTight uses a 10% caliper: better balance, fewer
// comparisons (the trade-off Sec. 3.2 discusses).
func BenchmarkAblationCaliperTight(b *testing.B) { benchCaliper(b, 0.10) }

// BenchmarkAblationCaliperLoose uses a 50% caliper.
func BenchmarkAblationCaliperLoose(b *testing.B) { benchCaliper(b, 0.50) }

// BenchmarkAblationExactBinomial measures the exact (incomplete-beta)
// binomial tail at matched-pair scale.
func BenchmarkAblationExactBinomial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := stats.BinomialTest(6680, 10000, 0.5, stats.TailGreater)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.P
	}
}

// BenchmarkAblationNormalApproxBinomial measures the continuity-corrected
// normal approximation the exact test replaces.
func BenchmarkAblationNormalApproxBinomial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		z := (6680.0 - 0.5 - 5000) / 50
		_ = 1 - stats.NormalCDF(z)
	}
}

// BenchmarkSubstrateFluidDay measures one user-day of flow-level simulation
// (the unit of dataset generation).
func BenchmarkSubstrateFluidDay(b *testing.B) {
	g := &traffic.Generator{
		Capacity: unit.MbpsOf(10),
		Quality:  traffic.Quality{RTT: 0.04, Loss: 0.0005},
		Profile:  traffic.Profile{NeedMbps: 3},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := g.Generate(1, randx.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Summarize(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstratePacketNDT measures one packet-level NDT run (the
// expensive alternative the fluid model amortizes).
func BenchmarkSubstratePacketNDT(b *testing.B) {
	line := netsim.AccessLine{
		Down: netsim.LinkConfig{Rate: unit.MbpsOf(10), Delay: 0.02, Loss: netsim.LossModel{Rate: 0.002}},
		Up:   netsim.LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.02},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := netsim.RunNDT(line, netsim.NDTConfig{Duration: 5, SkipUp: true}, randx.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.DownloadRate
	}
}

// BenchmarkFluidVsPacketAgreement cross-validates the two simulators: a
// single saturating fluid flow and the packet TCP test must land in the
// same throughput regime on the same line. Reported as the ratio metric.
func BenchmarkFluidVsPacketAgreement(b *testing.B) {
	line := netsim.AccessLine{
		Down: netsim.LinkConfig{Rate: unit.MbpsOf(8), Delay: 0.02, Loss: netsim.LossModel{Rate: 0.0005}},
		Up:   netsim.LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.02},
	}
	ratio := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := netsim.RunNDT(line, netsim.NDTConfig{Duration: 8, SkipUp: true}, randx.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		flow := &netsim.FluidFlow{Volume: unit.GB, Cap: 0}
		fl, err := netsim.FluidSim{Capacity: unit.MbpsOf(8), Interval: 30}.Run([]*netsim.FluidFlow{flow}, 8)
		if err != nil {
			b.Fatal(err)
		}
		fluidRate := fl.TotalBytes.RateOver(8)
		ratio = float64(pkt.DownloadRate) / float64(fluidRate)
	}
	b.ReportMetric(ratio, "pkt/fluid")
}

// Guard against the bench world failing silently under -bench=. -run=^$.
func TestBenchWorldBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("bench world generation is slow; skipped with -short")
	}
	benchOnce.Do(func() {
		w, err := synth.Build(synth.Config{
			Seed: 20140705, Users: 2000, FCCUsers: 500, Days: 2,
			SwitchTarget: 350, MinPerCountry: 25,
		})
		if err != nil {
			benchBuild = err
			return
		}
		benchData = &w.Data
	})
	if benchBuild != nil {
		t.Fatal(benchBuild)
	}
	if len(benchData.Users) == 0 {
		t.Fatal("bench world empty")
	}
	fmt.Println("bench world:", len(benchData.Users), "users")
}
