module github.com/nwca/broadband

go 1.22
