// Package broadband is the public API of the reproduction of "Need, Want,
// Can Afford – Broadband Markets and the Behavior of Users" (Bischof,
// Bustamante, Stanojevic — IMC 2014).
//
// The library has three layers, all re-exported here:
//
//   - World generation (BuildWorld): a parameterized synthetic world of
//     ~90 national broadband markets, subscriber plan choice ("need, want,
//     can afford"), access-network simulation and behavioral traffic
//     generation, producing the paper's three datasets — the end-host
//     panel, the US gateway panel, and the retail-plan survey.
//   - Causal inference (Experiment, Matcher, RunPaired): natural
//     experiments over observational data with nearest-neighbor caliper
//     matching, one-tailed binomial tests and the paper's practical-
//     significance rule.
//   - Reproduction (Experiments, RunAll): one module per table and figure
//     of the paper's evaluation, each returning a typed result with a
//     textual rendering of the same rows/series.
//
// Quickstart:
//
//	world, err := broadband.BuildWorld(broadband.WorldConfig{Seed: 1, Users: 1500})
//	if err != nil { ... }
//	rep, err := broadband.Run("Table 1", &world.Data, 42)
//	if err != nil { ... }
//	fmt.Print(rep.Render())
package broadband

import (
	"context"
	"fmt"
	"io"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/experiments"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/par"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/synth"
	"github.com/nwca/broadband/internal/unit"
)

// World generation.
type (
	// WorldConfig parameterizes synthetic-world generation.
	WorldConfig = synth.Config
	// World is a generated world: datasets, plan catalogs and ground truth.
	World = synth.World
	// Dataset bundles the users, switches, plans and market summaries.
	Dataset = dataset.Dataset
	// User is one subscriber observation.
	User = dataset.User
	// Switch is one before/after service-change observation.
	Switch = dataset.Switch
	// UsageSummary is the mean/peak demand pair, with and without BitTorrent.
	UsageSummary = dataset.UsageSummary
	// Vantage distinguishes the end-host and gateway platforms.
	Vantage = dataset.Vantage
)

// Measurement vantages.
const (
	VantageDasu    = dataset.VantageDasu
	VantageGateway = dataset.VantageGateway
)

// MeasureMode selects how lines are measured during world generation.
type MeasureMode = synth.MeasureMode

// Measurement modes: the calibrated fast model, or the packet-level TCP
// simulation for every line.
const (
	MeasureFast = synth.MeasureFast
	MeasureNDT  = synth.MeasureNDT
)

// Market model.
type (
	// MarketProfile parameterizes one national broadband market.
	MarketProfile = market.Profile
	// Country identifies a national market and its economy.
	Country = market.Country
	// Plan is one retail broadband offer.
	Plan = market.Plan
	// Catalog is a country's retail plan set.
	Catalog = market.Catalog
	// MarketSummary carries a market's access price and upgrade cost.
	MarketSummary = market.MarketSummary
	// Subscriber is the need/want/can-afford household of the choice model.
	Subscriber = market.Subscriber
)

// Causal-inference engine.
type (
	// Experiment is a declarative natural experiment.
	Experiment = core.Experiment
	// Matcher performs nearest-neighbor caliper matching.
	Matcher = core.Matcher
	// Confounder is one matching covariate.
	Confounder = core.Confounder
	// ExperimentResult reports a natural experiment.
	ExperimentResult = core.Result
	// MatchedPair is one treated/control pair.
	MatchedPair = core.Pair
	// QED is the stratified quasi-experimental design (the alternative to
	// nearest-neighbor matching).
	QED = core.QED
	// QEDResult reports a quasi-experiment with stratification diagnostics.
	QEDResult = core.QEDResult
)

// Reproduction harness.
type (
	// Report is a reproduced table or figure.
	Report = experiments.Report
	// ReportEntry pairs a report identity with its runner.
	ReportEntry = experiments.Entry
)

// Units.
type (
	// Bitrate is a data rate in bits per second.
	Bitrate = unit.Bitrate
	// USD is purchasing-power-normalized money.
	USD = unit.USD
	// LossRate is a packet-loss fraction.
	LossRate = unit.LossRate
)

// Mbps constructs a Bitrate from megabits per second.
func Mbps(v float64) Bitrate { return unit.MbpsOf(v) }

// BuildWorld generates a synthetic world (all three datasets) from the
// configuration. Generation is deterministic in cfg.Seed.
func BuildWorld(cfg WorldConfig) (*World, error) { return synth.Build(cfg) }

// BuildWorldCtx is BuildWorld with cancellation: generation stops at the
// next internal work boundary once ctx is cancelled and returns ctx.Err()
// with no world. A run that completes is byte-identical to BuildWorld.
func BuildWorldCtx(ctx context.Context, cfg WorldConfig) (*World, error) {
	return synth.BuildCtx(ctx, cfg)
}

// Out-of-core world generation.
type (
	// ShardSpec describes the on-disk layout of a sharded world build.
	ShardSpec = synth.ShardSpec
	// ShardReport summarizes a sharded world build.
	ShardReport = synth.ShardReport
)

// BuildWorldSharded generates a world directly to disk as N user shard
// files plus switches.csv and plans.csv, streaming each user to its shard
// instead of materializing the panel — resident memory is bounded by the
// market frame and the switch-candidate pool, independent of the user
// count (DESIGN.md §8). Shard bytes are deterministic in (cfg.Seed, shard
// count): concatenating the shard bodies reproduces exactly the users.csv
// an in-core BuildWorld of the same config would save. LoadDataset and
// StreamUsers read the sharded directory transparently.
func BuildWorldSharded(ctx context.Context, cfg WorldConfig, spec ShardSpec) (*ShardReport, error) {
	return synth.BuildSharded(ctx, cfg, spec)
}

// StreamUsers opens the user table of a dataset directory for streaming —
// the monolithic users.csv(.gz) or a complete shard set — one file and one
// row resident at a time. The caller owns Close.
func StreamUsers(dir string) (*dataset.UserStream, error) { return dataset.StreamUsersDir(dir) }

// LoadDataset reads a dataset previously written with Dataset.SaveDir or
// SaveDataset (users.csv, switches.csv, plans.csv — plain or .gz),
// rebuilding market summaries from the plan survey. Tables stream through
// the record-at-a-time readers, so load memory is the dataset itself, not
// a second parsed copy.
func LoadDataset(dir string) (*Dataset, error) { return dataset.LoadDir(dir) }

// Quarantine-hardened ingestion: the robust loader skips malformed,
// out-of-domain, duplicated and orphaned rows instead of aborting, and
// reports every excluded row with its file, 1-based row number and fault
// class — up to a configurable error budget.
type (
	// QuarantineOptions configures the robust loader's error budget.
	QuarantineOptions = dataset.QuarantineOptions
	// QuarantineReport lists every quarantined row of a robust load.
	QuarantineReport = dataset.QuarantineReport
	// RowDiag is one quarantined row: file, row, fault class, cause.
	RowDiag = dataset.RowDiag
	// RowFault classifies why a row was quarantined.
	RowFault = dataset.RowFault
	// RowError is the typed load error carrying file, row and fault class.
	RowError = dataset.RowError
	// BudgetError is the single summarizing error of an exhausted budget.
	BudgetError = dataset.BudgetError
)

// LoadDatasetRobust reads a dataset directory under the quarantine
// contract: bad rows are skipped and collected into the returned report
// instead of failing the load, until the error budget in opts is exceeded
// (then a *BudgetError is returned). The report is non-nil even on failure.
func LoadDatasetRobust(dir string, opts QuarantineOptions) (*Dataset, *QuarantineReport, error) {
	return dataset.LoadDirRobust(dir, opts)
}

// SaveOptions tunes SaveDataset: gzip transport (.csv.gz) and the sharded
// parallel encoder's worker count (output bytes are identical for every
// worker count).
type SaveOptions = dataset.SaveOptions

// SaveDataset writes d under dir as users.csv, switches.csv and plans.csv
// (or .csv.gz when opts.Gzip is set). Every table is staged in a temp file
// and renamed into place only after a complete write.
func SaveDataset(d *Dataset, dir string, opts SaveOptions) error {
	return d.SaveDirWith(dir, opts)
}

// SaveDatasetCtx is SaveDataset with cancellation: an interrupted save
// abandons its staging file and leaves no partial table at a final path.
func SaveDatasetCtx(ctx context.Context, d *Dataset, dir string, opts SaveOptions) error {
	return d.SaveDirCtx(ctx, dir, opts)
}

// Streaming dataset access: record-at-a-time readers and writers with
// constant per-row memory, for pipelines whose worlds do not fit in RAM.
type (
	// UserReader iterates a users CSV; Read returns io.EOF at the end.
	UserReader = dataset.UserReader
	// UserWriter streams user rows to CSV.
	UserWriter = dataset.UserWriter
	// SwitchReader iterates a switches CSV.
	SwitchReader = dataset.SwitchReader
	// SwitchWriter streams switch rows to CSV.
	SwitchWriter = dataset.SwitchWriter
	// PlanReader iterates a plan-survey CSV.
	PlanReader = dataset.PlanReader
	// PlanWriter streams plan rows to CSV.
	PlanWriter = dataset.PlanWriter
)

// NewUserReader validates the users header and returns a streaming reader.
func NewUserReader(r io.Reader) (*UserReader, error) { return dataset.NewUserReader(r) }

// NewUserWriter writes the users header and returns a streaming writer.
func NewUserWriter(w io.Writer) (*UserWriter, error) { return dataset.NewUserWriter(w) }

// NewSwitchReader validates the switches header and returns a streaming reader.
func NewSwitchReader(r io.Reader) (*SwitchReader, error) { return dataset.NewSwitchReader(r) }

// NewSwitchWriter writes the switches header and returns a streaming writer.
func NewSwitchWriter(w io.Writer) (*SwitchWriter, error) { return dataset.NewSwitchWriter(w) }

// NewPlanReader validates the plans header and returns a streaming reader.
func NewPlanReader(r io.Reader) (*PlanReader, error) { return dataset.NewPlanReader(r) }

// NewPlanWriter writes the plans header and returns a streaming writer.
func NewPlanWriter(w io.Writer) (*PlanWriter, error) { return dataset.NewPlanWriter(w) }

// DefaultMarkets returns the built-in market profiles (a fresh copy; safe
// to mutate for ablation studies).
func DefaultMarkets() []MarketProfile { return market.World() }

// Experiments lists every reproduced table and figure in the paper's order.
func Experiments() []ReportEntry { return experiments.Registry() }

// ExtensionExperiments lists the analyses beyond the paper's artifacts
// (its Sec. 10 future-work directions: usage caps, user categories).
func ExtensionExperiments() []ReportEntry { return experiments.Extensions() }

// FindExperiment returns the registry entry for a paper artifact ID
// ("Table 1" … "Fig. 12"); extensions are not searched.
func FindExperiment(id string) (ReportEntry, bool) { return experiments.Find(id) }

// Run executes the reproduction of one paper artifact ("Table 1" … "Fig. 12")
// against a dataset. seed controls the matching order randomization.
func Run(id string, d *Dataset, seed uint64) (Report, error) {
	e, ok := experiments.Find(id)
	if !ok {
		e, ok = experiments.FindExtension(id)
	}
	if !ok {
		return nil, fmt.Errorf("broadband: unknown experiment %q", id)
	}
	return e.Run(d, randx.New(seed).Split(id))
}

// RunAll executes every reproduction, returning the reports in registry
// order. The first error (in registry order) aborts: reports preceding it
// are returned alongside the error. Experiments run concurrently across
// runtime.GOMAXPROCS(0) workers; each seeds its own RNG from (seed, ID), so
// results are identical to a sequential run.
func RunAll(d *Dataset, seed uint64) ([]Report, error) {
	return RunAllWorkers(d, seed, 0)
}

// RunAllWorkers is RunAll with an explicit worker-pool bound. workers <= 0
// selects runtime.GOMAXPROCS(0); 1 forces fully sequential execution.
func RunAllWorkers(d *Dataset, seed uint64, workers int) ([]Report, error) {
	return runEntries(context.Background(), experiments.Registry(), d, seed, workers)
}

// RunAllCtx is RunAll with cancellation: no new experiment starts after ctx
// is cancelled, experiments already running finish, and the call returns
// ctx.Err() alongside the reports completed before the cut. Experiment
// failures keep RunAll's contract — every entry still runs.
func RunAllCtx(ctx context.Context, d *Dataset, seed uint64) ([]Report, error) {
	return RunAllWorkersCtx(ctx, d, seed, 0)
}

// RunAllWorkersCtx is RunAllCtx with an explicit worker-pool bound.
func RunAllWorkersCtx(ctx context.Context, d *Dataset, seed uint64, workers int) ([]Report, error) {
	return runEntries(ctx, experiments.Registry(), d, seed, workers)
}

// runEntries fans an entry list out over the worker pool with ordered
// collection: reports come back in entry order, every entry runs even when
// some fail, and the returned error is the lowest-indexed failure — with
// the reports preceding it — exactly what a sequential loop would report.
// Cancellation is the one exception to run-everything: once ctx is
// cancelled no new entry is dispatched, and ctx.Err() is returned with the
// contiguous prefix of completed reports (an entry that never ran cannot
// appear, so nothing after a gap is reported).
func runEntries(ctx context.Context, entries []ReportEntry, d *Dataset, seed uint64, workers int) ([]Report, error) {
	reports := make([]Report, len(entries))
	errs := make([]error, len(entries))
	// fn never returns an experiment error: failures are collected in errs
	// so every entry runs (ForNCtx would otherwise stop dispatch at the
	// first one). Only cancellation cuts the fan-out short.
	ctxErr := par.ForNCtx(ctx, par.Workers(workers), len(entries), func(i int) error {
		reports[i], errs[i] = entries[i].Run(d, randx.New(seed).Split(entries[i].ID))
		return nil
	})
	out := make([]Report, 0, len(entries))
	for i, e := range entries {
		if ctxErr != nil && reports[i] == nil && errs[i] == nil {
			// Entry i never ran (cancelled before dispatch): report the
			// prefix that did complete.
			return out, ctxErr
		}
		if errs[i] != nil {
			return out, fmt.Errorf("broadband: %s: %w", e.ID, errs[i])
		}
		out = append(out, reports[i])
	}
	return out, ctxErr
}

// RunPaired evaluates the within-subject upgrade experiment (Table 1's
// design) over a switch panel with the given usage metric extractor.
func RunPaired(name string, switches []Switch, metric func(UsageSummary) float64) (ExperimentResult, error) {
	return core.RunPaired(name, switches, metric)
}

// Standard matching confounders.
var (
	ByRTT         = core.ConfounderRTT
	ByLoss        = core.ConfounderLoss
	ByAccessPrice = core.ConfounderAccessPrice
	ByUpgradeCost = core.ConfounderUpgradeCost
	ByCapacity    = core.ConfounderCapacity
)
