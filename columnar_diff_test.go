package broadband_test

import (
	"bytes"
	"fmt"
	"testing"

	broadband "github.com/nwca/broadband"
)

// The columnar differential suite pins the tentpole contract of the
// struct-of-arrays refactor: a dataset whose panel was built natively
// during synthesis and the same dataset with the cached panel discarded
// (forcing every experiment to rebuild columns from the row table) must
// produce byte-identical canonical artifacts, at any worker count. Any
// divergence — a column stored at different precision, a dictionary
// interned in a different order, an aggregation reordered — shows up here
// as a byte diff in the exact artifact that regressed.

// columnarDiffSeeds keep the suite cheap: the paper's date seed plus one
// unrelated seed.
var columnarDiffSeeds = []uint64{20140705, 7}

func TestColumnarRowEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("columnar differential builds two worlds; skipped with -short")
	}
	for _, seed := range columnarDiffSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			world, err := broadband.BuildWorld(broadband.WorldConfig{
				Seed:          seed,
				Users:         2500,
				FCCUsers:      600,
				Days:          2,
				SwitchTarget:  400,
				MinPerCountry: 30,
			})
			if err != nil {
				t.Fatal(err)
			}
			// rowOnly is the same dataset with the synth-built panel
			// dropped: experiments see identical rows but rebuild the
			// columnar form themselves.
			rowOnly := world.Data
			rowOnly.ResetPanel()

			want := marshalReports(t, &world.Data, seed, 1)
			for _, c := range []struct {
				name    string
				d       *broadband.Dataset
				workers int
			}{
				{"panel/workers=4", &world.Data, 4},
				{"rows/workers=1", &rowOnly, 1},
				{"rows/workers=4", &rowOnly, 4},
			} {
				got := marshalReports(t, c.d, seed, c.workers)
				for id, b := range want {
					if !bytes.Equal(b, got[id]) {
						t.Errorf("%s: artifact %s differs from the panel-native sequential run", c.name, id)
					}
				}
			}
		})
	}
}
