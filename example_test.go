package broadband_test

import (
	"fmt"

	broadband "github.com/nwca/broadband"
)

// The end-to-end flow: one seed produces the study's three datasets; any
// paper artifact regenerates against them.
func Example() {
	world, err := broadband.BuildWorld(broadband.WorldConfig{
		Seed: 7, Users: 400, FCCUsers: 60, Days: 1, SwitchTarget: 60,
	})
	if err != nil {
		panic(err)
	}
	rep, err := broadband.Run("Table 1", &world.Data, 1)
	if err != nil {
		panic(err)
	}
	res := rep.(interface {
		ID() string
		Title() string
	})
	fmt.Println(res.ID(), "—", res.Title())
	// Output:
	// Table 1 — Within-user upgrade experiment: demand on faster vs. slower service
}

// Designing a custom natural experiment with the matching engine.
func Example_customExperiment() {
	world, err := broadband.BuildWorld(broadband.WorldConfig{
		Seed: 7, Users: 400, FCCUsers: 60, Days: 1, SwitchTarget: 60,
	})
	if err != nil {
		panic(err)
	}
	var fast, slow []*broadband.User
	for i := range world.Data.Users {
		u := &world.Data.Users[i]
		switch {
		case u.Capacity > broadband.Mbps(8) && u.Capacity <= broadband.Mbps(16):
			fast = append(fast, u)
		case u.Capacity > broadband.Mbps(2) && u.Capacity <= broadband.Mbps(4):
			slow = append(slow, u)
		}
	}
	exp := broadband.Experiment{
		Name:      "capacity raises peak demand",
		Treatment: fast,
		Control:   slow,
		Matcher: broadband.Matcher{Confounders: []broadband.Confounder{
			broadband.ByRTT(), broadband.ByLoss(), broadband.ByAccessPrice(),
		}},
		Outcome: func(u *broadband.User) float64 { return float64(u.Usage.PeakNoBT) },
	}
	res, err := exp.Run(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("direction positive:", res.Fraction() > 0.5)
	fmt.Println("significant:", res.Sig.Significant())
	// Output:
	// direction positive: true
	// significant: true
}
