package broadband_test

import (
	"strings"
	"sync"
	"testing"

	broadband "github.com/nwca/broadband"
)

var (
	apiWorldOnce sync.Once
	apiWorld     *broadband.World
	apiWorldErr  error
)

func apiTestWorld(t *testing.T) *broadband.World {
	t.Helper()
	apiWorldOnce.Do(func() {
		apiWorld, apiWorldErr = broadband.BuildWorld(broadband.WorldConfig{
			Seed: 4, Users: 700, FCCUsers: 120, Days: 1, SwitchTarget: 60, MinPerCountry: 10,
		})
	})
	if apiWorldErr != nil {
		t.Fatal(apiWorldErr)
	}
	return apiWorld
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	w := apiTestWorld(t)
	if len(w.Data.Users) == 0 || len(w.Data.Plans) == 0 {
		t.Fatal("world looks empty")
	}
	rep, err := broadband.Run("Table 1", &w.Data, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Render(), "Table 1") {
		t.Errorf("render missing id: %q", rep.Render())
	}
	if _, err := broadband.Run("Table 42", &w.Data, 7); err == nil {
		t.Error("bogus experiment id should error")
	}
}

func TestPublicRunAll(t *testing.T) {
	w := apiTestWorld(t)
	reports, err := broadband.RunAll(&w.Data, 7)
	if err != nil {
		t.Fatalf("RunAll: %v (after %d reports)", err, len(reports))
	}
	if len(reports) != len(broadband.Experiments()) {
		t.Errorf("got %d reports, want %d", len(reports), len(broadband.Experiments()))
	}
}

func TestPublicCausalAPI(t *testing.T) {
	w := apiTestWorld(t)
	// Users on faster links should demand more, matched on quality & price.
	var fast, slow []*broadband.User
	for i := range w.Data.Users {
		u := &w.Data.Users[i]
		switch {
		case u.Capacity > broadband.Mbps(8) && u.Capacity <= broadband.Mbps(20):
			fast = append(fast, u)
		case u.Capacity > broadband.Mbps(1) && u.Capacity <= broadband.Mbps(4):
			slow = append(slow, u)
		}
	}
	exp := broadband.Experiment{
		Name:      "api demo",
		Treatment: fast,
		Control:   slow,
		Matcher: broadband.Matcher{Confounders: []broadband.Confounder{
			broadband.ByRTT(), broadband.ByLoss(), broadband.ByAccessPrice(),
		}},
		Outcome:  func(u *broadband.User) float64 { return float64(u.Usage.PeakNoBT) },
		MinPairs: 10,
	}
	res, err := exp.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fraction() <= 0.5 {
		t.Errorf("capacity effect inverted: %v", res)
	}
	// Paired design over the switch panel.
	paired, err := broadband.RunPaired("api paired", w.Data.Switches,
		func(s broadband.UsageSummary) float64 { return float64(s.PeakNoBT) })
	if err != nil {
		t.Fatal(err)
	}
	if paired.Pairs != len(w.Data.Switches) {
		t.Errorf("paired over %d, want %d", paired.Pairs, len(w.Data.Switches))
	}
}

func TestDefaultMarketsIsACopy(t *testing.T) {
	a := broadband.DefaultMarkets()
	if len(a) < 60 {
		t.Fatalf("markets = %d", len(a))
	}
	a[0].AccessPriceUSD = -1
	b := broadband.DefaultMarkets()
	if b[0].AccessPriceUSD == -1 {
		t.Error("DefaultMarkets leaked internal state")
	}
}
