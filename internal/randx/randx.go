// Package randx provides deterministic, splittable random number streams and
// the distributions the synthetic-world generator draws from.
//
// Reproducibility is a hard requirement: the entire study (three datasets,
// every table and figure) must regenerate bit-identically from a single world
// seed, and sub-systems must be able to evolve without perturbing each
// other's draws. Stream derivation therefore hashes a parent seed with a
// string label (FNV-1a), so "the latency stream for user 1234 in country BW"
// is a stable function of the world seed alone, independent of the order in
// which other streams were consumed.
package randx

import (
	"errors"
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps a PCG generator seeded
// from a (seed, label) derivation chain.
type Source struct {
	rng *rand.Rand
	lo  uint64
	hi  uint64
}

// New returns a root Source for the given seed.
func New(seed uint64) *Source {
	return fromState(seed, 0x9e3779b97f4a7c15) // golden-ratio constant mixes the hi word
}

func fromState(lo, hi uint64) *Source {
	return &Source{rng: rand.New(rand.NewPCG(lo, hi)), lo: lo, hi: hi}
}

// Split derives an independent child stream identified by label. Splitting
// does not consume randomness from the parent: the child state is a pure
// function of the parent's seed state and the label.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	var buf [16]byte
	putUint64(buf[0:8], s.lo)
	putUint64(buf[8:16], s.hi)
	h.Write(buf[:])
	h.Write([]byte(label))
	lo := h.Sum64()
	h.Write([]byte{0xff}) // decorrelate the second word
	hi := h.Sum64()
	return fromState(lo, hi)
}

// SplitN derives an independent child stream identified by label and an
// index, for per-entity streams ("user", i).
func (s *Source) SplitN(label string, n int) *Source {
	h := fnv.New64a()
	var buf [24]byte
	putUint64(buf[0:8], s.lo)
	putUint64(buf[8:16], s.hi)
	putUint64(buf[16:24], uint64(n))
	h.Write(buf[:])
	h.Write([]byte(label))
	lo := h.Sum64()
	h.Write([]byte{0xff})
	hi := h.Sum64()
	return fromState(lo, hi)
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// IntN returns a uniform draw in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.rng.IntN(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Normal returns a draw from the normal distribution with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// TruncNormal returns a normal draw rejected into [lo, hi]. If the interval
// is far in the tail it falls back to clamping after a bounded number of
// rejections, which is adequate for the generator's mild truncations.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal returns a draw whose logarithm is normal with parameters mu and
// sigma (the standard parameterization: median = exp(mu)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMedian returns a log-normal draw parameterized by its median and
// the sigma of the underlying normal — the natural way the demand model
// specifies "typical value with heavy right tail".
func (s *Source) LogNormalMedian(median, sigma float64) float64 {
	if median <= 0 {
		return 0
	}
	return s.LogNormal(math.Log(median), sigma)
}

// Exponential returns a draw from the exponential distribution with the
// given mean (not rate). A mean of zero or less returns zero.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Pareto returns a draw from a Pareto distribution with scale xm > 0 and
// shape alpha > 0: heavy-tailed session sizes and flow volumes.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := 1 - s.rng.Float64() // (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) draw truncated to [xm, hi] by
// inversion (exact, no rejection loop).
func (s *Source) BoundedPareto(xm, hi, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 || hi <= xm {
		return xm
	}
	u := s.rng.Float64()
	la, ha := math.Pow(xm, alpha), math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	return math.Min(hi, math.Max(xm, x))
}

// Gamma returns a draw from the gamma distribution with the given shape k>0
// and scale theta>0, using Marsaglia–Tsang for k >= 1 and boosting for k < 1.
func (s *Source) Gamma(k, theta float64) float64 {
	if k <= 0 || theta <= 0 {
		return 0
	}
	if k < 1 {
		// Boost: gamma(k) = gamma(k+1) * U^(1/k).
		u := 1 - s.rng.Float64()
		return s.Gamma(k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Beta returns a draw from the beta distribution with parameters a, b > 0,
// via the ratio of gamma variates.
func (s *Source) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	x := s.Gamma(a, 1)
	y := s.Gamma(b, 1)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// Poisson returns a draw from the Poisson distribution with the given mean,
// using Knuth's method for small means and normal approximation above 64
// (ample for session-arrival counts).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ErrEmptyWeights is returned by CategoricalErr when the weight vector is
// empty — the signature of a malformed catalog or mixture table.
var ErrEmptyWeights = errors.New("randx: categorical draw from empty weights")

// Categorical returns an index drawn with probability proportional to the
// given non-negative weights. It panics if weights is empty; callers whose
// weights come from configuration or external data should use
// CategoricalErr so a malformed input surfaces as an error instead of
// crashing a long generation run.
func (s *Source) Categorical(weights []float64) int {
	i, err := s.CategoricalErr(weights)
	if err != nil {
		panic(err)
	}
	return i
}

// CategoricalErr is Categorical with an error contract: it returns
// ErrEmptyWeights (and -1) when weights is empty. If all weights are zero
// it returns a uniform index.
func (s *Source) CategoricalErr(weights []float64) (int, error) {
	if len(weights) == 0 {
		return -1, ErrEmptyWeights
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.IntN(len(weights)), nil
	}
	u := s.rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}
