package randx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Split("demand")
	b := New(42).Split("demand")
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("same seed/label diverged at draw %d: %v != %v", i, x, y)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Consuming draws from one child must not perturb a sibling.
	root := New(7)
	a1 := root.Split("a")
	want := make([]float64, 10)
	for i := range want {
		want[i] = a1.Float64()
	}

	root2 := New(7)
	b := root2.Split("b")
	for i := 0; i < 1000; i++ {
		b.Float64()
	}
	a2 := root2.Split("a")
	for i := range want {
		if got := a2.Float64(); got != want[i] {
			t.Fatalf("sibling consumption changed stream at %d: %v != %v", i, got, want[i])
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	root := New(1)
	a := root.Split("alpha")
	b := root.Split("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different labels look correlated: %d/64 equal draws", same)
	}
}

func TestSplitNDiffer(t *testing.T) {
	root := New(1)
	a := root.SplitN("user", 1)
	b := root.SplitN("user", 2)
	c := root.SplitN("user", 1)
	if a.Float64() != c.Float64() {
		t.Error("SplitN with same index should be identical")
	}
	a2, b2 := New(1).SplitN("user", 1), b
	eq := 0
	for i := 0; i < 64; i++ {
		if a2.Float64() == b2.Float64() {
			eq++
		}
	}
	if eq > 2 {
		t.Errorf("SplitN(1) and SplitN(2) look correlated: %d/64 equal", eq)
	}
}

func sampleMeanVar(n int, draw func() float64) (mean, variance float64) {
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestNormalMoments(t *testing.T) {
	s := New(3).Split("normal")
	mean, v := sampleMeanVar(200000, func() float64 { return s.Normal(5, 2) })
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(v-4) > 0.15 {
		t.Errorf("normal var = %v, want ~4", v)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(4).Split("lognormal")
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormalMedian(3.5, 0.8)
	}
	// Median of a log-normal equals the median parameter.
	lt := 0
	for _, v := range vals {
		if v < 3.5 {
			lt++
		}
	}
	frac := float64(lt) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
	if s.LogNormalMedian(0, 1) != 0 {
		t.Error("LogNormalMedian(0, ...) should be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(5).Split("exp")
	mean, _ := sampleMeanVar(200000, func() float64 { return s.Exponential(7) })
	if math.Abs(mean-7) > 0.1 {
		t.Errorf("exponential mean = %v, want ~7", mean)
	}
	if s.Exponential(0) != 0 || s.Exponential(-1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestParetoSupport(t *testing.T) {
	s := New(6).Split("pareto")
	for i := 0; i < 10000; i++ {
		v := s.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto draw %v below scale 2", v)
		}
	}
	// Mean of Pareto(xm=2, alpha=3) is alpha*xm/(alpha-1) = 3.
	mean, _ := sampleMeanVar(300000, func() float64 { return s.Pareto(2, 3) })
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Pareto mean = %v, want ~3", mean)
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	s := New(61).Split("bpareto")
	for i := 0; i < 20000; i++ {
		v := s.BoundedPareto(1, 100, 1.2)
		if v < 1 || v > 100 {
			t.Fatalf("BoundedPareto draw %v outside [1, 100]", v)
		}
	}
	if got := s.BoundedPareto(5, 3, 1); got != 5 {
		t.Errorf("degenerate bounds should return xm, got %v", got)
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(8).Split("gamma")
	// Gamma(k, theta): mean k*theta, var k*theta^2.
	mean, v := sampleMeanVar(200000, func() float64 { return s.Gamma(3, 2) })
	if math.Abs(mean-6) > 0.1 {
		t.Errorf("gamma mean = %v, want ~6", mean)
	}
	if math.Abs(v-12) > 0.5 {
		t.Errorf("gamma var = %v, want ~12", v)
	}
	// Shape < 1 path.
	mean, _ = sampleMeanVar(200000, func() float64 { return s.Gamma(0.5, 2) })
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("gamma(0.5,2) mean = %v, want ~1", mean)
	}
}

func TestBetaMoments(t *testing.T) {
	s := New(9).Split("beta")
	// Beta(2, 5): mean 2/7.
	mean, _ := sampleMeanVar(200000, func() float64 { return s.Beta(2, 5) })
	if math.Abs(mean-2.0/7.0) > 0.01 {
		t.Errorf("beta mean = %v, want ~%v", mean, 2.0/7.0)
	}
	for i := 0; i < 10000; i++ {
		v := s.Beta(0.5, 0.5)
		if v < 0 || v > 1 {
			t.Fatalf("beta draw %v outside [0,1]", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(10).Split("poisson")
	for _, mean := range []float64{0.5, 4, 30, 200} {
		sum := 0.0
		n := 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestBool(t *testing.T) {
	s := New(11).Split("bool")
	if s.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestCategorical(t *testing.T) {
	s := New(12).Split("cat")
	counts := make([]int, 3)
	n := 90000
	for i := 0; i < n; i++ {
		counts[s.Categorical([]float64{1, 2, 3})]++
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Categorical index %d freq = %v, want ~%v", i, got, want)
		}
	}
	// All-zero weights fall back to uniform, negative weights are ignored.
	idx := s.Categorical([]float64{0, 0})
	if idx != 0 && idx != 1 {
		t.Errorf("Categorical zero weights gave %d", idx)
	}
	for i := 0; i < 100; i++ {
		if s.Categorical([]float64{-5, 0, 1}) != 2 {
			t.Fatal("Categorical must never pick a non-positive weight when a positive one exists")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Categorical(nil) should panic")
		}
	}()
	New(1).Categorical(nil)
}

func TestCategoricalErr(t *testing.T) {
	// Empty weights surface the sentinel instead of panicking.
	for _, weights := range [][]float64{nil, {}} {
		i, err := New(1).CategoricalErr(weights)
		if !errors.Is(err, ErrEmptyWeights) {
			t.Errorf("CategoricalErr(%v) error = %v, want ErrEmptyWeights", weights, err)
		}
		if i != -1 {
			t.Errorf("CategoricalErr(%v) index = %d, want -1", weights, i)
		}
	}
	// On valid input the two entry points consume identical randomness and
	// agree draw for draw.
	a, b := New(77).Split("agree"), New(77).Split("agree")
	weights := []float64{0.5, 0, 3, 1.25}
	for i := 0; i < 1000; i++ {
		got, err := a.CategoricalErr(weights)
		if err != nil {
			t.Fatal(err)
		}
		if want := b.Categorical(weights); got != want {
			t.Fatalf("draw %d: CategoricalErr %d, Categorical %d", i, got, want)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(13).Split("trunc")
	f := func(seed int64) bool {
		v := s.TruncNormal(10, 5, 8, 12)
		return v >= 8 && v <= 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Deep-tail truncation falls back to clamping but stays in bounds.
	v := s.TruncNormal(0, 0.001, 50, 60)
	if v < 50 || v > 60 {
		t.Errorf("deep-tail TruncNormal = %v outside [50,60]", v)
	}
	// Swapped bounds are tolerated.
	v = s.TruncNormal(0, 1, 2, -2)
	if v < -2 || v > 2 {
		t.Errorf("swapped-bound TruncNormal = %v outside [-2,2]", v)
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := New(14).Split("perm")
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
	vals := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle changed multiset, sum = %d", sum)
	}
}
