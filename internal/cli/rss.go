package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes reports the process's high-water resident set size, read
// from /proc/self/status (VmHWM). It returns 0 on platforms without procfs
// — callers treat 0 as "unknown", never as a budget violation. The CI
// out-of-core smoke asserts on this number, so it must reflect the whole
// process, not the Go heap (syscall buffers, mmaps and the runtime all
// count against a real machine's memory).
func PeakRSSBytes() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// PeakRSS renders PeakRSSBytes for log lines ("312.4 MiB", or "unknown").
func PeakRSS() string {
	b := PeakRSSBytes()
	if b <= 0 {
		return "unknown"
	}
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d KiB", b>>10)
	}
}
