// Package cli holds the shared plumbing of the repo's commands: the
// signal-aware root context and the exit-code convention. Every command
// cancels its work on SIGINT/SIGTERM and exits 130 (the shell convention
// for a signal-terminated run) instead of leaving partial output behind —
// all artifact writes go through internal/fsx, so an interrupted command
// leaves either a complete file or no file.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the exit status of a run cancelled by SIGINT/SIGTERM.
const ExitInterrupted = 130

// Context returns a context cancelled on SIGINT or SIGTERM. Call the stop
// function when shutdown handling is no longer needed; a second signal
// after stop kills the process the default way.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Exit prints the error as "prog: err" and exits: with ExitInterrupted when
// the chain carries a context cancellation, else with code.
func Exit(prog string, err error, code int) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", prog)
		os.Exit(ExitInterrupted)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(code)
}
