package dataset

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Out-of-core shard layout (DESIGN.md §8): a user panel too large to
// materialize is stored as N shard files
//
//	users-00000-of-00008.csv[.gz] … users-00007-of-00008.csv[.gz]
//
// next to the usual switches.csv and plans.csv. Every shard is a complete,
// independently readable users CSV (header included), written through the
// streaming writers with constant per-row memory; concatenating the shard
// bodies in index order yields exactly the rows of the monolithic
// users.csv. Readers never see the difference: StreamUsersDir returns a
// UserSource over either layout, and LoadDir falls back to the shard set
// when users.csv is absent.

// userShardRe matches a shard file name and captures (index, total, gz).
var userShardRe = regexp.MustCompile(`^users-(\d{5})-of-(\d{5})\.csv(\.gz)?$`)

// UserShardName returns the canonical file name of user shard i of total
// (0-based), e.g. "users-00002-of-00008.csv" or ".csv.gz".
func UserShardName(i, total int, gz bool) string {
	name := fmt.Sprintf("users-%05d-of-%05d.csv", i, total)
	if gz {
		name += ".gz"
	}
	return name
}

// FindUserShards scans dir for a complete user shard set and returns the
// shard paths in index order. It returns fs.ErrNotExist (wrapped) when dir
// holds no shards at all, and a descriptive error for an incomplete or
// inconsistent set (mixed totals, missing or duplicate indices) — a
// truncated copy must fail loudly, not load a partial panel silently.
func FindUserShards(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type shard struct {
		idx  int
		path string
	}
	var shards []shard
	total := -1
	for _, e := range entries {
		m := userShardRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		idx, _ := strconv.Atoi(m[1])
		tot, _ := strconv.Atoi(m[2])
		if total == -1 {
			total = tot
		} else if tot != total {
			return nil, fmt.Errorf("dataset: %s: mixed shard totals (%d and %d)", dir, total, tot)
		}
		shards = append(shards, shard{idx: idx, path: filepath.Join(dir, e.Name())})
	}
	if total == -1 {
		return nil, fmt.Errorf("dataset: %s: no user shards: %w", dir, os.ErrNotExist)
	}
	if total == 0 || len(shards) != total {
		return nil, fmt.Errorf("dataset: %s: incomplete shard set: have %d files, names declare %d shards", dir, len(shards), total)
	}
	sort.Slice(shards, func(a, b int) bool { return shards[a].idx < shards[b].idx })
	paths := make([]string, total)
	for want, s := range shards {
		if s.idx != want {
			return nil, fmt.Errorf("dataset: %s: shard set has duplicate or missing index %d", dir, want)
		}
		paths[want] = s.path
	}
	return paths, nil
}

// WriteUserShardCtx writes user shard i of total under dir through fn's
// streaming writer. The file is staged and renamed into place only after a
// complete write (the usual atomic-table contract), and an empty shard is
// a valid header-only CSV, so a shard set is always complete and loadable.
// It returns the final path.
func WriteUserShardCtx(ctx context.Context, dir string, i, total int, gz bool, fn func(*UserWriter) error) (string, error) {
	if i < 0 || total <= 0 || i >= total {
		return "", fmt.Errorf("dataset: shard index %d of %d out of range", i, total)
	}
	path := filepath.Join(dir, UserShardName(i, total, gz))
	err := writeTableCtx(ctx, path, gz, func(w io.Writer) error {
		uw, err := NewUserWriter(w)
		if err != nil {
			return err
		}
		return fn(uw)
	})
	if err != nil {
		return "", fmt.Errorf("dataset: writing %s: %w", filepath.Base(path), err)
	}
	return path, nil
}

// UserStream is a closable UserSource over the user table of a dataset
// directory — the monolithic users.csv(.gz) or a shard set — opening one
// file at a time, so resident memory is one reader regardless of panel
// size. Errors carry the real path and row of the failing record.
type UserStream struct {
	files []string
	next  int
	rc    io.ReadCloser
	ur    *UserReader
}

// StreamUsersDir opens the user table under dir for streaming: users.csv
// (or users.csv.gz) when present, else the complete shard set. The caller
// owns Close.
func StreamUsersDir(dir string) (*UserStream, error) {
	// The monolithic file wins when both layouts are present: it is what
	// SaveDir writes, and a stray shard set cannot shadow it.
	if rc, path, err := openTablePath(dir, "users.csv"); err == nil {
		ur, err := NewUserReaderFile(rc, path)
		if err != nil {
			rc.Close()
			return nil, err
		}
		return &UserStream{files: []string{path}, next: 1, rc: rc, ur: ur}, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	files, err := FindUserShards(dir)
	if err != nil {
		return nil, err
	}
	return &UserStream{files: files}, nil
}

// Files returns the paths the stream reads, in order.
func (s *UserStream) Files() []string { return s.files }

// open advances to shard s.next.
func (s *UserStream) open() error {
	path := s.files[s.next]
	rc, err := openPath(path)
	if err != nil {
		return err
	}
	ur, err := NewUserReaderFile(rc, path)
	if err != nil {
		rc.Close()
		return err
	}
	s.rc, s.ur, s.next = rc, ur, s.next+1
	return nil
}

// Read yields the next user across the file sequence, returning io.EOF
// after the last row of the last file. An empty (header-only) shard is
// skipped transparently.
func (s *UserStream) Read(u *User) error {
	for {
		if s.ur == nil {
			if s.next >= len(s.files) {
				return io.EOF
			}
			if err := s.open(); err != nil {
				return err
			}
		}
		err := s.ur.Read(u)
		if err == nil {
			return nil
		}
		if err != io.EOF {
			return err
		}
		if cerr := s.closeCurrent(); cerr != nil {
			return cerr
		}
	}
}

// closeCurrent closes the active file and clears the reader state.
func (s *UserStream) closeCurrent() error {
	if s.rc == nil {
		return nil
	}
	err := s.rc.Close()
	s.rc, s.ur = nil, nil
	return err
}

// Close releases the open file, if any. It is safe after EOF and idempotent.
func (s *UserStream) Close() error { return s.closeCurrent() }
