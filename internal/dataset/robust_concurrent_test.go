package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// dirtyDatasetDir writes a sample dataset and perturbs its users table
// with a variant-specific mix of quarantine-class dirt. Each variant has a
// distinct diagnostic fingerprint, so a cross-contaminated concurrent load
// (one goroutine's diags bleeding into another's report) cannot match its
// directory's reference.
func dirtyDatasetDir(t *testing.T, variant int) string {
	t.Helper()
	dir := t.TempDir()
	d := sampleDataset()
	// The robust loader rebuilds market summaries from the saved plan
	// survey; give both countries enough of a plan ladder for the
	// upgrade-cost regression to succeed (mirrors TestLoadDirRoundTrip).
	for _, mbps := range []float64{1, 2, 4, 8, 16} {
		d.Plans = append(d.Plans,
			planFor("US", mbps, 20+0.55*(mbps-1)),
			planFor("JP", mbps, 21+0.08*(mbps-1)),
		)
	}
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "users.csv")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	header, first := lines[0], lines[1]
	fields := strings.Count(header, ",") + 1

	switch variant % 3 {
	case 0: // one duplicated row → FaultDuplicate
		lines = append(lines, first)
	case 1: // wrong field count → FaultSyntax, plus a duplicate
		lines = append(lines, "garbage", first)
	case 2: // right field count, unparseable fields → FaultParse, twice
		junk := strings.TrimSuffix(strings.Repeat("x,", fields), ",")
		lines = append(lines, junk, junk)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLoadDirRobustConcurrent pins quarantine ingestion under concurrent
// uploads: goroutines overlapping on a shared set of dirty directories
// must each produce exactly the RowDiag set a sequential load of their
// directory produces — no cross-contamination between racing reports, no
// shared mutable state in the readers. Run under -race in CI.
func TestLoadDirRobustConcurrent(t *testing.T) {
	const dirs = 3
	const loadersPerDir = 4
	// Each variant dirties 1–2 of a handful of rows — far past the default
	// 5% budget by design; the test is about report isolation, not budgets.
	loose := QuarantineOptions{MaxBadFrac: 0.9}

	paths := make([]string, dirs)
	want := make([]*QuarantineReport, dirs)
	wantUsers := make([]int, dirs)
	for i := range paths {
		paths[i] = dirtyDatasetDir(t, i)
		d, rep, err := LoadDirRobust(paths[i], loose)
		if err != nil {
			t.Fatalf("reference load %d: %v", i, err)
		}
		if len(rep.Diags) == 0 {
			t.Fatalf("variant %d injected no quarantinable dirt", i)
		}
		want[i] = rep
		wantUsers[i] = len(d.Users)
	}

	var wg sync.WaitGroup
	errs := make(chan error, dirs*loadersPerDir)
	for i := 0; i < dirs; i++ {
		for j := 0; j < loadersPerDir; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				d, rep, err := LoadDirRobust(paths[i], loose)
				if err != nil {
					errs <- fmt.Errorf("loader %d/%d: %v", i, j, err)
					return
				}
				if err := d.Validate(); err != nil {
					errs <- fmt.Errorf("loader %d/%d: quarantine let corruption through: %v", i, j, err)
					return
				}
				if len(d.Users) != wantUsers[i] {
					errs <- fmt.Errorf("loader %d/%d: %d users, want %d", i, j, len(d.Users), wantUsers[i])
					return
				}
				if !reflect.DeepEqual(rep.Diags, want[i].Diags) {
					errs <- fmt.Errorf("loader %d/%d: diag set diverged from sequential reference:\n got %v\nwant %v",
						i, j, rep.Diags, want[i].Diags)
					return
				}
				if rep.RowsRead != want[i].RowsRead || rep.RowsKept != want[i].RowsKept {
					errs <- fmt.Errorf("loader %d/%d: counts %d/%d, want %d/%d",
						i, j, rep.RowsKept, rep.RowsRead, want[i].RowsKept, want[i].RowsRead)
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
