package dataset

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// fuzzSeedCSV builds the seed corpus: a well-formed users table plus the
// corruption fixtures the error-path tests pin (truncation, extra fields,
// permuted header, garbled booleans).
func fuzzSeedCSV(f *testing.F) {
	var b bytes.Buffer
	if err := WriteUsers(&b, manyUsers(5)); err != nil {
		f.Fatal(err)
	}
	full := b.String()
	lines := strings.SplitAfter(full, "\n")
	f.Add(full)
	f.Add(lines[0])                                                     // header only
	f.Add(full[:len(full)-10])                                          // truncated mid-record
	f.Add(lines[0] + strings.TrimSuffix(lines[1], "\n") + ",garbage\n") // extra field
	f.Add(strings.Replace(full, "id,country", "country,id", 1))         // permuted header
	f.Add(strings.Replace(full, "true", "truex", 1))                    // garbled bool
	f.Add("")
	f.Add("id\n1\n")
	f.Add(lines[0] + "\x00\n")
}

// FuzzUserReader throws arbitrary bytes at the users CSV decoders. Three
// contracts hold for any input: no panic; the streaming reader and the
// slice API agree on accept/reject and on every decoded row; and any
// accepted input reaches the save→load fixed point in one cycle (re-saving
// the loaded rows is byte-identical — the lossless-serialization contract).
func FuzzUserReader(f *testing.F) {
	fuzzSeedCSV(f)
	f.Fuzz(func(t *testing.T, data string) {
		users, err := ReadUsers(strings.NewReader(data))

		// Differential: the record-at-a-time reader must agree exactly.
		var streamed []User
		var serr error
		if ur, uerr := NewUserReader(strings.NewReader(data)); uerr != nil {
			serr = uerr
		} else {
			var u User
			for {
				rerr := ur.Read(&u)
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					serr = rerr
					break
				}
				streamed = append(streamed, u)
			}
		}
		if (err == nil) != (serr == nil) {
			t.Fatalf("slice err %v vs stream err %v", err, serr)
		}
		if err != nil {
			return
		}
		if len(users) != len(streamed) {
			t.Fatalf("slice decoded %d rows, stream %d", len(users), len(streamed))
		}
		for i := range users {
			if users[i] != streamed[i] {
				t.Fatalf("row %d: slice %+v vs stream %+v", i, users[i], streamed[i])
			}
		}

		// Unit-scaled fields settle after one write→read cycle; from there
		// the table must re-serialize bit-for-bit.
		var first bytes.Buffer
		if werr := WriteUsers(&first, users); werr != nil {
			t.Fatalf("rewrite of accepted input failed: %v", werr)
		}
		settled, rerr := ReadUsers(bytes.NewReader(first.Bytes()))
		if rerr != nil {
			t.Fatalf("rewritten table does not re-parse: %v", rerr)
		}
		var second bytes.Buffer
		if werr := WriteUsers(&second, settled); werr != nil {
			t.Fatal(werr)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("accepted input did not reach the save→load fixed point in one cycle")
		}
	})
}
