package dataset

import (
	"io"
	"reflect"
	"testing"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// panelUsers builds a varied user table exercising every panel column:
// several countries, both vantages, multiple years, capped and uncapped
// plans, all archetypes and a spread of technologies.
func panelUsers(n int) []User {
	countries := []string{"US", "JP", "IN", "BW", "SA"}
	techs := []market.Technology{market.DSL, market.Cable, market.Fiber}
	users := make([]User, n)
	for i := range users {
		u := sampleUser(int64(i+1), countries[i%len(countries)], 0.3+float64(i%60)*0.9)
		u.Year = 2011 + i%4
		u.PlanTech = techs[i%len(techs)]
		u.Archetype = traffic.Archetype(i % 5)
		u.WebRTT = 0.02 + float64(i%7)*0.01
		u.RTT = 0.01 + float64(i%40)*0.02
		u.Loss = unit.LossRate(float64(i%15) * 0.001)
		if i%3 == 0 {
			u.Vantage = VantageGateway
		}
		if i%4 == 0 {
			u.PlanCap = unit.ByteSize(int64(i+1) * 50 << 30)
		}
		u.UsesBT = i%2 == 0
		users[i] = u
	}
	return users
}

func TestPanelRoundTrip(t *testing.T) {
	users := panelUsers(97)
	p := BuildPanel(users)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Len() != len(users) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(users))
	}
	back := p.Users()
	if !reflect.DeepEqual(users, back) {
		t.Fatal("User → Panel → User round-trip is not lossless")
	}
	// Row-at-a-time materialization agrees with bulk materialization.
	var u User
	for i := range users {
		p.UserAt(i, &u)
		if !reflect.DeepEqual(users[i], u) {
			t.Fatalf("UserAt(%d) mismatch", i)
		}
	}
}

func TestPanelPeakUtilizationMatchesRow(t *testing.T) {
	users := panelUsers(50)
	users[7].Capacity = 0 // degenerate row: utilization must clamp to 0
	users[9].Usage.PeakNoBT = users[9].Capacity * 3
	p := BuildPanel(users)
	for i := range users {
		if got, want := p.PeakUtilization(i), users[i].PeakUtilization(); got != want {
			t.Fatalf("row %d: PeakUtilization = %v, want %v", i, got, want)
		}
	}
}

// predPairs are matched row/columnar predicate stacks: Select with the
// Pred side must agree exactly with Where on the ColPred side.
func predPairs() []struct {
	name string
	row  []Pred
	col  []ColPred
} {
	return []struct {
		name string
		row  []Pred
		col  []ColPred
	}{
		{"country", []Pred{ByCountry("US")}, []ColPred{ColCountry("US")}},
		{"not-country", []Pred{NotCountry("IN")}, []ColPred{ColNotCountry("IN")}},
		{"missing-country", []Pred{ByCountry("ZZ")}, []ColPred{ColCountry("ZZ")}},
		{"missing-not-country", []Pred{NotCountry("ZZ")}, []ColPred{ColNotCountry("ZZ")}},
		{"vantage", []Pred{ByVantage(VantageGateway)}, []ColPred{ColVantage(VantageGateway)}},
		{"year", []Pred{ByYear(2012)}, []ColPred{ColYear(2012)}},
		{"tier", []Pred{ByTier(stats.Tiers()[1])}, []ColPred{ColTier(stats.Tiers()[1])}},
		{"class", []Pred{ByClass(stats.ClassOf(unit.MbpsOf(3)))}, []ColPred{ColClass(stats.ClassOf(unit.MbpsOf(3)))}},
		{"capacity", []Pred{CapacityBetween(unit.MbpsOf(2), unit.MbpsOf(20))},
			[]ColPred{ColCapacityBetween(unit.MbpsOf(2), unit.MbpsOf(20))}},
		{"stack", []Pred{ByCountry("US"), ByVantage(VantageDasu), ByYear(2011)},
			[]ColPred{ColCountry("US"), ColVantage(VantageDasu), ColYear(2011)}},
		{"empty-stack", nil, nil},
	}
}

func TestWhereMatchesSelect(t *testing.T) {
	users := panelUsers(200)
	p := BuildPanel(users)
	for _, tc := range predPairs() {
		sel := Select(users, tc.row...)
		v := p.Where(tc.col...)
		if len(sel) != v.Len() {
			t.Fatalf("%s: Select kept %d, Where kept %d", tc.name, len(sel), v.Len())
		}
		mats := v.Users()
		for k := range sel {
			if !reflect.DeepEqual(*sel[k], *mats[k]) {
				t.Fatalf("%s: row %d differs between Select and Where", tc.name, k)
			}
		}
		// SelectIdx agrees with both.
		idx := SelectIdx(users, tc.row...)
		if len(idx) != len(sel) {
			t.Fatalf("%s: SelectIdx kept %d, Select kept %d", tc.name, len(idx), len(sel))
		}
		for k, j := range idx {
			if int32(j) != v.Idx[k] {
				t.Fatalf("%s: SelectIdx[%d] = %d, Where idx = %d", tc.name, k, j, v.Idx[k])
			}
		}
	}
}

func TestViewChainingEqualsCombinedWhere(t *testing.T) {
	users := panelUsers(150)
	p := BuildPanel(users)
	combined := p.Where(ColCountry("US"), ColVantage(VantageDasu), ColYear(2011))
	chained := p.Where(ColCountry("US")).Where(ColVantage(VantageDasu)).Where(ColYear(2011))
	if !reflect.DeepEqual(combined.Idx, chained.Idx) {
		t.Fatalf("chained Where = %v, combined = %v", chained.Idx, combined.Idx)
	}
}

func TestViewGatherAndSource(t *testing.T) {
	users := panelUsers(60)
	p := BuildPanel(users)
	v := p.Where(ColVantage(VantageDasu))
	caps := v.Gather(p.Capacity)
	if len(caps) != v.Len() {
		t.Fatalf("Gather returned %d values for %d rows", len(caps), v.Len())
	}
	for k, i := range v.Idx {
		if caps[k] != float64(users[i].Capacity) {
			t.Fatalf("Gather[%d] = %v, want %v", k, caps[k], float64(users[i].Capacity))
		}
	}
	// Source streams the same rows in the same order.
	src := v.Source()
	var u User
	k := 0
	for {
		err := src.Read(&u)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(u, users[v.Idx[k]]) {
			t.Fatalf("Source row %d mismatch", k)
		}
		k++
	}
	if k != v.Len() {
		t.Fatalf("Source yielded %d rows, want %d", k, v.Len())
	}
}

func TestPanelValidateCatchesMismatch(t *testing.T) {
	p := BuildPanel(panelUsers(10))
	p.RTT = p.RTT[:5]
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted a ragged panel")
	}
	p2 := BuildPanel(panelUsers(10))
	p2.Country[3] = 99
	if err := p2.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range dictionary code")
	}
}

func TestDatasetPanelCache(t *testing.T) {
	d := sampleDataset()
	// Unfrozen: Panel() builds on the fly, no cache write.
	p1 := d.Panel()
	p2 := d.Panel()
	if p1 == p2 {
		t.Fatal("uncached Panel() returned the same instance twice")
	}
	// Freeze caches; Panel() then returns the cached instance.
	f := d.Freeze()
	if got := d.Panel(); got != f {
		t.Fatal("Panel() ignored the frozen cache")
	}
	// Mutating the row count invalidates the cache.
	d.Users = append(d.Users, sampleUser(99, "US", 5))
	if got := d.Panel(); got == f {
		t.Fatal("Panel() returned a stale cache after Users grew")
	}
	if got := d.Freeze(); got == f {
		t.Fatal("Freeze() kept a stale cache after Users grew")
	}
	// AttachPanel rejects a mismatched panel, accepts a matching one.
	d2 := sampleDataset()
	d2.AttachPanel(BuildPanel(d2.Users[:1]))
	if d2.panel != nil {
		t.Fatal("AttachPanel accepted a panel with the wrong row count")
	}
	good := BuildPanel(d2.Users)
	d2.AttachPanel(good)
	if d2.Panel() != good {
		t.Fatal("AttachPanel did not install the matching panel")
	}
	d2.ResetPanel()
	if d2.panel != nil {
		t.Fatal("ResetPanel left the cache in place")
	}
}

func TestDictDeterminism(t *testing.T) {
	d := NewDict()
	words := []string{"b", "a", "b", "c", "a"}
	var got []uint32
	for _, w := range words {
		got = append(got, d.Intern(w))
	}
	want := []uint32{0, 1, 0, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Intern codes = %v, want %v (first-appearance order)", got, want)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if d.Value(2) != "c" {
		t.Fatalf("Value(2) = %q, want %q", d.Value(2), "c")
	}
	if _, ok := d.Code("zzz"); ok {
		t.Fatal("Code found a string never interned")
	}
}

// FuzzPanelWhere drives random predicate stacks through both selection
// pipelines: dataset.Select over rows and Panel.Where over columns must
// keep exactly the same rows in the same order.
func FuzzPanelWhere(f *testing.F) {
	f.Add([]byte{0}, uint8(1))
	f.Add([]byte{1, 14, 33}, uint8(7))
	f.Add([]byte{250, 9, 120, 77}, uint8(100))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint8) {
		users := panelUsers(30 + int(seed)%90)
		p := BuildPanel(users)
		countries := []string{"US", "JP", "IN", "BW", "SA", "ZZ"}
		var row []Pred
		var col []ColPred
		for _, b := range ops {
			if len(row) >= 4 {
				break
			}
			arg := int(b / 8)
			switch b % 8 {
			case 0:
				cc := countries[arg%len(countries)]
				row, col = append(row, ByCountry(cc)), append(col, ColCountry(cc))
			case 1:
				cc := countries[arg%len(countries)]
				row, col = append(row, NotCountry(cc)), append(col, ColNotCountry(cc))
			case 2:
				v := Vantage(arg % 2)
				row, col = append(row, ByVantage(v)), append(col, ColVantage(v))
			case 3:
				y := 2010 + arg%6
				row, col = append(row, ByYear(y)), append(col, ColYear(y))
			case 4:
				tier := stats.Tiers()[arg%len(stats.Tiers())]
				row, col = append(row, ByTier(tier)), append(col, ColTier(tier))
			case 5:
				c := stats.ClassOf(unit.KbpsOf(150)) + stats.CapacityClass(arg%12)
				row, col = append(row, ByClass(c)), append(col, ColClass(c))
			case 6:
				lo := unit.MbpsOf(float64(arg % 30))
				hi := lo + unit.MbpsOf(1+float64(arg%25))
				row, col = append(row, CapacityBetween(lo, hi)), append(col, ColCapacityBetween(lo, hi))
			case 7:
				// no-op: vary stack lengths
			}
		}
		sel := Select(users, row...)
		v := p.Where(col...)
		if len(sel) != v.Len() {
			t.Fatalf("Select kept %d rows, Where kept %d", len(sel), v.Len())
		}
		for k := range sel {
			if sel[k].ID != p.ID[v.Idx[k]] {
				t.Fatalf("row %d: Select ID %d vs Where ID %d", k, sel[k].ID, p.ID[v.Idx[k]])
			}
		}
		mats := v.Users()
		for k := range sel {
			if !reflect.DeepEqual(*sel[k], *mats[k]) {
				t.Fatalf("row %d differs after materialization", k)
			}
		}
	})
}
