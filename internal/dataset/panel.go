package dataset

import (
	"fmt"
	"io"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// Dict interns strings as dense small-int codes in first-appearance order.
// Interning is deterministic: appending the same rows in the same order
// always yields the same code assignment, which keeps panel-based results
// byte-identical across runs and worker counts.
//
// Dict is not safe for concurrent mutation; a fully built Dict is safe for
// concurrent reads.
type Dict struct {
	codes map[string]uint32
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{codes: make(map[string]uint32)} }

// Intern returns the code of s, assigning the next free code on first
// appearance.
func (d *Dict) Intern(s string) uint32 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.codes[s] = c
	d.vals = append(d.vals, s)
	return c
}

// Code returns the code of s, if interned.
func (d *Dict) Code(s string) (uint32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// Value returns the string behind a code.
func (d *Dict) Value(c uint32) string { return d.vals[c] }

// Len returns the number of distinct interned strings.
func (d *Dict) Len() int { return len(d.vals) }

// Panel is the struct-of-arrays form of the user table: one slice per
// column, string identities dictionary-encoded. The experiments' inner
// loops aggregate a handful of float columns over large populations; the
// columnar layout walks 8 bytes per element instead of dragging the whole
// ~200-byte User row through the cache, and selection becomes an index
// vector instead of a pointer list.
//
// Panel is a projection of []User, not a replacement: rows materialize
// back via UserAt/Users/Source (for CSV I/O, UserSource streaming and the
// matcher, which stay row-based), and the round-trip User → Panel → User
// is lossless. Rates, prices and loss fractions are stored as raw float64
// (bps, USD, fractions) so stats aggregations consume columns directly;
// the unit newtypes are reapplied on materialization.
//
// A built Panel is immutable by convention and safe for concurrent reads.
// Row indices are int32: an in-core panel of ≥2^31 rows is far past the
// point where the out-of-core shard pipeline takes over.
type Panel struct {
	// Dictionaries for the three string columns.
	Countries, ISPs, Networks *Dict

	ID      []int64
	Country []uint32 // code into Countries
	Vantage []Vantage
	Year    []int

	ISP     []uint32 // code into ISPs
	Network []uint32 // code into Networks

	PlanDown  []float64 // bps
	PlanUp    []float64 // bps
	PlanPrice []float64 // USD
	PlanTech  []market.Technology
	PlanCap   []int64 // bytes; 0 = unlimited

	Capacity   []float64 // bps
	UpCapacity []float64 // bps
	RTT        []float64 // seconds
	WebRTT     []float64 // seconds
	Loss       []float64 // fraction

	UsageMean     []float64 // bps
	UsagePeak     []float64 // bps
	UsageMeanNoBT []float64 // bps
	UsagePeakNoBT []float64 // bps
	UsesBT        []bool
	Archetype     []traffic.Archetype

	AccessPrice []float64 // USD
	UpgradeCost []float64 // USD per Mbps
}

// NewPanel returns an empty panel with capacity for n rows.
func NewPanel(n int) *Panel {
	return &Panel{
		Countries: NewDict(),
		ISPs:      NewDict(),
		Networks:  NewDict(),

		ID:      make([]int64, 0, n),
		Country: make([]uint32, 0, n),
		Vantage: make([]Vantage, 0, n),
		Year:    make([]int, 0, n),

		ISP:     make([]uint32, 0, n),
		Network: make([]uint32, 0, n),

		PlanDown:  make([]float64, 0, n),
		PlanUp:    make([]float64, 0, n),
		PlanPrice: make([]float64, 0, n),
		PlanTech:  make([]market.Technology, 0, n),
		PlanCap:   make([]int64, 0, n),

		Capacity:   make([]float64, 0, n),
		UpCapacity: make([]float64, 0, n),
		RTT:        make([]float64, 0, n),
		WebRTT:     make([]float64, 0, n),
		Loss:       make([]float64, 0, n),

		UsageMean:     make([]float64, 0, n),
		UsagePeak:     make([]float64, 0, n),
		UsageMeanNoBT: make([]float64, 0, n),
		UsagePeakNoBT: make([]float64, 0, n),
		UsesBT:        make([]bool, 0, n),
		Archetype:     make([]traffic.Archetype, 0, n),

		AccessPrice: make([]float64, 0, n),
		UpgradeCost: make([]float64, 0, n),
	}
}

// BuildPanel converts a row-form user table to columns.
func BuildPanel(users []User) *Panel {
	p := NewPanel(len(users))
	for i := range users {
		p.Append(&users[i])
	}
	return p
}

// Append adds one user row to the columns. Not safe for concurrent use.
func (p *Panel) Append(u *User) {
	p.ID = append(p.ID, u.ID)
	p.Country = append(p.Country, p.Countries.Intern(u.Country))
	p.Vantage = append(p.Vantage, u.Vantage)
	p.Year = append(p.Year, u.Year)

	p.ISP = append(p.ISP, p.ISPs.Intern(u.ISP))
	p.Network = append(p.Network, p.Networks.Intern(u.NetworkKey))

	p.PlanDown = append(p.PlanDown, float64(u.PlanDown))
	p.PlanUp = append(p.PlanUp, float64(u.PlanUp))
	p.PlanPrice = append(p.PlanPrice, float64(u.PlanPrice))
	p.PlanTech = append(p.PlanTech, u.PlanTech)
	p.PlanCap = append(p.PlanCap, int64(u.PlanCap))

	p.Capacity = append(p.Capacity, float64(u.Capacity))
	p.UpCapacity = append(p.UpCapacity, float64(u.UpCapacity))
	p.RTT = append(p.RTT, u.RTT)
	p.WebRTT = append(p.WebRTT, u.WebRTT)
	p.Loss = append(p.Loss, float64(u.Loss))

	p.UsageMean = append(p.UsageMean, float64(u.Usage.Mean))
	p.UsagePeak = append(p.UsagePeak, float64(u.Usage.Peak))
	p.UsageMeanNoBT = append(p.UsageMeanNoBT, float64(u.Usage.MeanNoBT))
	p.UsagePeakNoBT = append(p.UsagePeakNoBT, float64(u.Usage.PeakNoBT))
	p.UsesBT = append(p.UsesBT, u.UsesBT)
	p.Archetype = append(p.Archetype, u.Archetype)

	p.AccessPrice = append(p.AccessPrice, float64(u.AccessPrice))
	p.UpgradeCost = append(p.UpgradeCost, float64(u.UpgradeCost))
}

// Len returns the row count.
func (p *Panel) Len() int { return len(p.ID) }

// UserAt materializes row i into u.
func (p *Panel) UserAt(i int, u *User) {
	*u = User{
		ID:      p.ID[i],
		Country: p.Countries.Value(p.Country[i]),
		Vantage: p.Vantage[i],
		Year:    p.Year[i],

		ISP:        p.ISPs.Value(p.ISP[i]),
		NetworkKey: p.Networks.Value(p.Network[i]),

		PlanDown:  unit.Bitrate(p.PlanDown[i]),
		PlanUp:    unit.Bitrate(p.PlanUp[i]),
		PlanPrice: unit.USD(p.PlanPrice[i]),
		PlanTech:  p.PlanTech[i],
		PlanCap:   unit.ByteSize(p.PlanCap[i]),

		Capacity:   unit.Bitrate(p.Capacity[i]),
		UpCapacity: unit.Bitrate(p.UpCapacity[i]),
		RTT:        p.RTT[i],
		WebRTT:     p.WebRTT[i],
		Loss:       unit.LossRate(p.Loss[i]),

		Usage: UsageSummary{
			Mean:     unit.Bitrate(p.UsageMean[i]),
			Peak:     unit.Bitrate(p.UsagePeak[i]),
			MeanNoBT: unit.Bitrate(p.UsageMeanNoBT[i]),
			PeakNoBT: unit.Bitrate(p.UsagePeakNoBT[i]),
		},
		UsesBT:    p.UsesBT[i],
		Archetype: p.Archetype[i],

		AccessPrice: unit.USD(p.AccessPrice[i]),
		UpgradeCost: unit.PerMbps(p.UpgradeCost[i]),
	}
}

// Users materializes the whole panel back to row form.
func (p *Panel) Users() []User {
	out := make([]User, p.Len())
	for i := range out {
		p.UserAt(i, &out[i])
	}
	return out
}

// PeakUtilization returns row i's peak (no-BT) usage as a fraction of
// measured capacity — the columnar twin of (*User).PeakUtilization.
func (p *Panel) PeakUtilization(i int) float64 {
	if p.Capacity[i] <= 0 {
		return 0
	}
	frac := p.UsagePeakNoBT[i] / p.Capacity[i]
	if frac > 1 {
		frac = 1
	}
	return frac
}

// panelSource streams panel rows through the UserSource contract.
type panelSource struct {
	p   *Panel
	idx []int32
	i   int
}

func (s *panelSource) Read(u *User) error {
	if s.i >= len(s.idx) {
		return io.EOF
	}
	s.p.UserAt(int(s.idx[s.i]), u)
	s.i++
	return nil
}

// Source adapts the panel to a UserSource: one row materialized per Read.
func (p *Panel) Source() UserSource { return p.All().Source() }

// ColPred is a columnar row predicate. It is a two-stage closure: binding
// to a panel happens once per selection (resolving dictionary codes, so
// string predicates become integer compares in the row loop), and the
// returned test is evaluated per row index.
type ColPred func(p *Panel) func(i int) bool

// ColCountry keeps rows in the given country — ByCountry in columnar form.
func ColCountry(code string) ColPred {
	return func(p *Panel) func(int) bool {
		c, ok := p.Countries.Code(code)
		if !ok {
			return func(int) bool { return false }
		}
		return func(i int) bool { return p.Country[i] == c }
	}
}

// ColNotCountry keeps rows outside the given country.
func ColNotCountry(code string) ColPred {
	return func(p *Panel) func(int) bool {
		c, ok := p.Countries.Code(code)
		if !ok {
			return func(int) bool { return true }
		}
		return func(i int) bool { return p.Country[i] != c }
	}
}

// ColVantage keeps rows observed from the given platform.
func ColVantage(v Vantage) ColPred {
	return func(p *Panel) func(int) bool {
		return func(i int) bool { return p.Vantage[i] == v }
	}
}

// ColYear keeps rows observed in the given year.
func ColYear(y int) ColPred {
	return func(p *Panel) func(int) bool {
		return func(i int) bool { return p.Year[i] == y }
	}
}

// ColTier keeps rows whose measured capacity falls in the given tier.
func ColTier(t stats.Tier) ColPred {
	return func(p *Panel) func(int) bool {
		return func(i int) bool { return stats.TierOf(unit.Bitrate(p.Capacity[i])) == t }
	}
}

// ColClass keeps rows whose measured capacity falls in the given
// 100 kbps × 2^k capacity class.
func ColClass(c stats.CapacityClass) ColPred {
	return func(p *Panel) func(int) bool {
		return func(i int) bool { return c.Contains(unit.Bitrate(p.Capacity[i])) }
	}
}

// ColCapacityBetween keeps rows with measured capacity in (lo, hi].
func ColCapacityBetween(lo, hi unit.Bitrate) ColPred {
	return func(p *Panel) func(int) bool {
		flo, fhi := float64(lo), float64(hi)
		return func(i int) bool { return p.Capacity[i] > flo && p.Capacity[i] <= fhi }
	}
}

// bindPreds resolves a predicate stack against one panel.
func bindPreds(p *Panel, preds []ColPred) []func(int) bool {
	tests := make([]func(int) bool, len(preds))
	for k, pred := range preds {
		tests[k] = pred(p)
	}
	return tests
}

func evalPreds(tests []func(int) bool, i int) bool {
	for _, t := range tests {
		if !t(i) {
			return false
		}
	}
	return true
}

// View is an index-vector selection over a panel: the rows at Idx, in
// order. Views chain cheaply (each Where walks only the surviving
// indices), copy no rows, and iterate in ascending panel order — the same
// order Select yields — so aggregations over a view are bit-identical to
// the row-based pipeline they replace.
type View struct {
	P   *Panel
	Idx []int32
}

// All returns the view of every row.
func (p *Panel) All() View {
	idx := make([]int32, p.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	return View{P: p, Idx: idx}
}

// Where selects the rows satisfying every predicate — the columnar
// counterpart of Select, returning indices instead of interior pointers.
func (p *Panel) Where(preds ...ColPred) View {
	tests := bindPreds(p, preds)
	var idx []int32
	for i, n := 0, p.Len(); i < n; i++ {
		if evalPreds(tests, i) {
			idx = append(idx, int32(i))
		}
	}
	return View{P: p, Idx: idx}
}

// Where narrows the view to the rows satisfying every predicate.
func (v View) Where(preds ...ColPred) View {
	tests := bindPreds(v.P, preds)
	var idx []int32
	for _, i := range v.Idx {
		if evalPreds(tests, int(i)) {
			idx = append(idx, i)
		}
	}
	return View{P: v.P, Idx: idx}
}

// Len returns the number of selected rows.
func (v View) Len() int { return len(v.Idx) }

// Gather extracts one column restricted to the view, in view order. col
// must be a column of the view's panel (or any slice indexed like it).
func (v View) Gather(col []float64) []float64 {
	out := make([]float64, len(v.Idx))
	for k, i := range v.Idx {
		out[k] = col[i]
	}
	return out
}

// Users materializes the selected rows as a fresh []*User — the adapter
// the row-based machinery (the matcher, core.Experiment) consumes. The
// pointers address a newly allocated backing array, not the panel, so a
// view selection never pins the full user table the way Select's interior
// pointers do.
func (v View) Users() []*User {
	backing := make([]User, len(v.Idx))
	out := make([]*User, len(v.Idx))
	for k, i := range v.Idx {
		v.P.UserAt(int(i), &backing[k])
		out[k] = &backing[k]
	}
	return out
}

// Source streams the selected rows through the UserSource contract, one
// materialized row per Read.
func (v View) Source() UserSource { return &panelSource{p: v.P, idx: v.Idx} }

// Validate checks the panel's internal consistency: every column the same
// length and every dictionary code in range.
func (p *Panel) Validate() error {
	n := p.Len()
	lens := map[string]int{
		"Country": len(p.Country), "Vantage": len(p.Vantage), "Year": len(p.Year),
		"ISP": len(p.ISP), "Network": len(p.Network),
		"PlanDown": len(p.PlanDown), "PlanUp": len(p.PlanUp), "PlanPrice": len(p.PlanPrice),
		"PlanTech": len(p.PlanTech), "PlanCap": len(p.PlanCap),
		"Capacity": len(p.Capacity), "UpCapacity": len(p.UpCapacity),
		"RTT": len(p.RTT), "WebRTT": len(p.WebRTT), "Loss": len(p.Loss),
		"UsageMean": len(p.UsageMean), "UsagePeak": len(p.UsagePeak),
		"UsageMeanNoBT": len(p.UsageMeanNoBT), "UsagePeakNoBT": len(p.UsagePeakNoBT),
		"UsesBT": len(p.UsesBT), "Archetype": len(p.Archetype),
		"AccessPrice": len(p.AccessPrice), "UpgradeCost": len(p.UpgradeCost),
	}
	for name, l := range lens {
		if l != n {
			return fmt.Errorf("dataset: panel column %s has %d rows, want %d", name, l, n)
		}
	}
	for i, c := range p.Country {
		if int(c) >= p.Countries.Len() {
			return fmt.Errorf("dataset: panel row %d country code %d out of range", i, c)
		}
	}
	for i, c := range p.ISP {
		if int(c) >= p.ISPs.Len() {
			return fmt.Errorf("dataset: panel row %d isp code %d out of range", i, c)
		}
	}
	for i, c := range p.Network {
		if int(c) >= p.Networks.Len() {
			return fmt.Errorf("dataset: panel row %d network code %d out of range", i, c)
		}
	}
	return nil
}
