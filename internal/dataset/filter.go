package dataset

import (
	"io"

	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// Pred is a user predicate.
type Pred func(*User) bool

// matches reports whether a user satisfies every predicate — the shared
// core of the slice-based and streaming selectors.
func matches(u *User, preds []Pred) bool {
	for _, p := range preds {
		if !p(u) {
			return false
		}
	}
	return true
}

// Select returns pointers to the users satisfying every predicate.
//
// Deprecated-in-spirit compatibility shim: the interior pointers pin the
// entire backing array for as long as any selection lives, so a small
// selection keeps a huge panel reachable. In-repo selection runs on
// SelectIdx (index vectors) or Panel.Where (columnar views); Select
// remains for external callers that want the pointer form.
func Select(users []User, preds ...Pred) []*User {
	var out []*User
	for i := range users {
		if matches(&users[i], preds) {
			out = append(out, &users[i])
		}
	}
	return out
}

// SelectIdx returns the indices of the users satisfying every predicate,
// in ascending order — the same rows Select yields, without interior
// pointers: the selection retains nothing once the indices are dropped.
func SelectIdx(users []User, preds ...Pred) []int {
	var out []int
	for i := range users {
		if matches(&users[i], preds) {
			out = append(out, i)
		}
	}
	return out
}

// UserSource yields users one record at a time; Read returns io.EOF after
// the last user. *UserReader (the streaming CSV iterator) implements it,
// as does the in-memory adapter returned by UsersOf, so selection logic is
// written once and runs over worlds larger than RAM.
type UserSource interface {
	Read(*User) error
}

// sliceUsers adapts an in-memory slice to UserSource.
type sliceUsers struct {
	users []User
	i     int
}

func (s *sliceUsers) Read(u *User) error {
	if s.i >= len(s.users) {
		return io.EOF
	}
	*u = s.users[s.i]
	s.i++
	return nil
}

// UsersOf adapts a user slice to a UserSource.
func UsersOf(users []User) UserSource { return &sliceUsers{users: users} }

// EachUser streams src through fn, stopping at the first error. Memory is
// constant: fn receives a pointer to a reused record and must copy what it
// keeps.
func EachUser(src UserSource, fn func(*User) error) error {
	var u User
	for {
		switch err := src.Read(&u); err {
		case nil:
			if err := fn(&u); err != nil {
				return err
			}
		case io.EOF:
			return nil
		default:
			return err
		}
	}
}

// SelectFrom streams src through the predicates, collecting the matching
// users by value. Memory is bounded by the matches, not the source — the
// streaming counterpart of Select.
func SelectFrom(src UserSource, preds ...Pred) ([]User, error) {
	var out []User
	err := EachUser(src, func(u *User) error {
		if matches(u, preds) {
			out = append(out, *u)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ByCountry keeps users in the given country.
func ByCountry(code string) Pred {
	return func(u *User) bool { return u.Country == code }
}

// NotCountry keeps users outside the given country.
func NotCountry(code string) Pred {
	return func(u *User) bool { return u.Country != code }
}

// ByVantage keeps users observed from the given platform.
func ByVantage(v Vantage) Pred {
	return func(u *User) bool { return u.Vantage == v }
}

// ByYear keeps users observed in the given year.
func ByYear(y int) Pred {
	return func(u *User) bool { return u.Year == y }
}

// ByTier keeps users whose measured capacity falls in the given tier.
func ByTier(t stats.Tier) Pred {
	return func(u *User) bool { return stats.TierOf(u.Capacity) == t }
}

// ByClass keeps users whose measured capacity falls in the given
// 100 kbps × 2^k capacity class.
func ByClass(c stats.CapacityClass) Pred {
	return func(u *User) bool { return c.Contains(u.Capacity) }
}

// CapacityBetween keeps users with measured capacity in (lo, hi].
func CapacityBetween(lo, hi unit.Bitrate) Pred {
	return func(u *User) bool { return u.Capacity > lo && u.Capacity <= hi }
}

// Metric extracts one demand (or context) figure from a user; experiments
// parameterize on it.
type Metric func(*User) float64

// Named demand metrics used throughout the experiments. All are in bits
// per second.
var (
	MeanUsage     Metric = func(u *User) float64 { return float64(u.Usage.Mean) }
	PeakUsage     Metric = func(u *User) float64 { return float64(u.Usage.Peak) }
	MeanUsageNoBT Metric = func(u *User) float64 { return float64(u.Usage.MeanNoBT) }
	PeakUsageNoBT Metric = func(u *User) float64 { return float64(u.Usage.PeakNoBT) }
)

// Values applies a metric to a user set.
func Values(users []*User, m Metric) []float64 {
	out := make([]float64, len(users))
	for i, u := range users {
		out[i] = m(u)
	}
	return out
}

// Capacities extracts measured download capacities in bps.
func Capacities(users []*User) []float64 {
	out := make([]float64, len(users))
	for i, u := range users {
		out[i] = float64(u.Capacity)
	}
	return out
}

// All converts a user slice to pointers without filtering.
func All(users []User) []*User {
	out := make([]*User, len(users))
	for i := range users {
		out[i] = &users[i]
	}
	return out
}
