package dataset

import (
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// Pred is a user predicate.
type Pred func(*User) bool

// Select returns pointers to the users satisfying every predicate.
func Select(users []User, preds ...Pred) []*User {
	var out []*User
outer:
	for i := range users {
		for _, p := range preds {
			if !p(&users[i]) {
				continue outer
			}
		}
		out = append(out, &users[i])
	}
	return out
}

// ByCountry keeps users in the given country.
func ByCountry(code string) Pred {
	return func(u *User) bool { return u.Country == code }
}

// NotCountry keeps users outside the given country.
func NotCountry(code string) Pred {
	return func(u *User) bool { return u.Country != code }
}

// ByVantage keeps users observed from the given platform.
func ByVantage(v Vantage) Pred {
	return func(u *User) bool { return u.Vantage == v }
}

// ByYear keeps users observed in the given year.
func ByYear(y int) Pred {
	return func(u *User) bool { return u.Year == y }
}

// ByTier keeps users whose measured capacity falls in the given tier.
func ByTier(t stats.Tier) Pred {
	return func(u *User) bool { return stats.TierOf(u.Capacity) == t }
}

// ByClass keeps users whose measured capacity falls in the given
// 100 kbps × 2^k capacity class.
func ByClass(c stats.CapacityClass) Pred {
	return func(u *User) bool { return c.Contains(u.Capacity) }
}

// CapacityBetween keeps users with measured capacity in (lo, hi].
func CapacityBetween(lo, hi unit.Bitrate) Pred {
	return func(u *User) bool { return u.Capacity > lo && u.Capacity <= hi }
}

// Metric extracts one demand (or context) figure from a user; experiments
// parameterize on it.
type Metric func(*User) float64

// Named demand metrics used throughout the experiments. All are in bits
// per second.
var (
	MeanUsage     Metric = func(u *User) float64 { return float64(u.Usage.Mean) }
	PeakUsage     Metric = func(u *User) float64 { return float64(u.Usage.Peak) }
	MeanUsageNoBT Metric = func(u *User) float64 { return float64(u.Usage.MeanNoBT) }
	PeakUsageNoBT Metric = func(u *User) float64 { return float64(u.Usage.PeakNoBT) }
)

// Values applies a metric to a user set.
func Values(users []*User, m Metric) []float64 {
	out := make([]float64, len(users))
	for i, u := range users {
		out[i] = m(u)
	}
	return out
}

// Capacities extracts measured download capacities in bps.
func Capacities(users []*User) []float64 {
	out := make([]float64, len(users))
	for i, u := range users {
		out[i] = float64(u.Capacity)
	}
	return out
}

// All converts a user slice to pointers without filtering.
func All(users []User) []*User {
	out := make([]*User, len(users))
	for i := range users {
		out[i] = &users[i]
	}
	return out
}
