package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// CSV serialization. Rates are stored in Mbps, latencies in milliseconds,
// loss in percent and money in USD PPP — the units a human inspecting the
// files (or loading them into an external analysis tool) expects.

var userHeader = []string{
	"id", "country", "vantage", "year", "isp", "network",
	"plan_down_mbps", "plan_up_mbps", "plan_price_usd", "plan_tech", "plan_cap_gb",
	"capacity_mbps", "up_capacity_mbps", "rtt_ms", "web_rtt_ms", "loss_pct",
	"mean_mbps", "peak_mbps", "mean_nobt_mbps", "peak_nobt_mbps", "uses_bt", "archetype",
	"access_price_usd", "upgrade_cost_per_mbps",
}

// WriteUsers streams users as CSV.
func WriteUsers(w io.Writer, users []User) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(userHeader); err != nil {
		return err
	}
	for i := range users {
		u := &users[i]
		rec := []string{
			strconv.FormatInt(u.ID, 10),
			u.Country,
			strconv.Itoa(int(u.Vantage)),
			strconv.Itoa(u.Year),
			u.ISP,
			u.NetworkKey,
			f(u.PlanDown.Mbps()), f(u.PlanUp.Mbps()), f(u.PlanPrice.Dollars()),
			strconv.Itoa(int(u.PlanTech)), f(u.PlanCap.GB()),
			f(u.Capacity.Mbps()), f(u.UpCapacity.Mbps()),
			f(u.RTT * 1000), f(u.WebRTT * 1000), f(u.Loss.Percent()),
			f(u.Usage.Mean.Mbps()), f(u.Usage.Peak.Mbps()),
			f(u.Usage.MeanNoBT.Mbps()), f(u.Usage.PeakNoBT.Mbps()),
			strconv.FormatBool(u.UsesBT), strconv.Itoa(int(u.Archetype)),
			f(u.AccessPrice.Dollars()), f(float64(u.UpgradeCost)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUsers parses a users CSV produced by WriteUsers.
func ReadUsers(r io.Reader) ([]User, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty users file")
	}
	if err := checkHeader(rows[0], userHeader); err != nil {
		return nil, err
	}
	users := make([]User, 0, len(rows)-1)
	for n, rec := range rows[1:] {
		if len(rec) != len(userHeader) {
			return nil, fmt.Errorf("dataset: users row %d has %d fields, want %d", n+2, len(rec), len(userHeader))
		}
		p := &parser{rec: rec}
		u := User{
			ID:          p.i64(0),
			Country:     rec[1],
			Vantage:     Vantage(p.int(2)),
			Year:        p.int(3),
			ISP:         rec[4],
			NetworkKey:  rec[5],
			PlanDown:    unit.MbpsOf(p.f64(6)),
			PlanUp:      unit.MbpsOf(p.f64(7)),
			PlanPrice:   unit.USD(p.f64(8)),
			PlanTech:    market.Technology(p.int(9)),
			PlanCap:     unit.ByteSize(p.f64(10) * float64(unit.GB)),
			Capacity:    unit.MbpsOf(p.f64(11)),
			UpCapacity:  unit.MbpsOf(p.f64(12)),
			RTT:         p.f64(13) / 1000,
			WebRTT:      p.f64(14) / 1000,
			Loss:        unit.LossFromPercent(p.f64(15)),
			UsesBT:      p.boolAt(20),
			Archetype:   traffic.Archetype(p.int(21)),
			AccessPrice: unit.USD(p.f64(22)),
			UpgradeCost: unit.PerMbps(p.f64(23)),
		}
		u.Usage = UsageSummary{
			Mean:     unit.MbpsOf(p.f64(16)),
			Peak:     unit.MbpsOf(p.f64(17)),
			MeanNoBT: unit.MbpsOf(p.f64(18)),
			PeakNoBT: unit.MbpsOf(p.f64(19)),
		}
		if p.err != nil {
			return nil, fmt.Errorf("dataset: users row %d: %w", n+2, p.err)
		}
		users = append(users, u)
	}
	return users, nil
}

var switchHeader = []string{
	"user_id", "country", "from_net", "to_net", "from_down_mbps", "to_down_mbps",
	"before_mean_mbps", "before_peak_mbps", "before_mean_nobt_mbps", "before_peak_nobt_mbps",
	"after_mean_mbps", "after_peak_mbps", "after_mean_nobt_mbps", "after_peak_nobt_mbps",
}

// WriteSwitches streams service-change records as CSV.
func WriteSwitches(w io.Writer, switches []Switch) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(switchHeader); err != nil {
		return err
	}
	for _, s := range switches {
		rec := []string{
			strconv.FormatInt(s.UserID, 10), s.Country, s.FromNet, s.ToNet,
			f(s.FromDown.Mbps()), f(s.ToDown.Mbps()),
			f(s.Before.Mean.Mbps()), f(s.Before.Peak.Mbps()),
			f(s.Before.MeanNoBT.Mbps()), f(s.Before.PeakNoBT.Mbps()),
			f(s.After.Mean.Mbps()), f(s.After.Peak.Mbps()),
			f(s.After.MeanNoBT.Mbps()), f(s.After.PeakNoBT.Mbps()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSwitches parses a switches CSV produced by WriteSwitches.
func ReadSwitches(r io.Reader) ([]Switch, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty switches file")
	}
	if err := checkHeader(rows[0], switchHeader); err != nil {
		return nil, err
	}
	out := make([]Switch, 0, len(rows)-1)
	for n, rec := range rows[1:] {
		if len(rec) != len(switchHeader) {
			return nil, fmt.Errorf("dataset: switches row %d has %d fields, want %d", n+2, len(rec), len(switchHeader))
		}
		p := &parser{rec: rec}
		s := Switch{
			UserID:   p.i64(0),
			Country:  rec[1],
			FromNet:  rec[2],
			ToNet:    rec[3],
			FromDown: unit.MbpsOf(p.f64(4)),
			ToDown:   unit.MbpsOf(p.f64(5)),
			Before: UsageSummary{
				Mean: unit.MbpsOf(p.f64(6)), Peak: unit.MbpsOf(p.f64(7)),
				MeanNoBT: unit.MbpsOf(p.f64(8)), PeakNoBT: unit.MbpsOf(p.f64(9)),
			},
			After: UsageSummary{
				Mean: unit.MbpsOf(p.f64(10)), Peak: unit.MbpsOf(p.f64(11)),
				MeanNoBT: unit.MbpsOf(p.f64(12)), PeakNoBT: unit.MbpsOf(p.f64(13)),
			},
		}
		if p.err != nil {
			return nil, fmt.Errorf("dataset: switches row %d: %w", n+2, p.err)
		}
		out = append(out, s)
	}
	return out, nil
}

var planHeader = []string{
	"country", "isp", "down_mbps", "up_mbps", "price_local", "price_usd",
	"cap_gb", "tech", "dedicated",
}

// WritePlans streams the plan survey as CSV.
func WritePlans(w io.Writer, plans []market.Plan) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(planHeader); err != nil {
		return err
	}
	for _, p := range plans {
		rec := []string{
			p.Country, p.ISP,
			f(p.Down.Mbps()), f(p.Up.Mbps()),
			f(p.PriceLocal), f(p.PriceUSD.Dollars()),
			f(p.Cap.GB()),
			strconv.Itoa(int(p.Tech)),
			strconv.FormatBool(p.Dedicated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPlans parses a plan survey CSV produced by WritePlans.
func ReadPlans(r io.Reader) ([]market.Plan, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty plans file")
	}
	if err := checkHeader(rows[0], planHeader); err != nil {
		return nil, err
	}
	out := make([]market.Plan, 0, len(rows)-1)
	for n, rec := range rows[1:] {
		if len(rec) != len(planHeader) {
			return nil, fmt.Errorf("dataset: plans row %d has %d fields, want %d", n+2, len(rec), len(planHeader))
		}
		p := &parser{rec: rec}
		plan := market.Plan{
			Country:    rec[0],
			ISP:        rec[1],
			Down:       unit.MbpsOf(p.f64(2)),
			Up:         unit.MbpsOf(p.f64(3)),
			PriceLocal: p.f64(4),
			PriceUSD:   unit.USD(p.f64(5)),
			Cap:        unit.ByteSize(p.f64(6) * float64(unit.GB)),
			Tech:       market.Technology(p.int(7)),
			Dedicated:  p.boolAt(8),
		}
		if p.err != nil {
			return nil, fmt.Errorf("dataset: plans row %d: %w", n+2, p.err)
		}
		out = append(out, plan)
	}
	return out, nil
}

// SaveDir writes the dataset's users, switches and plans under dir as
// users.csv, switches.csv and plans.csv.
func (d *Dataset) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		fp, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer fp.Close()
		if err := fn(fp); err != nil {
			return fmt.Errorf("dataset: writing %s: %w", name, err)
		}
		return fp.Close()
	}
	if err := write("users.csv", func(w io.Writer) error { return WriteUsers(w, d.Users) }); err != nil {
		return err
	}
	if err := write("switches.csv", func(w io.Writer) error { return WriteSwitches(w, d.Switches) }); err != nil {
		return err
	}
	return write("plans.csv", func(w io.Writer) error { return WritePlans(w, d.Plans) })
}

// f formats a float compactly for CSV.
func f(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

func checkHeader(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("dataset: header has %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("dataset: header column %d is %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}

// parser accumulates the first conversion error over a CSV record.
type parser struct {
	rec []string
	err error
}

func (p *parser) f64(i int) float64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(p.rec[i], 64)
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}

func (p *parser) int(i int) int {
	if p.err != nil {
		return 0
	}
	v, err := strconv.Atoi(p.rec[i])
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}

func (p *parser) i64(i int) int64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(p.rec[i], 10, 64)
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}

func (p *parser) boolAt(i int) bool {
	if p.err != nil {
		return false
	}
	v, err := strconv.ParseBool(p.rec[i])
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}
