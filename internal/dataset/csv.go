package dataset

import (
	"bufio"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"github.com/nwca/broadband/internal/fsx"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// CSV serialization. Rates are stored in Mbps, latencies in milliseconds,
// loss in percent and money in USD PPP — the units a human inspecting the
// files (or loading them into an external analysis tool) expects. Floats
// are written in shortest lossless form (strconv 'g', precision -1), so a
// save → load cycle reproduces every float64 bit-for-bit and a second save
// emits byte-identical files.
//
// The slice-based functions below are thin wrappers over the streaming
// readers/writers in stream.go; worlds too large to materialize go through
// those iterators directly.

var userHeader = []string{
	"id", "country", "vantage", "year", "isp", "network",
	"plan_down_mbps", "plan_up_mbps", "plan_price_usd", "plan_tech", "plan_cap_gb",
	"capacity_mbps", "up_capacity_mbps", "rtt_ms", "web_rtt_ms", "loss_pct",
	"mean_mbps", "peak_mbps", "mean_nobt_mbps", "peak_nobt_mbps", "uses_bt", "archetype",
	"access_price_usd", "upgrade_cost_per_mbps",
}

// WriteUsers streams users as CSV.
func WriteUsers(w io.Writer, users []User) error {
	return WriteUsersParallel(w, users, 1)
}

// ReadUsers parses a users CSV produced by WriteUsers.
func ReadUsers(r io.Reader) ([]User, error) {
	ur, err := NewUserReader(r)
	if err != nil {
		return nil, err
	}
	var users []User
	var u User
	for {
		switch err := ur.Read(&u); err {
		case nil:
			users = append(users, u)
		case io.EOF:
			return users, nil
		default:
			return nil, err
		}
	}
}

// decodeUser maps one CSV record onto a User. The field order is the
// mirror of encodeUser; conversion errors accumulate on p.
func decodeUser(p *parser, u *User) {
	rec := p.rec
	*u = User{
		ID:          p.i64(0),
		Country:     rec[1],
		Vantage:     Vantage(p.int(2)),
		Year:        p.int(3),
		ISP:         rec[4],
		NetworkKey:  rec[5],
		PlanDown:    unit.MbpsOf(p.f64(6)),
		PlanUp:      unit.MbpsOf(p.f64(7)),
		PlanPrice:   unit.USD(p.f64(8)),
		PlanTech:    market.Technology(p.int(9)),
		PlanCap:     unit.ByteSize(p.f64(10) * float64(unit.GB)),
		Capacity:    unit.MbpsOf(p.f64(11)),
		UpCapacity:  unit.MbpsOf(p.f64(12)),
		RTT:         p.f64(13) / 1000,
		WebRTT:      p.f64(14) / 1000,
		Loss:        unit.LossFromPercent(p.f64(15)),
		UsesBT:      p.boolAt(20),
		Archetype:   traffic.Archetype(p.int(21)),
		AccessPrice: unit.USD(p.f64(22)),
		UpgradeCost: unit.PerMbps(p.f64(23)),
	}
	u.Usage = UsageSummary{
		Mean:     unit.MbpsOf(p.f64(16)),
		Peak:     unit.MbpsOf(p.f64(17)),
		MeanNoBT: unit.MbpsOf(p.f64(18)),
		PeakNoBT: unit.MbpsOf(p.f64(19)),
	}
}

var switchHeader = []string{
	"user_id", "country", "from_net", "to_net", "from_down_mbps", "to_down_mbps",
	"before_mean_mbps", "before_peak_mbps", "before_mean_nobt_mbps", "before_peak_nobt_mbps",
	"after_mean_mbps", "after_peak_mbps", "after_mean_nobt_mbps", "after_peak_nobt_mbps",
}

// WriteSwitches streams service-change records as CSV.
func WriteSwitches(w io.Writer, switches []Switch) error {
	return WriteSwitchesParallel(w, switches, 1)
}

// ReadSwitches parses a switches CSV produced by WriteSwitches.
func ReadSwitches(r io.Reader) ([]Switch, error) {
	sr, err := NewSwitchReader(r)
	if err != nil {
		return nil, err
	}
	var out []Switch
	var s Switch
	for {
		switch err := sr.Read(&s); err {
		case nil:
			out = append(out, s)
		case io.EOF:
			return out, nil
		default:
			return nil, err
		}
	}
}

// decodeSwitch maps one CSV record onto a Switch (mirror of encodeSwitch).
func decodeSwitch(p *parser, s *Switch) {
	rec := p.rec
	*s = Switch{
		UserID:   p.i64(0),
		Country:  rec[1],
		FromNet:  rec[2],
		ToNet:    rec[3],
		FromDown: unit.MbpsOf(p.f64(4)),
		ToDown:   unit.MbpsOf(p.f64(5)),
		Before: UsageSummary{
			Mean: unit.MbpsOf(p.f64(6)), Peak: unit.MbpsOf(p.f64(7)),
			MeanNoBT: unit.MbpsOf(p.f64(8)), PeakNoBT: unit.MbpsOf(p.f64(9)),
		},
		After: UsageSummary{
			Mean: unit.MbpsOf(p.f64(10)), Peak: unit.MbpsOf(p.f64(11)),
			MeanNoBT: unit.MbpsOf(p.f64(12)), PeakNoBT: unit.MbpsOf(p.f64(13)),
		},
	}
}

var planHeader = []string{
	"country", "isp", "down_mbps", "up_mbps", "price_local", "price_usd",
	"cap_gb", "tech", "dedicated",
}

// WritePlans streams the plan survey as CSV.
func WritePlans(w io.Writer, plans []market.Plan) error {
	return WritePlansParallel(w, plans, 1)
}

// ReadPlans parses a plan survey CSV produced by WritePlans.
func ReadPlans(r io.Reader) ([]market.Plan, error) {
	pr, err := NewPlanReader(r)
	if err != nil {
		return nil, err
	}
	var out []market.Plan
	var pl market.Plan
	for {
		switch err := pr.Read(&pl); err {
		case nil:
			out = append(out, pl)
		case io.EOF:
			return out, nil
		default:
			return nil, err
		}
	}
}

// decodePlan maps one CSV record onto a market.Plan (mirror of encodePlan).
func decodePlan(p *parser, pl *market.Plan) {
	rec := p.rec
	*pl = market.Plan{
		Country:    rec[0],
		ISP:        rec[1],
		Down:       unit.MbpsOf(p.f64(2)),
		Up:         unit.MbpsOf(p.f64(3)),
		PriceLocal: p.f64(4),
		PriceUSD:   unit.USD(p.f64(5)),
		Cap:        unit.ByteSize(p.f64(6) * float64(unit.GB)),
		Tech:       market.Technology(p.int(7)),
		Dedicated:  p.boolAt(8),
	}
}

// SaveOptions tunes how SaveDirWith writes a dataset.
type SaveOptions struct {
	// Gzip writes users.csv.gz, switches.csv.gz and plans.csv.gz instead of
	// the plain files. LoadDir detects either by extension.
	Gzip bool
	// Workers bounds the sharded parallel encoder (0 = GOMAXPROCS,
	// 1 = sequential). Output bytes are identical for every value.
	Workers int
}

// SaveDir writes the dataset's users, switches and plans under dir as
// users.csv, switches.csv and plans.csv, encoding across GOMAXPROCS
// workers (the bytes are identical to a sequential encode).
func (d *Dataset) SaveDir(dir string) error {
	return d.SaveDirWith(dir, SaveOptions{})
}

// SaveDirWith is SaveDir with explicit transport and parallelism options.
// Each table is staged in a temp file and renamed into place only after a
// complete write, so no failure mode leaves a partial table at a final
// path.
func (d *Dataset) SaveDirWith(dir string, opts SaveOptions) error {
	return d.SaveDirCtx(context.Background(), dir, opts)
}

// SaveDirCtx is SaveDirWith with cancellation: when ctx is cancelled the
// in-flight table write stops at the next row, its staging file is
// removed, and tables already committed remain complete — an interrupted
// save never leaves a partial artifact.
func (d *Dataset) SaveDirCtx(ctx context.Context, dir string, opts SaveOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeNamedTableCtx(ctx, dir, "users.csv", opts, func(w io.Writer) error {
		return WriteUsersParallel(w, d.Users, opts.Workers)
	}); err != nil {
		return err
	}
	if err := WriteSwitchesFileCtx(ctx, dir, opts, d.Switches); err != nil {
		return err
	}
	return WritePlansFileCtx(ctx, dir, opts, d.Plans)
}

// WriteSwitchesFileCtx writes switches.csv (or .csv.gz) under dir with the
// atomic staging contract of SaveDirCtx, leaving the other tables alone.
// The out-of-core builder uses it to place the switch panel next to a
// sharded user table without materializing a Dataset.
func WriteSwitchesFileCtx(ctx context.Context, dir string, opts SaveOptions, switches []Switch) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeNamedTableCtx(ctx, dir, "switches.csv", opts, func(w io.Writer) error {
		return WriteSwitchesParallel(w, switches, opts.Workers)
	})
}

// WritePlansFileCtx is WriteSwitchesFileCtx for the plan survey.
func WritePlansFileCtx(ctx context.Context, dir string, opts SaveOptions, plans []market.Plan) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeNamedTableCtx(ctx, dir, "plans.csv", opts, func(w io.Writer) error {
		return WritePlansParallel(w, plans, opts.Workers)
	})
}

// writeNamedTableCtx writes dir/name (appending .gz per opts) atomically
// through fn, wrapping failures with the table name.
func writeNamedTableCtx(ctx context.Context, dir, name string, opts SaveOptions, fn func(io.Writer) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if opts.Gzip {
		name += ".gz"
	}
	if err := writeTableCtx(ctx, filepath.Join(dir, name), opts.Gzip, fn); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", name, err)
	}
	return nil
}

// ctxWriter fails every Write once its context is cancelled, bounding how
// much work a cancelled table write performs after the signal.
type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c *ctxWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}

// writeTable stages path in a temp sibling and runs fn over a buffered
// (optionally gzip-compressed) writer, renaming into place only after a
// complete, flushed write. Any failure abandons the staging file, so the
// final path either keeps its previous content or does not exist — a later
// LoadDir can never trip over a partial table.
func writeTable(path string, gz bool, fn func(io.Writer) error) error {
	return writeTableCtx(context.Background(), path, gz, fn)
}

// writeTableCtx is writeTable with per-write cancellation checks.
func writeTableCtx(ctx context.Context, path string, gz bool, fn func(io.Writer) error) error {
	fp, err := fsx.CreateAtomic(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	bw := bufio.NewWriterSize(&ctxWriter{ctx: ctx, w: fp}, 1<<16)
	var w io.Writer = bw
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(bw)
		w = zw
	}
	err = fn(w)
	if err == nil && zw != nil {
		err = zw.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return err
	}
	return fp.Commit()
}

func checkHeader(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("dataset: header has %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("dataset: header column %d is %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}

// parser accumulates the first conversion error over a CSV record.
type parser struct {
	rec []string
	err error
}

func (p *parser) f64(i int) float64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(p.rec[i], 64)
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}

func (p *parser) int(i int) int {
	if p.err != nil {
		return 0
	}
	v, err := strconv.Atoi(p.rec[i])
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}

func (p *parser) i64(i int) int64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(p.rec[i], 10, 64)
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}

func (p *parser) boolAt(i int) bool {
	if p.err != nil {
		return false
	}
	v, err := strconv.ParseBool(p.rec[i])
	if err != nil {
		p.err = fmt.Errorf("field %d %q: %w", i, p.rec[i], err)
	}
	return v
}
