package dataset

import (
	"sync"
	"testing"
	"time"
)

// TestPanelConcurrentFallbackBuildsOnce pins the singleflight contract of
// the uncached Panel fallback: N callers racing on an unfrozen dataset get
// the same *Panel from exactly one build, instead of each paying for a
// full columnar projection. Run under -race this also proves the flight
// publishes the panel safely.
//
// A 3-user panel builds in microseconds — far too fast for 32 goroutines
// to overlap a real flight window — so the leader-side barrier hook holds
// the build open until every other caller has joined the flight. The
// production path never sets the hook; the dedup itself is what's pinned.
func TestPanelConcurrentFallbackBuildsOnce(t *testing.T) {
	d := sampleDataset() // never frozen: every Panel call takes the fallback path

	const callers = 32
	panelBuildBarrier = func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			panelMu.Lock()
			joined := panelCalls[d].refs
			panelMu.Unlock()
			if joined == callers-1 || time.Now().After(deadline) {
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	before := panelFallbackBuilds.Load()
	panels := make([]*Panel, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			panels[i] = d.Panel()
		}(i)
	}
	close(start)
	wg.Wait()
	panelBuildBarrier = nil

	if got := panelFallbackBuilds.Load() - before; got != 1 {
		t.Fatalf("%d concurrent callers triggered %d builds, want 1", callers, got)
	}
	for i, p := range panels {
		if p == nil || p.Len() != len(d.Users) {
			t.Fatalf("caller %d got panel of %v users", i, p)
		}
		if p != panels[0] {
			t.Fatalf("caller %d got a different panel instance", i)
		}
	}

	// The flight must not have populated the cache: Freeze still owns that,
	// and a later mutation must not see a stale cached panel.
	if d.panel != nil {
		t.Fatal("fallback flight wrote the cache field")
	}

	// A later, sequential call starts a fresh flight (no stale entry).
	before = panelFallbackBuilds.Load()
	if p := d.Panel(); p.Len() != len(d.Users) {
		t.Fatalf("follow-up Panel length %d", p.Len())
	}
	if got := panelFallbackBuilds.Load() - before; got != 1 {
		t.Fatalf("follow-up call triggered %d builds, want 1", got)
	}
}

// TestPanelFrozenFastPathSkipsFlight pins that a frozen dataset never
// enters the flight: the cached panel is returned directly.
func TestPanelFrozenFastPathSkipsFlight(t *testing.T) {
	d := sampleDataset()
	frozen := d.Freeze()
	before := panelFallbackBuilds.Load()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p := d.Panel(); p != frozen {
				t.Error("frozen dataset returned a non-cached panel")
			}
		}()
	}
	wg.Wait()
	if got := panelFallbackBuilds.Load() - before; got != 0 {
		t.Fatalf("frozen dataset triggered %d fallback builds", got)
	}
}
