package dataset

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/unit"
)

// shardTestUsers builds a small valid panel (IDs 1..n) for shard-layout
// tests; values only need to round-trip, not satisfy Dataset.Validate.
func shardTestUsers(n int) []User {
	users := make([]User, n)
	for i := range users {
		users[i] = User{
			ID: int64(i + 1), Country: "US", Year: 2013, ISP: "isp",
			NetworkKey: "isp/net0/city0",
			PlanDown:   unit.MbpsOf(10), PlanUp: unit.MbpsOf(1),
			PlanPrice: unit.USD(40), PlanTech: market.Cable,
			Capacity: unit.MbpsOf(float64(8 + i)), UpCapacity: unit.MbpsOf(1),
			RTT: 0.03, Loss: unit.LossFromPercent(0.1),
			Usage: UsageSummary{
				Mean: unit.MbpsOf(1), Peak: unit.MbpsOf(4),
				MeanNoBT: unit.MbpsOf(1), PeakNoBT: unit.MbpsOf(3),
			},
		}
	}
	return users
}

// writeShardSet splits users across total shard files under dir.
func writeShardSet(t *testing.T, dir string, users []User, total int, gz bool) {
	t.Helper()
	for i := 0; i < total; i++ {
		lo, hi := i*len(users)/total, (i+1)*len(users)/total
		_, err := WriteUserShardCtx(context.Background(), dir, i, total, gz, func(w *UserWriter) error {
			for j := lo; j < hi; j++ {
				if err := w.Write(&users[j]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func readAll(t *testing.T, src UserSource) []User {
	t.Helper()
	var out []User
	var u User
	for {
		switch err := src.Read(&u); err {
		case nil:
			out = append(out, u)
		case io.EOF:
			return out
		default:
			t.Fatal(err)
		}
	}
}

func TestUserStreamOverShards(t *testing.T) {
	t.Parallel()
	users := shardTestUsers(11)
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		// total=4 over 11 users: uneven shard sizes exercise the split.
		writeShardSet(t, dir, users, 4, gz)
		us, err := StreamUsersDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(us.Files()) != 4 {
			t.Fatalf("gz=%v: stream over %d files, want 4", gz, len(us.Files()))
		}
		got := readAll(t, us)
		if err := us.Close(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(users) {
			t.Fatalf("gz=%v: read %d users, want %d", gz, len(got), len(users))
		}
		for i := range got {
			if got[i] != users[i] {
				t.Fatalf("gz=%v: user %d differs after shard round-trip:\n got %+v\nwant %+v", gz, i, got[i], users[i])
			}
		}
	}
}

func TestUserStreamSkipsEmptyShards(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	users := shardTestUsers(2)
	// 5 shards over 2 users: the tail shards are header-only files.
	writeShardSet(t, dir, users, 5, false)
	for i := 0; i < 5; i++ {
		if _, err := os.Stat(filepath.Join(dir, UserShardName(i, 5, false))); err != nil {
			t.Fatalf("shard %d missing: %v (empty shards must still exist)", i, err)
		}
	}
	us, err := StreamUsersDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	got := readAll(t, us)
	if len(got) != 2 {
		t.Fatalf("read %d users through empty shards, want 2", len(got))
	}
}

func TestMonolithicFileWinsOverShards(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	writeShardSet(t, dir, shardTestUsers(6), 2, false)
	mono := shardTestUsers(3)
	if err := writeTable(filepath.Join(dir, "users.csv"), false, func(w io.Writer) error {
		return WriteUsers(w, mono)
	}); err != nil {
		t.Fatal(err)
	}
	us, err := StreamUsersDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	if got := readAll(t, us); len(got) != 3 {
		t.Fatalf("read %d users, want the 3 from users.csv (monolithic file wins)", len(got))
	}
}

func TestFindUserShardsRejectsBrokenSets(t *testing.T) {
	t.Parallel()

	t.Run("none", func(t *testing.T) {
		t.Parallel()
		_, err := FindUserShards(t.TempDir())
		if !errors.Is(err, os.ErrNotExist) {
			t.Errorf("err = %v, want ErrNotExist for an empty dir", err)
		}
	})
	t.Run("missing-index", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		writeShardSet(t, dir, shardTestUsers(6), 3, false)
		if err := os.Remove(filepath.Join(dir, UserShardName(1, 3, false))); err != nil {
			t.Fatal(err)
		}
		if _, err := FindUserShards(dir); err == nil {
			t.Error("incomplete shard set loaded without error")
		}
		if _, err := StreamUsersDir(dir); err == nil {
			t.Error("StreamUsersDir over incomplete set succeeded")
		}
	})
	t.Run("mixed-totals", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		writeShardSet(t, dir, shardTestUsers(4), 2, false)
		writeShardSet(t, dir, shardTestUsers(4), 3, false)
		if _, err := FindUserShards(dir); err == nil {
			t.Error("mixed shard totals loaded without error")
		}
	})
	t.Run("bad-range", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		for _, c := range []struct{ i, n int }{{-1, 2}, {2, 2}, {0, 0}} {
			if _, err := WriteUserShardCtx(context.Background(), dir, c.i, c.n, false, func(*UserWriter) error { return nil }); err == nil {
				t.Errorf("WriteUserShardCtx(%d, %d) accepted an out-of-range index", c.i, c.n)
			}
		}
	})
}

// TestLoadDirReadsShardedUsers pins layout transparency: a directory with
// sharded users plus the usual switches/plans loads through LoadDir exactly
// like its monolithic twin.
func TestLoadDirReadsShardedUsers(t *testing.T) {
	t.Parallel()
	d := sampleDataset()
	for _, mbps := range []float64{1, 2, 4, 8, 16} {
		d.Plans = append(d.Plans,
			planFor("US", mbps, 20+0.55*(mbps-1)),
			planFor("JP", mbps, 21+0.08*(mbps-1)),
		)
	}
	monoDir, shardDir := t.TempDir(), t.TempDir()
	if err := d.SaveDir(monoDir); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveDir(shardDir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(shardDir, "users.csv")); err != nil {
		t.Fatal(err)
	}
	writeShardSet(t, shardDir, d.Users, 3, false)

	mono, err := LoadDir(monoDir)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := LoadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mono.Users) != len(sharded.Users) {
		t.Fatalf("sharded load has %d users, monolithic %d", len(sharded.Users), len(mono.Users))
	}
	for i := range mono.Users {
		if mono.Users[i] != sharded.Users[i] {
			t.Fatalf("user %d differs between layouts", i)
		}
	}
}
