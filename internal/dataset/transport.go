package dataset

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// File transport: datasets travel as plain CSV or gzip-compressed CSV,
// selected by extension (.csv vs .csv.gz). Readers are buffered so the
// streaming decoders never issue tiny syscalls.

// gzipFile closes the gzip stream and the underlying file as one handle.
type gzipFile struct {
	*gzip.Reader
	fp *os.File
}

func (g *gzipFile) Close() error {
	zerr := g.Reader.Close()
	ferr := g.fp.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// openPath opens a dataset file for streaming reads, transparently
// decompressing when the name ends in .gz.
func openPath(path string) (io.ReadCloser, error) {
	fp, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return fp, nil
	}
	zr, err := gzip.NewReader(bufio.NewReaderSize(fp, 1<<16))
	if err != nil {
		fp.Close()
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return &gzipFile{Reader: zr, fp: fp}, nil
}

// openTable opens dir/base, falling back to dir/base.gz, so a directory
// written with SaveOptions.Gzip loads with the same call as a plain one.
func openTable(dir, base string) (io.ReadCloser, error) {
	rc, _, err := openTablePath(dir, base)
	return rc, err
}

// openTablePath is openTable returning the path actually opened, so load
// errors can name the real file (plain or .gz). On failure the returned
// path is the plain variant.
func openTablePath(dir, base string) (io.ReadCloser, string, error) {
	plain := filepath.Join(dir, base)
	rc, err := openPath(plain)
	if err == nil || !errors.Is(err, fs.ErrNotExist) {
		return rc, plain, err
	}
	gz := plain + ".gz"
	rc, err = openPath(gz)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil, plain, err
	}
	return rc, gz, err
}
