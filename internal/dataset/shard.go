package dataset

import (
	"bytes"
	"fmt"
	"io"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/par"
)

// Sharded parallel CSV encoding: the record slice is split into contiguous
// shards, each encoded by its own worker into a private buffer with the
// record-at-a-time encoder, and the shards are concatenated in canonical
// order after the header. Because every row is encoded independently and
// shard boundaries never cut a record, the output is byte-identical for any
// worker count — the same determinism contract the rest of the pipeline
// keeps (DESIGN.md §5).

// shardRange returns the half-open item range [lo, hi) of shard i when n
// items are split evenly across the given shard count.
func shardRange(n, shards, i int) (lo, hi int) {
	return i * n / shards, (i + 1) * n / shards
}

// writeSharded encodes items across workers shards and writes header then
// shards in order. workers <= 1 (or few items) degrades to a single
// streaming pass that never buffers more than one row.
func writeSharded[T any](w io.Writer, header []string, table string, items []T, workers int, enc func(*rowWriter, *T) error) error {
	n := len(items)
	workers = par.Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		rw := rowWriter{w: w, table: table}
		if err := rw.header(header); err != nil {
			return err
		}
		for i := range items {
			if err := enc(&rw, &items[i]); err != nil {
				return err
			}
		}
		return nil
	}
	bufs := make([]bytes.Buffer, workers)
	if err := par.ForN(workers, workers, func(i int) error {
		lo, hi := shardRange(n, workers, i)
		// Seed the row counter so error messages report absolute rows.
		rw := rowWriter{w: &bufs[i], table: table, row: 1 + lo}
		for j := lo; j < hi; j++ {
			if err := enc(&rw, &items[j]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	rw := rowWriter{w: w, table: table}
	if err := rw.header(header); err != nil {
		return err
	}
	for i := range bufs {
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return fmt.Errorf("dataset: writing %s shard %d: %w", table, i, err)
		}
	}
	return nil
}

// WriteUsersParallel streams users as CSV, encoding across workers shards
// (0 = GOMAXPROCS, 1 = sequential). Output is byte-identical to WriteUsers
// for every worker count.
func WriteUsersParallel(w io.Writer, users []User, workers int) error {
	return writeSharded(w, userHeader, "users", users, workers, encodeUser)
}

// WriteSwitchesParallel is WriteSwitches with sharded parallel encoding.
func WriteSwitchesParallel(w io.Writer, switches []Switch, workers int) error {
	return writeSharded(w, switchHeader, "switches", switches, workers, encodeSwitch)
}

// WritePlansParallel is WritePlans with sharded parallel encoding.
func WritePlansParallel(w io.Writer, plans []market.Plan, workers int) error {
	return writeSharded(w, planHeader, "plans", plans, workers, encodePlan)
}
