package dataset

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// errWriter fails after n bytes, exercising the write-error paths.
type errWriter struct {
	n int
}

var errSink = errors.New("sink full")

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWritersSurfaceSinkErrors(t *testing.T) {
	d := sampleDataset()
	if err := WriteUsers(&errWriter{}, d.Users); err == nil {
		t.Error("WriteUsers must surface write failures")
	}
	if err := WriteUsers(&errWriter{n: 64}, d.Users); err == nil {
		t.Error("WriteUsers must surface mid-stream failures")
	}
	if err := WriteSwitches(&errWriter{}, d.Switches); err == nil {
		t.Error("WriteSwitches must surface write failures")
	}
	if err := WritePlans(&errWriter{}, d.Plans); err == nil {
		t.Error("WritePlans must surface write failures")
	}
}

// truncReader returns a header then cuts off mid-record.
func TestReadersRejectTruncation(t *testing.T) {
	var b strings.Builder
	if err := WriteUsers(&writerTo{&b}, sampleDataset().Users); err != nil {
		t.Fatal(err)
	}
	full := b.String()
	// Chop inside the final record: the CSV reader sees a short row.
	cut := full[:len(full)-10]
	if _, err := ReadUsers(strings.NewReader(cut)); err == nil {
		t.Error("truncated users CSV should fail")
	}
}

type writerTo struct{ b *strings.Builder }

func (w *writerTo) Write(p []byte) (int, error) { return w.b.Write(p) }

var _ io.Writer = (*writerTo)(nil)

func TestSaveDirUnwritable(t *testing.T) {
	// A path through an existing FILE cannot be created as a directory.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := sampleDataset().SaveDir(dir); err != nil {
		t.Fatalf("control save failed: %v", err)
	}
	if err := writeFile(blocker, "x"); err != nil {
		t.Fatal(err)
	}
	if err := sampleDataset().SaveDir(filepath.Join(blocker, "sub")); err == nil {
		t.Error("SaveDir through a file should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
