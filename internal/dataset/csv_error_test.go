package dataset

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// errWriter fails after n bytes, exercising the write-error paths.
type errWriter struct {
	n int
}

var errSink = errors.New("sink full")

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWritersSurfaceSinkErrors(t *testing.T) {
	d := sampleDataset()
	if err := WriteUsers(&errWriter{}, d.Users); err == nil {
		t.Error("WriteUsers must surface write failures")
	}
	if err := WriteUsers(&errWriter{n: 64}, d.Users); err == nil {
		t.Error("WriteUsers must surface mid-stream failures")
	}
	if err := WriteSwitches(&errWriter{}, d.Switches); err == nil {
		t.Error("WriteSwitches must surface write failures")
	}
	if err := WritePlans(&errWriter{}, d.Plans); err == nil {
		t.Error("WritePlans must surface write failures")
	}
}

// truncReader returns a header then cuts off mid-record.
func TestReadersRejectTruncation(t *testing.T) {
	var b strings.Builder
	if err := WriteUsers(&writerTo{&b}, sampleDataset().Users); err != nil {
		t.Fatal(err)
	}
	full := b.String()
	// Chop inside the final record: the CSV reader sees a short row.
	cut := full[:len(full)-10]
	if _, err := ReadUsers(strings.NewReader(cut)); err == nil {
		t.Error("truncated users CSV should fail")
	}
}

type writerTo struct{ b *strings.Builder }

func (w *writerTo) Write(p []byte) (int, error) { return w.b.Write(p) }

var _ io.Writer = (*writerTo)(nil)

func TestSaveDirUnwritable(t *testing.T) {
	// A path through an existing FILE cannot be created as a directory.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := sampleDataset().SaveDir(dir); err != nil {
		t.Fatalf("control save failed: %v", err)
	}
	if err := writeFile(blocker, "x"); err != nil {
		t.Fatal(err)
	}
	if err := sampleDataset().SaveDir(filepath.Join(blocker, "sub")); err == nil {
		t.Error("SaveDir through a file should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestLoadDirRejectsTruncatedGzip chops a compressed table mid-stream: the
// gzip checksum can never validate, and LoadDir must report it rather than
// return a silently short dataset.
func TestLoadDirRejectsTruncatedGzip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gz")
	d := sampleDataset()
	for _, mbps := range []float64{1, 2, 4, 8, 16} {
		d.Plans = append(d.Plans,
			planFor("US", mbps, 20+0.55*(mbps-1)),
			planFor("JP", mbps, 21+0.08*(mbps-1)),
		)
	}
	if err := d.SaveDirWith(dir, SaveOptions{Gzip: true}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "users.csv.gz")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("truncated gzip stream should fail to load")
	}
}

// TestReadersRejectTrailingGarbage covers both flavors of a corrupted row:
// an extra field (the header's count is enforced on every record) and
// garbage appended to a numeric field.
func TestReadersRejectTrailingGarbage(t *testing.T) {
	var b strings.Builder
	if err := WriteUsers(&writerTo{&b}, sampleDataset().Users); err != nil {
		t.Fatal(err)
	}
	full := b.String()

	lines := strings.SplitAfter(full, "\n")
	extraField := strings.TrimSuffix(lines[1], "\n") + ",garbage\n"
	if _, err := ReadUsers(strings.NewReader(lines[0] + extraField)); err == nil {
		t.Error("row with an extra trailing field should fail")
	}

	garbled := strings.Replace(full, "true", "truex", 1)
	if _, err := ReadUsers(strings.NewReader(garbled)); err == nil {
		t.Error("field with trailing garbage should fail")
	}
}

// TestReadersRejectReorderedHeader: all columns present but permuted must
// be refused — silently accepting it would transpose every field.
func TestReadersRejectReorderedHeader(t *testing.T) {
	var b strings.Builder
	if err := WriteUsers(&writerTo{&b}, sampleDataset().Users); err != nil {
		t.Fatal(err)
	}
	full := b.String()
	swapped := strings.Replace(full, "id,country", "country,id", 1)
	if swapped == full {
		t.Fatal("header swap did not apply")
	}
	if _, err := ReadUsers(strings.NewReader(swapped)); err == nil {
		t.Error("reordered header should fail")
	}
	if _, err := NewUserReader(strings.NewReader(swapped)); err == nil {
		t.Error("streaming reader must reject a reordered header too")
	}
}

// TestWriteTableRemovesPartialFile: a failure mid-write must not leave a
// truncated CSV behind for a later load to trip over.
func TestWriteTableRemovesPartialFile(t *testing.T) {
	for _, gz := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "x.csv")
		err := writeTable(path, gz, func(w io.Writer) error {
			if _, err := w.Write([]byte("id,country\npartial")); err != nil {
				return err
			}
			return errSink
		})
		if !errors.Is(err, errSink) {
			t.Fatalf("gz=%v: writeTable returned %v, want the write error", gz, err)
		}
		if _, serr := os.Stat(path); !os.IsNotExist(serr) {
			t.Errorf("gz=%v: partial file left behind (stat: %v)", gz, serr)
		}
	}
}

func TestWriteTableChecksCloseOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ok.csv")
	if err := writeTable(path, false, func(w io.Writer) error {
		_, err := w.Write([]byte("hello\n"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "hello\n" {
		t.Errorf("writeTable flushed %q", raw)
	}
}
