// Package dataset defines the record schemas shared by the three synthetic
// datasets (end-host/Dasu, residential-gateway/FCC, and the retail-plan
// survey), their CSV serialization, and the selection helpers the
// experiments use to slice populations.
//
// The schema mirrors what the paper's pipeline had after joining its
// sources: per-user measured service characteristics (capacity, latency,
// loss), usage summaries with and without BitTorrent traffic, the
// subscriber's plan, and the per-market price metrics.
package dataset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// Vantage distinguishes the two measurement platforms the paper combines.
type Vantage int

// The measurement platforms.
const (
	// VantageDasu is the end-host platform: global coverage, 30-second
	// byte counters, sampling biased toward the hours the client runs
	// (evenings), BitTorrent visibility.
	VantageDasu Vantage = iota
	// VantageGateway is the FCC/SamKnows residential-gateway platform:
	// US-only, uniform 24-hour sampling, whole-home counters, no
	// application attribution.
	VantageGateway
)

// String names the vantage the way the paper's figures label it.
func (v Vantage) String() string {
	switch v {
	case VantageDasu:
		return "Dasu"
	case VantageGateway:
		return "FCC"
	default:
		return fmt.Sprintf("Vantage(%d)", int(v))
	}
}

// UsageSummary is the pair of demand metrics the paper computes from each
// user's byte-counter time series: the mean rate and the 95th-percentile
// ("peak") rate of 30-second samples, each with and without BitTorrent
// intervals.
type UsageSummary struct {
	Mean     unit.Bitrate // all traffic
	Peak     unit.Bitrate // 95th percentile, all traffic
	MeanNoBT unit.Bitrate // BitTorrent-active intervals excluded
	PeakNoBT unit.Bitrate
}

// User is one subscriber observation: the join of measurements, usage and
// market context the experiments consume.
type User struct {
	ID      int64
	Country string // ISO code
	Vantage Vantage
	Year    int // observation year (the longitudinal panel spans 2011–2013)

	// Network identity: the paper keys networks by (ISP, prefix, city).
	ISP        string
	NetworkKey string

	// Subscribed plan.
	PlanDown  unit.Bitrate
	PlanUp    unit.Bitrate
	PlanPrice unit.USD
	PlanTech  market.Technology
	PlanCap   unit.ByteSize // monthly traffic allowance; 0 = unlimited

	// Measured service characteristics (NDT-style).
	Capacity   unit.Bitrate // measured maximum download capacity
	UpCapacity unit.Bitrate
	RTT        float64 // average RTT to nearest measurement server, seconds
	WebRTT     float64 // median RTT to popular websites, seconds (2014 addition; 0 if absent)
	Loss       unit.LossRate

	// Demand.
	Usage  UsageSummary
	UsesBT bool
	// Archetype is the household's application-mix category.
	Archetype traffic.Archetype

	// Market context (joined from the plan survey).
	AccessPrice unit.USD     // price of broadband access in the user's market
	UpgradeCost unit.PerMbps // cost of increasing capacity in the user's market
}

// PeakUtilization returns peak (no-BT) usage as a fraction of measured
// capacity — the metric behind Figs. 7b and 8.
func (u *User) PeakUtilization() float64 {
	if u.Capacity <= 0 {
		return 0
	}
	frac := float64(u.Usage.PeakNoBT) / float64(u.Capacity)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Switch records one service change of a single user: the within-subject
// natural experiment of Sec. 3.2. Before/After usage summaries are measured
// on the slower and faster network respectively.
type Switch struct {
	UserID   int64
	Country  string
	FromNet  string // network key of the slower service
	ToNet    string
	FromDown unit.Bitrate
	ToDown   unit.Bitrate
	Before   UsageSummary
	After    UsageSummary
}

// Dataset bundles everything one world generation produces.
type Dataset struct {
	Users    []User
	Switches []Switch
	// Plans is the retail-plan survey (all markets).
	Plans []market.Plan
	// Markets holds the per-country summaries (access price, upgrade cost),
	// keyed by ISO code.
	Markets map[string]market.MarketSummary

	// panel caches the columnar projection of Users. It is attached at
	// single-threaded construction points (world build, dataset load) via
	// Freeze; Panel falls back to building an uncached projection when the
	// cache is missing or its length no longer matches Users. A plain
	// pointer, not a sync primitive: Dataset must stay copyable by value,
	// and the concurrency contract is "freeze before fanning out readers".
	// Code that mutates Users in place must call ResetPanel.
	panel *Panel
}

// Freeze builds (or rebuilds) the cached columnar panel from Users and
// returns it. Call it after constructing or mutating a dataset, before
// concurrent readers start; it is not itself safe for concurrent use.
func (d *Dataset) Freeze() *Panel {
	if d.panel == nil || d.panel.Len() != len(d.Users) {
		d.panel = BuildPanel(d.Users)
	}
	return d.panel
}

// Panel returns the columnar projection of Users: the cached panel when
// fresh, otherwise a newly built uncached one. Safe for concurrent readers
// as long as nobody mutates the dataset underneath them.
//
// The uncached fallback is deduplicated per dataset: N callers racing on
// an unfrozen dataset share one build instead of each paying for a full
// projection (the duplication the serve fan-out exposed). The flight never
// writes the cache field — concurrent Panel calls must stay write-free so
// they cannot race Freeze's single-threaded contract — and the flight
// entry is dropped as soon as the build lands, so a later mutation can
// never be served a stale panel.
func (d *Dataset) Panel() *Panel {
	if d.panel != nil && d.panel.Len() == len(d.Users) {
		return d.panel
	}
	panelMu.Lock()
	if c, ok := panelCalls[d]; ok {
		c.refs++
		panelMu.Unlock()
		<-c.done
		return c.p
	}
	c := &panelCall{done: make(chan struct{})}
	panelCalls[d] = c
	panelMu.Unlock()

	if panelBuildBarrier != nil {
		panelBuildBarrier()
	}
	panelFallbackBuilds.Add(1)
	c.p = BuildPanel(d.Users)

	panelMu.Lock()
	delete(panelCalls, d)
	panelMu.Unlock()
	close(c.done)
	return c.p
}

// panelCalls deduplicates concurrent uncached Panel builds, keyed by
// dataset identity. The flight leader removes its entry before signalling
// done, so entries live only for the duration of one build and the map
// never pins finished datasets in memory.
var (
	panelMu    sync.Mutex
	panelCalls = make(map[*Dataset]*panelCall)
)

// panelCall is one in-progress fallback build. The leader closes done
// after publishing p; refs counts the callers that joined the flight
// (everyone but the leader).
type panelCall struct {
	done chan struct{}
	p    *Panel
	refs int
}

// panelFallbackBuilds counts uncached fallback builds — a test hook
// pinning the one-build-per-flight contract.
var panelFallbackBuilds atomic.Int64

// panelBuildBarrier, when non-nil, runs in the flight leader after its
// flight is registered and before the build starts. Test-only: it lets a
// test hold a build open until every racing caller has joined the flight,
// making the one-build assertion deterministic. Nil in production.
var panelBuildBarrier func()

// ResetPanel drops the cached panel; the next Freeze or Panel rebuilds it.
func (d *Dataset) ResetPanel() { d.panel = nil }

// AttachPanel installs a pre-built panel as the cache — used by world
// generation, which builds the columns first and materializes Users from
// them. A panel whose length does not match Users is ignored (Panel would
// treat it as stale anyway).
func (d *Dataset) AttachPanel(p *Panel) {
	if p != nil && p.Len() == len(d.Users) {
		d.panel = p
	}
}

// MarketOf returns the market summary for a user's country.
func (d *Dataset) MarketOf(u *User) (market.MarketSummary, bool) {
	m, ok := d.Markets[u.Country]
	return m, ok
}

// CountryUsers returns the users observed in one country.
func (d *Dataset) CountryUsers(code string) []*User {
	var out []*User
	for i := range d.Users {
		if d.Users[i].Country == code {
			out = append(out, &d.Users[i])
		}
	}
	return out
}

// Validate performs schema-level sanity checks and returns the first
// violation found. Generation bugs should die here, not three experiments
// later.
func (d *Dataset) Validate() error {
	if len(d.Users) == 0 {
		return fmt.Errorf("dataset: no users")
	}
	seen := make(map[int64]bool, len(d.Users))
	for i := range d.Users {
		u := &d.Users[i]
		if seen[u.ID] {
			return fmt.Errorf("dataset: duplicate user id %d", u.ID)
		}
		seen[u.ID] = true
		if u.Country == "" {
			return fmt.Errorf("dataset: user %d has no country", u.ID)
		}
		if _, ok := d.Markets[u.Country]; !ok {
			return fmt.Errorf("dataset: user %d references unknown market %q", u.ID, u.Country)
		}
		if u.Capacity <= 0 || !u.Capacity.IsValid() {
			return fmt.Errorf("dataset: user %d has capacity %v", u.ID, u.Capacity)
		}
		if u.RTT <= 0 {
			return fmt.Errorf("dataset: user %d has RTT %v", u.ID, u.RTT)
		}
		if !u.Loss.IsValid() {
			return fmt.Errorf("dataset: user %d has loss %v", u.ID, u.Loss)
		}
		for _, r := range []unit.Bitrate{u.Usage.Mean, u.Usage.Peak, u.Usage.MeanNoBT, u.Usage.PeakNoBT} {
			if !r.IsValid() {
				return fmt.Errorf("dataset: user %d has invalid usage %v", u.ID, r)
			}
		}
	}
	for _, s := range d.Switches {
		if s.FromDown >= s.ToDown {
			return fmt.Errorf("dataset: switch of user %d is not an upgrade (%v → %v)", s.UserID, s.FromDown, s.ToDown)
		}
	}
	return nil
}
