package dataset

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/unit"
)

// manyUsers builds a deterministic, heterogeneous population large enough
// to exercise shard boundaries and buffer reuse.
func manyUsers(n int) []User {
	countries := []string{"US", "JP", "DE", "BR", "IN"}
	users := make([]User, n)
	for i := range users {
		u := sampleUser(int64(i+1), countries[i%len(countries)], 1.5+float64(i%37)*0.83)
		u.Year = 2011 + i%3
		u.UsesBT = i%3 == 0
		u.RTT = 0.005 + float64(i)*1e-4/3
		u.Loss = unit.LossRate(float64(i%11) * 1e-4 / 7)
		u.Usage.Mean = unit.Bitrate(float64(i) * 1234.567 / 9)
		u.AccessPrice = unit.USD(7.77 + float64(i)/13)
		users[i] = u
	}
	return users
}

func TestStreamingWritersMatchSliceAPI(t *testing.T) {
	d := sampleDataset()
	var slice, stream bytes.Buffer
	if err := WriteUsers(&slice, d.Users); err != nil {
		t.Fatal(err)
	}
	uw, err := NewUserWriter(&stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Users {
		if err := uw.Write(&d.Users[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(slice.Bytes(), stream.Bytes()) {
		t.Error("record-at-a-time user encoding differs from slice API")
	}

	slice.Reset()
	stream.Reset()
	if err := WriteSwitches(&slice, d.Switches); err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitchWriter(&stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Switches {
		if err := sw.Write(&d.Switches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(slice.Bytes(), stream.Bytes()) {
		t.Error("record-at-a-time switch encoding differs from slice API")
	}

	slice.Reset()
	stream.Reset()
	if err := WritePlans(&slice, d.Plans); err != nil {
		t.Fatal(err)
	}
	pw, err := NewPlanWriter(&stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Plans {
		if err := pw.Write(&d.Plans[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(slice.Bytes(), stream.Bytes()) {
		t.Error("record-at-a-time plan encoding differs from slice API")
	}
}

func TestStreamingReaderMatchesSliceAPI(t *testing.T) {
	users := manyUsers(137)
	var buf bytes.Buffer
	if err := WriteUsers(&buf, users); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	whole, err := ReadUsers(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ur, err := NewUserReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []User
	var u User
	for {
		err := ur.Read(&u)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, u)
	}
	if len(streamed) != len(whole) {
		t.Fatalf("streamed %d users, slice API %d", len(streamed), len(whole))
	}
	for i := range streamed {
		if streamed[i] != whole[i] {
			t.Fatalf("user %d differs between streaming and slice reads:\n%+v\n%+v", i, streamed[i], whole[i])
		}
	}
}

// TestShardedEncodeByteIdentical is the determinism contract of the
// parallel encoder: any worker count, same bytes.
func TestShardedEncodeByteIdentical(t *testing.T) {
	users := manyUsers(101)
	d := sampleDataset()
	var ref bytes.Buffer
	if err := WriteUsersParallel(&ref, users, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16, 101, 333} {
		var got bytes.Buffer
		if err := WriteUsersParallel(&got, users, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Errorf("users encode with %d workers differs from sequential", workers)
		}
	}

	var refS bytes.Buffer
	if err := WriteSwitchesParallel(&refS, d.Switches, 1); err != nil {
		t.Fatal(err)
	}
	var gotS bytes.Buffer
	if err := WriteSwitchesParallel(&gotS, d.Switches, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refS.Bytes(), gotS.Bytes()) {
		t.Error("switches encode differs across worker counts")
	}

	var refP bytes.Buffer
	if err := WritePlansParallel(&refP, d.Plans, 1); err != nil {
		t.Fatal(err)
	}
	var gotP bytes.Buffer
	if err := WritePlansParallel(&gotP, d.Plans, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refP.Bytes(), gotP.Bytes()) {
		t.Error("plans encode differs across worker counts")
	}
}

func TestSaveDirWithGzipRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gz")
	d := sampleDataset()
	for _, mbps := range []float64{1, 2, 4, 8, 16} {
		d.Plans = append(d.Plans,
			planFor("US", mbps, 20+0.55*(mbps-1)),
			planFor("JP", mbps, 21+0.08*(mbps-1)),
		)
	}
	if err := d.SaveDirWith(dir, SaveOptions{Gzip: true, Workers: 3}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"users.csv.gz", "switches.csv.gz", "plans.csv.gz"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "users.csv")); err == nil {
		t.Fatal("plain users.csv written alongside gzip")
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(d.Users) || len(back.Switches) != len(d.Switches) || len(back.Plans) != len(d.Plans) {
		t.Fatalf("gzip round trip changed sizes: %d users %d switches %d plans",
			len(back.Users), len(back.Switches), len(back.Plans))
	}
	for i := range back.Users {
		if back.Users[i] != d.Users[i] {
			t.Fatalf("user %d not preserved through gzip: %+v vs %+v", i, back.Users[i], d.Users[i])
		}
	}
}

func TestQuotedFieldsSurviveStreaming(t *testing.T) {
	u := sampleUser(1, "US", 10)
	u.ISP = `Comma, "Quote" & Co`
	u.NetworkKey = "net with space/città"
	var buf bytes.Buffer
	if err := WriteUsers(&buf, []User{u}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUsers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ISP != u.ISP || back[0].NetworkKey != u.NetworkKey {
		t.Fatalf("quoted fields mangled: %+v", back)
	}
}

func TestSelectFromMatchesSelect(t *testing.T) {
	users := manyUsers(60)
	preds := []Pred{ByCountry("US"), ByYear(2012)}
	want := Select(users, preds...)
	got, err := SelectFrom(UsersOf(users), preds...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SelectFrom found %d users, Select %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != *want[i] {
			t.Errorf("selection %d differs: %+v vs %+v", i, got[i], *want[i])
		}
	}

	// The same predicates applied to the CSV stream pick the same users.
	var buf bytes.Buffer
	if err := WriteUsers(&buf, users); err != nil {
		t.Fatal(err)
	}
	ur, err := NewUserReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := SelectFrom(ur, preds...)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV) != len(want) {
		t.Fatalf("streaming CSV selection found %d users, want %d", len(fromCSV), len(want))
	}
}

func TestEachUserStopsOnError(t *testing.T) {
	users := manyUsers(10)
	seen := 0
	err := EachUser(UsersOf(users), func(u *User) error {
		seen++
		if seen == 3 {
			return errSink
		}
		return nil
	})
	if err != errSink {
		t.Fatalf("EachUser returned %v, want sentinel", err)
	}
	if seen != 3 {
		t.Fatalf("EachUser visited %d users after error, want 3", seen)
	}
}

// TestLosslessFloatFields drives adversarial float64 values through a CSV
// cycle and asserts exact field equality: denormals, 17-significant-digit
// values, and the huge draws a heavy-tailed Pareto can emit.
func TestLosslessFloatFields(t *testing.T) {
	adversarial := []float64{
		5e-324, // smallest denormal
		math.SmallestNonzeroFloat64 * 7,
		0.1 + 0.2, // 0.30000000000000004 — 17 significant digits
		1.0 / 3.0,
		math.Nextafter(1, 2),   // 1 + ulp
		9007199254740993.0,     // 2^53 + 1 territory
		1.7976931348623157e308, // MaxFloat64
		2.2250738585072014e-308,
		123456789.12345679,  // survey-scale price with full mantissa
		8.98846567431158e15, // large bounded-Pareto volume draw
	}
	for _, v := range adversarial {
		u := sampleUser(1, "US", 10)
		// Identity-mapped fields (no unit scaling on either side).
		u.PlanPrice = unit.USD(v)
		u.AccessPrice = unit.USD(v)
		u.UpgradeCost = unit.PerMbps(v)
		var buf bytes.Buffer
		if err := WriteUsers(&buf, []User{u}); err != nil {
			t.Fatal(err)
		}
		back, err := ReadUsers(&buf)
		if err != nil {
			t.Fatalf("value %g: %v", v, err)
		}
		if got := back[0].PlanPrice.Dollars(); got != v {
			t.Errorf("plan price %g round-tripped as %g", v, got)
		}
		if got := back[0].AccessPrice.Dollars(); got != v {
			t.Errorf("access price %g round-tripped as %g", v, got)
		}
		if got := float64(back[0].UpgradeCost); got != v {
			t.Errorf("upgrade cost %g round-tripped as %g", v, got)
		}

		p := market.Plan{Country: "US", ISP: "X", PriceLocal: v, PriceUSD: unit.USD(v)}
		buf.Reset()
		if err := WritePlans(&buf, []market.Plan{p}); err != nil {
			t.Fatal(err)
		}
		plans, err := ReadPlans(&buf)
		if err != nil {
			t.Fatalf("value %g: %v", v, err)
		}
		if plans[0].PriceLocal != v || plans[0].PriceUSD.Dollars() != v {
			t.Errorf("plan prices %g round-tripped as %g / %g", v, plans[0].PriceLocal, plans[0].PriceUSD.Dollars())
		}
	}
}

// TestScaledFieldsStableAfterOneCycle: fields stored with unit scaling
// (Mbps, ms, percent) must reach a fixed point after a single save→load
// cycle, so re-saving a loaded dataset is byte-identical.
func TestScaledFieldsStableAfterOneCycle(t *testing.T) {
	users := manyUsers(200)
	var first bytes.Buffer
	if err := WriteUsers(&first, users); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadUsers(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteUsers(&second, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("users CSV not byte-identical after save→load→save")
	}
	reloaded, err := ReadUsers(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reloaded {
		if reloaded[i] != loaded[i] {
			t.Fatalf("user %d drifted on second cycle", i)
		}
	}
}

func TestStreamWriterReportsRowNumber(t *testing.T) {
	users := manyUsers(50)
	// The header is ~280 bytes and each user row >80; failing after 600
	// bytes lands mid-stream, a few data rows in.
	uw, err := NewUserWriter(&errWriter{n: 600})
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := range users {
		if werr = uw.Write(&users[i]); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("mid-stream sink failure not surfaced")
	}
	if !strings.Contains(werr.Error(), "users row ") {
		t.Errorf("error %q does not carry the row number", werr)
	}
	// Sticky: later writes keep failing with the original row context.
	if again := uw.Write(&users[0]); again == nil || !strings.Contains(again.Error(), "users row ") {
		t.Errorf("sticky error lost: %v", again)
	}
}
