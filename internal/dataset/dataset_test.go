package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

func sampleUser(id int64, country string, capMbps float64) User {
	return User{
		ID:         id,
		Country:    country,
		Vantage:    VantageDasu,
		Year:       2012,
		ISP:        country + "-ISP1",
		NetworkKey: country + "-ISP1/net0/city0",
		PlanDown:   unit.MbpsOf(capMbps),
		PlanUp:     unit.MbpsOf(capMbps / 4),
		PlanPrice:  40,
		Capacity:   unit.MbpsOf(capMbps * 0.95),
		UpCapacity: unit.MbpsOf(capMbps / 4 * 0.9),
		RTT:        0.08,
		Loss:       0.002,
		Usage: UsageSummary{
			Mean: unit.KbpsOf(200), Peak: unit.MbpsOf(1.5),
			MeanNoBT: unit.KbpsOf(150), PeakNoBT: unit.MbpsOf(1.2),
		},
		UsesBT:      true,
		AccessPrice: 20,
		UpgradeCost: 0.55,
	}
}

func sampleDataset() *Dataset {
	usProfile, _ := market.FindProfile("US")
	jpProfile, _ := market.FindProfile("JP")
	return &Dataset{
		Users: []User{
			sampleUser(1, "US", 10),
			sampleUser(2, "US", 2),
			sampleUser(3, "JP", 50),
		},
		Switches: []Switch{{
			UserID: 1, Country: "US",
			FromNet: "a", ToNet: "b",
			FromDown: unit.MbpsOf(2), ToDown: unit.MbpsOf(10),
			Before: UsageSummary{Mean: unit.KbpsOf(95), Peak: unit.KbpsOf(192)},
			After:  UsageSummary{Mean: unit.KbpsOf(189), Peak: unit.KbpsOf(634)},
		}},
		Plans: []market.Plan{{
			Country: "US", ISP: "US-ISP1", Down: unit.MbpsOf(10), Up: unit.MbpsOf(2),
			PriceLocal: 45, PriceUSD: 45, Tech: market.Cable,
		}},
		Markets: map[string]market.MarketSummary{
			"US": {Country: usProfile.Country, AccessPrice: 20, AccessGroup: market.AccessCheap},
			"JP": {Country: jpProfile.Country, AccessPrice: 21, AccessGroup: market.AccessCheap},
		},
	}
}

func TestValidateAcceptsGoodData(t *testing.T) {
	if err := sampleDataset().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Dataset)
	}{
		{"no users", func(d *Dataset) { d.Users = nil }},
		{"duplicate id", func(d *Dataset) { d.Users[1].ID = d.Users[0].ID }},
		{"missing country", func(d *Dataset) { d.Users[0].Country = "" }},
		{"unknown market", func(d *Dataset) { d.Users[0].Country = "ZZ" }},
		{"zero capacity", func(d *Dataset) { d.Users[0].Capacity = 0 }},
		{"zero rtt", func(d *Dataset) { d.Users[0].RTT = 0 }},
		{"bad loss", func(d *Dataset) { d.Users[0].Loss = 1.5 }},
		{"negative usage", func(d *Dataset) { d.Users[0].Usage.Mean = -1 }},
		{"downgrade switch", func(d *Dataset) { d.Switches[0].ToDown = unit.KbpsOf(100) }},
	}
	for _, c := range cases {
		d := sampleDataset()
		c.break_(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: corruption not caught", c.name)
		}
	}
}

func TestUsersCSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteUsers(&buf, d.Users); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUsers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Users) {
		t.Fatalf("round trip lost users: %d vs %d", len(got), len(d.Users))
	}
	for i := range got {
		a, b := got[i], d.Users[i]
		if a.ID != b.ID || a.Country != b.Country || a.Vantage != b.Vantage || a.Year != b.Year {
			t.Errorf("user %d identity mismatch: %+v vs %+v", i, a, b)
		}
		if !approxRate(a.Capacity, b.Capacity) || !approxRate(a.Usage.PeakNoBT, b.Usage.PeakNoBT) {
			t.Errorf("user %d rates mismatch", i)
		}
		if a.UsesBT != b.UsesBT || a.PlanTech != b.PlanTech {
			t.Errorf("user %d flags mismatch", i)
		}
		if !approx(a.RTT, b.RTT) || !approx(float64(a.Loss), float64(b.Loss)) {
			t.Errorf("user %d quality mismatch", i)
		}
		if !approx(a.AccessPrice.Dollars(), b.AccessPrice.Dollars()) {
			t.Errorf("user %d market mismatch", i)
		}
	}
}

func TestSwitchesCSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WriteSwitches(&buf, d.Switches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSwitches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d switches", len(got))
	}
	s := got[0]
	if s.UserID != 1 || !approxRate(s.ToDown, unit.MbpsOf(10)) || !approxRate(s.After.Peak, unit.KbpsOf(634)) {
		t.Errorf("switch mismatch: %+v", s)
	}
}

func TestPlansCSVRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := WritePlans(&buf, d.Plans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ISP != "US-ISP1" || got[0].Tech != market.Cable {
		t.Errorf("plans mismatch: %+v", got)
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := ReadUsers(strings.NewReader("")); err == nil {
		t.Error("empty users input should error")
	}
	if _, err := ReadUsers(strings.NewReader("not,a,users,header\n")); err == nil {
		t.Error("wrong header should error")
	}
	var buf bytes.Buffer
	if err := WriteUsers(&buf, sampleDataset().Users); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), "2012", "twenty12", 1)
	if _, err := ReadUsers(strings.NewReader(corrupted)); err == nil {
		t.Error("non-numeric field should error")
	}
	if _, err := ReadSwitches(strings.NewReader("")); err == nil {
		t.Error("empty switches input should error")
	}
	if _, err := ReadPlans(strings.NewReader("x\n")); err == nil {
		t.Error("bad plans header should error")
	}
}

func TestSaveDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	d := sampleDataset()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"users.csv", "switches.csv", "plans.csv"} {
		fp := filepath.Join(dir, name)
		st, err := os.Stat(fp)
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "users.csv"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadUsers(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(d.Users) {
		t.Errorf("reloaded %d users, want %d", len(back), len(d.Users))
	}
}

func TestSelectAndPredicates(t *testing.T) {
	d := sampleDataset()
	us := Select(d.Users, ByCountry("US"))
	if len(us) != 2 {
		t.Errorf("ByCountry(US) = %d users", len(us))
	}
	notUS := Select(d.Users, NotCountry("US"))
	if len(notUS) != 1 || notUS[0].Country != "JP" {
		t.Errorf("NotCountry(US) wrong: %d", len(notUS))
	}
	dasu := Select(d.Users, ByVantage(VantageDasu), ByYear(2012))
	if len(dasu) != 3 {
		t.Errorf("vantage+year = %d users", len(dasu))
	}
	fast := Select(d.Users, ByTier(stats.TierOver32))
	if len(fast) != 1 || fast[0].ID != 3 {
		t.Errorf("ByTier(>32) wrong")
	}
	mid := Select(d.Users, CapacityBetween(unit.MbpsOf(5), unit.MbpsOf(20)))
	if len(mid) != 1 || mid[0].ID != 1 {
		t.Errorf("CapacityBetween wrong")
	}
	cls := stats.ClassOf(unit.MbpsOf(1.9))
	inClass := Select(d.Users, ByClass(cls))
	if len(inClass) != 1 || inClass[0].ID != 2 {
		t.Errorf("ByClass wrong: %d", len(inClass))
	}
}

func TestMetricsAndHelpers(t *testing.T) {
	d := sampleDataset()
	all := All(d.Users)
	if len(all) != 3 {
		t.Fatalf("All = %d", len(all))
	}
	vals := Values(all, PeakUsageNoBT)
	for _, v := range vals {
		if v != float64(unit.MbpsOf(1.2)) {
			t.Errorf("PeakUsageNoBT = %v", v)
		}
	}
	caps := Capacities(all)
	if caps[2] != float64(unit.MbpsOf(47.5)) {
		t.Errorf("Capacities[2] = %v", caps[2])
	}
	// Utilization is peak-no-BT over capacity, clamped to 1.
	u := d.Users[0]
	want := float64(unit.MbpsOf(1.2)) / float64(unit.MbpsOf(9.5))
	if got := u.PeakUtilization(); !approx(got, want) {
		t.Errorf("PeakUtilization = %v, want %v", got, want)
	}
	u.Usage.PeakNoBT = unit.MbpsOf(100)
	if u.PeakUtilization() != 1 {
		t.Error("utilization must clamp at 1")
	}
	u.Capacity = 0
	if u.PeakUtilization() != 0 {
		t.Error("zero capacity utilization must be 0")
	}
}

func TestMarketOfAndCountryUsers(t *testing.T) {
	d := sampleDataset()
	m, ok := d.MarketOf(&d.Users[2])
	if !ok || m.Country.Code != "JP" {
		t.Errorf("MarketOf(JP user) = %+v, %v", m, ok)
	}
	if users := d.CountryUsers("US"); len(users) != 2 {
		t.Errorf("CountryUsers(US) = %d", len(users))
	}
	if users := d.CountryUsers("ZZ"); users != nil {
		t.Errorf("CountryUsers(ZZ) = %v", users)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-6*scale+1e-12
}

func approxRate(a, b unit.Bitrate) bool { return approx(float64(a), float64(b)) }
