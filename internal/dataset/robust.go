package dataset

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/market"
)

// Quarantine-hardened ingestion. The strict loaders (LoadDir, ReadUsers …)
// abort on the first malformed row — the right contract for data this
// pipeline wrote itself. Real measurement panels are dirtier: host churn,
// counter resets, duplicated and missing samples, corrupted uploads. The
// robust loaders ingest such inputs by skipping bad rows and collecting a
// typed per-row diagnostic report (file, 1-based row, fault class, cause),
// gated by a configurable error budget beyond which loading fails with one
// summarizing *BudgetError. Nothing here panics, and nothing is dropped
// silently: every excluded row appears in the report.

// RowFault classifies why a row was quarantined or a load failed.
type RowFault int

const (
	// FaultSyntax is a structurally malformed CSV row: wrong field count,
	// broken quoting. The reader recovers and continues at the next row.
	FaultSyntax RowFault = iota
	// FaultParse is a field that failed numeric/boolean conversion.
	FaultParse
	// FaultDomain is a parsed row whose values are physically or temporally
	// impossible — negative rates (counter reset), absurd magnitudes
	// (counter wraparound), years outside the plausible window (clock
	// skew), NaN/Inf measurements.
	FaultDomain
	// FaultDuplicate is a row whose primary key was already seen; the first
	// occurrence is kept.
	FaultDuplicate
	// FaultReference is a row referencing a market that does not exist
	// after the plan survey was ingested (its summary could not be built).
	FaultReference
	// FaultTruncated is a stream that ends mid-record at the transport
	// level (gzip corruption, unexpected EOF). Terminal: the remainder of
	// the file is unreadable, so robust loading fails rather than return a
	// silently short table.
	FaultTruncated
	// FaultIO is any other transport read failure. Terminal.
	FaultIO
)

var rowFaultNames = [...]string{
	"syntax", "parse", "domain", "duplicate", "reference", "truncated", "io",
}

// String names the fault class the way diagnostics and reports render it.
func (f RowFault) String() string {
	if int(f) < len(rowFaultNames) {
		return rowFaultNames[f]
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// MarshalJSON renders the class as its name in machine-readable reports.
func (f RowFault) MarshalJSON() ([]byte, error) {
	return []byte(`"` + f.String() + `"`), nil
}

// RowError is the typed load error every dataset reader reports: which
// file, which 1-based row (the header is row 1; 0 means the fault is not
// row-addressable), what class of fault, and the underlying cause.
type RowError struct {
	File  string
	Row   int
	Class RowFault
	Err   error
}

// Error renders "dataset: FILE row N [class]: cause".
func (e *RowError) Error() string {
	if e.Row > 0 {
		return fmt.Sprintf("dataset: %s row %d [%s]: %v", e.File, e.Row, e.Class, e.Err)
	}
	return fmt.Sprintf("dataset: %s [%s]: %v", e.File, e.Class, e.Err)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *RowError) Unwrap() error { return e.Err }

// recoverable reports whether the reader can continue past this fault.
func (f RowFault) recoverable() bool {
	switch f {
	case FaultSyntax, FaultParse, FaultDomain, FaultDuplicate, FaultReference:
		return true
	}
	return false
}

// RowDiag is one quarantined row in the report.
type RowDiag struct {
	File  string   `json:"file"`
	Row   int      `json:"row"`
	Class RowFault `json:"class"`
	Cause string   `json:"cause"`
}

func (d RowDiag) String() string {
	return fmt.Sprintf("%s row %d [%s]: %s", d.File, d.Row, d.Class, d.Cause)
}

// QuarantineReport aggregates every quarantined row of a robust load.
type QuarantineReport struct {
	// RowsRead counts the data rows offered across all tables (kept +
	// quarantined); RowsKept the rows that survived.
	RowsRead int `json:"rows_read"`
	RowsKept int `json:"rows_kept"`
	// Diags lists every quarantined row in file order.
	Diags []RowDiag `json:"diags,omitempty"`
}

// Counts tallies the quarantined rows per fault class.
func (r *QuarantineReport) Counts() map[RowFault]int {
	out := make(map[RowFault]int)
	for _, d := range r.Diags {
		out[d.Class]++
	}
	return out
}

// countsSummary renders "3 parse, 2 domain" with classes in enum order.
func countsSummary(counts map[RowFault]int) string {
	classes := make([]RowFault, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%d %s", counts[c], c))
	}
	return strings.Join(parts, ", ")
}

// Render formats the report for humans: the aggregate line, the per-class
// tally, and up to maxDiags individual rows.
func (r *QuarantineReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "quarantine: kept %d of %d rows", r.RowsKept, r.RowsRead)
	if len(r.Diags) == 0 {
		b.WriteString(", no rows quarantined\n")
		return b.String()
	}
	fmt.Fprintf(&b, ", quarantined %d (%s)\n", len(r.Diags), countsSummary(r.Counts()))
	const maxDiags = 20
	for i, d := range r.Diags {
		if i == maxDiags {
			fmt.Fprintf(&b, "  ... and %d more\n", len(r.Diags)-maxDiags)
			break
		}
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// QuarantineOptions configures the error budget of a robust load.
type QuarantineOptions struct {
	// MaxBadFrac is the per-file error budget: the maximum fraction of
	// data rows that may be quarantined before the load fails with a
	// *BudgetError. Zero or negative selects DefaultMaxBadFrac; a value
	// >= 1 disables the fractional budget.
	MaxBadFrac float64
	// MaxBadRows is an absolute per-file cap checked incrementally
	// (0 = no absolute cap).
	MaxBadRows int
}

// DefaultMaxBadFrac is the error budget applied when none is configured:
// 5% bad rows per file, roughly the dirt level the paper's source panels
// carried after transport but before cleaning.
const DefaultMaxBadFrac = 0.05

// maxBadFrac resolves the configured fractional budget.
func (o QuarantineOptions) maxBadFrac() float64 {
	if o.MaxBadFrac <= 0 {
		return DefaultMaxBadFrac
	}
	return o.MaxBadFrac
}

// BudgetError reports an exceeded error budget: the single summarizing
// error a robust load returns instead of a diagnostic per row.
type BudgetError struct {
	File string
	// Bad and Read count quarantined and offered data rows for File.
	Bad, Read int
	// Budget is the fractional budget in force.
	Budget float64
	// Counts tallies the file's quarantined rows per fault class.
	Counts map[RowFault]int
}

// Error renders the summary, e.g. "dataset: users.csv: error budget
// exceeded: 213 of 950 rows quarantined (budget 5.0%): 120 parse, 93 domain".
func (e *BudgetError) Error() string {
	return fmt.Sprintf("dataset: %s: error budget exceeded: %d of %d rows quarantined (budget %.1f%%): %s",
		e.File, e.Bad, e.Read, e.Budget*100, countsSummary(e.Counts))
}

// Quarantine tracks one file's row budget and routes diagnostics into the
// shared report. Create one per file with NewQuarantine and hand it to the
// robust readers.
type Quarantine struct {
	file      string
	opts      QuarantineOptions
	rep       *QuarantineReport
	read, bad int
}

// NewQuarantine returns the per-file quarantine gate writing into rep.
func NewQuarantine(file string, opts QuarantineOptions, rep *QuarantineReport) *Quarantine {
	return &Quarantine{file: file, opts: opts, rep: rep}
}

// budgetFloor is the minimum number of offered rows before the fractional
// budget is enforced incrementally; below it only the absolute cap applies,
// so tiny files are not failed by their first bad row.
const budgetFloor = 200

// budgetErr builds the summarizing error for this file.
func (q *Quarantine) budgetErr() *BudgetError {
	counts := make(map[RowFault]int)
	for _, d := range q.rep.Diags {
		if d.File == q.file {
			counts[d.Class]++
		}
	}
	return &BudgetError{File: q.file, Bad: q.bad, Read: q.read, Budget: q.opts.maxBadFrac(), Counts: counts}
}

// note records one quarantined row and enforces the incremental budget.
func (q *Quarantine) note(row int, class RowFault, cause error) error {
	q.read++
	q.bad++
	q.rep.RowsRead++
	q.rep.Diags = append(q.rep.Diags, RowDiag{File: q.file, Row: row, Class: class, Cause: cause.Error()})
	if q.opts.MaxBadRows > 0 && q.bad > q.opts.MaxBadRows {
		return q.budgetErr()
	}
	if frac := q.opts.maxBadFrac(); frac < 1 && q.read >= budgetFloor && float64(q.bad) > frac*float64(q.read) {
		return q.budgetErr()
	}
	return nil
}

// kept records one accepted row.
func (q *Quarantine) kept() {
	q.read++
	q.rep.RowsRead++
	q.rep.RowsKept++
}

// demote retracts a previously kept row (post-pass faults: duplicate keys,
// orphaned market references) and re-enforces the budget.
func (q *Quarantine) demote(row int, class RowFault, cause error) error {
	q.bad++
	q.rep.RowsKept--
	q.rep.Diags = append(q.rep.Diags, RowDiag{File: q.file, Row: row, Class: class, Cause: cause.Error()})
	if q.opts.MaxBadRows > 0 && q.bad > q.opts.MaxBadRows {
		return q.budgetErr()
	}
	return nil
}

// finish enforces the fractional budget at end of file and returns io.EOF
// when the file is within budget.
func (q *Quarantine) finish() error {
	if frac := q.opts.maxBadFrac(); frac < 1 && q.read > 0 && float64(q.bad) > frac*float64(q.read) {
		return q.budgetErr()
	}
	return io.EOF
}

// rowSource is the streaming-reader shape shared by UserReader,
// SwitchReader and PlanReader: Read fills the next record, Row reports the
// 1-based line of the record just returned.
type rowSource[T any] interface {
	Read(*T) error
	Row() int
}

// RobustReader wraps a streaming reader with the quarantine contract: Read
// skips rows that fail structurally, at parse time, or at domain
// validation, recording each in the report; it returns io.EOF at end of
// stream, a *BudgetError when the error budget is exhausted, and a terminal
// *RowError when the transport itself fails (truncation, gzip corruption,
// I/O). It never panics.
type RobustReader[T any] struct {
	src    rowSource[T]
	domain func(*T) error
	q      *Quarantine
}

// Read fills v with the next row that survives quarantine.
func (r *RobustReader[T]) Read(v *T) error {
	for {
		err := r.src.Read(v)
		if err == nil {
			if derr := r.domain(v); derr != nil {
				if qerr := r.q.note(r.src.Row(), FaultDomain, derr); qerr != nil {
					return qerr
				}
				continue
			}
			r.q.kept()
			return nil
		}
		if err == io.EOF {
			return r.q.finish()
		}
		var re *RowError
		if errors.As(err, &re) && re.Class.recoverable() {
			if qerr := r.q.note(re.Row, re.Class, re.Err); qerr != nil {
				return qerr
			}
			continue
		}
		return err // terminal: truncated stream, I/O failure, header fault
	}
}

// Row reports the 1-based line of the record Read last returned.
func (r *RobustReader[T]) Row() int { return r.src.Row() }

// NewRobustUserReader wraps a users CSV stream in the quarantine contract.
// The file name seeds diagnostics; q may be shared across files only via
// separate Quarantine values writing into one report.
func NewRobustUserReader(rd io.Reader, file string, q *Quarantine) (*RobustReader[User], error) {
	ur, err := NewUserReaderFile(rd, file)
	if err != nil {
		return nil, err
	}
	return &RobustReader[User]{src: ur, domain: checkUserDomain, q: q}, nil
}

// NewRobustSwitchReader is NewRobustUserReader for the switches table.
func NewRobustSwitchReader(rd io.Reader, file string, q *Quarantine) (*RobustReader[Switch], error) {
	sr, err := NewSwitchReaderFile(rd, file)
	if err != nil {
		return nil, err
	}
	return &RobustReader[Switch]{src: sr, domain: checkSwitchDomain, q: q}, nil
}

// NewRobustPlanReader is NewRobustUserReader for the plan survey.
func NewRobustPlanReader(rd io.Reader, file string, q *Quarantine) (*RobustReader[market.Plan], error) {
	pr, err := NewPlanReaderFile(rd, file)
	if err != nil {
		return nil, err
	}
	return &RobustReader[market.Plan]{src: pr, domain: checkPlanDomain, q: q}, nil
}

// Domain bounds. Values outside them are physically or temporally
// impossible for residential broadband in the study's era and mark counter
// resets (negative rates), wraparounds (absurd magnitudes), and clock skew
// (years outside the panel window) — the classic dirty-panel pathologies.
const (
	maxPlausibleRate = 100e9 // 100 Gbps, far above any 2011–2014 retail tier
	minPlausibleYear = 1995
	maxPlausibleYear = 2035
	maxPlausibleRTT  = 60.0 // seconds
	maxPlausibleUSD  = 1e6  // monthly price
)

// badRate reports why a bps value is implausible ("" = fine).
func badRate(v float64, allowZero bool) string {
	switch {
	case math.IsNaN(v):
		return "is NaN"
	case math.IsInf(v, 0):
		return "is infinite"
	case v < 0:
		return "is negative (counter reset)"
	case !allowZero && v == 0:
		return "is zero"
	case v > maxPlausibleRate:
		return "exceeds 100 Gbps (counter wraparound)"
	}
	return ""
}

// badMoney reports why a USD value is implausible ("" = fine).
func badMoney(v float64) string {
	switch {
	case math.IsNaN(v):
		return "is NaN"
	case math.IsInf(v, 0):
		return "is infinite"
	case v < 0:
		return "is negative"
	case v > maxPlausibleUSD:
		return "is implausibly large"
	}
	return ""
}

// checkUserDomain validates a parsed user row against the physical domain.
func checkUserDomain(u *User) error {
	if u.ID <= 0 {
		return fmt.Errorf("id %d is not positive", u.ID)
	}
	if u.Country == "" {
		return errors.New("country is empty")
	}
	if u.Year < minPlausibleYear || u.Year > maxPlausibleYear {
		return fmt.Errorf("year %d outside [%d, %d] (clock skew)", u.Year, minPlausibleYear, maxPlausibleYear)
	}
	if why := badRate(float64(u.Capacity), false); why != "" {
		return fmt.Errorf("capacity %s", why)
	}
	if why := badRate(float64(u.UpCapacity), true); why != "" {
		return fmt.Errorf("up capacity %s", why)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{{"rtt", u.RTT}, {"web rtt", u.WebRTT}} {
		if math.IsNaN(c.v) || c.v < 0 || c.v > maxPlausibleRTT {
			return fmt.Errorf("%s %v outside [0, %gs]", c.name, c.v, maxPlausibleRTT)
		}
	}
	if u.RTT == 0 {
		return errors.New("rtt is zero")
	}
	if l := float64(u.Loss); math.IsNaN(l) || l < 0 || l > 1 {
		return fmt.Errorf("loss %v outside [0, 1]", l)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"mean usage", float64(u.Usage.Mean)}, {"peak usage", float64(u.Usage.Peak)},
		{"mean usage (no BT)", float64(u.Usage.MeanNoBT)}, {"peak usage (no BT)", float64(u.Usage.PeakNoBT)},
		{"plan downstream", float64(u.PlanDown)}, {"plan upstream", float64(u.PlanUp)},
	} {
		if why := badRate(c.v, true); why != "" {
			return fmt.Errorf("%s %s", c.name, why)
		}
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"plan price", float64(u.PlanPrice)}, {"access price", float64(u.AccessPrice)},
		{"upgrade cost", float64(u.UpgradeCost)},
	} {
		if why := badMoney(c.v); why != "" {
			return fmt.Errorf("%s %s", c.name, why)
		}
	}
	if u.PlanCap < 0 {
		return errors.New("plan cap is negative")
	}
	return nil
}

// checkSwitchDomain validates a parsed switch row.
func checkSwitchDomain(s *Switch) error {
	if s.UserID <= 0 {
		return fmt.Errorf("user id %d is not positive", s.UserID)
	}
	if s.Country == "" {
		return errors.New("country is empty")
	}
	for _, c := range []struct {
		name string
		v    float64
	}{{"from capacity", float64(s.FromDown)}, {"to capacity", float64(s.ToDown)}} {
		if why := badRate(c.v, false); why != "" {
			return fmt.Errorf("%s %s", c.name, why)
		}
	}
	if s.FromDown >= s.ToDown {
		return fmt.Errorf("not an upgrade: %v -> %v", s.FromDown, s.ToDown)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"before mean", float64(s.Before.Mean)}, {"before peak", float64(s.Before.Peak)},
		{"before mean (no BT)", float64(s.Before.MeanNoBT)}, {"before peak (no BT)", float64(s.Before.PeakNoBT)},
		{"after mean", float64(s.After.Mean)}, {"after peak", float64(s.After.Peak)},
		{"after mean (no BT)", float64(s.After.MeanNoBT)}, {"after peak (no BT)", float64(s.After.PeakNoBT)},
	} {
		if why := badRate(c.v, true); why != "" {
			return fmt.Errorf("%s %s", c.name, why)
		}
	}
	return nil
}

// checkPlanDomain validates a parsed plan-survey row.
func checkPlanDomain(p *market.Plan) error {
	if p.Country == "" {
		return errors.New("country is empty")
	}
	if why := badRate(float64(p.Down), false); why != "" {
		return fmt.Errorf("downstream %s", why)
	}
	if why := badRate(float64(p.Up), true); why != "" {
		return fmt.Errorf("upstream %s", why)
	}
	if why := badMoney(float64(p.PriceUSD)); why != "" {
		return fmt.Errorf("price %s", why)
	}
	if math.IsNaN(p.PriceLocal) || math.IsInf(p.PriceLocal, 0) || p.PriceLocal < 0 {
		return errors.New("local price is not a plausible amount")
	}
	if p.Cap < 0 {
		return errors.New("cap is negative")
	}
	return nil
}

// LoadDirRobust reads a dataset directory the way LoadDir does, but under
// the quarantine contract: malformed, out-of-domain, duplicated and
// orphaned rows are skipped and reported instead of aborting the load, up
// to the configured error budget. The report is returned even when the
// load fails, so callers can see how far ingestion got. Terminal failures
// (transport errors, exhausted budgets) are typed: *RowError, *BudgetError.
func LoadDirRobust(dir string, opts QuarantineOptions) (*Dataset, *QuarantineReport, error) {
	rep := &QuarantineReport{}
	d := &Dataset{Markets: make(map[string]market.MarketSummary)}

	// Users. Row numbers are kept for the post-pass demotions below.
	var userRows []int
	userQ, err := loadTableRobust(dir, "users.csv", opts, rep, NewRobustUserReader, func(u *User, row int) {
		d.Users = append(d.Users, *u)
		userRows = append(userRows, row)
	})
	if err != nil {
		return nil, rep, err
	}
	// Switches.
	if _, err := loadTableRobust(dir, "switches.csv", opts, rep, NewRobustSwitchReader, func(s *Switch, _ int) {
		d.Switches = append(d.Switches, *s)
	}); err != nil {
		return nil, rep, err
	}
	// Plan survey.
	if _, err := loadTableRobust(dir, "plans.csv", opts, rep, NewRobustPlanReader, func(p *market.Plan, _ int) {
		d.Plans = append(d.Plans, *p)
	}); err != nil {
		return nil, rep, err
	}

	// Duplicated user IDs: keep the first occurrence (duplicate-sample
	// pathology), demote the rest.
	seen := make(map[int64]bool, len(d.Users))
	kept := d.Users[:0]
	keptRows := userRows[:0]
	for i := range d.Users {
		u := &d.Users[i]
		if seen[u.ID] {
			if err := userQ.demote(userRows[i], FaultDuplicate, fmt.Errorf("duplicate user id %d", u.ID)); err != nil {
				return nil, rep, err
			}
			continue
		}
		seen[u.ID] = true
		kept = append(kept, *u)
		keptRows = append(keptRows, userRows[i])
	}
	d.Users = kept
	userRows = keptRows

	// Rebuild per-market summaries from the surviving survey rows, exactly
	// as the strict loader does.
	byCountry := make(map[string]*market.Catalog)
	for _, p := range d.Plans {
		cat := byCountry[p.Country]
		if cat == nil {
			cat = &market.Catalog{}
			if prof, ok := market.FindProfile(p.Country); ok {
				cat.Country = prof.Country
			} else {
				cat.Country = market.Country{Code: p.Country, Name: p.Country}
			}
			byCountry[p.Country] = cat
		}
		cat.Plans = append(cat.Plans, p)
	}
	for code, cat := range byCountry {
		sum, err := market.Summarize(*cat)
		if err != nil {
			continue // markets with no ≥1 Mbps plan carry no summary
		}
		d.Markets[code] = sum
	}

	// Users whose market lost its summary (quarantined survey rows) are
	// orphans: demote them rather than fail validation.
	kept = d.Users[:0]
	for i := range d.Users {
		u := &d.Users[i]
		if _, ok := d.Markets[u.Country]; !ok {
			if err := userQ.demote(userRows[i], FaultReference, fmt.Errorf("market %q has no plan survey", u.Country)); err != nil {
				return nil, rep, err
			}
			continue
		}
		kept = append(kept, *u)
	}
	d.Users = kept

	// The surviving dataset must satisfy the strict invariants — anything
	// else would mean the quarantine let corruption through.
	if err := d.Validate(); err != nil {
		return nil, rep, fmt.Errorf("dataset: robust load left invalid data: %w", err)
	}
	// Freeze only after the dedup/demotion post-passes above: the panel
	// must project the surviving rows, not the raw parse.
	d.Freeze()
	return d, rep, nil
}

// loadTableRobust streams one table through its robust reader, returning
// the quarantine gate so post-passes can demote rows against the same
// budget.
func loadTableRobust[T any](
	dir, base string, opts QuarantineOptions, rep *QuarantineReport,
	open func(io.Reader, string, *Quarantine) (*RobustReader[T], error),
	keep func(*T, int),
) (*Quarantine, error) {
	rc, path, err := openTablePath(dir, base)
	if err != nil {
		return nil, &RowError{File: path, Class: FaultIO, Err: err}
	}
	defer rc.Close()
	q := NewQuarantine(path, opts, rep)
	rr, err := open(rc, path, q)
	if err != nil {
		return nil, err
	}
	var v T
	for {
		err := rr.Read(&v)
		if err == io.EOF {
			return q, nil
		}
		if err != nil {
			return nil, err
		}
		keep(&v, rr.Row())
	}
}
