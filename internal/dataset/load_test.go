package dataset

import (
	"path/filepath"
	"testing"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/unit"
)

func TestLoadDirRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	d := sampleDataset()
	// Give the sample enough plans for summaries to rebuild.
	for _, mbps := range []float64{1, 2, 4, 8, 16} {
		d.Plans = append(d.Plans,
			planFor("US", mbps, 20+0.55*(mbps-1)),
			planFor("JP", mbps, 21+0.08*(mbps-1)),
		)
	}
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(d.Users) || len(back.Switches) != len(d.Switches) {
		t.Fatalf("round trip: %d users %d switches", len(back.Users), len(back.Switches))
	}
	// Market summaries rebuilt from the survey, with country metadata
	// rejoined from the built-in profiles.
	us, ok := back.Markets["US"]
	if !ok {
		t.Fatal("US market summary missing after load")
	}
	if us.Country.Name != "United States" || us.Country.GDPPerCapitaPPP != 49797 {
		t.Errorf("US country metadata not rejoined: %+v", us.Country)
	}
	if us.AccessPrice < 15 || us.AccessPrice > 25 {
		t.Errorf("US access price rebuilt as %v", us.AccessPrice)
	}
	// The sample fixture carries one off-line plan (10 Mbps at $45), which
	// legitimately steepens the rebuilt OLS slope above the 0.55 the added
	// ladder implies.
	if got := float64(us.Upgrade.Slope); got < 0.4 || got > 1.2 {
		t.Errorf("US upgrade slope rebuilt as %v", got)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("loaded dataset invalid: %v", err)
	}
}

func TestLoadDirMissingFiles(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory should fail to load")
	}
}

func planFor(cc string, mbps, price float64) (p market.Plan) {
	p.Country = cc
	p.ISP = cc + "-ISP1"
	p.Down = unit.MbpsOf(mbps)
	p.Up = unit.MbpsOf(mbps / 4)
	p.PriceUSD = unit.USD(price)
	p.PriceLocal = price
	return p
}
