package dataset

import (
	"compress/flate"
	"compress/gzip"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"github.com/nwca/broadband/internal/market"
)

// Streaming CSV layer: record-at-a-time readers and writers with constant
// per-row memory. The slice-based API (ReadUsers/WriteUsers and friends) is
// a thin wrapper over these; experiments that must scale past RAM consume
// the iterators directly (see SelectFrom / EachUser in filter.go).
//
// Readers reuse the csv.Reader record slice (ReuseRecord) and enforce the
// header's field count on every row; writers encode each record into a
// reusable scratch buffer with strconv.Append* — zero allocations per row
// in steady state — and emit exactly the bytes encoding/csv would, so the
// format is unchanged.

// rowWriter encodes one CSV record at a time into a reusable scratch
// buffer, flushing each completed row to the sink with a single Write. The
// first sink error is sticky and carries the 1-based row number (the header
// is row 1) at which it surfaced.
type rowWriter struct {
	w     io.Writer
	table string // "users", "switches", "plans" — error context
	buf   []byte
	n     int // fields appended to the current row
	row   int // rows already flushed (header included)
	err   error
}

func (w *rowWriter) sep() {
	if w.n > 0 {
		w.buf = append(w.buf, ',')
	}
	w.n++
}

// str appends a string field, quoting by encoding/csv's exact rules so the
// streamed bytes match what csv.Writer historically produced.
func (w *rowWriter) str(s string) {
	w.sep()
	if !fieldNeedsQuotes(s) {
		w.buf = append(w.buf, s...)
		return
	}
	w.buf = append(w.buf, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			w.buf = append(w.buf, '"', '"')
		} else {
			w.buf = append(w.buf, s[i])
		}
	}
	w.buf = append(w.buf, '"')
}

func (w *rowWriter) f64(v float64) {
	w.sep()
	w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64)
}

func (w *rowWriter) i64(v int64) {
	w.sep()
	w.buf = strconv.AppendInt(w.buf, v, 10)
}

func (w *rowWriter) int(v int) { w.i64(int64(v)) }

func (w *rowWriter) bool(v bool) {
	w.sep()
	w.buf = strconv.AppendBool(w.buf, v)
}

// endRow terminates the record and writes it to the sink.
func (w *rowWriter) endRow() error {
	if w.err == nil {
		w.buf = append(w.buf, '\n')
		w.row++
		if _, err := w.w.Write(w.buf); err != nil {
			w.err = fmt.Errorf("dataset: %s row %d: %w", w.table, w.row, err)
		}
	}
	w.buf = w.buf[:0]
	w.n = 0
	return w.err
}

func (w *rowWriter) header(cols []string) error {
	for _, c := range cols {
		w.str(c)
	}
	return w.endRow()
}

// fieldNeedsQuotes mirrors encoding/csv's rules for Comma=',' and
// UseCRLF=false, so the streaming writer is byte-compatible with it.
func fieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` || strings.ContainsAny(field, ",\"\r\n") {
		return true
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// Per-record encoders. Field order is the single source of truth shared
// with the decoders below; the slice writers and the sharded parallel
// encoder both go through these.

func encodeUser(w *rowWriter, u *User) error {
	w.i64(u.ID)
	w.str(u.Country)
	w.int(int(u.Vantage))
	w.int(u.Year)
	w.str(u.ISP)
	w.str(u.NetworkKey)
	w.f64(u.PlanDown.Mbps())
	w.f64(u.PlanUp.Mbps())
	w.f64(u.PlanPrice.Dollars())
	w.int(int(u.PlanTech))
	w.f64(u.PlanCap.GB())
	w.f64(u.Capacity.Mbps())
	w.f64(u.UpCapacity.Mbps())
	w.f64(u.RTT * 1000)
	w.f64(u.WebRTT * 1000)
	w.f64(u.Loss.Percent())
	w.f64(u.Usage.Mean.Mbps())
	w.f64(u.Usage.Peak.Mbps())
	w.f64(u.Usage.MeanNoBT.Mbps())
	w.f64(u.Usage.PeakNoBT.Mbps())
	w.bool(u.UsesBT)
	w.int(int(u.Archetype))
	w.f64(u.AccessPrice.Dollars())
	w.f64(float64(u.UpgradeCost))
	return w.endRow()
}

func encodeSwitch(w *rowWriter, s *Switch) error {
	w.i64(s.UserID)
	w.str(s.Country)
	w.str(s.FromNet)
	w.str(s.ToNet)
	w.f64(s.FromDown.Mbps())
	w.f64(s.ToDown.Mbps())
	w.f64(s.Before.Mean.Mbps())
	w.f64(s.Before.Peak.Mbps())
	w.f64(s.Before.MeanNoBT.Mbps())
	w.f64(s.Before.PeakNoBT.Mbps())
	w.f64(s.After.Mean.Mbps())
	w.f64(s.After.Peak.Mbps())
	w.f64(s.After.MeanNoBT.Mbps())
	w.f64(s.After.PeakNoBT.Mbps())
	return w.endRow()
}

func encodePlan(w *rowWriter, p *market.Plan) error {
	w.str(p.Country)
	w.str(p.ISP)
	w.f64(p.Down.Mbps())
	w.f64(p.Up.Mbps())
	w.f64(p.PriceLocal)
	w.f64(p.PriceUSD.Dollars())
	w.f64(p.Cap.GB())
	w.int(int(p.Tech))
	w.bool(p.Dedicated)
	return w.endRow()
}

// UserWriter streams users to CSV one record at a time with constant
// per-row memory. The header is written by NewUserWriter; each Write emits
// one row. Errors are sticky and carry the row number.
type UserWriter struct{ w rowWriter }

// NewUserWriter writes the users header and returns the streaming writer.
func NewUserWriter(w io.Writer) (*UserWriter, error) {
	uw := &UserWriter{rowWriter{w: w, table: "users"}}
	if err := uw.w.header(userHeader); err != nil {
		return nil, err
	}
	return uw, nil
}

// Write appends one user row.
func (w *UserWriter) Write(u *User) error { return encodeUser(&w.w, u) }

// SwitchWriter streams service-change records; see UserWriter.
type SwitchWriter struct{ w rowWriter }

// NewSwitchWriter writes the switches header and returns the streaming writer.
func NewSwitchWriter(w io.Writer) (*SwitchWriter, error) {
	sw := &SwitchWriter{rowWriter{w: w, table: "switches"}}
	if err := sw.w.header(switchHeader); err != nil {
		return nil, err
	}
	return sw, nil
}

// Write appends one switch row.
func (w *SwitchWriter) Write(s *Switch) error { return encodeSwitch(&w.w, s) }

// PlanWriter streams plan-survey records; see UserWriter.
type PlanWriter struct{ w rowWriter }

// NewPlanWriter writes the plans header and returns the streaming writer.
func NewPlanWriter(w io.Writer) (*PlanWriter, error) {
	pw := &PlanWriter{rowWriter{w: w, table: "plans"}}
	if err := pw.w.header(planHeader); err != nil {
		return nil, err
	}
	return pw, nil
}

// Write appends one plan row.
func (w *PlanWriter) Write(p *market.Plan) error { return encodePlan(&w.w, p) }

// wrapReadErr converts a csv.Reader error into the typed *RowError every
// dataset load reports. Structural CSV faults (field count, quoting) carry
// the line the csv package recorded and are recoverable — the reader
// resumes at the next record. Transport faults (gzip corruption, a stream
// cut mid-record, any other I/O failure) are terminal: the rest of the
// file is unreadable.
func wrapReadErr(file string, err error) error {
	var re *RowError
	if errors.As(err, &re) {
		return err
	}
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		return &RowError{File: file, Row: pe.Line, Class: FaultSyntax, Err: err}
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gzip.ErrChecksum) || errors.Is(err, gzip.ErrHeader) {
		return &RowError{File: file, Class: FaultTruncated, Err: err}
	}
	var fe flate.CorruptInputError
	if errors.As(err, &fe) {
		return &RowError{File: file, Class: FaultTruncated, Err: err}
	}
	return &RowError{File: file, Class: FaultIO, Err: err}
}

// newStreamReader validates the header and returns a csv.Reader configured
// for record-at-a-time reading: the record slice is reused across rows and
// the header's field count is enforced on every subsequent row. Header
// faults are typed *RowError values anchored at row 1.
func newStreamReader(r io.Reader, file string, header []string) (*csv.Reader, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, &RowError{File: file, Row: 1, Class: FaultTruncated, Err: errors.New("empty file (no header)")}
	}
	if err != nil {
		return nil, wrapReadErr(file, err)
	}
	if err := checkHeader(hdr, header); err != nil {
		return nil, &RowError{File: file, Row: 1, Class: FaultSyntax, Err: err}
	}
	cr.FieldsPerRecord = len(header)
	return cr, nil
}

// UserReader iterates a users CSV one record at a time with constant
// memory. Read fills the caller's User and returns io.EOF after the last
// row; every other error is a *RowError carrying the file, the 1-based row
// number (the header is row 1) and the fault class.
type UserReader struct {
	cr   *csv.Reader
	file string
	row  int
}

// NewUserReader validates the users header and returns the iterator. Load
// errors name the table; use NewUserReaderFile to carry a real path.
func NewUserReader(r io.Reader) (*UserReader, error) {
	return NewUserReaderFile(r, "users")
}

// NewUserReaderFile is NewUserReader with an explicit file name (typically
// the path being read) stamped onto every error.
func NewUserReaderFile(r io.Reader, file string) (*UserReader, error) {
	cr, err := newStreamReader(r, file, userHeader)
	if err != nil {
		return nil, err
	}
	return &UserReader{cr: cr, file: file, row: 1}, nil
}

// Row reports the 1-based line of the record Read last returned (or, after
// an error, of the record it failed on).
func (r *UserReader) Row() int { return r.row }

// Read parses the next user into u. It returns io.EOF at end of stream,
// leaving u unspecified.
func (r *UserReader) Read(u *User) error {
	rec, err := r.cr.Read()
	if err != nil {
		if err == io.EOF {
			return err
		}
		err = wrapReadErr(r.file, err)
		var re *RowError
		if errors.As(err, &re) && re.Row > 0 {
			r.row = re.Row
		}
		return err
	}
	// FieldPos gives the record's physical start line, so numbering stays
	// exact even after a structurally bad row was skipped.
	r.row, _ = r.cr.FieldPos(0)
	p := &parser{rec: rec}
	decodeUser(p, u)
	if p.err != nil {
		return &RowError{File: r.file, Row: r.row, Class: FaultParse, Err: p.err}
	}
	return nil
}

// SwitchReader iterates a switches CSV; see UserReader.
type SwitchReader struct {
	cr   *csv.Reader
	file string
	row  int
}

// NewSwitchReader validates the switches header and returns the iterator.
func NewSwitchReader(r io.Reader) (*SwitchReader, error) {
	return NewSwitchReaderFile(r, "switches")
}

// NewSwitchReaderFile is NewSwitchReader with an explicit file name.
func NewSwitchReaderFile(r io.Reader, file string) (*SwitchReader, error) {
	cr, err := newStreamReader(r, file, switchHeader)
	if err != nil {
		return nil, err
	}
	return &SwitchReader{cr: cr, file: file, row: 1}, nil
}

// Row reports the 1-based line of the record Read last returned.
func (r *SwitchReader) Row() int { return r.row }

// Read parses the next switch into s, returning io.EOF at end of stream.
func (r *SwitchReader) Read(s *Switch) error {
	rec, err := r.cr.Read()
	if err != nil {
		if err == io.EOF {
			return err
		}
		err = wrapReadErr(r.file, err)
		var re *RowError
		if errors.As(err, &re) && re.Row > 0 {
			r.row = re.Row
		}
		return err
	}
	r.row, _ = r.cr.FieldPos(0)
	p := &parser{rec: rec}
	decodeSwitch(p, s)
	if p.err != nil {
		return &RowError{File: r.file, Row: r.row, Class: FaultParse, Err: p.err}
	}
	return nil
}

// PlanReader iterates a plan-survey CSV; see UserReader.
type PlanReader struct {
	cr   *csv.Reader
	file string
	row  int
}

// NewPlanReader validates the plans header and returns the iterator.
func NewPlanReader(r io.Reader) (*PlanReader, error) {
	return NewPlanReaderFile(r, "plans")
}

// NewPlanReaderFile is NewPlanReader with an explicit file name.
func NewPlanReaderFile(r io.Reader, file string) (*PlanReader, error) {
	cr, err := newStreamReader(r, file, planHeader)
	if err != nil {
		return nil, err
	}
	return &PlanReader{cr: cr, file: file, row: 1}, nil
}

// Row reports the 1-based line of the record Read last returned.
func (r *PlanReader) Row() int { return r.row }

// Read parses the next plan into p, returning io.EOF at end of stream.
func (r *PlanReader) Read(pl *market.Plan) error {
	rec, err := r.cr.Read()
	if err != nil {
		if err == io.EOF {
			return err
		}
		err = wrapReadErr(r.file, err)
		var re *RowError
		if errors.As(err, &re) && re.Row > 0 {
			r.row = re.Row
		}
		return err
	}
	r.row, _ = r.cr.FieldPos(0)
	p := &parser{rec: rec}
	decodePlan(p, pl)
	if p.err != nil {
		return &RowError{File: r.file, Row: r.row, Class: FaultParse, Err: p.err}
	}
	return nil
}
