package dataset

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/nwca/broadband/internal/market"
)

// LoadDir reads a dataset previously written by SaveDir (users.csv,
// switches.csv, plans.csv) and reconstructs the per-market summaries from
// the plan survey. Country metadata (region, GDP per capita) is rejoined
// from the built-in market profiles; plans for countries without a profile
// are kept but contribute no market summary.
func LoadDir(dir string) (*Dataset, error) {
	d := &Dataset{Markets: make(map[string]market.MarketSummary)}

	read := func(name string, fn func(*os.File) error) error {
		fp, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer fp.Close()
		return fn(fp)
	}
	if err := read("users.csv", func(f *os.File) error {
		users, err := ReadUsers(f)
		if err != nil {
			return err
		}
		d.Users = users
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading users: %w", err)
	}
	if err := read("switches.csv", func(f *os.File) error {
		switches, err := ReadSwitches(f)
		if err != nil {
			return err
		}
		d.Switches = switches
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading switches: %w", err)
	}
	if err := read("plans.csv", func(f *os.File) error {
		plans, err := ReadPlans(f)
		if err != nil {
			return err
		}
		d.Plans = plans
		return nil
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading plans: %w", err)
	}

	// Rebuild per-market summaries from the survey rows.
	byCountry := make(map[string]*market.Catalog)
	for _, p := range d.Plans {
		cat := byCountry[p.Country]
		if cat == nil {
			cat = &market.Catalog{}
			if prof, ok := market.FindProfile(p.Country); ok {
				cat.Country = prof.Country
			} else {
				cat.Country = market.Country{Code: p.Country, Name: p.Country}
			}
			byCountry[p.Country] = cat
		}
		cat.Plans = append(cat.Plans, p)
	}
	for code, cat := range byCountry {
		sum, err := market.Summarize(*cat)
		if err != nil {
			continue // markets with no ≥1 Mbps plan carry no summary
		}
		d.Markets[code] = sum
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: loaded data invalid: %w", err)
	}
	return d, nil
}
