package dataset

import (
	"fmt"
	"io"

	"github.com/nwca/broadband/internal/market"
)

// LoadDir reads a dataset previously written by SaveDir (users.csv,
// switches.csv, plans.csv — or their .gz variants written with
// SaveOptions.Gzip; a sharded users-*-of-*.csv panel written out-of-core
// loads the same way) and reconstructs the per-market summaries from the
// plan survey. Tables are consumed through the streaming readers, one
// record at a time, so transient memory stays constant per row. Country
// metadata (region, GDP per capita) is rejoined from the built-in market
// profiles; plans for countries without a profile are kept but contribute
// no market summary.
func LoadDir(dir string) (*Dataset, error) {
	d := &Dataset{Markets: make(map[string]market.MarketSummary)}

	read := func(base string, fn func(io.Reader, string) error) error {
		rc, path, err := openTablePath(dir, base)
		if err != nil {
			return err
		}
		defer rc.Close()
		return fn(rc, path)
	}
	// Users come through UserStream, so a directory written out-of-core
	// (users-*-of-*.csv shards, DESIGN.md §8) loads with the same call as
	// a monolithic one.
	if err := func() error {
		us, err := StreamUsersDir(dir)
		if err != nil {
			return err
		}
		defer us.Close()
		var u User
		for {
			switch err := us.Read(&u); err {
			case nil:
				d.Users = append(d.Users, u)
			case io.EOF:
				return nil
			default:
				return err
			}
		}
	}(); err != nil {
		return nil, fmt.Errorf("dataset: loading users: %w", err)
	}
	if err := read("switches.csv", func(r io.Reader, path string) error {
		sr, err := NewSwitchReaderFile(r, path)
		if err != nil {
			return err
		}
		var s Switch
		for {
			switch err := sr.Read(&s); err {
			case nil:
				d.Switches = append(d.Switches, s)
			case io.EOF:
				return nil
			default:
				return err
			}
		}
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading switches: %w", err)
	}
	if err := read("plans.csv", func(r io.Reader, path string) error {
		pr, err := NewPlanReaderFile(r, path)
		if err != nil {
			return err
		}
		var pl market.Plan
		for {
			switch err := pr.Read(&pl); err {
			case nil:
				d.Plans = append(d.Plans, pl)
			case io.EOF:
				return nil
			default:
				return err
			}
		}
	}); err != nil {
		return nil, fmt.Errorf("dataset: loading plans: %w", err)
	}

	// Rebuild per-market summaries from the survey rows.
	byCountry := make(map[string]*market.Catalog)
	for _, p := range d.Plans {
		cat := byCountry[p.Country]
		if cat == nil {
			cat = &market.Catalog{}
			if prof, ok := market.FindProfile(p.Country); ok {
				cat.Country = prof.Country
			} else {
				cat.Country = market.Country{Code: p.Country, Name: p.Country}
			}
			byCountry[p.Country] = cat
		}
		cat.Plans = append(cat.Plans, p)
	}
	for code, cat := range byCountry {
		sum, err := market.Summarize(*cat)
		if err != nil {
			continue // markets with no ≥1 Mbps plan carry no summary
		}
		d.Markets[code] = sum
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: loaded data invalid: %w", err)
	}
	d.Freeze()
	return d, nil
}
