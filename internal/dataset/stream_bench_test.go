package dataset

import (
	"bytes"
	"encoding/csv"
	"io"
	"testing"
)

// Throughput/allocation benchmarks for the streaming dataset layer. Each
// op processes benchRows rows, so allocs/op ÷ benchRows is the per-row
// allocation count: the streaming writer holds it at zero in steady state
// (one scratch buffer, reused), and the streaming reader at a small
// constant (the csv package's one backing string per record) — versus the
// ReadAll baseline's whole-table materialization.

const benchRows = 2000

var benchUsersOnce []User

func benchUserSet() []User {
	if benchUsersOnce == nil {
		benchUsersOnce = manyUsers(benchRows)
	}
	return benchUsersOnce
}

func BenchmarkWriteUsersStream(b *testing.B) {
	users := benchUserSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uw, err := NewUserWriter(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for j := range users {
			if err := uw.Write(&users[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkWriteUsersParallel(b *testing.B) {
	users := benchUserSet()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteUsersParallel(&buf, users, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadUsersStream(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteUsers(&buf, benchUserSet()); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ur, err := NewUserReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		var u User
		rows := 0
		for {
			err := ur.Read(&u)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			rows++
		}
		if rows != benchRows {
			b.Fatalf("read %d rows", rows)
		}
	}
}

// BenchmarkReadUsersBaselineReadAll is the pre-streaming shape of the
// reader — csv.ReadAll materializing every row as a fresh []string — kept
// as the allocation baseline the iterators are measured against.
func BenchmarkReadUsersBaselineReadAll(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteUsers(&buf, benchUserSet()); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := csv.NewReader(bytes.NewReader(raw)).ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		users := make([]User, 0, len(rows)-1)
		for _, rec := range rows[1:] {
			p := &parser{rec: rec}
			var u User
			decodeUser(p, &u)
			if p.err != nil {
				b.Fatal(p.err)
			}
			users = append(users, u)
		}
		if len(users) != benchRows {
			b.Fatalf("read %d rows", len(users))
		}
	}
}

// BenchmarkReadUsersSlice measures the public slice API (streaming under
// the hood, plus the result slice the caller asked for).
func BenchmarkReadUsersSlice(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteUsers(&buf, benchUserSet()); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		users, err := ReadUsers(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if len(users) != benchRows {
			b.Fatalf("read %d rows", len(users))
		}
	}
}
