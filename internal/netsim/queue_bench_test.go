package netsim

import (
	"testing"

	"github.com/nwca/broadband/internal/randx"
)

// Event-queue benchmarks: the classic hold model (steady-state pop-one/
// push-one at a queue size typical of a saturated TCP simulation), run
// against both the production calendar queue and the retained reference
// heap so the replacement's speedup is measured directly. allocs/op is the
// headline difference: heap.Push boxes every event into an interface,
// costing one allocation per scheduled event; the calendar queue's buckets
// amortize to zero.

const holdQueueSize = 1024

// holdTimes pre-generates the random increments so the benchmark loop
// measures only queue work.
func holdTimes(n int) []float64 {
	rng := randx.New(42)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 0.01
	}
	return out
}

func BenchmarkEventQueueCalendarHold(b *testing.B) {
	incs := holdTimes(4096)
	var q calendarQueue
	var id int64
	now := 0.0
	for i := 0; i < holdQueueSize; i++ {
		id++
		q.enqueue(event{at: incs[i%len(incs)] * 100, id: id})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := q.pop()
		now = e.at
		id++
		q.enqueue(event{at: now + incs[i%len(incs)], id: id})
	}
}

func BenchmarkEventQueueHeapHold(b *testing.B) {
	incs := holdTimes(4096)
	var q eventHeap
	var id int64
	now := 0.0
	for i := 0; i < holdQueueSize; i++ {
		id++
		q.pushEvent(event{at: incs[i%len(incs)] * 100, id: id})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.popEvent()
		now = e.at
		id++
		q.pushEvent(event{at: now + incs[i%len(incs)], id: id})
	}
}

// BenchmarkSimulatorChurn measures the full Simulator API (At + Run) on a
// self-extending schedule shaped like the packet simulator's: each event
// schedules its successor a sub-millisecond step ahead.
func BenchmarkSimulatorChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Simulator
		remaining := 10000
		var step func()
		step = func() {
			if remaining > 0 {
				remaining--
				s.After(0.0012, step)
			}
		}
		for j := 0; j < 64; j++ {
			s.After(float64(j)*0.0001, step)
		}
		s.Run()
		if s.Now() == 0 {
			b.Fatal("simulator did not advance")
		}
	}
}
