package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/nwca/broadband/internal/unit"
)

// FluidFlow is one transfer in the flow-level simulator: a volume to move,
// subject to a per-flow rate cap (application pacing, remote bottleneck, or
// the Mathis TCP bound for the path quality). Flows share the access link by
// max-min fair processor sharing, which is what competing TCP flows
// approximate over timescales of seconds.
type FluidFlow struct {
	ID      int64
	Arrival float64       // virtual arrival time, seconds
	Volume  unit.ByteSize // bytes to transfer
	Cap     unit.Bitrate  // per-flow ceiling; 0 or negative means uncapped

	remaining float64 // bytes outstanding
	done      bool
	finish    float64
}

// Finished reports whether the flow completed within the simulated horizon,
// and at what time.
func (f *FluidFlow) Finished() (bool, float64) { return f.done, f.finish }

// FluidSim runs a set of fluid flows over a single bottleneck of the given
// capacity and records per-interval byte counters — the synthetic equivalent
// of the UPnP/netstat counters the Dasu client sampled every ~30 seconds.
type FluidSim struct {
	Capacity unit.Bitrate
	Interval float64 // counter sampling interval, seconds (default 30)
}

// FluidResult reports a fluid simulation run.
type FluidResult struct {
	// Counters[i] is the byte volume transferred in interval i, i.e. in
	// virtual time [i·Interval, (i+1)·Interval).
	Counters []unit.ByteSize
	// TotalBytes is the volume moved across the whole horizon.
	TotalBytes unit.ByteSize
	// Completed is the number of flows that finished within the horizon.
	Completed int
}

// Rates converts the interval byte counters to average interval rates.
func (r FluidResult) Rates(interval float64) []float64 {
	out := make([]float64, len(r.Counters))
	for i, c := range r.Counters {
		out[i] = float64(c.RateOver(interval))
	}
	return out
}

// Run simulates the flows until the given horizon (seconds). Flows still in
// progress at the horizon simply stop accumulating. The algorithm is
// event-driven: between consecutive events (arrival, completion, or counter
// boundary) the max-min fair allocation is constant, so each flow's
// remaining volume decreases linearly and the earliest completion is exact.
func (s FluidSim) Run(flows []*FluidFlow, horizon float64) (FluidResult, error) {
	if s.Capacity <= 0 {
		return FluidResult{}, fmt.Errorf("netsim: fluid capacity must be positive, got %v", s.Capacity)
	}
	if horizon <= 0 {
		return FluidResult{}, fmt.Errorf("netsim: fluid horizon must be positive, got %v", horizon)
	}
	interval := s.Interval
	if interval <= 0 {
		interval = 30
	}
	nIntervals := int(math.Ceil(horizon / interval))
	res := FluidResult{Counters: make([]unit.ByteSize, nIntervals)}

	// Sort flows by arrival; initialize remaining volumes.
	pending := make([]*FluidFlow, len(flows))
	copy(pending, flows)
	sort.Slice(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })
	for _, f := range pending {
		f.remaining = float64(f.Volume)
		f.done = false
	}

	active := make([]*FluidFlow, 0, 16)
	now := 0.0
	next := 0    // next pending arrival index
	carry := 0.0 // sub-byte remainder so counter truncation never accumulates

	// Allocation scratch reused by every maxMinFair step: the allocator
	// was the dominant cost of long fluid horizons (one rates + one unsat
	// slice per event step, hundreds of steps per simulated day).
	var scratch fairScratch

	for now < horizon {
		// Admit arrivals at the current time.
		for next < len(pending) && pending[next].Arrival <= now {
			if pending[next].remaining > 0 {
				active = append(active, pending[next])
			} else {
				pending[next].done = true
				pending[next].finish = now
				res.Completed++
			}
			next++
		}

		// Horizon of this step: next arrival, next counter boundary, horizon.
		stepEnd := horizon
		if next < len(pending) && pending[next].Arrival < stepEnd {
			stepEnd = pending[next].Arrival
		}
		boundary := (math.Floor(now/interval) + 1) * interval
		if boundary < stepEnd {
			stepEnd = boundary
		}

		if len(active) == 0 {
			now = stepEnd
			continue
		}

		rates := scratch.maxMinFair(s.Capacity.BitsPerSecond(), active)

		// Earliest completion under these rates.
		for i, f := range active {
			if rates[i] <= 0 {
				continue
			}
			t := now + f.remaining*8/rates[i]
			if t < stepEnd {
				stepEnd = t
			}
		}

		dt := stepEnd - now
		if dt <= 0 {
			// Numerical corner: force minimal progress to the boundary.
			dt = math.Nextafter(now, math.Inf(1)) - now
			stepEnd = now + dt
		}

		// Accumulate transfer into interval counters, splitting across a
		// boundary never happens because stepEnd ≤ next boundary.
		idx := int(now / interval)
		if idx >= nIntervals {
			idx = nIntervals - 1
		}
		moved := 0.0
		for i, f := range active {
			b := rates[i] * dt / 8
			if b > f.remaining {
				b = f.remaining
			}
			f.remaining -= b
			moved += b
		}
		moved += carry
		whole := math.Floor(moved)
		carry = moved - whole
		res.Counters[idx] += unit.ByteSize(whole)

		// Retire completed flows.
		live := active[:0]
		for _, f := range active {
			if f.remaining <= 1e-6 {
				f.remaining = 0
				f.done = true
				f.finish = stepEnd
				res.Completed++
			} else {
				live = append(live, f)
			}
		}
		active = live
		now = stepEnd
	}

	for _, c := range res.Counters {
		res.TotalBytes += c
	}
	return res, nil
}

// fairScratch carries the reusable buffers of the max-min fair allocator
// so a long simulation run allocates them once, not once per event step.
// The returned rates slice is valid until the next call.
type fairScratch struct {
	rates []float64
	unsat []int
}

// maxMinFair computes the max-min fair allocation (bits/s) of capacity among
// active flows honoring per-flow caps: water-filling where capped flows
// saturate first and the residual is split among the rest.
func (sc *fairScratch) maxMinFair(capacity float64, active []*FluidFlow) []float64 {
	n := len(active)
	rates := sc.rates[:0]
	for i := 0; i < n; i++ {
		rates = append(rates, 0)
	}
	sc.rates = rates
	if n == 0 {
		return rates
	}
	remainingCap := capacity
	unsat := sc.unsat[:0]
	for i := range active {
		unsat = append(unsat, i)
	}
	sc.unsat = unsat
	for len(unsat) > 0 && remainingCap > 1e-12 {
		share := remainingCap / float64(len(unsat))
		progressed := false
		stillUnsat := unsat[:0]
		for _, i := range unsat {
			cap := float64(active[i].Cap)
			if cap > 0 && cap-rates[i] <= share {
				// This flow saturates at its cap.
				remainingCap -= cap - rates[i]
				rates[i] = cap
				progressed = true
			} else {
				stillUnsat = append(stillUnsat, i)
			}
		}
		unsat = stillUnsat
		if !progressed {
			// No caps bind: split the residual evenly and finish.
			share = remainingCap / float64(len(unsat))
			for _, i := range unsat {
				rates[i] += share
			}
			remainingCap = 0
			break
		}
	}
	return rates
}
