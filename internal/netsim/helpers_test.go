package netsim

import "math/rand/v2"

// newRand returns a deterministic plain generator for property tests.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0x5eed))
}
