package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nwca/broadband/internal/unit"
)

func TestFluidSingleFlow(t *testing.T) {
	// One uncapped 15 MB flow on a 4 Mbps link: completes in 30 s.
	sim := FluidSim{Capacity: unit.MbpsOf(4), Interval: 10}
	f := &FluidFlow{Arrival: 0, Volume: 15 * unit.MB}
	res, err := sim.Run([]*FluidFlow{f}, 100)
	if err != nil {
		t.Fatal(err)
	}
	done, at := f.Finished()
	if !done {
		t.Fatal("flow did not finish")
	}
	if math.Abs(at-30) > 1e-6 {
		t.Errorf("finish at %v, want 30", at)
	}
	if res.Completed != 1 {
		t.Errorf("Completed = %d", res.Completed)
	}
	if res.TotalBytes != 15*unit.MB {
		t.Errorf("TotalBytes = %v", res.TotalBytes)
	}
	// First three 10-second counters carry 5 MB each; the rest are empty.
	for i := 0; i < 3; i++ {
		if math.Abs(res.Counters[i].MB()-5) > 1e-6 {
			t.Errorf("counter[%d] = %v, want 5 MB", i, res.Counters[i])
		}
	}
	for i := 3; i < len(res.Counters); i++ {
		if res.Counters[i] != 0 {
			t.Errorf("counter[%d] = %v, want 0", i, res.Counters[i])
		}
	}
}

func TestFluidFairSharing(t *testing.T) {
	// Two equal uncapped flows arriving together split the link; each
	// transfers half as fast as alone.
	sim := FluidSim{Capacity: unit.MbpsOf(8), Interval: 30}
	a := &FluidFlow{ID: 1, Volume: 30 * unit.MB}
	b := &FluidFlow{ID: 2, Volume: 30 * unit.MB}
	if _, err := sim.Run([]*FluidFlow{a, b}, 200); err != nil {
		t.Fatal(err)
	}
	_, atA := a.Finished()
	_, atB := b.Finished()
	// Each gets 4 Mbps: 30 MB → 60 s.
	if math.Abs(atA-60) > 1e-6 || math.Abs(atB-60) > 1e-6 {
		t.Errorf("finish times %v, %v, want 60", atA, atB)
	}
}

func TestFluidCapRespected(t *testing.T) {
	// A capped flow cannot exceed its ceiling even on an idle fat link, and
	// the spare capacity goes to the uncapped flow.
	sim := FluidSim{Capacity: unit.MbpsOf(10), Interval: 30}
	capped := &FluidFlow{ID: 1, Volume: 7500 * unit.KB, Cap: unit.MbpsOf(2)} // 7.5 MB at 2 Mbps = 30 s
	greedy := &FluidFlow{ID: 2, Volume: 30 * unit.MB}                        // gets 8 Mbps → 30 s
	if _, err := sim.Run([]*FluidFlow{capped, greedy}, 200); err != nil {
		t.Fatal(err)
	}
	_, atC := capped.Finished()
	_, atG := greedy.Finished()
	if math.Abs(atC-30) > 1e-6 {
		t.Errorf("capped finish %v, want 30 (rate pinned at cap)", atC)
	}
	if math.Abs(atG-30) > 1e-6 {
		t.Errorf("greedy finish %v, want 30 (8 Mbps residual)", atG)
	}
}

func TestFluidStaggeredArrivals(t *testing.T) {
	// Flow B arrives halfway through A. A: 10 Mbps alone for 10 s (12.5 MB
	// moved), then 5 Mbps shared. A has 12.5 MB left → 20 more s (t=30).
	// B needs 25 MB: shares 5 Mbps until A leaves (12.5 MB in 20 s), then
	// 10 Mbps alone for remaining 12.5 MB → 10 s, t=40.
	sim := FluidSim{Capacity: unit.MbpsOf(10), Interval: 30}
	a := &FluidFlow{ID: 1, Arrival: 0, Volume: 25 * unit.MB}
	b := &FluidFlow{ID: 2, Arrival: 10, Volume: 25 * unit.MB}
	if _, err := sim.Run([]*FluidFlow{a, b}, 300); err != nil {
		t.Fatal(err)
	}
	_, atA := a.Finished()
	_, atB := b.Finished()
	if math.Abs(atA-30) > 1e-6 {
		t.Errorf("A finished at %v, want 30", atA)
	}
	if math.Abs(atB-40) > 1e-6 {
		t.Errorf("B finished at %v, want 40", atB)
	}
}

func TestFluidHorizonTruncation(t *testing.T) {
	sim := FluidSim{Capacity: unit.MbpsOf(1), Interval: 30}
	f := &FluidFlow{Volume: unit.GB} // 8000 s of work
	res, err := sim.Run([]*FluidFlow{f}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := f.Finished(); done {
		t.Error("flow cannot have finished inside the horizon")
	}
	if res.Completed != 0 {
		t.Errorf("Completed = %d", res.Completed)
	}
	// 60 s at 1 Mbps = 7.5 MB.
	if math.Abs(res.TotalBytes.MB()-7.5) > 1e-6 {
		t.Errorf("TotalBytes = %v, want 7.5 MB", res.TotalBytes)
	}
}

func TestFluidZeroVolumeAndErrors(t *testing.T) {
	sim := FluidSim{Capacity: unit.MbpsOf(1)}
	res, err := sim.Run([]*FluidFlow{{Volume: 0}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Errorf("zero-volume flow should complete instantly, got %d", res.Completed)
	}
	if _, err := (FluidSim{}).Run(nil, 10); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := (FluidSim{Capacity: unit.Mbps}).Run(nil, 0); err == nil {
		t.Error("zero horizon should error")
	}
}

func TestFluidConservationProperty(t *testing.T) {
	// Work conservation: with enough offered load the link moves exactly
	// capacity × horizon bytes; with light load it moves exactly the sum of
	// volumes. Total counters always equal bytes drained from flows.
	f := func(seed int64) bool {
		rng := newRand(seed)
		capacity := unit.MbpsOf(1 + 9*rng.Float64())
		horizon := 120.0
		var flows []*FluidFlow
		var offered float64
		n := 1 + rng.IntN(20)
		for i := 0; i < n; i++ {
			fl := &FluidFlow{
				ID:      int64(i),
				Arrival: rng.Float64() * horizon / 2,
				Volume:  unit.ByteSize(1e4 + rng.Float64()*3e6),
			}
			if rng.IntN(2) == 0 {
				fl.Cap = unit.MbpsOf(0.2 + 2*rng.Float64())
			}
			offered += float64(fl.Volume)
			flows = append(flows, fl)
		}
		res, err := FluidSim{Capacity: capacity, Interval: 30}.Run(flows, horizon)
		if err != nil {
			return false
		}
		// Conservation: moved bytes = offered − remaining.
		var remaining float64
		for _, fl := range flows {
			remaining += fl.remaining
		}
		if math.Abs(float64(res.TotalBytes)-(offered-remaining)) > 1+1e-6*offered {
			return false
		}
		// Never exceeds capacity × horizon.
		return float64(res.TotalBytes) <= capacity.BitsPerSecond()*horizon/8*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFluidRatesHelper(t *testing.T) {
	res := FluidResult{Counters: []unit.ByteSize{unit.ByteSize(375e3), 0}}
	rates := res.Rates(30)
	if math.Abs(rates[0]-1e5) > 1e-6 { // 375 kB in 30 s = 100 kbps
		t.Errorf("rate = %v, want 1e5", rates[0])
	}
	if rates[1] != 0 {
		t.Errorf("idle rate = %v", rates[1])
	}
}
