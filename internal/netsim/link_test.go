package netsim

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

func mustLink(t *testing.T, sim *Simulator, cfg LinkConfig, rng *randx.Source) *Link {
	t.Helper()
	l, err := NewLink(sim, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLinkValidation(t *testing.T) {
	var sim Simulator
	if _, err := NewLink(nil, LinkConfig{Rate: unit.Mbps}, nil); err == nil {
		t.Error("nil simulator should error")
	}
	if _, err := NewLink(&sim, LinkConfig{Rate: 0}, nil); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewLink(&sim, LinkConfig{Rate: unit.Mbps, Delay: -1}, nil); err == nil {
		t.Error("negative delay should error")
	}
	if _, err := NewLink(&sim, LinkConfig{Rate: unit.Mbps, Loss: LossModel{Rate: 2}}, nil); err == nil {
		t.Error("invalid loss should error")
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	// 1 Mbps link, 10 ms delay, one 1210-byte packet (1250 B wire with the
	// 40 B header): serialization = 1250*8/1e6 = 10 ms; arrival at 20 ms.
	var sim Simulator
	l := mustLink(t, &sim, LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.010}, nil)
	var arrived float64 = -1
	l.SetReceiver(func(p *Packet) { arrived = sim.Now() })
	l.Send(&Packet{Size: 1210})
	sim.Run()
	if math.Abs(arrived-0.020) > 1e-9 {
		t.Errorf("arrival at %v, want 0.020", arrived)
	}
}

func TestLinkSerializationQueueing(t *testing.T) {
	// Two equal packets back-to-back: second arrives one serialization time
	// after the first.
	var sim Simulator
	l := mustLink(t, &sim, LinkConfig{Rate: unit.MbpsOf(1), Delay: 0}, nil)
	var times []float64
	l.SetReceiver(func(p *Packet) { times = append(times, sim.Now()) })
	l.Send(&Packet{Size: 1210})
	l.Send(&Packet{Size: 1210})
	sim.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets", len(times))
	}
	if math.Abs(times[1]-times[0]-0.010) > 1e-9 {
		t.Errorf("spacing = %v, want 0.010", times[1]-times[0])
	}
}

func TestLinkDropTail(t *testing.T) {
	var sim Simulator
	l := mustLink(t, &sim, LinkConfig{
		Rate:  unit.MbpsOf(1),
		Queue: 3000 * unit.Byte, // admits two 1460 B packets, not three
	}, nil)
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1460})
	}
	sim.Run()
	st := l.Stats()
	if delivered != 2 || st.Delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	if st.DroppedQueue != 1 {
		t.Errorf("queue drops = %d, want 1", st.DroppedQueue)
	}
	if st.Sent != 3 {
		t.Errorf("sent = %d, want 3", st.Sent)
	}
	if got := st.LossRate(); math.Abs(float64(got)-1.0/3) > 1e-12 {
		t.Errorf("LossRate = %v, want 1/3", got)
	}
}

func TestLinkRandomLossConverges(t *testing.T) {
	var sim Simulator
	rng := randx.New(11).Split("loss")
	l := mustLink(t, &sim, LinkConfig{
		Rate:  unit.MbpsOf(1000),
		Queue: unit.GB,
		Loss:  LossModel{Rate: 0.05},
	}, rng)
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	n := 20000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 100})
	}
	sim.Run()
	frac := 1 - float64(delivered)/float64(n)
	if math.Abs(frac-0.05) > 0.01 {
		t.Errorf("observed loss %v, want ~0.05", frac)
	}
	if l.Stats().DroppedQueue != 0 {
		t.Errorf("unexpected queue drops: %d", l.Stats().DroppedQueue)
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	model := LossModel{
		Burst:      true,
		PGoodToBad: 0.01,
		PBadToGood: 0.19,
		BadLoss:    0.5,
	}
	// Stationary bad fraction = 0.01/0.20 = 0.05 → loss = 0.05*0.5 = 0.025.
	want := 0.025
	if got := model.StationaryLoss(); math.Abs(float64(got)-want) > 1e-12 {
		t.Fatalf("StationaryLoss = %v, want %v", got, want)
	}

	var sim Simulator
	rng := randx.New(12).Split("ge")
	l := mustLink(t, &sim, LinkConfig{
		Rate:  unit.MbpsOf(1000),
		Queue: unit.GB,
		Loss:  model,
	}, rng)
	delivered := 0
	l.SetReceiver(func(p *Packet) { delivered++ })
	n := 100000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 100})
	}
	sim.Run()
	frac := 1 - float64(delivered)/float64(n)
	if math.Abs(frac-want) > 0.005 {
		t.Errorf("observed burst loss %v, want ~%v", frac, want)
	}
}

func TestStationaryLossClamps(t *testing.T) {
	m := LossModel{Rate: 0.9, Burst: true, PGoodToBad: 1, PBadToGood: 0.0001, BadLoss: 1}
	if got := m.StationaryLoss(); got > 1 {
		t.Errorf("StationaryLoss = %v, must clamp to 1", got)
	}
	plain := LossModel{Rate: 0.02}
	if got := plain.StationaryLoss(); got != 0.02 {
		t.Errorf("plain StationaryLoss = %v", got)
	}
}

func TestDefaultQueue(t *testing.T) {
	if got := DefaultQueue(unit.KbpsOf(100)); got != 16*unit.KB {
		t.Errorf("slow link queue = %v, want 16 kB floor", got)
	}
	if got := DefaultQueue(unit.MbpsOf(10)); got != 125*unit.KB {
		t.Errorf("10 Mbps queue = %v, want 125 kB (1 BDP at 100 ms)", got)
	}
	if got := DefaultQueue(unit.Gbps * 10); got != 4*unit.MB {
		t.Errorf("fast link queue = %v, want 4 MB ceiling", got)
	}
}

func TestQueueDelayReflectsBacklog(t *testing.T) {
	var sim Simulator
	l := mustLink(t, &sim, LinkConfig{Rate: unit.MbpsOf(1), Queue: unit.MB}, nil)
	l.SetReceiver(func(p *Packet) {})
	sim.At(0, func() {
		l.Send(&Packet{Size: 1210}) // 10 ms serialization each
		l.Send(&Packet{Size: 1210})
		if d := l.QueueDelay(); math.Abs(d-0.020) > 1e-9 {
			t.Errorf("QueueDelay = %v, want 0.020", d)
		}
	})
	sim.Run()
	if d := l.QueueDelay(); d != 0 {
		t.Errorf("idle QueueDelay = %v, want 0", d)
	}
}

func TestFlowEndpoint(t *testing.T) {
	f := Flow{Src: Endpoint{Host: "a", Port: 1}, Dst: Endpoint{Host: "b", Port: 2}}
	if f.String() != "a:1->b:2" {
		t.Errorf("Flow.String() = %q", f.String())
	}
	r := f.Reverse()
	if r.Src.Host != "b" || r.Dst.Host != "a" {
		t.Errorf("Reverse = %v", r)
	}
	// Flows must be usable as map keys (gopacket-style).
	m := map[Flow]int{f: 1, r: 2}
	if m[f] != 1 || m[r] != 2 {
		t.Error("Flow map keying broken")
	}
}
