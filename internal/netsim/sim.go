// Package netsim simulates residential broadband access networks at two
// granularities:
//
//   - a packet-level discrete-event simulator (access link with a drop-tail
//     queue, random and bursty loss, propagation delay) driving a simplified
//     TCP Reno sender — used to produce NDT-style measurements of capacity,
//     latency and packet loss exactly the way the paper's Dasu clients
//     measured real lines; and
//   - a flow-level fluid simulator (processor sharing with per-flow rate
//     caps) — used for the multi-week usage horizons behind the byte-counter
//     datasets, where packet-level simulation would be computationally
//     absurd (23 months × 53k users).
//
// Both operate in virtual time; nothing in this package reads the wall
// clock, so every simulation is deterministic given its random source.
package netsim

import (
	"container/heap"
	"math"
)

// Simulator is a discrete-event scheduler with a virtual clock. The zero
// value is ready to use; time starts at 0 and is measured in seconds.
// Events are kept in a calendar queue (see calqueue.go) with O(1)
// amortized schedule and pop.
type Simulator struct {
	now    float64
	queue  calendarQueue
	nextID int64
	halted bool
}

type event struct {
	at  float64
	id  int64 // tie-breaker preserving scheduling order at equal times
	run func()
}

// eventHeap is the original container/heap event queue, retained as the
// reference implementation: the differential tests in calqueue_test.go
// prove the calendar queue pops events in exactly this order on randomized
// schedules, and the queue benchmarks measure the replacement against it.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	// Zero the vacated slot: without this the backing array pins every
	// popped event's run closure (and everything it captures) for the life
	// of the simulation.
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (or at NaN) runs the event at the current time (FIFO among same-time
// events).
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) {
		t = s.now
	}
	s.nextID++
	s.queue.enqueue(event{at: t, id: s.nextID, run: fn})
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Halt stops the run loop after the currently executing event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events until the queue drains or Halt is called. It returns
// the final virtual time.
func (s *Simulator) Run() float64 {
	s.halted = false
	for !s.halted {
		e, ok := s.queue.pop()
		if !ok {
			break
		}
		s.now = e.at
		e.run()
	}
	return s.now
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// exactly t. Events scheduled beyond t remain queued.
func (s *Simulator) RunUntil(t float64) float64 {
	s.halted = false
	for !s.halted {
		e, ok := s.queue.popAtMost(t)
		if !ok {
			break
		}
		s.now = e.at
		e.run()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
	return s.now
}

// Pending returns the number of queued events (for tests and diagnostics).
func (s *Simulator) Pending() int { return s.queue.len() }
