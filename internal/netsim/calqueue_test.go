package netsim

import (
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/nwca/broadband/internal/randx"
)

// refSimulator is the pre-calendar-queue Simulator: the same scheduling
// semantics over the container/heap reference queue. The differential
// tests drive it and the production Simulator through identical randomized
// schedules and require identical event execution order.
type refSimulator struct {
	now    float64
	queue  eventHeap
	nextID int64
	halted bool
}

func (s *refSimulator) Now() float64 { return s.now }

func (s *refSimulator) At(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) {
		t = s.now
	}
	s.nextID++
	s.queue.pushEvent(event{at: t, id: s.nextID, run: fn})
}

func (s *refSimulator) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

func (s *refSimulator) Halt() { s.halted = true }

func (s *refSimulator) Run() float64 {
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		e := s.queue.popEvent()
		s.now = e.at
		e.run()
	}
	return s.now
}

func (s *refSimulator) RunUntil(t float64) float64 {
	s.halted = false
	for len(s.queue) > 0 && !s.halted && s.queue.peek().at <= t {
		e := s.queue.popEvent()
		s.now = e.at
		e.run()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
	return s.now
}

func (s *refSimulator) Pending() int { return len(s.queue) }

// scheduler is the API surface both implementations share.
type scheduler interface {
	Now() float64
	At(float64, func())
	After(float64, func())
	Halt()
	Run() float64
	RunUntil(float64) float64
	Pending() int
}

// execRecord is one executed event: its token and the clock when it ran.
type execRecord struct {
	token int
	now   float64
}

// driveRandomSchedule runs a randomized self-extending schedule against a
// scheduler and returns the execution log. Everything is derived from the
// seed, so the same seed produces the same requested schedule on any
// implementation; only the queue decides the order. The schedule mixes the
// adversarial cases: duplicate timestamps (coarse grid), past scheduling,
// zero/negative delays, events spawning events, far-future events beyond
// the horizon, and a mid-run Halt.
func driveRandomSchedule(s scheduler, seed uint64, halt bool) []execRecord {
	rng := randx.New(seed)
	var log []execRecord
	token := 0

	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		tk := token
		token++
		return func() {
			log = append(log, execRecord{token: tk, now: s.Now()})
			if depth >= 3 {
				return
			}
			// Each executed event schedules 0–2 more.
			for k := rng.IntN(3); k > 0; k-- {
				switch rng.IntN(5) {
				case 0:
					// Tie bait: coarse grid makes equal timestamps common.
					s.At(s.Now()+float64(rng.IntN(5))*0.25, spawn(depth+1))
				case 1:
					// Past scheduling clamps to now.
					s.At(s.Now()-1-10*rng.Float64(), spawn(depth+1))
				case 2:
					s.After(-rng.Float64(), spawn(depth+1)) // negative delay
				case 3:
					s.After(rng.Float64()*50, spawn(depth+1))
				default:
					s.After(rng.Float64()*0.01, spawn(depth+1))
				}
			}
			if halt && tk == 40 {
				s.Halt()
			}
		}
	}

	// Initial fan-out across very different time scales.
	for i := 0; i < 60; i++ {
		switch rng.IntN(4) {
		case 0:
			s.At(float64(rng.IntN(8))*0.5, spawn(0)) // grid ties
		case 1:
			s.At(rng.Float64()*1e-3, spawn(0)) // sub-millisecond cluster
		case 2:
			s.At(rng.Float64()*1e4, spawn(0)) // sparse far future
		default:
			s.At(rng.Float64()*10, spawn(0))
		}
	}

	// Run in segments to exercise RunUntil's conditional pop, then drain.
	s.RunUntil(0.5)
	s.RunUntil(7.5)
	s.Run()
	return log
}

// TestCalendarQueueMatchesHeapOrder is the differential gate: on many
// randomized schedules, the calendar-queue Simulator must execute exactly
// the event sequence the reference heap executes — same tokens, same
// clock readings, same final state.
func TestCalendarQueueMatchesHeapOrder(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 40; seed++ {
		halt := seed%4 == 0 // every fourth schedule halts mid-run
		var cal Simulator
		var ref refSimulator
		gotLog := driveRandomSchedule(&cal, seed, halt)
		wantLog := driveRandomSchedule(&ref, seed, halt)
		if len(gotLog) != len(wantLog) {
			t.Fatalf("seed %d: calendar ran %d events, heap ran %d", seed, len(gotLog), len(wantLog))
		}
		for i := range wantLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("seed %d: divergence at event %d: calendar %+v, heap %+v",
					seed, i, gotLog[i], wantLog[i])
			}
		}
		if cal.Now() != ref.Now() {
			t.Fatalf("seed %d: final clocks differ: calendar %v, heap %v", seed, cal.Now(), ref.Now())
		}
		if cal.Pending() != ref.Pending() {
			t.Fatalf("seed %d: pending differ: calendar %d, heap %d", seed, cal.Pending(), ref.Pending())
		}
	}
}

// TestCalendarQueueInfinityOrdering pins the overflow path: +Inf events
// run last, in scheduling order, on both implementations.
func TestCalendarQueueInfinityOrdering(t *testing.T) {
	t.Parallel()
	run := func(s scheduler) []int {
		var order []int
		s.At(math.Inf(1), func() { order = append(order, 100) })
		s.At(2, func() { order = append(order, 2) })
		s.At(math.Inf(1), func() { order = append(order, 101) })
		s.At(1, func() { order = append(order, 1) })
		s.Run()
		return order
	}
	var cal Simulator
	var ref refSimulator
	got, want := run(&cal), run(&ref)
	if len(got) != 4 || len(want) != 4 {
		t.Fatalf("lengths: calendar %v, heap %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverges: calendar %v, heap %v", got, want)
		}
	}
	if got[2] != 100 || got[3] != 101 {
		t.Fatalf("+Inf events not last in scheduling order: %v", got)
	}
}

// TestRunUntilLeavesFutureEventsQueued pins popAtMost's miss path: a
// RunUntil that stops short must leave the queue able to deliver the
// remaining events in order, including events scheduled after the partial
// run at times before already-queued ones (enqueue rewinds the cursor for
// earlier arrivals; the miss leaves it at the unpopped minimum's epoch).
func TestRunUntilLeavesFutureEventsQueued(t *testing.T) {
	t.Parallel()
	var s Simulator
	var order []int
	s.At(10, func() { order = append(order, 10) })
	s.At(20, func() { order = append(order, 20) })
	s.RunUntil(5) // pops nothing; cursor must rewind
	if len(order) != 0 || s.Pending() != 2 {
		t.Fatalf("RunUntil(5) ran %v, pending %d", order, s.Pending())
	}
	// Earlier than both queued events: must still run first.
	s.At(7, func() { order = append(order, 7) })
	s.Run()
	if len(order) != 3 || order[0] != 7 || order[1] != 10 || order[2] != 20 {
		t.Fatalf("order = %v, want [7 10 20]", order)
	}
}

// bigCapture is a finalizer-observable allocation captured by scheduled
// closures in the retention tests.
type bigCapture struct {
	buf [1 << 20]byte
}

// TestPoppedEventClosuresAreCollectable is the retention regression test:
// closures capturing large buffers must become collectable once their
// event has run, even while the Simulator (and its queue backing arrays)
// stays alive. Before the Pop fix, the heap's backing array pinned every
// popped closure for the life of the simulation.
func TestPoppedEventClosuresAreCollectable(t *testing.T) {
	const n = 24
	freed := make(chan struct{}, n)

	var sim Simulator
	for i := 0; i < n; i++ {
		big := new(bigCapture)
		runtime.SetFinalizer(big, func(*bigCapture) { freed <- struct{}{} })
		sim.After(float64(i)*0.001, func() { big.buf[0] = 1 })
	}
	sim.Run()
	// Keep the simulator reachable: only the popped events may be freed.
	if collected := awaitFinalizers(freed, n); collected != n {
		t.Errorf("only %d/%d popped closures were collected; queue retains popped events", collected, n)
	}
	if sim.Pending() != 0 {
		t.Fatalf("queue not drained: %d", sim.Pending())
	}
}

// TestReferenceHeapPopZeroesSlot is the same retention discipline checked
// directly on the reference heap implementation.
func TestReferenceHeapPopZeroesSlot(t *testing.T) {
	const n = 8
	freed := make(chan struct{}, n)

	var h eventHeap
	for i := 0; i < n; i++ {
		big := new(bigCapture)
		runtime.SetFinalizer(big, func(*bigCapture) { freed <- struct{}{} })
		h.pushEvent(event{at: float64(i), id: int64(i), run: func() { big.buf[0] = 1 }})
	}
	for i := 0; i < n; i++ {
		h.popEvent().run()
	}
	// h (and its backing array) stays reachable; the popped closures must not.
	if collected := awaitFinalizers(freed, n); collected != n {
		t.Errorf("only %d/%d popped closures were collected; heap Pop retains the slot", collected, n)
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d", h.Len())
	}
}

// awaitFinalizers forces garbage collection until count finalizers have
// run or a timeout expires, returning how many ran.
func awaitFinalizers(freed chan struct{}, count int) int {
	collected := 0
	deadline := time.Now().Add(5 * time.Second)
	for collected < count && time.Now().Before(deadline) {
		runtime.GC()
		// Finalizers run on a background goroutine after GC; drain what
		// has arrived, then give the runtime a beat.
		for {
			select {
			case <-freed:
				collected++
				continue
			case <-time.After(10 * time.Millisecond):
			}
			break
		}
	}
	return collected
}
