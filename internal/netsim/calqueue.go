package netsim

import "math"

// calendarQueue is the Simulator's event queue: a calendar queue (Brown,
// CACM 1988) — a ring of time buckets of fixed width, each holding its
// events in sorted order, with a cursor that sweeps the ring in virtual-
// bucket order. Schedule and pop are O(1) amortized when the bucket width
// tracks the mean event spacing (the queue retunes width whenever it
// resizes), versus O(log n) compares plus one interface-boxing allocation
// per event for the container/heap queue it replaces.
//
// Two slow paths keep it correct on any workload:
//
//   - Sparse schedules (next event many epochs ahead) bound the cursor scan
//     at one full rotation, then fall back to a direct minimum search over
//     all buckets — O(nBuckets), amortized away by the shrink rule.
//   - Far-future events (at ≥ farTime, including +Inf) bypass the ring
//     entirely and live in a small sorted overflow list; every ring event
//     precedes every overflow event by construction, so the overflow is
//     only consulted when the ring is empty.
//
// Ordering is identical to the reference heap: strictly by (at, id), so
// same-time events run in scheduling order. The differential tests in
// calqueue_test.go pin this equivalence on randomized schedules.
//
// Vacated slots are always zeroed before a slice is truncated or a head
// index advances, so a popped event's closure (and everything it captures)
// becomes collectable immediately — the retention discipline the reference
// heap's Pop also follows.
type calendarQueue struct {
	buckets  []bucket
	mask     uint64  // len(buckets)-1; bucket count is a power of two
	width    float64 // bucket width in virtual seconds
	invWidth float64
	cvb      uint64  // cursor: current virtual bucket (epoch) being swept
	size     int     // events in the ring (excludes far)
	far      []event // overflow: at ≥ farTime, sorted descending (min last)

	// Retune triggers: a calendar queue degrades when the live event
	// spacing drifts away from the width it was last tuned for — crowded
	// buckets turn inserts into memmoves (width too coarse), empty
	// rotations turn pops into direct searches (width too fine). Both
	// symptoms are counted and trip an O(size) width retune, rate-limited
	// by cooldown so the span scan stays amortized O(1).
	cooldown int // enqueues until the next crowding check may retune
	sparse   int // sparse-fallback pops since the last rebuild
}

const (
	// minBuckets is the initial and smallest ring size.
	minBuckets = 64
	// initialWidth is the pre-tuning bucket width; resizes retune it to
	// the observed event spacing.
	initialWidth = 1e-3
	// farTime is the absolute horizon beyond which events are kept in the
	// sorted overflow list instead of the ring. It is width-independent so
	// the ring/overflow ordering invariant survives retuning.
	farTime = 1e30
	// maxVB caps the virtual bucket number so that float→uint conversion
	// stays exact and in range for any finite time below farTime.
	maxVB = uint64(1) << 53
)

// bucket holds one ring slot's events sorted ascending by (at, id), with a
// consumed prefix tracked by head so pops never shift memory.
type bucket struct {
	ev   []event
	head int
}

func (b *bucket) len() int { return len(b.ev) - b.head }

// insert places e in sorted position. The common case — e at or after the
// bucket's current maximum, because virtual time only moves forward — is a
// plain append.
func (b *bucket) insert(e event) {
	n := len(b.ev)
	if n == b.head || !eventBefore(e, b.ev[n-1]) {
		b.ev = append(b.ev, e)
		return
	}
	// Binary search in ev[head:] for the first element after e.
	lo, hi := b.head, n
	for lo < hi {
		mid := (lo + hi) / 2
		if eventBefore(e, b.ev[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b.ev = append(b.ev, event{})
	copy(b.ev[lo+1:], b.ev[lo:])
	b.ev[lo] = e
}

// popMin removes and returns the bucket's earliest event, zeroing the
// vacated slot.
func (b *bucket) popMin() event {
	e := b.ev[b.head]
	b.ev[b.head] = event{}
	b.head++
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
	}
	return e
}

// eventBefore is the queue's total order: by time, then by scheduling id.
func eventBefore(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

func (q *calendarQueue) len() int { return q.size + len(q.far) }

func (q *calendarQueue) vbOf(at float64) uint64 {
	v := at * q.invWidth
	if v >= float64(maxVB) {
		return maxVB
	}
	if v < 0 {
		return 0
	}
	return uint64(v)
}

func (q *calendarQueue) init(n int, width float64) {
	q.buckets = make([]bucket, n)
	q.mask = uint64(n - 1)
	q.width = width
	q.invWidth = 1 / width
}

// enqueue inserts an event. Events at or beyond farTime (including +Inf)
// go to the overflow list; everything else lands in its ring bucket.
func (q *calendarQueue) enqueue(e event) {
	if q.buckets == nil {
		q.init(minBuckets, initialWidth)
	}
	if e.at >= farTime {
		q.farInsert(e)
		return
	}
	vb := q.vbOf(e.at)
	if vb < q.cvb {
		q.cvb = vb
	}
	b := &q.buckets[vb&q.mask]
	b.insert(e)
	q.size++
	switch {
	case q.size > 2*len(q.buckets):
		q.resize(2 * len(q.buckets))
	case q.cooldown > 0:
		q.cooldown--
	case b.len() > maxOccupancy:
		// Crowding: the width is too coarse for the live distribution.
		q.retune()
	}
}

// farInsert places e in the overflow list, which is sorted descending so
// the minimum pops off the end.
func (q *calendarQueue) farInsert(e event) {
	lo, hi := 0, len(q.far)
	for lo < hi {
		mid := (lo + hi) / 2
		if eventBefore(e, q.far[mid]) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.far = append(q.far, event{})
	copy(q.far[lo+1:], q.far[lo:])
	q.far[lo] = e
}

// findMin locates the bucket holding the globally earliest ring event,
// advancing the cursor to its epoch. It must only be called with size > 0.
// The cursor sweep visits at most one full rotation; on a miss (the next
// event is more than a rotation ahead) it falls back to a direct scan of
// all buckets and jumps the cursor there.
func (q *calendarQueue) findMin() int {
	n := uint64(len(q.buckets))
	for scanned := uint64(0); scanned <= n; scanned++ {
		b := &q.buckets[q.cvb&q.mask]
		if b.len() > 0 {
			if e := b.ev[b.head]; q.vbOf(e.at) <= q.cvb {
				return int(q.cvb & q.mask)
			}
		}
		q.cvb++
	}
	// Sparse fallback: direct minimum over all buckets. Frequent hits mean
	// the width is too fine for the live distribution — retune and retry.
	q.sparse++
	if q.sparse >= 8 && q.retune() {
		return q.findMin()
	}
	best := -1
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.len() == 0 {
			continue
		}
		if best < 0 || eventBefore(b.ev[b.head], q.buckets[best].ev[q.buckets[best].head]) {
			best = i
		}
	}
	q.cvb = q.vbOf(q.buckets[best].ev[q.buckets[best].head].at)
	return best
}

// pop removes and returns the earliest event. The second return is false
// when the queue is empty.
func (q *calendarQueue) pop() (event, bool) {
	if q.size == 0 {
		if len(q.far) == 0 {
			return event{}, false
		}
		n := len(q.far) - 1
		e := q.far[n]
		q.far[n] = event{}
		q.far = q.far[:n]
		return e, true
	}
	bi := q.findMin()
	e := q.buckets[bi].popMin()
	q.cvb = q.vbOf(e.at)
	q.size--
	if len(q.buckets) > minBuckets && q.size < len(q.buckets)/8 {
		q.resize(len(q.buckets) / 2)
	}
	return e, true
}

// popAtMost pops the earliest event only if its time is ≤ t; otherwise no
// event is removed and the cursor rests at the unpopped minimum's epoch.
// That resting point is always valid — no ring event precedes it, and
// enqueue rewinds the cursor for any earlier arrival. It must NOT be
// "restored" to its pre-call value: findMin may have retuned the ring
// mid-call, and a cursor saved under the old bucket width can land ahead
// of live events under the new one, breaking pop order.
func (q *calendarQueue) popAtMost(t float64) (event, bool) {
	if q.size == 0 {
		if n := len(q.far); n > 0 && q.far[n-1].at <= t {
			return q.pop()
		}
		return event{}, false
	}
	bi := q.findMin()
	b := &q.buckets[bi]
	if e := b.ev[b.head]; e.at > t {
		return event{}, false
	}
	e := b.popMin()
	q.cvb = q.vbOf(e.at)
	q.size--
	if len(q.buckets) > minBuckets && q.size < len(q.buckets)/8 {
		q.resize(len(q.buckets) / 2)
	}
	return e, true
}

// maxOccupancy is the bucket length beyond which an insert suspects the
// width is mistuned and requests a retune.
const maxOccupancy = 16

// tunedWidth returns the bucket width fitting the live events: three times
// their mean spacing (Brown's rule keeps mean bucket occupancy below one
// in steady state), or the current width when the span is degenerate.
func (q *calendarQueue) tunedWidth() (width, minAt float64) {
	minAt, maxAt := math.Inf(1), math.Inf(-1)
	for i := range q.buckets {
		b := &q.buckets[i]
		for _, e := range b.ev[b.head:] {
			if e.at < minAt {
				minAt = e.at
			}
			if e.at > maxAt {
				maxAt = e.at
			}
		}
	}
	width = q.width
	if q.size > 1 && maxAt > minAt {
		if w := 3 * (maxAt - minAt) / float64(q.size); w > 0 && !math.IsInf(w, 0) {
			width = w
		}
	}
	return width, minAt
}

// resize rebuilds the ring with n buckets and a freshly tuned width.
// O(size), amortized O(1) per operation by the doubling/halving
// thresholds.
func (q *calendarQueue) resize(n int) {
	width, minAt := q.tunedWidth()
	q.rebuild(n, width, minAt)
}

// retune rebuilds the ring in place when the live distribution has drifted
// more than 2× from the tuned width (hysteresis prevents thrash on
// tie-heavy schedules where no width can help). Returns whether a rebuild
// happened. Either way the triggers are reset, with a cooldown of one
// queue's worth of enqueues so the O(size) span scan stays amortized.
func (q *calendarQueue) retune() bool {
	q.sparse = 0
	q.cooldown = q.size
	if q.size < 8 {
		return false
	}
	width, minAt := q.tunedWidth()
	if width > q.width/2 && width < q.width*2 {
		return false
	}
	q.rebuild(len(q.buckets), width, minAt)
	return true
}

// rebuild redistributes every ring event into n fresh buckets of the given
// width. minAt must be the earliest queued time (the cursor restarts
// there); it is ignored when the ring is empty.
func (q *calendarQueue) rebuild(n int, width, minAt float64) {
	old := q.buckets
	q.init(n, width)
	q.sparse = 0
	q.cooldown = q.size
	if q.size == 0 {
		q.cvb = 0
		return
	}
	q.cvb = q.vbOf(minAt)
	for i := range old {
		b := &old[i]
		for _, e := range b.ev[b.head:] {
			q.buckets[q.vbOf(e.at)&q.mask].insert(e)
		}
	}
}
