package netsim

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// TestTCPFairnessTwoFlows validates the congestion-control substrate
// against the property the fluid simulator assumes: two long-lived TCP
// flows with equal RTTs sharing a bottleneck converge to approximately
// equal shares.
func TestTCPFairnessTwoFlows(t *testing.T) {
	var sim Simulator
	rng := randx.New(21)
	bottleneck, err := NewLink(&sim, LinkConfig{
		Rate:  unit.MbpsOf(10),
		Delay: 0.02,
		Queue: DefaultQueue(unit.MbpsOf(10)),
		Loss:  LossModel{Rate: 0.0002},
	}, rng.Split("link"))
	if err != nil {
		t.Fatal(err)
	}
	ack, err := NewLink(&sim, LinkConfig{Rate: unit.MbpsOf(100), Delay: 0.02, Queue: unit.MB}, nil)
	if err != nil {
		t.Fatal(err)
	}

	flows := []Flow{
		{Src: Endpoint{Host: "s1", Port: 1}, Dst: Endpoint{Host: "c", Port: 10}},
		{Src: Endpoint{Host: "s2", Port: 2}, Dst: Endpoint{Host: "c", Port: 11}},
	}
	senders := make([]*TCPSender, 2)
	receivers := make([]*TCPReceiver, 2)
	for i, f := range flows {
		s, err := NewTCPSender(&sim, bottleneck, f, 0, TCPConfig{})
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = s
		receivers[i] = NewTCPReceiver(&sim, ack, f)
	}
	// Demultiplex by flow (the gopacket-style comparable Flow keys).
	bottleneck.SetReceiver(func(p *Packet) {
		for i, f := range flows {
			if p.Flow == f {
				receivers[i].OnData(p)
				return
			}
		}
	})
	ack.SetReceiver(func(p *Packet) {
		for i, f := range flows {
			if p.Flow == f.Reverse() {
				senders[i].OnAck(p)
				return
			}
		}
	})
	senders[0].Start()
	// The second flow joins two seconds later and must still converge.
	sim.After(2, senders[1].Start)
	sim.RunUntil(42)

	// Measure goodput over the shared window [2, 42].
	g0 := float64(senders[0].AckedBytes()) * 8 / 42
	g1 := float64(senders[1].AckedBytes()) * 8 / 40
	total := (g0 + g1) / 1e6
	if total < 7.5 || total > 10.5 {
		t.Errorf("two flows should fill the 10 Mbps link: total %.2f Mbps", total)
	}
	// Jain's fairness index for two flows: 1 = perfect, 0.5 = one starved.
	jain := (g0 + g1) * (g0 + g1) / (2 * (g0*g0 + g1*g1))
	if jain < 0.8 {
		t.Errorf("fairness index %.3f (flows %.2f vs %.2f Mbps)", jain, g0/1e6, g1/1e6)
	}
	if math.Min(g0, g1) <= 0 {
		t.Error("a flow starved completely")
	}
}
