package netsim_test

import (
	"fmt"

	"github.com/nwca/broadband/internal/netsim"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// A full NDT-style measurement of a simulated 10/1 Mbps line with 40 ms of
// base RTT: throughput tests in both directions, probe RTT, loss estimate.
func ExampleRunNDT() {
	line := netsim.AccessLine{
		Down: netsim.LinkConfig{Rate: unit.MbpsOf(10), Delay: 0.02},
		Up:   netsim.LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.02},
	}
	res, err := netsim.RunNDT(line, netsim.NDTConfig{Duration: 8}, randx.New(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("download ≈ %.0f Mbps, upload ≈ %.1f Mbps, rtt ≈ %.0f ms\n",
		res.DownloadRate.Mbps(), res.UploadRate.Mbps(), res.RTT*1000)
	// Output:
	// download ≈ 9 Mbps, upload ≈ 0.8 Mbps, rtt ≈ 41 ms
}

// The fluid simulator realizes byte-counter traces: two flows sharing a
// bottleneck max-min fairly.
func ExampleFluidSim_Run() {
	a := &netsim.FluidFlow{ID: 1, Volume: 30 * unit.MB}
	b := &netsim.FluidFlow{ID: 2, Volume: 30 * unit.MB}
	res, err := netsim.FluidSim{Capacity: unit.MbpsOf(8), Interval: 30}.Run(
		[]*netsim.FluidFlow{a, b}, 120)
	if err != nil {
		panic(err)
	}
	_, atA := a.Finished()
	fmt.Printf("both done at %.0f s, moved %s\n", atA, res.TotalBytes)
	// Output:
	// both done at 60 s, moved 60.00 MB
}

// The Mathis bound couples line quality to achievable TCP throughput.
func ExampleMathisThroughput() {
	clean := netsim.MathisThroughput(1460*unit.Byte, 0.04, 0.0001)
	lossy := netsim.MathisThroughput(1460*unit.Byte, 0.04, 0.01)
	fmt.Printf("0.01%% loss: %.0f Mbps; 1%% loss: %.1f Mbps\n", clean.Mbps(), lossy.Mbps())
	// Output:
	// 0.01% loss: 36 Mbps; 1% loss: 3.6 Mbps
}
