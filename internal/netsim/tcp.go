package netsim

import (
	"fmt"
	"math"

	"github.com/nwca/broadband/internal/unit"
)

// TCPConfig tunes the simplified TCP Reno implementation used by the
// measurement harness. Zero values select sensible defaults.
type TCPConfig struct {
	MSS         unit.ByteSize // segment payload size (default 1460 B)
	InitialCwnd float64       // initial congestion window in segments (default 10)
	MinRTO      float64       // RTO floor in seconds (default 0.2)
	MaxCwnd     float64       // window clamp in segments (default 10000)
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MSS <= 0 {
		c.MSS = 1460 * unit.Byte
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 0.2
	}
	if c.MaxCwnd <= 0 {
		c.MaxCwnd = 10000
	}
	return c
}

// TCPSender is a simplified TCP Reno source: slow start, congestion
// avoidance, fast retransmit/recovery on three duplicate ACKs, and an
// exponential-backoff retransmission timer. It is not a byte-faithful TCP —
// it exists so that simulated NDT throughput reacts to loss, RTT and buffer
// size with the right dynamics (cf. the Mathis model it is validated
// against in tests).
type TCPSender struct {
	sim  *Simulator
	data *Link // direction carrying segments
	cfg  TCPConfig
	flow Flow

	cwnd     float64 // congestion window, in segments
	ssthresh float64 // slow-start threshold, in segments
	nextSeq  int64   // next new byte to transmit
	sndUna   int64   // oldest unacknowledged byte
	dupAcks  int
	// recovering marks fast recovery; recoverSeq is the sequence that must
	// be cumulatively acknowledged to exit it. retxNext is the sequential
	// retransmission pointer: tail-drop losses are contiguous runs, so the
	// recovery phase resends from the cumulative-ACK point forward, one
	// segment per arriving ACK (packet conservation). This fills an N-drop
	// burst in roughly one RTT instead of classic NewReno's N RTTs, playing
	// the role SACK-based recovery does in real stacks.
	recovering bool
	recoverSeq int64
	retxNext   int64

	srtt, rttvar, rto float64
	rtoGen            int64 // invalidates stale timer events

	limitBytes int64 // 0 means unlimited (time-bounded transfers)
	ackedBytes int64
	startedAt  float64
	done       bool
	onComplete func()

	retransmits int64
	timeouts    int64
}

// NewTCPSender creates a sender that transmits over data and expects
// acknowledgments to be delivered via OnAck (typically wired to the reverse
// link's receiver). limitBytes of 0 streams until the simulation stops.
func NewTCPSender(sim *Simulator, data *Link, flow Flow, limitBytes int64, cfg TCPConfig) (*TCPSender, error) {
	if sim == nil || data == nil {
		return nil, fmt.Errorf("netsim: TCP sender needs a simulator and a data link")
	}
	if limitBytes < 0 {
		return nil, fmt.Errorf("netsim: negative transfer size %d", limitBytes)
	}
	cfg = cfg.withDefaults()
	return &TCPSender{
		sim:        sim,
		data:       data,
		cfg:        cfg,
		flow:       flow,
		cwnd:       cfg.InitialCwnd,
		ssthresh:   math.Inf(1),
		rto:        1.0, // RFC 6298 initial RTO
		limitBytes: limitBytes,
	}, nil
}

// SetOnComplete registers a callback invoked when a bounded transfer has
// been fully acknowledged.
func (s *TCPSender) SetOnComplete(fn func()) { s.onComplete = fn }

// Start begins transmission at the current virtual time.
func (s *TCPSender) Start() {
	s.startedAt = s.sim.Now()
	s.trySend()
}

// AckedBytes returns the number of payload bytes cumulatively acknowledged.
func (s *TCPSender) AckedBytes() int64 { return s.ackedBytes }

// Goodput returns the acknowledged-byte rate achieved since Start, as of
// the supplied end time.
func (s *TCPSender) Goodput(endTime float64) unit.Bitrate {
	el := endTime - s.startedAt
	if el <= 0 {
		return 0
	}
	return unit.ByteSize(s.ackedBytes).RateOver(el)
}

// SRTT returns the smoothed RTT estimate in seconds (0 before any sample).
func (s *TCPSender) SRTT() float64 { return s.srtt }

// Retransmits and Timeouts expose loss-recovery counters for diagnostics.
func (s *TCPSender) Retransmits() int64 { return s.retransmits }

// Timeouts reports how many RTO expirations occurred.
func (s *TCPSender) Timeouts() int64 { return s.timeouts }

// Done reports whether a bounded transfer has completed.
func (s *TCPSender) Done() bool { return s.done }

func (s *TCPSender) mss() int64 { return int64(s.cfg.MSS) }

// flightSize is the canonical nextSeq − sndUna byte estimate of outstanding
// data; retransmissions do not perturb it.
func (s *TCPSender) flightSize() int64 { return s.nextSeq - s.sndUna }

func (s *TCPSender) trySend() {
	if s.done {
		return
	}
	window := int64(s.cwnd * float64(s.mss()))
	for s.flightSize()+s.mss() <= window {
		if s.limitBytes > 0 && s.nextSeq >= s.limitBytes {
			break
		}
		size := s.mss()
		if s.limitBytes > 0 && s.nextSeq+size > s.limitBytes {
			size = s.limitBytes - s.nextSeq
		}
		s.transmit(s.nextSeq, size)
		s.nextSeq += size
	}
	s.armRTO()
}

func (s *TCPSender) transmit(seq, size int64) {
	s.data.Send(&Packet{
		Flow:   s.flow,
		Seq:    seq,
		Size:   unit.ByteSize(size),
		SentAt: s.sim.Now(),
	})
}

// OnAck processes a cumulative acknowledgment delivered from the receiver.
func (s *TCPSender) OnAck(p *Packet) {
	if s.done || !p.IsAck {
		return
	}
	ack := p.AckSeq
	switch {
	case ack > s.sndUna:
		newly := ack - s.sndUna
		s.sndUna = ack
		s.ackedBytes += newly
		s.dupAcks = 0
		s.sampleRTT(s.sim.Now() - p.SentAt)
		if s.recovering {
			if ack >= s.recoverSeq {
				// Full ACK: leave recovery at the halved window.
				s.recovering = false
				s.cwnd = s.ssthresh
			} else {
				// Partial ACK: the next hole starts exactly at the new
				// cumulative ACK; keep the retransmission pointer ahead of
				// it and resend one segment (packet conservation).
				if s.retxNext < s.sndUna {
					s.retxNext = s.sndUna
				}
				s.retransmitHole()
				s.armRTO()
				return
			}
		} else if s.cwnd < s.ssthresh {
			// Slow start: one segment per segment acknowledged.
			s.cwnd += float64(newly) / float64(s.mss())
		} else {
			// Congestion avoidance: ~one segment per RTT.
			s.cwnd += float64(newly) / float64(s.mss()) / s.cwnd
		}
		if s.cwnd > s.cfg.MaxCwnd {
			s.cwnd = s.cfg.MaxCwnd
		}
		if s.limitBytes > 0 && s.sndUna >= s.limitBytes {
			s.done = true
			s.rtoGen++ // cancel the timer
			if s.onComplete != nil {
				s.onComplete()
			}
			return
		}
		s.armRTO()
		s.trySend()

	case ack == s.sndUna:
		if s.flightSize() == 0 {
			return // stale ACK for an idle connection
		}
		s.dupAcks++
		if s.recovering {
			// Each returning ACK clocks out one more retransmission of the
			// contiguous hole region.
			s.retransmitHole()
			return
		}
		if s.dupAcks == 3 {
			// Fast retransmit + fast recovery.
			s.ssthresh = math.Max(s.cwnd/2, 2)
			s.cwnd = s.ssthresh
			s.recovering = true
			s.recoverSeq = s.nextSeq
			s.retxNext = s.sndUna
			s.retransmitHole()
			s.armRTO()
		}
	}
}

// retransmitHole resends the next segment of the presumed-contiguous loss
// run during fast recovery, bounded by the recovery horizon.
func (s *TCPSender) retransmitHole() {
	if !s.recovering || s.retxNext >= s.recoverSeq || s.retxNext >= s.nextSeq {
		return
	}
	size := min64(s.mss(), s.nextSeq-s.retxNext)
	s.retransmits++
	s.transmit(s.retxNext, size)
	s.retxNext += size
}

func (s *TCPSender) sampleRTT(rtt float64) {
	if rtt <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-rtt)
		s.srtt = (1-alpha)*s.srtt + alpha*rtt
	}
	s.rto = math.Max(s.cfg.MinRTO, s.srtt+4*s.rttvar)
}

func (s *TCPSender) armRTO() {
	if s.flightSize() <= 0 {
		s.rtoGen++
		return
	}
	s.rtoGen++
	gen := s.rtoGen
	s.sim.After(s.rto, func() {
		if gen != s.rtoGen || s.done || s.flightSize() <= 0 {
			return
		}
		s.timeouts++
		s.ssthresh = math.Max(s.cwnd/2, 2)
		s.cwnd = 1
		s.dupAcks = 0
		s.recovering = false
		s.rto = math.Min(s.rto*2, 60) // Karn backoff
		s.retransmits++
		s.transmit(s.sndUna, min64(s.mss(), s.nextSeq-s.sndUna))
		s.armRTO()
	})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TCPReceiver reassembles the byte stream and emits cumulative ACKs on the
// reverse link. Out-of-order segments are buffered; every arriving data
// segment triggers an ACK (no delayed-ACK, keeping dynamics simple and
// making dup-ACK loss signals immediate).
type TCPReceiver struct {
	sim      *Simulator
	ackPath  *Link
	flow     Flow // the data flow; ACKs travel on its reverse
	expected int64
	// ooo maps buffered segment start → end (exclusive).
	ooo map[int64]int64

	received int64 // in-order payload bytes delivered up
}

// NewTCPReceiver creates a receiver sending ACKs over ackPath.
func NewTCPReceiver(sim *Simulator, ackPath *Link, flow Flow) *TCPReceiver {
	return &TCPReceiver{sim: sim, ackPath: ackPath, flow: flow, ooo: make(map[int64]int64)}
}

// ReceivedBytes reports in-order bytes received so far.
func (r *TCPReceiver) ReceivedBytes() int64 { return r.received }

// OnData processes an arriving data segment.
func (r *TCPReceiver) OnData(p *Packet) {
	if p.IsAck {
		return
	}
	end := p.Seq + int64(p.Size)
	switch {
	case p.Seq == r.expected:
		r.expected = end
		// Drain any contiguous buffered segments.
		for {
			e, ok := r.ooo[r.expected]
			if !ok {
				break
			}
			delete(r.ooo, r.expected)
			r.expected = e
		}
	case p.Seq > r.expected:
		if old, ok := r.ooo[p.Seq]; !ok || end > old {
			r.ooo[p.Seq] = end
		}
	}
	r.received = r.expected
	r.ackPath.Send(&Packet{
		Flow:   r.flow.Reverse(),
		IsAck:  true,
		AckSeq: r.expected,
		Size:   0, // pure header; the link adds wire overhead
		SentAt: p.SentAt,
	})
}

// MathisThroughput returns the classic Mathis et al. steady-state TCP
// throughput bound MSS/RTT · C/√p with C = 1.22. The fluid simulator uses
// it to cap per-flow rates on lossy or long paths, coupling connection
// quality to achievable demand exactly where the paper's Sec. 7 effects
// operate. Zero loss returns +Inf; callers clamp with the link capacity.
func MathisThroughput(mss unit.ByteSize, rtt float64, loss unit.LossRate) unit.Bitrate {
	if rtt <= 0 || mss <= 0 {
		return 0
	}
	if loss <= 0 {
		return unit.Bitrate(math.Inf(1))
	}
	return unit.Bitrate(float64(mss) * 8 / rtt * 1.22 / math.Sqrt(float64(loss)))
}
