package netsim

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// typicalLine builds a residential line: asymmetric rates, given one-way
// delays and downstream loss.
func typicalLine(down, up unit.Bitrate, oneWay float64, loss unit.LossRate) AccessLine {
	return AccessLine{
		Down: LinkConfig{Rate: down, Delay: oneWay, Loss: LossModel{Rate: loss}, Name: "down"},
		Up:   LinkConfig{Rate: up, Delay: oneWay, Name: "up"},
	}
}

func TestRunNDTCleanLine(t *testing.T) {
	line := typicalLine(unit.MbpsOf(10), unit.MbpsOf(1), 0.02, 0)
	res, err := RunNDT(line, NDTConfig{Duration: 8}, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DownloadRate.Mbps(); got < 8 || got > 10 {
		t.Errorf("download = %v Mbps, want ≈10", got)
	}
	if got := res.UploadRate.Mbps(); got < 0.75 || got > 1 {
		t.Errorf("upload = %v Mbps, want ≈1", got)
	}
	// RTT ≈ 2×20 ms plus small-probe serialization.
	if res.RTT < 0.04 || res.RTT > 0.06 {
		t.Errorf("RTT = %v, want ≈0.04", res.RTT)
	}
	if res.ChannelLoss != 0 {
		t.Errorf("channel loss = %v on a clean line", res.ChannelLoss)
	}
}

func TestRunNDTLossyLine(t *testing.T) {
	line := typicalLine(unit.MbpsOf(10), unit.MbpsOf(1), 0.02, 0.02)
	res, err := RunNDT(line, NDTConfig{Duration: 10}, randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Measured channel loss should approximate the configured 2%.
	if math.Abs(res.ChannelLoss.Percent()-2) > 1 {
		t.Errorf("channel loss = %v, want ≈2%%", res.ChannelLoss)
	}
	// Throughput must be visibly degraded relative to a clean line.
	clean, _ := RunNDT(typicalLine(unit.MbpsOf(10), unit.MbpsOf(1), 0.02, 0), NDTConfig{Duration: 10, SkipUp: true}, randx.New(6))
	if res.DownloadRate >= clean.DownloadRate {
		t.Errorf("lossy download %v ≥ clean download %v", res.DownloadRate, clean.DownloadRate)
	}
	if res.TotalLoss < res.ChannelLoss {
		t.Errorf("total loss %v < channel loss %v", res.TotalLoss, res.ChannelLoss)
	}
}

func TestRunNDTHighLatencySatellite(t *testing.T) {
	// Satellite-grade path: 300 ms one-way, some loss. The measured RTT
	// must reflect the configured path, and throughput must suffer.
	line := typicalLine(unit.MbpsOf(8), unit.MbpsOf(1), 0.3, 0.005)
	res, err := RunNDT(line, NDTConfig{Duration: 10, SkipUp: true}, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.RTT < 0.6 || res.RTT > 0.65 {
		t.Errorf("satellite RTT = %v, want ≈0.6", res.RTT)
	}
	terrestrial, _ := RunNDT(typicalLine(unit.MbpsOf(8), unit.MbpsOf(1), 0.02, 0.005), NDTConfig{Duration: 10, SkipUp: true}, randx.New(7))
	if res.DownloadRate >= terrestrial.DownloadRate {
		t.Errorf("long path %v should underperform short path %v", res.DownloadRate, terrestrial.DownloadRate)
	}
}

func TestRunNDTDeterminism(t *testing.T) {
	line := typicalLine(unit.MbpsOf(20), unit.MbpsOf(2), 0.03, 0.01)
	a, err := RunNDT(line, NDTConfig{Duration: 5}, randx.New(42).Split("ndt"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNDT(line, NDTConfig{Duration: 5}, randx.New(42).Split("ndt"))
	if err != nil {
		t.Fatal(err)
	}
	if a.DownloadRate != b.DownloadRate || a.RTT != b.RTT || a.ChannelLoss != b.ChannelLoss {
		t.Errorf("NDT not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunNDTValidation(t *testing.T) {
	if _, err := RunNDT(AccessLine{}, NDTConfig{}, randx.New(1)); err == nil {
		t.Error("zero-rate line should error")
	}
	bad := typicalLine(unit.MbpsOf(1), unit.MbpsOf(1), 0.02, 0)
	bad.Up.Delay = -1
	if _, err := RunNDT(bad, NDTConfig{}, randx.New(1)); err == nil {
		t.Error("negative delay should error")
	}
}

func TestMeasureWebLatency(t *testing.T) {
	line := typicalLine(unit.MbpsOf(10), unit.MbpsOf(1), 0.02, 0)
	ndtRTT, err := MeasureWebLatency(line, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	webRTT, err := MeasureWebLatency(line, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if diff := webRTT - ndtRTT; math.Abs(diff-0.1) > 0.001 {
		t.Errorf("extra one-way delay of 50 ms should add ≈100 ms RTT, added %v", diff)
	}
}

func TestNDTCapacityLadder(t *testing.T) {
	// Measured download capacity must be monotone in configured capacity —
	// the property every capacity-binned analysis in the study depends on.
	prev := 0.0
	for _, mbps := range []float64{0.5, 2, 8, 32} {
		line := typicalLine(unit.MbpsOf(mbps), unit.MbpsOf(mbps/4), 0.02, 0)
		res, err := RunNDT(line, NDTConfig{Duration: 8, SkipUp: true}, randx.New(9))
		if err != nil {
			t.Fatal(err)
		}
		got := res.DownloadRate.Mbps()
		if got <= prev {
			t.Errorf("capacity ladder broken at %v Mbps: measured %v after %v", mbps, got, prev)
		}
		if got > mbps {
			t.Errorf("measured %v exceeds configured %v", got, mbps)
		}
		prev = got
	}
}
