package netsim

import (
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

func TestLoadedRTTBufferbloat(t *testing.T) {
	// An over-buffered 8 Mbps line: 512 kB of buffer drains in 512 ms at
	// line rate, so the loaded RTT must balloon far beyond the 40 ms
	// propagation RTT.
	bloated := AccessLine{
		Down: LinkConfig{Rate: unit.MbpsOf(8), Delay: 0.02, Queue: 512 * unit.KB},
		Up:   LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.02},
	}
	res, err := MeasureLoadedRTT(bloated, 10, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleRTT > 0.06 {
		t.Errorf("idle RTT = %v, want ≈0.04", res.IdleRTT)
	}
	if res.Inflation < 4 {
		t.Errorf("bufferbloat inflation = %.1f×, want severe (≥4×) on a 512 kB buffer", res.Inflation)
	}
	if res.Throughput.Mbps() < 6 {
		t.Errorf("the load flow should still saturate: %v", res.Throughput)
	}
	if res.Probes < 20 {
		t.Errorf("only %d probes completed", res.Probes)
	}
}

func TestLoadedRTTWellSizedBuffer(t *testing.T) {
	// A sanely sized (≈1 BDP) buffer keeps the inflation moderate.
	sane := AccessLine{
		Down: LinkConfig{Rate: unit.MbpsOf(8), Delay: 0.02, Queue: DefaultQueue(unit.MbpsOf(8))},
		Up:   LinkConfig{Rate: unit.MbpsOf(1), Delay: 0.02},
	}
	res, err := MeasureLoadedRTT(sane, 10, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inflation > 4 {
		t.Errorf("a 1-BDP buffer should not bloat 4×: %.1f×", res.Inflation)
	}
	if res.Inflation < 1.2 {
		t.Errorf("a saturated queue must inflate latency at least somewhat: %.1f×", res.Inflation)
	}

	// Ordering: more buffer, more loaded latency.
	bloated := sane
	bloated.Down.Queue = 1 * unit.MB
	worse, err := MeasureLoadedRTT(bloated, 10, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if worse.LoadedRTT <= res.LoadedRTT {
		t.Errorf("bigger buffer should mean worse loaded RTT: %v vs %v", worse.LoadedRTT, res.LoadedRTT)
	}
}

func TestLoadedRTTValidation(t *testing.T) {
	if _, err := MeasureLoadedRTT(AccessLine{}, 5, randx.New(1)); err == nil {
		t.Error("invalid line should error")
	}
}
