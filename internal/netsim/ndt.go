package netsim

import (
	"fmt"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// AccessLine describes a full-duplex residential access path between a
// subscriber and the nearest measurement server: the downstream and upstream
// link configurations. One-way delays on the two directions sum (with
// serialization) to the measured RTT.
type AccessLine struct {
	Down LinkConfig
	Up   LinkConfig
}

// Validate checks that both directions are usable.
func (a AccessLine) Validate() error {
	if a.Down.Rate <= 0 || a.Up.Rate <= 0 {
		return fmt.Errorf("netsim: access line needs positive rates (down %v, up %v)", a.Down.Rate, a.Up.Rate)
	}
	if a.Down.Delay < 0 || a.Up.Delay < 0 {
		return fmt.Errorf("netsim: access line has negative delay")
	}
	return nil
}

// NDTConfig tunes a simulated NDT measurement run.
type NDTConfig struct {
	Duration float64 // length of each throughput test in virtual seconds (default 10)
	Probes   int     // RTT probe count (default 10)
	TCP      TCPConfig
	SkipUp   bool // skip the upload test (halves simulation cost when unused)
}

func (c NDTConfig) withDefaults() NDTConfig {
	if c.Duration <= 0 {
		c.Duration = 10
	}
	if c.Probes <= 0 {
		c.Probes = 10
	}
	return c
}

// NDTResult is what a Network-Diagnostic-Tool-style test reports: the
// saturating TCP throughput in each direction, the average RTT of idle-line
// probes, and the packet-loss rate.
//
// ChannelLoss is the loss attributable to the line itself (random/burst
// channel drops), which characterizes the service; TotalLoss additionally
// includes queue drops self-induced by the saturating test, which is what a
// real NDT run conflates. The dataset pipeline records ChannelLoss.
type NDTResult struct {
	DownloadRate unit.Bitrate
	UploadRate   unit.Bitrate
	RTT          float64 // seconds
	ChannelLoss  unit.LossRate
	TotalLoss    unit.LossRate
	DownStats    LinkStats
	UpStats      LinkStats
}

// RunNDT simulates a full NDT measurement (RTT probe train, bulk TCP
// download, bulk TCP upload) over the given access line. rng drives the
// line's stochastic loss; pass a dedicated split so results are reproducible.
func RunNDT(line AccessLine, cfg NDTConfig, rng *randx.Source) (NDTResult, error) {
	if err := line.Validate(); err != nil {
		return NDTResult{}, err
	}
	cfg = cfg.withDefaults()

	var res NDTResult

	// Phase 1: RTT probes on an idle line. Probes are small (64 B), sent
	// 100 ms apart from the client; the server echoes immediately.
	rtt, err := measureRTT(line, cfg.Probes)
	if err != nil {
		return NDTResult{}, err
	}
	res.RTT = rtt

	// Phase 2: bulk download (server → client over the Down link, ACKs on Up).
	down, err := measureThroughput(line.Down, line.Up, cfg, rng.Split("ndt-down"))
	if err != nil {
		return NDTResult{}, err
	}
	res.DownloadRate = down.rate
	res.DownStats = down.dataStats

	// Phase 3: bulk upload (client → server over the Up link, ACKs on Down).
	if !cfg.SkipUp {
		up, err := measureThroughput(line.Up, line.Down, cfg, rng.Split("ndt-up"))
		if err != nil {
			return NDTResult{}, err
		}
		res.UploadRate = up.rate
		res.UpStats = up.dataStats
	}

	// Loss accounting from the download direction (NDT's C2S/S2C loss is
	// dominated by the data-bearing path).
	st := res.DownStats
	if st.Sent > 0 {
		res.ChannelLoss = unit.LossRate(float64(st.DroppedLoss) / float64(st.Sent))
		res.TotalLoss = st.LossRate()
	}
	return res, nil
}

// measureRTT sends probe packets over an otherwise idle line and returns
// the mean round-trip time. Probe links carry no loss process: RTT is
// averaged over successful probes only, and queueing is the interesting
// effect.
func measureRTT(line AccessLine, probes int) (float64, error) {
	sim := &Simulator{}
	up, err := NewLink(sim, line.Up, nil)
	if err != nil {
		return 0, err
	}
	down, err := NewLink(sim, line.Down, nil)
	if err != nil {
		return 0, err
	}

	var total float64
	var got int
	down.SetReceiver(func(p *Packet) {
		total += sim.Now() - p.SentAt
		got++
	})
	up.SetReceiver(func(p *Packet) {
		// Server echo: turn the probe around instantly.
		down.Send(&Packet{Flow: p.Flow.Reverse(), Size: p.Size, SentAt: p.SentAt, Probe: true})
	})
	for i := 0; i < probes; i++ {
		delay := 0.1 * float64(i)
		sim.At(delay, func() {
			up.Send(&Packet{Size: 64 * unit.Byte, SentAt: sim.Now(), Probe: true})
		})
	}
	sim.Run()
	if got == 0 {
		return 0, fmt.Errorf("netsim: no probe completed")
	}
	return total / float64(got), nil
}

type throughputOutcome struct {
	rate      unit.Bitrate
	dataStats LinkStats
}

// measureThroughput runs a time-bounded saturating TCP transfer over the
// data link with acknowledgments on the ack link, and reports goodput.
func measureThroughput(dataCfg, ackCfg LinkConfig, cfg NDTConfig, rng *randx.Source) (throughputOutcome, error) {
	sim := &Simulator{}
	data, err := NewLink(sim, dataCfg, rng.Split("data"))
	if err != nil {
		return throughputOutcome{}, err
	}
	// The ACK path carries 40-byte headers; its loss still matters (lost
	// ACKs delay recovery) so it keeps its configured loss model.
	ack, err := NewLink(sim, ackCfg, rng.Split("ack"))
	if err != nil {
		return throughputOutcome{}, err
	}

	flow := Flow{
		Src: Endpoint{Host: "server", Port: 5001},
		Dst: Endpoint{Host: "client", Port: 40001},
	}
	sender, err := NewTCPSender(sim, data, flow, 0, cfg.TCP)
	if err != nil {
		return throughputOutcome{}, err
	}
	recv := NewTCPReceiver(sim, ack, flow)
	data.SetReceiver(recv.OnData)
	ack.SetReceiver(sender.OnAck)

	sender.Start()
	sim.RunUntil(cfg.Duration)
	return throughputOutcome{
		rate:      sender.Goodput(cfg.Duration),
		dataStats: data.Stats(),
	}, nil
}

// MeasureWebLatency simulates the paper's 2014 web-latency addition: the
// median RTT of small HTTP-like request/response exchanges against a popular
// site, which differs from the NDT probe RTT only through the (configured)
// extra path delay to the site. extraDelay models the additional one-way
// distance beyond the nearest measurement server.
func MeasureWebLatency(line AccessLine, extraDelay float64, samples int) (float64, error) {
	if samples <= 0 {
		samples = 5
	}
	l := line
	l.Up.Delay += extraDelay
	l.Down.Delay += extraDelay
	return measureRTT(l, samples)
}
