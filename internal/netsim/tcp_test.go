package netsim

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// buildPath wires a data link and an ACK link between a sender and receiver
// and returns them ready to start.
func buildPath(t *testing.T, sim *Simulator, dataCfg, ackCfg LinkConfig, limit int64, rng *randx.Source) (*TCPSender, *TCPReceiver) {
	t.Helper()
	var dataRng, ackRng *randx.Source
	if rng != nil {
		dataRng, ackRng = rng.Split("data"), rng.Split("ack")
	}
	data, err := NewLink(sim, dataCfg, dataRng)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := NewLink(sim, ackCfg, ackRng)
	if err != nil {
		t.Fatal(err)
	}
	flow := Flow{Src: Endpoint{Host: "s", Port: 1}, Dst: Endpoint{Host: "c", Port: 2}}
	snd, err := NewTCPSender(sim, data, flow, limit, TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rcv := NewTCPReceiver(sim, ack, flow)
	data.SetReceiver(rcv.OnData)
	ack.SetReceiver(snd.OnAck)
	return snd, rcv
}

func cleanAck() LinkConfig {
	return LinkConfig{Rate: unit.MbpsOf(100), Delay: 0.02, Queue: unit.MB}
}

func TestTCPValidation(t *testing.T) {
	var sim Simulator
	data, _ := NewLink(&sim, LinkConfig{Rate: unit.Mbps}, nil)
	if _, err := NewTCPSender(nil, data, Flow{}, 0, TCPConfig{}); err == nil {
		t.Error("nil simulator should error")
	}
	if _, err := NewTCPSender(&sim, nil, Flow{}, 0, TCPConfig{}); err == nil {
		t.Error("nil link should error")
	}
	if _, err := NewTCPSender(&sim, data, Flow{}, -1, TCPConfig{}); err == nil {
		t.Error("negative size should error")
	}
}

func TestTCPBoundedTransferCompletes(t *testing.T) {
	var sim Simulator
	const volume = 500_000
	snd, rcv := buildPath(t, &sim,
		LinkConfig{Rate: unit.MbpsOf(10), Delay: 0.02, Queue: unit.MB},
		cleanAck(), volume, nil)
	completed := -1.0
	snd.SetOnComplete(func() { completed = sim.Now() })
	snd.Start()
	sim.RunUntil(60)
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if completed <= 0 {
		t.Fatal("completion callback not invoked")
	}
	if snd.AckedBytes() != volume {
		t.Errorf("acked %d bytes, want %d", snd.AckedBytes(), volume)
	}
	if rcv.ReceivedBytes() != volume {
		t.Errorf("received %d bytes, want %d", rcv.ReceivedBytes(), volume)
	}
	// 500 kB at 10 Mbps is 0.4 s of serialization plus slow-start ramp; it
	// must finish well before 5 s on a clean 40 ms path.
	if completed > 5 {
		t.Errorf("transfer took %v s, suspiciously slow", completed)
	}
}

func TestTCPSaturatesCleanLink(t *testing.T) {
	// On a clean link the steady-state goodput should approach capacity
	// (within ~15%, allowing for slow start and header overhead).
	for _, mbps := range []float64{2, 10, 50} {
		var sim Simulator
		snd, _ := buildPath(t, &sim,
			LinkConfig{Rate: unit.MbpsOf(mbps), Delay: 0.02, Queue: DefaultQueue(unit.MbpsOf(mbps))},
			cleanAck(), 0, nil)
		snd.Start()
		sim.RunUntil(12)
		got := snd.Goodput(12).Mbps()
		if got < 0.8*mbps || got > mbps {
			t.Errorf("%v Mbps link: goodput %v Mbps", mbps, got)
		}
	}
}

func TestTCPThroughputDecreasesWithLoss(t *testing.T) {
	run := func(loss float64) float64 {
		var sim Simulator
		rng := randx.New(77)
		snd, _ := buildPath(t, &sim,
			LinkConfig{Rate: unit.MbpsOf(50), Delay: 0.04, Queue: unit.MB,
				Loss: LossModel{Rate: unit.LossRate(loss)}},
			cleanAck(), 0, rng)
		snd.Start()
		sim.RunUntil(30)
		return snd.Goodput(30).Mbps()
	}
	clean := run(0)
	light := run(0.001)
	heavy := run(0.02)
	if !(clean > light && light > heavy) {
		t.Errorf("throughput ordering violated: clean=%v light=%v heavy=%v", clean, light, heavy)
	}
	if heavy > 0.5*clean {
		t.Errorf("2%% loss should cost far more than half the throughput: clean=%v heavy=%v", clean, heavy)
	}
}

func TestTCPThroughputDecreasesWithRTT(t *testing.T) {
	run := func(delay float64) float64 {
		var sim Simulator
		rng := randx.New(78)
		ack := cleanAck()
		ack.Delay = delay
		snd, _ := buildPath(t, &sim,
			LinkConfig{Rate: unit.MbpsOf(50), Delay: delay, Queue: 64 * unit.KB,
				Loss: LossModel{Rate: 0.003}},
			ack, 0, rng)
		snd.Start()
		sim.RunUntil(30)
		return snd.Goodput(30).Mbps()
	}
	short := run(0.01)
	long := run(0.3)
	if short <= long {
		t.Errorf("throughput should fall with RTT: 20ms→%v, 600ms→%v", short, long)
	}
}

func TestTCPAgreesWithMathisOrder(t *testing.T) {
	// Under moderate random loss, simulated goodput should be within a
	// factor of ~2.5 of the Mathis bound (the model ignores timeouts and
	// slow start; we only require order-of-magnitude agreement).
	var sim Simulator
	rng := randx.New(79)
	loss := 0.005
	delay := 0.05
	snd, _ := buildPath(t, &sim,
		LinkConfig{Rate: unit.MbpsOf(200), Delay: delay, Queue: unit.MB,
			Loss: LossModel{Rate: unit.LossRate(loss)}},
		LinkConfig{Rate: unit.MbpsOf(200), Delay: delay, Queue: unit.MB}, 0, rng)
	snd.Start()
	sim.RunUntil(40)
	got := snd.Goodput(40).Mbps()
	rtt := 2 * delay
	bound := MathisThroughput(1460, rtt, unit.LossRate(loss)).Mbps()
	if got > bound*1.2 {
		t.Errorf("goodput %v Mbps exceeds Mathis bound %v", got, bound)
	}
	if got < bound/3 {
		t.Errorf("goodput %v Mbps far below Mathis bound %v", got, bound)
	}
}

func TestTCPRecoversViaRetransmission(t *testing.T) {
	var sim Simulator
	rng := randx.New(80)
	const volume = 2_000_000
	snd, rcv := buildPath(t, &sim,
		LinkConfig{Rate: unit.MbpsOf(20), Delay: 0.03, Queue: 128 * unit.KB,
			Loss: LossModel{Rate: 0.01}},
		cleanAck(), volume, rng)
	snd.Start()
	sim.RunUntil(120)
	if !snd.Done() {
		t.Fatalf("lossy transfer did not complete; acked %d/%d", snd.AckedBytes(), volume)
	}
	if rcv.ReceivedBytes() != volume {
		t.Errorf("receiver got %d bytes, want %d (reliability violated)", rcv.ReceivedBytes(), volume)
	}
	if snd.Retransmits() == 0 {
		t.Error("expected retransmissions on a 1% lossy path")
	}
}

func TestTCPTimeoutPath(t *testing.T) {
	// Brutal loss forces RTO-based recovery; the transfer must still finish.
	var sim Simulator
	rng := randx.New(81)
	const volume = 100_000
	snd, rcv := buildPath(t, &sim,
		LinkConfig{Rate: unit.MbpsOf(5), Delay: 0.05, Queue: 64 * unit.KB,
			Loss: LossModel{Rate: 0.15}},
		LinkConfig{Rate: unit.MbpsOf(5), Delay: 0.05, Queue: 64 * unit.KB,
			Loss: LossModel{Rate: 0.15}}, volume, rng)
	snd.Start()
	sim.RunUntil(600)
	if !snd.Done() {
		t.Fatalf("transfer under 15%% loss did not complete; acked %d", snd.AckedBytes())
	}
	if rcv.ReceivedBytes() != volume {
		t.Errorf("receiver got %d, want %d", rcv.ReceivedBytes(), volume)
	}
	if snd.Timeouts() == 0 {
		t.Error("expected at least one RTO under 15% loss")
	}
}

func TestTCPSRTTTracksPath(t *testing.T) {
	var sim Simulator
	snd, _ := buildPath(t, &sim,
		LinkConfig{Rate: unit.MbpsOf(10), Delay: 0.05, Queue: 32 * unit.KB},
		LinkConfig{Rate: unit.MbpsOf(10), Delay: 0.05, Queue: 32 * unit.KB}, 0, nil)
	snd.Start()
	sim.RunUntil(10)
	// Base RTT 100 ms plus queueing; SRTT must be at least the base and not
	// wildly above base+max queueing delay.
	if snd.SRTT() < 0.1 {
		t.Errorf("SRTT %v below propagation RTT", snd.SRTT())
	}
	if snd.SRTT() > 0.5 {
		t.Errorf("SRTT %v implausibly high for a 32 kB buffer", snd.SRTT())
	}
}

func TestMathisThroughput(t *testing.T) {
	// 1460 B MSS, 100 ms RTT, 1% loss → 1460*8/0.1 * 12.2 ≈ 1.42 Mbps.
	got := MathisThroughput(1460, 0.1, 0.01)
	want := 1460.0 * 8 / 0.1 * 1.22 / 0.1
	if math.Abs(got.BitsPerSecond()-want) > 1 {
		t.Errorf("Mathis = %v, want %v", got.BitsPerSecond(), want)
	}
	if !math.IsInf(MathisThroughput(1460, 0.1, 0).BitsPerSecond(), 1) {
		t.Error("zero loss should be unbounded")
	}
	if MathisThroughput(1460, 0, 0.01) != 0 || MathisThroughput(0, 0.1, 0.01) != 0 {
		t.Error("degenerate inputs should be 0")
	}
	// Monotonicity: worse loss → lower bound; longer RTT → lower bound.
	if MathisThroughput(1460, 0.1, 0.04) >= MathisThroughput(1460, 0.1, 0.01) {
		t.Error("Mathis must decrease with loss")
	}
	if MathisThroughput(1460, 0.2, 0.01) >= MathisThroughput(1460, 0.1, 0.01) {
		t.Error("Mathis must decrease with RTT")
	}
}
