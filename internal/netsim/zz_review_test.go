package netsim

import (
	"math/rand"
	"testing"
)

// Differential fuzz of calendarQueue vs the reference heap, mixing
// popAtMost misses (which save/restore the cursor) with wide time spreads
// (which trigger sparse-fallback retunes).
func TestReviewDifferentialPopAtMost(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var cq calendarQueue
		var h eventHeap
		id := int64(0)
		now := 0.0
		for step := 0; step < 2000; step++ {
			op := rng.Intn(10)
			switch {
			case op < 5: // enqueue
				at := now + rng.Float64()*float64(rng.Intn(3)*1000+1)
				id++
				e := event{at: at, id: id}
				cq.enqueue(e)
				h.pushEvent(e)
			case op < 8: // popAtMost with a t that often misses
				t2 := now + rng.Float64()*50
				ce, cok := cq.popAtMost(t2)
				var he event
				hok := len(h) > 0 && h.peek().at <= t2
				if hok {
					he = h.popEvent()
				}
				if cok != hok || (cok && (ce.at != he.at || ce.id != he.id)) {
					t.Fatalf("seed %d step %d popAtMost(%v): cal=(%v,%d,%v) heap=(%v,%d,%v)",
						seed, step, t2, ce.at, ce.id, cok, he.at, he.id, hok)
				}
				if cok {
					now = ce.at
				}
			default: // pop
				ce, cok := cq.pop()
				var he event
				hok := len(h) > 0
				if hok {
					he = h.popEvent()
				}
				if cok != hok || (cok && (ce.at != he.at || ce.id != he.id)) {
					t.Fatalf("seed %d step %d pop: cal=(%v,%d,%v) heap=(%v,%d,%v)",
						seed, step, ce.at, ce.id, cok, he.at, he.id, hok)
				}
				if cok {
					now = ce.at
				}
			}
		}
	}
}

func (q *calendarQueue) checkInvariant(t *testing.T, seed int64, step int, op string) {
	t.Helper()
	for i := range q.buckets {
		b := &q.buckets[i]
		for _, e := range b.ev[b.head:] {
			if q.vbOf(e.at) < q.cvb {
				t.Fatalf("seed %d step %d after %s: event at=%v vb=%d behind cursor cvb=%d (width %v)",
					seed, step, op, e.at, q.vbOf(e.at), q.cvb, q.width)
			}
		}
	}
}

func TestReviewInvariant(t *testing.T) {
	seed := int64(20)
	rng := rand.New(rand.NewSource(seed))
	var cq calendarQueue
	var h eventHeap
	id := int64(0)
	now := 0.0
	for step := 0; step < 2000; step++ {
		op := rng.Intn(10)
		switch {
		case op < 5:
			at := now + rng.Float64()*float64(rng.Intn(3)*1000+1)
			id++
			e := event{at: at, id: id}
			cq.enqueue(e)
			h.pushEvent(e)
			cq.checkInvariant(t, seed, step, "enqueue")
		case op < 8:
			t2 := now + rng.Float64()*50
			ce, cok := cq.popAtMost(t2)
			if len(h) > 0 && h.peek().at <= t2 {
				h.popEvent()
			}
			cq.checkInvariant(t, seed, step, "popAtMost")
			if cok {
				now = ce.at
			}
		default:
			ce, cok := cq.pop()
			if len(h) > 0 {
				h.popEvent()
			}
			cq.checkInvariant(t, seed, step, "pop")
			if cok {
				now = ce.at
			}
		}
	}
}
