package netsim

import (
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// TestTCPRTTUnfairness validates the classic TCP property that a
// shorter-RTT flow out-competes a longer-RTT flow at a shared bottleneck —
// throughput scales roughly inversely with RTT under synchronized loss.
func TestTCPRTTUnfairness(t *testing.T) {
	var sim Simulator
	rng := randx.New(31)
	bottleneck, err := NewLink(&sim, LinkConfig{
		Rate:  unit.MbpsOf(10),
		Delay: 0.005,
		Queue: 64 * unit.KB, // a small buffer keeps losses frequent and shared
		Loss:  LossModel{Rate: 0.0005},
	}, rng.Split("link"))
	if err != nil {
		t.Fatal(err)
	}
	// Two return paths with very different delays: total base RTTs of
	// ≈20 ms and ≈210 ms.
	fastAck, err := NewLink(&sim, LinkConfig{Rate: unit.MbpsOf(100), Delay: 0.005, Queue: unit.MB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	slowAck, err := NewLink(&sim, LinkConfig{Rate: unit.MbpsOf(100), Delay: 0.1, Queue: unit.MB}, nil)
	if err != nil {
		t.Fatal(err)
	}

	fastFlow := Flow{Src: Endpoint{Host: "near", Port: 1}, Dst: Endpoint{Host: "c", Port: 10}}
	slowFlow := Flow{Src: Endpoint{Host: "far", Port: 2}, Dst: Endpoint{Host: "c", Port: 11}}
	fastSnd, _ := NewTCPSender(&sim, bottleneck, fastFlow, 0, TCPConfig{})
	slowSnd, _ := NewTCPSender(&sim, bottleneck, slowFlow, 0, TCPConfig{})
	fastRcv := NewTCPReceiver(&sim, fastAck, fastFlow)
	slowRcv := NewTCPReceiver(&sim, slowAck, slowFlow)
	bottleneck.SetReceiver(func(p *Packet) {
		if p.Flow == fastFlow {
			fastRcv.OnData(p)
		} else {
			slowRcv.OnData(p)
		}
	})
	fastAck.SetReceiver(fastSnd.OnAck)
	slowAck.SetReceiver(slowSnd.OnAck)

	fastSnd.Start()
	slowSnd.Start()
	sim.RunUntil(60)

	fast := float64(fastSnd.AckedBytes())
	slow := float64(slowSnd.AckedBytes())
	if slow <= 0 {
		t.Fatal("long-RTT flow starved completely")
	}
	ratio := fast / slow
	if ratio < 1.5 {
		t.Errorf("short-RTT flow should clearly out-compete (×%.2f): fast %.1f MB vs slow %.1f MB",
			ratio, fast/1e6, slow/1e6)
	}
	// Both flows remain alive; the line stays busy.
	total := (fast + slow) * 8 / 60 / 1e6
	if total < 6 {
		t.Errorf("link underutilized under competition: %.2f Mbps", total)
	}
}
