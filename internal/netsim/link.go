package netsim

import (
	"fmt"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// LossModel configures random packet loss on a link: an i.i.d. component
// plus an optional Gilbert–Elliott two-state burst process, which is how
// loss actually presents on the satellite and WiMAX lines the paper calls
// out (Sec. 2.2).
type LossModel struct {
	// Rate is the stationary i.i.d. loss probability applied to every packet.
	Rate unit.LossRate
	// Burst enables the Gilbert–Elliott process in addition to Rate.
	Burst bool
	// PGoodToBad and PBadToGood are per-packet state transition
	// probabilities; BadLoss is the loss probability while in the bad state.
	PGoodToBad, PBadToGood float64
	BadLoss                unit.LossRate
}

// StationaryLoss returns the long-run loss probability implied by the model
// (the value an NDT-style measurement should converge to).
func (m LossModel) StationaryLoss() unit.LossRate {
	p := float64(m.Rate)
	if m.Burst && m.PGoodToBad > 0 && m.PBadToGood > 0 {
		fracBad := m.PGoodToBad / (m.PGoodToBad + m.PBadToGood)
		// Loss happens if the i.i.d. draw hits, or we are in the bad state
		// and the burst draw hits.
		p = p + (1-p)*fracBad*float64(m.BadLoss)
	}
	if p > 1 {
		p = 1
	}
	return unit.LossRate(p)
}

// LinkConfig describes one direction of an access link.
type LinkConfig struct {
	Rate       unit.Bitrate  // transmission capacity
	Delay      float64       // one-way propagation delay, seconds
	Queue      unit.ByteSize // drop-tail buffer size; 0 selects a default BDP-based buffer
	Loss       LossModel
	Name       string        // for diagnostics
	HeaderSize unit.ByteSize // per-packet overhead counted against capacity (default 40 B)
}

// LinkStats counts what happened on a link.
type LinkStats struct {
	Sent         int64 // packets offered to the link
	Delivered    int64
	DroppedQueue int64 // tail drops (congestion)
	DroppedLoss  int64 // random/burst loss
	BytesIn      unit.ByteSize
	BytesOut     unit.ByteSize
}

// LossRate reports the fraction of offered packets that were lost for any
// reason (queue or channel).
func (s LinkStats) LossRate() unit.LossRate {
	if s.Sent == 0 {
		return 0
	}
	return unit.LossRate(float64(s.DroppedQueue+s.DroppedLoss) / float64(s.Sent))
}

// Link is one direction of an access link: a fixed-rate serializer feeding a
// propagation delay, guarded by a drop-tail queue and a loss channel.
// Deliveries are handed to the receiver callback in timestamp order.
type Link struct {
	sim  *Simulator
	cfg  LinkConfig
	rng  *randx.Source
	recv func(*Packet)

	busyUntil   float64       // when the serializer frees up
	queuedBytes unit.ByteSize // bytes committed to the serializer but not yet on the wire
	inBadState  bool          // Gilbert–Elliott channel state

	stats LinkStats
}

// DefaultQueue sizes a drop-tail buffer at one bandwidth-delay product
// (against a nominal 100 ms RTT) bounded to [16 kB, 4 MB] — the shape of
// real CPE buffers.
func DefaultQueue(rate unit.Bitrate) unit.ByteSize {
	bdp := unit.VolumeAt(rate, 0.1)
	if bdp < 16*unit.KB {
		return 16 * unit.KB
	}
	if bdp > 4*unit.MB {
		return 4 * unit.MB
	}
	return bdp
}

// NewLink creates a link attached to the simulator. rng drives the loss
// processes; it must not be shared with other consumers if reproducibility
// matters.
func NewLink(sim *Simulator, cfg LinkConfig, rng *randx.Source) (*Link, error) {
	if sim == nil {
		return nil, fmt.Errorf("netsim: nil simulator")
	}
	if !cfg.Rate.IsValid() || cfg.Rate <= 0 {
		return nil, fmt.Errorf("netsim: link %q needs a positive rate, got %v", cfg.Name, cfg.Rate)
	}
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("netsim: link %q has negative delay", cfg.Name)
	}
	if !cfg.Loss.Rate.IsValid() {
		return nil, fmt.Errorf("netsim: link %q has invalid loss rate", cfg.Name)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue(cfg.Rate)
	}
	if cfg.HeaderSize <= 0 {
		cfg.HeaderSize = 40 * unit.Byte
	}
	return &Link{sim: sim, cfg: cfg, rng: rng}, nil
}

// SetReceiver installs the delivery callback. Packets surviving the queue
// and the loss channel arrive here after serialization + propagation.
func (l *Link) SetReceiver(fn func(*Packet)) { l.recv = fn }

// Config returns the link's configuration (after defaulting).
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Send offers a packet to the link at the current virtual time.
func (l *Link) Send(p *Packet) {
	l.stats.Sent++
	l.stats.BytesIn += p.Size
	// Drop-tail admission on the un-serialized backlog.
	if l.queuedBytes+p.Size > l.cfg.Queue {
		l.stats.DroppedQueue++
		return
	}
	wire := p.Size + l.cfg.HeaderSize
	serialize := float64(wire) * 8 / l.cfg.Rate.BitsPerSecond()
	start := l.sim.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	depart := start + serialize
	l.busyUntil = depart
	l.queuedBytes += p.Size
	l.sim.At(depart, func() {
		l.queuedBytes -= p.Size
		if l.dropByChannel() {
			l.stats.DroppedLoss++
			return
		}
		l.stats.Delivered++
		l.stats.BytesOut += p.Size
		if l.recv != nil {
			l.sim.At(depart+l.cfg.Delay, func() { l.recv(p) })
		}
	})
}

// dropByChannel samples the loss processes for one packet.
func (l *Link) dropByChannel() bool {
	if l.rng == nil {
		return false
	}
	m := l.cfg.Loss
	if m.Burst {
		if l.inBadState {
			if l.rng.Bool(m.PBadToGood) {
				l.inBadState = false
			}
		} else if l.rng.Bool(m.PGoodToBad) {
			l.inBadState = true
		}
		if l.inBadState && l.rng.Bool(float64(m.BadLoss)) {
			return true
		}
	}
	return l.rng.Bool(float64(m.Rate))
}

// QueueDelay reports the current queuing delay a newly admitted packet would
// experience before serialization begins.
func (l *Link) QueueDelay() float64 {
	d := l.busyUntil - l.sim.Now()
	if d < 0 {
		return 0
	}
	return d
}
