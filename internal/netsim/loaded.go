package netsim

import (
	"fmt"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// LoadedRTTResult reports a latency-under-load (bufferbloat) measurement:
// the RTT of small probes while a saturating TCP download fills the
// downstream queue. The FCC/SamKnows panels measure exactly this; it is
// the drop-tail buffer, not the propagation path, that dominates the
// loaded latency of over-buffered residential gear.
type LoadedRTTResult struct {
	IdleRTT    float64 // probe RTT on the idle line, seconds
	LoadedRTT  float64 // mean probe RTT during the saturating download
	Inflation  float64 // LoadedRTT / IdleRTT
	Throughput unit.Bitrate
	Probes     int // probes that completed under load
}

// MeasureLoadedRTT saturates the downstream link with a TCP transfer and
// probes the round trip every 200 ms, reporting the latency inflation the
// buffer causes. Probes begin after a 2-second warm-up so slow start does
// not dilute the steady-state figure.
func MeasureLoadedRTT(line AccessLine, duration float64, rng *randx.Source) (LoadedRTTResult, error) {
	if err := line.Validate(); err != nil {
		return LoadedRTTResult{}, err
	}
	if duration <= 0 {
		duration = 10
	}
	idle, err := measureRTT(line, 5)
	if err != nil {
		return LoadedRTTResult{}, err
	}

	sim := &Simulator{}
	down, err := NewLink(sim, line.Down, rng.Split("down"))
	if err != nil {
		return LoadedRTTResult{}, err
	}
	up, err := NewLink(sim, line.Up, rng.Split("up"))
	if err != nil {
		return LoadedRTTResult{}, err
	}

	flow := Flow{Src: Endpoint{Host: "server", Port: 5001}, Dst: Endpoint{Host: "client", Port: 40001}}
	sender, err := NewTCPSender(sim, down, flow, 0, TCPConfig{})
	if err != nil {
		return LoadedRTTResult{}, err
	}
	recv := NewTCPReceiver(sim, up, flow)

	var rttSum float64
	var rttCount int
	const warmup = 2.0

	down.SetReceiver(func(p *Packet) {
		if p.Probe {
			// Echo arriving back at the client.
			if sim.Now() >= warmup {
				rttSum += sim.Now() - p.SentAt
				rttCount++
			}
			return
		}
		recv.OnData(p)
	})
	up.SetReceiver(func(p *Packet) {
		if p.Probe {
			// Server echoes the probe down the loaded link.
			down.Send(&Packet{Flow: p.Flow.Reverse(), Size: p.Size, SentAt: p.SentAt, Probe: true})
			return
		}
		sender.OnAck(p)
	})

	// Probe train every 200 ms for the whole test.
	for t := 0.2; t < duration; t += 0.2 {
		sim.At(t, func() {
			up.Send(&Packet{Size: 64 * unit.Byte, SentAt: sim.Now(), Probe: true})
		})
	}
	sender.Start()
	sim.RunUntil(duration)

	if rttCount == 0 {
		return LoadedRTTResult{}, fmt.Errorf("netsim: no probe survived the loaded line")
	}
	res := LoadedRTTResult{
		IdleRTT:    idle,
		LoadedRTT:  rttSum / float64(rttCount),
		Throughput: sender.Goodput(duration),
		Probes:     rttCount,
	}
	if res.IdleRTT > 0 {
		res.Inflation = res.LoadedRTT / res.IdleRTT
	}
	return res, nil
}
