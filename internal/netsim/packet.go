package netsim

import (
	"fmt"

	"github.com/nwca/broadband/internal/unit"
)

// Endpoint identifies one side of a flow. Following the gopacket idiom,
// endpoints are small comparable values usable directly as map keys.
type Endpoint struct {
	Host string
	Port uint16
}

// String renders the endpoint as host:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Host, e.Port) }

// Flow is an ordered (source, destination) endpoint pair. Like gopacket's
// Flow it is comparable, so per-flow state tables key on it directly.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow in the opposite direction (for ACK paths).
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders the flow as "src->dst".
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// Packet is the unit of transfer in the packet-level simulator. Sequence and
// acknowledgment numbers are in bytes, mirroring TCP semantics closely
// enough for congestion behavior to be faithful.
type Packet struct {
	Flow   Flow
	Seq    int64         // first byte carried (data packets)
	Size   unit.ByteSize // wire size including headers
	IsAck  bool
	AckSeq int64   // cumulative acknowledgment (next byte expected)
	SentAt float64 // virtual send time, for RTT sampling
	Probe  bool    // latency probe (ping) rather than load-bearing data
}
