package netsim

import (
	"testing"
	"testing/quick"
)

func TestSimulatorOrdering(t *testing.T) {
	var sim Simulator
	var order []int
	sim.At(3, func() { order = append(order, 3) })
	sim.At(1, func() { order = append(order, 1) })
	sim.At(2, func() { order = append(order, 2) })
	end := sim.Run()
	if end != 3 {
		t.Errorf("final time = %v, want 3", end)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSimulatorFIFOAtSameTime(t *testing.T) {
	var sim Simulator
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.At(5, func() { order = append(order, i) })
	}
	sim.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSimulatorAfterAndNow(t *testing.T) {
	var sim Simulator
	var sawAt float64
	sim.After(2, func() {
		sawAt = sim.Now()
		sim.After(3, func() { sawAt = sim.Now() })
	})
	sim.Run()
	if sawAt != 5 {
		t.Errorf("nested After fired at %v, want 5", sawAt)
	}
}

func TestSimulatorPastScheduling(t *testing.T) {
	var sim Simulator
	fired := -1.0
	sim.At(10, func() {
		sim.At(3, func() { fired = sim.Now() }) // in the past: runs "now"
	})
	sim.Run()
	if fired != 10 {
		t.Errorf("past event fired at %v, want 10", fired)
	}
	// Negative delay clamps to zero.
	var sim2 Simulator
	sim2.After(-5, func() { fired = sim2.Now() })
	sim2.Run()
	if fired != 0 {
		t.Errorf("negative-delay event fired at %v, want 0", fired)
	}
}

func TestRunUntil(t *testing.T) {
	var sim Simulator
	count := 0
	for i := 1; i <= 10; i++ {
		sim.At(float64(i), func() { count++ })
	}
	sim.RunUntil(5.5)
	if count != 5 {
		t.Errorf("ran %d events, want 5", count)
	}
	if sim.Now() != 5.5 {
		t.Errorf("Now() = %v, want 5.5", sim.Now())
	}
	if sim.Pending() != 5 {
		t.Errorf("Pending() = %d, want 5", sim.Pending())
	}
	sim.RunUntil(100)
	if count != 10 || sim.Now() != 100 {
		t.Errorf("after draining: count=%d now=%v", count, sim.Now())
	}
}

func TestHalt(t *testing.T) {
	var sim Simulator
	count := 0
	sim.At(1, func() { count++; sim.Halt() })
	sim.At(2, func() { count++ })
	sim.Run()
	if count != 1 {
		t.Errorf("Halt did not stop the loop: count=%d", count)
	}
	if sim.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", sim.Pending())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	// However events are scheduled (including re-entrant scheduling), the
	// observed clock never decreases.
	f := func(delays []uint16) bool {
		var sim Simulator
		last := -1.0
		ok := true
		for _, d := range delays {
			d := float64(d) / 100
			sim.At(d, func() {
				if sim.Now() < last {
					ok = false
				}
				last = sim.Now()
				sim.After(0.5, func() {
					if sim.Now() < last {
						ok = false
					}
					last = sim.Now()
				})
			})
		}
		sim.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
