package chaos

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

func TestSlowBodyDeliversEverything(t *testing.T) {
	data := bytes.Repeat([]byte("slowly "), 100)
	r := SlowBody(data, 16, time.Microsecond)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %d bytes, want %d, content mismatch", len(got), len(data))
	}
}

func TestSlowBodyChunks(t *testing.T) {
	r := SlowBody([]byte("abcdefgh"), 3, 0)
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("first read = %d, %v; want 3, nil", n, err)
	}
}

func TestBrokenBodyDisconnects(t *testing.T) {
	data := []byte("0123456789")
	r := BrokenBody(data, 4)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrClientGone) {
		t.Fatalf("err = %v, want ErrClientGone", err)
	}
	if !bytes.Equal(got, data[:4]) {
		t.Fatalf("delivered %q before dying, want %q", got, data[:4])
	}
	// A zero-keep body dies on the first read.
	if _, err := BrokenBody(data, 0).Read(make([]byte, 1)); !errors.Is(err, ErrClientGone) {
		t.Fatalf("zero-keep first read err = %v", err)
	}
}

func TestCorruptGzipBytesBreaksDecompression(t *testing.T) {
	in := New(Config{Seed: 42})
	payload := GzipBytes(bytes.Repeat([]byte("users,rows,etc\n"), 200))

	// Sanity: the uncorrupted payload decompresses.
	if zr, err := gzip.NewReader(bytes.NewReader(payload)); err != nil {
		t.Fatalf("clean payload: %v", err)
	} else if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("clean payload read: %v", err)
	}

	corrupt, off := in.CorruptGzipBytes("users.csv.gz", payload)
	if off < 10 || off >= len(payload) {
		t.Fatalf("flip offset %d out of range", off)
	}
	if bytes.Equal(corrupt, payload) {
		t.Fatal("payload unchanged")
	}
	// The original is untouched (the flip copies).
	if clean := GzipBytes(bytes.Repeat([]byte("users,rows,etc\n"), 200)); !bytes.Equal(payload, clean) {
		t.Fatal("CorruptGzipBytes mutated its input")
	}
	zr, err := gzip.NewReader(bytes.NewReader(corrupt))
	if err == nil {
		_, err = io.ReadAll(zr)
	}
	if err == nil {
		t.Fatal("corrupted payload decompressed cleanly")
	}

	// Determinism: same seed and label, same flip.
	_, off2 := New(Config{Seed: 42}).CorruptGzipBytes("users.csv.gz", payload)
	if off2 != off {
		t.Fatalf("offset %d on replay, want %d", off2, off)
	}
	// Tiny payloads pass through unchanged.
	if out, o := in.CorruptGzipBytes("tiny", []byte("short")); o != -1 || string(out) != "short" {
		t.Fatalf("tiny payload: off %d, %q", o, out)
	}
}

func TestHTTPFaultPlanDeterminism(t *testing.T) {
	a := New(Config{Seed: 9}).HTTPFaultPlan(64, 0.5)
	b := New(Config{Seed: 9}).HTTPFaultPlan(64, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := New(Config{Seed: 10}).HTTPFaultPlan(64, 0.5)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans (vanishingly unlikely)")
	}
	counts := map[HTTPFault]int{}
	for _, f := range a {
		counts[f]++
	}
	// At rate 0.5 over 64 requests every class should appear; a plan that
	// never faults (or always does) means the rate wiring broke.
	if counts[HTTPNone] == 0 {
		t.Fatal("no clean requests in plan")
	}
	if counts[HTTPSlowLoris]+counts[HTTPDisconnect]+counts[HTTPCorruptGzip] == 0 {
		t.Fatal("no faults in plan at rate 0.5")
	}
	// Zero rate is all clean.
	for i, f := range New(Config{Seed: 9}).HTTPFaultPlan(16, 0) {
		if f != HTTPNone {
			t.Fatalf("rate 0 plan has fault %v at %d", f, i)
		}
	}
}
