package chaos

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/nwca/broadband/internal/fsx"
	"github.com/nwca/broadband/internal/randx"
)

// tableSpec describes where each fault class can land in one table. Column
// indices are 0-based positions in the CSV schema (see internal/dataset).
type tableSpec struct {
	cols int
	// resetCols are counter-derived rate fields a reset drives negative.
	resetCols []int
	// wrapCols are rate fields a 32-bit wraparound inflates.
	wrapCols []int
	// yearCol is the observation-year column (-1 = table has no clock).
	yearCol int
	// nanCols are float fields where "NaN" parses and must be caught at
	// domain validation rather than at parse time.
	nanCols []int
	// garbageCols are all parsed (non-string) fields.
	garbageCols []int
}

// tableSpecs maps the dataset base names to their fault geometry.
var tableSpecs = map[string]tableSpec{
	"users.csv": {
		cols:        24,
		resetCols:   []int{11, 12, 16, 17, 18, 19},
		wrapCols:    []int{11, 16, 17},
		yearCol:     3,
		nanCols:     []int{11, 12, 13, 16, 17, 18, 19},
		garbageCols: []int{0, 2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23},
	},
	"switches.csv": {
		cols:        14,
		resetCols:   []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
		wrapCols:    []int{4, 5, 6, 7},
		yearCol:     -1,
		nanCols:     []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
		garbageCols: []int{0, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
	},
	"plans.csv": {
		cols:        9,
		resetCols:   []int{2, 3},
		wrapCols:    []int{2},
		yearCol:     -1,
		nanCols:     []int{2, 3, 5},
		garbageCols: []int{2, 3, 4, 5, 6, 7, 8},
	},
}

// Tables lists the dataset base names PerturbDir perturbs, in order.
var Tables = []string{"users.csv", "switches.csv", "plans.csv"}

// PerturbCSV applies the configured row-level faults to one table's CSV
// bytes and returns the perturbed bytes plus the injection log. base must
// be one of Tables — it selects the fault geometry and keys the RNG
// derivation, so the fault pattern is a pure function of (seed, base, row).
func (in *Injector) PerturbCSV(base string, data []byte) ([]byte, *Log, error) {
	log := &Log{}
	out, err := in.perturbCSV(base, data, log)
	return out, log, err
}

func (in *Injector) perturbCSV(base string, data []byte, log *Log) ([]byte, error) {
	spec, ok := tableSpecs[base]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown table %q", base)
	}
	faults := in.rowFaultsFor(spec)
	if len(faults) == 0 || in.cfg.Rate <= 0 {
		return data, nil
	}
	s := string(data)
	trailing := strings.HasSuffix(s, "\n")
	if trailing {
		s = s[:len(s)-1]
	}
	lines := strings.Split(s, "\n")
	out := make([]string, 0, len(lines)+8)
	if len(lines) > 0 {
		out = append(out, lines[0]) // the header is never perturbed
	}
	for k := 1; k < len(lines); {
		row := lines[k]
		line := k + 1 // physical 1-based row; header is row 1
		rng := in.root.SplitN("row|"+base, line)
		if !rng.Bool(in.cfg.Rate) {
			out = append(out, row)
			k++
			continue
		}
		switch f := faults[rng.IntN(len(faults))]; f {
		case DropRow:
			log.add(base, line, f, "")
			k++
		case DuplicateRow:
			out = append(out, row, row)
			log.add(base, line, f, "")
			k++
		case SwapRows:
			if k+1 < len(lines) {
				out = append(out, lines[k+1], row)
				log.add(base, line, f, fmt.Sprintf("swapped with row %d", line+1))
				k += 2
			} else {
				out = append(out, row) // no successor: nothing to swap
				k++
			}
		default:
			mut, detail, ok := mutateRow(rng, f, spec, row)
			if ok {
				out = append(out, mut)
				log.add(base, line, f, detail)
			} else {
				out = append(out, row)
			}
			k++
		}
	}
	res := strings.Join(out, "\n")
	if trailing {
		res += "\n"
	}
	return []byte(res), nil
}

// mutateRow applies a field-level fault to one CSV row. Rows whose naive
// comma split disagrees with the schema (a quoted field containing a comma)
// are left untouched — determinism is preserved because the decision
// depends only on the row's own bytes.
func mutateRow(rng *randx.Source, f Fault, spec tableSpec, row string) (string, string, bool) {
	fields := strings.Split(row, ",")
	if len(fields) != spec.cols {
		return row, "", false
	}
	var col int
	var v string
	switch f {
	case CounterReset:
		col = spec.resetCols[rng.IntN(len(spec.resetCols))]
		v = "-" + strconv.Itoa(1+rng.IntN(900))
	case Wraparound:
		col = spec.wrapCols[rng.IntN(len(spec.wrapCols))]
		v = "4294967296" // 2^32 Mbps: an unmistakable 32-bit counter wrap
	case ClockSkew:
		col = spec.yearCol
		skews := []string{"1970", "2038", "2069"}
		v = skews[rng.IntN(len(skews))]
	case GarbageField:
		col = spec.garbageCols[rng.IntN(len(spec.garbageCols))]
		if containsInt(spec.nanCols, col) && rng.Bool(0.5) {
			v = "NaN"
		} else {
			garbage := []string{"??", "x7!", "1e999", ""}
			v = garbage[rng.IntN(len(garbage))]
		}
	default:
		return row, "", false
	}
	fields[col] = v
	return strings.Join(fields, ","), fmt.Sprintf("col %d <- %q", col, v), true
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// PerturbDir perturbs a dataset directory in place: each table (plain or
// .gz) gets the configured row faults, then possibly a file-level fault —
// shard truncation or, for gzip transport, a corrupt member. Rewrites are
// atomic (temp file + rename), so even the injector cannot leave a
// half-written file; the injected truncation is exact and logged. The log
// is returned even on error.
func (in *Injector) PerturbDir(dir string) (*Log, error) {
	log := &Log{}
	for _, base := range Tables {
		if err := in.perturbFile(dir, base, log); err != nil {
			return log, err
		}
	}
	return log, nil
}

func (in *Injector) perturbFile(dir, base string, log *Log) error {
	path := filepath.Join(dir, base)
	gz := false
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		path += ".gz"
		gz = true
	} else if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := raw
	if gz {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("chaos: %s: %w", path, err)
		}
		if text, err = io.ReadAll(zr); err != nil {
			return fmt.Errorf("chaos: %s: %w", path, err)
		}
		if err := zr.Close(); err != nil {
			return fmt.Errorf("chaos: %s: %w", path, err)
		}
	}
	text, err = in.perturbCSV(base, text, log)
	if err != nil {
		return err
	}
	out := text
	if gz {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(text); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		out = buf.Bytes()
	}

	// File-level faults. The draw order is fixed (truncate, then corrupt)
	// so the pattern is independent of which fault actually applies.
	frng := in.root.Split("shard|" + base)
	truncate := frng.Bool(in.cfg.TruncateProb)
	corrupt := frng.Bool(in.cfg.CorruptProb) && gz
	switch {
	case corrupt && len(out) > 20:
		// Flip one byte past the 10-byte member header: the deflate stream
		// or the trailing CRC can no longer validate.
		off := 10 + frng.IntN(len(out)-18)
		out = append([]byte(nil), out...)
		out[off] ^= 0xff
		log.add(base, 0, CorruptGzip, fmt.Sprintf("flipped byte at offset %d", off))
	case truncate && len(out) > 1:
		total := len(out)
		keep := int(float64(total) * (0.3 + 0.6*frng.Float64()))
		if keep < 1 {
			keep = 1
		}
		out = out[:keep]
		log.add(base, 0, TruncateShard, fmt.Sprintf("cut to %d of %d bytes", keep, total))
	}
	return fsx.WriteFileAtomic(path, out, 0o644)
}
