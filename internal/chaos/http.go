package chaos

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"time"
)

// HTTP fault layer. The file faults in perturb.go model a dirty panel at
// rest; these model a hostile transport: clients that dribble bytes
// forever (slow loris), disconnect mid-upload, or deliver gzip members
// whose checksums cannot validate. A server under test wraps its chaos
// clients' request bodies with these readers; the soak suite in
// internal/serve drives all of them concurrently against a live listener.

// HTTPFault enumerates the client-side fault classes of an upload storm.
type HTTPFault int

const (
	// HTTPNone is a well-behaved request.
	HTTPNone HTTPFault = iota
	// HTTPSlowLoris is a body delivered a few bytes at a time with delays
	// between chunks — the classic connection-hoarding attack. The server
	// must bound it with read deadlines, not wait it out.
	HTTPSlowLoris
	// HTTPDisconnect is a client that drops the connection partway through
	// its upload. The server must discard the partial body, never store it.
	HTTPDisconnect
	// HTTPCorruptGzip is an upload whose gzip payload has a flipped byte:
	// the deflate stream or trailing CRC cannot validate. The server's
	// quarantine boundary must reject it as a typed fault, not crash.
	HTTPCorruptGzip
)

var httpFaultNames = [...]string{"none", "slow-loris", "disconnect", "corrupt-gzip"}

// String names the fault the way storm logs render it.
func (f HTTPFault) String() string {
	if int(f) < len(httpFaultNames) {
		return httpFaultNames[f]
	}
	return fmt.Sprintf("httpfault(%d)", int(f))
}

// HTTPFaultPlan deals a deterministic fault class to each of n requests:
// request i draws from (seed, "http|fault", i) alone, so the same seed
// produces the same storm whatever order the requests actually fire in.
// rate is the per-request probability of any fault; faulty requests split
// uniformly across the three classes.
func (in *Injector) HTTPFaultPlan(n int, rate float64) []HTTPFault {
	plan := make([]HTTPFault, n)
	for i := range plan {
		rng := in.root.SplitN("http|fault", i+1)
		if !rng.Bool(rate) {
			continue
		}
		plan[i] = HTTPFault(1 + rng.IntN(3))
	}
	return plan
}

// slowBody dribbles a payload.
type slowBody struct {
	data  []byte
	chunk int
	delay time.Duration
}

// SlowBody returns a reader that delivers data at most chunk bytes per
// Read with delay before every chunk — a slow-loris request body. The
// total transfer time is roughly len(data)/chunk × delay; tests size the
// payload so a correctly-deadlined server cuts the request off first (or
// keep it under the deadline to model a merely slow client).
func SlowBody(data []byte, chunk int, delay time.Duration) io.Reader {
	if chunk < 1 {
		chunk = 1
	}
	return &slowBody{data: data, chunk: chunk, delay: delay}
}

func (s *slowBody) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(s.delay)
	n := s.chunk
	if n > len(s.data) {
		n = len(s.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}

// ErrClientGone is the error a BrokenBody reader fails with — what an
// http.Client surfaces when a request body dies mid-upload, standing in
// for the peer disconnecting.
var ErrClientGone = errors.New("chaos: client disconnected mid-upload")

// brokenBody delivers a prefix, then dies.
type brokenBody struct {
	data []byte
	left int
}

// BrokenBody returns a reader that delivers the first keep bytes of data
// and then fails permanently with ErrClientGone — a mid-upload disconnect
// as seen from the request-body side.
func BrokenBody(data []byte, keep int) io.Reader {
	if keep > len(data) {
		keep = len(data)
	}
	if keep < 0 {
		keep = 0
	}
	return &brokenBody{data: data[:keep], left: keep}
}

func (b *brokenBody) Read(p []byte) (int, error) {
	if b.left == 0 {
		return 0, ErrClientGone
	}
	n := copy(p, b.data[len(b.data)-b.left:])
	b.left -= n
	return n, nil
}

// GzipBytes compresses data as one gzip member — the well-formed upload
// payload the corruption below perturbs.
func GzipBytes(data []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// CorruptGzipBytes returns a copy of a gzip payload with one byte flipped
// past the member header, chosen deterministically from (seed, label) —
// the in-flight analogue of PerturbDir's CorruptGzip file fault. The
// deflate stream or its trailing CRC can no longer validate, so any
// decompressing consumer must fail; payloads too short to corrupt are
// returned unchanged. The second return is the flipped offset (-1 when
// unchanged), for storm logs.
func (in *Injector) CorruptGzipBytes(label string, data []byte) ([]byte, int) {
	if len(data) <= 20 {
		return data, -1
	}
	rng := in.root.Split("http|gzip|" + label)
	off := 10 + rng.IntN(len(data)-18)
	out := append([]byte(nil), data...)
	out[off] ^= 0xff
	return out, off
}
