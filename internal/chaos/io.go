package chaos

import (
	"fmt"
	"io"
)

// FaultError is the typed error the flaky I/O wrappers inject. It
// identifies the operation, the stream and the 1-based call index, so a
// failure is replayable from the seed alone.
type FaultError struct {
	Op   string // "read" or "write"
	File string
	Call int
}

// Error renders "chaos: injected read fault on users.csv (call 3)".
func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault on %s (call %d)", e.Op, e.File, e.Call)
}

// flakyReader injects deterministic transient read failures: whether call
// n fails is a pure function of (seed, file, n), independent of buffer
// sizes the caller happens to use for other streams.
type flakyReader struct {
	in   *Injector
	r    io.Reader
	file string
	rate float64
	call int
}

// FlakyReader wraps r so each Read call fails with a *FaultError with the
// given probability, deterministically in the injector seed and the call
// index. Failed calls consume nothing from the underlying stream — a
// retrying caller sees the same bytes a fault-free run would.
func (in *Injector) FlakyReader(file string, r io.Reader, rate float64) io.Reader {
	return &flakyReader{in: in, r: r, file: file, rate: rate}
}

func (f *flakyReader) Read(p []byte) (int, error) {
	f.call++
	if f.in.root.SplitN("io|read|"+f.file, f.call).Bool(f.rate) {
		return 0, &FaultError{Op: "read", File: f.file, Call: f.call}
	}
	return f.r.Read(p)
}

// flakyWriter is flakyReader for the write side.
type flakyWriter struct {
	in   *Injector
	w    io.Writer
	file string
	rate float64
	call int
}

// FlakyWriter wraps w so each Write call fails with a *FaultError with the
// given probability, deterministically in the injector seed and the call
// index. Failed calls write nothing.
func (in *Injector) FlakyWriter(file string, w io.Writer, rate float64) io.Writer {
	return &flakyWriter{in: in, w: w, file: file, rate: rate}
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.call++
	if f.in.root.SplitN("io|write|"+f.file, f.call).Bool(f.rate) {
		return 0, &FaultError{Op: "write", File: f.file, Call: f.call}
	}
	return f.w.Write(p)
}
