// Package chaos is the deterministic fault injector behind the pipeline's
// robustness tests: it perturbs dataset files and I/O streams with the
// pathologies real measurement panels carry — dropped, duplicated and
// reordered samples, counter resets and wraparounds, clock skew, garbage
// fields, truncated shards, corrupt gzip members, and transient I/O errors.
//
// Determinism is the contract. Every fault decision derives from the
// injector seed, the table name and the row (or I/O call) index through the
// same splittable-RNG scheme the world generator uses, so the same seed
// produces a byte-identical fault pattern — in the perturbed files and in
// the event log — whatever directory the dataset lives in and however many
// times the run repeats. That is what lets a chaos failure be replayed
// exactly from nothing but its seed.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/randx"
)

// Fault enumerates the injectable fault classes.
type Fault int

const (
	// DropRow removes a data row — a lost sample. Invisible to ingestion
	// by design (a panel cannot know what was never uploaded); visible
	// only in the injection log.
	DropRow Fault = iota
	// DuplicateRow emits a data row twice — a re-uploaded sample. The
	// robust loader demotes duplicate user IDs; duplicated survey rows
	// are visible only in the log.
	DuplicateRow
	// SwapRows exchanges a row with its successor — out-of-order arrival.
	// Records are order-independent, so this perturbs transport without
	// perturbing semantics.
	SwapRows
	// CounterReset rewrites a cumulative-counter-derived field to a
	// negative value, the signature of a counter that reset mid-window.
	CounterReset
	// Wraparound rewrites a rate field to an absurd magnitude (a 32-bit
	// counter wrap).
	Wraparound
	// ClockSkew moves a row's observation year decades outside the panel
	// window.
	ClockSkew
	// GarbageField replaces a parsed field with NaN or unparseable bytes.
	GarbageField
	// TruncateShard cuts a table file off mid-stream.
	TruncateShard
	// CorruptGzip flips a byte inside a gzip member, breaking the deflate
	// stream or its checksum.
	CorruptGzip
	// ReadFault is a transient error injected by a wrapped io.Reader.
	ReadFault
	// WriteFault is a transient error injected by a wrapped io.Writer.
	WriteFault
)

var faultNames = [...]string{
	"drop-row", "duplicate-row", "swap-rows", "counter-reset", "wraparound",
	"clock-skew", "garbage-field", "truncate-shard", "corrupt-gzip",
	"read-fault", "write-fault",
}

// String names the fault the way logs and reports render it.
func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// MarshalJSON renders the fault as its name.
func (f Fault) MarshalJSON() ([]byte, error) {
	return []byte(`"` + f.String() + `"`), nil
}

// RowFaults lists the row-level fault classes PerturbDir can inject.
var RowFaults = []Fault{
	DropRow, DuplicateRow, SwapRows, CounterReset, Wraparound, ClockSkew, GarbageField,
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every fault decision; equal seeds produce byte-identical
	// fault patterns.
	Seed uint64
	// Rate is the per-row fault probability in [0, 1].
	Rate float64
	// Faults restricts the row-level classes injected (nil or empty = all
	// of RowFaults). Classes inapplicable to a table (ClockSkew outside
	// the users table) are skipped there.
	Faults []Fault
	// TruncateProb is the per-table probability of shard truncation.
	TruncateProb float64
	// CorruptProb is the per-table probability of gzip corruption
	// (gzip-transported tables only).
	CorruptProb float64
}

// Event is one injected fault.
type Event struct {
	// File is the table base name (users.csv, switches.csv, plans.csv).
	File string `json:"file"`
	// Row is the 1-based physical row in the pre-perturbation file (the
	// header is row 1); 0 for file-level and I/O faults.
	Row int `json:"row,omitempty"`
	// Fault is the injected class.
	Fault Fault `json:"fault"`
	// Detail describes the concrete mutation ("col 16 <- -412").
	Detail string `json:"detail,omitempty"`
}

func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.File)
	if e.Row > 0 {
		fmt.Fprintf(&b, " row %d", e.Row)
	}
	fmt.Fprintf(&b, " [%s]", e.Fault)
	if e.Detail != "" {
		b.WriteString(": ")
		b.WriteString(e.Detail)
	}
	return b.String()
}

// Log records every injected fault in injection order. The log is part of
// the deterministic output: same seed, same log.
type Log struct {
	Events []Event `json:"events"`
}

func (l *Log) add(file string, row int, f Fault, detail string) {
	l.Events = append(l.Events, Event{File: file, Row: row, Fault: f, Detail: detail})
}

// Counts tallies the injected faults per class.
func (l *Log) Counts() map[Fault]int {
	out := make(map[Fault]int)
	for _, e := range l.Events {
		out[e.Fault]++
	}
	return out
}

// Render formats the log for humans: the aggregate line plus up to
// maxEvents individual injections.
func (l *Log) Render() string {
	var b strings.Builder
	counts := l.Counts()
	classes := make([]Fault, 0, len(counts))
	for f := range counts {
		classes = append(classes, f)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	parts := make([]string, 0, len(classes))
	for _, f := range classes {
		parts = append(parts, fmt.Sprintf("%d %s", counts[f], f))
	}
	fmt.Fprintf(&b, "chaos: injected %d faults", len(l.Events))
	if len(parts) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	b.WriteString("\n")
	const maxEvents = 20
	for i, e := range l.Events {
		if i == maxEvents {
			fmt.Fprintf(&b, "  ... and %d more\n", len(l.Events)-maxEvents)
			break
		}
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Injector injects deterministic faults. Safe for concurrent use: all
// state is the immutable config and the root RNG seed (splits never mutate
// the parent).
type Injector struct {
	cfg  Config
	root *randx.Source
}

// New returns an injector for the configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, root: randx.New(cfg.Seed)}
}

// rowFaultsFor resolves the enabled row-level classes for a table spec.
func (in *Injector) rowFaultsFor(spec tableSpec) []Fault {
	enabled := in.cfg.Faults
	if len(enabled) == 0 {
		enabled = RowFaults
	}
	out := make([]Fault, 0, len(enabled))
	for _, f := range enabled {
		if f == ClockSkew && spec.yearCol < 0 {
			continue
		}
		switch f {
		case DropRow, DuplicateRow, SwapRows, CounterReset, Wraparound, ClockSkew, GarbageField:
			out = append(out, f)
		}
	}
	return out
}
