package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/synth"
)

// The fixture world is built once and saved per test into fresh temp dirs,
// so each test perturbs a pristine copy.
var (
	fixtureOnce sync.Once
	fixtureData *dataset.Dataset
	fixtureErr  error
)

func fixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	fixtureOnce.Do(func() {
		w, err := synth.Build(synth.Config{
			Seed: 99, Users: 220, FCCUsers: 60, Days: 1, SwitchTarget: 60,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureData = &w.Data
	})
	if fixtureErr != nil {
		t.Fatalf("fixture world: %v", fixtureErr)
	}
	return fixtureData
}

// saveFixture writes the fixture dataset into a fresh directory.
func saveFixture(t *testing.T, gz bool) string {
	t.Helper()
	dir := t.TempDir()
	if err := fixture(t).SaveDirWith(dir, dataset.SaveOptions{Gzip: gz}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func readTables(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, base := range Tables {
		path := filepath.Join(dir, base)
		raw, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			raw, err = os.ReadFile(path + ".gz")
		}
		if err != nil {
			t.Fatal(err)
		}
		out[base] = raw
	}
	return out
}

// TestChaosSeedDeterminism pins the injector's core contract: the same
// seed produces a byte-identical fault pattern — perturbed files and event
// log — on independent copies of the same dataset, and a different seed
// produces a different pattern.
func TestChaosSeedDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Rate: 0.2, TruncateProb: 0, CorruptProb: 0}
	dirA, dirB := saveFixture(t, false), saveFixture(t, false)
	logA, err := New(cfg).PerturbDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	logB, err := New(cfg).PerturbDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(logA.Events) == 0 {
		t.Fatal("no faults injected at rate 0.2; the fixture is too small or the injector is broken")
	}
	ja, _ := json.Marshal(logA)
	jb, _ := json.Marshal(logB)
	if !bytes.Equal(ja, jb) {
		t.Errorf("same seed produced different fault logs:\n%s\nvs\n%s", ja, jb)
	}
	ta, tb := readTables(t, dirA), readTables(t, dirB)
	for _, base := range Tables {
		if !bytes.Equal(ta[base], tb[base]) {
			t.Errorf("same seed produced different bytes for %s", base)
		}
	}

	dirC := saveFixture(t, false)
	logC, err := New(Config{Seed: 8, Rate: 0.2}).PerturbDir(dirC)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(logC)
	if bytes.Equal(ja, jc) {
		t.Error("different seeds produced identical fault logs")
	}
}

// TestChaosFaultClassesThroughQuarantine drives every row-level fault
// class, alone, through the robust loader and checks the quarantine sees
// exactly what the fault model promises. The budget is disabled so high
// single-class rates cannot short-circuit the load.
func TestChaosFaultClassesThroughQuarantine(t *testing.T) {
	base := fixture(t)
	baseRows := len(base.Users) + len(base.Switches) + len(base.Plans)
	noBudget := dataset.QuarantineOptions{MaxBadFrac: 1}

	cases := []struct {
		fault Fault
		check func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log)
	}{
		{CounterReset, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			counts := rep.Counts()
			if counts[dataset.FaultDomain] == 0 {
				t.Error("counter resets (negative rates) must quarantine as domain faults")
			}
		}},
		{Wraparound, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			if rep.Counts()[dataset.FaultDomain] == 0 {
				t.Error("wraparounds (absurd rates) must quarantine as domain faults")
			}
		}},
		{ClockSkew, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			if rep.Counts()[dataset.FaultDomain] == 0 {
				t.Error("clock skew (year outside the panel window) must quarantine as a domain fault")
			}
			for _, u := range d.Users {
				if u.Year < 1995 || u.Year > 2035 {
					t.Fatalf("skewed year %d survived into the loaded dataset", u.Year)
				}
			}
		}},
		{GarbageField, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			counts := rep.Counts()
			if counts[dataset.FaultParse]+counts[dataset.FaultDomain] == 0 {
				t.Error("garbage fields must quarantine as parse or domain faults")
			}
		}},
		{DuplicateRow, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			if rep.Counts()[dataset.FaultDuplicate] == 0 {
				t.Error("duplicated user rows must demote as duplicate faults")
			}
			seen := make(map[int64]bool)
			for _, u := range d.Users {
				if seen[u.ID] {
					t.Fatalf("duplicate user id %d survived the robust load", u.ID)
				}
				seen[u.ID] = true
			}
		}},
		{DropRow, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			got := len(d.Users) + len(d.Switches) + len(d.Plans)
			if got >= baseRows {
				t.Errorf("dropped rows should shrink the dataset: %d rows vs %d baseline", got, baseRows)
			}
			if len(log.Events) == 0 {
				t.Error("drops must appear in the injection log")
			}
		}},
		{SwapRows, func(t *testing.T, d *dataset.Dataset, rep *dataset.QuarantineReport, log *Log) {
			if len(rep.Diags) != 0 {
				t.Errorf("reordered rows are semantically clean; got %d quarantine diags", len(rep.Diags))
			}
			got := len(d.Users) + len(d.Switches) + len(d.Plans)
			if got != baseRows {
				t.Errorf("swaps must preserve the row population: %d vs %d", got, baseRows)
			}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.fault.String(), func(t *testing.T) {
			dir := saveFixture(t, false)
			log, err := New(Config{Seed: 41, Rate: 0.15, Faults: []Fault{tc.fault}}).PerturbDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			d, rep, err := dataset.LoadDirRobust(dir, noBudget)
			if err != nil {
				t.Fatalf("robust load failed under %s: %v\n%s", tc.fault, err, rep.Render())
			}
			tc.check(t, d, rep, log)
		})
	}
}

// TestChaosMixedFaultsNeverPanic floods the loader with every fault class
// at a brutal rate and requires a typed outcome either way: a dataset plus
// report, or a *BudgetError / *RowError. Any panic fails the test.
func TestChaosMixedFaultsNeverPanic(t *testing.T) {
	for _, gz := range []bool{false, true} {
		for seed := uint64(1); seed <= 3; seed++ {
			dir := saveFixture(t, gz)
			cfg := Config{Seed: seed, Rate: 0.5, TruncateProb: 0.4, CorruptProb: 0.4}
			if _, err := New(cfg).PerturbDir(dir); err != nil {
				t.Fatal(err)
			}
			_, rep, err := dataset.LoadDirRobust(dir, dataset.QuarantineOptions{})
			if err == nil {
				continue // survived within budget: fine
			}
			var be *dataset.BudgetError
			var re *dataset.RowError
			if !errors.As(err, &be) && !errors.As(err, &re) {
				t.Errorf("gz=%v seed=%d: load failed with untyped error %T: %v", gz, seed, err, err)
			}
			if rep == nil {
				t.Errorf("gz=%v seed=%d: failed load must still return its report", gz, seed)
			}
		}
	}
}

// TestChaosBudgetExceededIsTyped: at a 25% fault rate the default 5%
// budget must trip, and the failure must be the single summarizing
// *BudgetError, not a per-row error or a panic.
func TestChaosBudgetExceededIsTyped(t *testing.T) {
	dir := saveFixture(t, false)
	if _, err := New(Config{Seed: 3, Rate: 0.25}).PerturbDir(dir); err != nil {
		t.Fatal(err)
	}
	_, rep, err := dataset.LoadDirRobust(dir, dataset.QuarantineOptions{})
	if err == nil {
		t.Fatalf("25%% fault rate loaded within a 5%% budget; report:\n%s", rep.Render())
	}
	var be *dataset.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T: %v", err, err)
	}
	if be.Bad == 0 || be.Read == 0 || len(be.Counts) == 0 {
		t.Errorf("budget error is not summarizing: %+v", be)
	}
	if !strings.Contains(be.Error(), "error budget exceeded") {
		t.Errorf("budget error message %q", be.Error())
	}
}

// TestChaosTruncatedShardIsTerminal: a truncated gzip shard can never
// checksum, so the robust loader must fail with a typed *RowError rather
// than return a silently short table.
func TestChaosTruncatedShardIsTerminal(t *testing.T) {
	dir := saveFixture(t, true)
	log, err := New(Config{Seed: 5, TruncateProb: 1}).PerturbDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := log.Counts()[TruncateShard]; got != len(Tables) {
		t.Fatalf("expected every table truncated, got %d events", got)
	}
	_, _, err = dataset.LoadDirRobust(dir, dataset.QuarantineOptions{MaxBadFrac: 1})
	var re *dataset.RowError
	if !errors.As(err, &re) {
		t.Fatalf("want terminal *RowError, got %T: %v", err, err)
	}
	if re.Class != dataset.FaultTruncated && re.Class != dataset.FaultIO {
		t.Errorf("truncated shard classified as %v", re.Class)
	}
}

// TestChaosCorruptGzipIsTerminal: a flipped byte in a gzip member breaks
// the deflate stream or its CRC; the load must fail typed, not short.
func TestChaosCorruptGzipIsTerminal(t *testing.T) {
	dir := saveFixture(t, true)
	log, err := New(Config{Seed: 6, CorruptProb: 1}).PerturbDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if log.Counts()[CorruptGzip] != len(Tables) {
		t.Fatalf("expected every member corrupted: %s", log.Render())
	}
	_, _, err = dataset.LoadDirRobust(dir, dataset.QuarantineOptions{MaxBadFrac: 1})
	var re *dataset.RowError
	if !errors.As(err, &re) {
		t.Fatalf("want terminal *RowError, got %T: %v", err, err)
	}
	if re.Class != dataset.FaultTruncated && re.Class != dataset.FaultIO {
		t.Errorf("corrupt gzip classified as %v", re.Class)
	}
}

// TestChaosFlakyReaderSurfacesTypedIOFault: transient read failures reach
// the robust reader as terminal io faults carrying the injected cause.
func TestChaosFlakyReaderSurfacesTypedIOFault(t *testing.T) {
	var buf bytes.Buffer
	if err := dataset.WriteUsers(&buf, fixture(t).Users); err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 11})
	// Rate 1: the very first read fails, before the header parses.
	r := in.FlakyReader("users.csv", bytes.NewReader(buf.Bytes()), 1)
	_, err := dataset.ReadUsers(r)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want injected *FaultError in the chain, got %T: %v", err, err)
	}
	if fe.Op != "read" || fe.Call != 1 {
		t.Errorf("unexpected fault identity: %+v", fe)
	}
}

// TestChaosFlakyIODeterminism: the failing call set is a pure function of
// (seed, file), whatever the caller's buffer sizes.
func TestChaosFlakyIODeterminism(t *testing.T) {
	pattern := func(seed uint64) []int {
		in := New(Config{Seed: seed})
		w := in.FlakyWriter("out.csv", io.Discard, 0.3)
		var fails []int
		for i := 1; i <= 200; i++ {
			if _, err := w.Write([]byte("x")); err != nil {
				var fe *FaultError
				if !errors.As(err, &fe) {
					t.Fatalf("untyped write fault %T", err)
				}
				if fe.Call != i {
					t.Fatalf("fault reports call %d at call %d", fe.Call, i)
				}
				fails = append(fails, i)
			}
		}
		return fails
	}
	a, b := pattern(21), pattern(21)
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 200 calls injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault sets: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault sets: %v vs %v", a, b)
		}
	}
}

// TestChaosPerturbCSVRejectsUnknownTable: the injector refuses tables it
// has no fault geometry for instead of guessing.
func TestChaosPerturbCSVRejectsUnknownTable(t *testing.T) {
	if _, _, err := New(Config{Rate: 0.5}).PerturbCSV("mystery.csv", []byte("a,b\n1,2\n")); err == nil {
		t.Error("unknown table must be rejected")
	}
}

// TestChaosZeroRateIsIdentity: a zero-rate injector must not touch a byte.
func TestChaosZeroRateIsIdentity(t *testing.T) {
	dir := saveFixture(t, false)
	before := readTables(t, dir)
	log, err := New(Config{Seed: 1}).PerturbDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 0 {
		t.Fatalf("zero-rate injector logged %d events", len(log.Events))
	}
	after := readTables(t, dir)
	for _, base := range Tables {
		if !bytes.Equal(before[base], after[base]) {
			t.Errorf("zero-rate injector modified %s", base)
		}
	}
}
