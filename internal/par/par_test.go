package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive counts should resolve to GOMAXPROCS")
	}
}

func TestForNRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 153
		counts := make([]atomic.Int32, n)
		if err := ForN(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForNReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 4} {
		err := ForN(workers, 100, func(i int) error {
			switch i {
			case 17:
				return errLow
			case 80:
				return fmt.Errorf("high")
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want the lowest-indexed error", workers, err)
		}
	}
}

func TestForNEmpty(t *testing.T) {
	if err := ForN(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Error("n=0 must not invoke fn")
	}
}

// TestForNRunsEverythingDespiteError pins ForN's run-everything contract:
// even with an early failure, every index executes exactly once. ForNCtx
// deliberately breaks this contract; this test guards against the two ever
// being merged.
func TestForNRunsEverythingDespiteError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForN(workers, 200, func(i int) error {
			ran.Add(1)
			if i == 0 {
				return errors.New("early")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		if got := ran.Load(); got != 200 {
			t.Errorf("workers=%d: ForN ran %d of 200 indices; the contract is all of them", workers, got)
		}
	}
}

// TestForNCtxFailFast pins the fail-fast half of ForNCtx's contract: after
// the first error, dispatching stops, so with a failure at index 0 far fewer
// than n indices run. The exact count is scheduling-dependent but bounded by
// the in-flight window (one task per worker plus the failing one).
func TestForNCtxFailFast(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		block := make(chan struct{})
		err := ForNCtx(context.Background(), workers, 10_000, func(i int) error {
			ran.Add(1)
			if i == 0 {
				close(block) // release any peers already dispatched
				return errBoom
			}
			<-block // first-wave peers wait so index 0 always fails first
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: got %v, want the injected error", workers, err)
		}
		// Workers stop dispatching once the failure lands; only tasks already
		// in flight (at most one per worker beyond the failing index, plus a
		// grab-then-check race per worker) may still run.
		if got := ran.Load(); got > int64(3*workers) {
			t.Errorf("workers=%d: %d indices ran after a first-task failure; fail-fast should stop dispatch", workers, got)
		}
	}
}

// TestForNCtxReturnsLowestIndexedError: among the indices that did run, the
// reported error is the lowest-indexed one, matching ForN's convention.
func TestForNCtxReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	// workers=2 with both initial dispatches failing: whichever order the
	// scheduler picks, index 0's error must win.
	err := ForNCtx(context.Background(), 2, 2, func(i int) error {
		if i == 0 {
			return errLow
		}
		return fmt.Errorf("high")
	})
	if !errors.Is(err, errLow) {
		t.Errorf("got %v, want the lowest-indexed error", err)
	}
}

// TestForNCtxCancellation: a cancelled context stops dispatch and surfaces
// ctx.Err() when no task error occurred first.
func TestForNCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForNCtx(ctx, workers, 10_000, func(i int) error {
			if ran.Add(1) == 1 {
				cancel() // cancel from inside the first task
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > int64(3*workers) {
			t.Errorf("workers=%d: %d indices ran after cancellation", workers, got)
		}
	}
}

// TestForNCtxPreCancelled: a context cancelled before the call runs nothing.
func TestForNCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForNCtx(ctx, 4, 100, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The concurrent path may dispatch at most one grab per worker before
	// observing cancellation; sequential dispatches none.
	if got := ran.Load(); got > 4 {
		t.Errorf("%d indices ran under a pre-cancelled context", got)
	}
}

// TestForNCtxCompletesCleanly: with no errors and no cancellation, ForNCtx
// behaves exactly like ForN.
func TestForNCtxCompletesCleanly(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		n := 153
		counts := make([]atomic.Int32, n)
		if err := ForNCtx(context.Background(), workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}
