package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive counts should resolve to GOMAXPROCS")
	}
}

func TestForNRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 153
		counts := make([]atomic.Int32, n)
		if err := ForN(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForNReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	for _, workers := range []int{1, 4} {
		err := ForN(workers, 100, func(i int) error {
			switch i {
			case 17:
				return errLow
			case 80:
				return fmt.Errorf("high")
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: got %v, want the lowest-indexed error", workers, err)
		}
	}
}

func TestForNEmpty(t *testing.T) {
	if err := ForN(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Error("n=0 must not invoke fn")
	}
}
