// Package par provides the deterministic fan-out primitive the pipeline
// parallelizes with: run an indexed set of independent tasks over a bounded
// worker pool, collecting results by index so callers can merge them in
// canonical order. Determinism is the contract — callers write results into
// index i of a preallocated slice, so the observable output is identical
// whatever the worker count or scheduling order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values above zero are taken as-is,
// anything else selects runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForN runs fn(i) for every i in [0, n) across at most workers goroutines.
// Every index runs exactly once; fn must write its result into caller-owned
// storage at index i. All indices are executed even when some fail, and the
// returned error is the lowest-indexed one — the same error a sequential
// loop that ran to completion would pick, so error reporting is independent
// of scheduling. workers <= 1 (or n <= 1) degrades to a plain loop on the
// calling goroutine.
func ForN(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForNCtx is the fail-fast, cancellable variant of ForN: no new index is
// dispatched after the first fn error or after ctx is cancelled. Indices
// already running are allowed to finish (fn is never interrupted mid-call),
// so caller-owned result slots are either fully written or untouched. The
// returned error is the lowest-indexed fn error among the indices that ran;
// if no fn failed but the context was cancelled, it is ctx.Err(). Unlike
// ForN, not every index is guaranteed to run — use ForN when run-everything
// semantics matter (e.g. reporting every failure, not just the first).
func ForNCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var stop atomic.Bool
	var next atomic.Int64
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
