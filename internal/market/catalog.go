package market

import (
	"fmt"
	"math"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// BuildCatalog generates the retail plan catalog of one market from its
// profile. Each ISP markets a ladder of tiers doubling from MinTierMbps to
// MaxTierMbps, priced along the market's access-price/upgrade-slope line
// with ISP-level and plan-level noise; developing markets attach traffic
// caps to a share of plans; weak-correlation markets add dedicated-line
// outliers. Generation is deterministic in rng.
func BuildCatalog(p Profile, rng *randx.Source) Catalog {
	cat := Catalog{Country: p.Country}
	if p.MinTierMbps <= 0 {
		p.MinTierMbps = 1
	}
	if p.MaxTierMbps < p.MinTierMbps {
		p.MaxTierMbps = p.MinTierMbps
	}
	isps := p.ISPCount
	if isps <= 0 {
		isps = 2
	}
	for i := 0; i < isps; i++ {
		ispName := fmt.Sprintf("%s-ISP%d", p.Country.Code, i+1)
		ispRng := rng.SplitN("isp", i)
		// Each ISP sits at a stable price level around the market line.
		level := 1 + p.PriceNoise*ispRng.TruncNormal(0, 1, -2, 2)
		// ISPs cover overlapping but not identical tier ranges.
		lo := p.MinTierMbps
		hi := p.MaxTierMbps
		if i%2 == 1 && hi > 4*lo {
			hi /= 2 // half the ISPs skip the flagship tier
		}
		for tier := lo; tier <= hi*1.0001; tier *= 2 {
			price := tierPriceUSD(p, tier) * level * (1 + 0.03*ispRng.TruncNormal(0, 1, -2, 2))
			if price < 1 {
				price = 1
			}
			plan := Plan{
				Country:    p.Country.Code,
				ISP:        ispName,
				Down:       unit.MbpsOf(tier),
				Up:         unit.MbpsOf(upRate(tier)),
				PriceUSD:   unit.USD(price),
				PriceLocal: price * p.Country.PPPFactor,
				Tech:       techFor(tier, ispRng),
			}
			if p.CappedShare > 0 && ispRng.Bool(p.CappedShare) {
				plan.Cap = capFor(tier, ispRng)
			}
			cat.Plans = append(cat.Plans, plan)
		}
	}
	if p.DedicatedPlans {
		// A couple of dedicated lines priced far above the shared ladder —
		// the Afghanistan pattern that kills the price–capacity correlation.
		for i := 0; i < 2; i++ {
			tier := p.MinTierMbps * float64(1+i)
			price := tierPriceUSD(p, p.MaxTierMbps) * (3 + 2*rng.Float64())
			cat.Plans = append(cat.Plans, Plan{
				Country:    p.Country.Code,
				ISP:        fmt.Sprintf("%s-DedicatedNet", p.Country.Code),
				Down:       unit.MbpsOf(tier),
				Up:         unit.MbpsOf(tier),
				PriceUSD:   unit.USD(price),
				PriceLocal: price * p.Country.PPPFactor,
				Tech:       DSL,
				Dedicated:  true,
			})
		}
	}
	applyPolicy(p, &cat)
	cat.SortByPrice()
	return cat
}

// applyPolicy rewrites the drawn catalog under the profile's counterfactual
// policy levers. It runs after every random draw and before the price sort,
// so a lever shifts exactly the plans it targets: the RNG stream — and with
// it every untargeted plan — is byte-identical to the unregulated catalog.
// Dedicated-line outliers are exempt from retail price regulation (they are
// leased-line products, not consumer tiers) but still follow PriceScale.
func applyPolicy(p Profile, cat *Catalog) {
	if !p.HasPolicy() {
		return
	}
	for i := range cat.Plans {
		plan := &cat.Plans[i]
		if p.PriceScale > 0 {
			plan.PriceUSD *= unit.USD(p.PriceScale)
		}
		if p.TierPriceCapUSD > 0 && !plan.Dedicated &&
			plan.PriceUSD > unit.USD(p.TierPriceCapUSD) {
			plan.PriceUSD = unit.USD(p.TierPriceCapUSD)
		}
		if plan.PriceUSD < 1 {
			plan.PriceUSD = 1
		}
		plan.PriceLocal = float64(plan.PriceUSD) * p.Country.PPPFactor
		switch {
		case p.UncapAll:
			plan.Cap = 0
		case p.CapScale > 0 && plan.Cap > 0:
			plan.Cap = unit.ByteSize(float64(plan.Cap) * p.CapScale)
		}
		if p.FiberAboveMbps > 0 && !plan.Dedicated &&
			plan.Down.Mbps() >= p.FiberAboveMbps {
			plan.Tech = Fiber
		}
	}
}

// tierPriceUSD evaluates the market price line at a capacity (Mbps):
// the access price anchors 1 Mbps, the upgrade slope extends it upward, and
// sub-1 Mbps tiers discount from the access price (Botswana's 0.5 Mbps plan
// at ≈⅔ of its 1 Mbps price).
func tierPriceUSD(p Profile, tierMbps float64) float64 {
	if tierMbps >= 1 {
		return p.AccessPriceUSD + p.UpgradeCostPerMbps*(tierMbps-1)
	}
	return p.AccessPriceUSD * (0.55 + 0.45*tierMbps)
}

// upRate models typical upload asymmetry: ~1:4 for slow DSL-era tiers,
// narrowing toward 1:2 on fast (fiber-heavy) tiers.
func upRate(downMbps float64) float64 {
	switch {
	case downMbps >= 100:
		return downMbps / 2
	case downMbps >= 20:
		return downMbps / 4
	default:
		return math.Max(downMbps/4, 0.064)
	}
}

// techFor assigns an access technology consistent with the tier.
func techFor(tierMbps float64, rng *randx.Source) Technology {
	switch {
	case tierMbps < 1:
		if rng.Bool(0.3) {
			return FixedWireless
		}
		return DSL
	case tierMbps < 20:
		if rng.Bool(0.55) {
			return DSL
		}
		return Cable
	case tierMbps < 60:
		if rng.Bool(0.6) {
			return Cable
		}
		return Fiber
	default:
		return Fiber
	}
}

// capFor draws a plausible monthly traffic cap scaled by the tier. Caps of
// the era were generous relative to slow lines (a sub-Mbps line cannot
// physically move much) and tighten, relatively, on faster tiers.
func capFor(tierMbps float64, rng *randx.Source) unit.ByteSize {
	baseGB := 20 + tierMbps*12*(0.5+rng.Float64())
	if baseGB > 600 {
		baseGB = 600
	}
	return unit.ByteSize(baseGB) * unit.GB
}

// BuildAllCatalogs generates the catalog of every profile, keyed by country
// code, from a single seed stream.
func BuildAllCatalogs(profiles []Profile, rng *randx.Source) map[string]Catalog {
	out := make(map[string]Catalog, len(profiles))
	for _, p := range profiles {
		out[p.Country.Code] = BuildCatalog(p, rng.Split("catalog-"+p.Country.Code))
	}
	return out
}
