package market

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// testSubscriber builds a subscriber whose saturation WTP scales with need,
// as the synthetic population does: wtpPerMbps dollars per Mbps of
// (headroom-stretched) need scale, so higher-need households value capacity
// proportionally more.
func testSubscriber(need, wtpPerMbps, budget float64) Subscriber {
	const headroom = 2
	return Subscriber{
		NeedMbps: need,
		WTP:      unit.USD(wtpPerMbps * headroom * need),
		Budget:   unit.USD(budget),
		Headroom: headroom,
	}
}

func TestValueSaturates(t *testing.T) {
	s := testSubscriber(4, 20, 100)
	v1 := s.Value(unit.MbpsOf(1))
	v8 := s.Value(unit.MbpsOf(8))
	v64 := s.Value(unit.MbpsOf(64))
	v512 := s.Value(unit.MbpsOf(512))
	if !(v1 < v8 && v8 < v64 && v64 < v512) {
		t.Errorf("value must be increasing: %v %v %v %v", v1, v8, v64, v512)
	}
	// Diminishing returns: the second doubling is worth less than the first.
	if (v64 - v8) <= (v512 - v64) {
		t.Errorf("value must be concave: Δ(8→64)=%v Δ(64→512)=%v", v64-v8, v512-v64)
	}
	// Saturation: far beyond need the value approaches the saturation WTP
	// (20 $/Mbps × headroom 2 × need 4 = $160).
	if v512 < 159.9 {
		t.Errorf("value at 512 Mbps = %v, want ≈ saturation WTP of $160", v512)
	}
	if s.Value(0) != 0 {
		t.Error("zero capacity should have zero value")
	}
	if (Subscriber{NeedMbps: 0, WTP: 20, Headroom: 2}).Value(unit.Mbps) != 0 {
		t.Error("zero need should have zero value")
	}
}

func TestUtilityBudget(t *testing.T) {
	s := testSubscriber(4, 20, 30)
	over := Plan{Down: unit.MbpsOf(100), PriceUSD: 31}
	if !math.IsInf(s.Utility(over), -1) {
		t.Error("over-budget plan must be infeasible")
	}
	within := Plan{Down: unit.MbpsOf(10), PriceUSD: 30}
	if math.IsInf(s.Utility(within), -1) {
		t.Error("at-budget plan must be feasible")
	}
}

func TestChooseCheapSlopeBuysHeadroom(t *testing.T) {
	// Identical subscribers facing Japan-like vs Botswana-like price lines
	// must choose very different capacities: the core of Sec. 5 and 6.
	jp := catalogFor(t, "JP")
	bw := catalogFor(t, "BW")
	s := testSubscriber(3, 4, 130)
	pJP, ok := Choose(jp, s, ChoiceConfig{}, nil)
	if !ok {
		t.Fatal("no plan chosen in JP")
	}
	pBW, ok := Choose(bw, s, ChoiceConfig{}, nil)
	if !ok {
		t.Fatal("no plan chosen in BW")
	}
	if pJP.Down.Mbps() < 8*pBW.Down.Mbps() {
		t.Errorf("cheap-slope market should buy far more capacity: JP=%v BW=%v", pJP.Down, pBW.Down)
	}
	// Japan purchases sit well beyond need (headroom), Botswana at/below it.
	if pJP.Down.Mbps() < 2*s.NeedMbps {
		t.Errorf("JP choice %v should exceed twice the need of %v Mbps", pJP.Down, s.NeedMbps)
	}
	if pBW.Down.Mbps() > 2*s.NeedMbps {
		t.Errorf("BW choice %v should hug the need of %v Mbps", pBW.Down, s.NeedMbps)
	}
}

func TestChooseBudgetBinds(t *testing.T) {
	bw := catalogFor(t, "BW")
	poor := testSubscriber(2, 10, 40) // cannot afford even the slowest tier at ~$50
	if _, ok := Choose(bw, poor, ChoiceConfig{}, nil); ok {
		t.Error("a $40 budget should afford nothing in Botswana")
	}
	rich := testSubscriber(2, 40, 400)
	p, ok := Choose(bw, rich, ChoiceConfig{}, nil)
	if !ok {
		t.Fatal("rich subscriber found no plan")
	}
	if p.PriceUSD > 400 {
		t.Errorf("chosen plan busts the budget: %v", p)
	}
}

func TestChooseMonotoneInNeedProperty(t *testing.T) {
	cat := catalogFor(t, "US")
	f := func(seedNeed uint8) bool {
		n1 := 0.5 + float64(seedNeed%10)
		n2 := n1 * 2
		a, okA := Choose(cat, testSubscriber(n1, 25, 200), ChoiceConfig{}, nil)
		b, okB := Choose(cat, testSubscriber(n2, 25, 200), ChoiceConfig{}, nil)
		if !okA || !okB {
			return false
		}
		return b.Down >= a.Down
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestChooseNeverPicksDedicated(t *testing.T) {
	cat := catalogFor(t, "AF")
	hasDedicated := false
	for _, p := range cat.Plans {
		if p.Dedicated {
			hasDedicated = true
		}
	}
	if !hasDedicated {
		t.Fatal("AF catalog should contain dedicated plans")
	}
	rng := randx.New(9)
	for i := 0; i < 50; i++ {
		p, ok := Choose(cat, testSubscriber(1+float64(i%5), 30, 1000), ChoiceConfig{NoiseUSD: 5}, rng)
		if ok && p.Dedicated {
			t.Fatal("chose a dedicated plan")
		}
	}
}

func TestSwitchingCostMakesSticky(t *testing.T) {
	cat := catalogFor(t, "US")
	s := testSubscriber(3, 25, 100)
	base, ok := Choose(cat, s, ChoiceConfig{}, nil)
	if !ok {
		t.Fatal("no base choice")
	}
	// With a small need increase and a large switching cost, the subscriber
	// stays; with zero switching cost they may move up.
	s2 := s
	s2.NeedMbps *= 1.3
	sticky, ok := Choose(cat, s2, ChoiceConfig{Current: &base, SwitchingCost: 500}, nil)
	if !ok {
		t.Fatal("no sticky choice")
	}
	if !samePlan(sticky, base) {
		t.Errorf("a $500 switching cost should pin the subscriber to %v, got %v", base, sticky)
	}
}

func TestChooseNoiseChangesChoices(t *testing.T) {
	cat := catalogFor(t, "US")
	s := testSubscriber(3, 25, 100)
	rng := randx.New(4).Split("noise")
	seen := map[float64]bool{}
	for i := 0; i < 60; i++ {
		p, ok := Choose(cat, s, ChoiceConfig{NoiseUSD: 6}, rng)
		if !ok {
			t.Fatal("no choice")
		}
		seen[p.Down.Mbps()] = true
	}
	if len(seen) < 2 {
		t.Error("taste shocks should spread choices over multiple tiers")
	}
}

func TestGumbelMoments(t *testing.T) {
	// Standard Gumbel has mean ≈ 0.5772 (Euler–Mascheroni).
	rng := randx.New(5).Split("gumbel")
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += gumbel(rng)
	}
	if mean := sum / float64(n); math.Abs(mean-0.5772) > 0.02 {
		t.Errorf("gumbel mean = %v, want ≈0.577", mean)
	}
}
