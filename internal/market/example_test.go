package market_test

import (
	"fmt"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// Generate one market's retail catalog and compute the paper's two price
// metrics: the price of broadband access (cheapest ≥1 Mbps plan) and the
// cost of increasing capacity (OLS slope of price on capacity).
func ExampleBuildCatalog() {
	prof, _ := market.FindProfile("JP")
	cat := market.BuildCatalog(prof, randx.New(1))
	sum, err := market.Summarize(cat)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: access %v (%v), upgrade %v, reliable=%v\n",
		sum.Country.Code, sum.AccessPrice, sum.AccessGroup, sum.Upgrade.Slope, sum.Upgrade.Reliable())
	// Output:
	// JP: access $18.29 (($0, $25]), upgrade $0.08/Mbps, reliable=true
}

// The need/want/can-afford choice model: identical subscribers buy very
// different capacities under different price lines.
func ExampleChoose() {
	sub := market.Subscriber{
		NeedMbps: 3,
		WTP:      unit.USD(4.1 * 2 * 3), // saturation value scales with need
		Budget:   160,
		Headroom: 2,
	}
	for _, cc := range []string{"JP", "BW"} {
		prof, _ := market.FindProfile(cc)
		cat := market.BuildCatalog(prof, randx.New(1))
		plan, ok := market.Choose(cat, sub, market.ChoiceConfig{}, nil)
		if !ok {
			fmt.Printf("%s: cannot afford broadband\n", cc)
			continue
		}
		fmt.Printf("%s: buys %v for %v\n", cc, plan.Down, plan.PriceUSD)
	}
	// Output:
	// JP: buys 32.00 Mbps for $20.39
	// BW: buys 500.0 kbps for $136.12
}

// Affordability as the paper's Table 4 computes it: price as a share of
// monthly GDP per capita.
func ExampleIncomeShare() {
	bw, _ := market.FindProfile("BW")
	share := market.IncomeShare(unit.USD(100), bw.Country)
	fmt.Printf("$100/month in Botswana = %.1f%% of monthly income\n", 100*share)
	// Output:
	// $100/month in Botswana = 8.0% of monthly income
}
