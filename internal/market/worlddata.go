package market

// Profile bundles everything the synthetic world needs to know about one
// national broadband market: the economy, the retail-plan structure, the
// connection-quality environment, and the behavioral parameters of its
// subscriber population.
//
// Parameter provenance: the paper's own reported anchors wherever it gives
// one (Botswana/Saudi Arabia/US/Japan in Table 4 and Sec. 5; India in
// Sec. 7; the Fig. 10 upgrade-cost placements of Japan/South Korea,
// US/Canada and Ghana/Uganda; the Table 5 regional shares; the Sec. 5
// access-price groupings of Germany/Japan/US, Mexico/New Zealand/
// Philippines, and Botswana/Saudi Arabia/Iran). All other countries carry
// plausible values interpolated from their region and development level —
// they exist to give the matching estimators a population with the same
// breadth the survey had, not to be country-accurate.
type Profile struct {
	Country Country

	// Retail market structure.
	AccessPriceUSD     float64 // monthly USD PPP price of the cheapest ≥1 Mbps plan
	UpgradeCostPerMbps float64 // regression slope, USD PPP per Mbps per month
	MinTierMbps        float64 // slowest marketed tier
	MaxTierMbps        float64 // fastest marketed tier
	ISPCount           int     // providers whose ladders populate the catalog
	PriceNoise         float64 // relative price dispersion across ISPs/plans
	CappedShare        float64 // fraction of plans carrying a monthly traffic cap
	DedicatedPlans     bool    // market sells dedicated-line outliers (weak r markets)

	// Connection-quality environment (to the nearest measurement server).
	BaseRTTms      float64 // median RTT in milliseconds
	RTTSigma       float64 // lognormal sigma of RTT across users
	LossMedianPct  float64 // median packet-loss percentage
	LossSigma      float64 // lognormal sigma of loss across users
	SatelliteShare float64 // fraction of users on satellite/fixed-wireless lines
	WebExtraRTTms  float64 // extra RTT to popular web sites beyond the NDT server

	// Population and behavior.
	UserWeight     float64 // relative share of dataset users in this country
	NeedMedianMbps float64 // median latent demand scale of subscribers
	NeedSigma      float64 // lognormal sigma of the need distribution
	BTShare        float64 // fraction of (Dasu) users active on BitTorrent

	// Counterfactual policy levers (scenario packs). Zero values mean "no
	// policy". BuildCatalog applies them AFTER every random draw, so a
	// lever never perturbs the RNG stream: plans it does not touch stay
	// byte-identical to the unregulated catalog at the same seed — which is
	// what lets scenario expectations assert exact `unchanged` on
	// untargeted cohorts.
	PriceScale      float64 // multiply shared-ladder prices (e.g. 0.7 = 30% subsidy)
	TierPriceCapUSD float64 // clamp shared-ladder monthly PriceUSD to this ceiling
	CapScale        float64 // multiply every monthly traffic cap (e.g. 2 = doubled caps)
	UncapAll        bool    // remove all monthly traffic caps
	FiberAboveMbps  float64 // force Tech=Fiber on tiers at/above this downlink
}

// HasPolicy reports whether any counterfactual policy lever is set.
func (p Profile) HasPolicy() bool {
	return p.PriceScale != 0 || p.TierPriceCapUSD != 0 || p.CapScale != 0 ||
		p.UncapAll || p.FiberAboveMbps != 0
}

// World returns the built-in market profiles, one per country. The slice is
// freshly allocated on each call; callers may mutate their copy (the
// ablation benches do).
func World() []Profile {
	w := make([]Profile, len(world))
	copy(w, world)
	return w
}

// FindProfile returns the built-in profile for an ISO country code.
func FindProfile(code string) (Profile, bool) {
	for _, p := range world {
		if p.Country.Code == code {
			return p, true
		}
	}
	return Profile{}, false
}

// dev fills the parameters shared by most developed-market profiles.
func dev(c Country, access, slope, maxTier float64, weight float64) Profile {
	return Profile{
		Country:        c,
		AccessPriceUSD: access, UpgradeCostPerMbps: slope,
		MinTierMbps: 1, MaxTierMbps: maxTier, ISPCount: 4, PriceNoise: 0.08,
		BaseRTTms: 35, RTTSigma: 0.45, LossMedianPct: 0.05, LossSigma: 1.0,
		SatelliteShare: 0.01, WebExtraRTTms: 5,
		UserWeight: weight, NeedMedianMbps: 3.2, NeedSigma: 0.85, BTShare: 0.45,
	}
}

// emerging fills the parameters shared by most developing-market profiles.
func emerging(c Country, access, slope, minTier, maxTier float64, weight float64) Profile {
	return Profile{
		Country:        c,
		AccessPriceUSD: access, UpgradeCostPerMbps: slope,
		MinTierMbps: minTier, MaxTierMbps: maxTier, ISPCount: 3, PriceNoise: 0.12,
		CappedShare: 0.3,
		BaseRTTms:   110, RTTSigma: 0.5, LossMedianPct: 0.35, LossSigma: 1.1,
		SatelliteShare: 0.06, WebExtraRTTms: 20,
		UserWeight: weight, NeedMedianMbps: 1.8, NeedSigma: 0.8, BTShare: 0.55,
	}
}

// frontier fills the parameters shared by the least-developed, most
// expensive markets.
func frontier(c Country, access, slope, minTier, maxTier float64, weight float64) Profile {
	return Profile{
		Country:        c,
		AccessPriceUSD: access, UpgradeCostPerMbps: slope,
		MinTierMbps: minTier, MaxTierMbps: maxTier, ISPCount: 2, PriceNoise: 0.15,
		CappedShare: 0.5,
		BaseRTTms:   170, RTTSigma: 0.5, LossMedianPct: 0.8, LossSigma: 1.1,
		SatelliteShare: 0.18, WebExtraRTTms: 35,
		UserWeight: weight, NeedMedianMbps: 1.3, NeedSigma: 0.75, BTShare: 0.5,
	}
}

func country(code, name string, r Region, gdp, ppp float64, cur string) Country {
	return Country{Code: code, Name: name, Region: r, GDPPerCapitaPPP: gdp, PPPFactor: ppp, CurrencyCode: cur}
}

var world = buildWorld()

func buildWorld() []Profile {
	var w []Profile
	add := func(p Profile) { w = append(w, p) }
	mut := func(p Profile, f func(*Profile)) Profile { f(&p); return p }

	// ---------------------------------------------------------------- Africa
	// Table 4 anchors Botswana: median user on ≈0.512 Mbps paying ≈$100
	// (8.0% of monthly GDP pc of $14,993/12); 1 Mbps ≈ $150, 2 Mbps ≈ $200.
	add(mut(frontier(country("BW", "Botswana", Africa, 14993, 7.6, "BWP"), 150, 50, 0.5, 2, 67), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct = 190, 0.5
		p.NeedMedianMbps = 3.0 // demand pent up well above the affordable tiers
	}))
	// Ghana and Uganda are the paper's Fig. 10 examples of the expensive
	// upper end of the upgrade-cost distribution.
	add(frontier(country("GH", "Ghana", Africa, 3900, 1.9, "GHS"), 75, 40, 0.25, 4, 40))
	add(frontier(country("UG", "Uganda", Africa, 1400, 1200, "UGX"), 90, 35, 0.25, 4, 35))
	add(frontier(country("CI", "Ivory Coast", Africa, 2900, 260, "XOF"), 110, 120, 0.25, 2, 25))
	add(frontier(country("TZ", "Tanzania", Africa, 2400, 760, "TZS"), 85, 25, 0.25, 4, 25))
	add(mut(frontier(country("NG", "Nigeria", Africa, 5400, 95, "NGN"), 65, 15, 0.25, 8, 60), func(p *Profile) {
		p.ISPCount = 3
	}))
	add(mut(emerging(country("KE", "Kenya", Africa, 2800, 45, "KES"), 58, 12, 0.5, 10, 45), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct, p.SatelliteShare = 140, 0.6, 0.12
	}))
	add(mut(emerging(country("EG", "Egypt", Africa, 10500, 2.3, "EGP"), 33, 6, 0.5, 16, 55), func(p *Profile) {
		p.BaseRTTms = 120
	}))
	add(emerging(country("MA", "Morocco", Africa, 7000, 4.6, "MAD"), 34, 8, 0.5, 16, 40))
	add(mut(emerging(country("ZA", "South Africa", Africa, 12500, 5.1, "ZAR"), 45, 3.5, 0.5, 40, 80), func(p *Profile) {
		p.BaseRTTms, p.NeedMedianMbps = 130, 2.2
	}))
	add(frontier(country("SN", "Senegal", Africa, 2300, 260, "XOF"), 70, 22, 0.25, 4, 18))
	add(frontier(country("ZM", "Zambia", Africa, 3900, 6.1, "ZMW"), 80, 45, 0.25, 2, 15))
	add(frontier(country("ET", "Ethiopia", Africa, 1400, 9.8, "ETB"), 95, 60, 0.25, 2, 15))
	add(mut(emerging(country("TN", "Tunisia", Africa, 10900, 0.71, "TND"), 32, 7, 0.5, 16, 25), func(p *Profile) {
		p.BaseRTTms = 115
	}))

	// ----------------------------------------------------------- Middle East
	// Table 4 anchors Saudi Arabia: users clustered near 4 Mbps, that tier
	// at ≈$79 (3.3% of monthly GDP pc of $29,114/12); 1 Mbps ≈ $60 ("three
	// times higher than a similar service in the US").
	add(mut(emerging(country("SA", "Saudi Arabia", MiddleEast, 29114, 1.9, "SAR"), 68, 6, 1, 20, 120), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct = 90, 0.25
		p.NeedMedianMbps, p.NeedSigma = 3.4, 0.7 // clusters demand near the 4 Mbps tier
		p.CappedShare = 0.2
	}))
	// Iran: Sec. 5's example of a 1 Mbps plan costing ≈$150 PPP.
	add(mut(frontier(country("IR", "Iran", MiddleEast, 15600, 9800, "IRR"), 150, 30, 0.25, 8, 45), func(p *Profile) {
		p.BaseRTTms, p.SatelliteShare = 150, 0.08
	}))
	add(mut(dev(country("AE", "UAE", MiddleEast, 58000, 2.5, "AED"), 38, 0.8, 100, 35), func(p *Profile) {
		p.BaseRTTms = 75
	}))
	add(mut(dev(country("IL", "Israel", MiddleEast, 32000, 3.9, "ILS"), 26, 1.5, 100, 45), func(p *Profile) {
		p.BaseRTTms = 70
	}))
	add(emerging(country("TR", "Turkey", MiddleEast, 18000, 1.1, "TRY"), 33, 2, 1, 50, 70))
	add(emerging(country("JO", "Jordan", MiddleEast, 11500, 0.45, "JOD"), 48, 12, 0.5, 16, 30))
	add(mut(emerging(country("QA", "Qatar", MiddleEast, 98000, 2.9, "QAR"), 35, 3, 1, 100, 20), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct = 85, 0.15
	}))
	add(frontier(country("YE", "Yemen", MiddleEast, 3900, 95, "YER"), 95, 20, 0.25, 2, 15))
	add(emerging(country("LB", "Lebanon", MiddleEast, 17500, 1450, "LBP"), 45, 9, 0.5, 8, 20))
	add(mut(emerging(country("KW", "Kuwait", MiddleEast, 71000, 0.22, "KWD"), 38, 2.5, 1, 100, 20), func(p *Profile) {
		p.BaseRTTms = 90
	}))

	// ------------------------------------------------------- Asia (developed)
	// Table 4 anchors Japan: median ≈26-29 Mbps at ≈$37 (1.3% of monthly
	// GDP pc of $34,532/12); 100 Mbps ≈ $40; upgrade cost < $0.10/Mbps.
	add(mut(dev(country("JP", "Japan", AsiaDeveloped, 34532, 103, "JPY"), 21, 0.08, 200, 73), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct = 28, 0.03
		p.NeedMedianMbps = 3.4
		p.MinTierMbps = 1
	}))
	add(mut(dev(country("KR", "South Korea", AsiaDeveloped, 32400, 860, "KRW"), 15, 0.06, 200, 60), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct = 25, 0.03
	}))
	add(mut(dev(country("HK", "Hong Kong", AsiaDeveloped, 51000, 5.6, "HKD"), 16, 0.09, 500, 45), func(p *Profile) {
		p.BaseRTTms = 27
	}))
	add(dev(country("SG", "Singapore", AsiaDeveloped, 78000, 1.1, "SGD"), 22, 0.3, 300, 40))
	add(dev(country("TW", "Taiwan", AsiaDeveloped, 41000, 15.1, "TWD"), 20, 0.4, 100, 50))

	// ------------------------------------------------------ Asia (developing)
	// Sec. 7 anchors India: access ≈$67 vs the US's ≈$20, upgrade cost
	// within 25% of the US's, and latency/loss far above the rest of the
	// population (nearly every user above 100 ms).
	add(mut(emerging(country("IN", "India", AsiaDeveloping, 5200, 17.5, "INR"), 67, 0.55, 0.25, 16, 500), func(p *Profile) {
		p.BaseRTTms, p.RTTSigma = 200, 0.45
		p.LossMedianPct, p.LossSigma = 1.1, 0.9
		p.WebExtraRTTms = 15
		p.SatelliteShare = 0.05
		p.NeedMedianMbps = 1.9
	}))
	add(mut(emerging(country("CN", "China", AsiaDeveloping, 11900, 3.5, "CNY"), 34, 0.8, 0.5, 50, 150), func(p *Profile) {
		p.BaseRTTms = 130
	}))
	add(emerging(country("PH", "Philippines", AsiaDeveloping, 6400, 19.5, "PHP"), 45, 11, 0.5, 16, 90))
	add(emerging(country("ID", "Indonesia", AsiaDeveloping, 9600, 3900, "IDR"), 38, 10.5, 0.5, 16, 80))
	add(emerging(country("VN", "Vietnam", AsiaDeveloping, 5300, 7900, "VND"), 33, 2, 0.5, 30, 70))
	add(emerging(country("TH", "Thailand", AsiaDeveloping, 14400, 12.3, "THB"), 33, 1.8, 1, 50, 65))
	add(emerging(country("MY", "Malaysia", AsiaDeveloping, 23300, 1.5, "MYR"), 33, 1.2, 1, 50, 55))
	add(emerging(country("PK", "Pakistan", AsiaDeveloping, 4500, 33, "PKR"), 40, 5.5, 0.25, 10, 45))
	add(emerging(country("BD", "Bangladesh", AsiaDeveloping, 2900, 31, "BDT"), 45, 5.2, 0.25, 8, 35))
	add(emerging(country("LK", "Sri Lanka", AsiaDeveloping, 9500, 51, "LKR"), 35, 2.5, 0.5, 16, 25))
	add(frontier(country("NP", "Nepal", AsiaDeveloping, 2200, 34, "NPR"), 65, 12, 0.25, 4, 20))
	add(frontier(country("MN", "Mongolia", AsiaDeveloping, 9400, 640, "MNT"), 55, 15, 0.25, 4, 15))
	add(frontier(country("KH", "Cambodia", AsiaDeveloping, 3100, 1650, "KHR"), 48, 14, 0.25, 4, 15))
	add(frontier(country("MM", "Myanmar", AsiaDeveloping, 1700, 420, "MMK"), 90, 55, 0.25, 2, 12))
	add(frontier(country("LA", "Laos", AsiaDeveloping, 4400, 3400, "LAK"), 55, 18, 0.25, 4, 10))
	// Afghanistan: the paper's example of a weak price–capacity correlation
	// caused by dedicated (non-shared) DSL priced above faster alternatives.
	add(mut(frontier(country("AF", "Afghanistan", AsiaDeveloping, 1900, 19, "AFN"), 130, 80, 0.25, 2, 12), func(p *Profile) {
		p.DedicatedPlans = true
		p.PriceNoise = 0.35
	}))

	// ----------------------------------------------------------------- Europe
	// Germany is a Sec. 5 example of the <$25 access group.
	add(dev(country("DE", "Germany", Europe, 43000, 0.79, "EUR"), 18, 0.4, 100, 350))
	add(dev(country("GB", "United Kingdom", Europe, 37500, 0.69, "GBP"), 20, 0.5, 120, 320))
	add(dev(country("FR", "France", Europe, 37200, 0.81, "EUR"), 17, 0.3, 100, 280))
	add(dev(country("NL", "Netherlands", Europe, 46000, 0.8, "EUR"), 19, 0.35, 150, 120))
	add(mut(dev(country("SE", "Sweden", Europe, 44000, 8.9, "SEK"), 16, 0.25, 250, 110), func(p *Profile) {
		p.BaseRTTms = 30
	}))
	add(dev(country("ES", "Spain", Europe, 32000, 0.66, "EUR"), 24, 0.9, 100, 200))
	add(dev(country("IT", "Italy", Europe, 34500, 0.74, "EUR"), 23, 0.95, 50, 180))
	add(mut(dev(country("PL", "Poland", Europe, 23000, 1.8, "PLN"), 18, 0.7, 80, 150), func(p *Profile) {
		p.BaseRTTms = 45
	}))
	add(mut(dev(country("RO", "Romania", Europe, 18600, 1.7, "RON"), 12, 0.15, 500, 90), func(p *Profile) {
		p.BaseRTTms, p.NeedMedianMbps = 45, 2.8
	}))
	add(mut(dev(country("RU", "Russia", Europe, 24500, 17.4, "RUB"), 14, 0.5, 100, 220), func(p *Profile) {
		p.BaseRTTms, p.LossMedianPct = 60, 0.1
	}))
	add(dev(country("PT", "Portugal", Europe, 27000, 0.61, "EUR"), 24, 0.9, 100, 90))
	add(mut(dev(country("GR", "Greece", Europe, 25600, 0.62, "EUR"), 24, 2.1, 50, 80), func(p *Profile) {
		p.BaseRTTms = 55
	}))
	add(dev(country("CH", "Switzerland", Europe, 55000, 1.24, "CHF"), 24, 0.45, 150, 60))
	add(dev(country("AT", "Austria", Europe, 44000, 0.78, "EUR"), 21, 0.5, 100, 55))
	add(dev(country("BE", "Belgium", Europe, 41000, 0.8, "EUR"), 22, 0.6, 100, 55))
	add(mut(dev(country("DK", "Denmark", Europe, 43000, 7.4, "DKK"), 19, 0.3, 200, 50), func(p *Profile) {
		p.BaseRTTms = 30
	}))
	add(mut(dev(country("FI", "Finland", Europe, 39000, 0.9, "EUR"), 18, 0.35, 150, 50), func(p *Profile) {
		p.BaseRTTms = 32
	}))
	add(dev(country("NO", "Norway", Europe, 66000, 9.1, "NOK"), 23, 0.4, 150, 50))
	add(mut(dev(country("CZ", "Czech Republic", Europe, 28000, 12.9, "CZK"), 16, 0.55, 100, 60), func(p *Profile) {
		p.BaseRTTms = 42
	}))
	add(mut(dev(country("HU", "Hungary", Europe, 22500, 126, "HUF"), 17, 0.6, 100, 45), func(p *Profile) {
		p.BaseRTTms = 45
	}))

	// ---------------------------------------------------------- North America
	// Table 4 anchors the US: a diverse 1–105 Mbps market, median ≈17.6 Mbps
	// at ≈$53 (1.3% of monthly GDP pc of $49,797/12); 1 Mbps ≈ $20;
	// 100 Mbps ≈ $115; upgrade cost slightly above $0.50/Mbps (Fig. 10).
	add(mut(dev(country("US", "United States", NorthAmerica, 49797, 1.0, "USD"), 20, 0.55, 105, 3759), func(p *Profile) {
		p.NeedMedianMbps, p.NeedSigma = 3.5, 0.9
		p.ISPCount = 5
		p.BaseRTTms = 38
	}))
	add(dev(country("CA", "Canada", NorthAmerica, 42500, 1.24, "CAD"), 24, 0.65, 105, 280))

	// ----------------------------------------- Central America and Caribbean
	// Mexico is a Sec. 5 example of the $25–60 access group.
	add(emerging(country("MX", "Mexico", CentralAmericaCaribbean, 16900, 8.0, "MXN"), 35, 5.5, 0.5, 20, 130))
	add(emerging(country("GT", "Guatemala", CentralAmericaCaribbean, 7300, 3.9, "GTQ"), 50, 7, 0.5, 10, 25))
	add(emerging(country("CR", "Costa Rica", CentralAmericaCaribbean, 13900, 340, "CRC"), 40, 6, 0.5, 16, 25))
	add(emerging(country("PA", "Panama", CentralAmericaCaribbean, 19400, 0.58, "PAB"), 38, 4, 0.5, 20, 20))
	add(emerging(country("DO", "Dominican Republic", CentralAmericaCaribbean, 12200, 21, "DOP"), 52, 8, 0.5, 10, 22))
	add(mut(emerging(country("JM", "Jamaica", CentralAmericaCaribbean, 8900, 57, "JMD"), 55, 9, 0.5, 10, 18), func(p *Profile) {
		p.SatelliteShare = 0.1
	}))
	add(frontier(country("HN", "Honduras", CentralAmericaCaribbean, 4600, 10.3, "HNL"), 62, 12, 0.25, 4, 15))
	add(emerging(country("TT", "Trinidad and Tobago", CentralAmericaCaribbean, 30000, 4.1, "TTD"), 40, 5.5, 0.5, 20, 15))
	add(frontier(country("NI", "Nicaragua", CentralAmericaCaribbean, 4500, 11.2, "NIO"), 58, 8, 0.25, 4, 12))

	// ---------------------------------------------------------- South America
	add(mut(emerging(country("BR", "Brazil", SouthAmerica, 15000, 1.6, "BRL"), 33, 2, 0.5, 35, 400), func(p *Profile) {
		p.BaseRTTms, p.BTShare = 120, 0.65
	}))
	add(emerging(country("AR", "Argentina", SouthAmerica, 18700, 3.3, "ARS"), 35, 3, 0.5, 30, 180))
	add(emerging(country("CL", "Chile", SouthAmerica, 21900, 380, "CLP"), 35, 0.95, 1, 40, 90))
	add(emerging(country("CO", "Colombia", SouthAmerica, 12400, 1250, "COP"), 42, 4, 0.5, 20, 85))
	add(emerging(country("PE", "Peru", SouthAmerica, 11400, 1.6, "PEN"), 45, 6, 0.5, 10, 50))
	// Paraguay: the paper's example of upgrade cost "well above $100".
	add(frontier(country("PY", "Paraguay", SouthAmerica, 7800, 2600, "PYG"), 120, 110, 0.25, 2, 15))
	add(frontier(country("BO", "Bolivia", SouthAmerica, 6100, 3.4, "BOB"), 70, 18, 0.25, 4, 18))
	add(emerging(country("EC", "Ecuador", SouthAmerica, 10800, 0.55, "ECS"), 55, 11, 0.5, 8, 25))
	add(mut(emerging(country("UY", "Uruguay", SouthAmerica, 19600, 19.5, "UYU"), 33, 0.9, 1, 50, 25), func(p *Profile) {
		p.BaseRTTms = 100
	}))
	add(emerging(country("VE", "Venezuela", SouthAmerica, 17700, 3.6, "VEF"), 44, 5.5, 0.5, 10, 40))

	// ----------------------------------------------------------------- Oceania
	// New Zealand is a Sec. 5 example of the $25–60 access group.
	add(mut(dev(country("NZ", "New Zealand", Oceania, 32800, 1.48, "NZD"), 40, 1.5, 100, 60), func(p *Profile) {
		p.BaseRTTms = 60
		p.CappedShare = 0.5 // NZ plans of the era were famously capped
	}))
	add(mut(dev(country("AU", "Australia", Oceania, 43000, 1.52, "AUD"), 33, 1.2, 100, 140), func(p *Profile) {
		p.BaseRTTms = 55
		p.CappedShare = 0.4
	}))

	return w
}
