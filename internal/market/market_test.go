package market

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

func profileFor(t *testing.T, code string) Profile {
	t.Helper()
	p, ok := FindProfile(code)
	if !ok {
		t.Fatalf("no profile for %s", code)
	}
	return p
}

func catalogFor(t *testing.T, code string) Catalog {
	t.Helper()
	return BuildCatalog(profileFor(t, code), randx.New(1).Split("cat-"+code))
}

func TestWorldIntegrity(t *testing.T) {
	w := World()
	if len(w) < 60 {
		t.Fatalf("world has %d countries, want a survey-scale breadth (≥60)", len(w))
	}
	seen := map[string]bool{}
	regions := map[Region]int{}
	for _, p := range w {
		if p.Country.Code == "" || p.Country.Name == "" {
			t.Errorf("country with missing identity: %+v", p.Country)
		}
		if seen[p.Country.Code] {
			t.Errorf("duplicate country code %s", p.Country.Code)
		}
		seen[p.Country.Code] = true
		regions[p.Country.Region]++
		if p.AccessPriceUSD <= 0 || p.UpgradeCostPerMbps <= 0 {
			t.Errorf("%s: non-positive market parameters", p.Country.Code)
		}
		if p.MinTierMbps <= 0 || p.MaxTierMbps < p.MinTierMbps {
			t.Errorf("%s: bad tier range [%v, %v]", p.Country.Code, p.MinTierMbps, p.MaxTierMbps)
		}
		if p.Country.GDPPerCapitaPPP <= 0 || p.Country.PPPFactor <= 0 {
			t.Errorf("%s: bad economy", p.Country.Code)
		}
		if p.UserWeight <= 0 || p.NeedMedianMbps <= 0 {
			t.Errorf("%s: bad population parameters", p.Country.Code)
		}
		if p.BaseRTTms <= 0 || p.LossMedianPct < 0 || p.SatelliteShare < 0 || p.SatelliteShare > 1 {
			t.Errorf("%s: bad quality profile", p.Country.Code)
		}
	}
	// Every paper region must be populated.
	for _, r := range Regions() {
		if regions[r] == 0 {
			t.Errorf("region %v has no countries", r)
		}
	}
}

func TestWorldPaperAnchors(t *testing.T) {
	// The four case-study markets and India must carry the paper's anchors.
	bw := profileFor(t, "BW")
	if bw.Country.GDPPerCapitaPPP != 14993 {
		t.Errorf("Botswana GDP pc = %v, want 14993 (Table 4)", bw.Country.GDPPerCapitaPPP)
	}
	if bw.AccessPriceUSD < 100 {
		t.Errorf("Botswana access price = %v, want ≈150", bw.AccessPriceUSD)
	}
	sa := profileFor(t, "SA")
	if sa.Country.GDPPerCapitaPPP != 29114 {
		t.Errorf("Saudi GDP pc = %v, want 29114", sa.Country.GDPPerCapitaPPP)
	}
	us := profileFor(t, "US")
	if us.Country.GDPPerCapitaPPP != 49797 {
		t.Errorf("US GDP pc = %v, want 49797", us.Country.GDPPerCapitaPPP)
	}
	if us.AccessPriceUSD > 25 {
		t.Errorf("US access price = %v, must be in the cheap band", us.AccessPriceUSD)
	}
	jp := profileFor(t, "JP")
	if jp.Country.GDPPerCapitaPPP != 34532 {
		t.Errorf("Japan GDP pc = %v, want 34532", jp.Country.GDPPerCapitaPPP)
	}
	if jp.UpgradeCostPerMbps >= 0.1 {
		t.Errorf("Japan upgrade cost = %v, want < $0.10 (Fig. 10)", jp.UpgradeCostPerMbps)
	}
	if us.UpgradeCostPerMbps <= 0.5 || us.UpgradeCostPerMbps >= 1 {
		t.Errorf("US upgrade cost = %v, want slightly above $0.50", us.UpgradeCostPerMbps)
	}
	in := profileFor(t, "IN")
	if in.AccessPriceUSD < 60 {
		t.Errorf("India access price = %v, want ≈67 (Sec. 7)", in.AccessPriceUSD)
	}
	if math.Abs(in.UpgradeCostPerMbps-us.UpgradeCostPerMbps) > 0.25*us.UpgradeCostPerMbps {
		t.Errorf("India upgrade cost %v must be within 25%% of the US's %v", in.UpgradeCostPerMbps, us.UpgradeCostPerMbps)
	}
	if in.BaseRTTms < 150 {
		t.Errorf("India base RTT = %v ms, want the paper's >100 ms regime", in.BaseRTTms)
	}
}

func TestFindProfile(t *testing.T) {
	if _, ok := FindProfile("XX"); ok {
		t.Error("unknown code should not resolve")
	}
	p, ok := FindProfile("JP")
	if !ok || p.Country.Name != "Japan" {
		t.Errorf("FindProfile(JP) = %+v, %v", p.Country, ok)
	}
}

func TestBuildCatalogStructure(t *testing.T) {
	cat := catalogFor(t, "US")
	if len(cat.Plans) < 10 {
		t.Fatalf("US catalog has %d plans, want a rich ladder", len(cat.Plans))
	}
	for _, p := range cat.Plans {
		if p.Down <= 0 || p.Up <= 0 {
			t.Errorf("plan with bad rates: %v", p)
		}
		if p.PriceUSD <= 0 {
			t.Errorf("plan with bad price: %v", p)
		}
		if p.Up > p.Down {
			t.Errorf("upload exceeds download: %v", p)
		}
		if p.Country != "US" {
			t.Errorf("plan with wrong country: %v", p)
		}
	}
	// Ladder spans the configured range.
	prof := profileFor(t, "US")
	var lo, hi float64 = math.Inf(1), 0
	for _, p := range cat.Plans {
		lo = math.Min(lo, p.Down.Mbps())
		hi = math.Max(hi, p.Down.Mbps())
	}
	if lo > prof.MinTierMbps*1.01 || hi < prof.MaxTierMbps*0.49 {
		t.Errorf("ladder [%v, %v] does not span profile [%v, %v]", lo, hi, prof.MinTierMbps, prof.MaxTierMbps)
	}
}

func TestBuildCatalogDeterminism(t *testing.T) {
	a := BuildCatalog(profileFor(t, "DE"), randx.New(7).Split("x"))
	b := BuildCatalog(profileFor(t, "DE"), randx.New(7).Split("x"))
	if len(a.Plans) != len(b.Plans) {
		t.Fatalf("catalog sizes differ: %d vs %d", len(a.Plans), len(b.Plans))
	}
	for i := range a.Plans {
		if a.Plans[i] != b.Plans[i] {
			t.Fatalf("plan %d differs: %v vs %v", i, a.Plans[i], b.Plans[i])
		}
	}
}

func TestAccessPriceMatchesProfiles(t *testing.T) {
	// The generated catalog's access price must land near the profile's
	// configured value for the case-study markets.
	for _, c := range []struct {
		code string
		want float64
		tol  float64
	}{
		{"US", 20, 6}, {"JP", 21, 6}, {"DE", 18, 5}, {"BW", 150, 40}, {"SA", 62, 15}, {"IN", 67, 15},
	} {
		cat := catalogFor(t, c.code)
		got, ok := AccessPrice(cat)
		if !ok {
			t.Errorf("%s: no access price", c.code)
			continue
		}
		if math.Abs(got.Dollars()-c.want) > c.tol {
			t.Errorf("%s access price = %v, want ≈%v", c.code, got, c.want)
		}
	}
}

func TestAccessPriceGroups(t *testing.T) {
	// Sec. 5's grouping examples: Germany/Japan/US cheap; Mexico/NZ/
	// Philippines mid; Botswana/Saudi Arabia/Iran expensive.
	groups := map[string]AccessPriceGroup{
		"DE": AccessCheap, "JP": AccessCheap, "US": AccessCheap,
		"MX": AccessMid, "NZ": AccessMid, "PH": AccessMid,
		"BW": AccessExpensive, "SA": AccessExpensive, "IR": AccessExpensive,
	}
	for code, want := range groups {
		cat := catalogFor(t, code)
		price, ok := AccessPrice(cat)
		if !ok {
			t.Errorf("%s: no access price", code)
			continue
		}
		if got := GroupOfAccessPrice(price); got != want {
			t.Errorf("%s in group %v (price %v), want %v", code, got, price, want)
		}
	}
}

func TestEstimateUpgradeCost(t *testing.T) {
	for _, c := range []struct {
		code    string
		loSlope float64
		hiSlope float64
	}{
		{"JP", 0.0, 0.12},  // < $0.10
		{"KR", 0.0, 0.1},   // < $0.10
		{"US", 0.4, 0.75},  // slightly above $0.50
		{"CA", 0.45, 0.95}, // slightly above $0.50
		{"GH", 20, 70},     // well above $10
		{"UG", 15, 60},
		{"PY", 60, 200}, // "well above $100" regime
	} {
		cat := catalogFor(t, c.code)
		up, err := EstimateUpgradeCost(cat)
		if err != nil {
			t.Errorf("%s: %v", c.code, err)
			continue
		}
		if float64(up.Slope) < c.loSlope || float64(up.Slope) > c.hiSlope {
			t.Errorf("%s slope = %v, want in [%v, %v]", c.code, up.Slope, c.loSlope, c.hiSlope)
		}
		if !up.Reliable() {
			t.Errorf("%s: expected a reliable (r > 0.4) fit, got r = %v", c.code, up.R)
		}
	}
}

func TestDedicatedPlansWeakenCorrelation(t *testing.T) {
	// Afghanistan's dedicated-line outliers must depress the correlation
	// relative to the same market without them (the paper's Sec. 6 example).
	prof := profileFor(t, "AF")
	with, err := EstimateUpgradeCost(BuildCatalog(prof, randx.New(3).Split("af")))
	if err != nil {
		t.Fatal(err)
	}
	prof.DedicatedPlans = false
	without, err := EstimateUpgradeCost(BuildCatalog(prof, randx.New(3).Split("af")))
	if err != nil {
		t.Fatal(err)
	}
	if with.R >= without.R {
		t.Errorf("dedicated outliers should weaken correlation: with=%v without=%v", with.R, without.R)
	}
}

func TestSummarize(t *testing.T) {
	cat := catalogFor(t, "US")
	s, err := Summarize(cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.AccessGroup != AccessCheap {
		t.Errorf("US access group = %v", s.AccessGroup)
	}
	if s.Upgrade.N != len(cat.Plans) {
		t.Errorf("regression over %d plans, catalog has %d", s.Upgrade.N, len(cat.Plans))
	}
	if _, err := Summarize(Catalog{Country: Country{Code: "ZZ"}}); err == nil {
		t.Error("empty catalog should not summarize")
	}
}

func TestCatalogHelpers(t *testing.T) {
	cat := catalogFor(t, "US")
	cheap, ok := cat.Cheapest()
	if !ok {
		t.Fatal("no cheapest plan")
	}
	for _, p := range cat.Plans {
		if !p.Dedicated && p.PriceUSD < cheap.PriceUSD {
			t.Errorf("Cheapest missed %v", p)
		}
	}
	fast, ok := cat.FastestAffordable(1e9)
	if !ok {
		t.Fatal("no affordable plan with infinite budget")
	}
	for _, p := range cat.Plans {
		if !p.Dedicated && p.Down > fast.Down {
			t.Errorf("FastestAffordable missed %v", p)
		}
	}
	if _, ok := cat.FastestAffordable(0); ok {
		t.Error("zero budget should afford nothing")
	}
	near, ok := cat.NearestTier(unit.MbpsOf(17.6))
	if !ok {
		t.Fatal("NearestTier failed")
	}
	if near.Down.Mbps() < 8 || near.Down.Mbps() > 40 {
		t.Errorf("nearest tier to 17.6 Mbps = %v", near.Down)
	}
	if _, ok := cat.NearestTier(0); ok {
		t.Error("NearestTier(0) should fail")
	}
}

func TestGroupBoundaries(t *testing.T) {
	if GroupOfAccessPrice(25) != AccessCheap || GroupOfAccessPrice(25.01) != AccessMid {
		t.Error("access $25 boundary wrong")
	}
	if GroupOfAccessPrice(60) != AccessMid || GroupOfAccessPrice(60.01) != AccessExpensive {
		t.Error("access $60 boundary wrong")
	}
	if GroupOfUpgradeCost(0.5) != UpgradeCheap || GroupOfUpgradeCost(0.51) != UpgradeMid {
		t.Error("upgrade $0.50 boundary wrong")
	}
	if GroupOfUpgradeCost(1.0) != UpgradeMid || GroupOfUpgradeCost(1.01) != UpgradeExpensive {
		t.Error("upgrade $1 boundary wrong")
	}
}

func TestPPPConversions(t *testing.T) {
	usd, err := ToUSDPPP(515, 103) // ¥515 at ¥103/USD
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(usd.Dollars()-5) > 1e-9 {
		t.Errorf("ToUSDPPP = %v", usd)
	}
	back, err := ToLocal(usd, 103)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back-515) > 1e-9 {
		t.Errorf("ToLocal = %v", back)
	}
	if _, err := ToUSDPPP(10, 0); err == nil {
		t.Error("zero PPP factor should error")
	}
	if _, err := ToLocal(10, -1); err == nil {
		t.Error("negative PPP factor should error")
	}
}

func TestIncomeShareTable4(t *testing.T) {
	// Table 4: Botswana $100 at GDP pc 14,993 → 8.0%; US $53 at 49,797 →
	// 1.3%; Japan $37 at 34,532 → 1.3%; Saudi $79 at 29,114 → 3.3%.
	cases := []struct {
		code  string
		price float64
		want  float64
	}{
		{"BW", 100, 0.080}, {"SA", 79, 0.033}, {"US", 53, 0.013}, {"JP", 37, 0.013},
	}
	for _, c := range cases {
		p := profileFor(t, c.code)
		got := IncomeShare(unit.USD(c.price), p.Country)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("%s income share = %.4f, want ≈%.3f", c.code, got, c.want)
		}
	}
	if IncomeShare(10, Country{}) != 0 {
		t.Error("zero GDP should yield zero share")
	}
}

func TestRegionStrings(t *testing.T) {
	if Africa.String() != "Africa" || AsiaDeveloped.String() != "Asia (developed)" {
		t.Error("region labels wrong")
	}
	if Region(99).String() != "Region(99)" {
		t.Error("unknown region label")
	}
	if len(Regions()) != int(numRegions) {
		t.Errorf("Regions() lists %d, want %d", len(Regions()), numRegions)
	}
}

func TestTechnologyStrings(t *testing.T) {
	for tech, want := range map[Technology]string{
		DSL: "DSL", Cable: "Cable", Fiber: "Fiber", FixedWireless: "FixedWireless", Satellite: "Satellite",
	} {
		if tech.String() != want {
			t.Errorf("%d.String() = %q", tech, tech.String())
		}
	}
}
