package market

import (
	"math"
	"reflect"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// planKey identifies a plan independent of the price sort, which policy
// transforms may reorder.
type planKey struct {
	ISP  string
	Down unit.Bitrate
	Dedi bool
}

func byKey(t *testing.T, c Catalog) map[planKey]Plan {
	t.Helper()
	out := make(map[planKey]Plan, len(c.Plans))
	for _, p := range c.Plans {
		k := planKey{p.ISP, p.Down, p.Dedicated}
		if _, dup := out[k]; dup {
			t.Fatalf("duplicate plan key %+v", k)
		}
		out[k] = p
	}
	return out
}

func TestBuildAllCatalogsSeedDeterminism(t *testing.T) {
	profiles := World()
	a := BuildAllCatalogs(profiles, randx.New(42))
	b := BuildAllCatalogs(profiles, randx.New(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different catalogs")
	}
	c := BuildAllCatalogs(profiles, randx.New(43))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical catalogs")
	}
	// Per-country streams are split off the parent by code, so the world
	// map and a solo build agree plan for plan.
	de := BuildCatalog(profileFor(t, "DE"), randx.New(42).Split("catalog-DE"))
	if !reflect.DeepEqual(a["DE"], de) {
		t.Fatal("BuildAllCatalogs and solo BuildCatalog disagree for DE")
	}
}

func TestTierPriceUSDEdges(t *testing.T) {
	p := Profile{AccessPriceUSD: 30, UpgradeCostPerMbps: 2}
	cases := []struct {
		tier, want float64
	}{
		{1, 30},           // access price anchors 1 Mbps
		{11, 30 + 2*10},   // linear slope above the anchor
		{0.5, 30 * 0.775}, // sub-Mbps discount: 0.55 + 0.45*0.5
		{0.25, 30 * 0.6625},
	}
	for _, c := range cases {
		if got := tierPriceUSD(p, c.tier); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("tierPriceUSD(%.2f) = %.4f, want %.4f", c.tier, got, c.want)
		}
	}
}

func TestCapForBounds(t *testing.T) {
	rng := randx.New(9)
	for _, tier := range []float64{0.5, 1, 8, 100, 1000} {
		for i := 0; i < 200; i++ {
			cap := capFor(tier, rng)
			gb := float64(cap) / float64(unit.GB)
			lo, hi := 20+tier*12*0.5, 20+tier*12*1.5
			if hi > 600 {
				hi = 600
			}
			if lo > 600 {
				lo = 600
			}
			if gb < lo-1 || gb > hi+1 {
				t.Fatalf("capFor(%v) = %.1f GB outside [%.1f, %.1f]", tier, gb, lo, hi)
			}
		}
	}
}

func TestTechForEdges(t *testing.T) {
	rng := randx.New(11)
	allowed := map[float64]map[Technology]bool{
		0.5: {DSL: true, FixedWireless: true},
		10:  {DSL: true, Cable: true},
		40:  {Cable: true, Fiber: true},
		100: {Fiber: true},
		500: {Fiber: true},
	}
	for tier, ok := range allowed {
		for i := 0; i < 200; i++ {
			if tech := techFor(tier, rng); !ok[tech] {
				t.Fatalf("techFor(%v) = %v not in allowed set %v", tier, tech, ok)
			}
		}
	}
}

// The policy levers must not perturb the RNG stream: a regulated catalog at
// the same seed differs from the unregulated one only on the plans the
// lever targets.
func TestPolicyLeversAreRNGNeutral(t *testing.T) {
	base := byKey(t, BuildCatalog(profileFor(t, "NZ"), randx.New(3).Split("x")))

	t.Run("price cap touches only expensive plans", func(t *testing.T) {
		p := profileFor(t, "NZ")
		p.TierPriceCapUSD = 60
		got := byKey(t, BuildCatalog(p, randx.New(3).Split("x")))
		if len(got) != len(base) {
			t.Fatalf("plan count changed: %d vs %d", len(got), len(base))
		}
		capped := 0
		for k, g := range got {
			b := base[k]
			if b.PriceUSD > 60 {
				capped++
				if g.PriceUSD != 60 {
					t.Fatalf("plan %+v not clamped: %v", k, g.PriceUSD)
				}
				if math.Abs(g.PriceLocal-60*p.Country.PPPFactor) > 1e-9 {
					t.Fatalf("PriceLocal not retied to PPP: %v", g.PriceLocal)
				}
				// Everything but price is untouched.
				g.PriceUSD, g.PriceLocal = b.PriceUSD, b.PriceLocal
			}
			if g != b {
				t.Fatalf("untargeted field drifted on %+v:\n got %+v\nbase %+v", k, g, b)
			}
		}
		if capped == 0 {
			t.Fatal("cap of $60 touched no NZ plan; test is vacuous")
		}
	})

	t.Run("uncap clears caps and nothing else", func(t *testing.T) {
		p := profileFor(t, "NZ")
		p.UncapAll = true
		got := byKey(t, BuildCatalog(p, randx.New(3).Split("x")))
		had := 0
		for k, g := range got {
			b := base[k]
			if g.Cap != 0 {
				t.Fatalf("plan %+v still capped: %v", k, g.Cap)
			}
			if b.Cap != 0 {
				had++
			}
			g.Cap = b.Cap
			if g != b {
				t.Fatalf("uncap drifted a non-cap field on %+v", k)
			}
		}
		if had == 0 {
			t.Fatal("baseline NZ catalog had no capped plan; test is vacuous")
		}
	})

	t.Run("cap scale doubles existing caps only", func(t *testing.T) {
		p := profileFor(t, "NZ")
		p.CapScale = 2
		got := byKey(t, BuildCatalog(p, randx.New(3).Split("x")))
		for k, g := range got {
			b := base[k]
			if b.Cap == 0 && g.Cap != 0 {
				t.Fatalf("cap appeared from nothing on %+v", k)
			}
			if b.Cap != 0 && g.Cap != unit.ByteSize(2*float64(b.Cap)) {
				t.Fatalf("cap not doubled on %+v: %v vs %v", k, g.Cap, b.Cap)
			}
		}
	})

	t.Run("price scale rescales every shared plan", func(t *testing.T) {
		p := profileFor(t, "NZ")
		p.PriceScale = 0.5
		got := byKey(t, BuildCatalog(p, randx.New(3).Split("x")))
		for k, g := range got {
			b := base[k]
			want := unit.USD(math.Max(float64(b.PriceUSD)*0.5, 1))
			if math.Abs(float64(g.PriceUSD-want)) > 1e-9 {
				t.Fatalf("plan %+v price %v, want %v", k, g.PriceUSD, want)
			}
		}
	})

	t.Run("fiberize flips only fast tiers", func(t *testing.T) {
		p := profileFor(t, "NZ")
		p.FiberAboveMbps = 10
		got := byKey(t, BuildCatalog(p, randx.New(3).Split("x")))
		flipped := 0
		for k, g := range got {
			b := base[k]
			switch {
			case b.Down.Mbps() >= 10 && !b.Dedicated:
				if g.Tech != Fiber {
					t.Fatalf("fast plan %+v not fiberized: %v", k, g.Tech)
				}
				if b.Tech != Fiber {
					flipped++
				}
			default:
				if g.Tech != b.Tech {
					t.Fatalf("slow/dedicated plan %+v changed tech", k)
				}
			}
		}
		if flipped == 0 {
			t.Fatal("fiberize flipped nothing; test is vacuous")
		}
	})
}

func TestPriceCapExemptsDedicatedLines(t *testing.T) {
	p := profileFor(t, "AF") // Afghanistan sells dedicated-line outliers
	if !p.DedicatedPlans {
		t.Fatal("expected AF to market dedicated plans")
	}
	p.TierPriceCapUSD = 50
	cat := BuildCatalog(p, randx.New(5).Split("x"))
	sawDedicated := false
	for _, plan := range cat.Plans {
		if plan.Dedicated {
			sawDedicated = true
			if plan.PriceUSD <= 50 {
				t.Fatalf("dedicated outlier was capped: %v", plan)
			}
		} else if plan.PriceUSD > 50 {
			t.Fatalf("shared plan escaped the cap: %v", plan)
		}
	}
	if !sawDedicated {
		t.Fatal("no dedicated plan generated")
	}
}

// Scalar profile overrides (the scenario-delta path) shift prices without
// perturbing the draw sequence: same plan count, same caps, same techs.
func TestProfileOverrideKeepsDrawSequence(t *testing.T) {
	base := byKey(t, BuildCatalog(profileFor(t, "BW"), randx.New(8).Split("x")))
	p := profileFor(t, "BW")
	p.AccessPriceUSD *= 0.6
	p.UpgradeCostPerMbps *= 0.6
	got := byKey(t, BuildCatalog(p, randx.New(8).Split("x")))
	if len(got) != len(base) {
		t.Fatalf("plan count changed: %d vs %d", len(got), len(base))
	}
	cheaper := 0
	for k, g := range got {
		b := base[k]
		if g.Cap != b.Cap || g.Tech != b.Tech || g.Up != b.Up {
			t.Fatalf("non-price field drifted on %+v", k)
		}
		if g.PriceUSD < b.PriceUSD {
			cheaper++
		}
	}
	if cheaper == 0 {
		t.Fatal("price override moved no price")
	}
}

func TestHasPolicy(t *testing.T) {
	if (Profile{}).HasPolicy() {
		t.Fatal("zero profile reports a policy")
	}
	for _, p := range []Profile{
		{PriceScale: 0.5}, {TierPriceCapUSD: 10}, {CapScale: 2},
		{UncapAll: true}, {FiberAboveMbps: 4},
	} {
		if !p.HasPolicy() {
			t.Fatalf("%+v should report a policy", p)
		}
	}
}
