package market

import (
	"fmt"
	"sort"

	"github.com/nwca/broadband/internal/unit"
)

// Technology is the access technology of a retail plan; it drives the
// quality profile (satellite and fixed-wireless lines carry the long
// latencies and loss bursts the paper observes in its tails).
type Technology int

// Access technologies seen in the survey.
const (
	DSL Technology = iota
	Cable
	Fiber
	FixedWireless
	Satellite
)

// String names the technology.
func (t Technology) String() string {
	switch t {
	case DSL:
		return "DSL"
	case Cable:
		return "Cable"
	case Fiber:
		return "Fiber"
	case FixedWireless:
		return "FixedWireless"
	case Satellite:
		return "Satellite"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Plan is one retail broadband offer: the unit of the pricing survey.
type Plan struct {
	Country    string // ISO country code
	ISP        string
	Down       unit.Bitrate
	Up         unit.Bitrate
	PriceLocal float64       // monthly price in local currency
	PriceUSD   unit.USD      // monthly price in USD PPP (normalized at survey build time)
	Cap        unit.ByteSize // monthly traffic cap; 0 = unlimited
	Tech       Technology
	// Dedicated marks non-shared business-grade lines (the survey outliers
	// that weaken price–capacity correlation in markets like Afghanistan).
	Dedicated bool
}

// String renders the plan compactly.
func (p Plan) String() string {
	capStr := "unlimited"
	if p.Cap > 0 {
		capStr = p.Cap.String()
	}
	return fmt.Sprintf("%s %s %s down / %s up, %s/mo, %s, %s",
		p.Country, p.ISP, p.Down, p.Up, p.PriceUSD, capStr, p.Tech)
}

// Catalog is the set of retail plans available in one country.
type Catalog struct {
	Country Country
	Plans   []Plan
}

// SortByPrice orders plans by ascending USD PPP price (stable under equal
// prices by capacity).
func (c *Catalog) SortByPrice() {
	sort.SliceStable(c.Plans, func(i, j int) bool {
		if c.Plans[i].PriceUSD != c.Plans[j].PriceUSD {
			return c.Plans[i].PriceUSD < c.Plans[j].PriceUSD
		}
		return c.Plans[i].Down < c.Plans[j].Down
	})
}

// FastestAffordable returns the highest-capacity plan priced at or below
// budget, preferring the cheaper of equal-capacity plans. ok is false when
// nothing is affordable.
func (c *Catalog) FastestAffordable(budget unit.USD) (Plan, bool) {
	var best Plan
	found := false
	for _, p := range c.Plans {
		if p.PriceUSD > budget || p.Dedicated {
			continue
		}
		if !found || p.Down > best.Down || (p.Down == best.Down && p.PriceUSD < best.PriceUSD) {
			best = p
			found = true
		}
	}
	return best, found
}

// Cheapest returns the lowest-priced plan (shared plans only).
func (c *Catalog) Cheapest() (Plan, bool) {
	var best Plan
	found := false
	for _, p := range c.Plans {
		if p.Dedicated {
			continue
		}
		if !found || p.PriceUSD < best.PriceUSD {
			best = p
			found = true
		}
	}
	return best, found
}

// NearestTier returns the shared plan whose download capacity is closest to
// the target in log space — the paper's Table 4 matches each country's
// median measured capacity to "the nearest speed tier in our set of
// Internet services".
func (c *Catalog) NearestTier(target unit.Bitrate) (Plan, bool) {
	if target <= 0 {
		return Plan{}, false
	}
	var best Plan
	found := false
	bestDist := 0.0
	for _, p := range c.Plans {
		if p.Dedicated || p.Down <= 0 {
			continue
		}
		d := logDist(float64(p.Down), float64(target))
		if !found || d < bestDist || (d == bestDist && p.PriceUSD < best.PriceUSD) {
			best, bestDist, found = p, d, true
		}
	}
	return best, found
}

func logDist(a, b float64) float64 {
	r := a / b
	if r < 1 {
		r = 1 / r
	}
	return r
}
