package market

import (
	"math"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// Subscriber is the decision-theoretic household of the study's title:
// what it needs (a latent demand scale), what it wants (a saturating value
// of capacity above need — headroom for peaks, multiple devices, future
// applications), and what it can afford (a hard monthly budget).
type Subscriber struct {
	// NeedMbps is the latent demand scale: the capacity at which the
	// household's applications stop being constrained most of the time.
	NeedMbps float64
	// WTP is the willingness to pay for capacity, in USD of consumer
	// surplus at full saturation of the value curve. It scales with income.
	WTP unit.USD
	// Budget is the maximum acceptable monthly price.
	Budget unit.USD
	// Headroom stretches the value curve: how much capacity beyond raw
	// need the household values (≥1; 2 means value saturates around twice
	// the need scale).
	Headroom float64
}

// Value returns the household's dollar-denominated utility of a plan
// capacity: WTP · (1 − exp(−c / (Headroom·Need))). Concave and saturating —
// the driver of the paper's diminishing-returns observations.
func (s Subscriber) Value(down unit.Bitrate) unit.USD {
	if down <= 0 || s.NeedMbps <= 0 {
		return 0
	}
	scale := s.Headroom * s.NeedMbps
	if scale <= 0 {
		scale = s.NeedMbps
	}
	return s.WTP * unit.USD(1-math.Exp(-down.Mbps()/scale))
}

// Utility returns value minus price; plans above budget are -Inf.
func (s Subscriber) Utility(p Plan) float64 {
	if p.PriceUSD > s.Budget {
		return math.Inf(-1)
	}
	return float64(s.Value(p.Down) - p.PriceUSD)
}

// ChoiceConfig tunes the plan-selection process.
type ChoiceConfig struct {
	// NoiseUSD is the scale of the idiosyncratic (Gumbel) taste shock per
	// plan, modeling the biased and imperfect choices the paper cites
	// (Sec. 3): a few dollars of apparent irrationality.
	NoiseUSD float64
	// SwitchingCost is subtracted from every plan except `current`, making
	// subscribers sticky when re-choosing (upgrade dynamics, Sec. 4).
	SwitchingCost unit.USD
	// Current, when non-nil, is the subscriber's existing plan.
	Current *Plan
}

// Choose selects the utility-maximizing affordable shared plan for the
// subscriber, with Gumbel taste shocks. ok is false when no plan fits the
// budget (the household remains offline — it is simply absent from the
// measurement datasets, matching how unaffordable markets appear as thin
// populations).
func Choose(c Catalog, s Subscriber, cfg ChoiceConfig, rng *randx.Source) (Plan, bool) {
	bestU := math.Inf(-1)
	var best Plan
	found := false
	for _, p := range c.Plans {
		if p.Dedicated {
			continue
		}
		u := s.Utility(p)
		if math.IsInf(u, -1) {
			continue
		}
		if cfg.NoiseUSD > 0 && rng != nil {
			u += cfg.NoiseUSD * gumbel(rng)
		}
		if cfg.Current != nil && !samePlan(*cfg.Current, p) {
			u -= float64(cfg.SwitchingCost)
		}
		if u > bestU {
			bestU = u
			best = p
			found = true
		}
	}
	return best, found
}

// samePlan compares the identity fields of two plans.
func samePlan(a, b Plan) bool {
	return a.Country == b.Country && a.ISP == b.ISP && a.Down == b.Down && a.PriceUSD == b.PriceUSD
}

// gumbel draws a standard Gumbel taste shock (logit choice model).
func gumbel(rng *randx.Source) float64 {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(-math.Log(u))
}
