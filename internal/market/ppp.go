package market

import (
	"fmt"

	"github.com/nwca/broadband/internal/unit"
)

// ToUSDPPP converts a local-currency amount to USD at purchasing power
// parity, given the country's local-units-per-USD-PPP factor (the
// IMF-style conversion the survey and the paper use throughout).
func ToUSDPPP(local float64, pppFactor float64) (unit.USD, error) {
	if pppFactor <= 0 {
		return 0, fmt.Errorf("market: PPP factor must be positive, got %v", pppFactor)
	}
	return unit.USD(local / pppFactor), nil
}

// ToLocal converts a USD PPP amount back to local currency.
func ToLocal(usd unit.USD, pppFactor float64) (float64, error) {
	if pppFactor <= 0 {
		return 0, fmt.Errorf("market: PPP factor must be positive, got %v", pppFactor)
	}
	return usd.Dollars() * pppFactor, nil
}

// IncomeShare returns a monthly price as a fraction of one month of GDP per
// capita — the paper's Table 4 affordability column ("Cost of Internet
// access as percentage of monthly GDP per capita").
func IncomeShare(price unit.USD, c Country) float64 {
	monthly := c.MonthlyGDPPerCapita()
	if monthly <= 0 {
		return 0
	}
	return price.Dollars() / monthly
}
