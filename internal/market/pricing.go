package market

import (
	"fmt"

	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// AccessPrice returns the paper's "price of broadband access" metric for a
// market: the monthly USD PPP cost of the cheapest shared plan with a
// download capacity of at least 1 Mbps (Sec. 5). ok is false when the
// market sells no such plan.
func AccessPrice(c Catalog) (unit.USD, bool) {
	best := unit.USD(0)
	found := false
	for _, p := range c.Plans {
		if p.Dedicated || p.Down < 1*unit.Mbps {
			continue
		}
		if !found || p.PriceUSD < best {
			best = p.PriceUSD
			found = true
		}
	}
	return best, found
}

// AccessPriceGroup is the paper's three-way banding of markets by access
// price (Sec. 5, Table 3).
type AccessPriceGroup int

// The paper's access-price bands.
const (
	AccessCheap     AccessPriceGroup = iota // ($0, $25] per month
	AccessMid                               // ($25, $60]
	AccessExpensive                         // ($60, ∞)
)

// String renders the band as the paper's tables do.
func (g AccessPriceGroup) String() string {
	switch g {
	case AccessCheap:
		return "($0, $25]"
	case AccessMid:
		return "($25, $60]"
	case AccessExpensive:
		return "($60, inf)"
	default:
		return fmt.Sprintf("AccessPriceGroup(%d)", int(g))
	}
}

// GroupOfAccessPrice bands an access price.
func GroupOfAccessPrice(p unit.USD) AccessPriceGroup {
	switch {
	case p <= 25:
		return AccessCheap
	case p <= 60:
		return AccessMid
	default:
		return AccessExpensive
	}
}

// UpgradeCost is the paper's "cost of increasing capacity" analysis for one
// market (Sec. 6): an OLS regression of monthly plan price (USD PPP) on
// download capacity (Mbps) over the shared plans of the catalog.
type UpgradeCost struct {
	Country string
	// Slope is the fitted price increase per additional Mbps per month.
	Slope unit.PerMbps
	// R is the price–capacity correlation. The paper only trusts slopes
	// from markets with at least moderate correlation (R > 0.4).
	R float64
	// N is the number of plans regressed.
	N int
}

// Reliable reports whether the market clears the paper's moderate-
// correlation bar for using the slope (r > 0.4).
func (u UpgradeCost) Reliable() bool { return u.R > 0.4 }

// StrongCorrelation reports the paper's strong-correlation bar (r > 0.8).
func (u UpgradeCost) StrongCorrelation() bool { return u.R > 0.8 }

// EstimateUpgradeCost regresses price on capacity for one catalog. All
// plans — including dedicated outliers and capped plans — enter the
// regression, exactly as the survey rows would; that is what depresses the
// correlation in markets like Afghanistan.
func EstimateUpgradeCost(c Catalog) (UpgradeCost, error) {
	xs := make([]float64, 0, len(c.Plans))
	ys := make([]float64, 0, len(c.Plans))
	for _, p := range c.Plans {
		if p.Down <= 0 {
			continue
		}
		xs = append(xs, p.Down.Mbps())
		ys = append(ys, p.PriceUSD.Dollars())
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return UpgradeCost{}, fmt.Errorf("market %s: %w", c.Country.Code, err)
	}
	return UpgradeCost{
		Country: c.Country.Code,
		Slope:   unit.PerMbps(fit.Slope),
		R:       fit.R,
		N:       fit.N,
	}, nil
}

// UpgradeCostGroup is the paper's three-way banding of markets by the cost
// of increasing capacity (Sec. 6, Table 6).
type UpgradeCostGroup int

// The paper's upgrade-cost bands.
const (
	UpgradeCheap     UpgradeCostGroup = iota // ($0, $0.50] per Mbps per month
	UpgradeMid                               // ($0.50, $1.00]
	UpgradeExpensive                         // ($1.00, ∞)
)

// String renders the band as the paper's tables do.
func (g UpgradeCostGroup) String() string {
	switch g {
	case UpgradeCheap:
		return "($0, $0.50]"
	case UpgradeMid:
		return "($0.50, $1.00]"
	case UpgradeExpensive:
		return "($1.00, inf)"
	default:
		return fmt.Sprintf("UpgradeCostGroup(%d)", int(g))
	}
}

// GroupOfUpgradeCost bands an upgrade-cost slope.
func GroupOfUpgradeCost(s unit.PerMbps) UpgradeCostGroup {
	switch {
	case s <= 0.5:
		return UpgradeCheap
	case s <= 1.0:
		return UpgradeMid
	default:
		return UpgradeExpensive
	}
}

// MarketSummary aggregates the per-market metrics every experiment joins
// against user records.
type MarketSummary struct {
	Country     Country
	AccessPrice unit.USD
	AccessGroup AccessPriceGroup
	Upgrade     UpgradeCost
}

// Summarize computes the summary of one catalog.
func Summarize(c Catalog) (MarketSummary, error) {
	price, ok := AccessPrice(c)
	if !ok {
		return MarketSummary{}, fmt.Errorf("market %s: no plan of at least 1 Mbps", c.Country.Code)
	}
	up, err := EstimateUpgradeCost(c)
	if err != nil {
		return MarketSummary{}, err
	}
	return MarketSummary{
		Country:     c.Country,
		AccessPrice: price,
		AccessGroup: GroupOfAccessPrice(price),
		Upgrade:     up,
	}, nil
}
