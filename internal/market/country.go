// Package market models national retail broadband markets: countries and
// their economies, ISP plan catalogs, purchasing-power-parity normalization,
// the paper's two market price metrics (the price of broadband access and
// the cost of increasing capacity), and the subscriber plan-choice model
// that gives the study its title — what a household needs, what it wants,
// and what it can afford.
//
// The original study consumed Google's "Policy by the Numbers" retail-plan
// survey (1,523 plans, 99 countries), which is no longer retrievable. This
// package instead generates plan catalogs from a parameterized profile per
// country (internal/market/worlddata.go) whose parameters are set to the
// cross-country structure the paper reports: which markets are expensive,
// where upgrades are cheap, which regions pay more than $10 per additional
// Mbps. Analyses then run against the generated catalog exactly as they
// would against the survey.
package market

import "fmt"

// Region is the geographic/economic grouping used by the paper's Table 5.
// Asia is split into developed and developing subgroups, following the IMF
// classification the paper cites.
type Region int

// The paper's regions (plus Oceania, which hosts survey countries such as
// New Zealand but is not a row in Table 5).
const (
	Africa Region = iota
	AsiaDeveloped
	AsiaDeveloping
	CentralAmericaCaribbean
	Europe
	MiddleEast
	NorthAmerica
	SouthAmerica
	Oceania
	numRegions
)

// Regions lists all regions in the order Table 5 presents them (with
// Oceania appended).
func Regions() []Region {
	return []Region{
		Africa, AsiaDeveloped, AsiaDeveloping, CentralAmericaCaribbean,
		Europe, MiddleEast, NorthAmerica, SouthAmerica, Oceania,
	}
}

// String renders the region as the paper labels it.
func (r Region) String() string {
	switch r {
	case Africa:
		return "Africa"
	case AsiaDeveloped:
		return "Asia (developed)"
	case AsiaDeveloping:
		return "Asia (developing)"
	case CentralAmericaCaribbean:
		return "Central America/Caribbean"
	case Europe:
		return "Europe"
	case MiddleEast:
		return "Middle East"
	case NorthAmerica:
		return "North America"
	case SouthAmerica:
		return "South America"
	case Oceania:
		return "Oceania"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Country identifies one national market and the economic context used to
// normalize its prices.
type Country struct {
	Code   string // ISO 3166-1 alpha-2
	Name   string
	Region Region
	// GDPPerCapitaPPP is annual GDP per capita in USD at purchasing power
	// parity (IMF-style), used by the paper's affordability case study.
	GDPPerCapitaPPP float64
	// PPPFactor converts local currency to PPP dollars (local units per
	// USD PPP); plan prices are stored in local currency and normalized
	// through this factor, mirroring the survey's methodology.
	PPPFactor float64
	// CurrencyCode is the local currency (for rendering).
	CurrencyCode string
}

// MonthlyGDPPerCapita returns one month of per-capita GDP in USD PPP, the
// denominator of the paper's "cost of Internet access as percentage of
// monthly GDP per capita" column (Table 4).
func (c Country) MonthlyGDPPerCapita() float64 { return c.GDPPerCapitaPPP / 12 }
