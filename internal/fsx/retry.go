package fsx

import (
	"context"
	"errors"
	"math/rand/v2"
	"os"
	"time"
)

// RetryPolicy bounds a retried operation: how many attempts, how the
// sleeps between them grow, and which errors are worth retrying at all.
// The zero value selects the defaults below — a short, capped schedule
// sized for transient filesystem hiccups (NFS blips, overloaded disks,
// antivirus locks), not for outages.
type RetryPolicy struct {
	// Attempts is the total number of tries (not re-tries). Zero or
	// negative selects DefaultAttempts.
	Attempts int
	// Base is the sleep before the second attempt; each further sleep
	// doubles. Zero selects DefaultBase.
	Base time.Duration
	// Cap bounds every sleep after jitter. Zero selects DefaultCap.
	Cap time.Duration
	// Transient reports whether an error is worth another attempt. Nil
	// retries everything except context cancellation, which always stops
	// the schedule immediately.
	Transient func(error) bool
	// Rand supplies the jitter draw in [0, 1); nil uses math/rand/v2.
	// Tests inject a fixed function to pin the schedule.
	Rand func() float64
}

// Retry defaults.
const (
	DefaultAttempts = 4
	DefaultBase     = 5 * time.Millisecond
	DefaultCap      = 250 * time.Millisecond
)

func (p RetryPolicy) attempts() int {
	if p.Attempts <= 0 {
		return DefaultAttempts
	}
	return p.Attempts
}

func (p RetryPolicy) base() time.Duration {
	if p.Base <= 0 {
		return DefaultBase
	}
	return p.Base
}

func (p RetryPolicy) cap() time.Duration {
	if p.Cap <= 0 {
		return DefaultCap
	}
	return p.Cap
}

// sleep computes the jittered backoff before attempt n (0-based: sleep(0)
// precedes the second attempt): min(cap, base<<n) scaled by a uniform
// [0.5, 1) draw so a herd of retriers decorrelates.
func (p RetryPolicy) sleep(n int) time.Duration {
	d := p.base() << uint(n)
	if d <= 0 || d > p.cap() { // <<: overflow guard
		d = p.cap()
	}
	draw := rand.Float64
	if p.Rand != nil {
		draw = p.Rand
	}
	return time.Duration((0.5 + 0.5*draw()) * float64(d))
}

// Retry runs op under the policy: up to Attempts tries separated by
// jittered, capped exponential backoff. It returns nil on the first
// success and the last error otherwise. Context cancellation is honored
// both between attempts and while sleeping, and an error that is (or
// wraps) the context's error is never retried — the caller is leaving.
func Retry(ctx context.Context, p RetryPolicy, op func() error) error {
	var err error
	for n := 0; n < p.attempts(); n++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return err
		}
		if err = op(); err == nil {
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if p.Transient != nil && !p.Transient(err) {
			return err
		}
		if n == p.attempts()-1 {
			break
		}
		t := time.NewTimer(p.sleep(n))
		select {
		case <-ctx.Done():
			t.Stop()
			return err
		case <-t.C:
		}
	}
	return err
}

// RetryWrite is WriteFileAtomic under a retry policy: transient write
// failures (the staged temp file is always cleaned up between attempts)
// are retried with capped exponential backoff, so a blip during an
// artifact or report write does not cost the whole run. The atomicity
// contract is unchanged — the destination sees either its old content or
// the full new content, whatever attempt lands it.
func RetryWrite(ctx context.Context, p RetryPolicy, path string, data []byte, perm os.FileMode) error {
	return Retry(ctx, p, func() error { return WriteFileAtomic(path, data, perm) })
}

// RetryRead is os.ReadFile under a retry policy, for readers whose
// transport can fail transiently (the serve disk store's pointer files).
// os.ErrNotExist is treated as final unless the policy's Transient hook
// says otherwise: a missing file is a state, not a blip.
func RetryRead(ctx context.Context, p RetryPolicy, path string) ([]byte, error) {
	if p.Transient == nil {
		p.Transient = func(err error) bool { return !errors.Is(err, os.ErrNotExist) }
	}
	var data []byte
	err := Retry(ctx, p, func() error {
		var rerr error
		data, rerr = os.ReadFile(path)
		return rerr
	})
	return data, err
}
