package fsx

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("read %q, want %q", got, "second")
	}
}

func TestAbandonedAtomicFileLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "keep" {
		t.Errorf("abandoned write clobbered destination: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestCommitThenCloseIsSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("Close after Commit should be a no-op, got %v", err)
	}
	if err := f.Commit(); err == nil {
		t.Error("double Commit should fail")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "data" {
		t.Errorf("read %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestCopyAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "copy.txt")
	n, err := CopyAtomic(path, strings.NewReader("stream"))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len("stream")) {
		t.Errorf("copied %d bytes", n)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "stream" {
		t.Errorf("read %q", got)
	}
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles checks that no staging files survive in dir.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("staging file left behind: %s", e.Name())
		}
	}
}
