package fsx_test

// The retry tests live in fsx_test so they can drive fsx.Retry with the
// chaos package's deterministic flaky-writer wrapper (chaos itself imports
// fsx for its atomic rewrites, so an internal test would cycle).

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/nwca/broadband/internal/chaos"
	"github.com/nwca/broadband/internal/fsx"
)

// fastPolicy keeps test sleeps microscopic and jitter pinned.
func fastPolicy(attempts int) fsx.RetryPolicy {
	return fsx.RetryPolicy{
		Attempts: attempts,
		Base:     time.Microsecond,
		Cap:      10 * time.Microsecond,
		Rand:     func() float64 { return 0 },
	}
}

func TestRetryAgainstFlakyWriter(t *testing.T) {
	// A flaky writer at rate 0.5: whether call n fails is a pure function
	// of (seed, file, n), so the whole schedule below is deterministic.
	in := chaos.New(chaos.Config{Seed: 7})
	var buf bytes.Buffer
	w := in.FlakyWriter("report.json", &buf, 0.5)

	payload := []byte("retry payload")
	var attempts int
	err := fsx.Retry(context.Background(), fastPolicy(32), func() error {
		attempts++
		buf.Reset() // a failed call wrote nothing, but stay defensive
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatalf("buffer = %q, want %q", buf.Bytes(), payload)
	}
	if attempts < 1 || attempts > 32 {
		t.Fatalf("attempts = %d", attempts)
	}
	t.Logf("succeeded on attempt %d", attempts)
}

func TestRetryExhaustsBudget(t *testing.T) {
	in := chaos.New(chaos.Config{Seed: 1})
	w := in.FlakyWriter("doomed.csv", bytes.NewBuffer(nil), 1.0) // every call fails
	attempts := 0
	err := fsx.Retry(context.Background(), fastPolicy(5), func() error {
		attempts++
		_, werr := w.Write([]byte("x"))
		return werr
	})
	var fe *chaos.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *chaos.FaultError", err)
	}
	if attempts != 5 {
		t.Fatalf("attempts = %d, want 5", attempts)
	}
	if fe.Call != 5 {
		t.Fatalf("last fault at call %d, want 5", fe.Call)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := fsx.Retry(ctx, fsx.RetryPolicy{Attempts: 50, Base: time.Hour}, func() error {
		attempts++
		cancel() // cancelled mid-schedule: the backoff sleep must not block
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("want error after cancellation")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry after cancel)", attempts)
	}
}

func TestRetryRespectsTransientClassifier(t *testing.T) {
	final := errors.New("final")
	attempts := 0
	err := fsx.Retry(context.Background(), fsx.RetryPolicy{
		Attempts: 10, Base: time.Microsecond,
		Transient: func(err error) bool { return !errors.Is(err, final) },
	}, func() error {
		attempts++
		return final
	})
	if !errors.Is(err, final) || attempts != 1 {
		t.Fatalf("err = %v after %d attempts, want final after 1", err, attempts)
	}
}

func TestRetryWriteLandsAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := fsx.RetryWrite(context.Background(), fastPolicy(3), path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("RetryWrite: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// No staging litter.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(ents))
	}
}

func TestRetryReadMissingFileIsFinal(t *testing.T) {
	attempts := 0
	_, err := fsx.RetryRead(context.Background(), fsx.RetryPolicy{
		Attempts: 5, Base: time.Microsecond,
		Transient: nil, // default classifier: ErrNotExist is final
	}, filepath.Join(t.TempDir(), "nope"))
	_ = attempts
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}
