// Package fsx provides crash-safe filesystem primitives for the pipeline's
// artifact writers: every output file is staged in a hidden temp file in the
// destination directory and renamed into place only after a successful
// write, so a crash, a write error, or a context cancellation can never
// leave a truncated artifact at the final path. Readers therefore see either
// the previous complete file or the new complete file, never a partial one.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicFile stages writes to path in a temporary sibling file. Commit
// renames the staged bytes into place; Close without Commit (or after a
// failed Commit) removes the temp file. The zero value is not usable; use
// CreateAtomic.
type AtomicFile struct {
	path string
	tmp  *os.File
	done bool
}

// CreateAtomic opens a temp file next to path for staged writing. The temp
// file lives in the same directory so the final rename is atomic (same
// filesystem) and is prefixed with "." so directory scans and glob loaders
// never pick up an in-flight artifact.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{path: path, tmp: tmp}, nil
}

// Write appends to the staged file.
func (f *AtomicFile) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Name returns the final destination path (not the temp path).
func (f *AtomicFile) Name() string { return f.path }

// Commit flushes the staged bytes durably and renames them into place. On
// any failure the temp file is removed and the destination is untouched.
func (f *AtomicFile) Commit() error {
	if f.done {
		return fmt.Errorf("fsx: %s: already committed or closed", f.path)
	}
	f.done = true
	tmpName := f.tmp.Name()
	if err := f.tmp.Sync(); err != nil {
		f.tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := f.tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, f.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Close abandons the staged write, removing the temp file. It is a no-op
// after Commit, so `defer f.Close()` is the standard cleanup pattern.
func (f *AtomicFile) Close() error {
	if f.done {
		return nil
	}
	f.done = true
	f.tmp.Close()
	return os.Remove(f.tmp.Name())
}

// WriteFileAtomic is os.WriteFile with the temp-file + rename contract: the
// destination either keeps its old content or receives the full new content.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	f, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.tmp.Chmod(perm); err != nil {
		return err
	}
	return f.Commit()
}

// CopyAtomic streams from r into path with the same staging contract.
func CopyAtomic(path string, r io.Reader) (int64, error) {
	f, err := CreateAtomic(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := io.Copy(f, r)
	if err != nil {
		return n, err
	}
	return n, f.Commit()
}
