package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/nwca/broadband/internal/chaos"
	"github.com/nwca/broadband/internal/dataset"
)

// TestSoakStormAndDrain is the resilience gate: a deterministic chaos
// storm — clean uploads racing slow-loris, mid-upload-disconnect, and
// corrupt-gzip clients, interleaved with concurrent artifact queries —
// against a live listener over a disk store, under -race in CI. It pins
// the tentpole's four promises:
//
//  1. no stored-dataset corruption: every surviving entry validates and
//     re-hashes to the pointer it is stored under;
//  2. byte-identical results: every 200 for the same (artifact, seed) is
//     the same bytes;
//  3. zero 5xx from non-panic paths, whatever the storm does;
//  4. drain completes within its deadline, and the process leaks no
//     goroutines from first request to last.
func TestSoakStormAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm soak")
	}
	goroutinesBefore := runtime.NumGoroutine()

	store, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Store:          store,
		MaxInFlight:    8,
		RequestTimeout: 1 * time.Second,
		Quarantine:     dataset.QuarantineOptions{MaxBadFrac: 0.9},
		Log:            quietLogger(),
	})
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	// Prime one dataset sequentially so queries always have a target.
	body, ctype := cleanUploadBody(t)
	resp, err := client.Post(ts.URL+"/v1/datasets/panel", ctype, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("prime upload status %d", resp.StatusCode)
	}

	// Every observed response status, by operation kind.
	var (
		mu       sync.Mutex
		statuses []struct {
			op   string
			code int
		}
	)
	record := func(op string, code int) {
		mu.Lock()
		statuses = append(statuses, struct {
			op   string
			code int
		}{op, code})
		mu.Unlock()
	}

	const uploads = 24
	inj := chaos.New(chaos.Config{Seed: 1405})
	plan := inj.HTTPFaultPlan(uploads, 0.5)
	u, sw, p := worldTables(t)

	var wg sync.WaitGroup
	for i, fault := range plan {
		wg.Add(1)
		go func(i int, fault chaos.HTTPFault) {
			defer wg.Done()
			name := fmt.Sprintf("storm-%d", i%4)
			var reqBody io.Reader = bytes.NewReader(body)
			reqCtype := ctype
			switch fault {
			case chaos.HTTPSlowLoris:
				// ~128 KB/s against a ~1 MB body: the 1s deadline, not the
				// client, decides when this request ends.
				reqBody = chaos.SlowBody(body, 256, 2*time.Millisecond)
			case chaos.HTTPDisconnect:
				reqBody = chaos.BrokenBody(body, len(body)/3)
			case chaos.HTTPCorruptGzip:
				gz, _ := inj.CorruptGzipBytes(fmt.Sprintf("storm|%d", i), chaos.GzipBytes(u))
				var b []byte
				b, reqCtype = multipartUpload(t, map[string][]byte{
					"users.csv.gz": gz, "switches.csv": sw, "plans.csv": p,
				}, "users.csv.gz", "switches.csv", "plans.csv")
				reqBody = bytes.NewReader(b)
			}
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/"+name, reqBody)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", reqCtype)
			resp, err := client.Do(req)
			if err != nil {
				// Disconnects and cut-off loris bodies legitimately surface
				// as client-side errors; the server-side invariants are
				// checked after the storm.
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			record("upload/"+fault.String(), resp.StatusCode)
		}(i, fault)
	}

	// Concurrent identical queries: 16 per artifact, fired while the
	// upload storm runs. All 200s for one URL must be the same bytes.
	slugs := []string{"fig02", "table01", "fig10"}
	bodies := make(map[string][][]byte)
	for _, slug := range slugs {
		for j := 0; j < 16; j++ {
			wg.Add(1)
			go func(slug string) {
				defer wg.Done()
				// A shed (429) is the server asking the client to come
				// back: retry a bounded number of times, as a well-behaved
				// client would.
				for attempt := 0; attempt < 100; attempt++ {
					resp, err := client.Get(ts.URL + "/v1/datasets/panel/artifacts/" + slug + "?seed=3")
					if err != nil {
						t.Errorf("query %s: %v", slug, err)
						return
					}
					b, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					record("query/"+slug, resp.StatusCode)
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(25 * time.Millisecond)
						continue
					}
					if err != nil || resp.StatusCode != http.StatusOK {
						return
					}
					mu.Lock()
					bodies[slug] = append(bodies[slug], b)
					mu.Unlock()
					return
				}
			}(slug)
		}
	}
	wg.Wait()

	// 3. No 5xx anywhere: overload is 429, client faults are 4xx.
	okUploads := 0
	for _, st := range statuses {
		if st.code >= 500 {
			t.Errorf("%s returned %d", st.op, st.code)
		}
		if st.op == "upload/none" && st.code == http.StatusCreated {
			okUploads++
		}
	}
	if okUploads == 0 {
		t.Error("no clean upload survived the storm (shedding too aggressive to test storage)")
	}

	// 2. Byte-identical concurrent queries.
	for _, slug := range slugs {
		got := bodies[slug]
		if len(got) == 0 {
			t.Errorf("no successful query for %s", slug)
			continue
		}
		for i, b := range got {
			if !bytes.Equal(b, got[0]) {
				t.Errorf("%s: response %d of %d diverged", slug, i, len(got))
				break
			}
		}
	}

	// 1. Stored datasets are uncorrupted: valid, and their content still
	// hashes to the pointer they are stored under.
	infos := s.store.List()
	if len(infos) == 0 {
		t.Fatal("store empty after storm")
	}
	for _, info := range infos {
		e, ok := s.store.Get(info.Name)
		if !ok {
			t.Errorf("listed dataset %s not gettable", info.Name)
			continue
		}
		if err := e.Dataset.Validate(); err != nil {
			t.Errorf("stored dataset %s corrupt: %v", info.Name, err)
		}
		if rehash, err := HashDataset(e.Dataset); err != nil || rehash != e.Hash {
			t.Errorf("stored dataset %s content drifted from its hash (%v)", info.Name, err)
		}
	}

	// 4a. Drain completes within its deadline.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	rz, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", rz.StatusCode)
	}

	// 4b. No goroutine leaks once the listener and clients are gone.
	ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before storm, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
