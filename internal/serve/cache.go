package serve

import "sync"

// resultCache memoizes serialized artifact results keyed on (dataset
// content hash, artifact ID, seed). Because the key is the content hash —
// not the dataset name — concurrent identical queries are byte-identical
// by construction: whichever request wins the per-entry once serializes
// the report, and every other request serves the exact same bytes. A
// re-upload that changes the data changes the hash, so stale results are
// unreachable rather than invalidated.
type resultCache struct {
	mu sync.Mutex
	m  map[resultKey]*resultEntry
}

type resultKey struct {
	hash     string
	artifact string
	seed     uint64
}

type resultEntry struct {
	once sync.Once
	data []byte
	err  error
}

// maxCacheEntries bounds the cache; seeds are caller-chosen, so the key
// space is unbounded. Eviction is arbitrary (map order) — the cache is a
// dedup layer, not an LRU; recomputing an evicted entry is just work.
const maxCacheEntries = 4096

func newResultCache() *resultCache {
	return &resultCache{m: make(map[resultKey]*resultEntry)}
}

// get returns the cached bytes for k, computing them at most once per
// entry however many requests race. Failed computations are not cached:
// an error entry is removed so the next request retries (a context
// deadline from one slow request must not poison the key forever).
func (c *resultCache) get(k resultKey, compute func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		if len(c.m) >= maxCacheEntries {
			for victim := range c.m {
				delete(c.m, victim)
				break
			}
		}
		e = &resultEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()

	e.once.Do(func() { e.data, e.err = compute() })
	if e.err != nil {
		c.mu.Lock()
		if c.m[k] == e {
			delete(c.m, k)
		}
		c.mu.Unlock()
	}
	return e.data, e.err
}
