package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/fsx"
)

// Entry is one stored dataset: the frozen in-memory panel plus the
// quarantine report its upload produced. Entries are immutable once
// stored — a re-upload under the same name replaces the entry wholesale —
// so concurrent readers never need a lock past the store lookup.
type Entry struct {
	Name       string
	Hash       string // content hash; the artifact-cache key component
	Dataset    *dataset.Dataset
	Quarantine *dataset.QuarantineReport
}

// Info is the metadata view of an entry that list/get endpoints render.
type Info struct {
	Name            string `json:"name"`
	Hash            string `json:"hash"`
	Users           int    `json:"users"`
	Switches        int    `json:"switches"`
	Plans           int    `json:"plans"`
	Markets         int    `json:"markets"`
	RowsRead        int    `json:"rows_read"`
	RowsQuarantined int    `json:"rows_quarantined"`
}

func (e *Entry) info() Info {
	i := Info{
		Name:     e.Name,
		Hash:     e.Hash,
		Users:    len(e.Dataset.Users),
		Switches: len(e.Dataset.Switches),
		Plans:    len(e.Dataset.Plans),
		Markets:  len(e.Dataset.Markets),
	}
	if e.Quarantine != nil {
		i.RowsRead = e.Quarantine.RowsRead
		i.RowsQuarantined = len(e.Quarantine.Diags)
	}
	return i
}

// HashDataset content-addresses a dataset: sha256 over the three
// deterministic CSV streams in fixed order. Two datasets with identical
// rows hash identically whatever path they arrived by, which is what lets
// the artifact cache serve byte-identical results across re-uploads.
func HashDataset(d *dataset.Dataset) (string, error) {
	h := sha256.New()
	if err := dataset.WriteUsers(h, d.Users); err != nil {
		return "", err
	}
	if err := dataset.WriteSwitches(h, d.Switches); err != nil {
		return "", err
	}
	if err := dataset.WritePlans(h, d.Plans); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Store is the dataset storage backend. Implementations must be safe for
// concurrent use: the server calls Put/Delete from upload handlers while
// query handlers Get the same names.
type Store interface {
	// Put stores a dataset under name, replacing any previous entry, and
	// returns its content hash. The dataset must already be validated and
	// frozen; the store takes ownership.
	Put(name string, d *dataset.Dataset, rep *dataset.QuarantineReport) (string, error)
	// Get returns the current entry for name.
	Get(name string) (*Entry, bool)
	// List returns metadata for every stored dataset, sorted by name.
	List() []Info
	// Delete removes name, reporting whether it existed.
	Delete(name string) bool
}

// MemStore is the in-memory backend: a mutex-guarded name→entry map.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string]*Entry)} }

// Put implements Store.
func (s *MemStore) Put(name string, d *dataset.Dataset, rep *dataset.QuarantineReport) (string, error) {
	hash, err := HashDataset(d)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.m[name] = &Entry{Name: name, Hash: hash, Dataset: d, Quarantine: rep}
	s.mu.Unlock()
	return hash, nil
}

// Get implements Store.
func (s *MemStore) Get(name string) (*Entry, bool) {
	s.mu.RLock()
	e, ok := s.m[name]
	s.mu.RUnlock()
	return e, ok
}

// List implements Store.
func (s *MemStore) List() []Info {
	s.mu.RLock()
	out := make([]Info, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, e.info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete implements Store.
func (s *MemStore) Delete(name string) bool {
	s.mu.Lock()
	_, ok := s.m[name]
	delete(s.m, name)
	s.mu.Unlock()
	return ok
}

// DiskStore persists datasets content-addressed under a root directory:
//
//	root/<name>/<hash>/{users.csv,switches.csv,plans.csv,quarantine.json}
//	root/<name>/CURRENT  — the hash the name currently points at
//
// Every write goes through internal/fsx (staged temp file + rename), so a
// crash mid-Put leaves either the old CURRENT or the new one, never a
// pointer to a half-written dataset. CURRENT reads and dataset loads are
// retried with capped exponential backoff (fsx.Retry), riding out the
// transient I/O failures the chaos suite injects. A loaded entry is cached
// in memory; the hash pointer makes staleness detection exact.
type DiskStore struct {
	root string

	mu    sync.Mutex
	cache map[string]*Entry
}

// currentFile is the per-name pointer file naming the live hash.
const currentFile = "CURRENT"

// NewDiskStore opens (creating if needed) a disk store rooted at root.
func NewDiskStore(root string) (*DiskStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store root: %w", err)
	}
	return &DiskStore{root: root, cache: make(map[string]*Entry)}, nil
}

// Put implements Store: save the dataset under its content hash, then
// atomically repoint CURRENT.
func (s *DiskStore) Put(name string, d *dataset.Dataset, rep *dataset.QuarantineReport) (string, error) {
	hash, err := HashDataset(d)
	if err != nil {
		return "", err
	}
	dir := filepath.Join(s.root, name, hash)
	if err := d.SaveDir(dir); err != nil {
		return "", err
	}
	ctx := context.Background()
	if rep != nil {
		repJSON, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return "", err
		}
		if err := fsx.RetryWrite(ctx, fsx.RetryPolicy{}, filepath.Join(dir, "quarantine.json"), repJSON, 0o644); err != nil {
			return "", err
		}
	}
	old, _ := s.currentHash(name)
	if err := fsx.RetryWrite(ctx, fsx.RetryPolicy{}, filepath.Join(s.root, name, currentFile), []byte(hash+"\n"), 0o644); err != nil {
		return "", err
	}
	if old != "" && old != hash {
		os.RemoveAll(filepath.Join(s.root, name, old)) // best-effort GC of the replaced version
	}
	s.mu.Lock()
	s.cache[name] = &Entry{Name: name, Hash: hash, Dataset: d, Quarantine: rep}
	s.mu.Unlock()
	return hash, nil
}

func (s *DiskStore) currentHash(name string) (string, error) {
	b, err := fsx.RetryRead(context.Background(), fsx.RetryPolicy{}, filepath.Join(s.root, name, currentFile))
	if err != nil {
		return "", err
	}
	h := string(b)
	for len(h) > 0 && (h[len(h)-1] == '\n' || h[len(h)-1] == '\r') {
		h = h[:len(h)-1]
	}
	return h, nil
}

// Get implements Store: serve from the in-memory cache when its hash still
// matches CURRENT, otherwise (re)load from disk with retry.
func (s *DiskStore) Get(name string) (*Entry, bool) {
	hash, err := s.currentHash(name)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	if e, ok := s.cache[name]; ok && e.Hash == hash {
		s.mu.Unlock()
		return e, true
	}
	s.mu.Unlock()

	e, err := s.load(name, hash)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.cache[name] = e
	s.mu.Unlock()
	return e, true
}

// load reads one version dir into an Entry, retrying transient failures.
func (s *DiskStore) load(name, hash string) (*Entry, error) {
	dir := filepath.Join(s.root, name, hash)
	var d *dataset.Dataset
	err := fsx.Retry(context.Background(), fsx.RetryPolicy{Transient: func(error) bool { return true }}, func() error {
		var err error
		d, err = dataset.LoadDir(dir)
		return err
	})
	if err != nil {
		return nil, err
	}
	d.Freeze()
	e := &Entry{Name: name, Hash: hash, Dataset: d}
	if b, err := os.ReadFile(filepath.Join(dir, "quarantine.json")); err == nil {
		var rep dataset.QuarantineReport
		if json.Unmarshal(b, &rep) == nil {
			e.Quarantine = &rep
		}
	}
	return e, nil
}

// List implements Store: every name with a readable CURRENT pointer.
func (s *DiskStore) List() []Info {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil
	}
	var out []Info
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		if e, ok := s.Get(de.Name()); ok {
			out = append(out, e.info())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete implements Store.
func (s *DiskStore) Delete(name string) bool {
	s.mu.Lock()
	delete(s.cache, name)
	s.mu.Unlock()
	dir := filepath.Join(s.root, name)
	if _, err := os.Stat(dir); err != nil {
		return false
	}
	return os.RemoveAll(dir) == nil
}
