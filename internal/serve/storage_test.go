package serve

import (
	"testing"
)

func TestMemStoreRoundTrip(t *testing.T) {
	d := testWorld(t)
	s := NewMemStore()
	hash, err := s.Put("alpha", d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 64 {
		t.Fatalf("hash %q is not sha256 hex", hash)
	}
	e, ok := s.Get("alpha")
	if !ok || e.Hash != hash || e.Dataset != d {
		t.Fatalf("Get returned %+v, %v", e, ok)
	}
	// Same content, same hash: the cache key survives re-upload.
	hash2, err := s.Put("beta", d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hash2 != hash {
		t.Fatalf("identical datasets hashed %s vs %s", hash, hash2)
	}
	infos := s.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Users != len(d.Users) {
		t.Fatalf("info users %d, want %d", infos[0].Users, len(d.Users))
	}
	if !s.Delete("alpha") || s.Delete("alpha") {
		t.Fatal("Delete semantics broken")
	}
	if _, ok := s.Get("alpha"); ok {
		t.Fatal("deleted entry still resolvable")
	}
}

func TestDiskStorePersistsAcrossReopen(t *testing.T) {
	d := testWorld(t)
	root := t.TempDir()
	s1, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s1.Put("panel", d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same root must serve the same content.
	s2, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s2.Get("panel")
	if !ok {
		t.Fatal("reopened store lost the dataset")
	}
	if e.Hash != hash {
		t.Fatalf("reopened hash %s, want %s", e.Hash, hash)
	}
	if len(e.Dataset.Users) != len(d.Users) {
		t.Fatalf("reopened %d users, want %d", len(e.Dataset.Users), len(d.Users))
	}
	if err := e.Dataset.Validate(); err != nil {
		t.Fatalf("reopened dataset invalid: %v", err)
	}
	// The reloaded content must hash to the pointer it was stored under —
	// the corruption check the soak test runs at scale.
	if rehash, err := HashDataset(e.Dataset); err != nil || rehash != hash {
		t.Fatalf("reloaded content hashes %s (%v), want %s", rehash, err, hash)
	}
	if got := s2.List(); len(got) != 1 || got[0].Name != "panel" {
		t.Fatalf("List = %+v", got)
	}
	if !s2.Delete("panel") {
		t.Fatal("Delete failed")
	}
	if _, ok := s2.Get("panel"); ok {
		t.Fatal("deleted entry still resolvable")
	}
}
