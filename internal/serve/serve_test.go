package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nwca/broadband/internal/chaos"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/scenario"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = quietLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postUpload(t *testing.T, url, name string, body []byte, contentType string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/datasets/"+name, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestUploadQueryLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, ctype := cleanUploadBody(t)

	resp := postUpload(t, ts.URL, "panel", body, ctype)
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload status %d: %s", resp.StatusCode, b)
	}
	var created struct {
		Info
		Quarantine *dataset.QuarantineReport `json:"quarantine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Users != len(testWorld(t).Users) || created.Hash == "" {
		t.Fatalf("created = %+v", created.Info)
	}

	// Listing and metadata.
	lr, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var infos []Info
	if err := json.NewDecoder(lr.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "panel" {
		t.Fatalf("list = %+v", infos)
	}

	// The artifact registry is served in full.
	ar, err := http.Get(ts.URL + "/v1/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Body.Close()
	var arts []artifactInfo
	if err := json.NewDecoder(ar.Body).Decode(&arts); err != nil {
		t.Fatal(err)
	}
	if len(arts) != 20 {
		t.Fatalf("%d registry artifacts served, want 20", len(arts))
	}

	// Artifact query by slug, twice: byte-identical (cache hit).
	get := func() []byte {
		r, err := http.Get(ts.URL + "/v1/datasets/panel/artifacts/fig02?seed=7")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(r.Body)
			t.Fatalf("artifact status %d: %s", r.StatusCode, b)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, second := get(), get()
	if !bytes.Equal(first, second) {
		t.Fatal("repeated identical queries returned different bytes")
	}
	if !json.Valid(first) {
		t.Fatalf("artifact response is not JSON: %.80s", first)
	}

	// Unknown artifact and dataset 404; invalid name 400.
	for path, want := range map[string]int{
		"/v1/datasets/panel/artifacts/fig99": http.StatusNotFound,
		"/v1/datasets/nope/artifacts/fig02":  http.StatusNotFound,
		"/v1/datasets/No!Pe/artifacts/fig02": http.StatusBadRequest,
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, r.StatusCode, want)
		}
	}

	// Delete, then the dataset is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/panel", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dr.StatusCode)
	}
	gr, err := http.Get(ts.URL + "/v1/datasets/panel")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted dataset still served: %d", gr.StatusCode)
	}
}

func TestUploadGzipParts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	u, sw, p := worldTables(t)
	body, ctype := multipartUpload(t, map[string][]byte{
		"users.csv.gz": chaos.GzipBytes(u),
		"switches.csv": sw,
		"plans.csv.gz": chaos.GzipBytes(p),
	}, "users.csv.gz", "switches.csv", "plans.csv.gz")
	resp := postUpload(t, ts.URL, "gzpanel", body, ctype)
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("gz upload status %d: %s", resp.StatusCode, b)
	}
}

func TestUploadCorruptGzipRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	u, sw, p := worldTables(t)
	inj := chaos.New(chaos.Config{Seed: 3})
	bad, off := inj.CorruptGzipBytes("users.csv.gz", chaos.GzipBytes(u))
	if off < 0 {
		t.Fatal("payload too small to corrupt")
	}
	body, ctype := multipartUpload(t, map[string][]byte{
		"users.csv.gz": bad, "switches.csv": sw, "plans.csv": p,
	}, "users.csv.gz", "switches.csv", "plans.csv")
	resp := postUpload(t, ts.URL, "corrupt", body, ctype)
	if resp.StatusCode != http.StatusBadRequest {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("corrupt gzip status %d: %s", resp.StatusCode, b)
	}
	if _, ok := s.store.Get("corrupt"); ok {
		t.Fatal("corrupt upload was stored")
	}
}

func TestUploadMissingTableRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	u, _, _ := worldTables(t)
	body, ctype := multipartUpload(t, map[string][]byte{"users.csv": u}, "users.csv")
	resp := postUpload(t, ts.URL, "partial", body, ctype)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-table status %d", resp.StatusCode)
	}
}

func TestUploadOverBudgetRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Quarantine: dataset.QuarantineOptions{MaxBadRows: 1}})
	u, sw, p := worldTables(t)
	dirty := append(append([]byte{}, u...), []byte("garbage\nmore garbage\n")...)
	body, ctype := multipartUpload(t, map[string][]byte{
		"users.csv": dirty, "switches.csv": sw, "plans.csv": p,
	}, "users.csv", "switches.csv", "plans.csv")
	resp := postUpload(t, ts.URL, "dirty", body, ctype)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("over-budget status %d: %s", resp.StatusCode, b)
	}
	if _, ok := s.store.Get("dirty"); ok {
		t.Fatal("over-budget upload was stored")
	}
}

func TestUploadDisconnectStoresNothing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body, ctype := cleanUploadBody(t)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/gone",
		chaos.BrokenBody(body, len(body)/2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctype)
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		// The server may have answered 400 before the client noticed.
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("disconnect produced server error %d", resp.StatusCode)
		}
	}
	if _, ok := s.store.Get("gone"); ok {
		t.Fatal("partial upload was stored")
	}
}

func TestSlowLorisCutOffByDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 150 * time.Millisecond})
	body, ctype := cleanUploadBody(t)
	// ~40 bytes/ms: a multi-hundred-KB body takes many seconds — far past
	// the deadline — if the server were willing to wait it out.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/loris",
		chaos.SlowBody(body, 64, 1500*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctype)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	elapsed := time.Since(start)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestTimeout {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("slow-loris status %d: %s", resp.StatusCode, b)
		}
	}
	if elapsed > 5*time.Second {
		t.Fatalf("server waited %v for a slow-loris body", elapsed)
	}
	if _, ok := s.store.Get("loris"); ok {
		t.Fatal("slow-loris upload was stored")
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	s := New(Config{MaxInFlight: 1, Log: quietLogger()})
	release := make(chan struct{})
	entered := make(chan struct{})
	var enteredOnce sync.Once
	h := s.withAdmission(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	first := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	}()
	<-entered

	// The slot is held: the next request is shed immediately.
	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", second.Code)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}

	close(release)
	wg.Wait()
	// Slot free again: served.
	third := httptest.NewRecorder()
	h.ServeHTTP(third, httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	if third.Code == http.StatusTooManyRequests {
		t.Fatal("request shed with a free slot")
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	s := New(Config{Log: quietLogger()})
	h := s.withRecover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("experiment exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic produced status %d, want 500", rec.Code)
	}
	// The process (and the handler chain) is still alive.
	rec2 := httptest.NewRecorder()
	s.withRecover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})).ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	if rec2.Code != http.StatusNoContent {
		t.Fatal("handler chain dead after panic")
	}
}

func TestDrainShedsAndCompletes(t *testing.T) {
	s := New(Config{Log: quietLogger()})
	release := make(chan struct{})
	entered := make(chan struct{})
	h := s.withTrack(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	}()
	<-entered

	// Drain cannot finish while the request is in flight.
	short, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(short); err == nil {
		t.Fatal("drain reported complete with a request in flight")
	}

	// New work is shed while draining; readiness is down; liveness is up.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/artifacts", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", rec.Code)
	}
	ready := httptest.NewRecorder()
	s.handleReadyz(ready, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if ready.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", ready.Code)
	}
	live := httptest.NewRecorder()
	s.handleHealthz(live, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if live.Code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", live.Code)
	}

	// Once the in-flight request finishes, drain completes within deadline.
	close(release)
	wg.Wait()
	done, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := s.Drain(done); err != nil {
		t.Fatalf("drain after completion: %v", err)
	}
}

func TestReportsEndpointRunsRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry fan-out")
	}
	_, ts := newTestServer(t, Config{})
	body, ctype := cleanUploadBody(t)
	if resp := postUpload(t, ts.URL, "panel", body, ctype); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/datasets/panel/reports?seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(r.Body)
		t.Fatalf("reports status %d: %s", r.StatusCode, b)
	}
	var out []renderedReport
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 20 {
		t.Fatalf("%d reports, want 20", len(out))
	}
	for _, rep := range out {
		if rep.Text == "" {
			t.Fatalf("artifact %s rendered empty", rep.ID)
		}
	}
}

func TestScenarioEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds counterfactual worlds")
	}
	_, ts := newTestServer(t, Config{RequestTimeout: 2 * time.Minute})
	packs, err := scenario.LoadDir("../../testdata/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	req := scenarioRequest{
		Packs: packs[:1],
		Seeds: []uint64{1},
		World: &worldScale{Users: 1000, FCCUsers: 250, Days: 2, SwitchTarget: 200, MinPerCountry: 10},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("scenario status %d: %s", resp.StatusCode, body)
	}
	var rep scenario.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Packs) != 1 || len(rep.Packs[0].Outcomes) == 0 {
		t.Fatalf("scenario report = %+v", rep)
	}

	// Malformed requests are rejected up front.
	for body, want := range map[string]int{
		`{"packs":[]}`:      http.StatusBadRequest,
		`{"unknown":true}`:  http.StatusBadRequest,
		`{"packs":[{}]}`:    http.StatusBadRequest,
		`not json at all!!`: http.StatusBadRequest,
	} {
		r2, err := http.Post(ts.URL+"/v1/scenarios", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != want {
			t.Errorf("POST %q = %d, want %d", body, r2.StatusCode, want)
		}
	}
}
