package serve

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	broadband "github.com/nwca/broadband"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/golden"
	"github.com/nwca/broadband/internal/scenario"
	"github.com/nwca/broadband/internal/synth"
)

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// writeErr writes a JSON error envelope.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// datasetName extracts and validates the {name} path value.
func datasetName(w http.ResponseWriter, r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if !nameRE.MatchString(name) {
		writeErr(w, http.StatusBadRequest, "invalid dataset name %q (want %s)", name, nameRE)
		return "", false
	}
	return name, true
}

// seedParam parses the ?seed= query (default 1).
func seedParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	q := r.URL.Query().Get("seed")
	if q == "" {
		return 1, true
	}
	seed, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid seed %q", q)
		return 0, false
	}
	return seed, true
}

// artifactInfo is one registry entry as the list endpoint renders it.
type artifactInfo struct {
	ID    string `json:"id"`
	Slug  string `json:"slug"`
	Title string `json:"title"`
}

// handleArtifactList — GET /v1/artifacts: the full registry.
func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	reg := broadband.Experiments()
	out := make([]artifactInfo, len(reg))
	for i, e := range reg {
		out[i] = artifactInfo{ID: e.ID, Slug: golden.Slug(e.ID), Title: e.Title}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleDatasetList — GET /v1/datasets.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	infos := s.store.List()
	if infos == nil {
		infos = []Info{}
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleDatasetGet — GET /v1/datasets/{name}: metadata + quarantine report.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	name, ok := datasetName(w, r)
	if !ok {
		return
	}
	e, ok := s.store.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Info
		Quarantine *dataset.QuarantineReport `json:"quarantine,omitempty"`
	}{e.info(), e.Quarantine})
}

// handleDatasetDelete — DELETE /v1/datasets/{name}.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	name, ok := datasetName(w, r)
	if !ok {
		return
	}
	if !s.store.Delete(name) {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// uploadTables maps acceptable multipart part names to the table file the
// loader expects. Gzipped variants are decompressed in flight.
var uploadTables = map[string]string{
	"users.csv": "users.csv", "users.csv.gz": "users.csv",
	"switches.csv": "switches.csv", "switches.csv.gz": "switches.csv",
	"plans.csv": "plans.csv", "plans.csv.gz": "plans.csv",
}

// handleUpload — POST /v1/datasets/{name}: multipart panel upload through
// the quarantine trust boundary. The body streams into a scratch dir (a
// disconnect or deadline mid-copy discards it — nothing partial is ever
// visible to the store), then LoadDirRobust quarantines dirty rows under
// the configured error budget, and only a dataset that comes out valid is
// stored. Client faults map to 4xx: deadline 408, oversize 413, corrupt
// transport 400, budget exceeded 422.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name, ok := datasetName(w, r)
	if !ok {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	mr, err := r.MultipartReader()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "multipart: %v", err)
		return
	}

	tmp, err := os.MkdirTemp("", "bbserve-upload-*")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "scratch dir: %v", err)
		return
	}
	defer os.RemoveAll(tmp)

	seen := map[string]bool{}
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			failBody(w, err, "upload")
			return
		}
		pname := part.FileName()
		if pname == "" {
			pname = part.FormName()
		}
		table, ok := uploadTables[pname]
		if !ok {
			writeErr(w, http.StatusBadRequest, "unexpected part %q (want users.csv, switches.csv, plans.csv, optionally .gz)", pname)
			return
		}
		if err := copyPart(tmp, table, pname, part); err != nil {
			failBody(w, err, "part %s", pname)
			return
		}
		seen[table] = true
	}
	for _, table := range []string{"users.csv", "switches.csv", "plans.csv"} {
		if !seen[table] {
			writeErr(w, http.StatusBadRequest, "upload missing table %s", table)
			return
		}
	}

	d, rep, err := dataset.LoadDirRobust(tmp, s.cfg.Quarantine)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "quarantine rejected upload: %v", err)
		return
	}
	d.Freeze()
	hash, err := s.store.Put(name, d, rep)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "store: %v", err)
		return
	}
	e, _ := s.store.Get(name)
	writeJSON(w, http.StatusCreated, struct {
		Info
		Quarantine *dataset.QuarantineReport `json:"quarantine,omitempty"`
	}{e.info(), rep})
	s.logf("stored dataset %s@%s: %d users, %d rows quarantined", name, hash[:12], len(d.Users), len(rep.Diags))
}

// copyPart streams one table into the scratch dir, decompressing .gz parts.
func copyPart(dir, table, pname string, part io.Reader) error {
	src := part
	if strings.HasSuffix(pname, ".gz") {
		zr, err := gzip.NewReader(part)
		if err != nil {
			return fmt.Errorf("gzip: %w", err)
		}
		defer zr.Close()
		src = zr
	}
	f, err := os.Create(filepath.Join(dir, table))
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, src); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// failBody responds to a request-body fault and marks the connection for
// closure: the remaining body is a misbehaving client's (dribbled, dead,
// or corrupt), and without Connection: close the server would drain it at
// the client's pace to ready the connection for reuse — exactly the
// wait-it-out behavior the deadline exists to prevent.
func failBody(w http.ResponseWriter, err error, format string, args ...any) {
	code, msg := uploadFault(err)
	w.Header().Set("Connection", "close")
	writeErr(w, code, format+": %s", append(args, msg)...)
}

// uploadFault classifies a body-read failure: the server's fault is never
// in this path, so everything maps to a 4xx — deadline expiry (slow
// loris) 408, body cap 413, everything else (disconnects, corrupt gzip,
// malformed multipart) 400.
func uploadFault(err error) (int, string) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "deadline exceeded reading body"
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, err.Error()
	default:
		return http.StatusBadRequest, err.Error()
	}
}

// resolveArtifact finds a registry entry by slug ("fig02") or exact ID
// ("Fig. 2").
func resolveArtifact(key string) (broadband.ReportEntry, bool) {
	for _, e := range broadband.Experiments() {
		if e.ID == key || golden.Slug(e.ID) == key {
			return e, true
		}
	}
	return broadband.ReportEntry{}, false
}

// handleArtifact — GET /v1/datasets/{name}/artifacts/{slug}?seed=N: one
// registry artifact in canonical golden JSON. Results are cached keyed on
// (dataset content hash, artifact, seed), so concurrent identical queries
// are served the same bytes and each result is computed once per upload.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	name, ok := datasetName(w, r)
	if !ok {
		return
	}
	entry, ok := resolveArtifact(r.PathValue("slug"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown artifact %q", r.PathValue("slug"))
		return
	}
	seed, ok := seedParam(w, r)
	if !ok {
		return
	}
	e, ok := s.store.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	body, err := s.cache.get(resultKey{hash: e.Hash, artifact: entry.ID, seed: seed}, func() ([]byte, error) {
		rep, err := broadband.Run(entry.ID, e.Dataset, seed)
		if err != nil {
			return nil, err
		}
		return golden.Marshal(rep)
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%s: %v", entry.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dataset-Hash", e.Hash)
	w.Header().Set("X-Artifact-Id", entry.ID)
	w.Write(body)
}

// renderedReport is one entry of the full-registry report response.
type renderedReport struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
}

// handleReports — GET /v1/datasets/{name}/reports?seed=N: every registry
// artifact rendered, through RunAllCtx so the request deadline cuts the
// fan-out short instead of letting an abandoned request run to completion.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	name, ok := datasetName(w, r)
	if !ok {
		return
	}
	seed, ok := seedParam(w, r)
	if !ok {
		return
	}
	e, ok := s.store.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	reports, err := broadband.RunAllCtx(r.Context(), e.Dataset, seed)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeErr(w, http.StatusGatewayTimeout, "reports: deadline exceeded after %d of %d artifacts", len(reports), len(broadband.Experiments()))
		case errors.Is(err, context.Canceled):
			// Client gone; nobody reads this.
		default:
			writeErr(w, http.StatusInternalServerError, "reports: %v", err)
		}
		return
	}
	out := make([]renderedReport, len(reports))
	for i, rep := range reports {
		out[i] = renderedReport{ID: rep.ID(), Title: rep.Title(), Text: rep.Render()}
	}
	writeJSON(w, http.StatusOK, out)
}

// scenarioRequest is the POST /v1/scenarios body.
type scenarioRequest struct {
	Packs []*scenario.Pack `json:"packs"`
	Seeds []uint64         `json:"seeds,omitempty"`
	World *worldScale      `json:"world,omitempty"`
	// Workers bounds the world-build pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// worldScale is the subset of synth.Config a scenario request may size.
type worldScale struct {
	Users         int `json:"users,omitempty"`
	FCCUsers      int `json:"fcc_users,omitempty"`
	Days          int `json:"days,omitempty"`
	SwitchTarget  int `json:"switch_target,omitempty"`
	MinPerCountry int `json:"min_per_country,omitempty"`
}

// Request-size ceilings: a scenario run builds (packs+1)×seeds worlds, so
// the endpoint caps the multiplicands rather than trusting callers.
const (
	maxScenarioPacks = 16
	maxScenarioSeeds = 8
	maxScenarioUsers = 20000
	maxScenarioDays  = 30
)

// defaultScenarioWorld is the baseline scale when the request names none:
// small enough that a pack evaluates in seconds, large enough that the
// registry's tier analyses keep their case-study markets.
var defaultScenarioWorld = synth.Config{
	Users: 800, FCCUsers: 200, Days: 2, SwitchTarget: 150, MinPerCountry: 10,
}

// handleScenarios — POST /v1/scenarios: run declarative counterfactual
// packs against a baseline world, bounded by the request deadline (the
// world builds run under BuildWorldCtx inside scenario.Run).
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	var req scenarioRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		failBody(w, err, "scenario request")
		return
	}
	if len(req.Packs) == 0 {
		writeErr(w, http.StatusBadRequest, "scenario request names no packs")
		return
	}
	if len(req.Packs) > maxScenarioPacks || len(req.Seeds) > maxScenarioSeeds {
		writeErr(w, http.StatusBadRequest, "scenario request too large (max %d packs, %d seeds)", maxScenarioPacks, maxScenarioSeeds)
		return
	}
	for _, p := range req.Packs {
		if err := p.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, "pack: %v", err)
			return
		}
	}
	base := defaultScenarioWorld
	if ws := req.World; ws != nil {
		if ws.Users > maxScenarioUsers || ws.Days > maxScenarioDays {
			writeErr(w, http.StatusBadRequest, "world too large (max %d users, %d days)", maxScenarioUsers, maxScenarioDays)
			return
		}
		if ws.Users > 0 {
			base.Users = ws.Users
		}
		if ws.FCCUsers > 0 {
			base.FCCUsers = ws.FCCUsers
		}
		if ws.Days > 0 {
			base.Days = ws.Days
		}
		if ws.SwitchTarget > 0 {
			base.SwitchTarget = ws.SwitchTarget
		}
		if ws.MinPerCountry > 0 {
			base.MinPerCountry = ws.MinPerCountry
		}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	rep, err := scenario.Run(r.Context(), req.Packs, scenario.Options{
		Base: base, Seeds: seeds, Workers: req.Workers,
	})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeErr(w, http.StatusGatewayTimeout, "scenarios: deadline exceeded")
		case errors.Is(err, context.Canceled):
			// Client gone; nobody reads this.
		case errors.Is(err, synth.ErrInvalidConfig):
			writeErr(w, http.StatusBadRequest, "scenarios: %v", err)
		default:
			writeErr(w, http.StatusInternalServerError, "scenarios: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
