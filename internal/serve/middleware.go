package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
)

// The middleware stack, outermost first:
//
//	recover → drain/track → admission → timeout → handler
//
// recover turns a handler panic into a logged 500 instead of a dead
// process; drain/track counts in-flight requests and sheds new ones once
// Drain has started; admission bounds concurrent work with a semaphore and
// sheds the excess with 429 + Retry-After; timeout puts a deadline on the
// request context and the request body, so a slow-loris upload is cut off
// by the server rather than waited out.

// withRecover is the outermost layer: nothing below it can kill the
// process. The stack is logged server-side; the client sees a plain 500.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withTrack counts the request toward Drain's in-flight total and rejects
// new work once draining has begun. Probe endpoints bypass this layer: a
// draining server still answers /healthz and reports NotReady on /readyz.
func (s *Server) withTrack(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// withAdmission is the load-shedding layer: a bounded semaphore of
// MaxInFlight slots. A request that cannot get a slot immediately is shed
// with 429 and Retry-After — queueing it would just move the overload into
// memory and stretch every in-flight deadline.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusTooManyRequests)
		}
	})
}

// withTimeout deadlines the request: the context (which RunAllCtx and
// scenario.Run observe) and the body (which upload copies read through a
// context-checking wrapper, so a dribbling client fails the read instead
// of holding a slot forever).
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = &deadlineBody{ctx: ctx, rc: r.Body}
		}
		next.ServeHTTP(w, r)
	})
}

// deadlineBody fails reads once the request context is done. The check
// runs before each Read: chaos's slow-loris body returns between chunks,
// so the first read attempted past the deadline surfaces the expiry.
type deadlineBody struct {
	ctx context.Context
	rc  io.ReadCloser
}

func (b *deadlineBody) Read(p []byte) (int, error) {
	if err := b.ctx.Err(); err != nil {
		return 0, fmt.Errorf("request body: %w", err)
	}
	return b.rc.Read(p)
}

func (b *deadlineBody) Close() error { return b.rc.Close() }
