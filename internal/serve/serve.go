// Package serve is the broadband-analytics server: panel uploads pass
// through the quarantine trust boundary (dataset.LoadDirRobust), stored
// datasets answer artifact queries for every registry entry, and ad-hoc
// scenario runs build counterfactual worlds — all behind a resilience
// stack of per-request deadlines, panic recovery, admission control, and
// graceful drain. cmd/bbserve is the thin binary around it; the chaos
// suite (internal/chaos's HTTP fault layer) storms it in the soak tests.
package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"regexp"
	"sync/atomic"
	"time"

	"github.com/nwca/broadband/internal/dataset"
)

// Config parameterizes a Server. The zero value of every field selects a
// sane default; Store is the only one commonly set (nil = in-memory).
type Config struct {
	// Store is the dataset backend (nil = NewMemStore()).
	Store Store
	// MaxInFlight bounds concurrently-served requests; excess requests
	// are shed with 429 (0 = DefaultMaxInFlight).
	MaxInFlight int
	// RequestTimeout deadlines each request's context and body reads
	// (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxUploadBytes caps an upload request body (0 = DefaultMaxUploadBytes).
	MaxUploadBytes int64
	// Quarantine is the error budget uploads are admitted under.
	Quarantine dataset.QuarantineOptions
	// Log receives server-side diagnostics (nil = log.Default()).
	Log *log.Logger
}

// Defaults for the zero Config.
const (
	DefaultMaxInFlight    = 16
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxUploadBytes = 256 << 20
)

// Server is the handler bundle plus the shared state behind it.
type Server struct {
	cfg   Config
	store Store
	cache *resultCache
	sem   chan struct{}

	inflight atomic.Int64
	draining atomic.Bool
	shed     atomic.Int64 // requests rejected by admission control

	handler http.Handler
	logf    func(format string, args ...any)
}

// New builds a Server from cfg, applying defaults for zero fields.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		cfg:   cfg,
		store: cfg.Store,
		cache: newResultCache(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		logf:  logger.Printf,
	}
	s.handler = s.buildHandler()
	return s
}

// Handler returns the fully-wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// buildHandler wires the routes. Probe endpoints sit outside the
// drain/admission/timeout layers — a saturated or draining server must
// still answer them — but inside recover.
func (s *Server) buildHandler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("GET /v1/artifacts", s.handleArtifactList)
	api.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	api.HandleFunc("POST /v1/datasets/{name}", s.handleUpload)
	api.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	api.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDelete)
	api.HandleFunc("GET /v1/datasets/{name}/artifacts/{slug}", s.handleArtifact)
	api.HandleFunc("GET /v1/datasets/{name}/reports", s.handleReports)
	api.HandleFunc("POST /v1/scenarios", s.handleScenarios)

	wrapped := s.withTrack(s.withAdmission(s.withTimeout(api)))

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.Handle("/v1/", wrapped)
	return s.withRecover(root)
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ok":true,"inflight":%d,"shed":%d}`+"\n", s.inflight.Load(), s.shed.Load())
}

// handleReadyz is readiness: NotReady once draining, so a load balancer
// stops routing here while in-flight work finishes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"ready":false,"draining":true}`)
		return
	}
	fmt.Fprintln(w, `{"ready":true}`)
}

// Drain begins graceful shutdown: new API requests are shed with 503
// (probes keep answering), and Drain blocks until every in-flight request
// has finished or ctx expires — callers bound it with the drain deadline.
// It composes with http.Server.Shutdown, which drains at the connection
// level; Drain is the request-level half that also flips readiness.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// nameRE constrains dataset names: lowercase slug, no separators — names
// become DiskStore path components, so this is also path-traversal
// protection, not just hygiene.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9-]{0,62}$`)
