package serve

import (
	"bytes"
	"io"
	"log"
	"mime/multipart"
	"sync"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/synth"
)

// The shared test world: built once per process at bench-smoke scale.
var (
	worldOnce sync.Once
	worldData *dataset.Dataset
	worldErr  error
)

func testWorld(t *testing.T) *dataset.Dataset {
	t.Helper()
	worldOnce.Do(func() {
		// The bbscenario smoke scale: the smallest world the full registry
		// is known to run at (Fig. 3's class split needs the population).
		w, err := synth.Build(synth.Config{
			Seed: 20140705, Users: 1000, FCCUsers: 250, Days: 2,
			SwitchTarget: 200, MinPerCountry: 10,
		})
		if err != nil {
			worldErr = err
			return
		}
		worldData = &w.Data
		worldData.Freeze()
	})
	if worldErr != nil {
		t.Fatalf("build test world: %v", worldErr)
	}
	return worldData
}

// worldCSV renders the test world's three tables once.
var (
	csvOnce                       sync.Once
	usersCSV, switchCSV, plansCSV []byte
)

func worldTables(t *testing.T) (users, switches, plans []byte) {
	t.Helper()
	d := testWorld(t)
	csvOnce.Do(func() {
		var u, s, p bytes.Buffer
		if err := dataset.WriteUsers(&u, d.Users); err != nil {
			worldErr = err
			return
		}
		if err := dataset.WriteSwitches(&s, d.Switches); err != nil {
			worldErr = err
			return
		}
		if err := dataset.WritePlans(&p, d.Plans); err != nil {
			worldErr = err
			return
		}
		usersCSV, switchCSV, plansCSV = u.Bytes(), s.Bytes(), p.Bytes()
	})
	if worldErr != nil {
		t.Fatalf("render test world: %v", worldErr)
	}
	return usersCSV, switchCSV, plansCSV
}

// multipartUpload assembles a panel upload body. parts maps part name
// (e.g. "users.csv" or "users.csv.gz") to content.
func multipartUpload(t *testing.T, parts map[string][]byte, order ...string) (body []byte, contentType string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if len(order) == 0 {
		for name := range parts {
			order = append(order, name)
		}
	}
	for _, name := range order {
		fw, err := mw.CreateFormFile(name, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(fw, bytes.NewReader(parts[name])); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), mw.FormDataContentType()
}

// cleanUploadBody is the well-formed three-table upload.
func cleanUploadBody(t *testing.T) ([]byte, string) {
	u, s, p := worldTables(t)
	return multipartUpload(t, map[string][]byte{
		"users.csv": u, "switches.csv": s, "plans.csv": p,
	}, "users.csv", "switches.csv", "plans.csv")
}

// quietLogger suppresses server-side diagnostics in tests that
// deliberately provoke them.
func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }
