// Package traffic implements the behavioral demand model of the synthetic
// world: what subscribers ask of their broadband line, second by second.
//
// Each user is a session process — web fetches, adaptive video, bulk
// downloads, background sync and (for part of the Dasu population)
// BitTorrent — whose arrivals follow a diurnal profile and whose achievable
// per-flow rates are limited by the access capacity, by remote bottlenecks
// and by the TCP-feasible rate for the line's latency and loss (the Mathis
// bound). The model embeds, as explicit ground truth, the causal mechanisms
// the paper infers from observational data:
//
//   - capacity → demand: video bitrates adapt up with capacity until a
//     per-user quality appetite ceiling (the ~10 Mbps diminishing-returns
//     knee), bulk transfers complete faster (raising the 95th percentile),
//     and session appetite grows mildly with headroom (induced demand);
//   - quality → demand: long latencies and high loss rates suppress both
//     the achievable rate (mechanically, via TCP) and the number of
//     sessions users bother starting (behaviorally, via QoEFactor);
//   - price → demand appears nowhere here: it acts purely through plan
//     selection (internal/market), which is exactly the causal path the
//     paper argues for.
package traffic

import (
	"math"

	"github.com/nwca/broadband/internal/netsim"
	"github.com/nwca/broadband/internal/unit"
)

// Quality is the connection-quality context of a user's line.
type Quality struct {
	RTT  float64 // round-trip time to content, seconds
	Loss unit.LossRate
}

// QoEFactor returns the behavioral demand multiplier in (0, 1] for a line's
// quality: the fraction of would-be sessions users still start when the
// experience degrades. Calibrated so the paper's thresholds bite: latencies
// beyond 500 ms and loss beyond 1% produce clearly lower usage, with loss
// effects beginning around 0.1% (Sec. 7).
func QoEFactor(q Quality) float64 {
	f := 1.0
	// Latency: flat below 100 ms, then a smooth logistic decline that
	// reaches ~0.8 at 500 ms and ~0.55 at 2 s.
	if q.RTT > 0.1 {
		f *= 0.5 + 0.5/(1+math.Pow(q.RTT/0.7, 1.4))
	}
	// Loss: effects begin around 0.1% (the paper's threshold), reaching
	// ~0.78 at 0.5%, ~0.70 at 1% and ~0.54 at 5%.
	if l := float64(q.Loss); l > 0.0005 {
		f *= 0.45 + 0.55/(1+math.Pow(l/0.008, 0.9))
	}
	if f < 0.3 {
		f = 0.3
	}
	return f
}

// FeasibleRate bounds a flow's achievable rate by the line capacity and by
// the TCP-feasible (Mathis) rate for the line quality.
func FeasibleRate(capacity unit.Bitrate, q Quality, flowCap unit.Bitrate) unit.Bitrate {
	r := flowCap
	if r <= 0 || r > capacity {
		r = capacity
	}
	if q.RTT > 0 && q.Loss > 0 {
		if m := netsim.MathisThroughput(1460*unit.Byte, q.RTT, q.Loss); m < r {
			r = m
		}
	}
	// A floor keeps pathological lines trickling rather than frozen.
	if min := unit.KbpsOf(8); r < min {
		r = min
	}
	return r
}
