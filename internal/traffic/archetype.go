package traffic

import (
	"fmt"
	"math"
)

// Archetype is a household application-mix category — the user
// heterogeneity the paper's Sec. 10 names as future work ("gamers,
// shoppers or movie-watchers"). Archetype weights are chosen so the
// population mixture reproduces the balanced mix the calibration anchors
// assume.
type Archetype int

// The modeled household categories.
const (
	// Balanced is the calibration-reference mix.
	Balanced Archetype = iota
	// Browser households are web-dominated light users.
	Browser
	// Streamer households are video-dominated ("movie-watchers").
	Streamer
	// Downloader households move bulk content (and skew BitTorrent).
	Downloader
	// Gamer households add frequent small updates and are the most
	// latency-sensitive category.
	Gamer
	numArchetypes
)

// String names the archetype.
func (a Archetype) String() string {
	switch a {
	case Balanced:
		return "balanced"
	case Browser:
		return "browser"
	case Streamer:
		return "streamer"
	case Downloader:
		return "downloader"
	case Gamer:
		return "gamer"
	default:
		return fmt.Sprintf("Archetype(%d)", int(a))
	}
}

// Archetypes lists all categories.
func Archetypes() []Archetype {
	return []Archetype{Balanced, Browser, Streamer, Downloader, Gamer}
}

// ArchetypeShares is the population mixture; it is constructed so the
// weighted application mix equals the Balanced mix (keeping aggregate
// calibration intact while adding within-population heterogeneity).
var ArchetypeShares = map[Archetype]float64{
	Balanced:   0.40,
	Browser:    0.20,
	Streamer:   0.20,
	Downloader: 0.10,
	Gamer:      0.10,
}

// appMix is a session-type weight vector ordered as sessionMix.
type appMix [4]float64 // web, video, bulk, background

var archetypeMixes = map[Archetype]appMix{
	Balanced:   {0.52, 0.18, 0.10, 0.20},
	Browser:    {0.70, 0.08, 0.05, 0.17},
	Streamer:   {0.38, 0.38, 0.06, 0.18},
	Downloader: {0.40, 0.10, 0.32, 0.18},
	Gamer:      {0.50, 0.10, 0.12, 0.28},
}

// mixFor returns the session-type weights of an archetype.
func mixFor(a Archetype) appMix {
	if m, ok := archetypeMixes[a]; ok {
		return m
	}
	return archetypeMixes[Balanced]
}

// archetypeQoE is an additional, category-specific quality sensitivity on
// top of the population QoEFactor: gamers abandon high-latency lines far
// more readily; streamers are a bit more loss-sensitive (rebuffering).
func archetypeQoE(a Archetype, q Quality) float64 {
	switch a {
	case Gamer:
		if q.RTT > 0.08 {
			return math.Max(0.45, 0.65+0.35/(1+math.Pow(q.RTT/0.25, 2)))
		}
	case Streamer:
		if l := float64(q.Loss); l > 0.002 {
			return math.Max(0.6, 0.75+0.25/(1+l/0.01))
		}
	}
	return 1
}
