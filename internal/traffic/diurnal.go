package traffic

import "math"

// Diurnal activity: residential traffic follows a pronounced daily rhythm
// with a deep overnight trough and an evening peak. Activity returns the
// relative session-arrival intensity at an hour of day (fractional hours
// accepted); the profile integrates to ≈1 over 24 hours so daily session
// budgets are intensity-independent.
func Activity(hour float64) float64 {
	h := math.Mod(hour, 24)
	if h < 0 {
		h += 24
	}
	// Two-component profile: a broad daytime hump and a sharper evening
	// peak around 21:00, over a small overnight floor.
	day := 0.5 * gaussianBump(h, 14, 5)
	evening := 1.45 * gaussianBump(h, 21, 2.4)
	floor := 0.25
	return (floor + day + evening) / diurnalNorm
}

// gaussianBump is a 24-hour-periodic Gaussian bump centered at c.
func gaussianBump(h, c, width float64) float64 {
	d := math.Abs(h - c)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * width * width))
}

// diurnalNorm makes Activity average to 1 over the day.
var diurnalNorm = func() float64 {
	sum := 0.0
	const steps = 2400
	for i := 0; i < steps; i++ {
		h := 24 * float64(i) / steps
		day := 0.5 * gaussianBump(h, 14, 5)
		evening := 1.45 * gaussianBump(h, 21, 2.4)
		sum += 0.25 + day + evening
	}
	return sum / steps
}()

// PeakHours reports whether an hour falls in the evening busy window used
// by the Dasu-vantage sampling bias (the client tends to run while the user
// is at the machine).
func PeakHours(hour float64) bool {
	h := math.Mod(hour, 24)
	if h < 0 {
		h += 24
	}
	return h >= 12 // afternoon through midnight
}
