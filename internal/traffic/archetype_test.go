package traffic

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

func archSummary(t *testing.T, arch Archetype, capBytes unit.ByteSize, q Quality, seed uint64) Summary {
	t.Helper()
	g := &Generator{
		Capacity: unit.MbpsOf(10),
		Quality:  q,
		Profile: Profile{
			NeedMbps:       3,
			SessionsPerDay: DefaultSessionsPerDay,
			Archetype:      arch,
			MonthlyCap:     capBytes,
		},
	}
	series, err := g.Generate(3, randx.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := series.Summarize(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func avgMetric(t *testing.T, n int, f func(seed uint64) float64) float64 {
	t.Helper()
	total := 0.0
	for i := 0; i < n; i++ {
		total += f(uint64(300 + i))
	}
	return total / float64(n)
}

func TestArchetypeSharesAndMixesConsistent(t *testing.T) {
	shareSum := 0.0
	for _, a := range Archetypes() {
		shareSum += ArchetypeShares[a]
		mix := mixFor(a)
		mixSum := 0.0
		for _, w := range mix {
			mixSum += w
		}
		if math.Abs(mixSum-1) > 1e-9 {
			t.Errorf("%v mix sums to %v", a, mixSum)
		}
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("archetype shares sum to %v", shareSum)
	}
	// Population-weighted mix equals the Balanced mix (calibration
	// preservation).
	var weighted appMix
	for _, a := range Archetypes() {
		mix := mixFor(a)
		for i := range mix {
			weighted[i] += ArchetypeShares[a] * mix[i]
		}
	}
	ref := mixFor(Balanced)
	for i := range ref {
		if math.Abs(weighted[i]-ref[i]) > 0.015 {
			t.Errorf("weighted mix[%d] = %.3f, balanced = %.3f", i, weighted[i], ref[i])
		}
	}
	if mixFor(Archetype(99)) != mixFor(Balanced) {
		t.Error("unknown archetype should fall back to Balanced")
	}
}

func TestArchetypeNames(t *testing.T) {
	for a, want := range map[Archetype]string{
		Balanced: "balanced", Browser: "browser", Streamer: "streamer",
		Downloader: "downloader", Gamer: "gamer",
	} {
		if a.String() != want {
			t.Errorf("%d = %q", a, a.String())
		}
	}
	if Archetype(99).String() != "Archetype(99)" {
		t.Error("unknown archetype label")
	}
}

func TestStreamersOutConsumeBrowsers(t *testing.T) {
	q := goodQuality()
	streamer := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, Streamer, 0, q, s).Mean) })
	browser := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, Browser, 0, q, s).Mean) })
	if streamer <= browser*1.3 {
		t.Errorf("streamers should clearly out-consume browsers: %v vs %v", streamer, browser)
	}
}

func TestGamerLatencySensitivity(t *testing.T) {
	slow := Quality{RTT: 0.35, Loss: 0.0002}
	// At 350 ms, gamers suppress demand much harder than balanced
	// households relative to their own clean-line baselines.
	rel := func(a Archetype) float64 {
		bad := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, a, 0, slow, s).Mean) })
		good := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, a, 0, goodQuality(), s).Mean) })
		return bad / good
	}
	gamer := rel(Gamer)
	balanced := rel(Balanced)
	if gamer >= balanced-0.05 {
		t.Errorf("gamers should be more latency-suppressed: gamer ratio %.2f vs balanced %.2f", gamer, balanced)
	}
}

func TestArchetypeQoEBounds(t *testing.T) {
	for _, a := range Archetypes() {
		for _, q := range []Quality{
			{RTT: 0.02, Loss: 0.0001}, {RTT: 0.5, Loss: 0.01}, {RTT: 2, Loss: 0.1},
		} {
			f := archetypeQoE(a, q)
			if f <= 0 || f > 1 {
				t.Errorf("%v archetypeQoE(%+v) = %v", a, q, f)
			}
		}
	}
	if archetypeQoE(Balanced, Quality{RTT: 2, Loss: 0.1}) != 1 {
		t.Error("balanced households carry no extra sensitivity")
	}
}

func TestMonthlyCapSuppressesUsage(t *testing.T) {
	q := goodQuality()
	// A 10 GB/month cap is tight against an unlimited household's ~2-3
	// GB/day appetite.
	capped := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, Balanced, 10*unit.GB, q, s).Mean) })
	unlimited := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, Balanced, 0, q, s).Mean) })
	if capped >= unlimited*0.6 {
		t.Errorf("a tight cap should clearly suppress mean demand: capped %v vs unlimited %v", capped, unlimited)
	}
	// Projected consumption under the cap lands near the allowance, with
	// the partial-compliance overage real panels show.
	monthly := capped / 8 * 86400 * 30
	if monthly > float64(10*unit.GB)*1.8 {
		t.Errorf("capped household projects %.1f GB/month against a 10 GB cap", monthly/1e9)
	}
	// A generous cap changes nothing.
	loose := avgMetric(t, 5, func(s uint64) float64 { return float64(archSummary(t, Balanced, 2*unit.TB, q, s).Mean) })
	if math.Abs(loose-unlimited) > 0.15*unlimited {
		t.Errorf("a loose cap should be inert: %v vs %v", loose, unlimited)
	}
}

func TestCapFloorPreventsShutoff(t *testing.T) {
	// Even an absurdly small cap leaves a trickle (capFactor floor).
	sum := archSummary(t, Balanced, 100*unit.MB, goodQuality(), 1)
	if sum.Mean <= 0 {
		t.Error("capped household went fully silent")
	}
}
