package traffic

import (
	"fmt"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// AppType labels the application classes of the session mix.
type AppType int

// The modeled application classes.
const (
	AppWeb AppType = iota
	AppVideo
	AppBulk
	AppBackground
	AppTorrent
)

// String names the application class.
func (a AppType) String() string {
	switch a {
	case AppWeb:
		return "web"
	case AppVideo:
		return "video"
	case AppBulk:
		return "bulk"
	case AppBackground:
		return "background"
	case AppTorrent:
		return "torrent"
	default:
		return fmt.Sprintf("AppType(%d)", int(a))
	}
}

// Session is one application transfer to be realized by the fluid
// simulator: a volume, a per-flow rate ceiling and an arrival time.
type Session struct {
	App     AppType
	Arrival float64 // seconds from horizon start
	Volume  unit.ByteSize
	Cap     unit.Bitrate // per-flow ceiling before line/TCP limits
}

// sessionMix is the non-BitTorrent application mix (weights sum to 1).
var sessionMix = []struct {
	app    AppType
	weight float64
}{
	{AppWeb, 0.52},
	{AppVideo, 0.18},
	{AppBulk, 0.10},
	{AppBackground, 0.20},
}

// drawSession materializes one session of the given class for a user.
func (g *Generator) drawSession(app AppType, arrival float64, rng *randx.Source) Session {
	s := Session{App: app, Arrival: arrival}
	switch app {
	case AppWeb:
		// Page-weight-scale objects, heavy right tail (photo albums, app
		// downloads riding in browser sessions).
		s.Volume = unit.ByteSize(rng.LogNormalMedian(1.2e6, 1.3))
		// Far-end and per-connection limits keep web bursts from always
		// saturating fat pipes.
		s.Cap = unit.Bitrate(rng.LogNormalMedian(6e6, 0.55))
	case AppVideo:
		// Adaptive streaming: bitrate climbs with available capacity up to
		// the household's quality appetite, then adapts DOWN to what the
		// line can actually feed (TCP-feasible rate under the line's loss
		// and latency); volume = delivered bitrate × duration.
		bitrate := g.videoBitrate(rng)
		if feasible := FeasibleRate(g.Capacity, g.Quality, 0); bitrate > feasible {
			bitrate = feasible
		}
		durSec := rng.LogNormalMedian(14*60, 0.7)
		if durSec > 4*3600 {
			durSec = 4 * 3600
		}
		s.Cap = bitrate * 1.25 // buffered players burst above nominal rate
		s.Volume = unit.VolumeAt(bitrate, durSec)
	case AppBulk:
		// Software updates, large downloads: fixed volume, pulled at
		// whatever the slower of the line and the era's server/CDN side
		// sustains (2011–2013 remote bottlenecks sat near ~12 Mbps).
		s.Volume = unit.ByteSize(rng.BoundedPareto(15e6, 3e9, 1.25))
		s.Cap = unit.Bitrate(rng.LogNormalMedian(12e6, 0.6))
	case AppBackground:
		// Sync, telemetry, mail: small and rate-limited.
		s.Volume = unit.ByteSize(rng.LogNormalMedian(1.5e6, 0.9))
		s.Cap = unit.MbpsOf(1)
	case AppTorrent:
		// Long-lived swarm sessions that saturate most of the line.
		durSec := rng.LogNormalMedian(45*60, 0.6)
		util := 0.6 + 0.35*rng.Float64()
		rate := unit.Bitrate(util) * g.Capacity
		s.Cap = rate
		s.Volume = unit.VolumeAt(rate, durSec)
	}
	if s.Volume < 1 {
		s.Volume = 1
	}
	return s
}

// videoBitrate draws an adaptive-streaming bitrate: capacity-limited below
// the appetite ceiling (the mechanical capacity→demand causal arrow), and
// appetite-limited above it (the diminishing-returns knee).
func (g *Generator) videoBitrate(rng *randx.Source) unit.Bitrate {
	ceiling := g.videoCeiling
	// Session-level variation: not every stream is the household's best
	// screen.
	b := ceiling * unit.Bitrate(rng.LogNormalMedian(1, 0.35))
	if lim := g.Capacity * 8 / 10; b > lim {
		b = lim
	}
	if b < unit.KbpsOf(200) {
		b = unit.KbpsOf(200) // lowest rung of the adaptation ladder
	}
	return b
}
