package traffic

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

func goodQuality() Quality { return Quality{RTT: 0.04, Loss: 0.0002} }

func genSummary(t *testing.T, capMbps, need float64, q Quality, bt bool, seed uint64) Summary {
	t.Helper()
	g := &Generator{
		Capacity: unit.MbpsOf(capMbps),
		Quality:  q,
		Profile: Profile{
			NeedMbps:         need,
			SessionsPerDay:   DefaultSessionsPerDay,
			BTUser:           bt,
			BTSessionsPerDay: 3,
		},
	}
	series, err := g.Generate(3, randx.New(seed).Split("gen"))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := series.Summarize(GatewayMask)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// avgOver averages a summary metric over several seeds to tame stochastic
// variation in shape assertions.
func avgOver(t *testing.T, n int, f func(seed uint64) float64) float64 {
	t.Helper()
	total := 0.0
	for i := 0; i < n; i++ {
		total += f(uint64(1000 + i))
	}
	return total / float64(n)
}

func TestGenerateBasicInvariants(t *testing.T) {
	g := &Generator{
		Capacity: unit.MbpsOf(10),
		Quality:  goodQuality(),
		Profile:  Profile{NeedMbps: 3, SessionsPerDay: 50},
	}
	series, err := g.Generate(2, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Counters) != 2*86400/30 {
		t.Fatalf("series has %d intervals, want %d", len(series.Counters), 2*86400/30)
	}
	if len(series.BTActive) != len(series.Counters) {
		t.Fatal("BTActive length mismatch")
	}
	capPerInterval := unit.VolumeAt(g.Capacity, 30)
	nonZero := 0
	for i, c := range series.Counters {
		if c < 0 {
			t.Fatalf("negative counter at %d", i)
		}
		if c > capPerInterval+1 {
			t.Fatalf("counter %d exceeds link capacity: %v > %v", i, c, capPerInterval)
		}
		if c > 0 {
			nonZero++
		}
		if series.BTActive[i] {
			t.Errorf("non-BT user has BT-active interval %d", i)
		}
	}
	if nonZero == 0 {
		t.Fatal("series is entirely idle")
	}
	sum, err := series.Summarize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mean <= 0 || sum.Peak < sum.Mean {
		t.Errorf("summary out of order: mean=%v peak=%v", sum.Mean, sum.Peak)
	}
	if sum.Max < sum.Peak {
		t.Errorf("max %v below p95 %v", sum.Max, sum.Peak)
	}
}

func TestGenerateValidation(t *testing.T) {
	g := &Generator{Capacity: 0}
	if _, err := g.Generate(1, randx.New(1)); err == nil {
		t.Error("zero capacity should error")
	}
	g = &Generator{Capacity: unit.Mbps}
	if _, err := g.Generate(0, randx.New(1)); err == nil {
		t.Error("zero days should error")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	run := func() Summary {
		g := &Generator{Capacity: unit.MbpsOf(8), Quality: goodQuality(), Profile: Profile{NeedMbps: 3}}
		s, err := g.Generate(1, randx.New(99).Split("d"))
		if err != nil {
			t.Fatal(err)
		}
		sum, _ := s.Summarize(nil)
		return sum
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("generation not deterministic: %+v vs %+v", a, b)
	}
}

func TestUsageGrowsWithCapacity(t *testing.T) {
	// Ground truth of Fig. 2 / Table 2: same need, growing capacity →
	// growing demand.
	mean1 := avgOver(t, 5, func(s uint64) float64 { return float64(genSummary(t, 1, 3, goodQuality(), false, s).Mean) })
	mean8 := avgOver(t, 5, func(s uint64) float64 { return float64(genSummary(t, 8, 3, goodQuality(), false, s).Mean) })
	peak1 := avgOver(t, 5, func(s uint64) float64 { return float64(genSummary(t, 1, 3, goodQuality(), false, s).Peak) })
	peak8 := avgOver(t, 5, func(s uint64) float64 { return float64(genSummary(t, 8, 3, goodQuality(), false, s).Peak) })
	if mean8 <= mean1 {
		t.Errorf("mean demand should grow with capacity: 1 Mbps→%v, 8 Mbps→%v", mean1, mean8)
	}
	if peak8 <= 2*peak1 {
		t.Errorf("peak demand should grow strongly from 1→8 Mbps: %v → %v", peak1, peak8)
	}
}

func TestDiminishingReturns(t *testing.T) {
	// The relative gain from doubling capacity must shrink at high
	// capacities (the paper's ~10 Mbps knee).
	m := func(capMbps float64) float64 {
		return avgOver(t, 6, func(s uint64) float64 {
			return float64(genSummary(t, capMbps, 3, goodQuality(), false, s).Mean)
		})
	}
	m2, m4 := m(2), m(4)
	m32, m64 := m(32), m(64)
	lowGain := m4 / m2
	highGain := m64 / m32
	if lowGain <= highGain {
		t.Errorf("diminishing returns violated: 2→4 Mbps gain %.3f, 32→64 Mbps gain %.3f", lowGain, highGain)
	}
	if highGain > 1.25 {
		t.Errorf("doubling an already-fast line should barely move mean demand, got ×%.3f", highGain)
	}
}

func TestUtilizationFallsWithCapacity(t *testing.T) {
	// Peak utilization (p95/capacity) must fall as capacity rises for the
	// same need (Fig. 8a's shape).
	util := func(capMbps float64) float64 {
		return avgOver(t, 5, func(s uint64) float64 {
			sum := genSummary(t, capMbps, 2.5, goodQuality(), false, s)
			return float64(sum.PeakNoBT) / float64(unit.MbpsOf(capMbps))
		})
	}
	u05, u8, u64 := util(0.5), util(8), util(64)
	if !(u05 > u8 && u8 > u64) {
		t.Errorf("utilization ordering violated: 0.5→%.2f 8→%.2f 64→%.2f", u05, u8, u64)
	}
	if u05 < 0.5 {
		t.Errorf("sub-1 Mbps line should run hot at peak, got %.2f", u05)
	}
	if u64 > 0.35 {
		t.Errorf("64 Mbps line should be cold at peak for a 2.5 Mbps-need household, got %.2f", u64)
	}
}

func TestQoESuppressionThresholds(t *testing.T) {
	good := QoEFactor(goodQuality())
	if good < 0.97 {
		t.Errorf("clean line QoE = %v, want ≈1", good)
	}
	highLat := QoEFactor(Quality{RTT: 0.6, Loss: 0.0002})
	vhighLat := QoEFactor(Quality{RTT: 2.0, Loss: 0.0002})
	if !(highLat < 0.93 && vhighLat < highLat) {
		t.Errorf("latency suppression too weak: 600ms→%v 2s→%v", highLat, vhighLat)
	}
	someLoss := QoEFactor(Quality{RTT: 0.04, Loss: 0.002})
	highLoss := QoEFactor(Quality{RTT: 0.04, Loss: 0.03})
	if !(someLoss < 0.99 && highLoss < someLoss) {
		t.Errorf("loss suppression too weak: 0.2%%→%v 3%%→%v", someLoss, highLoss)
	}
	if QoEFactor(Quality{RTT: 5, Loss: 0.5}) < 0.3 {
		t.Error("QoE floor breached")
	}
}

func TestBadQualityLowersUsage(t *testing.T) {
	// Ground truth of Tables 7/8: same capacity and need, degraded line →
	// lower demand (behavioral + mechanical TCP ceiling).
	clean := avgOver(t, 6, func(s uint64) float64 {
		return float64(genSummary(t, 6, 3, goodQuality(), false, s).PeakNoBT)
	})
	lossy := avgOver(t, 6, func(s uint64) float64 {
		return float64(genSummary(t, 6, 3, Quality{RTT: 0.04, Loss: 0.025}, false, s).PeakNoBT)
	})
	slow := avgOver(t, 6, func(s uint64) float64 {
		return float64(genSummary(t, 6, 3, Quality{RTT: 0.9, Loss: 0.0002}, false, s).PeakNoBT)
	})
	if lossy >= clean {
		t.Errorf("2.5%% loss should lower peak demand: clean=%v lossy=%v", clean, lossy)
	}
	if slow >= clean {
		t.Errorf("900 ms RTT should lower peak demand: clean=%v slow=%v", clean, slow)
	}
}

func TestBitTorrentRaisesUsageAndIsMasked(t *testing.T) {
	bt := genSummary(t, 10, 3, goodQuality(), true, 42)
	if bt.Mean <= bt.MeanNoBT {
		t.Errorf("including BT must raise mean: %v vs %v", bt.Mean, bt.MeanNoBT)
	}
	// The no-BT metrics of a BT user should be in the ballpark of a
	// non-BT user's overall metrics (the paper's Sec. 2.1 validation).
	plain := avgOver(t, 5, func(s uint64) float64 { return float64(genSummary(t, 10, 3, goodQuality(), false, s).Mean) })
	noBT := avgOver(t, 5, func(s uint64) float64 { return float64(genSummary(t, 10, 3, goodQuality(), true, s).MeanNoBT) })
	ratio := noBT / plain
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("no-BT demand of BT users should resemble non-BT users: ratio %.2f", ratio)
	}
}

func TestDasuMaskBiasesMeanNotPeak(t *testing.T) {
	// Fig. 3's explanation: end-host sampling is biased toward busy hours,
	// raising measured mean; the p95 is dominated by busy hours either way.
	g := &Generator{Capacity: unit.MbpsOf(10), Quality: goodQuality(), Profile: Profile{NeedMbps: 3}}
	var meanRatio, peakRatio float64
	const n = 6
	for i := 0; i < n; i++ {
		series, err := g.Generate(3, randx.New(uint64(200+i)))
		if err != nil {
			t.Fatal(err)
		}
		gw, err := series.Summarize(GatewayMask)
		if err != nil {
			t.Fatal(err)
		}
		dasu, err := series.Summarize(DasuMask)
		if err != nil {
			t.Fatal(err)
		}
		meanRatio += float64(dasu.Mean) / float64(gw.Mean)
		peakRatio += float64(dasu.Peak) / float64(gw.Peak)
	}
	meanRatio /= n
	peakRatio /= n
	if meanRatio < 1.1 {
		t.Errorf("Dasu-mask mean should exceed gateway mean, ratio %.2f", meanRatio)
	}
	if peakRatio < 0.85 || peakRatio > 1.35 {
		t.Errorf("Dasu-mask peak should approximate gateway peak, ratio %.2f", peakRatio)
	}
}

func TestActivityProfile(t *testing.T) {
	// Normalized to mean 1 over the day.
	sum := 0.0
	for i := 0; i < 240; i++ {
		sum += Activity(24 * float64(i) / 240)
	}
	if avg := sum / 240; math.Abs(avg-1) > 0.02 {
		t.Errorf("Activity average = %v, want ≈1", avg)
	}
	// Evening dominates night.
	if Activity(21) < 2*Activity(4) {
		t.Errorf("evening %.2f should dwarf night %.2f", Activity(21), Activity(4))
	}
	// Periodicity and negative-hour handling.
	if math.Abs(Activity(25)-Activity(1)) > 1e-12 || math.Abs(Activity(-3)-Activity(21)) > 1e-12 {
		t.Error("Activity is not 24h-periodic")
	}
}

func TestFeasibleRate(t *testing.T) {
	capacity := unit.MbpsOf(50)
	pristine := Quality{RTT: 0.04, Loss: 1e-5} // Mathis ≈ 112 Mbps, above the line
	// Pristine line, uncapped flow: capacity-limited.
	if r := FeasibleRate(capacity, pristine, 0); r != capacity {
		t.Errorf("uncapped pristine rate = %v", r)
	}
	// Typical low loss (0.02%) still Mathis-limits a single fat flow — the
	// realistic per-connection ceiling on fast lines.
	if r := FeasibleRate(capacity, goodQuality(), 0); r >= capacity || r < unit.MbpsOf(10) {
		t.Errorf("typical-loss single-flow ceiling = %v, want 10–50 Mbps", r)
	}
	// Flow cap binds.
	if r := FeasibleRate(capacity, pristine, unit.MbpsOf(3)); r != unit.MbpsOf(3) {
		t.Errorf("capped rate = %v", r)
	}
	// Lossy long path: Mathis binds below capacity.
	r := FeasibleRate(capacity, Quality{RTT: 0.5, Loss: 0.02}, 0)
	if r >= capacity {
		t.Errorf("Mathis should bind on a bad line, got %v", r)
	}
	if r < unit.KbpsOf(8) {
		t.Errorf("feasible rate fell below the floor: %v", r)
	}
	// Floor.
	if r := FeasibleRate(unit.KbpsOf(4), Quality{RTT: 3, Loss: 0.3}, 0); r != unit.KbpsOf(8) {
		t.Errorf("floor = %v, want 8 kbps", r)
	}
}

func TestAppTypeStrings(t *testing.T) {
	for app, want := range map[AppType]string{
		AppWeb: "web", AppVideo: "video", AppBulk: "bulk", AppBackground: "background", AppTorrent: "torrent",
	} {
		if app.String() != want {
			t.Errorf("%d = %q", app, app.String())
		}
	}
}

func TestSummarizeErrors(t *testing.T) {
	s := &Series{Interval: 30}
	if _, err := s.Summarize(nil); err == nil {
		t.Error("empty series should error")
	}
	s = &Series{Interval: 30, Counters: make([]unit.ByteSize, 10), BTActive: make([]bool, 10)}
	none := func(float64) bool { return false }
	if _, err := s.Summarize(none); err == nil {
		t.Error("all-masked series should error")
	}
}
