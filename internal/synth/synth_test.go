package synth

import (
	"sync"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/stats"
)

// testWorld is a medium world shared by read-only tests.
var (
	testWorldOnce sync.Once
	testWorldVal  *World
	testWorldErr  error
)

func testWorld(t *testing.T) *World {
	t.Helper()
	testWorldOnce.Do(func() {
		testWorldVal, testWorldErr = Build(Config{
			Seed: 15, Users: 1200, FCCUsers: 250, Days: 2,
			SwitchTarget: 150, MinPerCountry: 8,
		})
	})
	if testWorldErr != nil {
		t.Fatal(testWorldErr)
	}
	return testWorldVal
}

func median(t *testing.T, xs []float64) float64 {
	t.Helper()
	m, err := stats.Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildValidates(t *testing.T) {
	w := testWorld(t)
	if err := w.Data.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Data.Plans) < 500 {
		t.Errorf("survey has %d plans, want survey scale (paper: 1523)", len(w.Data.Plans))
	}
	if len(w.Data.Markets) < 60 {
		t.Errorf("only %d markets", len(w.Data.Markets))
	}
	if len(w.Data.Switches) != 150 {
		t.Errorf("switches = %d, want the configured 150", len(w.Data.Switches))
	}
	for _, u := range w.Data.Users {
		if _, ok := w.Truth[u.ID]; !ok {
			t.Fatalf("user %d lacks ground truth", u.ID)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	cfg := Config{Seed: 5, Users: 150, FCCUsers: 30, Days: 1, SwitchTarget: 20}
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data.Users) != len(b.Data.Users) {
		t.Fatalf("user counts differ: %d vs %d", len(a.Data.Users), len(b.Data.Users))
	}
	for i := range a.Data.Users {
		if a.Data.Users[i] != b.Data.Users[i] {
			t.Fatalf("user %d differs:\n%+v\n%+v", i, a.Data.Users[i], b.Data.Users[i])
		}
	}
	if len(a.Data.Switches) != len(b.Data.Switches) {
		t.Fatalf("switch counts differ")
	}
	for i := range a.Data.Switches {
		if a.Data.Switches[i] != b.Data.Switches[i] {
			t.Fatalf("switch %d differs", i)
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	a, err := Build(Config{Seed: 1, Users: 100, FCCUsers: 10, Days: 1, SwitchTarget: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Seed: 2, Users: 100, FCCUsers: 10, Days: 1, SwitchTarget: 5})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	n := len(a.Data.Users)
	if len(b.Data.Users) < n {
		n = len(b.Data.Users)
	}
	for i := 0; i < n; i++ {
		if a.Data.Users[i].Capacity == b.Data.Users[i].Capacity {
			same++
		}
	}
	if same > n/2 {
		t.Errorf("different seeds produced %d/%d identical capacities", same, n)
	}
}

func TestGlobalCapacityDistributionMatchesPaper(t *testing.T) {
	// Fig. 1a: median ≈7.4 Mbps, IQR from ≈3.1 to ≈17.4 Mbps. We require
	// the same regime, not the digits.
	w := testWorld(t)
	users := dataset.Select(w.Data.Users, dataset.ByVantage(dataset.VantageDasu))
	caps := make([]float64, len(users))
	for i, u := range users {
		caps[i] = u.Capacity.Mbps()
	}
	med := median(t, caps)
	if med < 3.5 || med > 14 {
		t.Errorf("global median capacity = %.2f Mbps, want the paper's ≈7.4 regime", med)
	}
	q1, _ := stats.Quantile(caps, 0.25)
	q3, _ := stats.Quantile(caps, 0.75)
	if q1 < 0.4 || q1 > 6 || q3 < 8 || q3 > 35 {
		t.Errorf("IQR = [%.2f, %.2f], want roughly [3, 17]", q1, q3)
	}
}

func TestCaseStudyMarketShapes(t *testing.T) {
	// Table 4 and Fig. 7: median capacities ordered BW < SA < US < JP and
	// within the paper's ranges.
	w := testWorld(t)
	medCap := func(cc string) float64 {
		users := dataset.Select(w.Data.Users, dataset.ByCountry(cc), dataset.ByVantage(dataset.VantageDasu))
		if len(users) < 5 {
			t.Fatalf("%s has only %d users", cc, len(users))
		}
		caps := make([]float64, len(users))
		for i, u := range users {
			caps[i] = u.Capacity.Mbps()
		}
		return median(t, caps)
	}
	bw, sa, us, jp := medCap("BW"), medCap("SA"), medCap("US"), medCap("JP")
	if !(bw < sa && sa < us && us < jp) {
		t.Errorf("median capacity order violated: BW=%.2f SA=%.2f US=%.2f JP=%.2f", bw, sa, us, jp)
	}
	if bw > 1 {
		t.Errorf("Botswana median = %.2f, want ≈0.5", bw)
	}
	if sa < 1.5 || sa > 7 {
		t.Errorf("Saudi median = %.2f, want ≈4", sa)
	}
	if us < 9 || us > 24 {
		t.Errorf("US median = %.2f, want ≈17.6", us)
	}
	if jp < 18 || jp > 45 {
		t.Errorf("Japan median = %.2f, want ≈29", jp)
	}
}

func TestUtilizationReversesCapacityOrder(t *testing.T) {
	// Fig. 7b: peak utilization order is exactly the reverse of the
	// capacity order (Botswana hottest, Japan coldest).
	w := testWorld(t)
	meanUtil := func(cc string) float64 {
		users := dataset.Select(w.Data.Users, dataset.ByCountry(cc), dataset.ByVantage(dataset.VantageDasu))
		total := 0.0
		for _, u := range users {
			total += u.PeakUtilization()
		}
		return total / float64(len(users))
	}
	bw, sa, us, jp := meanUtil("BW"), meanUtil("SA"), meanUtil("US"), meanUtil("JP")
	if !(bw > sa && sa > us && us > jp) {
		t.Errorf("utilization order violated: BW=%.2f SA=%.2f US=%.2f JP=%.2f", bw, sa, us, jp)
	}
	if bw < 0.6 {
		t.Errorf("Botswana mean peak utilization = %.2f, want the ≈0.8 regime", bw)
	}
	if jp > 0.55 {
		t.Errorf("Japan mean peak utilization = %.2f, want well below the US", jp)
	}
}

func TestSwitchPanelDirection(t *testing.T) {
	// Table 1's regime: upgrades raise demand in roughly two-thirds of
	// pairs — well above chance, well below certainty.
	w := testWorld(t)
	meanUp, peakUp := 0, 0
	for _, s := range w.Data.Switches {
		if s.After.MeanNoBT > s.Before.MeanNoBT {
			meanUp++
		}
		if s.After.PeakNoBT > s.Before.PeakNoBT {
			peakUp++
		}
	}
	n := len(w.Data.Switches)
	fMean := float64(meanUp) / float64(n)
	fPeak := float64(peakUp) / float64(n)
	if fMean < 0.55 || fMean > 0.85 {
		t.Errorf("mean-demand increase fraction = %.2f, want the paper's ≈0.67 regime", fMean)
	}
	if fPeak < 0.55 || fPeak > 0.9 {
		t.Errorf("peak-demand increase fraction = %.2f, want the paper's ≈0.70 regime", fPeak)
	}
}

func TestLongitudinalCohorts(t *testing.T) {
	w := testWorld(t)
	var sizes []int
	for _, y := range []int{2011, 2012, 2013} {
		n := len(dataset.Select(w.Data.Users, dataset.ByYear(y), dataset.ByVantage(dataset.VantageDasu)))
		if n == 0 {
			t.Fatalf("no users in %d", y)
		}
		sizes = append(sizes, n)
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Errorf("cohorts should grow year over year: %v", sizes)
	}
}

func TestGatewayPanel(t *testing.T) {
	w := testWorld(t)
	fcc := dataset.Select(w.Data.Users, dataset.ByVantage(dataset.VantageGateway))
	if len(fcc) < 200 {
		t.Fatalf("gateway panel has %d users, want ≈250", len(fcc))
	}
	for _, u := range fcc {
		if u.Country != "US" {
			t.Fatalf("gateway user outside the US: %s", u.Country)
		}
		if u.UsesBT {
			t.Fatal("gateway users must not be BT-flagged")
		}
		if u.Year != 2013 {
			t.Fatalf("gateway user in year %d", u.Year)
		}
	}
}

func TestIndiaQualityProfile(t *testing.T) {
	// Sec. 7 / Figs. 11–12: India's latency and loss distributions sit far
	// above the rest of the population.
	w := testWorld(t)
	india := dataset.Select(w.Data.Users, dataset.ByCountry("IN"))
	rest := dataset.Select(w.Data.Users, dataset.NotCountry("IN"), dataset.ByVantage(dataset.VantageDasu))
	medRTT := func(us []*dataset.User) float64 {
		xs := make([]float64, len(us))
		for i, u := range us {
			xs[i] = u.RTT
		}
		return median(t, xs)
	}
	medLoss := func(us []*dataset.User) float64 {
		xs := make([]float64, len(us))
		for i, u := range us {
			xs[i] = float64(u.Loss)
		}
		return median(t, xs)
	}
	if rIN, rRest := medRTT(india), medRTT(rest); rIN < 2*rRest || rIN < 0.1 {
		t.Errorf("India median RTT %.0f ms should dwarf the rest's %.0f ms", rIN*1000, rRest*1000)
	}
	if lIN, lRest := medLoss(india), medLoss(rest); lIN < 3*lRest {
		t.Errorf("India median loss %.3f%% should dwarf the rest's %.3f%%", lIN*100, lRest*100)
	}
	// Nearly every Indian user above 100 ms (Fig. 11).
	over := 0
	for _, u := range india {
		if u.RTT > 0.1 {
			over++
		}
	}
	if frac := float64(over) / float64(len(india)); frac < 0.85 {
		t.Errorf("only %.0f%% of Indian users above 100 ms, want nearly all", 100*frac)
	}
	// WebRTT tracks but exceeds the NDT RTT.
	for _, u := range india[:min(10, len(india))] {
		if u.WebRTT <= u.RTT {
			t.Errorf("user %d WebRTT %v not above RTT %v", u.ID, u.WebRTT, u.RTT)
		}
	}
}

func TestDisableQoEAblation(t *testing.T) {
	// In the ablation world, truth QoE is pinned to 1 and bad-quality users
	// are no longer suppressed relative to the causal world.
	cfg := Config{Seed: 31, Users: 300, FCCUsers: 20, Days: 1, SwitchTarget: 10}
	causal, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableQoE = true
	ablated, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id, gt := range ablated.Truth {
		if gt.QoE != 1 {
			t.Fatalf("ablated world user %d has QoE %v", id, gt.QoE)
		}
	}
	// Average peak demand of high-RTT users must rise once the arrow is cut.
	avgPeakBad := func(w *World) (float64, int) {
		total, n := 0.0, 0
		for _, u := range w.Data.Users {
			if u.RTT > 0.5 {
				total += float64(u.Usage.PeakNoBT)
				n++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return total / float64(n), n
	}
	a, na := avgPeakBad(causal)
	b, nb := avgPeakBad(ablated)
	if na < 5 || nb < 5 {
		t.Skipf("too few high-RTT users (%d, %d)", na, nb)
	}
	if b <= a {
		t.Errorf("cutting the QoE arrow should raise bad-line demand: causal=%v ablated=%v", a, b)
	}
}

func TestMeasureNDTMode(t *testing.T) {
	// A small world measured with the packet-level simulator must still
	// validate and put measured capacity at or below (and near) plan rates
	// on clean lines.
	w, err := Build(Config{Seed: 17, Users: 40, FCCUsers: 5, Days: 1, SwitchTarget: 5, Measurement: MeasureNDT})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, u := range w.Data.Users {
		if u.Capacity > u.PlanDown {
			t.Errorf("user %d measured %v above plan %v", u.ID, u.Capacity, u.PlanDown)
		}
		// Truly clean, short, modest lines: a single TCP flow saturates
		// them inside the 8-second test window, so the best-of-runs
		// measurement must land near the plan rate. (Longer RTTs leave the
		// test ramp-dominated — a fidelity of the TCP model, not a bug.)
		if u.Loss < 0.0003 && u.RTT < 0.055 && u.PlanDown < 20e6 {
			if u.Capacity.Mbps() < 0.55*u.PlanDown.Mbps() {
				t.Errorf("clean line user %d measured %v on plan %v (loss %v, rtt %v)",
					u.ID, u.Capacity, u.PlanDown, u.Loss, u.RTT)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no clean lines sampled")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
