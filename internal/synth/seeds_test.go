package synth

import (
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/stats"
)

// TestShapesHoldAcrossSeeds guards the headline qualitative results against
// seed luck: the case-study orderings and the switch-panel direction must
// hold for several independent worlds, not just the tuned test seed.
func TestShapesHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world build")
	}
	for _, seed := range []uint64{101, 202, 303} {
		seed := seed
		w, err := Build(Config{
			Seed: seed, Users: 1000, FCCUsers: 150, Days: 2,
			SwitchTarget: 120, MinPerCountry: 20,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		medCap := func(cc string) float64 {
			users := dataset.Select(w.Data.Users, dataset.ByCountry(cc), dataset.ByVantage(dataset.VantageDasu))
			m, err := stats.Median(dataset.Capacities(users))
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cc, err)
			}
			return m
		}
		meanUtil := func(cc string) float64 {
			users := dataset.Select(w.Data.Users, dataset.ByCountry(cc), dataset.ByVantage(dataset.VantageDasu))
			total := 0.0
			for _, u := range users {
				total += u.PeakUtilization()
			}
			return total / float64(len(users))
		}
		// Capacity ordering (Fig. 7a).
		if !(medCap("BW") < medCap("SA") && medCap("SA") < medCap("US") && medCap("US") < medCap("JP")) {
			t.Errorf("seed %d: capacity ordering broke: BW=%.2f SA=%.2f US=%.2f JP=%.2f",
				seed, medCap("BW"), medCap("SA"), medCap("US"), medCap("JP"))
		}
		// Utilization extremes (Fig. 7b); the middle of the ordering is
		// allowed to wobble at this world size.
		if !(meanUtil("BW") > meanUtil("US") && meanUtil("US") > meanUtil("JP")) {
			t.Errorf("seed %d: utilization extremes broke: BW=%.2f US=%.2f JP=%.2f",
				seed, meanUtil("BW"), meanUtil("US"), meanUtil("JP"))
		}
		// Switch-panel direction (Table 1).
		up := 0
		for _, s := range w.Data.Switches {
			if s.After.PeakNoBT > s.Before.PeakNoBT {
				up++
			}
		}
		frac := float64(up) / float64(len(w.Data.Switches))
		if frac < 0.55 || frac > 0.92 {
			t.Errorf("seed %d: switch-panel peak fraction %.2f outside the paper regime", seed, frac)
		}
	}
}
