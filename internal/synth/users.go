package synth

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/par"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// wtpPerMbps is the base willingness to pay per Mbps of (headroom-adjusted)
// need, at the US income reference. Together with headroom it is solved
// from the paper's two capacity anchors: the interior optimum of the choice
// model is c* = headroom·need·ln(wtp/slope), and (US: slope 0.55, c* ≈ 18;
// Japan: slope 0.08, c* ≈ 28) pins wtp ≈ 17.7 and headroom ≈ 1.53.
const wtpPerMbps = 17.7

// headroom is the value-curve stretch beyond raw need (see market.Subscriber).
const headroom = 1.85

// incomeRef anchors the WTP income scaling.
const incomeRef = 49797.0

type generator struct {
	ctx   context.Context
	cfg   Config
	world *World
	rng   *randx.Source
}

// maxAffordAttempts bounds the household redraws per user slot. It is also
// the ID stride: slot j owns the deterministic ID range
// [1+j·maxAffordAttempts, 1+(j+1)·maxAffordAttempts), so every draw is a
// pure function of the world seed and the slot position — the property that
// lets slots generate concurrently with byte-identical output.
const maxAffordAttempts = 12

// userSlot is one unit of generation work: a single household of a
// (year, country, vantage) cohort with its precomputed ID range.
type userSlot struct {
	prof      market.Profile
	year      int
	needScale float64
	vantage   dataset.Vantage
	baseID    int64
}

// slotResult is what one slot produced: a subscriber, or nothing (the
// market priced every redraw out).
type slotResult struct {
	user  *dataset.User
	truth GroundTruth
}

// cohort is a contiguous run of identically parameterized user slots in the
// canonical world order: one (year, country, vantage) block. Slot j of a
// cohort owns ID base baseID + j·maxAffordAttempts.
type cohort struct {
	prof      market.Profile
	year      int
	needScale float64
	vantage   dataset.Vantage
	start     int   // global index of the cohort's first slot
	n         int   // slots in the cohort
	baseID    int64 // ID base of the first slot
	// primBefore counts the primary-year Dasu slots laid out before this
	// cohort — the slot's rank within the switch-candidate universe.
	primBefore int
}

// slotLayout is the compact description of every user slot of a world:
// cohort runs instead of per-slot records, so it stays a few hundred
// entries even for a 10M-user world (DESIGN.md §8). It is a pure function
// of the config — any two builds of the same config agree on every slot's
// parameters and ID range before a single user is generated, which is what
// lets shards (and workers) generate independently with identical bytes.
type slotLayout struct {
	cohorts     []cohort
	total       int
	primaryYear int
	primaryDasu int // total primary-year Dasu slots (switch candidates)
}

// layout computes the world's slot layout in canonical order: yearly Dasu
// cohorts (years in config order, countries in profile order), then the US
// gateway panel.
func (g *generator) layout() (*slotLayout, error) {
	years := g.cfg.Years
	l := &slotLayout{primaryYear: years[len(years)-1]}
	nextBase := int64(1)
	add := func(prof market.Profile, year int, needScale float64, vantage dataset.Vantage, n int) {
		if n <= 0 {
			return
		}
		l.cohorts = append(l.cohorts, cohort{
			prof: prof, year: year, needScale: needScale, vantage: vantage,
			start: l.total, n: n, baseID: nextBase, primBefore: l.primaryDasu,
		})
		if year == l.primaryYear && vantage == dataset.VantageDasu {
			l.primaryDasu += n
		}
		l.total += n
		nextBase += int64(n) * maxAffordAttempts
	}
	for _, year := range years {
		// Earlier cohorts are smaller (subscriber growth) and carry lower
		// latent need (traffic growth).
		age := float64(l.primaryYear - year)
		scale := math.Pow(g.cfg.YearGrowth, -age)
		needScale := math.Pow(g.cfg.NeedGrowth, -age)
		total := int(math.Round(float64(g.cfg.Users) * scale))
		minPer := 0
		if year == l.primaryYear {
			minPer = g.cfg.MinPerCountry
		}
		counts := countryCounts(g.cfg.Profiles, total, minPer)
		for _, prof := range g.cfg.Profiles {
			add(prof, year, needScale, dataset.VantageDasu, counts[prof.Country.Code])
		}
	}
	// The gateway (FCC) panel: US-only, primary year, uniform sampling.
	usProf, ok := findProfile(g.cfg.Profiles, "US")
	if !ok {
		return nil, fmt.Errorf("synth: gateway panel needs a US profile")
	}
	add(usProf, l.primaryYear, 1, dataset.VantageGateway, g.cfg.FCCUsers)
	return l, nil
}

// find returns the cohort containing global slot i.
func (l *slotLayout) find(i int) *cohort {
	j := sort.Search(len(l.cohorts), func(k int) bool { return l.cohorts[k].start > i }) - 1
	return &l.cohorts[j]
}

// slot materializes global slot i.
func (l *slotLayout) slot(i int) userSlot {
	c := l.find(i)
	return userSlot{
		prof: c.prof, year: c.year, needScale: c.needScale, vantage: c.vantage,
		baseID: c.baseID + int64(i-c.start)*maxAffordAttempts,
	}
}

// primaryDasuRank returns slot i's 0-based position within the primary-year
// Dasu slots — the switch-candidate universe — in slot order; ok is false
// for every other slot.
func (l *slotLayout) primaryDasuRank(i int) (int, bool) {
	c := l.find(i)
	if c.year != l.primaryYear || c.vantage != dataset.VantageDasu {
		return 0, false
	}
	return c.primBefore + (i - c.start), true
}

// populate generates every yearly cohort of the Dasu panel plus the US
// gateway panel, fanning the layout's slots out over the worker pool and
// merging results in canonical slot order.
func (g *generator) populate() error {
	lay, err := g.layout()
	if err != nil {
		return err
	}
	results := make([]slotResult, lay.total)
	err = par.ForNCtx(g.ctx, par.Workers(g.cfg.Workers), lay.total, func(i int) error {
		r, err := g.generateSlot(lay.slot(i))
		results[i] = r
		return err
	})
	if err != nil {
		return err
	}
	// Merge sequentially into the columnar panel (dictionary interning is
	// order-sensitive and single-threaded); the row-form Users the CSV
	// contract requires are materialized from the columns, so both forms
	// exist and agree by construction.
	g.world.Skipped = make(map[string]int)
	panel := dataset.NewPanel(lay.total)
	for i := range results {
		if results[i].user == nil {
			g.world.Skipped[lay.find(i).prof.Country.Code]++
			continue
		}
		panel.Append(results[i].user)
		g.world.Truth[results[i].user.ID] = results[i].truth
	}
	g.world.Data.Users = panel.Users()
	g.world.Data.AttachPanel(panel)
	return nil
}

func findProfile(profiles []market.Profile, code string) (market.Profile, bool) {
	for _, p := range profiles {
		if p.Country.Code == code {
			return p, true
		}
	}
	return market.Profile{}, false
}

// generateSlot draws one subscriber: economy → plan choice → line quality →
// measurement → usage. Households that cannot afford any plan are redrawn
// (the offline population simply never enters a measurement panel); after
// a bounded number of attempts the slot stays empty and the shortfall is
// recorded in World.Skipped. The draw depends only on the world seed and
// the slot's ID range, never on other slots, so it is safe to run
// concurrently against the read-only catalogs and market summaries.
func (g *generator) generateSlot(s userSlot) (slotResult, error) {
	prof, year, needScale, vantage := s.prof, s.year, s.needScale, s.vantage
	cat := g.world.Catalogs[prof.Country.Code]
	for attempt := 0; attempt < maxAffordAttempts; attempt++ {
		id := s.baseID + int64(attempt)
		rng := g.rng.SplitN("user", int(id))

		// Availability friction: a share of households can only buy what
		// their street is wired for (legacy DSL footprints, no cable/fiber
		// build-out yet) — the 2011–2013 reality that kept part of the
		// population on slow tiers. Legacy footprints skew rural and toward
		// lighter-using households, so these subscribers also carry reduced
		// latent demand.
		needMult := 1.0
		choices := cat
		if avail := rng.Split("avail"); avail.Bool(availabilityShare) {
			needMult = 0.35 + 0.25*avail.Float64()
			// The street-level limit tracks the era: legacy footprints were
			// slower in earlier cohort years and improve alongside demand
			// (the infrastructure half of the "jump to a higher service"
			// dynamic).
			limit := unit.MbpsOf(avail.LogNormalMedian(3*needScale, 0.5))
			if truncated, ok := truncateCatalog(cat, limit); ok {
				choices = truncated
			}
		}
		sub, truth := drawSubscriber(prof, needScale*needMult, rng)
		plan, ok := market.Choose(choices, sub, market.ChoiceConfig{NoiseUSD: 2 + 0.015*float64(sub.Budget)}, rng.Split("choice"))
		if !ok {
			continue // cannot afford broadband; resample the household
		}

		u, err := g.realizeUser(id, prof, year, vantage, plan, &truth, rng)
		if err != nil {
			return slotResult{}, err
		}
		return slotResult{user: u, truth: truth}, nil
	}
	return slotResult{}, nil // market too expensive for this draw sequence: a skipped household
}

// needIncomeCorr couples latent demand to household income: wealthier
// households run more devices and consume more. This correlation is what
// lets access-price selection (only the affluent subscribe in expensive
// markets) translate into higher demand per unit capacity — the causal
// channel behind the paper's Table 3.
const needIncomeCorr = 0.65

// drawSubscriber samples the household economics and latent demand.
func drawSubscriber(prof market.Profile, needScale float64, rng *randx.Source) (market.Subscriber, GroundTruth) {
	econ := rng.Split("econ")
	// Correlated log-normal draws for income and need.
	zIncome := econ.Normal(0, 1)
	zNeed := needIncomeCorr*zIncome + math.Sqrt(1-needIncomeCorr*needIncomeCorr)*rng.Split("need").Normal(0, 1)
	need := prof.NeedMedianMbps * needScale * math.Exp(prof.NeedSigma*zNeed)
	if need < 0.1 {
		need = 0.1
	}
	if need > 60 {
		need = 60
	}
	// Household income around the national level, heavy-tailed; measurement
	// panels skew slightly affluent.
	income := prof.Country.GDPPerCapitaPPP / 12 * 1.15 * math.Exp(0.65*zIncome)
	// Budget: the share of monthly income a household will spend on
	// broadband. Tight enough that mid-priced markets see real
	// affordability selection (2013 broadband penetration in middle-income
	// countries sat near 30–50%, versus 70%+ in rich ones).
	share := econ.TruncNormal(0.03, 0.018, 0.007, 0.11)
	budget := income * share
	// Willingness to pay scales with income (mildly) and with need.
	wtp := wtpPerMbps * math.Pow(income*12/incomeRef, 0.3) * headroom * need
	sub := market.Subscriber{
		NeedMbps: need,
		WTP:      unit.USD(wtp),
		Budget:   unit.USD(budget),
		Headroom: headroom,
	}
	return sub, GroundTruth{NeedMbps: need, BudgetUSD: budget}
}

// realizeUser measures the line and generates usage for a chosen plan.
func (g *generator) realizeUser(id int64, prof market.Profile, year int, vantage dataset.Vantage, plan market.Plan, truth *GroundTruth, rng *randx.Source) (*dataset.User, error) {
	q, satellite := drawQuality(prof, plan, rng.Split("quality"))
	truth.Satellite = satellite
	truth.QoE = traffic.QoEFactor(q)
	if g.cfg.DisableQoE {
		truth.QoE = 1
	}

	meas, err := g.measure(plan, q, rng.Split("measure"))
	if err != nil {
		return nil, err
	}

	btUser := vantage == dataset.VantageDasu && rng.Split("bt").Bool(prof.BTShare)
	archetype, err := drawArchetype(rng.Split("archetype"))
	if err != nil {
		return nil, err
	}
	profile := traffic.Profile{
		NeedMbps: truth.NeedMbps,
		// The session budget is where latent need expresses itself as
		// activity volume (hungrier households run more sessions).
		SessionsPerDay:   traffic.DefaultSessionsPerDay * sessionScale(truth.NeedMbps) * rng.Split("budget").LogNormalMedian(1, 0.4),
		BTUser:           btUser,
		BTSessionsPerDay: 2.5,
		Archetype:        archetype,
		MonthlyCap:       plan.Cap,
	}
	tq := q
	if g.cfg.DisableQoE {
		// Ablation world: sever the quality→demand arrow entirely (both
		// the behavioral suppression and the TCP-feasibility ceiling) by
		// generating traffic as if every line were pristine. The recorded
		// measurements still reflect the true line, so the latency/loss
		// experiments run unchanged — and must now come out null.
		tq = traffic.Quality{RTT: 0.02, Loss: 0}
	}
	tgen := &traffic.Generator{
		Capacity: meas.down,
		Quality:  tq,
		Profile:  profile,
	}
	series, err := tgen.Generate(g.cfg.Days, rng.Split("traffic"))
	if err != nil {
		return nil, err
	}
	mask := traffic.GatewayMask
	if vantage == dataset.VantageDasu {
		mask = traffic.DasuMask
	}
	sum, err := series.Summarize(mask)
	if err != nil {
		return nil, err
	}

	netIdx := rng.Split("net").IntN(4)
	city := rng.Split("city").IntN(6)
	u := &dataset.User{
		ID:         id,
		Country:    prof.Country.Code,
		Vantage:    vantage,
		Year:       year,
		ISP:        plan.ISP,
		NetworkKey: fmt.Sprintf("%s/net%d/city%d", plan.ISP, netIdx, city),
		PlanDown:   plan.Down,
		PlanUp:     plan.Up,
		PlanPrice:  plan.PriceUSD,
		PlanTech:   plan.Tech,
		PlanCap:    plan.Cap,
		Capacity:   meas.down,
		UpCapacity: meas.up,
		RTT:        meas.rtt,
		WebRTT:     meas.webRTT,
		Loss:       meas.loss,
		Usage: dataset.UsageSummary{
			Mean:     sum.Mean,
			Peak:     sum.Peak,
			MeanNoBT: sum.MeanNoBT,
			PeakNoBT: sum.PeakNoBT,
		},
		UsesBT:      btUser,
		Archetype:   archetype,
		AccessPrice: g.world.Data.Markets[prof.Country.Code].AccessPrice,
		UpgradeCost: unit.PerMbps(g.world.Data.Markets[prof.Country.Code].Upgrade.Slope),
	}
	return u, nil
}

// availabilityShare is the fraction of households whose street is only
// wired for a slow legacy tier regardless of what the market sells.
const availabilityShare = 0.12

// truncateCatalog keeps the shared plans at or below the availability
// limit; ok is false when nothing survives (the full catalog then applies).
func truncateCatalog(cat market.Catalog, limit unit.Bitrate) (market.Catalog, bool) {
	out := market.Catalog{Country: cat.Country}
	for _, p := range cat.Plans {
		if !p.Dedicated && p.Down <= limit {
			out.Plans = append(out.Plans, p)
		}
	}
	return out, len(out.Plans) > 0
}

// sessionScale converts latent need into a session-budget multiplier. The
// sublinear power and the cap reflect the finite hours in a household day.
func sessionScale(needMbps float64) float64 {
	if needMbps <= 0 {
		return 1
	}
	s := math.Pow(needMbps/2.5, 0.45)
	if s > 1.5 {
		s = 1.5
	}
	return s
}

// drawArchetype samples a household application-mix category from the
// population shares. A malformed (empty) archetype table surfaces as an
// error rather than panicking mid-generation.
func drawArchetype(rng *randx.Source) (traffic.Archetype, error) {
	archetypes := traffic.Archetypes()
	weights := make([]float64, len(archetypes))
	for i, a := range archetypes {
		weights[i] = traffic.ArchetypeShares[a]
	}
	i, err := rng.CategoricalErr(weights)
	if err != nil {
		return 0, fmt.Errorf("synth: archetype shares: %w", err)
	}
	return archetypes[i], nil
}

// drawQuality samples the line's latency and loss from the country profile,
// with satellite/fixed-wireless overrides for that share of users.
func drawQuality(prof market.Profile, plan market.Plan, rng *randx.Source) (traffic.Quality, bool) {
	satellite := rng.Bool(prof.SatelliteShare) || plan.Tech == market.Satellite
	rtt := rng.LogNormalMedian(prof.BaseRTTms/1000, prof.RTTSigma)
	lossPct := rng.LogNormalMedian(prof.LossMedianPct, prof.LossSigma)
	if satellite {
		rtt += 0.45 + 0.25*rng.Float64()
		lossPct *= 3 + 4*rng.Float64()
	}
	if rtt < 0.004 {
		rtt = 0.004
	}
	if rtt > 4 {
		rtt = 4
	}
	if lossPct < 0.001 {
		lossPct = 0.001
	}
	if lossPct > 15 {
		lossPct = 15
	}
	return traffic.Quality{RTT: rtt, Loss: unit.LossFromPercent(lossPct)}, satellite
}
