package synth

import (
	"context"
	"fmt"
	"os"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/par"
)

// Out-of-core world generation (DESIGN.md §8). BuildSharded writes the user
// panel as N shard files through the streaming CSV writers instead of
// materializing []dataset.User, so resident memory is bounded by the world
// frame (catalogs, market summaries) plus the switch-candidate pool —
// independent of the user count. This is what unlocks
// `bbgen -users 10000000 -shards N` on a laptop.

// switchPoolFactor sizes the in-memory switch-candidate pool relative to
// SwitchTarget. Upgrade acceptance (utilization pressure × catalog fit) runs
// a few percent, so 32× the target keeps the panel full in practice while
// the pool stays thousands of users, not millions.
const switchPoolFactor = 32

// ShardSpec describes the on-disk layout of an out-of-core build.
type ShardSpec struct {
	// Dir receives the shard files plus switches.csv and plans.csv.
	Dir string
	// Shards is the number of user shard files (defaults to 1). Shard i
	// covers the slot range [i·total/Shards, (i+1)·total/Shards); a shard
	// past the population is a valid header-only file.
	Shards int
	// Gzip writes .csv.gz transport for every table.
	Gzip bool
}

// ShardReport summarizes an out-of-core build.
type ShardReport struct {
	Dir        string
	ShardFiles []string
	// Users is the number of subscribers written across all shards.
	Users int
	// Skipped counts households per country that exhausted every
	// affordability redraw (same meaning as World.Skipped).
	Skipped map[string]int
	// PoolUsers is how many switch candidates were retained in memory.
	PoolUsers int
	Switches  int
	Plans     int
}

// SkippedHouseholds mirrors World.SkippedHouseholds for sharded builds.
func (r *ShardReport) SkippedHouseholds() int {
	total := 0
	for _, n := range r.Skipped {
		total += n
	}
	return total
}

// BuildSharded generates a world directly to disk. Users stream to shard
// files in canonical slot order — shard contents are byte-identical for
// every Workers value, and concatenating the shard bodies in index order
// yields exactly the monolithic users.csv rows of BuildCtx with the same
// config. The switch panel draws from a bounded candidate pool: the users
// produced by the first switchPoolFactor·SwitchTarget primary-year Dasu
// slots, in slot order — a pure function of the layout, so the panel is
// identical for every shard count and worker count (and identical to the
// in-core build whenever the pool covers all candidates). Whole-panel
// validation is the in-core build's job; sharded output is gated by the
// per-row invariants of generation itself.
func BuildSharded(ctx context.Context, cfg Config, spec ShardSpec) (*ShardReport, error) {
	if spec.Dir == "" {
		return nil, fmt.Errorf("synth: sharded build needs an output directory")
	}
	if spec.Shards <= 0 {
		spec.Shards = 1
	}
	gen, err := newGenerator(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = gen.cfg
	lay, err := gen.layout()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(spec.Dir, 0o755); err != nil {
		return nil, err
	}
	poolK := 0
	if cfg.SwitchTarget > 0 {
		poolK = lay.primaryDasu
		if k := switchPoolFactor * cfg.SwitchTarget; k < poolK {
			poolK = k
		}
	}

	// Each shard is generated sequentially by one worker and written through
	// one streaming writer; shards fan out across the pool. Per-shard slices
	// keep the workers share-nothing until the join.
	type poolEntry struct {
		user  dataset.User
		truth GroundTruth
	}
	paths := make([]string, spec.Shards)
	counts := make([]int, spec.Shards)
	skipped := make([]map[string]int, spec.Shards)
	pools := make([][]poolEntry, spec.Shards)
	err = par.ForNCtx(ctx, par.Workers(cfg.Workers), spec.Shards, func(s int) error {
		lo, hi := s*lay.total/spec.Shards, (s+1)*lay.total/spec.Shards
		skipped[s] = make(map[string]int)
		path, err := dataset.WriteUserShardCtx(ctx, spec.Dir, s, spec.Shards, spec.Gzip, func(uw *dataset.UserWriter) error {
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				r, err := gen.generateSlot(lay.slot(i))
				if err != nil {
					return err
				}
				if r.user == nil {
					skipped[s][lay.find(i).prof.Country.Code]++
					continue
				}
				if err := uw.Write(r.user); err != nil {
					return err
				}
				counts[s]++
				if rank, ok := lay.primaryDasuRank(i); ok && rank < poolK {
					pools[s] = append(pools[s], poolEntry{user: *r.user, truth: r.truth})
				}
			}
			return nil
		})
		paths[s] = path
		return err
	})
	if err != nil {
		return nil, err
	}

	w := gen.world
	w.Skipped = make(map[string]int)
	users := 0
	for s := range counts {
		users += counts[s]
		for code, n := range skipped[s] {
			w.Skipped[code] += n
		}
	}
	// Shards cover increasing slot ranges, so concatenating the per-shard
	// pools restores slot order — the order upgradesFrom expects.
	var candidates []*dataset.User
	for s := range pools {
		for j := range pools[s] {
			e := &pools[s][j]
			w.Truth[e.user.ID] = e.truth
			candidates = append(candidates, &e.user)
		}
	}
	if err := gen.upgradesFrom(candidates); err != nil {
		return nil, err
	}
	opts := dataset.SaveOptions{Gzip: spec.Gzip, Workers: cfg.Workers}
	if err := dataset.WriteSwitchesFileCtx(ctx, spec.Dir, opts, w.Data.Switches); err != nil {
		return nil, err
	}
	if err := dataset.WritePlansFileCtx(ctx, spec.Dir, opts, w.Data.Plans); err != nil {
		return nil, err
	}
	return &ShardReport{
		Dir:        spec.Dir,
		ShardFiles: paths,
		Users:      users,
		Skipped:    w.Skipped,
		PoolUsers:  len(candidates),
		Switches:   len(w.Data.Switches),
		Plans:      len(w.Data.Plans),
	}, nil
}
