package synth

import (
	"errors"
	"strings"
	"testing"
)

// Scenario deltas can now push arbitrary values into Config, so defaulting
// alone is not enough: negative counts, non-positive growth factors, and an
// explicitly empty cohort list must be rejected with typed errors rather
// than silently repaired into a world the scenario did not ask for.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		wantField string // "" = config must build
	}{
		{name: "zero config defaults cleanly", cfg: Config{}},
		{name: "negative users", cfg: Config{Users: -1}, wantField: "Users"},
		{name: "negative fcc users", cfg: Config{FCCUsers: -5}, wantField: "FCCUsers"},
		{name: "explicit empty years", cfg: Config{Years: []int{}}, wantField: "Years"},
		{name: "negative year growth", cfg: Config{YearGrowth: -0.5}, wantField: "YearGrowth"},
		{name: "negative need growth", cfg: Config{NeedGrowth: -1}, wantField: "NeedGrowth"},
		{name: "flat need growth is now legal", cfg: Config{NeedGrowth: 1.0}},
		{name: "sub-unit year growth is now legal", cfg: Config{YearGrowth: 0.9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.withDefaults().validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("want error, config validated")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error %v is not ErrInvalidConfig", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Field != tc.wantField {
				t.Fatalf("error names field %q, want %q", ce.Field, tc.wantField)
			}
			if !strings.Contains(err.Error(), tc.wantField) {
				t.Fatalf("message %q does not name the field", err.Error())
			}
		})
	}
}

// Build surfaces validation errors — the rejection reaches callers, not
// just the internal validate method.
func TestBuildRejectsInvalidConfig(t *testing.T) {
	_, err := Build(Config{Seed: 1, Users: -10})
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Build(-10 users) = %v, want ErrInvalidConfig", err)
	}
	_, err = Build(Config{Seed: 1, Years: []int{}})
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Build(empty years) = %v, want ErrInvalidConfig", err)
	}
}

// Zero growth factors still mean "use the default", preserving the seed
// tree's zero-value ergonomics.
func TestZeroGrowthStillDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.YearGrowth != 1.35 || c.NeedGrowth != 1.12 {
		t.Fatalf("zero growth fields defaulted to %v/%v", c.YearGrowth, c.NeedGrowth)
	}
	if len(c.Years) != 3 || c.Users != 2000 || c.FCCUsers != 500 {
		t.Fatalf("defaults drifted: %+v", c)
	}
}
