// Package synth generates the study's three datasets from a single seed:
// the end-host (Dasu-style) user panel, the US residential-gateway
// (FCC-style) panel, and the retail-plan survey. It wires the market model
// (who subscribes to what, and why), the traffic model (what they then do
// with it), and the network simulator (what the measurements see) into
// dataset records with the paper's schema.
package synth

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
)

// MeasureMode selects how service characteristics are measured.
type MeasureMode int

const (
	// MeasureFast derives NDT-style results from the line parameters via
	// the calibrated single-flow model (Mathis-bounded efficiency). It is
	// validated against MeasureNDT in tests and is the default for large
	// worlds.
	MeasureFast MeasureMode = iota
	// MeasureNDT runs the full packet-level TCP simulation for every
	// user's capacity/latency/loss measurement. Slower; bit-faithful to
	// the netsim substrate.
	MeasureNDT
)

// Config parameterizes a world generation.
type Config struct {
	Seed uint64
	// Users is the target number of end-host (Dasu) users per primary
	// year, distributed across countries by profile weight.
	Users int
	// FCCUsers is the size of the US gateway panel.
	FCCUsers int
	// Days is the per-user observation window in simulated days.
	Days int
	// Years lists the longitudinal cohort years; the last is the primary
	// year carrying the Users target. Earlier years shrink by YearGrowth.
	Years []int
	// YearGrowth is the year-over-year subscriber growth factor (>1) and
	// drives both cohort sizes and the latent-need drift between years.
	YearGrowth float64
	// NeedGrowth is the year-over-year growth of median latent demand —
	// the "fourfold global traffic growth" driver that shifts users to
	// higher classes rather than raising within-class demand.
	NeedGrowth float64
	// SwitchTarget is the number of service-upgrade (before/after) records
	// to generate for the within-subject experiments.
	SwitchTarget int
	// MinPerCountry floors each country's primary-year population so tier
	// analyses in small worlds keep their case-study markets (0 disables).
	MinPerCountry int
	// Measurement selects fast or packet-level measurement.
	Measurement MeasureMode
	// Profiles overrides the built-in market world (ablation worlds).
	Profiles []market.Profile
	// DisableQoE severs the quality→demand causal arrow: an ablation world
	// in which the latency/loss experiments must come out null.
	DisableQoE bool
	// Workers bounds the number of concurrent generation workers. Zero or
	// negative selects runtime.GOMAXPROCS(0); 1 forces the sequential path.
	// Generation is deterministic in Seed whatever the value: every user
	// slot owns a precomputed ID range, so the output is byte-identical
	// across worker counts.
	Workers int
}

// withDefaults fills unset (zero) fields. It deliberately defaults only on
// the zero value — a negative count or growth factor is left in place for
// validate to reject, and a non-nil empty Years slice is an error, not a
// request for the default cohort set. Scenario deltas may legitimately set
// growth factors in (0, 1] (a flat- or shrinking-demand regime), so those
// are no longer clamped to the defaults.
func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 2000
	}
	if c.FCCUsers == 0 {
		c.FCCUsers = c.Users / 4
	}
	if c.Days <= 0 {
		c.Days = 3
	}
	if c.Years == nil {
		c.Years = []int{2011, 2012, 2013}
	}
	if c.YearGrowth == 0 {
		c.YearGrowth = 1.35
	}
	if c.NeedGrowth == 0 {
		// Modest per-household drift: the paper's Fig. 6 finds within-class
		// demand constant, so most traffic growth must come from cohort
		// growth and class jumps, not from households using a given class
		// harder. 15%/year keeps the cross-year experiment null while the
		// switch panel carries the demand-growth story.
		c.NeedGrowth = 1.12
	}
	if c.SwitchTarget < 0 {
		c.SwitchTarget = 0
	} else if c.SwitchTarget == 0 && c.Users > 0 {
		c.SwitchTarget = c.Users / 4
	}
	if c.Profiles == nil {
		c.Profiles = market.World()
	}
	return c
}

// WithDefaults returns the config with every unset field filled the way
// Build will fill it. The scenario runner uses it to echo the effective
// world scale in its report.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// ErrInvalidConfig tags every Config validation failure; test with
// errors.Is. The concrete error is a *ConfigError naming the field.
var ErrInvalidConfig = errors.New("invalid synth config")

// ConfigError reports one invalid Config field.
type ConfigError struct {
	Field string // the offending Config field
	Msg   string // what is wrong with it
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("synth: invalid config: %s: %s", e.Field, e.Msg)
}

func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// validate rejects configs that defaulting could not repair. It runs after
// withDefaults, so a zero field has already been filled; what remains
// invalid was set deliberately (scenario deltas can produce every one of
// these) and must fail loudly rather than generate a nonsense world.
func (c Config) validate() error {
	if c.Users < 0 {
		return &ConfigError{Field: "Users", Msg: fmt.Sprintf("negative user count %d", c.Users)}
	}
	if c.FCCUsers < 0 {
		return &ConfigError{Field: "FCCUsers", Msg: fmt.Sprintf("negative user count %d", c.FCCUsers)}
	}
	if len(c.Years) == 0 {
		return &ConfigError{Field: "Years", Msg: "empty cohort-year list"}
	}
	if c.YearGrowth <= 0 {
		return &ConfigError{Field: "YearGrowth", Msg: fmt.Sprintf("growth factor %v must be > 0", c.YearGrowth)}
	}
	if c.NeedGrowth <= 0 {
		return &ConfigError{Field: "NeedGrowth", Msg: fmt.Sprintf("growth factor %v must be > 0", c.NeedGrowth)}
	}
	if len(c.Profiles) == 0 {
		return &ConfigError{Field: "Profiles", Msg: "no market profiles"}
	}
	return nil
}

// World is the generated world: the dataset plus the generator-side ground
// truth that tests use to validate the inference machinery.
type World struct {
	Data dataset.Dataset
	// Catalogs are the per-country plan catalogs behind the survey.
	Catalogs map[string]market.Catalog
	// Profiles are the market profiles used.
	Profiles []market.Profile
	// Truth holds per-user latent variables (keyed by user ID) that no
	// real study could observe; placebo and recovery tests read them.
	Truth map[int64]GroundTruth
	// Skipped counts, per country code, the households that exhausted every
	// affordability redraw without finding a plan they could pay for — the
	// population shortfall between requested and generated panel sizes.
	Skipped map[string]int
}

// SkippedHouseholds returns the total number of user slots that produced no
// subscriber because the market priced every draw out. When it is nonzero,
// len(Data.Users) falls short of the configured population by exactly this
// amount.
func (w *World) SkippedHouseholds() int {
	total := 0
	for _, n := range w.Skipped {
		total += n
	}
	return total
}

// GroundTruth is the latent state of one synthetic user.
type GroundTruth struct {
	NeedMbps  float64
	BudgetUSD float64
	Satellite bool
	QoE       float64
}

// Build generates a world.
func Build(cfg Config) (*World, error) {
	return BuildCtx(context.Background(), cfg)
}

// BuildCtx is Build with cancellation: generation stops at the next slot
// (or candidate chunk) boundary once ctx is cancelled and returns ctx.Err().
// A cancelled build returns no world — there is no partially generated
// output to misuse. Determinism is unaffected: a run that completes under
// any ctx is byte-identical to Build.
func BuildCtx(ctx context.Context, cfg Config) (*World, error) {
	gen, err := newGenerator(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := gen.populate(); err != nil {
		return nil, err
	}
	if err := gen.upgrades(); err != nil {
		return nil, err
	}
	if err := gen.world.Data.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated dataset invalid: %w", err)
	}
	return gen.world, nil
}

// newGenerator applies the config defaults and builds the world frame —
// plan catalogs, market summaries, the plan survey — shared by the in-core
// build (BuildCtx) and the out-of-core build (BuildSharded). The frame is
// read-only during user generation.
func newGenerator(ctx context.Context, cfg Config) (*generator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := randx.New(cfg.Seed)

	w := &World{
		Catalogs: market.BuildAllCatalogs(cfg.Profiles, root.Split("catalogs")),
		Profiles: cfg.Profiles,
		Truth:    make(map[int64]GroundTruth),
	}
	w.Data.Markets = make(map[string]market.MarketSummary, len(cfg.Profiles))
	// Iterate catalogs in sorted country order: map order would otherwise
	// leak into the plan-survey ordering and break run-to-run determinism.
	codes := make([]string, 0, len(w.Catalogs))
	for code := range w.Catalogs {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		cat := w.Catalogs[code]
		sum, err := market.Summarize(cat)
		if err != nil {
			return nil, fmt.Errorf("synth: market %s: %w", code, err)
		}
		w.Data.Markets[code] = sum
		w.Data.Plans = append(w.Data.Plans, cat.Plans...)
	}
	return &generator{ctx: ctx, cfg: cfg, world: w, rng: root}, nil
}

// countryCounts allocates a population across countries proportionally to
// profile weights by largest-remainder apportionment, so the counts sum to
// exactly total; the minPer floor is applied afterwards and is the only way
// the sum can exceed the target.
func countryCounts(profiles []market.Profile, total, minPer int) map[string]int {
	sum := 0.0
	for _, p := range profiles {
		if p.UserWeight > 0 {
			sum += p.UserWeight
		}
	}
	if total < 0 {
		total = 0
	}
	alloc := make([]int, len(profiles))
	if sum > 0 && total > 0 {
		frac := make([]float64, len(profiles))
		given := 0
		for i, p := range profiles {
			if p.UserWeight <= 0 {
				continue
			}
			exact := float64(total) * p.UserWeight / sum
			alloc[i] = int(math.Floor(exact))
			frac[i] = exact - float64(alloc[i])
			given += alloc[i]
		}
		// Hand the integer shortfall to the largest fractional remainders;
		// the stable sort breaks ties by profile order, keeping the
		// apportionment deterministic.
		order := make([]int, len(profiles))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return frac[order[a]] > frac[order[b]] })
		for k := 0; k < total-given; k++ {
			alloc[order[k]]++
		}
	}
	out := make(map[string]int, len(profiles))
	for i, p := range profiles {
		n := alloc[i]
		if n < minPer {
			n = minPer
		}
		if n > 0 {
			out[p.Country.Code] = n
		}
	}
	return out
}
