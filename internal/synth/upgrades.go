package synth

import (
	"fmt"
	"math"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/par"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// upgrades generates the service-switch panel: users observed on a slower
// and then a faster service (Sec. 3.2's within-subject natural experiment).
//
// Two upgrade mechanisms exist in the real world and both are modeled:
//
//   - endogenous: the household's need grew, so it re-chose a faster plan
//     (demand pulled capacity);
//   - exogenous: the ISP re-provisioned the tier at the same price (a
//     speed-bump promotion), so capacity changed with need held fixed —
//     the clean arrow the natural experiment wants to isolate.
//
// The experiments see only before/after usage, exactly like the paper.
func (g *generator) upgrades() error {
	if g.cfg.SwitchTarget == 0 {
		return nil
	}
	primary := g.cfg.Years[len(g.cfg.Years)-1]
	var candidates []*dataset.User
	for i := range g.world.Data.Users {
		u := &g.world.Data.Users[i]
		if u.Vantage == dataset.VantageDasu && u.Year == primary {
			candidates = append(candidates, u)
		}
	}
	return g.upgradesFrom(candidates)
}

// upgradesFrom runs the switch-panel generation over an explicit candidate
// list (primary-year Dasu users in slot order, with ground truth present in
// world.Truth). The in-core build passes every eligible user; the
// out-of-core build passes the bounded candidate pool it retained while
// streaming shards.
func (g *generator) upgradesFrom(candidates []*dataset.User) error {
	if g.cfg.SwitchTarget == 0 {
		return nil
	}
	order := g.rng.Split("switch-order").Perm(len(candidates))

	// Each tryUpgrade is a pure function of its candidate (the RNG splits
	// on the user ID), so candidates are evaluated concurrently in
	// permutation-ordered chunks and successes taken in order until the
	// target is met. The selected switch set is exactly the sequential
	// prefix — chunking only bounds the speculative evaluations past the
	// last accepted candidate — so output is identical for any Workers.
	type switchResult struct {
		sw dataset.Switch
		ok bool
	}
	workers := par.Workers(g.cfg.Workers)
	chunk := 4 * workers
	if chunk < 16 {
		chunk = 16
	}
	made := 0
	for lo := 0; lo < len(order) && made < g.cfg.SwitchTarget; lo += chunk {
		if err := g.ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		results := make([]switchResult, hi-lo)
		err := par.ForNCtx(g.ctx, workers, hi-lo, func(i int) error {
			sw, ok, err := g.tryUpgrade(candidates[order[lo+i]])
			results[i] = switchResult{sw: sw, ok: ok}
			return err
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			if made >= g.cfg.SwitchTarget {
				break
			}
			if r.ok {
				g.world.Data.Switches = append(g.world.Data.Switches, r.sw)
				made++
			}
		}
	}
	return nil
}

// tryUpgrade attempts to move one user to a faster service and measure the
// after state.
func (g *generator) tryUpgrade(u *dataset.User) (dataset.Switch, bool, error) {
	truth, ok := g.world.Truth[u.ID]
	if !ok {
		return dataset.Switch{}, false, fmt.Errorf("synth: no ground truth for user %d", u.ID)
	}
	prof, ok := findProfile(g.cfg.Profiles, u.Country)
	if !ok {
		return dataset.Switch{}, false, fmt.Errorf("synth: no profile for %s", u.Country)
	}
	rng := g.rng.SplitN("switch", int(u.ID))
	cat := g.world.Catalogs[u.Country]

	// Upgrade propensity follows utilization pressure: households running
	// their line hot at peak are the ones that shop for a faster tier.
	// This is what skews the paper's switcher population toward slow,
	// saturated services.
	if !rng.Split("pressure").Bool(0.02 + 0.98*math.Pow(u.PeakUtilization(), 2.5)) {
		return dataset.Switch{}, false, nil
	}

	oldPlan := market.Plan{
		Country: u.Country, ISP: u.ISP, Down: u.PlanDown, Up: u.PlanUp,
		PriceUSD: u.PlanPrice, Tech: u.PlanTech,
	}

	newNeed := truth.NeedMbps
	var newPlan market.Plan
	if rng.Bool(0.4) {
		// Exogenous speed bump: the provider moves the subscriber to the
		// next tier up at (about) the old price.
		next, ok := cat.NearestTier(u.PlanDown * 2)
		if !ok || next.Down <= u.PlanDown {
			return dataset.Switch{}, false, nil
		}
		newPlan = next
	} else {
		// Endogenous: need grew; the household re-chooses.
		growth := rng.LogNormalMedian(1.8, 0.3)
		if growth < 1.25 {
			growth = 1.25
		}
		if growth > 5 {
			growth = 5
		}
		newNeed = truth.NeedMbps * growth
		sub := market.Subscriber{
			NeedMbps: newNeed,
			WTP:      unit.USD(wtpPerMbps * headroom * newNeed * incomeFactor(truth.BudgetUSD)),
			Budget:   unit.USD(truth.BudgetUSD * (1 + 0.3*(growth-1))),
			Headroom: headroom,
		}
		chosen, ok := market.Choose(cat, sub, market.ChoiceConfig{
			NoiseUSD:      2 + 0.01*float64(sub.Budget),
			Current:       &oldPlan,
			SwitchingCost: 3,
		}, rng.Split("rechoice"))
		if !ok {
			return dataset.Switch{}, false, nil
		}
		newPlan = chosen
	}
	if newPlan.Down <= u.PlanDown*unit.Bitrate(1.2) {
		return dataset.Switch{}, false, nil // not a meaningful upgrade
	}

	// The line quality is a property of the location: reproduce the
	// original draw.
	userRng := g.rng.SplitN("user", int(u.ID))
	q, _ := drawQuality(prof, newPlan, userRng.Split("quality"))

	meas, err := g.measure(newPlan, q, rng.Split("measure-after"))
	if err != nil {
		return dataset.Switch{}, false, err
	}
	tq := q
	if g.cfg.DisableQoE {
		tq = traffic.Quality{RTT: 0.02, Loss: 0}
	}
	// The after-epoch is observed months later: the household's overall
	// activity level has drifted, independent of the line change. This
	// behavioral drift is why the paper's within-subject hypothesis holds
	// in ~two-thirds of pairs rather than all of them.
	afterActivity := sessionScale(newNeed) * userRng.Split("budget").LogNormalMedian(1, 0.4) * rng.Split("drift").LogNormalMedian(1, 0.45)
	tgen := &traffic.Generator{
		Capacity: meas.down,
		Quality:  tq,
		Profile: traffic.Profile{
			NeedMbps:         newNeed,
			SessionsPerDay:   traffic.DefaultSessionsPerDay * afterActivity,
			BTUser:           u.UsesBT,
			BTSessionsPerDay: 2.5,
			Archetype:        u.Archetype,
			MonthlyCap:       newPlan.Cap,
		},
	}
	series, err := tgen.Generate(g.cfg.Days, rng.Split("traffic-after"))
	if err != nil {
		return dataset.Switch{}, false, err
	}
	after, err := series.Summarize(traffic.DasuMask)
	if err != nil {
		return dataset.Switch{}, false, err
	}
	if meas.down <= u.Capacity {
		return dataset.Switch{}, false, nil // quality-limited line: no effective upgrade
	}

	sw := dataset.Switch{
		UserID:   u.ID,
		Country:  u.Country,
		FromNet:  u.NetworkKey,
		ToNet:    fmt.Sprintf("%s/net%d/city%d", newPlan.ISP, rng.IntN(4), rng.IntN(6)),
		FromDown: u.Capacity,
		ToDown:   meas.down,
		Before:   u.Usage,
		After: dataset.UsageSummary{
			Mean:     after.Mean,
			Peak:     after.Peak,
			MeanNoBT: after.MeanNoBT,
			PeakNoBT: after.PeakNoBT,
		},
	}
	return sw, true, nil
}

// incomeFactor recovers the mild income scaling of WTP from the stored
// budget (an approximation; exactness does not matter for re-choice).
func incomeFactor(budgetUSD float64) float64 {
	monthly := budgetUSD / 0.055 // invert the median budget share
	f := monthly * 12 / incomeRef
	if f <= 0 {
		return 1
	}
	return math.Pow(f, 0.3) // the same exponent used at first choice
}
