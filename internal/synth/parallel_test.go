package synth

import (
	"reflect"
	"testing"

	"github.com/nwca/broadband/internal/market"
)

// TestParallelBuildMatchesSequential is the determinism contract of the
// worker pool: for the same seed, a parallel build must produce a dataset
// byte-identical to the sequential (Workers=1) path — users, switches,
// plans, ground truth and the shortfall accounting all included.
func TestParallelBuildMatchesSequential(t *testing.T) {
	base := Config{
		Seed: 9, Users: 400, FCCUsers: 80, Days: 1,
		SwitchTarget: 40, MinPerCountry: 5,
	}
	seqCfg := base
	seqCfg.Workers = 1
	seq, err := Build(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4, 13} {
		parCfg := base
		parCfg.Workers = workers
		got, err := Build(parCfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Data.Users) != len(seq.Data.Users) {
			t.Fatalf("workers=%d: %d users vs sequential %d", workers, len(got.Data.Users), len(seq.Data.Users))
		}
		for i := range seq.Data.Users {
			if got.Data.Users[i] != seq.Data.Users[i] {
				t.Fatalf("workers=%d: user %d differs:\n%+v\n%+v", workers, i, got.Data.Users[i], seq.Data.Users[i])
			}
		}
		if !reflect.DeepEqual(got.Data.Switches, seq.Data.Switches) {
			t.Errorf("workers=%d: switch panel differs", workers)
		}
		if !reflect.DeepEqual(got.Data.Plans, seq.Data.Plans) {
			t.Errorf("workers=%d: plan survey differs", workers)
		}
		if !reflect.DeepEqual(got.Truth, seq.Truth) {
			t.Errorf("workers=%d: ground truth differs", workers)
		}
		if !reflect.DeepEqual(got.Skipped, seq.Skipped) {
			t.Errorf("workers=%d: skipped-household accounting differs: %v vs %v", workers, got.Skipped, seq.Skipped)
		}
	}
}

// TestSkippedAccounting checks that the generated population plus the
// recorded shortfall always equals the configured slot count.
func TestSkippedAccounting(t *testing.T) {
	w, err := Build(Config{Seed: 21, Users: 300, FCCUsers: 40, Days: 1, SwitchTarget: 5})
	if err != nil {
		t.Fatal(err)
	}
	gen := &generator{cfg: Config{Seed: 21, Users: 300, FCCUsers: 40, Days: 1, SwitchTarget: 5}.withDefaults(), world: w}
	lay, err := gen.layout()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Data.Users) + w.SkippedHouseholds(); got != lay.total {
		t.Errorf("users(%d) + skipped(%d) = %d, want the %d configured slots",
			len(w.Data.Users), w.SkippedHouseholds(), got, lay.total)
	}
	for cc, n := range w.Skipped {
		if n <= 0 {
			t.Errorf("country %s recorded a non-positive skip count %d", cc, n)
		}
	}
}

func profilesForApportionment(weights []float64) []market.Profile {
	profs := make([]market.Profile, len(weights))
	for i, w := range weights {
		profs[i].Country.Code = string(rune('A'+i/26)) + string(rune('A'+i%26))
		profs[i].UserWeight = w
	}
	return profs
}

// TestCountryCountsExact pins the largest-remainder apportionment: without
// a floor the per-country counts must sum to exactly the requested total,
// for totals that do not divide evenly across the weights.
func TestCountryCountsExact(t *testing.T) {
	cases := []struct {
		weights []float64
		totals  []int
	}{
		{[]float64{1, 1, 1}, []int{1, 2, 7, 100, 1001}},
		{[]float64{0.5, 0.3, 0.2}, []int{1, 9, 10, 97}},
		{[]float64{3, 1, 1, 1, 1}, []int{2, 13, 500}},
		{[]float64{0.01, 0.99}, []int{3, 50}},
		{[]float64{1, 0, 2}, []int{5, 11}},
	}
	for _, tc := range cases {
		profs := profilesForApportionment(tc.weights)
		for _, total := range tc.totals {
			counts := countryCounts(profs, total, 0)
			sum := 0
			for _, n := range counts {
				sum += n
			}
			if sum != total {
				t.Errorf("weights %v total %d: counts sum to %d (%v)", tc.weights, total, sum, counts)
			}
		}
	}
}

// TestCountryCountsMinPerFloor checks the floor semantics: every country is
// raised to minPer, and that is the only allowed source of overshoot.
func TestCountryCountsMinPerFloor(t *testing.T) {
	profs := profilesForApportionment([]float64{100, 1, 1})
	counts := countryCounts(profs, 50, 5)
	for _, p := range profs {
		if counts[p.Country.Code] < 5 {
			t.Errorf("country %s below the minPer floor: %d", p.Country.Code, counts[p.Country.Code])
		}
	}
	sum := 0
	floored := 0
	for _, p := range profs {
		n := counts[p.Country.Code]
		sum += n
		if n == 5 {
			floored += n
		}
	}
	// The unfloored countries alone must never overshoot the target.
	if sum-floored > 50 {
		t.Errorf("unfloored countries allocate %d of a %d target", sum-floored, 50)
	}
}

// TestCountryCountsProportional checks the apportionment is within one user
// of the exact proportional share for every country.
func TestCountryCountsProportional(t *testing.T) {
	weights := []float64{5, 3, 2, 1, 1, 0.5}
	profs := profilesForApportionment(weights)
	total := 997
	counts := countryCounts(profs, total, 0)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	for i, p := range profs {
		exact := float64(total) * weights[i] / sum
		got := float64(counts[p.Country.Code])
		if got < exact-1 || got > exact+1 {
			t.Errorf("country %s: got %v, exact share %.2f", p.Country.Code, got, exact)
		}
	}
}
