package synth

import (
	"math"

	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/netsim"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// measurement is what the NDT-style test of one line reports.
type measurement struct {
	down, up unit.Bitrate
	rtt      float64
	webRTT   float64
	loss     unit.LossRate
}

// measure produces the user's measured service characteristics, via either
// the calibrated fast model or the packet-level simulator.
func (g *generator) measure(plan market.Plan, q traffic.Quality, rng *randx.Source) (measurement, error) {
	if g.cfg.Measurement == MeasureNDT {
		return measureNDT(plan, q, rng)
	}
	return measureFast(plan, q, rng), nil
}

// measureFast is the calibrated single-flow NDT model: throughput is the
// provisioned rate times a protocol-efficiency factor, bounded by the
// Mathis TCP-feasible rate for the line quality. Tests cross-validate it
// against measureNDT.
func measureFast(plan market.Plan, q traffic.Quality, rng *randx.Source) measurement {
	eff := 0.88 + 0.1*rng.Float64() // header overhead, ramp-up, sawtooth
	down := unit.Bitrate(float64(plan.Down) * eff)
	up := unit.Bitrate(float64(plan.Up) * (eff - 0.03))
	// The paper's "capacity" is the MAXIMUM download rate over every NDT
	// run of a 23-month panel, so the binding TCP constraint is the one of
	// the best run — roughly an eighth of the stationary loss rate (lucky
	// runs on a bursty channel see long clean stretches). Lines whose
	// best-run loss is still substantial (≥0.05%) stay Mathis-capped —
	// this is what pins measured capacity below the plan rate on
	// satellite, WiMAX and chronically lossy paths, without distorting the
	// capacity of merely-mediocre lines (which would smuggle a need-
	// selection bias into every loss-banded comparison).
	if bestLoss := q.Loss / 8; bestLoss >= 0.0005 && q.RTT > 0 {
		m := netsim.MathisThroughput(1460*unit.Byte, q.RTT, bestLoss)
		jitter := unit.Bitrate(0.85 + 0.3*rng.Float64())
		if lim := m * jitter; lim < down {
			down = lim
		}
		if lim := m * jitter; lim < up {
			up = lim
		}
	}
	if down < unit.KbpsOf(16) {
		down = unit.KbpsOf(16)
	}
	if up < unit.KbpsOf(8) {
		up = unit.KbpsOf(8)
	}
	rtt := q.RTT * (1 + 0.05*rng.Float64()) // probe jitter
	return measurement{
		down:   down,
		up:     up,
		rtt:    rtt,
		webRTT: webRTTFor(rtt, rng),
		loss:   measuredLoss(q.Loss, rng),
	}
}

// measureNDT runs the packet-level TCP simulation for the line. The paper's
// capacity metric is the maximum over a panel's many tests, so three
// independent runs are simulated and the best throughput kept; loss is
// averaged across runs (the panel-average semantics of NDT loss).
func measureNDT(plan market.Plan, q traffic.Quality, rng *randx.Source) (measurement, error) {
	oneWay := q.RTT / 2
	line := netsim.AccessLine{
		Down: netsim.LinkConfig{
			Rate:  plan.Down,
			Delay: oneWay,
			Loss:  lossModelFor(q.Loss, plan.Tech),
			Name:  "down",
		},
		Up: netsim.LinkConfig{
			Rate:  plan.Up,
			Delay: oneWay,
			Loss:  lossModelFor(q.Loss, plan.Tech),
			Name:  "up",
		},
	}
	var best measurement
	var lossSum float64
	var lossRuns int
	const runs = 3
	for i := 0; i < runs; i++ {
		cfg := netsim.NDTConfig{Duration: 8, Probes: 5, SkipUp: i > 0}
		res, err := netsim.RunNDT(line, cfg, rng.SplitN("ndt", i))
		if err != nil {
			return measurement{}, err
		}
		if res.DownloadRate > best.down {
			best.down = res.DownloadRate
		}
		if res.UploadRate > best.up {
			best.up = res.UploadRate
		}
		if i == 0 {
			best.rtt = res.RTT
		}
		lossSum += float64(res.ChannelLoss)
		lossRuns++
	}
	if best.down < unit.KbpsOf(16) {
		best.down = unit.KbpsOf(16)
	}
	if best.up < unit.KbpsOf(8) {
		best.up = unit.KbpsOf(8)
	}
	loss := unit.LossRate(lossSum / float64(lossRuns))
	if loss <= 0 {
		// Short tests on low-loss lines may observe zero drops; fall back
		// to a jittered line value like a longer panel would converge to.
		loss = measuredLoss(q.Loss, rng)
	}
	best.loss = loss
	best.webRTT = webRTTFor(best.rtt, rng)
	return best, nil
}

// lossModelFor maps a stationary loss rate to a channel model: wireless and
// satellite lines lose in bursts, wireline i.i.d.
func lossModelFor(l unit.LossRate, tech market.Technology) netsim.LossModel {
	if tech == market.Satellite || tech == market.FixedWireless {
		// Split the budget: a third i.i.d., the rest in bursts at 30%
		// in-burst loss. Choose PGoodToBad for the target stationary rate:
		// fracBad·0.3 = (2/3)·l with PBadToGood = 0.2.
		iid := float64(l) / 3
		burstLoss := 0.3
		target := 2 * float64(l) / 3
		fracBad := target / burstLoss
		if fracBad > 0.9 {
			fracBad = 0.9
		}
		pBadToGood := 0.2
		pGoodToBad := fracBad * pBadToGood / (1 - fracBad)
		return netsim.LossModel{
			Rate:       unit.LossRate(iid),
			Burst:      true,
			PGoodToBad: pGoodToBad,
			PBadToGood: pBadToGood,
			BadLoss:    unit.LossRate(burstLoss),
		}
	}
	return netsim.LossModel{Rate: l}
}

// webRTTFor derives the popular-website RTT from the measurement-server
// RTT: content sits a little farther than the nearest NDT server, with
// per-site spread.
func webRTTFor(ndtRTT float64, rng *randx.Source) float64 {
	extra := 0.004 + 0.012*rng.Float64()
	return ndtRTT*(1+0.08*rng.Float64()) + extra
}

// measuredLoss jitters the line's stationary loss the way a finite NDT
// sample would.
func measuredLoss(l unit.LossRate, rng *randx.Source) unit.LossRate {
	v := float64(l) * math.Exp(rng.Normal(0, 0.25))
	if v < 0.000005 {
		v = 0.000005
	}
	if v > 0.3 {
		v = 0.3
	}
	return unit.LossRate(v)
}
