package synth

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
)

// The out-of-core determinism contract: for a fixed config, every shard
// file's bytes depend only on (shard index, shard count) — never on the
// worker count — and the concatenated shard bodies are exactly the
// monolithic users.csv of the in-core build. With a pool that covers all
// candidates, the switch panel is byte-equal to the in-core one too.

// splitHeader cuts a users CSV into its header line and body bytes.
func splitHeader(t *testing.T, raw []byte) (header, body []byte) {
	t.Helper()
	i := bytes.IndexByte(raw, '\n')
	if i < 0 {
		t.Fatalf("shard file has no header line")
	}
	return raw[:i+1], raw[i+1:]
}

func TestBuildShardedMatchesMonolithic(t *testing.T) {
	cfg := Config{Seed: 11, Users: 60, FCCUsers: 15, Days: 1, SwitchTarget: 10, Workers: 1}
	mono, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var monoCSV bytes.Buffer
	if err := dataset.WriteUsers(&monoCSV, mono.Data.Users); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3, 8} {
		var first [][]byte // shard bytes from the first worker count
		for _, workers := range []int{1, 4} {
			cfg.Workers = workers
			dir := t.TempDir()
			rep, err := BuildSharded(context.Background(), cfg, ShardSpec{Dir: dir, Shards: shards})
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if len(rep.ShardFiles) != shards {
				t.Fatalf("shards=%d: report lists %d files", shards, len(rep.ShardFiles))
			}
			if rep.Users != len(mono.Data.Users) {
				t.Errorf("shards=%d workers=%d: wrote %d users, monolithic has %d", shards, workers, rep.Users, len(mono.Data.Users))
			}
			if !reflect.DeepEqual(rep.Skipped, mono.Skipped) {
				t.Errorf("shards=%d workers=%d: skip accounting %v, monolithic %v", shards, workers, rep.Skipped, mono.Skipped)
			}

			var concat bytes.Buffer
			raws := make([][]byte, shards)
			for i, path := range rep.ShardFiles {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raws[i] = raw
				header, body := splitHeader(t, raw)
				if i == 0 {
					concat.Write(header)
				}
				concat.Write(body)
			}
			if workers == 1 {
				first = raws
			} else {
				for i := range raws {
					if !bytes.Equal(raws[i], first[i]) {
						t.Errorf("shards=%d: shard %d bytes differ between worker counts", shards, i)
					}
				}
			}
			if !bytes.Equal(concat.Bytes(), monoCSV.Bytes()) {
				t.Errorf("shards=%d workers=%d: concatenated shard bodies != monolithic users.csv", shards, workers)
			}

			// poolK = 32×10 ≥ the 60 primary-year Dasu slots, so the pool is
			// the full candidate set and the panel must match the in-core one.
			loaded, err := dataset.LoadDir(dir)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: LoadDir: %v", shards, workers, err)
			}
			if !reflect.DeepEqual(loaded.Switches, mono.Data.Switches) {
				t.Errorf("shards=%d workers=%d: switch panel differs from monolithic", shards, workers)
			}
			if !reflect.DeepEqual(loaded.Plans, mono.Data.Plans) {
				t.Errorf("shards=%d workers=%d: plan survey differs from monolithic", shards, workers)
			}
		}
	}
}

// TestBuildShardedEmptyTail pins the spec promise that shard counts past
// the population still yield a complete, loadable set: tail shards exist as
// header-only files and stream transparently.
func TestBuildShardedEmptyTail(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 3, Users: 2, FCCUsers: 1, Days: 1, SwitchTarget: -1, Years: []int{2013}}
	dir := t.TempDir()
	rep, err := BuildSharded(context.Background(), cfg, ShardSpec{Dir: dir, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ShardFiles) != 8 {
		t.Fatalf("report lists %d shard files, want 8", len(rep.ShardFiles))
	}
	// 2 Dasu slots + 1 gateway slot: every household is accounted for.
	if got := rep.Users + rep.SkippedHouseholds(); got != 3 {
		t.Errorf("users(%d) + skipped(%d) = %d, want the 3 configured slots", rep.Users, rep.SkippedHouseholds(), got)
	}
	for i, path := range rep.ShardFiles {
		if filepath.Base(path) != dataset.UserShardName(i, 8, false) {
			t.Errorf("shard %d written as %s", i, filepath.Base(path))
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("shard %d missing: %v", i, err)
		}
	}
	us, err := dataset.StreamUsersDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	n := 0
	var u dataset.User
	for us.Read(&u) == nil {
		n++
	}
	if n != rep.Users {
		t.Errorf("streamed %d users through the tail, report says %d", n, rep.Users)
	}
	if rep.Switches != 0 {
		t.Errorf("SwitchTarget<0 produced %d switches", rep.Switches)
	}
}

// TestBuildShardedGzip checks the compressed transport end to end: shard
// set, switches and plans all written as .csv.gz and loadable via LoadDir.
func TestBuildShardedGzip(t *testing.T) {
	t.Parallel()
	cfg := Config{Seed: 7, Users: 40, FCCUsers: 10, Days: 1, SwitchTarget: 5}
	dir := t.TempDir()
	rep, err := BuildSharded(context.Background(), cfg, ShardSpec{Dir: dir, Shards: 3, Gzip: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, path := range rep.ShardFiles {
		if filepath.Base(path) != dataset.UserShardName(i, 3, true) {
			t.Errorf("shard %d written as %s, want gz transport", i, filepath.Base(path))
		}
	}
	d, err := dataset.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Users) != rep.Users {
		t.Errorf("loaded %d users, report says %d", len(d.Users), rep.Users)
	}
	if rep.PoolUsers > switchPoolFactor*5 {
		t.Errorf("pool retained %d users, budget is %d", rep.PoolUsers, switchPoolFactor*5)
	}
}
