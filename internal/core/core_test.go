package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// mkUser builds a minimal user for matching tests.
func mkUser(id int64, rtt, lossPct, price, capMbps, peakMbps float64) *dataset.User {
	return &dataset.User{
		ID:          id,
		Country:     "US",
		RTT:         rtt,
		Loss:        unit.LossFromPercent(lossPct),
		AccessPrice: unit.USD(price),
		Capacity:    unit.MbpsOf(capMbps),
		Usage: dataset.UsageSummary{
			Peak:     unit.MbpsOf(peakMbps),
			PeakNoBT: unit.MbpsOf(peakMbps),
			Mean:     unit.MbpsOf(peakMbps / 5),
			MeanNoBT: unit.MbpsOf(peakMbps / 5),
		},
	}
}

func qualityMatcher() Matcher {
	return Matcher{Confounders: []Confounder{ConfounderRTT(), ConfounderLoss(), ConfounderAccessPrice()}}
}

func TestWithinCaliper(t *testing.T) {
	// The paper's own example: latencies of 50 and 62 ms and prices of $25
	// and $30 are "sufficiently similar".
	if !withinCaliper(0.050, 0.062, 0.25, 0) {
		t.Error("50 vs 62 ms must be within the 25% caliper")
	}
	if !withinCaliper(25, 30, 0.25, 0) {
		t.Error("$25 vs $30 must be within the 25% caliper")
	}
	if withinCaliper(25, 34, 0.25, 0) {
		t.Error("$25 vs $34 must exceed the 25% caliper")
	}
	// Floor admits near-zero pairs that a pure ratio would reject.
	if !withinCaliper(0, 0.0004, 0.25, 0.0005) {
		t.Error("loss floor should admit near-zero pairs")
	}
	if withinCaliper(0, 0.01, 0.25, 0.0005) {
		t.Error("floor must not admit distant pairs")
	}
}

func TestMatchRespectsCaliper(t *testing.T) {
	m := qualityMatcher()
	treated := []*dataset.User{mkUser(1, 0.050, 0.1, 25, 10, 3)}
	controls := []*dataset.User{
		mkUser(2, 0.200, 0.1, 25, 5, 1),  // RTT too far
		mkUser(3, 0.055, 0.9, 25, 5, 1),  // loss too far
		mkUser(4, 0.055, 0.11, 60, 5, 1), // price too far
	}
	if pairs := m.Match(treated, controls, nil); len(pairs) != 0 {
		t.Fatalf("matched %d pairs across caliper violations", len(pairs))
	}
	controls = append(controls, mkUser(5, 0.058, 0.12, 28, 5, 1))
	pairs := m.Match(treated, controls, nil)
	if len(pairs) != 1 || pairs[0].Control.ID != 5 {
		t.Fatalf("expected the single eligible control, got %+v", pairs)
	}
}

func TestMatchPicksNearest(t *testing.T) {
	m := Matcher{Confounders: []Confounder{ConfounderRTT()}}
	treated := []*dataset.User{mkUser(1, 0.100, 0, 0, 0, 0)}
	controls := []*dataset.User{
		mkUser(2, 0.120, 0, 0, 0, 0),
		mkUser(3, 0.101, 0, 0, 0, 0),
		mkUser(4, 0.110, 0, 0, 0, 0),
	}
	pairs := m.Match(treated, controls, nil)
	if len(pairs) != 1 || pairs[0].Control.ID != 3 {
		t.Fatalf("nearest neighbor not chosen: %+v", pairs)
	}
}

func TestMatchWithoutReplacement(t *testing.T) {
	m := Matcher{Confounders: []Confounder{ConfounderRTT()}}
	treated := []*dataset.User{
		mkUser(1, 0.100, 0, 0, 0, 0),
		mkUser(2, 0.100, 0, 0, 0, 0),
		mkUser(3, 0.100, 0, 0, 0, 0),
	}
	controls := []*dataset.User{
		mkUser(10, 0.100, 0, 0, 0, 0),
		mkUser(11, 0.101, 0, 0, 0, 0),
	}
	pairs := m.Match(treated, controls, randx.New(1))
	if len(pairs) != 2 {
		t.Fatalf("expected 2 pairs (control exhaustion), got %d", len(pairs))
	}
	if pairs[0].Control.ID == pairs[1].Control.ID {
		t.Fatal("control reused")
	}
}

func TestMatchCaliperProperty(t *testing.T) {
	// Every produced pair satisfies every confounder caliper, whatever the
	// populations look like.
	m := qualityMatcher()
	f := func(seed int64) bool {
		rng := randx.New(uint64(seed))
		var treated, controls []*dataset.User
		for i := 0; i < 30; i++ {
			treated = append(treated, mkUser(int64(i), 0.02+rng.Float64()*0.5, rng.Float64()*2, 10+rng.Float64()*100, 1, 1))
			controls = append(controls, mkUser(int64(100+i), 0.02+rng.Float64()*0.5, rng.Float64()*2, 10+rng.Float64()*100, 1, 1))
		}
		pairs := m.Match(treated, controls, rng.Split("order"))
		for _, p := range pairs {
			for _, c := range m.Confounders {
				if !withinCaliper(c.Value(p.Treated), c.Value(p.Control), DefaultCaliper, c.Floor) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCheckBalance(t *testing.T) {
	m := Matcher{Confounders: []Confounder{ConfounderRTT()}}
	pairs := []Pair{
		{Treated: mkUser(1, 0.10, 0, 0, 0, 0), Control: mkUser(2, 0.12, 0, 0, 0, 0)},
		{Treated: mkUser(3, 0.20, 0, 0, 0, 0), Control: mkUser(4, 0.18, 0, 0, 0, 0)},
	}
	b := m.CheckBalance(pairs)
	if len(b) != 1 {
		t.Fatalf("balance rows = %d", len(b))
	}
	if math.Abs(b[0].MeanTreated-0.15) > 1e-12 || math.Abs(b[0].MeanControl-0.15) > 1e-12 {
		t.Errorf("balance = %+v", b[0])
	}
	if !strings.Contains(b[0].String(), "latency") {
		t.Errorf("balance string = %q", b[0].String())
	}
}

func TestExperimentDetectsRealEffect(t *testing.T) {
	// Construct a population where treatment (higher capacity) genuinely
	// raises the outcome; the experiment must find it.
	rng := randx.New(3)
	var treated, control []*dataset.User
	for i := 0; i < 120; i++ {
		rtt := 0.03 + 0.1*rng.Float64()
		loss := 0.05 + 0.2*rng.Float64()
		price := 20 + 30*rng.Float64()
		// Treated users: capacity 10, peak ≈ 4 with noise; control users:
		// capacity 5, peak ≈ 2.2 with noise.
		treated = append(treated, mkUser(int64(i), rtt, loss, price, 10, 4*(0.5+rng.Float64())))
		control = append(control, mkUser(int64(1000+i), rtt*(0.95+0.1*rng.Float64()), loss, price, 5, 2.2*(0.5+rng.Float64())))
	}
	exp := Experiment{
		Name:      "capacity",
		Treatment: treated,
		Control:   control,
		Matcher:   qualityMatcher(),
		Outcome:   dataset.PeakUsage,
	}
	res, err := exp.Run(randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs < 60 {
		t.Fatalf("only %d pairs matched", res.Pairs)
	}
	if !res.Sig.Significant() {
		t.Errorf("real effect not detected: %v", res)
	}
	if res.Fraction() < 0.6 {
		t.Errorf("fraction = %v, want clearly above chance", res.Fraction())
	}
}

func TestExperimentPlaceboIsNull(t *testing.T) {
	// Identical outcome distributions: the hypothesis must hold ≈50% of
	// the time and fail significance. This is the engine's no-false-effect
	// guarantee.
	rng := randx.New(5)
	var treated, control []*dataset.User
	for i := 0; i < 400; i++ {
		rtt := 0.03 + 0.1*rng.Float64()
		treated = append(treated, mkUser(int64(i), rtt, 0.1, 25, 10, 3*(0.5+rng.Float64())))
		control = append(control, mkUser(int64(1000+i), rtt, 0.1, 25, 10, 3*(0.5+rng.Float64())))
	}
	exp := Experiment{
		Name:      "placebo",
		Treatment: treated,
		Control:   control,
		Matcher:   Matcher{Confounders: []Confounder{ConfounderRTT()}},
		Outcome:   dataset.PeakUsage,
	}
	res, err := exp.Run(randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fraction()-0.5) > 0.07 {
		t.Errorf("placebo fraction = %v, want ≈0.5", res.Fraction())
	}
	if res.Sig.Significant() {
		t.Errorf("placebo came out significant: %v", res)
	}
}

func TestExperimentErrors(t *testing.T) {
	exp := Experiment{Name: "x", Outcome: nil}
	if _, err := exp.Run(nil); err == nil {
		t.Error("missing outcome should error")
	}
	exp = Experiment{
		Name:      "thin",
		Treatment: []*dataset.User{mkUser(1, 0.05, 0.1, 25, 10, 1)},
		Control:   []*dataset.User{mkUser(2, 0.05, 0.1, 25, 5, 1)},
		Matcher:   qualityMatcher(),
		Outcome:   dataset.PeakUsage,
	}
	_, err := exp.Run(nil)
	if !errors.Is(err, ErrTooFewPairs) {
		t.Errorf("want ErrTooFewPairs, got %v", err)
	}
}

func TestRunPaired(t *testing.T) {
	mkSwitch := func(before, after float64) dataset.Switch {
		return dataset.Switch{
			FromDown: unit.MbpsOf(1), ToDown: unit.MbpsOf(2),
			Before: dataset.UsageSummary{Mean: unit.MbpsOf(before), MeanNoBT: unit.MbpsOf(before)},
			After:  dataset.UsageSummary{Mean: unit.MbpsOf(after), MeanNoBT: unit.MbpsOf(after)},
		}
	}
	var switches []dataset.Switch
	// 70 increases, 30 decreases: fraction 0.70, strongly significant.
	for i := 0; i < 70; i++ {
		switches = append(switches, mkSwitch(1, 2))
	}
	for i := 0; i < 30; i++ {
		switches = append(switches, mkSwitch(2, 1))
	}
	res, err := RunPaired("upgrades", switches, PairedMeanNoBT)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds != 70 || res.Pairs != 100 {
		t.Fatalf("holds/pairs = %d/%d", res.Holds, res.Pairs)
	}
	if !res.Sig.Significant() {
		t.Errorf("70/100 should be significant: %v", res)
	}
	if _, err := RunPaired("empty", nil, PairedMean); err == nil {
		t.Error("empty switches should error")
	}
}

func TestPairedMetrics(t *testing.T) {
	s := dataset.UsageSummary{
		Mean: 1, Peak: 2, MeanNoBT: 3, PeakNoBT: 4,
	}
	if PairedMean(s) != 1 || PairedPeak(s) != 2 || PairedMeanNoBT(s) != 3 || PairedPeakNoBT(s) != 4 {
		t.Error("paired metric extraction wrong")
	}
}

func TestResultString(t *testing.T) {
	var switches []dataset.Switch
	for i := 0; i < 100; i++ {
		after := 2.0
		if i < 30 {
			after = 0.5
		}
		switches = append(switches, dataset.Switch{
			Before: dataset.UsageSummary{Mean: unit.MbpsOf(1)},
			After:  dataset.UsageSummary{Mean: unit.MbpsOf(after)},
		})
	}
	res, err := RunPaired("demo", switches, PairedMean)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "70.0%") || !strings.Contains(s, "demo") {
		t.Errorf("String() = %q", s)
	}
	// Insignificant results carry the paper's asterisk.
	res2, _ := RunPaired("weak", switches[:4], PairedMean)
	if !strings.Contains(res2.String(), "*") && res2.Sig.Significant() == false {
		t.Errorf("weak result should be starred: %q", res2.String())
	}
}

func TestMatcherShuffleDoesNotChangePairCount(t *testing.T) {
	rng := randx.New(8)
	var treated, controls []*dataset.User
	for i := 0; i < 50; i++ {
		treated = append(treated, mkUser(int64(i), 0.02+rng.Float64()*0.2, 0.1, 25, 10, 1))
		controls = append(controls, mkUser(int64(100+i), 0.02+rng.Float64()*0.2, 0.1, 25, 5, 1))
	}
	m := Matcher{Confounders: []Confounder{ConfounderRTT()}}
	a := m.Match(treated, controls, randx.New(1))
	b := m.Match(treated, controls, randx.New(99))
	// Greedy order can change who pairs with whom, but the overall yield
	// should be stable within a small margin.
	if math.Abs(float64(len(a)-len(b))) > 5 {
		t.Errorf("pair yield unstable under shuffle: %d vs %d", len(a), len(b))
	}
}
