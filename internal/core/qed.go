package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Quasi-experimental design (QED): the alternative the paper weighs against
// natural experiments (Krishnan & Sitaraman's stream-quality study). Where
// nearest-neighbor matching finds, for each treated unit, its closest
// control under a caliper, QED stratifies both populations into discrete
// confounder cells and pairs treated/control units within identical cells.
// Results should broadly agree; QED trades some pair yield (cells must
// match exactly) for exact in-cell comparability and O(n) matching.

// QEDResult extends the standard experiment result with stratification
// diagnostics.
type QEDResult struct {
	Result
	// Cells is the number of populated strata; PairedCells how many
	// produced at least one pair.
	Cells       int
	PairedCells int
}

// String renders the result with its stratification summary.
func (r QEDResult) String() string {
	return fmt.Sprintf("%s [%d/%d cells]", r.Result.String(), r.PairedCells, r.Cells)
}

// QED is a stratified quasi-experiment specification.
type QED struct {
	Name      string
	Treatment []*dataset.User
	Control   []*dataset.User
	// Confounders are discretized into multiplicative bins of width
	// BinRatio (default 1.5; a pair in the same bin differs by at most
	// that factor — comparable to the 25% caliper at ratio 1.25²).
	Confounders []Confounder
	BinRatio    float64
	Outcome     dataset.Metric
	MinPairs    int
}

// cellKey discretizes one user's confounder vector.
func (q QED) cellKey(u *dataset.User, binRatio float64) string {
	var b strings.Builder
	for i, c := range q.Confounders {
		if i > 0 {
			b.WriteByte('|')
		}
		v := c.Value(u)
		switch {
		case v <= c.Floor:
			b.WriteString("lo") // everything under the floor is one bin
		default:
			idx := int(math.Floor(math.Log(v) / math.Log(binRatio)))
			fmt.Fprintf(&b, "%d", idx)
		}
	}
	return b.String()
}

// Run stratifies, pairs within cells, and evaluates the hypothesis that
// treated units show higher outcomes.
func (q QED) Run(rng *randx.Source) (QEDResult, error) {
	if q.Outcome == nil {
		return QEDResult{}, fmt.Errorf("core: QED %q has no outcome metric", q.Name)
	}
	binRatio := q.BinRatio
	if binRatio <= 1 {
		binRatio = 1.5
	}
	minPairs := q.MinPairs
	if minPairs <= 0 {
		minPairs = 10
	}

	type cell struct {
		treated []*dataset.User
		control []*dataset.User
	}
	cells := map[string]*cell{}
	for _, u := range q.Treatment {
		k := q.cellKey(u, binRatio)
		if cells[k] == nil {
			cells[k] = &cell{}
		}
		cells[k].treated = append(cells[k].treated, u)
	}
	for _, u := range q.Control {
		k := q.cellKey(u, binRatio)
		if cells[k] == nil {
			cells[k] = &cell{}
		}
		cells[k].control = append(cells[k].control, u)
	}

	// Deterministic cell order, then random pairing within each cell.
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	holds, pairs, pairedCells := 0, 0, 0
	for _, k := range keys {
		c := cells[k]
		n := len(c.treated)
		if len(c.control) < n {
			n = len(c.control)
		}
		if n == 0 {
			continue
		}
		pairedCells++
		tOrder := permute(len(c.treated), rng)
		cOrder := permute(len(c.control), rng)
		for i := 0; i < n; i++ {
			pairs++
			if q.Outcome(c.treated[tOrder[i]]) > q.Outcome(c.control[cOrder[i]]) {
				holds++
			}
		}
	}
	if pairs < minPairs {
		return QEDResult{}, fmt.Errorf("%w: QED %q paired %d, need %d", ErrTooFewPairs, q.Name, pairs, minPairs)
	}
	bin, err := stats.BinomialTest(holds, pairs, 0.5, stats.TailGreater)
	if err != nil {
		return QEDResult{}, err
	}
	return QEDResult{
		Result: Result{
			Name:     q.Name,
			Pairs:    pairs,
			Holds:    holds,
			Binomial: bin,
			Sig:      bin.Assess(),
		},
		Cells:       len(cells),
		PairedCells: pairedCells,
	}, nil
}

func permute(n int, rng *randx.Source) []int {
	if rng != nil {
		return rng.Perm(n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
