// Package core implements the paper's methodological contribution: natural
// experiments over observational broadband data. Treatment and control
// populations are compared after nearest-neighbor matching on confounders
// with a ratio caliper (Sec. 2.3 and 3.2), and hypotheses are evaluated
// with one-tailed binomial tests plus the practical-importance rule that
// guards against large-sample false positives.
//
// The same machinery also runs the within-subject (before/after upgrade)
// design and arbitrary placebo experiments, which the test suite uses to
// check that the engine does not manufacture effects.
package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

// DefaultCaliper is the paper's matching tolerance: confounder values of a
// matched pair must be within 25% of each other.
const DefaultCaliper = 0.25

// Confounder is one covariate users must agree on (within the caliper) to
// be considered comparable.
type Confounder struct {
	// Name labels the confounder in diagnostics.
	Name string
	// Value extracts the covariate.
	Value dataset.Metric
	// Floor is an absolute slack added to the caliper band, for covariates
	// that legitimately approach zero (e.g. loss rates): |a−b| must not
	// exceed caliper·max(a,b) + Floor.
	Floor float64
}

// Standard confounder constructors for the covariates the paper matches on.
func ConfounderRTT() Confounder {
	return Confounder{Name: "latency", Value: func(u *dataset.User) float64 { return u.RTT }, Floor: 0.002}
}

// ConfounderLoss matches on packet-loss rate.
func ConfounderLoss() Confounder {
	return Confounder{Name: "loss", Value: func(u *dataset.User) float64 { return float64(u.Loss) }, Floor: 0.0005}
}

// ConfounderAccessPrice matches on the market's price of broadband access.
func ConfounderAccessPrice() Confounder {
	return Confounder{Name: "access-price", Value: func(u *dataset.User) float64 { return u.AccessPrice.Dollars() }}
}

// ConfounderUpgradeCost matches on the market's cost of increasing capacity.
func ConfounderUpgradeCost() Confounder {
	return Confounder{Name: "upgrade-cost", Value: func(u *dataset.User) float64 { return float64(u.UpgradeCost) }, Floor: 0.02}
}

// ConfounderCapacity matches on measured link capacity.
func ConfounderCapacity() Confounder {
	return Confounder{Name: "capacity", Value: func(u *dataset.User) float64 { return float64(u.Capacity) }}
}

// Pair is one matched treated/control pair.
type Pair struct {
	Treated *dataset.User
	Control *dataset.User
}

// Matcher performs greedy one-to-one nearest-neighbor matching without
// replacement under a ratio caliper.
type Matcher struct {
	Confounders []Confounder
	// Caliper is the relative tolerance per confounder (default 0.25).
	Caliper float64
}

// withinCaliper reports whether two covariate values are comparable.
func withinCaliper(a, b, caliper, floor float64) bool {
	hi := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= caliper*hi+floor
}

// distance is the matching distance: the sum of normalized confounder
// discrepancies (each in [0,1] at the caliper boundary).
func (m Matcher) distance(a, b *dataset.User, caliper float64) (float64, bool) {
	total := 0.0
	for _, c := range m.Confounders {
		va, vb := c.Value(a), c.Value(b)
		if !withinCaliper(va, vb, caliper, c.Floor) {
			return 0, false
		}
		hi := math.Max(math.Abs(va), math.Abs(vb))
		denom := caliper*hi + c.Floor
		if denom > 0 {
			total += math.Abs(va-vb) / denom
		}
	}
	return total, true
}

// MatchStats reports the work the matcher did — the diagnostic behind the
// sort-plus-binary-search caliper window (the O(T·C) scan this replaces
// examined every control for every treated user).
type MatchStats struct {
	// Treated is the number of treated users processed.
	Treated int
	// CandidatesExamined counts control candidates whose full confounder
	// distance was evaluated, across all treated users.
	CandidatesExamined int
	// DroppedByCaliper counts examined candidates rejected because some
	// confounder fell outside the caliper band.
	DroppedByCaliper int
	// Unmatched counts treated users that found no eligible control.
	Unmatched int
	// WindowFallbacks counts treated users whose scan could not be narrowed
	// (caliper >= 1 or no confounders) and examined every control.
	WindowFallbacks int
}

// Match pairs each treated user with its nearest eligible control, greedily
// and without replacement. Treated users with no eligible control are
// dropped (the caliper's purpose). The iteration order is randomized by rng
// so greedy choices carry no dataset-order bias; pass nil for deterministic
// input order.
func (m Matcher) Match(treated, control []*dataset.User, rng *randx.Source) []Pair {
	pairs, _ := m.MatchWithStats(treated, control, rng)
	return pairs
}

// MatchWithStats is Match plus work diagnostics.
//
// Controls are sorted once by the first confounder; each treated user then
// scans only the window of controls that can possibly satisfy that
// confounder's caliper. From |a−b| ≤ caliper·max(|a|,|b|) + floor and
// max(|a|,|b|) ≤ |a| + |a−b| follows |a−b| ≤ (caliper·|a| + floor)/(1−caliper),
// so the window [v−r, v+r] with r = (caliper·|v| + floor)/(1−caliper) is a
// superset of the eligible controls whenever caliper < 1. Candidates inside
// the window still pass through the exact per-confounder distance check,
// and ties in distance resolve to the lowest original control index — the
// order the full scan would have found them in — so the selected pairs are
// identical to the O(T·C) algorithm's.
func (m Matcher) MatchWithStats(treated, control []*dataset.User, rng *randx.Source) ([]Pair, MatchStats) {
	caliper := m.Caliper
	if caliper <= 0 {
		caliper = DefaultCaliper
	}
	stats := MatchStats{Treated: len(treated)}
	order := make([]int, len(treated))
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	// Covariates are gathered into row-major matrices up front, one
	// extractor call per (user, confounder), so the candidate scan below
	// works on flat float64 slices instead of re-invoking Value closures
	// for every pair it examines.
	nc := len(m.Confounders)
	floors := make([]float64, nc)
	tvals := make([]float64, nc*len(treated))
	cvals := make([]float64, nc*len(control))
	for j, c := range m.Confounders {
		floors[j] = c.Floor
		for i, u := range treated {
			tvals[i*nc+j] = c.Value(u)
		}
		for i, u := range control {
			cvals[i*nc+j] = c.Value(u)
		}
	}

	// Sorted view of the controls on the first confounder. The sort is by
	// (value, original index), so window scans visit candidates in a
	// deterministic order whatever sort.Slice does with equal values.
	windowed := nc > 0 && caliper < 1
	var firstFloor float64
	var ctlVals []float64 // control value on the first confounder, by sorted position
	var ctlIdx []int      // original control index, by sorted position
	if windowed {
		firstFloor = floors[0]
		ctlVals = make([]float64, len(control))
		ctlIdx = make([]int, len(control))
		for i := range control {
			ctlIdx[i] = i
		}
		sort.Slice(ctlIdx, func(a, b int) bool {
			va, vb := cvals[ctlIdx[a]*nc], cvals[ctlIdx[b]*nc]
			if va != vb {
				return va < vb
			}
			return ctlIdx[a] < ctlIdx[b]
		})
		for i, ci := range ctlIdx {
			ctlVals[i] = cvals[ci*nc]
		}
	}

	used := make([]bool, len(control))
	var pairs []Pair
	for _, ti := range order {
		t := treated[ti]
		tv := tvals[ti*nc : ti*nc+nc]
		lo, hi := 0, len(control)
		if windowed {
			v := tv[0]
			r := (caliper*math.Abs(v) + firstFloor) / (1 - caliper)
			lo = sort.SearchFloat64s(ctlVals, v-r)
			hi = sort.SearchFloat64s(ctlVals, v+r)
			// SearchFloat64s finds the first value >= v+r; values equal to
			// the bound are still admissible candidates.
			for hi < len(ctlVals) && ctlVals[hi] == v+r {
				hi++
			}
		} else {
			stats.WindowFallbacks++
		}
		best := -1
		bestDist := math.Inf(1)
		for k := lo; k < hi; k++ {
			ci := k
			if windowed {
				ci = ctlIdx[k]
			}
			if used[ci] {
				continue
			}
			stats.CandidatesExamined++
			// Inlined distance over the gathered matrices: the arithmetic is
			// operation-for-operation the same as Matcher.distance, so the
			// selected pairs are bit-identical to the closure-based scan.
			cv := cvals[ci*nc : ci*nc+nc]
			d := 0.0
			ok := true
			for j := 0; j < nc; j++ {
				va, vb := tv[j], cv[j]
				diff := va - vb
				if diff < 0 {
					diff = -diff
				}
				aa, ab := va, vb
				if aa < 0 {
					aa = -aa
				}
				if ab < 0 {
					ab = -ab
				}
				hiv := aa
				if ab > hiv {
					hiv = ab
				}
				denom := caliper*hiv + floors[j]
				if !(diff <= denom) {
					ok = false
					break
				}
				if denom > 0 {
					d += diff / denom
				}
			}
			if !ok {
				stats.DroppedByCaliper++
				continue
			}
			if d < bestDist || (d == bestDist && ci < best) {
				bestDist = d
				best = ci
			}
		}
		if best >= 0 {
			used[best] = true
			pairs = append(pairs, Pair{Treated: t, Control: control[best]})
		} else {
			stats.Unmatched++
		}
	}
	// Stable output order (by treated user ID) regardless of shuffle.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Treated.ID < pairs[j].Treated.ID })
	return pairs, stats
}

// Balance summarizes covariate balance of a matched set: for each
// confounder, the mean treated and control values. A matched design is
// credible when these agree closely; experiments print it as a diagnostic.
type Balance struct {
	Confounder  string
	MeanTreated float64
	MeanControl float64
}

// CheckBalance computes the balance table for a matched set.
func (m Matcher) CheckBalance(pairs []Pair) []Balance {
	out := make([]Balance, 0, len(m.Confounders))
	for _, c := range m.Confounders {
		var t, ctl float64
		for _, p := range pairs {
			t += c.Value(p.Treated)
			ctl += c.Value(p.Control)
		}
		n := float64(len(pairs))
		if n > 0 {
			t /= n
			ctl /= n
		}
		out = append(out, Balance{Confounder: c.Name, MeanTreated: t, MeanControl: ctl})
	}
	return out
}

// String renders a balance row.
func (b Balance) String() string {
	return fmt.Sprintf("%s: treated %.4g vs control %.4g", b.Confounder, b.MeanTreated, b.MeanControl)
}
