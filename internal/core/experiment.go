package core

import (
	"fmt"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Experiment is a declarative natural experiment: who is treated, who is
// control, which covariates make them comparable, and which outcome the
// hypothesis concerns. The hypothesis H is always directional — "treated
// units show a higher outcome than their matched controls" — with null H0
// that the ordering is a fair coin.
type Experiment struct {
	Name      string
	Treatment []*dataset.User
	Control   []*dataset.User
	Matcher   Matcher
	Outcome   dataset.Metric
	// MinPairs guards against vacuous results (default 10).
	MinPairs int
}

// Result reports one natural experiment.
type Result struct {
	Name     string
	Pairs    int
	Holds    int // pairs where treated outcome strictly exceeds control
	Binomial stats.BinomialResult
	Sig      stats.Significance
	Balance  []Balance
}

// Fraction returns the share of pairs where the hypothesis held.
func (r Result) Fraction() float64 { return r.Binomial.Fraction }

// PValue returns the one-tailed binomial p-value.
func (r Result) PValue() float64 { return r.Binomial.P }

// String renders the result in the paper's table style.
func (r Result) String() string {
	marker := ""
	if !r.Sig.Significant() {
		marker = "*"
	}
	return fmt.Sprintf("%s: H holds %.1f%%%s (%d/%d pairs), p=%s",
		r.Name, 100*r.Fraction(), marker, r.Holds, r.Pairs, stats.FormatP(r.PValue()))
}

// ErrTooFewPairs is returned when matching leaves too small a sample.
var ErrTooFewPairs = fmt.Errorf("core: too few matched pairs")

// Run matches the populations and evaluates the hypothesis.
func (e Experiment) Run(rng *randx.Source) (Result, error) {
	if e.Outcome == nil {
		return Result{}, fmt.Errorf("core: experiment %q has no outcome metric", e.Name)
	}
	minPairs := e.MinPairs
	if minPairs <= 0 {
		minPairs = 10
	}
	pairs := e.Matcher.Match(e.Treatment, e.Control, rng)
	if len(pairs) < minPairs {
		return Result{}, fmt.Errorf("%w: %q matched %d pairs, need %d", ErrTooFewPairs, e.Name, len(pairs), minPairs)
	}
	holds := 0
	for _, p := range pairs {
		if e.Outcome(p.Treated) > e.Outcome(p.Control) {
			holds++
		}
	}
	bin, err := stats.BinomialTest(holds, len(pairs), 0.5, stats.TailGreater)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Name:     e.Name,
		Pairs:    len(pairs),
		Holds:    holds,
		Binomial: bin,
		Sig:      bin.Assess(),
		Balance:  e.Matcher.CheckBalance(pairs),
	}, nil
}

// PairedMetric extracts the compared quantity from a usage summary in the
// within-subject design.
type PairedMetric func(dataset.UsageSummary) float64

// Within-subject metrics matching the paper's Table 1 rows.
var (
	PairedMean     PairedMetric = func(s dataset.UsageSummary) float64 { return float64(s.Mean) }
	PairedPeak     PairedMetric = func(s dataset.UsageSummary) float64 { return float64(s.Peak) }
	PairedMeanNoBT PairedMetric = func(s dataset.UsageSummary) float64 { return float64(s.MeanNoBT) }
	PairedPeakNoBT PairedMetric = func(s dataset.UsageSummary) float64 { return float64(s.PeakNoBT) }
)

// RunPaired evaluates the within-subject upgrade experiment: each user is
// their own control (usage on the slower network) and treatment (usage on
// the faster network). H: demand increases after the upgrade.
func RunPaired(name string, switches []dataset.Switch, metric PairedMetric) (Result, error) {
	if len(switches) == 0 {
		return Result{}, fmt.Errorf("core: %q has no switch records", name)
	}
	holds := 0
	for _, s := range switches {
		if metric(s.After) > metric(s.Before) {
			holds++
		}
	}
	bin, err := stats.BinomialTest(holds, len(switches), 0.5, stats.TailGreater)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Name:     name,
		Pairs:    len(switches),
		Holds:    holds,
		Binomial: bin,
		Sig:      bin.Assess(),
	}, nil
}
