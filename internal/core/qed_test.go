package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

func qedPopulations(effect bool) (treated, control []*dataset.User) {
	rng := randx.New(17)
	for i := 0; i < 300; i++ {
		rtt := 0.03 + 0.15*rng.Float64()
		loss := 0.05 + 0.3*rng.Float64()
		price := 15 + 40*rng.Float64()
		peakT := 3 * (0.5 + rng.Float64())
		peakC := 3 * (0.5 + rng.Float64())
		if effect {
			peakT *= 1.6
		}
		treated = append(treated, mkUser(int64(i), rtt, loss, price, 10, peakT))
		control = append(control, mkUser(int64(1000+i), rtt*(0.9+0.2*rng.Float64()), loss, price, 5, peakC))
	}
	return treated, control
}

func qedSpec(treated, control []*dataset.User) QED {
	return QED{
		Name:      "qed",
		Treatment: treated,
		Control:   control,
		Confounders: []Confounder{
			ConfounderRTT(), ConfounderLoss(), ConfounderAccessPrice(),
		},
		Outcome: dataset.PeakUsage,
	}
}

func TestQEDDetectsEffect(t *testing.T) {
	treated, control := qedPopulations(true)
	res, err := qedSpec(treated, control).Run(randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sig.Significant() {
		t.Errorf("QED missed a ×1.6 effect: %v", res)
	}
	if res.Fraction() < 0.6 {
		t.Errorf("fraction %.2f too weak", res.Fraction())
	}
	if res.Cells < 5 || res.PairedCells == 0 || res.PairedCells > res.Cells {
		t.Errorf("implausible stratification: %d/%d cells", res.PairedCells, res.Cells)
	}
	if !strings.Contains(res.String(), "cells") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestQEDPlaceboNull(t *testing.T) {
	treated, control := qedPopulations(false)
	res, err := qedSpec(treated, control).Run(randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fraction()-0.5) > 0.08 {
		t.Errorf("placebo fraction %.2f, want ≈0.5", res.Fraction())
	}
	if res.Sig.Significant() {
		t.Errorf("placebo significant: %v", res)
	}
}

func TestQEDAgreesWithMatching(t *testing.T) {
	// The two designs must reach the same verdict on the same populations.
	treated, control := qedPopulations(true)
	qres, err := qedSpec(treated, control).Run(randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	exp := Experiment{
		Name:      "nn",
		Treatment: treated,
		Control:   control,
		Matcher:   Matcher{Confounders: []Confounder{ConfounderRTT(), ConfounderLoss(), ConfounderAccessPrice()}},
		Outcome:   dataset.PeakUsage,
	}
	nres, err := exp.Run(randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if qres.Sig.Significant() != nres.Sig.Significant() {
		t.Errorf("designs disagree: QED %v vs NN %v", qres, nres)
	}
	if math.Abs(qres.Fraction()-nres.Fraction()) > 0.12 {
		t.Errorf("effect sizes diverge: QED %.2f vs NN %.2f", qres.Fraction(), nres.Fraction())
	}
}

func TestQEDValidation(t *testing.T) {
	if _, err := (QED{Name: "x"}).Run(nil); err == nil {
		t.Error("missing outcome should error")
	}
	q := qedSpec([]*dataset.User{mkUser(1, 0.05, 0.1, 25, 10, 1)}, []*dataset.User{mkUser(2, 0.4, 1.5, 80, 5, 1)})
	_, err := q.Run(nil)
	if !errors.Is(err, ErrTooFewPairs) {
		t.Errorf("want ErrTooFewPairs, got %v", err)
	}
}

func TestQEDDeterministicWithoutRNG(t *testing.T) {
	treated, control := qedPopulations(true)
	q := qedSpec(treated, control)
	a, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Holds != b.Holds || a.Pairs != b.Pairs {
		t.Errorf("nil-rng QED not deterministic: %v vs %v", a, b)
	}
}

func TestQEDCellKeyFloors(t *testing.T) {
	q := QED{Confounders: []Confounder{ConfounderLoss()}}
	// Values at or below the floor share the "lo" bin.
	a := mkUser(1, 0.05, 0.0, 25, 10, 1)
	b := mkUser(2, 0.05, 0.04, 25, 10, 1) // 0.0004 < floor 0.0005
	if q.cellKey(a, 1.5) != q.cellKey(b, 1.5) {
		t.Error("sub-floor losses should share a bin")
	}
	c := mkUser(3, 0.05, 2.0, 25, 10, 1)
	if q.cellKey(a, 1.5) == q.cellKey(c, 1.5) {
		t.Error("2% loss must not share the sub-floor bin")
	}
}
