package core

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

// referenceMatch is the pre-optimization O(T·C) greedy scan, kept verbatim
// as the behavioral oracle: the windowed matcher must select exactly the
// same pairs on any input.
func referenceMatch(m Matcher, treated, control []*dataset.User, rng *randx.Source) []Pair {
	caliper := m.Caliper
	if caliper <= 0 {
		caliper = DefaultCaliper
	}
	order := make([]int, len(treated))
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	used := make([]bool, len(control))
	var pairs []Pair
	for _, ti := range order {
		t := treated[ti]
		best := -1
		bestDist := math.Inf(1)
		for ci, c := range control {
			if used[ci] {
				continue
			}
			d, ok := m.distance(t, c, caliper)
			if !ok {
				continue
			}
			if d < bestDist {
				bestDist = d
				best = ci
			}
		}
		if best >= 0 {
			used[best] = true
			pairs = append(pairs, Pair{Treated: t, Control: control[best]})
		}
	}
	sortPairsByTreatedID(pairs)
	return pairs
}

func sortPairsByTreatedID(pairs []Pair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].Treated.ID < pairs[j-1].Treated.ID; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// randomPopulation draws users with clustered covariates so calipers bind:
// duplicated values exercise the tie-break, and a wide tail exercises the
// window bounds.
func randomPopulation(rng *randx.Source, n int, idBase int64) []*dataset.User {
	users := make([]*dataset.User, n)
	for i := range users {
		rtt := 0.010 + 0.015*float64(rng.IntN(8)) // clustered: many exact ties
		if rng.Bool(0.2) {
			rtt = 0.010 + 0.490*rng.Float64() // tail
		}
		loss := 0.001 * float64(rng.IntN(5))
		price := 10 + 5*float64(rng.IntN(12))
		users[i] = mkUser(idBase+int64(i), rtt, loss*100, price, 5+45*rng.Float64(), 1+3*rng.Float64())
	}
	return users
}

// TestMatchWindowEquivalence fuzzes the windowed matcher against the full
// O(T·C) reference on randomized fixtures, shuffled and unshuffled, across
// caliper settings including ones where the window binds hard.
func TestMatchWindowEquivalence(t *testing.T) {
	matchers := []Matcher{
		{Confounders: []Confounder{ConfounderRTT(), ConfounderLoss()}},
		{Confounders: []Confounder{ConfounderRTT(), ConfounderAccessPrice(), ConfounderCapacity()}, Caliper: 0.1},
		{Confounders: []Confounder{ConfounderAccessPrice()}, Caliper: 0.5},
		{Confounders: []Confounder{ConfounderLoss()}, Caliper: 0.05}, // first confounder hugs zero: Floor dominates
	}
	for seed := uint64(1); seed <= 8; seed++ {
		rng := randx.New(seed)
		treated := randomPopulation(rng.Split("treated"), 60+rng.IntN(60), 1)
		control := randomPopulation(rng.Split("control"), 120+rng.IntN(120), 10_000)
		for mi, m := range matchers {
			for _, shuffled := range []bool{false, true} {
				var rngA, rngB *randx.Source
				if shuffled {
					rngA = randx.New(seed * 77)
					rngB = randx.New(seed * 77)
				}
				want := referenceMatch(m, treated, control, rngA)
				got, stats := m.MatchWithStats(treated, control, rngB)
				if len(got) != len(want) {
					t.Fatalf("seed %d matcher %d shuffled=%v: %d pairs, reference %d",
						seed, mi, shuffled, len(got), len(want))
				}
				for i := range want {
					if got[i].Treated.ID != want[i].Treated.ID || got[i].Control.ID != want[i].Control.ID {
						t.Fatalf("seed %d matcher %d shuffled=%v: pair %d is (%d,%d), reference (%d,%d)",
							seed, mi, shuffled, i,
							got[i].Treated.ID, got[i].Control.ID,
							want[i].Treated.ID, want[i].Control.ID)
					}
				}
				if stats.Treated != len(treated) {
					t.Errorf("stats.Treated = %d, want %d", stats.Treated, len(treated))
				}
				if stats.Unmatched != len(treated)-len(got) {
					t.Errorf("stats.Unmatched = %d, want %d", stats.Unmatched, len(treated)-len(got))
				}
			}
		}
	}
}

// TestMatchWindowNarrows checks the point of the optimization: on a
// clustered population the window must examine far fewer candidates than
// the full T·C cross product, without giving up any matches.
func TestMatchWindowNarrows(t *testing.T) {
	rng := randx.New(42)
	treated := randomPopulation(rng.Split("t"), 150, 1)
	control := randomPopulation(rng.Split("c"), 600, 10_000)
	m := Matcher{Confounders: []Confounder{ConfounderRTT(), ConfounderLoss()}, Caliper: 0.1}
	_, stats := m.MatchWithStats(treated, control, nil)
	full := len(treated) * len(control)
	if stats.CandidatesExamined >= full/2 {
		t.Errorf("window examined %d of %d candidate pairs; expected a large reduction", stats.CandidatesExamined, full)
	}
	if stats.WindowFallbacks != 0 {
		t.Errorf("unexpected window fallbacks: %d", stats.WindowFallbacks)
	}
	if stats.DroppedByCaliper == 0 {
		t.Error("expected some candidates dropped by the residual caliper checks")
	}
}

// TestMatchFallback covers the paths that cannot window: caliper ≥ 1 and an
// empty confounder list must still agree with the reference (full scan).
func TestMatchFallback(t *testing.T) {
	rng := randx.New(7)
	treated := randomPopulation(rng.Split("t"), 30, 1)
	control := randomPopulation(rng.Split("c"), 60, 1000)
	for _, m := range []Matcher{
		{Confounders: []Confounder{ConfounderRTT()}, Caliper: 1.5},
		{Confounders: nil},
	} {
		want := referenceMatch(m, treated, control, nil)
		got, stats := m.MatchWithStats(treated, control, nil)
		if len(got) != len(want) {
			t.Fatalf("fallback: %d pairs, reference %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Treated.ID != want[i].Treated.ID || got[i].Control.ID != want[i].Control.ID {
				t.Fatalf("fallback pair %d differs", i)
			}
		}
		if stats.WindowFallbacks != len(treated) {
			t.Errorf("WindowFallbacks = %d, want %d", stats.WindowFallbacks, len(treated))
		}
	}
}
