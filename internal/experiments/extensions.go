package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/traffic"
	"github.com/nwca/broadband/internal/unit"
)

// Extensions lists the analyses that go beyond the paper's published
// artifacts: the future-work directions its Sec. 10 sketches (user
// categories) and the usage-cap effects it cites from Chetty et al. [7].
// They run against the same datasets as the reproductions.
func Extensions() []Entry {
	return []Entry{
		{ID: "Ext. A", Title: "Usage caps and demand (Chetty et al. direction)", Run: RunExtA},
		{ID: "Ext. B", Title: "Demand by user category (Sec. 10 future work)", Run: RunExtB},
		{ID: "Ext. C", Title: "Design cross-validation: natural experiment vs. QED", Run: RunExtC},
	}
}

// FindExtension returns the extension entry with the given ID.
func FindExtension(id string) (Entry, bool) {
	for _, e := range Extensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// ExtA is the usage-cap natural experiment: among otherwise-similar users
// (same capacity, quality and market prices), do subscribers of capped
// plans impose lower average demand? The caps literature (Chetty et al.,
// cited by the paper) says yes; the generator models partial-compliance
// pacing, so the experiment must recover it.
type ExtA struct {
	// CappedShare is the fraction of end-host users on capped plans.
	CappedShare float64
	// Result tests H: uncapped users impose higher mean demand than their
	// matched capped counterparts.
	Result  core.Result
	Skipped bool
	// TightResult restricts the control group to users whose allowance is
	// small against what uncapped users of the same capacity class
	// typically move in a month (cap < 1.2× the class-median uncapped
	// monthly volume — an allowance a typical household would brush
	// against). Defining "binding" from the uncapped population
	// keeps the classifier pre-treatment — conditioning on the capped
	// user's own (suppressed) usage would select heavy users and invert
	// the comparison. Generous caps never bind, so the any-cap comparison
	// is expected to sit near chance.
	TightResult  core.Result
	TightSkipped bool
}

// ID implements Report.
func (e *ExtA) ID() string { return "Ext. A" }

// Title implements Report.
func (e *ExtA) Title() string { return "Usage caps and demand" }

// Render implements Report.
func (e *ExtA) Render() string {
	var b strings.Builder
	b.WriteString(header(e.ID(), e.Title()))
	fmt.Fprintf(&b, "  %.0f%% of end-host users are on capped plans\n", 100*e.CappedShare)
	if e.Skipped {
		b.WriteString("  all-caps comparison: too few matched pairs\n")
	} else {
		fmt.Fprintf(&b, "  uncapped vs any-cap:   H holds %.1f%% (p=%s, %d pairs)\n",
			100*e.Result.Fraction(), formatP(e.Result.PValue()), e.Result.Pairs)
	}
	if e.TightSkipped {
		b.WriteString("  tight-caps comparison: too few matched pairs\n")
	} else {
		fmt.Fprintf(&b, "  uncapped vs tight-cap: H holds %.1f%% (p=%s, %d pairs)\n",
			100*e.TightResult.Fraction(), formatP(e.TightResult.PValue()), e.TightResult.Pairs)
	}
	return b.String()
}

// RunExtA evaluates the usage-cap experiment.
func RunExtA(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	p := v.P
	var cappedIdx, uncappedIdx []int32
	for _, i := range v.Idx {
		if p.PlanCap[i] == 0 {
			uncappedIdx = append(uncappedIdx, i)
		} else {
			cappedIdx = append(cappedIdx, i)
		}
	}
	// Class-typical uncapped monthly volume, the pre-treatment yardstick
	// for whether an allowance binds.
	classMonthly := map[stats.CapacityClass]float64{}
	{
		byClass := map[stats.CapacityClass][]float64{}
		for _, i := range uncappedIdx {
			c := stats.ClassOf(unit.Bitrate(p.Capacity[i]))
			byClass[c] = append(byClass[c], p.UsageMeanNoBT[i]/8*86400*30)
		}
		for c, vols := range byClass {
			if med, err := stats.Median(vols); err == nil {
				classMonthly[c] = med
			}
		}
	}
	var tightIdx []int32
	for _, i := range cappedIdx {
		if typical, ok := classMonthly[stats.ClassOf(unit.Bitrate(p.Capacity[i]))]; ok && float64(p.PlanCap[i]) < 1.2*typical {
			tightIdx = append(tightIdx, i)
		}
	}
	if len(cappedIdx) == 0 || len(uncappedIdx) == 0 {
		return nil, fmt.Errorf("extA: need both capped (%d) and uncapped (%d) users", len(cappedIdx), len(uncappedIdx))
	}
	capped := dataset.View{P: p, Idx: cappedIdx}.Users()
	uncapped := dataset.View{P: p, Idx: uncappedIdx}.Users()
	tight := dataset.View{P: p, Idx: tightIdx}.Users()
	e := &ExtA{CappedShare: float64(len(capped)) / float64(v.Len())}
	m := core.Matcher{Confounders: []core.Confounder{
		core.ConfounderCapacity(), core.ConfounderRTT(), core.ConfounderLoss(),
		core.ConfounderAccessPrice(), core.ConfounderUpgradeCost(),
	}}
	run := func(control []*dataset.User, label string) (core.Result, bool, error) {
		exp := core.Experiment{
			Name:      "uncapped vs " + label,
			Treatment: uncapped,
			Control:   control,
			Matcher:   m,
			Outcome:   dataset.MeanUsageNoBT,
			MinPairs:  MinGroup,
		}
		res, err := exp.Run(rng.Split(label))
		if errors.Is(err, core.ErrTooFewPairs) {
			return core.Result{}, true, nil
		}
		return res, false, err
	}
	var err error
	if e.Result, e.Skipped, err = run(capped, "capped"); err != nil {
		return nil, err
	}
	if e.TightResult, e.TightSkipped, err = run(tight, "tight"); err != nil {
		return nil, err
	}
	if e.Skipped && e.TightSkipped {
		return nil, fmt.Errorf("extA: no comparison matched enough pairs")
	}
	return e, nil
}

// ExtB is the user-category analysis the paper's Sec. 10 proposes: treating
// users as a heterogeneous population of archetypes rather than one
// consumer group. It reports demand by category and runs a matched
// experiment per category pair at equal capacity/quality/market.
type ExtB struct {
	Rows []ExtBRow
	// StreamerVsBrowser is the sharpest category contrast: H states that
	// streamers ("movie-watchers") impose higher mean demand than matched
	// browsers.
	StreamerVsBrowser core.Result
	Skipped           bool
	// GamerLatencyShare reports what fraction of high-latency (>250 ms)
	// gamer lines fall below their category's median demand — gamers being
	// the most latency-sensitive category.
	GamerHighRTTBelowMedian float64
}

// ExtBRow summarizes one archetype's population.
type ExtBRow struct {
	Archetype  traffic.Archetype
	N          int
	MeanDemand stats.Interval // bps, mean usage no BT
	PeakDemand stats.Interval
}

// ID implements Report.
func (e *ExtB) ID() string { return "Ext. B" }

// Title implements Report.
func (e *ExtB) Title() string { return "Demand by user category" }

// Render implements Report.
func (e *ExtB) Render() string {
	var b strings.Builder
	b.WriteString(header(e.ID(), e.Title()))
	fmt.Fprintf(&b, "  %-12s %6s %16s %16s\n", "category", "n", "mean (Mbps)", "peak (Mbps)")
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "  %-12s %6d %16.3f %16.3f\n",
			r.Archetype, r.N, r.MeanDemand.Point/1e6, r.PeakDemand.Point/1e6)
	}
	if e.Skipped {
		b.WriteString("  streamer-vs-browser: too few matched pairs\n")
	} else {
		fmt.Fprintf(&b, "  matched streamer-vs-browser: H holds %.1f%% (p=%s, %d pairs)\n",
			100*e.StreamerVsBrowser.Fraction(), formatP(e.StreamerVsBrowser.PValue()), e.StreamerVsBrowser.Pairs)
	}
	fmt.Fprintf(&b, "  high-latency gamers below their category median: %.0f%%\n", 100*e.GamerHighRTTBelowMedian)
	return b.String()
}

// RunExtB evaluates the user-category analysis.
func RunExtB(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	p := v.P
	byArch := map[traffic.Archetype][]int32{}
	for _, i := range v.Idx {
		byArch[p.Archetype[i]] = append(byArch[p.Archetype[i]], i)
	}
	e := &ExtB{}
	archs := traffic.Archetypes()
	sort.Slice(archs, func(i, j int) bool { return archs[i] < archs[j] })
	for _, a := range archs {
		idx := byArch[a]
		if len(idx) < MinGroup {
			continue
		}
		mean, err := stats.MeanCIIdx(p.UsageMeanNoBT, idx, 0.95)
		if err != nil {
			return nil, err
		}
		peak, err := stats.MeanCIIdx(p.UsagePeakNoBT, idx, 0.95)
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, ExtBRow{Archetype: a, N: len(idx), MeanDemand: mean, PeakDemand: peak})
	}
	if len(e.Rows) < 3 {
		return nil, fmt.Errorf("extB: only %d archetypes populated", len(e.Rows))
	}

	exp := core.Experiment{
		Name:      "streamers vs browsers",
		Treatment: dataset.View{P: p, Idx: byArch[traffic.Streamer]}.Users(),
		Control:   dataset.View{P: p, Idx: byArch[traffic.Browser]}.Users(),
		Matcher: core.Matcher{Confounders: []core.Confounder{
			core.ConfounderCapacity(), core.ConfounderRTT(), core.ConfounderLoss(),
			core.ConfounderAccessPrice(),
		}},
		Outcome:  dataset.MeanUsageNoBT,
		MinPairs: MinGroup,
	}
	res, err := exp.Run(rng.Split("streamer-browser"))
	switch {
	case errors.Is(err, core.ErrTooFewPairs):
		e.Skipped = true
	case err != nil:
		return nil, err
	default:
		e.StreamerVsBrowser = res
	}

	// Gamer latency sensitivity: high-RTT gamers should sit below the
	// gamer median demand far more than half the time.
	gamers := byArch[traffic.Gamer]
	if len(gamers) >= MinGroup {
		med, err := stats.Median(dataset.View{P: p, Idx: gamers}.Gather(p.UsageMeanNoBT))
		if err != nil {
			return nil, err
		}
		below, total := 0, 0
		for _, i := range gamers {
			if p.RTT[i] > 0.25 {
				total++
				if p.UsageMeanNoBT[i] < med {
					below++
				}
			}
		}
		if total > 0 {
			e.GamerHighRTTBelowMedian = float64(below) / float64(total)
		}
	}
	return e, nil
}
