package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig07 reproduces Figure 7: per-country CDFs of download capacity and of
// peak (95th-percentile) link utilization for the four case-study markets.
// The paper's observation: ordered by capacity the markets read Botswana <
// Saudi Arabia < US < Japan — and ordered by peak utilization they read in
// exactly the reverse order.
type Fig07 struct {
	Capacity    map[string][]float64 `golden:"-"` // Mbps values per country
	Utilization map[string][]float64 `golden:"-"` // fractions per country
	// MedianCapacity and MeanUtilization summarize the orderings.
	MedianCapacity  map[string]float64
	MeanUtilization map[string]float64
}

// ID implements Report.
func (f *Fig07) ID() string { return "Fig. 7" }

// Title implements Report.
func (f *Fig07) Title() string {
	return "Capacity and peak-utilization CDFs for the case-study markets"
}

// Render implements Report.
func (f *Fig07) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	b.WriteString("  (a) download capacity\n")
	for _, cc := range CaseStudyCountries {
		if s, err := ecdfQuantiles(cc, f.Capacity[cc], func(v float64) string { return fmt.Sprintf("%.3g Mbps", v) }); err == nil {
			b.WriteString("  " + s)
		}
	}
	b.WriteString("  (b) 95th %ile link utilization\n")
	for _, cc := range CaseStudyCountries {
		if s, err := ecdfQuantiles(cc, f.Utilization[cc], fmtPct); err == nil {
			b.WriteString("  " + s)
		}
	}
	b.WriteString("  capacity order:    " + f.orderBy(f.MedianCapacity) + "\n")
	b.WriteString("  utilization order: " + f.orderBy(f.MeanUtilization) + "\n")
	return b.String()
}

func (f *Fig07) orderBy(vals map[string]float64) string {
	ccs := append([]string(nil), CaseStudyCountries...)
	sort.Slice(ccs, func(i, j int) bool { return vals[ccs[i]] < vals[ccs[j]] })
	return strings.Join(ccs, " < ")
}

// RunFig07 computes the case-study CDFs.
func RunFig07(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	f := &Fig07{
		Capacity:        map[string][]float64{},
		Utilization:     map[string][]float64{},
		MedianCapacity:  map[string]float64{},
		MeanUtilization: map[string]float64{},
	}
	p := d.Panel()
	for _, cc := range CaseStudyCountries {
		v := p.Where(dataset.ColCountry(cc), dataset.ColVantage(dataset.VantageDasu))
		if v.Len() < 5 {
			return nil, fmt.Errorf("fig07: only %d users in %s", v.Len(), cc)
		}
		for _, i := range v.Idx {
			f.Capacity[cc] = append(f.Capacity[cc], p.Capacity[i]/1e6)
			f.Utilization[cc] = append(f.Utilization[cc], p.PeakUtilization(int(i)))
		}
		med, err := stats.Median(f.Capacity[cc])
		if err != nil {
			return nil, err
		}
		f.MedianCapacity[cc] = med
		mean, err := stats.Mean(f.Utilization[cc])
		if err != nil {
			return nil, err
		}
		f.MeanUtilization[cc] = mean
	}
	return f, nil
}
