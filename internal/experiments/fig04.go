package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig04 reproduces Figure 4: the CDFs of mean and peak (no-BT) usage for
// switching users on their "slow" and "fast" networks. The paper's
// landmarks: median mean usage roughly doubles (95 → 189 kbps) and median
// peak usage more than triples (192 → 634 kbps).
type Fig04 struct {
	MeanSlowMedian, MeanFastMedian float64 // bps
	PeakSlowMedian, PeakFastMedian float64 // bps

	meanSlow, meanFast []float64
	peakSlow, peakFast []float64
}

// ID implements Report.
func (f *Fig04) ID() string { return "Fig. 4" }

// Title implements Report.
func (f *Fig04) Title() string {
	return "Usage CDFs on slow vs. fast networks for switching users (no BT)"
}

// Render implements Report.
func (f *Fig04) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	for _, row := range []struct {
		label string
		vals  []float64
	}{
		{"(a) mean, slow network", f.meanSlow},
		{"(a) mean, fast network", f.meanFast},
		{"(b) 95th %ile, slow network", f.peakSlow},
		{"(b) 95th %ile, fast network", f.peakFast},
	} {
		if s, err := ecdfQuantiles(row.label, row.vals, fmtMbps); err == nil {
			b.WriteString(s)
		}
	}
	fmt.Fprintf(&b, "  median mean usage: %.0f → %.0f kbps (×%.2f)\n",
		f.MeanSlowMedian/1e3, f.MeanFastMedian/1e3, ratio(f.MeanFastMedian, f.MeanSlowMedian))
	fmt.Fprintf(&b, "  median peak usage: %.0f → %.0f kbps (×%.2f)\n",
		f.PeakSlowMedian/1e3, f.PeakFastMedian/1e3, ratio(f.PeakFastMedian, f.PeakSlowMedian))
	return b.String()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RunFig04 computes the slow/fast usage CDFs from the switch panel.
func RunFig04(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	if len(d.Switches) == 0 {
		return nil, fmt.Errorf("fig04: no switch records")
	}
	f := &Fig04{}
	for _, s := range d.Switches {
		f.meanSlow = append(f.meanSlow, float64(s.Before.MeanNoBT))
		f.meanFast = append(f.meanFast, float64(s.After.MeanNoBT))
		f.peakSlow = append(f.peakSlow, float64(s.Before.PeakNoBT))
		f.peakFast = append(f.peakFast, float64(s.After.PeakNoBT))
	}
	var err error
	if f.MeanSlowMedian, err = stats.Median(f.meanSlow); err != nil {
		return nil, err
	}
	if f.MeanFastMedian, err = stats.Median(f.meanFast); err != nil {
		return nil, err
	}
	if f.PeakSlowMedian, err = stats.Median(f.peakSlow); err != nil {
		return nil, err
	}
	if f.PeakFastMedian, err = stats.Median(f.peakFast); err != nil {
		return nil, err
	}
	return f, nil
}
