package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

// Fig02 reproduces Figure 2: mean and peak (95th-percentile) download
// demand versus download capacity, with and without BitTorrent traffic,
// aggregated over the paper's capacity classes. The paper's headline is the
// strong log-log correlation (r ≥ 0.87 in every panel) together with the
// law of diminishing returns (growth flattens at high capacities).
type Fig02 struct {
	Panels []Fig02Panel
}

// Fig02Panel is one of the four subfigures.
type Fig02Panel struct {
	Name   string
	Series Series
	R      float64 // log-log correlation of the binned series
}

// ID implements Report.
func (f *Fig02) ID() string { return "Fig. 2" }

// Title implements Report.
func (f *Fig02) Title() string { return "Download demand vs. link capacity (by capacity class)" }

// Render implements Report.
func (f *Fig02) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "  panel %s (log-log r = %.3f)\n", p.Name, p.R)
		b.WriteString(p.Series.render("cap (Mbps)", "usage (Mbps)", 1e-6))
	}
	return b.String()
}

// RunFig02 computes the capacity-vs-usage figure.
func RunFig02(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	if v.Len() == 0 {
		return nil, fmt.Errorf("fig02: no end-host users")
	}
	f := &Fig02{}
	for _, p := range usagePanels(v.P) {
		s := classSeries(p.Name, v, p.Col, MinGroup)
		if len(s.Points) < 3 {
			return nil, fmt.Errorf("fig02: panel %q has only %d populated classes", p.Name, len(s.Points))
		}
		r, err := seriesLogCorrelation(s)
		if err != nil {
			return nil, fmt.Errorf("fig02: panel %q: %w", p.Name, err)
		}
		f.Panels = append(f.Panels, Fig02Panel{Name: p.Name, Series: s, R: r})
	}
	return f, nil
}

// DiminishingReturns reports, for a binned usage series, the log-log slope
// of the low-capacity half versus the high-capacity half. The paper's "law
// of diminishing returns" is lowSlope > highSlope.
func DiminishingReturns(s Series) (lowSlope, highSlope float64, ok bool) {
	if len(s.Points) < 4 {
		return 0, 0, false
	}
	mid := len(s.Points) / 2
	slope := func(pts []SeriesPoint) (float64, bool) {
		// Least-squares on (log x, log y).
		var xs, ys []float64
		for _, p := range pts {
			if p.X > 0 && p.Y > 0 {
				xs = append(xs, math.Log(p.X))
				ys = append(ys, math.Log(p.Y))
			}
		}
		if len(xs) < 2 {
			return 0, false
		}
		var mx, my float64
		for i := range xs {
			mx += xs[i]
			my += ys[i]
		}
		mx /= float64(len(xs))
		my /= float64(len(ys))
		var sxx, sxy float64
		for i := range xs {
			sxx += (xs[i] - mx) * (xs[i] - mx)
			sxy += (xs[i] - mx) * (ys[i] - my)
		}
		if sxx == 0 {
			return 0, false
		}
		return sxy / sxx, true
	}
	lo, ok1 := slope(s.Points[:mid+1])
	hi, ok2 := slope(s.Points[mid:])
	return lo, hi, ok1 && ok2
}
