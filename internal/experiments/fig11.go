package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig11 reproduces Figure 11 and the Sec. 7.1 India analysis: latency CDFs
// for users in India versus the rest of the population, for the NDT RTT of
// the 2011–2013 panel, the NDT RTT of the latest cohort, and the
// popular-website RTT added in 2014 (our generator records WebRTT on every
// user; the latest cohort plays the role of the paper's mid-2014 sample).
// It also runs the companion matched experiment: India's demand is LOWER
// than comparable US users' 62% of the time (p < 0.001) despite India's
// higher access price — the quality arrow overpowering the price arrow.
type Fig11 struct {
	NDTIndiaAll, NDTOtherAll   []float64 `golden:"-"` // '11–'13 NDT RTT, seconds
	NDTIndia14, NDTOther14     []float64 `golden:"-"` // latest-cohort NDT RTT
	WebIndia14, WebOther14     []float64 `golden:"-"` // latest-cohort web RTT
	FracIndiaOver100ms         float64
	IndiaVsUS                  core.Result // H: US (low latency) uses more than matched India
	IndiaVsUSSkipped           bool
	MedianIndiaNDT, MedianRest float64
	// KS quantifies the NDT-latency CDF separation.
	KS stats.KSResult
}

// ID implements Report.
func (f *Fig11) ID() string { return "Fig. 11" }

// Title implements Report.
func (f *Fig11) Title() string { return "Latency CDFs: India vs. the rest of the population" }

// Render implements Report.
func (f *Fig11) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	for _, row := range []struct {
		label string
		vals  []float64
	}{
		{"NDT '11-'13 India", f.NDTIndiaAll},
		{"NDT '11-'13 Other", f.NDTOtherAll},
		{"NDT '14 India", f.NDTIndia14},
		{"NDT '14 Other", f.NDTOther14},
		{"Web '14 India", f.WebIndia14},
		{"Web '14 Other", f.WebOther14},
	} {
		if s, err := ecdfQuantiles(row.label, row.vals, fmtMs); err == nil {
			b.WriteString(s)
		}
	}
	fmt.Fprintf(&b, "  %.0f%% of Indian users above 100 ms (median %0.f ms vs %.0f ms elsewhere)\n",
		100*f.FracIndiaOver100ms, f.MedianIndiaNDT*1000, f.MedianRest*1000)
	fmt.Fprintf(&b, "  KS separation D=%.3f (p=%s)\n", f.KS.D, formatP(f.KS.P))
	if f.IndiaVsUSSkipped {
		b.WriteString("  India-vs-US matched comparison: too few pairs\n")
	} else {
		fmt.Fprintf(&b, "  matched India-vs-US: US demand higher in %.1f%% of pairs (p=%s)\n",
			100*f.IndiaVsUS.Fraction(), formatP(f.IndiaVsUS.PValue()))
	}
	return b.String()
}

// RunFig11 computes the India latency comparison.
func RunFig11(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	all := dasuView(d, 0)
	year := primaryYear(d)
	p := all.P
	inCode, inKnown := p.Countries.Code("IN")
	f := &Fig11{}
	over := 0
	indiaCount := 0
	for _, i := range all.Idx {
		if inKnown && p.Country[i] == inCode {
			indiaCount++
			f.NDTIndiaAll = append(f.NDTIndiaAll, p.RTT[i])
			if p.RTT[i] > 0.1 {
				over++
			}
			if p.Year[i] == year {
				f.NDTIndia14 = append(f.NDTIndia14, p.RTT[i])
				f.WebIndia14 = append(f.WebIndia14, p.WebRTT[i])
			}
		} else {
			f.NDTOtherAll = append(f.NDTOtherAll, p.RTT[i])
			if p.Year[i] == year {
				f.NDTOther14 = append(f.NDTOther14, p.RTT[i])
				f.WebOther14 = append(f.WebOther14, p.WebRTT[i])
			}
		}
	}
	if indiaCount < MinGroup {
		return nil, fmt.Errorf("fig11: only %d Indian users", indiaCount)
	}
	f.FracIndiaOver100ms = float64(over) / float64(indiaCount)
	var err error
	if f.MedianIndiaNDT, err = stats.Median(f.NDTIndiaAll); err != nil {
		return nil, err
	}
	if f.MedianRest, err = stats.Median(f.NDTOtherAll); err != nil {
		return nil, err
	}
	if f.KS, err = stats.KSTest(f.NDTIndiaAll, f.NDTOtherAll); err != nil {
		return nil, err
	}

	// Companion experiment: match India against US users of similar
	// capacity; H (as the paper frames its surprise): the US user, enjoying
	// lower latency and loss, imposes HIGHER demand despite the lower
	// access price.
	india := p.Where(dataset.ColCountry("IN"), dataset.ColVantage(dataset.VantageDasu)).Users()
	us := p.Where(dataset.ColCountry("US"), dataset.ColVantage(dataset.VantageDasu)).Users()
	exp := core.Experiment{
		Name:      "US vs India at matched capacity",
		Treatment: us,
		Control:   india,
		Matcher:   core.Matcher{Confounders: []core.Confounder{core.ConfounderCapacity()}},
		Outcome:   dataset.PeakUsageNoBT,
		MinPairs:  MinGroup,
	}
	res, err := exp.Run(rng.Split("india-us"))
	switch {
	case errors.Is(err, core.ErrTooFewPairs):
		f.IndiaVsUSSkipped = true
	case err != nil:
		return nil, err
	default:
		f.IndiaVsUS = res
	}
	return f, nil
}
