package experiments

import (
	"strings"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/golden"
	"github.com/nwca/broadband/internal/synth"
)

func streamManifest(t *testing.T) *golden.Manifest {
	t.Helper()
	m, err := golden.LoadManifest("testdata/stream_tolerances.json")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestOverviewSketchVsExact is the sketch-accuracy gate of the streaming
// layer: the one-pass overview must agree with the exact in-core reference
// within the tolerances declared in testdata/stream_tolerances.json —
// moments at float precision, quantiles at ECDF bin resolution, extremes
// and counts exactly.
func TestOverviewSketchVsExact(t *testing.T) {
	t.Parallel()
	d := evalData(t)
	m := streamManifest(t)

	exact, err := OverviewExact(d.Users)
	if err != nil {
		t.Fatal(err)
	}
	sketch, err := OverviewFromSource(dataset.UsersOf(d.Users))
	if err != nil {
		t.Fatal(err)
	}
	if sketch.Users != exact.Users {
		t.Fatalf("sketch saw %d users, exact %d", sketch.Users, exact.Users)
	}

	want, err := golden.ToValue(exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := golden.ToValue(sketch)
	if err != nil {
		t.Fatal(err)
	}
	diffs := golden.Compare(want, got, golden.Options{
		Tolerances: m.Tolerances,
		Artifact:   "StreamOverview",
	})
	for _, diff := range diffs {
		t.Errorf("sketch drifts from exact: %s", diff)
	}
	// The manifest's qualitative checks must hold for both shapes.
	for _, v := range golden.EvalChecks(want, m.Checks("StreamOverview"), false) {
		t.Errorf("exact overview violates manifest: %s", v)
	}
	for _, v := range golden.EvalChecks(got, m.Checks("StreamOverview"), false) {
		t.Errorf("sketch overview violates manifest: %s", v)
	}
	if !strings.Contains(sketch.Render(), "end-host users") {
		t.Error("Render is missing the population line")
	}
}

// TestOverviewScaleInvariantChecks evaluates the manifest's scale-invariant
// assertions on worlds the default reproduction config never sees — small,
// reseeded, gzip-sharded on disk — streaming one through StreamUsersDir to
// pin the source-vs-slice equivalence along the way.
func TestOverviewScaleInvariantChecks(t *testing.T) {
	t.Parallel()
	m := streamManifest(t)
	for _, cfg := range []synth.Config{
		{Seed: 5, Users: 300, FCCUsers: 60, Days: 1, SwitchTarget: -1},
		{Seed: 77, Users: 900, FCCUsers: 100, Days: 1, SwitchTarget: -1, MinPerCountry: 3},
	} {
		dir := t.TempDir()
		rep, err := synth.BuildSharded(t.Context(), cfg, synth.ShardSpec{Dir: dir, Shards: 4, Gzip: true})
		if err != nil {
			t.Fatal(err)
		}
		us, err := dataset.StreamUsersDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		sketch, err := OverviewFromSource(us)
		us.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sketch.Users >= int64(rep.Users) {
			t.Fatalf("seed=%d: overview counted %d Dasu users of %d total (gateway rows must be excluded)", cfg.Seed, sketch.Users, rep.Users)
		}
		v, err := golden.ToValue(sketch)
		if err != nil {
			t.Fatal(err)
		}
		for _, violation := range golden.EvalChecks(v, m.Checks("StreamOverview"), true) {
			t.Errorf("seed=%d: %s", cfg.Seed, violation)
		}
	}
}

// TestOverviewEmptyPanel pins the error contract: a source with no Dasu
// rows is an error, not a zero-filled artifact.
func TestOverviewEmptyPanel(t *testing.T) {
	t.Parallel()
	if _, err := OverviewFromSource(dataset.UsersOf(nil)); err == nil {
		t.Error("empty source produced an overview")
	}
	gw := []dataset.User{{ID: 1, Vantage: dataset.VantageGateway}}
	if _, err := OverviewFromSource(dataset.UsersOf(gw)); err == nil {
		t.Error("gateway-only source produced an overview")
	}
	if _, err := OverviewExact(nil); err == nil {
		t.Error("OverviewExact(nil) produced an overview")
	}
}
