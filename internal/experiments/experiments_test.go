package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/synth"
)

// The shared evaluation world: large enough for every experiment's groups,
// built once.
var (
	worldOnce sync.Once
	worldVal  *synth.World
	worldErr  error
)

func evalData(t *testing.T) *dataset.Dataset {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = synth.Build(synth.Config{
			Seed: 20140705, Users: 2500, FCCUsers: 600, Days: 2,
			SwitchTarget: 400, MinPerCountry: 30,
		})
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return &worldVal.Data
}

func rng(label string) *randx.Source { return randx.New(99).Split(label) }

func TestRegistryRunsEverything(t *testing.T) {
	t.Parallel()
	d := evalData(t)
	entries := Registry()
	if len(entries) != 20 {
		t.Fatalf("registry has %d entries, want 20 (every table and figure)", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.ID] {
			t.Errorf("duplicate registry id %s", e.ID)
		}
		seen[e.ID] = true
		rep, err := e.Run(d, rng(e.ID))
		if err != nil {
			t.Errorf("%s failed: %v", e.ID, err)
			continue
		}
		if rep.ID() != e.ID {
			t.Errorf("report id %q != entry id %q", rep.ID(), e.ID)
		}
		out := rep.Render()
		if len(out) < 40 || !strings.Contains(out, e.ID) {
			t.Errorf("%s render looks empty: %q", e.ID, out)
		}
	}
	if _, ok := Find("Table 2"); !ok {
		t.Error("Find failed on a known id")
	}
	if _, ok := Find("Table 99"); ok {
		t.Error("Find resolved a bogus id")
	}
}

func TestFig01Shapes(t *testing.T) {
	t.Parallel()
	rep, err := RunFig01(evalData(t), rng("f1"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig01)
	if f.Capacity.Median < 3.5 || f.Capacity.Median > 14 {
		t.Errorf("median capacity %.2f Mbps outside the paper's ≈7.4 regime", f.Capacity.Median)
	}
	if f.FracBelow1Mbps < 0.03 || f.FracBelow1Mbps > 0.45 {
		t.Errorf("share below 1 Mbps = %.2f, paper ≈0.10", f.FracBelow1Mbps)
	}
	if f.FracLossOver1 < 0.03 || f.FracLossOver1 > 0.35 {
		t.Errorf("share above 1%% loss = %.2f, paper ≈0.14", f.FracLossOver1)
	}
	if f.FracRTTOver500 <= 0 || f.FracRTTOver500 > 0.2 {
		t.Errorf("share above 500 ms = %.2f, paper ≈0.05", f.FracRTTOver500)
	}
}

func TestFig02CorrelationAndDiminishingReturns(t *testing.T) {
	t.Parallel()
	rep, err := RunFig02(evalData(t), rng("f2"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig02)
	if len(f.Panels) != 4 {
		t.Fatalf("panels = %d", len(f.Panels))
	}
	for _, p := range f.Panels {
		if p.R < 0.75 {
			t.Errorf("panel %q r = %.3f, paper reports ≥0.87", p.Name, p.R)
		}
		// Monotone overall: highest class uses more than lowest.
		pts := p.Series.Points
		if pts[len(pts)-1].Y <= pts[0].Y {
			t.Errorf("panel %q not increasing overall", p.Name)
		}
	}
	// Diminishing returns as the paper states it — "as capacity increases,
	// usage begins to level off": the per-doubling growth over the last two
	// class transitions must fall below the growth over the preceding
	// transitions. Tiny bins (N<30) are excluded (their CI-wide noise can
	// tilt ratios either way).
	for _, idx := range []int{2, 3} { // mean no BT, peak no BT
		tailGain, midGain, ok := tailFlattening(f.Panels[idx].Series)
		if !ok {
			t.Fatalf("panel %q too short for the flattening check", f.Panels[idx].Name)
		}
		if tailGain >= midGain {
			t.Errorf("panel %q does not level off: tail per-doubling gain %.3f ≥ mid gain %.3f",
				f.Panels[idx].Name, tailGain, midGain)
		}
	}
}

func TestFig03VantageComparison(t *testing.T) {
	t.Parallel()
	rep, err := RunFig03(evalData(t), rng("f3"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig03)
	if f.RMean < 0.7 || f.RPeak < 0.7 {
		t.Errorf("cross-vantage correlations too weak: rMean=%.3f rPeak=%.3f", f.RMean, f.RPeak)
	}
	if f.MeanRatio < 1.02 {
		t.Errorf("Dasu mean should exceed FCC mean (sampling bias), ratio %.2f", f.MeanRatio)
	}
	if f.PeakRatio < 0.75 || f.PeakRatio > 1.45 {
		t.Errorf("peaks should be nearly identical across vantages, ratio %.2f", f.PeakRatio)
	}
	if f.MeanRatio < f.PeakRatio {
		t.Errorf("the vantage bias should hit means harder than peaks: mean ×%.2f vs peak ×%.2f", f.MeanRatio, f.PeakRatio)
	}
}

func TestTable01UpgradeExperiment(t *testing.T) {
	t.Parallel()
	rep, err := RunTable01(evalData(t), rng("t1"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table01)
	if f := tab.Average.Fraction(); f < 0.55 || f > 0.9 {
		t.Errorf("average-usage H holds %.1f%%, paper 66.8%%", 100*f)
	}
	if f := tab.Peak.Fraction(); f < 0.55 || f > 0.92 {
		t.Errorf("peak-usage H holds %.1f%%, paper 70.3%%", 100*f)
	}
	if !tab.Average.Sig.Significant() || !tab.Peak.Sig.Significant() {
		t.Errorf("both rows must be significant: avg %v, peak %v", tab.Average, tab.Peak)
	}
}

func TestFig04SlowFast(t *testing.T) {
	t.Parallel()
	rep, err := RunFig04(evalData(t), rng("f4"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig04)
	if f.MeanFastMedian <= f.MeanSlowMedian*1.2 {
		t.Errorf("median mean usage should grow clearly on the fast network: %.0f → %.0f kbps",
			f.MeanSlowMedian/1e3, f.MeanFastMedian/1e3)
	}
	if f.PeakFastMedian <= f.PeakSlowMedian*1.4 {
		t.Errorf("median peak usage should grow strongly: %.0f → %.0f kbps",
			f.PeakSlowMedian/1e3, f.PeakFastMedian/1e3)
	}
}

func TestFig05TierDeltas(t *testing.T) {
	t.Parallel()
	rep, err := RunFig05(evalData(t), rng("f5"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig05)
	// The peak no-BT panel: the slowest populated tier shows a clear
	// positive change.
	peakNoBT := f.Panels[3]
	first := peakNoBT.Rows[0]
	if first.Change.Point <= 0 {
		t.Errorf("slowest tier %s peak change = %v, want positive", first.FromTier, first.Change.Point)
	}
	if first.Change.Lo <= 0 && first.N >= 20 {
		t.Errorf("slowest tier CI should exclude zero with n=%d: [%v, %v]", first.N, first.Change.Lo, first.Change.Hi)
	}
}

func TestTable02CapacityLadder(t *testing.T) {
	t.Parallel()
	rep, err := RunTable02(evalData(t), rng("t2"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table02)
	sigLow, populatedLow := 0, 0
	var fractions []float64
	for _, r := range tab.Dasu {
		if r.Skipped {
			continue
		}
		fractions = append(fractions, r.Result.Fraction())
		if r.Control.Upper() <= 7e6 { // rungs at or below (3.2, 6.4]
			populatedLow++
			if r.Result.Sig.Significant() {
				sigLow++
			}
		}
	}
	if populatedLow < 2 {
		t.Fatalf("only %d populated low rungs", populatedLow)
	}
	if sigLow == 0 {
		t.Errorf("no low-capacity rung significant; paper finds all below 6.4 Mbps significant")
	}
	// Decay: the average fraction over the first half exceeds the last half.
	if len(fractions) >= 4 {
		half := len(fractions) / 2
		lo := mean(fractions[:half])
		hi := mean(fractions[half:])
		if lo <= hi {
			t.Errorf("effect should decay with capacity: low rungs %.3f vs high rungs %.3f", lo, hi)
		}
	}
	// FCC panel: capacity keeps mattering in the US market.
	sigFCC := 0
	for _, r := range tab.FCC {
		if !r.Skipped && r.Result.Sig.Significant() {
			sigFCC++
		}
	}
	if sigFCC < 2 {
		t.Errorf("FCC panel should stay significant across bins, got %d significant rungs", sigFCC)
	}
}

// tailFlattening returns the average log-gain per class doubling over the
// last two transitions of a binned series versus the preceding four.
func tailFlattening(s Series) (tail, mid float64, ok bool) {
	var pts []SeriesPoint
	for _, p := range s.Points {
		if p.N >= 30 && p.Y > 0 {
			pts = append(pts, p)
		}
	}
	if len(pts) < 7 {
		return 0, 0, false
	}
	gain := func(a, b SeriesPoint) float64 { return math.Log(b.Y / a.Y) }
	n := len(pts)
	tail = (gain(pts[n-3], pts[n-2]) + gain(pts[n-2], pts[n-1])) / 2
	for i := n - 7; i < n-3; i++ {
		mid += gain(pts[i], pts[i+1])
	}
	mid /= 4
	return tail, mid, true
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFig06LongitudinalNull(t *testing.T) {
	t.Parallel()
	rep, err := RunFig06(evalData(t), rng("f6"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig06)
	if len(f.Years) < 3 {
		t.Fatalf("years = %v", f.Years)
	}
	populated, null := 0, 0
	for _, e := range f.YearExperiments {
		if e.Skipped {
			continue
		}
		populated++
		if !e.Result.Sig.Significant() {
			null++
		}
	}
	if populated == 0 {
		t.Fatal("no populated cross-year experiments")
	}
	if float64(null)/float64(populated) < 0.7 {
		t.Errorf("within-class demand should be stable across years: only %d/%d null", null, populated)
	}
}

func TestTable03PriceEffect(t *testing.T) {
	t.Parallel()
	rep, err := RunTable03(evalData(t), rng("t3"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table03)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Result.Fraction() <= 0.5 {
			t.Errorf("%v vs %v: H holds %.1f%%, want above chance (paper 63.4%%/72.2%%)",
				r.Control, r.Treatment, 100*r.Result.Fraction())
		}
	}
	sig := 0
	for _, r := range tab.Rows {
		if r.Result.Sig.Significant() {
			sig++
		}
	}
	if sig == 0 {
		t.Error("price effect entirely insignificant; paper finds both rows significant")
	}
}

func TestTable04CaseStudy(t *testing.T) {
	t.Parallel()
	rep, err := RunTable04(evalData(t), rng("t4"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table04)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byCC := map[string]Table04Row{}
	for _, r := range tab.Rows {
		byCC[r.Country.Code] = r
	}
	// Income-share ordering: BW ≫ SA > US ≈ JP (Table 4: 8.0/3.3/1.3/1.3).
	if !(byCC["BW"].IncomeShare > byCC["SA"].IncomeShare &&
		byCC["SA"].IncomeShare > byCC["US"].IncomeShare) {
		t.Errorf("income-share ordering violated: BW=%.3f SA=%.3f US=%.3f JP=%.3f",
			byCC["BW"].IncomeShare, byCC["SA"].IncomeShare, byCC["US"].IncomeShare, byCC["JP"].IncomeShare)
	}
	if byCC["BW"].IncomeShare < 0.04 {
		t.Errorf("Botswana income share %.3f, paper 8.0%%", byCC["BW"].IncomeShare)
	}
	if byCC["US"].IncomeShare > 0.03 || byCC["JP"].IncomeShare > 0.03 {
		t.Errorf("US/JP income shares should sit near 1.3%%: %.3f, %.3f",
			byCC["US"].IncomeShare, byCC["JP"].IncomeShare)
	}
	// Median capacity ordering.
	if !(byCC["BW"].MedianCapacity < byCC["SA"].MedianCapacity &&
		byCC["SA"].MedianCapacity < byCC["US"].MedianCapacity &&
		byCC["US"].MedianCapacity < byCC["JP"].MedianCapacity) {
		t.Error("median capacity ordering violated")
	}
}

func TestFig07Orderings(t *testing.T) {
	t.Parallel()
	rep, err := RunFig07(evalData(t), rng("f7"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig07)
	if !(f.MedianCapacity["BW"] < f.MedianCapacity["SA"] &&
		f.MedianCapacity["SA"] < f.MedianCapacity["US"] &&
		f.MedianCapacity["US"] < f.MedianCapacity["JP"]) {
		t.Errorf("capacity order violated: %+v", f.MedianCapacity)
	}
	if !(f.MeanUtilization["BW"] > f.MeanUtilization["SA"] &&
		f.MeanUtilization["SA"] > f.MeanUtilization["US"] &&
		f.MeanUtilization["US"] > f.MeanUtilization["JP"]) {
		t.Errorf("utilization order should reverse capacity order: %+v", f.MeanUtilization)
	}
}

func TestFig08UtilizationByTier(t *testing.T) {
	t.Parallel()
	rep, err := RunFig08(evalData(t), rng("f8"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig08)
	// US utilization falls with tier.
	us1, ok1 := f.Group("US", stats.Tier1to8)
	usTop, okTop := f.Group("US", stats.TierOver32)
	if ok1 && okTop && us1.Mean <= usTop.Mean {
		t.Errorf("US utilization should fall with tier: 1-8 %.2f vs >32 %.2f", us1.Mean, usTop.Mean)
	}
	// Expensive markets run hotter within a tier.
	if sa, ok := f.Group("SA", stats.Tier1to8); ok && ok1 {
		if sa.Median <= us1.Median {
			t.Errorf("SA 1-8 median util %.2f should exceed US's %.2f (paper: 60%% vs 43%%)", sa.Median, us1.Median)
		}
	}
	if bw, ok := f.Group("BW", stats.TierSub1); ok {
		if bw.Mean < 0.6 {
			t.Errorf("BW <1 Mbps mean util %.2f, paper ≈0.80", bw.Mean)
		}
		// The paper's comparison point: BW's tier average (≈80%) against
		// the US average peak utilization over ALL users (≈52%).
		usAll := dataset.Select(evalData(t).Users, dataset.ByCountry("US"), dataset.ByVantage(dataset.VantageDasu))
		total := 0.0
		for _, u := range usAll {
			total += u.PeakUtilization()
		}
		if usAvg := total / float64(len(usAll)); bw.Mean <= usAvg {
			t.Errorf("BW tier util %.2f should exceed the US overall average %.2f", bw.Mean, usAvg)
		}
	}
	if jp, ok := f.Group("JP", stats.TierOver32); ok && jp.Mean > 0.5 {
		t.Errorf("JP >32 mean util %.2f, paper ≈0.10", jp.Mean)
	}
}

func TestFig09DemandByTier(t *testing.T) {
	t.Parallel()
	rep, err := RunFig09(evalData(t), rng("f9"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig09)
	// US demand rises with tier even as utilization falls.
	var prev float64 = -1
	var seen int
	for _, tier := range stats.Tiers() {
		if bar, ok := f.Bar("US", tier); ok {
			if prev > 0 && bar.Demand.Point < prev*0.8 {
				t.Errorf("US demand should broadly rise with tier; %v dropped to %.2f Mbps", tier, bar.Demand.Point/1e6)
			}
			prev = bar.Demand.Point
			seen++
		}
	}
	if seen < 3 {
		t.Fatalf("only %d US tiers populated", seen)
	}
	// Within-tier cross-market comparisons.
	if sa, ok := f.Bar("SA", stats.Tier1to8); ok {
		if us, ok2 := f.Bar("US", stats.Tier1to8); ok2 && sa.Demand.Point <= us.Demand.Point {
			t.Errorf("SA 1-8 demand %.2f should exceed US's %.2f (paper: +37%%)",
				sa.Demand.Point/1e6, us.Demand.Point/1e6)
		}
	}
	if jp, ok := f.Bar("JP", stats.TierOver32); ok {
		if us, ok2 := f.Bar("US", stats.TierOver32); ok2 {
			// The paper's +0.83 Mbps gap; at the eval world's ~30 JP users
			// in this tier the mean carries a ±2–3 Mbps CI, so the strict
			// ordering is only enforced for well-populated samples.
			margin := 1.0
			if jp.N < 60 {
				margin = 0.85
			}
			if us.Demand.Point < jp.Demand.Point*margin {
				t.Errorf("US >32 demand %.2f should exceed JP's %.2f (paper: +0.83 Mbps; JP n=%d)",
					us.Demand.Point/1e6, jp.Demand.Point/1e6, jp.N)
			}
		}
	}
}

func TestFig10UpgradeCostDistribution(t *testing.T) {
	t.Parallel()
	rep, err := RunFig10(evalData(t), rng("f10"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig10)
	if f.Slopes["JP"] >= 0.12 || f.Slopes["KR"] >= 0.12 {
		t.Errorf("JP/KR slopes should sit below $0.10: %v, %v", f.Slopes["JP"], f.Slopes["KR"])
	}
	if f.Slopes["US"] < 0.3 || f.Slopes["US"] > 1 {
		t.Errorf("US slope %.2f, paper slightly above $0.50", f.Slopes["US"])
	}
	if f.Slopes["GH"] < 5 || f.Slopes["UG"] < 5 {
		t.Errorf("Ghana/Uganda should sit in the expensive region: %v, %v", f.Slopes["GH"], f.Slopes["UG"])
	}
	if !(f.Callouts["JP"] < f.Callouts["US"] && f.Callouts["US"] < f.Callouts["GH"]) {
		t.Errorf("callout ordering violated: %+v", f.Callouts)
	}
	// Our generated catalogs are cleaner than the real survey (no promos,
	// bundles or tech transitions), so the strong-correlation share runs
	// above the paper's 66%; the shape requirement is "a clear majority
	// strongly correlated, moderate ≥ strong" (see EXPERIMENTS.md).
	if f.StrongShare < 0.45 || f.StrongShare > 0.99 {
		t.Errorf("strong-correlation share %.2f, want a clear majority (paper ≈0.66)", f.StrongShare)
	}
	if f.ModerateShare < f.StrongShare || f.ModerateShare < 0.6 {
		t.Errorf("moderate-correlation share %.2f, paper ≈0.81", f.ModerateShare)
	}
}

func TestTable05RegionalShares(t *testing.T) {
	t.Parallel()
	rep, err := RunTable05(evalData(t), rng("t5"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table05)
	get := func(r market.Region) Table05Row {
		row, ok := tab.Row(r)
		if !ok {
			t.Fatalf("region %v missing", r)
		}
		return row
	}
	africa := get(market.Africa)
	if africa.Over1 < 0.99 {
		t.Errorf("Africa >$1 share = %.2f, paper 100%%", africa.Over1)
	}
	if africa.Over10 < 0.5 {
		t.Errorf("Africa >$10 share = %.2f, paper 74%%", africa.Over10)
	}
	if na := get(market.NorthAmerica); na.Over1 != 0 {
		t.Errorf("North America >$1 share = %.2f, paper 0%%", na.Over1)
	}
	if ad := get(market.AsiaDeveloped); ad.Over1 != 0 {
		t.Errorf("developed Asia >$1 share = %.2f, paper 0%%", ad.Over1)
	}
	if eu := get(market.Europe); eu.Over5 != 0 || eu.Over1 > 0.25 {
		t.Errorf("Europe shares = %.2f/%.2f, paper 10%%/0%%", eu.Over1, eu.Over5)
	}
}

func TestTable06UpgradeCostEffect(t *testing.T) {
	t.Parallel()
	rep, err := RunTable06(evalData(t), rng("t6"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table06)
	directional := 0
	populated := 0
	for _, rows := range [][]Table06Row{tab.WithBT, tab.NoBT} {
		for _, r := range rows {
			if r.Skipped {
				continue
			}
			populated++
			if r.Result.Fraction() > 0.5 {
				directional++
			}
		}
	}
	if populated == 0 {
		t.Fatal("no populated comparisons")
	}
	if float64(directional)/float64(populated) < 0.7 {
		t.Errorf("upgrade-cost effect should be directionally positive: %d/%d", directional, populated)
	}
}

func TestTable07LatencyEffect(t *testing.T) {
	t.Parallel()
	rep, err := RunTable07(evalData(t), rng("t7"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table07)
	populated, sig := 0, 0
	for _, r := range tab.Rows {
		if r.Skipped {
			continue
		}
		populated++
		if r.Result.Fraction() <= 0.5 {
			t.Errorf("%v: H holds %.1f%%, want above chance", r.Treatment, 100*r.Result.Fraction())
		}
		if r.Result.Sig.Significant() {
			sig++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d populated latency bands", populated)
	}
	if sig == 0 {
		t.Error("latency effect entirely insignificant; paper finds every band significant")
	}
}

func TestTable08LossEffect(t *testing.T) {
	t.Parallel()
	rep, err := RunTable08(evalData(t), rng("t8"))
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.(*Table08)
	populated, directional, sig := 0, 0, 0
	for _, r := range tab.Rows {
		if r.Skipped {
			continue
		}
		populated++
		if r.Result.Fraction() > 0.5 {
			directional++
		}
		if r.Result.Sig.Significant() {
			sig++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d populated loss comparisons", populated)
	}
	if directional < populated-1 {
		t.Errorf("loss effect should be directionally positive: %d/%d", directional, populated)
	}
	if sig == 0 {
		t.Error("loss effect entirely insignificant; paper finds every row significant")
	}
}

func TestFig11IndiaLatency(t *testing.T) {
	t.Parallel()
	rep, err := RunFig11(evalData(t), rng("f11"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig11)
	if f.FracIndiaOver100ms < 0.85 {
		t.Errorf("%.0f%% of Indian users above 100 ms, paper: nearly all", 100*f.FracIndiaOver100ms)
	}
	if f.MedianIndiaNDT < 2*f.MedianRest {
		t.Errorf("India median RTT %.0f ms should dwarf the rest's %.0f ms",
			f.MedianIndiaNDT*1000, f.MedianRest*1000)
	}
	if !f.IndiaVsUSSkipped {
		if f.IndiaVsUS.Fraction() <= 0.5 {
			t.Errorf("matched US-vs-India: %.1f%%, paper 62%% (US higher)", 100*f.IndiaVsUS.Fraction())
		}
	}
}

func TestFig12IndiaLoss(t *testing.T) {
	t.Parallel()
	rep, err := RunFig12(evalData(t), rng("f12"))
	if err != nil {
		t.Fatal(err)
	}
	f := rep.(*Fig12)
	if f.MedianIndia < 3*f.MedianRest {
		t.Errorf("India median loss %.3g%% should dwarf the rest's %.3g%%", f.MedianIndia*100, f.MedianRest*100)
	}
	if f.FracIndiaOver1 <= f.FracRestOver1 {
		t.Errorf("India's >1%% loss share %.2f should exceed the rest's %.2f", f.FracIndiaOver1, f.FracRestOver1)
	}
}

// TestAblationQoEOffKillsQualityEffects is the ground-truth recovery check:
// in a world with the quality→demand arrow severed, the latency experiment
// must lose its significance.
func TestAblationQoEOffKillsQualityEffects(t *testing.T) {
	t.Parallel()
	w, err := synth.Build(synth.Config{
		Seed: 777, Users: 1500, FCCUsers: 50, Days: 2,
		SwitchTarget: 20, MinPerCountry: 15, DisableQoE: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunTable07(&w.Data, rng("ablate"))
	if err != nil {
		t.Skipf("latency experiment unavailable in ablated world: %v", err)
	}
	tab := rep.(*Table07)
	sig := 0
	populated := 0
	for _, r := range tab.Rows {
		if r.Skipped {
			continue
		}
		populated++
		if r.Result.Sig.Significant() {
			sig++
		}
	}
	if populated == 0 {
		t.Skip("no populated bands in ablated world")
	}
	if sig > populated/2 {
		t.Errorf("ablated world still shows latency effects in %d/%d bands", sig, populated)
	}
}
