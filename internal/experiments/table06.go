package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// Table06 reproduces Table 6: the cost-of-increasing-capacity natural
// experiment. Markets are banded by their upgrade-cost slope (≤$0.50,
// $0.50–1, >$1 per Mbps); H states that users facing costlier upgrades
// impose higher average demand on the service they keep. The paper: with
// BitTorrent 53.8% (p=0.0072) and 58.7% (p=0.011); without BitTorrent
// 52.2% (n.s.) and 56.3% (p=0.027) — directionally positive, weaker than
// the access-price effect.
type Table06 struct {
	WithBT []Table06Row
	NoBT   []Table06Row
}

// Table06Row is one band comparison.
type Table06Row struct {
	Control   market.UpgradeCostGroup
	Treatment market.UpgradeCostGroup
	Result    core.Result
	Skipped   bool
}

// ID implements Report.
func (t *Table06) ID() string { return "Table 6" }

// Title implements Report.
func (t *Table06) Title() string {
	return "Upgrade-cost experiment: do costly-upgrade markets show higher demand?"
}

// Render implements Report.
func (t *Table06) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	render := func(name string, rows []Table06Row) {
		fmt.Fprintf(&b, "  (%s)\n", name)
		fmt.Fprintf(&b, "    %-16s %-16s %10s %12s %7s\n", "Control", "Treatment", "% H holds", "p-value", "pairs")
		for _, r := range rows {
			if r.Skipped {
				fmt.Fprintf(&b, "    %-16s %-16s %10s %12s %7s\n", r.Control, r.Treatment, "-", "(too few)", "-")
				continue
			}
			star := ""
			if !r.Result.Sig.Significant() {
				star = "*"
			}
			fmt.Fprintf(&b, "    %-16s %-16s %9.1f%%%s %12s %7d\n",
				r.Control, r.Treatment, 100*r.Result.Fraction(), star,
				formatP(r.Result.PValue()), r.Result.Pairs)
		}
	}
	render("a: average demand w/ BitTorrent", t.WithBT)
	render("b: average demand w/o BitTorrent", t.NoBT)
	return b.String()
}

// RunTable06 evaluates the upgrade-cost experiment.
func RunTable06(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	p := v.P
	groupIdx := map[market.UpgradeCostGroup][]int32{}
	for _, i := range v.Idx {
		g := market.GroupOfUpgradeCost(unit.PerMbps(p.UpgradeCost[i]))
		groupIdx[g] = append(groupIdx[g], i)
	}
	groups := map[market.UpgradeCostGroup][]*dataset.User{}
	for g, idx := range groupIdx {
		groups[g] = dataset.View{P: p, Idx: idx}.Users()
	}
	// Matching on capacity, quality and access price isolates the
	// upgrade-cost arrow from the access-price one.
	m := core.Matcher{Confounders: []core.Confounder{
		core.ConfounderCapacity(), core.ConfounderRTT(), core.ConfounderLoss(),
		core.ConfounderAccessPrice(),
	}}
	comparisons := []struct {
		control, treatment market.UpgradeCostGroup
	}{
		{market.UpgradeCheap, market.UpgradeMid},
		{market.UpgradeMid, market.UpgradeExpensive},
	}
	run := func(metric dataset.Metric, label string) ([]Table06Row, error) {
		var rows []Table06Row
		populated := 0
		for i, cmp := range comparisons {
			exp := core.Experiment{
				Name:      fmt.Sprintf("%s: %v vs %v", label, cmp.control, cmp.treatment),
				Treatment: groups[cmp.treatment],
				Control:   groups[cmp.control],
				Matcher:   m,
				Outcome:   metric,
				MinPairs:  MinGroup,
			}
			res, err := exp.Run(rng.SplitN(label, i))
			row := Table06Row{Control: cmp.control, Treatment: cmp.treatment}
			switch {
			case errors.Is(err, core.ErrTooFewPairs):
				row.Skipped = true
			case err != nil:
				return nil, err
			default:
				row.Result = res
				populated++
			}
			rows = append(rows, row)
		}
		if populated == 0 {
			return nil, fmt.Errorf("table06 %s: no populated comparisons", label)
		}
		return rows, nil
	}
	t := &Table06{}
	var err error
	if t.WithBT, err = run(dataset.MeanUsage, "withbt"); err != nil {
		return nil, err
	}
	if t.NoBT, err = run(dataset.MeanUsageNoBT, "nobt"); err != nil {
		return nil, err
	}
	return t, nil
}
