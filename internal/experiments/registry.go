package experiments

// Registry enumerates every reproduced table and figure in the paper's
// presentation order. The repro driver and the benchmark harness iterate it.
func Registry() []Entry {
	return []Entry{
		{ID: "Fig. 1", Title: "Broadband connection characteristics (CDFs)", Run: RunFig01},
		{ID: "Fig. 2", Title: "Demand vs. capacity by class", Run: RunFig02},
		{ID: "Fig. 3", Title: "FCC vs. Dasu US demand", Run: RunFig03},
		{ID: "Table 1", Title: "Within-user upgrade experiment", Run: RunTable01},
		{ID: "Fig. 4", Title: "Slow/fast network usage CDFs", Run: RunFig04},
		{ID: "Fig. 5", Title: "Upgrade demand change by initial tier", Run: RunFig05},
		{ID: "Table 2", Title: "Matched-pair capacity experiment", Run: RunTable02},
		{ID: "Fig. 6", Title: "Longitudinal demand by year", Run: RunFig06},
		{ID: "Table 3", Title: "Price-of-access experiment", Run: RunTable03},
		{ID: "Table 4", Title: "Case-study market summary", Run: RunTable04},
		{ID: "Fig. 7", Title: "Case-study capacity/utilization CDFs", Run: RunFig07},
		{ID: "Fig. 8", Title: "Utilization by tier and country", Run: RunFig08},
		{ID: "Fig. 9", Title: "Peak demand by tier and country", Run: RunFig09},
		{ID: "Fig. 10", Title: "Cost of increasing capacity (CDF)", Run: RunFig10},
		{ID: "Table 5", Title: "Regional upgrade-cost shares", Run: RunTable05},
		{ID: "Table 6", Title: "Upgrade-cost experiment", Run: RunTable06},
		{ID: "Table 7", Title: "Latency experiment", Run: RunTable07},
		{ID: "Fig. 11", Title: "India latency comparison", Run: RunFig11},
		{ID: "Table 8", Title: "Packet-loss experiment", Run: RunTable08},
		{ID: "Fig. 12", Title: "India loss comparison", Run: RunFig12},
	}
}

// Find returns the registry entry with the given ID.
func Find(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}
