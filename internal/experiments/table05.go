package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
)

// Table05 reproduces Table 5: the share of countries per region where
// increasing capacity by 1 Mbps costs more than $1, $5 and $10 per month
// (USD PPP). Paper landmarks: Africa 100/84/74%; developed Asia 0/0/0;
// Europe 10/0/0; North America 0/0/0; Middle East 86/57/43%.
type Table05 struct {
	Rows []Table05Row
}

// Table05Row is one region's shares.
type Table05Row struct {
	Region    market.Region
	Countries int
	Over1     float64
	Over5     float64
	Over10    float64
}

// ID implements Report.
func (t *Table05) ID() string { return "Table 5" }

// Title implements Report.
func (t *Table05) Title() string {
	return "Share of countries per region with upgrade cost above $1/$5/$10 per Mbps"
}

// Render implements Report.
func (t *Table05) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	fmt.Fprintf(&b, "  %-28s %4s %6s %6s %6s\n", "Region", "n", ">$1", ">$5", ">$10")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-28s %4d %5.0f%% %5.0f%% %5.0f%%\n",
			r.Region, r.Countries, 100*r.Over1, 100*r.Over5, 100*r.Over10)
	}
	return b.String()
}

// Row returns the row for a region, if present.
func (t *Table05) Row(r market.Region) (Table05Row, bool) {
	for _, row := range t.Rows {
		if row.Region == r {
			return row, true
		}
	}
	return Table05Row{}, false
}

// RunTable05 aggregates upgrade costs by region.
func RunTable05(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	byRegion := marketsOf(d)
	if len(byRegion) == 0 {
		return nil, fmt.Errorf("table05: no markets")
	}
	t := &Table05{}
	for _, region := range market.Regions() {
		markets := byRegion[region]
		if len(markets) == 0 {
			continue
		}
		row := Table05Row{Region: region}
		for _, ms := range markets {
			if !ms.Upgrade.Reliable() {
				continue
			}
			row.Countries++
			s := float64(ms.Upgrade.Slope)
			if s > 1 {
				row.Over1++
			}
			if s > 5 {
				row.Over5++
			}
			if s > 10 {
				row.Over10++
			}
		}
		if row.Countries == 0 {
			continue
		}
		n := float64(row.Countries)
		row.Over1 /= n
		row.Over5 /= n
		row.Over10 /= n
		t.Rows = append(t.Rows, row)
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("table05: no reliable markets in any region")
	}
	return t, nil
}
