package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// ExtC cross-validates the paper's natural-experiment design against the
// quasi-experimental design (QED) its related work discusses (Krishnan &
// Sitaraman): the same capacity hypothesis evaluated under nearest-neighbor
// caliper matching and under exact stratification. The paper chose natural
// experiments "as we consider the control and treatment groups to be
// sufficiently similar to random assignment"; this extension checks that
// the choice does not drive the conclusions.
type ExtC struct {
	Rows []ExtCRow
}

// ExtCRow compares the two designs on one capacity rung.
type ExtCRow struct {
	Control    stats.CapacityClass
	Treatment  stats.CapacityClass
	NN         core.Result
	QED        core.QEDResult
	NNSkipped  bool
	QEDSkipped bool
}

// Agree reports whether the populated designs reach the same verdict.
func (r ExtCRow) Agree() bool {
	if r.NNSkipped || r.QEDSkipped {
		return true // nothing to disagree about
	}
	return r.NN.Sig.Significant() == r.QED.Sig.Significant()
}

// ID implements Report.
func (e *ExtC) ID() string { return "Ext. C" }

// Title implements Report.
func (e *ExtC) Title() string { return "Design cross-validation: natural experiment vs. QED" }

// Render implements Report.
func (e *ExtC) Render() string {
	var b strings.Builder
	b.WriteString(header(e.ID(), e.Title()))
	fmt.Fprintf(&b, "  %-22s %-22s %16s %22s %7s\n", "Control", "Treatment", "NN matching", "QED stratification", "agree")
	for _, r := range e.Rows {
		nn := "(too few)"
		if !r.NNSkipped {
			star := ""
			if !r.NN.Sig.Significant() {
				star = "*"
			}
			nn = fmt.Sprintf("%.1f%%%s n=%d", 100*r.NN.Fraction(), star, r.NN.Pairs)
		}
		qed := "(too few)"
		if !r.QEDSkipped {
			star := ""
			if !r.QED.Sig.Significant() {
				star = "*"
			}
			qed = fmt.Sprintf("%.1f%%%s n=%d", 100*r.QED.Fraction(), star, r.QED.Pairs)
		}
		fmt.Fprintf(&b, "  %-22s %-22s %16s %22s %7v\n", r.Control, r.Treatment, nn, qed, r.Agree())
	}
	return b.String()
}

// RunExtC evaluates the design comparison over a set of capacity rungs.
func RunExtC(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	classes := byClass(dasuView(d, 0))
	// Both designs reuse the same class groups; materialize each class's
	// rows from the columnar view once, shared across rungs.
	classUsers := map[stats.CapacityClass][]*dataset.User{}
	usersOf := func(k stats.CapacityClass) []*dataset.User {
		if u, ok := classUsers[k]; ok {
			return u
		}
		u := classes[k].Users()
		classUsers[k] = u
		return u
	}
	confs := []core.Confounder{
		core.ConfounderRTT(), core.ConfounderLoss(),
		core.ConfounderAccessPrice(), core.ConfounderUpgradeCost(),
	}
	e := &ExtC{}
	first := stats.ClassOf(unit.KbpsOf(600)) // (0.4, 0.8]
	populated := 0
	for k := first; k < first+7; k++ {
		row := ExtCRow{Control: k, Treatment: k + 1}
		exp := core.Experiment{
			Name:      fmt.Sprintf("nn %v", k),
			Treatment: usersOf(k + 1),
			Control:   usersOf(k),
			Matcher:   core.Matcher{Confounders: confs},
			Outcome:   dataset.PeakUsageNoBT,
			MinPairs:  MinGroup,
		}
		nn, err := exp.Run(rng.SplitN("nn", int(k)))
		switch {
		case errors.Is(err, core.ErrTooFewPairs):
			row.NNSkipped = true
		case err != nil:
			return nil, err
		default:
			row.NN = nn
		}
		qed := core.QED{
			Name:        fmt.Sprintf("qed %v", k),
			Treatment:   usersOf(k + 1),
			Control:     usersOf(k),
			Confounders: confs,
			Outcome:     dataset.PeakUsageNoBT,
			MinPairs:    MinGroup,
		}
		qres, err := qed.Run(rng.SplitN("qed", int(k)))
		switch {
		case errors.Is(err, core.ErrTooFewPairs):
			row.QEDSkipped = true
		case err != nil:
			return nil, err
		default:
			row.QED = qres
		}
		if !row.NNSkipped || !row.QEDSkipped {
			populated++
		}
		e.Rows = append(e.Rows, row)
	}
	if populated == 0 {
		return nil, fmt.Errorf("extC: no populated rungs")
	}
	return e, nil
}
