package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/stats"
)

// Streaming characterization (DESIGN.md §8): the Fig. 1 family of
// statistics — capacity, latency and loss distributions over the end-host
// panel plus the paper's headline threshold fractions — computed in one
// pass over a dataset.UserSource with bounded memory. Out-of-core worlds
// (10M+ users as a shard set) get their overview without ever holding the
// panel; the in-core experiments are untouched and remain the exact
// reference. Sketch-vs-exact agreement is gated by the tolerance manifest
// in testdata/stream_tolerances.json (the PR-3 manifest format).

// streamSketch is the per-metric online state: Welford moments for
// mean/stddev and a fixed-bin log ECDF for quantiles and tail fractions.
type streamSketch struct {
	mom  stats.Moments
	ecdf *stats.OnlineECDF
}

func newStreamSketch(lo, hi float64, bins int) (*streamSketch, error) {
	e, err := stats.NewOnlineECDF(lo, hi, bins, true)
	if err != nil {
		return nil, err
	}
	return &streamSketch{ecdf: e}, nil
}

func (s *streamSketch) add(x float64) error {
	if err := s.mom.Add(x); err != nil {
		return err
	}
	return s.ecdf.Add(x)
}

// dist summarizes the sketch into the artifact shape. Quantiles carry the
// ECDF's bin resolution (relative error one log-bin width); mean, stddev
// and the exact extremes carry no sketch error at all.
func (s *streamSketch) dist() (DistSketch, error) {
	var d DistSketch
	d.N = s.mom.N()
	if d.N == 0 {
		return d, fmt.Errorf("experiments: empty metric stream")
	}
	var err error
	if d.Mean, err = s.mom.Mean(); err != nil {
		return d, err
	}
	if d.N > 1 {
		if d.StdDev, err = s.mom.StdDev(); err != nil {
			return d, err
		}
	}
	if d.Min, err = s.mom.Min(); err != nil {
		return d, err
	}
	if d.Max, err = s.mom.Max(); err != nil {
		return d, err
	}
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{0.05, &d.P05}, {0.25, &d.P25}, {0.5, &d.Median}, {0.75, &d.P75}, {0.95, &d.P95}} {
		if *q.dst, err = s.ecdf.Quantile(q.p); err != nil {
			return d, err
		}
	}
	return d, nil
}

// DistSketch is one metric's distribution summary.
type DistSketch struct {
	N                          int64
	Mean, StdDev, Min, Max     float64
	P05, P25, Median, P75, P95 float64
}

// StreamOverview is the one-pass characterization of an end-host panel:
// the online analogue of Fig. 1. Capacity is in Mbps, RTT in seconds, Loss
// a fraction; the Frac fields are the paper's headline tail shares.
type StreamOverview struct {
	Users    int64
	Capacity DistSketch
	RTT      DistSketch
	Loss     DistSketch

	FracBelow1Mbps  float64
	FracAbove30Mbps float64
	FracRTTOver500  float64
	FracLossOver1   float64
}

// streamBins sizes the fixed log ECDF of every metric. The spans (set in
// NewOverviewSketch) bracket the generator's own clamps — capacity in the
// hundreds of Mbps, RTT in [4ms, 4s], loss in [1e-5, 0.15] — with a decade
// to spare on each side; observations outside a span clamp into the
// terminal bins and the exact min/max are tracked separately, so a span
// miss degrades resolution, never correctness. 2048 log bins over ≤7
// decades keep the within-bin relative width under 0.8%.
const streamBins = 2048

// OverviewSketch is the streaming accumulator behind OverviewFromSource.
// Feed with AddUser (Dasu users only are counted, matching Fig. 1's
// population) and finish with Overview.
type OverviewSketch struct {
	capacity, rtt, loss *streamSketch
	users               int64
	below1, above30     int64
	rttOver500          int64
	lossOver1           int64
}

// NewOverviewSketch builds the streaming accumulator.
func NewOverviewSketch() (*OverviewSketch, error) {
	capacity, err := newStreamSketch(0.01, 1e4, streamBins) // Mbps
	if err != nil {
		return nil, err
	}
	rtt, err := newStreamSketch(1e-4, 10, streamBins) // seconds
	if err != nil {
		return nil, err
	}
	// Measured loss can exceed the generator's 15% draw clamp (satellite
	// multipliers compound with measurement noise), so the span runs to 1.
	loss, err := newStreamSketch(1e-6, 1, streamBins) // fraction
	if err != nil {
		return nil, err
	}
	return &OverviewSketch{capacity: capacity, rtt: rtt, loss: loss}, nil
}

// AddUser folds one user into the sketch; non-Dasu rows are ignored.
func (o *OverviewSketch) AddUser(u *dataset.User) error {
	if u.Vantage != dataset.VantageDasu {
		return nil
	}
	o.users++
	if err := o.capacity.add(float64(u.Capacity) / 1e6); err != nil {
		return err
	}
	if err := o.rtt.add(u.RTT); err != nil {
		return err
	}
	if err := o.loss.add(float64(u.Loss)); err != nil {
		return err
	}
	if u.Capacity < 1e6 {
		o.below1++
	}
	if u.Capacity > 30e6 {
		o.above30++
	}
	if u.RTT > 0.5 {
		o.rttOver500++
	}
	if u.Loss > 0.01 {
		o.lossOver1++
	}
	return nil
}

// Overview finalizes the accumulated state.
func (o *OverviewSketch) Overview() (*StreamOverview, error) {
	if o.users == 0 {
		return nil, fmt.Errorf("experiments: overview of an empty end-host panel")
	}
	out := &StreamOverview{Users: o.users}
	var err error
	if out.Capacity, err = o.capacity.dist(); err != nil {
		return nil, fmt.Errorf("experiments: capacity: %w", err)
	}
	if out.RTT, err = o.rtt.dist(); err != nil {
		return nil, fmt.Errorf("experiments: rtt: %w", err)
	}
	if out.Loss, err = o.loss.dist(); err != nil {
		return nil, fmt.Errorf("experiments: loss: %w", err)
	}
	n := float64(o.users)
	out.FracBelow1Mbps = float64(o.below1) / n
	out.FracAbove30Mbps = float64(o.above30) / n
	out.FracRTTOver500 = float64(o.rttOver500) / n
	out.FracLossOver1 = float64(o.lossOver1) / n
	return out, nil
}

// OverviewFromSource drains a user source through the sketch: one row
// resident at a time, so a 10M-user shard set costs the sketch (a few
// hundred KB), not the panel.
func OverviewFromSource(src dataset.UserSource) (*StreamOverview, error) {
	o, err := NewOverviewSketch()
	if err != nil {
		return nil, err
	}
	var u dataset.User
	for {
		switch err := src.Read(&u); err {
		case nil:
			if err := o.AddUser(&u); err != nil {
				return nil, err
			}
		case io.EOF:
			return o.Overview()
		default:
			return nil, err
		}
	}
}

// OverviewExact computes the same artifact with the exact in-core
// machinery (sorted order statistics, two-pass variance). It is the golden
// reference the sketch is compared against under the tolerance manifest.
func OverviewExact(users []dataset.User) (*StreamOverview, error) {
	sel := dataset.SelectIdx(users, dataset.ByVantage(dataset.VantageDasu))
	if len(sel) == 0 {
		return nil, fmt.Errorf("experiments: overview of an empty end-host panel")
	}
	out := &StreamOverview{Users: int64(len(sel))}
	metrics := []struct {
		dst    *DistSketch
		metric func(*dataset.User) float64
	}{
		{&out.Capacity, func(u *dataset.User) float64 { return float64(u.Capacity) / 1e6 }},
		{&out.RTT, func(u *dataset.User) float64 { return u.RTT }},
		{&out.Loss, func(u *dataset.User) float64 { return float64(u.Loss) }},
	}
	for _, m := range metrics {
		xs := make([]float64, len(sel))
		for i, j := range sel {
			xs[i] = m.metric(&users[j])
		}
		d, err := exactDist(xs)
		if err != nil {
			return nil, err
		}
		*m.dst = d
	}
	n := float64(len(sel))
	for _, j := range sel {
		u := &users[j]
		if u.Capacity < 1e6 {
			out.FracBelow1Mbps++
		}
		if u.Capacity > 30e6 {
			out.FracAbove30Mbps++
		}
		if u.RTT > 0.5 {
			out.FracRTTOver500++
		}
		if u.Loss > 0.01 {
			out.FracLossOver1++
		}
	}
	out.FracBelow1Mbps /= n
	out.FracAbove30Mbps /= n
	out.FracRTTOver500 /= n
	out.FracLossOver1 /= n
	return out, nil
}

func exactDist(xs []float64) (DistSketch, error) {
	var d DistSketch
	d.N = int64(len(xs))
	var err error
	if d.Mean, err = stats.Mean(xs); err != nil {
		return d, err
	}
	if len(xs) > 1 {
		if d.StdDev, err = stats.StdDev(xs); err != nil {
			return d, err
		}
	}
	if d.Min, d.Max, err = stats.MinMax(xs); err != nil {
		return d, err
	}
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{0.05, &d.P05}, {0.25, &d.P25}, {0.5, &d.Median}, {0.75, &d.P75}, {0.95, &d.P95}} {
		if *q.dst, err = stats.Quantile(xs, q.p); err != nil {
			return d, err
		}
	}
	return d, nil
}

// Render formats the overview for terminal output (bbstats).
func (s *StreamOverview) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Streaming overview — %d end-host users ===\n", s.Users)
	row := func(name, unit string, d DistSketch, scale float64) {
		fmt.Fprintf(&b, "  %-10s median %.4g %s (IQR %.4g–%.4g, p5 %.4g, p95 %.4g; mean %.4g ± %.4g)\n",
			name, d.Median*scale, unit, d.P25*scale, d.P75*scale, d.P05*scale, d.P95*scale, d.Mean*scale, d.StdDev*scale)
	}
	row("capacity", "Mbps", s.Capacity, 1)
	row("rtt", "ms", s.RTT, 1000)
	row("loss", "%", s.Loss, 100)
	fmt.Fprintf(&b, "  %.1f%% below 1 Mbps, %.1f%% above 30 Mbps; %.1f%% RTT over 500 ms; %.1f%% loss over 1%%\n",
		100*s.FracBelow1Mbps, 100*s.FracAbove30Mbps, 100*s.FracRTTOver500, 100*s.FracLossOver1)
	return b.String()
}
