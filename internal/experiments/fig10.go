package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
)

// Fig10 reproduces Figure 10 and the Sec. 6 regression analysis: the CDF
// across countries of the monthly cost of increasing capacity by 1 Mbps
// (the per-market OLS slope of price on capacity), restricted to markets
// with at least moderate price–capacity correlation (r > 0.4). Landmarks:
// Japan/South Korea below $0.10; US/Canada slightly above $0.50;
// Ghana/Uganda in the expensive upper region; strong correlation (r > 0.8)
// in ≈66% of markets and moderate (r > 0.4) in ≈81%.
type Fig10 struct {
	// Slopes maps country code → upgrade cost, reliable markets only.
	Slopes map[string]float64
	// StrongShare and ModerateShare are the correlation-strength fractions
	// over all markets.
	StrongShare   float64
	ModerateShare float64
	// Callouts locate the paper's example markets in the distribution.
	Callouts map[string]float64 // country → CDF position
}

// ID implements Report.
func (f *Fig10) ID() string { return "Fig. 10" }

// Title implements Report.
func (f *Fig10) Title() string { return "CDF of the monthly cost to increase capacity by 1 Mbps" }

// Render implements Report.
func (f *Fig10) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	vals := f.sortedSlopes()
	if s, err := ecdfQuantiles("cost per +1 Mbps", vals, func(v float64) string {
		return fmt.Sprintf("$%.2f", v)
	}); err == nil {
		b.WriteString(s)
	}
	fmt.Fprintf(&b, "  markets with r > 0.8: %.0f%%; r > 0.4: %.0f%% (reliable set: %d countries)\n",
		100*f.StrongShare, 100*f.ModerateShare, len(f.Slopes))
	var ccs []string
	for cc := range f.Callouts {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	for _, cc := range ccs {
		fmt.Fprintf(&b, "  callout %s: slope $%.2f/Mbps at CDF position %.2f\n",
			cc, f.Slopes[cc], f.Callouts[cc])
	}
	return b.String()
}

func (f *Fig10) sortedSlopes() []float64 {
	vals := make([]float64, 0, len(f.Slopes))
	for _, v := range f.Slopes {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return vals
}

// RunFig10 computes the upgrade-cost distribution from the plan survey.
func RunFig10(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	if len(d.Markets) == 0 {
		return nil, fmt.Errorf("fig10: no market summaries")
	}
	f := &Fig10{Slopes: map[string]float64{}, Callouts: map[string]float64{}}
	strong, moderate, all := 0, 0, 0
	for cc, ms := range d.Markets {
		all++
		if ms.Upgrade.StrongCorrelation() {
			strong++
		}
		if ms.Upgrade.Reliable() {
			moderate++
			f.Slopes[cc] = float64(ms.Upgrade.Slope)
		}
	}
	if len(f.Slopes) < 5 {
		return nil, fmt.Errorf("fig10: only %d reliable markets", len(f.Slopes))
	}
	f.StrongShare = float64(strong) / float64(all)
	f.ModerateShare = float64(moderate) / float64(all)

	vals := f.sortedSlopes()
	pos := func(v float64) float64 {
		i := sort.SearchFloat64s(vals, v)
		return float64(i) / float64(len(vals))
	}
	for _, cc := range []string{"JP", "KR", "US", "CA", "GH", "UG"} {
		if v, ok := f.Slopes[cc]; ok {
			f.Callouts[cc] = pos(v)
		}
	}
	return f, nil
}

// marketsOf returns the market summaries grouped by region (used by the
// Table 5 reproduction and the market-survey example).
func marketsOf(d *dataset.Dataset) map[market.Region][]market.MarketSummary {
	byRegion := map[market.Region][]market.MarketSummary{}
	for _, ms := range d.Markets {
		byRegion[ms.Country.Region] = append(byRegion[ms.Country.Region], ms)
	}
	return byRegion
}
