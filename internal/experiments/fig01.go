package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig01 reproduces Figure 1: the CDFs of measured download capacity,
// latency to the nearest measurement server, and packet-loss rate across
// the global end-host population, plus the headline statistics the paper
// reads off them (median capacity ≈7.4 Mbps with IQR 3.1–17.4; ~10% of
// users below 1 Mbps and ~10% above 30 Mbps; typical RTT ≈100 ms with the
// top 5% above 500 ms; ~14% of users with loss above 1%).
type Fig01 struct {
	Capacity stats.Summary // Mbps
	RTT      stats.Summary // seconds
	Loss     stats.Summary // fraction

	FracBelow1Mbps  float64
	FracAbove30Mbps float64
	FracRTTOver500  float64
	FracLossOver1   float64

	capVals, rttVals, lossVals []float64
}

// ID implements Report.
func (f *Fig01) ID() string { return "Fig. 1" }

// Title implements Report.
func (f *Fig01) Title() string {
	return "CDFs of download capacity, latency and packet loss (all users)"
}

// Render implements Report.
func (f *Fig01) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	if s, err := ecdfQuantiles("(a) download capacity", f.capVals, fmtMbps); err == nil {
		b.WriteString(s)
	}
	if s, err := ecdfQuantiles("(b) latency", f.rttVals, fmtMs); err == nil {
		b.WriteString(s)
	}
	if s, err := ecdfQuantiles("(c) packet loss", f.lossVals, fmtPct); err == nil {
		b.WriteString(s)
	}
	fmt.Fprintf(&b, "  median capacity %.3g Mbps (IQR %.3g–%.3g); %.0f%% below 1 Mbps, %.0f%% above 30 Mbps\n",
		f.Capacity.Median, f.Capacity.P25, f.Capacity.P75, 100*f.FracBelow1Mbps, 100*f.FracAbove30Mbps)
	fmt.Fprintf(&b, "  median RTT %.0f ms; %.1f%% above 500 ms\n", f.RTT.Median*1000, 100*f.FracRTTOver500)
	fmt.Fprintf(&b, "  median loss %.3g%%; %.1f%% of users above 1%% loss\n", f.Loss.Median*100, 100*f.FracLossOver1)
	return b.String()
}

// RunFig01 computes the characterization figure.
func RunFig01(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	if v.Len() == 0 {
		return nil, fmt.Errorf("fig01: no end-host users")
	}
	p := v.P
	f := &Fig01{
		capVals:  v.Gather(p.Capacity),
		rttVals:  v.Gather(p.RTT),
		lossVals: v.Gather(p.Loss),
	}
	for _, i := range v.Idx {
		if p.Capacity[i] < 1e6 {
			f.FracBelow1Mbps++
		}
		if p.Capacity[i] > 30e6 {
			f.FracAbove30Mbps++
		}
		if p.RTT[i] > 0.5 {
			f.FracRTTOver500++
		}
		if p.Loss[i] > 0.01 {
			f.FracLossOver1++
		}
	}
	n := float64(v.Len())
	f.FracBelow1Mbps /= n
	f.FracAbove30Mbps /= n
	f.FracRTTOver500 /= n
	f.FracLossOver1 /= n

	capMbps := make([]float64, len(f.capVals))
	for i, v := range f.capVals {
		capMbps[i] = v / 1e6
	}
	var err error
	if f.Capacity, err = stats.Summarize(capMbps); err != nil {
		return nil, err
	}
	if f.RTT, err = stats.Summarize(f.rttVals); err != nil {
		return nil, err
	}
	if f.Loss, err = stats.Summarize(f.lossVals); err != nil {
		return nil, err
	}
	return f, nil
}
