package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// Fig08 reproduces Figure 8: CDFs of peak link utilization per service tier
// within each case-study country (all five tiers in the US; <1 Mbps in
// Botswana; 1–8 Mbps in Saudi Arabia; >32 Mbps in Japan; a tier is plotted
// only with enough users — the paper's rule is 30). Landmarks: US
// utilization falls as the tier rises; Botswana's <1 Mbps tier averages
// ≈80% versus ≈52% across the US; Saudi 1–8 Mbps median ≈60% vs ≈43% in
// the US tier; Japan >32 Mbps averages ≈10%.
type Fig08 struct {
	Groups []Fig08Group
}

// Fig08Group is one country × tier utilization distribution.
type Fig08Group struct {
	Country string
	Tier    stats.Tier
	Values  []float64 `golden:"-"` // utilization fractions
	Mean    float64
	Median  float64
}

// ID implements Report.
func (f *Fig08) ID() string { return "Fig. 8" }

// Title implements Report.
func (f *Fig08) Title() string { return "Peak utilization CDFs by service tier and country" }

// Render implements Report.
func (f *Fig08) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	for _, g := range f.Groups {
		label := fmt.Sprintf("%s %s (n=%d)", g.Country, g.Tier, len(g.Values))
		if s, err := ecdfQuantiles(label, g.Values, fmtPct); err == nil {
			b.WriteString(s)
		}
		fmt.Fprintf(&b, "    mean %.0f%%, median %.0f%%\n", 100*g.Mean, 100*g.Median)
	}
	return b.String()
}

// Group returns the utilization group for a country/tier, if reported.
func (f *Fig08) Group(country string, tier stats.Tier) (Fig08Group, bool) {
	for _, g := range f.Groups {
		if g.Country == country && g.Tier == tier {
			return g, true
		}
	}
	return Fig08Group{}, false
}

// RunFig08 computes the per-tier utilization distributions.
func RunFig08(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	f := &Fig08{}
	p := d.Panel()
	for _, cc := range CaseStudyCountries {
		v := p.Where(dataset.ColCountry(cc), dataset.ColVantage(dataset.VantageDasu))
		for _, tier := range stats.Tiers() {
			var vals []float64
			for _, i := range v.Idx {
				if stats.TierOf(unit.Bitrate(p.Capacity[i])) == tier {
					vals = append(vals, p.PeakUtilization(int(i)))
				}
			}
			if len(vals) < MinGroup {
				continue
			}
			mean, _ := stats.Mean(vals)
			med, _ := stats.Median(vals)
			f.Groups = append(f.Groups, Fig08Group{
				Country: cc, Tier: tier, Values: vals, Mean: mean, Median: med,
			})
		}
	}
	if len(f.Groups) == 0 {
		return nil, fmt.Errorf("fig08: no country×tier group reached %d users", MinGroup)
	}
	return f, nil
}
