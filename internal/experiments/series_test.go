package experiments

import (
	"math"
	"testing"
)

func syntheticSeries(f func(x float64) float64) Series {
	s := Series{Label: "synthetic"}
	for x := 0.25; x <= 64; x *= 2 {
		s.Points = append(s.Points, SeriesPoint{X: x, Y: f(x), N: 100})
	}
	return s
}

func TestDiminishingReturnsHelper(t *testing.T) {
	t.Parallel()
	// A saturating curve has a steeper low half than high half.
	sat := syntheticSeries(func(x float64) float64 { return x / (1 + x/8) })
	lo, hi, ok := DiminishingReturns(sat)
	if !ok {
		t.Fatal("slopes unavailable")
	}
	if lo <= hi {
		t.Errorf("saturating curve: low %.3f ≤ high %.3f", lo, hi)
	}
	// A pure power law has equal halves.
	pow := syntheticSeries(func(x float64) float64 { return math.Pow(x, 0.7) })
	lo, hi, ok = DiminishingReturns(pow)
	if !ok {
		t.Fatal("slopes unavailable")
	}
	if math.Abs(lo-hi) > 0.02 {
		t.Errorf("power law halves should match: %.3f vs %.3f", lo, hi)
	}
	// Degenerate inputs.
	if _, _, ok := DiminishingReturns(Series{}); ok {
		t.Error("empty series should not produce slopes")
	}
}

func TestTailFlatteningHelper(t *testing.T) {
	t.Parallel()
	sat := syntheticSeries(func(x float64) float64 { return x / (1 + x/4) })
	tail, mid, ok := tailFlattening(sat)
	if !ok {
		t.Fatal("series too short")
	}
	if tail >= mid {
		t.Errorf("saturating curve must flatten at the tail: %.3f vs %.3f", tail, mid)
	}
	// Exponential blow-up (super-linear in log space) must NOT flatten.
	exp := syntheticSeries(func(x float64) float64 { return math.Exp(x / 16) })
	tail, mid, ok = tailFlattening(exp)
	if !ok {
		t.Fatal("series too short")
	}
	if tail <= mid {
		t.Errorf("accelerating curve misclassified as flattening: %.3f vs %.3f", tail, mid)
	}
	// Low-N points are excluded, possibly leaving too few.
	thin := syntheticSeries(func(x float64) float64 { return x })
	for i := range thin.Points {
		thin.Points[i].N = 5
	}
	if _, _, ok := tailFlattening(thin); ok {
		t.Error("all-thin series should be rejected")
	}
}
