package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Table01 reproduces Table 1: the within-subject service-upgrade natural
// experiment. For users observed on both a slower and a faster service,
// H states that demand increases on the faster network; the paper finds H
// holding for 66.8% of users on average usage (p ≈ 1.94e-25) and 70.3% on
// peak usage (p ≈ 1.13e-36), both without BitTorrent traffic.
type Table01 struct {
	Average core.Result
	Peak    core.Result
	// Wilcoxon signed-rank cross-checks use the magnitudes of the paired
	// differences where the binomial design uses only their signs.
	WilcoxonAvg  stats.WilcoxonResult
	WilcoxonPeak stats.WilcoxonResult
}

// ID implements Report.
func (t *Table01) ID() string { return "Table 1" }

// Title implements Report.
func (t *Table01) Title() string {
	return "Within-user upgrade experiment: demand on faster vs. slower service"
}

// Render implements Report.
func (t *Table01) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	fmt.Fprintf(&b, "  %-14s %10s %12s\n", "Metric", "% H holds", "p-value")
	for _, r := range []core.Result{t.Average, t.Peak} {
		fmt.Fprintf(&b, "  %-14s %9.1f%% %12s  (%d/%d)\n",
			r.Name, 100*r.Fraction(), formatP(r.PValue()), r.Holds, r.Pairs)
	}
	fmt.Fprintf(&b, "  Wilcoxon signed-rank cross-check: avg p=%s, peak p=%s\n",
		formatP(t.WilcoxonAvg.P), formatP(t.WilcoxonPeak.P))
	return b.String()
}

// RunTable01 evaluates the upgrade experiment on the switch panel.
func RunTable01(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	if len(d.Switches) == 0 {
		return nil, fmt.Errorf("table01: no switch records")
	}
	avg, err := core.RunPaired("Average usage", d.Switches, core.PairedMeanNoBT)
	if err != nil {
		return nil, err
	}
	peak, err := core.RunPaired("Peak usage", d.Switches, core.PairedPeakNoBT)
	if err != nil {
		return nil, err
	}
	t := &Table01{Average: avg, Peak: peak}
	beforeAvg := make([]float64, len(d.Switches))
	afterAvg := make([]float64, len(d.Switches))
	beforePeak := make([]float64, len(d.Switches))
	afterPeak := make([]float64, len(d.Switches))
	for i, s := range d.Switches {
		beforeAvg[i], afterAvg[i] = float64(s.Before.MeanNoBT), float64(s.After.MeanNoBT)
		beforePeak[i], afterPeak[i] = float64(s.Before.PeakNoBT), float64(s.After.PeakNoBT)
	}
	if t.WilcoxonAvg, err = stats.WilcoxonSignedRank(beforeAvg, afterAvg, stats.TailGreater); err != nil {
		return nil, err
	}
	if t.WilcoxonPeak, err = stats.WilcoxonSignedRank(beforePeak, afterPeak, stats.TailGreater); err != nil {
		return nil, err
	}
	return t, nil
}
