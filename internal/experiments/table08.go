package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

// lossBand is one of the paper's packet-loss bins (fractions).
type lossBand struct {
	Lo, Hi float64
}

func (b lossBand) String() string {
	return fmt.Sprintf("(%.3g%%, %.3g%%]", b.Lo*100, b.Hi*100)
}

func (b lossBand) contains(l float64) bool { return l > b.Lo && l <= b.Hi }

// Table08 reproduces Table 8: the packet-loss natural experiment. Controls
// are the lossy bands (0.1–1% and 1–15%); treatments are the clean bands;
// H states that lower loss yields higher average demand. Paper: 55.4%
// (p≈5.9e-6), 53.4%, 58.9% (p≈2.2e-5) and 53.8%, all significant, with the
// strongest effects against the >1% controls.
type Table08 struct {
	Rows []Table08Row
}

// Table08Row is one control/treatment band comparison.
type Table08Row struct {
	Control   lossBand
	Treatment lossBand
	Result    core.Result
	Skipped   bool
}

// ID implements Report.
func (t *Table08) ID() string { return "Table 8" }

// Title implements Report.
func (t *Table08) Title() string {
	return "Packet-loss experiment: does lower loss raise average demand?"
}

// Render implements Report.
func (t *Table08) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	fmt.Fprintf(&b, "  %-18s %-20s %10s %12s %7s\n", "Control", "Treatment", "% H holds", "p-value", "pairs")
	for _, r := range t.Rows {
		if r.Skipped {
			fmt.Fprintf(&b, "  %-18s %-20s %10s %12s %7s\n", r.Control, r.Treatment, "-", "(too few)", "-")
			continue
		}
		star := ""
		if !r.Result.Sig.Significant() {
			star = "*"
		}
		fmt.Fprintf(&b, "  %-18s %-20s %9.1f%%%s %12s %7d\n",
			r.Control, r.Treatment, 100*r.Result.Fraction(), star,
			formatP(r.Result.PValue()), r.Result.Pairs)
	}
	return b.String()
}

// RunTable08 evaluates the loss experiment.
func RunTable08(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	clean1 := lossBand{0, 0.0001}
	clean2 := lossBand{0.0001, 0.001}
	lossy1 := lossBand{0.001, 0.01}
	lossy2 := lossBand{0.01, 0.15}
	comparisons := []struct{ control, treatment lossBand }{
		{lossy1, clean1},
		{lossy1, clean2},
		{lossy2, clean1},
		{lossy2, clean2},
	}
	inBand := func(b lossBand) []*dataset.User {
		var idx []int32
		for _, i := range v.Idx {
			if b.contains(v.P.Loss[i]) {
				idx = append(idx, i)
			}
		}
		return dataset.View{P: v.P, Idx: idx}.Users()
	}
	// Matching on capacity, latency and both market price metrics isolates
	// loss from the market-development confounders it travels with.
	m := core.Matcher{Confounders: []core.Confounder{
		core.ConfounderCapacity(), core.ConfounderRTT(),
		core.ConfounderAccessPrice(), core.ConfounderUpgradeCost(),
	}}
	t := &Table08{}
	populated := 0
	for i, cmp := range comparisons {
		exp := core.Experiment{
			Name:      fmt.Sprintf("%v vs %v", cmp.control, cmp.treatment),
			Treatment: inBand(cmp.treatment),
			Control:   inBand(cmp.control),
			Matcher:   m,
			Outcome:   dataset.MeanUsageNoBT,
			MinPairs:  MinGroup,
		}
		res, err := exp.Run(rng.SplitN("loss", i))
		row := Table08Row{Control: cmp.control, Treatment: cmp.treatment}
		switch {
		case errors.Is(err, core.ErrTooFewPairs):
			row.Skipped = true
		case err != nil:
			return nil, err
		default:
			row.Result = res
			populated++
		}
		t.Rows = append(t.Rows, row)
	}
	if populated == 0 {
		return nil, fmt.Errorf("table08: no comparison matched enough pairs")
	}
	return t, nil
}
