package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// CaseStudyCountries are the four markets of the paper's Sec. 5 case study.
var CaseStudyCountries = []string{"BW", "SA", "US", "JP"}

// Table04 reproduces Table 4: the "typical price of broadband" case study.
// For each market: the user count, the median measured capacity, the
// nearest marketed tier and its USD PPP price, GDP per capita, and that
// price as a share of monthly GDP per capita. Paper anchors: BW 0.517 Mbps
// at $100 (8.0%), SA 4.21 Mbps at $79 (3.3%), US 17.6 Mbps at $53 (1.3%),
// JP 29.0 Mbps at $37 (1.3%).
type Table04 struct {
	Rows []Table04Row
}

// Table04Row is one country of the case study.
type Table04Row struct {
	Country        market.Country
	Users          int
	MedianCapacity unit.Bitrate
	NearestTier    unit.Bitrate
	TierPrice      unit.USD
	IncomeShare    float64
}

// ID implements Report.
func (t *Table04) ID() string { return "Table 4" }

// Title implements Report.
func (t *Table04) Title() string { return "Typical price of broadband in the case-study markets" }

// Render implements Report.
func (t *Table04) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	fmt.Fprintf(&b, "  %-14s %6s %12s %12s %10s %12s %10s\n",
		"Country", "users", "med. cap", "tier", "price", "GDP pc", "% inc.")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-14s %6d %12s %12s %10s %12.0f %9.1f%%\n",
			r.Country.Name, r.Users, r.MedianCapacity, r.NearestTier, r.TierPrice,
			r.Country.GDPPerCapitaPPP, 100*r.IncomeShare)
	}
	return b.String()
}

// RunTable04 computes the case-study table.
func RunTable04(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	t := &Table04{}
	for _, cc := range CaseStudyCountries {
		ms, ok := d.Markets[cc]
		if !ok {
			return nil, fmt.Errorf("table04: no market summary for %s", cc)
		}
		v := d.Panel().Where(dataset.ColCountry(cc), dataset.ColVantage(dataset.VantageDasu))
		if v.Len() < 5 {
			return nil, fmt.Errorf("table04: only %d users in %s", v.Len(), cc)
		}
		med, err := stats.Median(v.Gather(v.P.Capacity))
		if err != nil {
			return nil, err
		}
		// Find the nearest marketed tier from the survey plans.
		cat := market.Catalog{Country: ms.Country}
		for _, p := range d.Plans {
			if p.Country == cc {
				cat.Plans = append(cat.Plans, p)
			}
		}
		tier, ok := cat.NearestTier(unit.Bitrate(med))
		if !ok {
			return nil, fmt.Errorf("table04: no tier found for %s", cc)
		}
		t.Rows = append(t.Rows, Table04Row{
			Country:        ms.Country,
			Users:          v.Len(),
			MedianCapacity: unit.Bitrate(med),
			NearestTier:    tier.Down,
			TierPrice:      tier.PriceUSD,
			IncomeShare:    market.IncomeShare(tier.PriceUSD, ms.Country),
		})
	}
	return t, nil
}
