package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/unit"
)

// Table03 reproduces Table 3: the price-of-access natural experiment.
// Users are grouped by the monthly cost of broadband access in their
// market (≤$25, $25–60, >$60 USD PPP); otherwise-similar users are matched
// across groups and H states that users in more expensive markets impose
// higher peak demand. The paper: 63.4% (p ≈ 8.9e-22) for cheap-vs-mid and
// 72.2% (p ≈ 5.4e-10) for cheap-vs-expensive.
type Table03 struct {
	Rows []Table03Row
}

// Table03Row is one control/treatment group comparison.
type Table03Row struct {
	Control   market.AccessPriceGroup
	Treatment market.AccessPriceGroup
	Result    core.Result
}

// ID implements Report.
func (t *Table03) ID() string { return "Table 3" }

// Title implements Report.
func (t *Table03) Title() string {
	return "Price-of-access experiment: do expensive markets show higher demand?"
}

// Render implements Report.
func (t *Table03) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	fmt.Fprintf(&b, "  %-14s %-14s %10s %12s %7s\n", "Control", "Treatment", "% H holds", "p-value", "pairs")
	for _, r := range t.Rows {
		star := ""
		if !r.Result.Sig.Significant() {
			star = "*"
		}
		fmt.Fprintf(&b, "  %-14s %-14s %9.1f%%%s %12s %7d\n",
			r.Control, r.Treatment, 100*r.Result.Fraction(), star,
			formatP(r.Result.PValue()), r.Result.Pairs)
	}
	return b.String()
}

// RunTable03 evaluates the access-price experiment.
func RunTable03(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	p := v.P
	groups := map[market.AccessPriceGroup]dataset.View{}
	for _, i := range v.Idx {
		g := market.GroupOfAccessPrice(unit.USD(p.AccessPrice[i]))
		gv := groups[g]
		gv.P = p
		gv.Idx = append(gv.Idx, i)
		groups[g] = gv
	}
	// Matching on capacity and connection quality isolates the price arrow.
	m := core.Matcher{Confounders: []core.Confounder{
		core.ConfounderCapacity(), core.ConfounderRTT(), core.ConfounderLoss(),
	}}
	t := &Table03{}
	for _, cmp := range []struct {
		control, treatment market.AccessPriceGroup
	}{
		{market.AccessCheap, market.AccessMid},
		{market.AccessCheap, market.AccessExpensive},
	} {
		exp := core.Experiment{
			Name:      fmt.Sprintf("%v vs %v", cmp.control, cmp.treatment),
			Treatment: groups[cmp.treatment].Users(),
			Control:   groups[cmp.control].Users(),
			Matcher:   m,
			Outcome:   dataset.PeakUsageNoBT,
			MinPairs:  MinGroup,
		}
		res, err := exp.Run(rng.Split(cmp.treatment.String()))
		if err != nil {
			return nil, fmt.Errorf("table03 %v: %w", cmp.treatment, err)
		}
		t.Rows = append(t.Rows, Table03Row{Control: cmp.control, Treatment: cmp.treatment, Result: res})
	}
	return t, nil
}
