// Package experiments reproduces every table and figure of the paper's
// evaluation against a generated dataset. Each experiment is a module that
// computes a typed result and renders the same rows/series the paper
// reports; the registry enumerates them all for the repro driver and the
// benchmark harness.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// Report is a reproduced table or figure.
type Report interface {
	// ID is the paper artifact this reproduces, e.g. "Table 2" or "Fig. 6".
	ID() string
	// Title is a one-line description.
	Title() string
	// Render returns the textual reproduction (rows or series).
	Render() string
}

// Runner computes one report from a dataset.
type Runner func(d *dataset.Dataset, rng *randx.Source) (Report, error)

// Entry pairs a report identity with its runner.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// MinGroup is the smallest population an experiment group must have to be
// reported; the paper uses 30 for per-tier country plots, but reproduction
// worlds may be smaller, so experiments degrade to this floor.
const MinGroup = 10

// SeriesPoint is one aggregated point of a figure series.
type SeriesPoint struct {
	X      float64 // bin position (Mbps for capacity axes)
	Y      float64 // aggregated value
	Lo, Hi float64 // 95% CI of the mean
	N      int
}

// Series is a labeled sequence of points.
type Series struct {
	Label  string
	Points []SeriesPoint
}

// render formats a series as aligned rows.
func (s Series) render(xName, yName string, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s:\n", s.Label)
	fmt.Fprintf(&b, "    %12s %12s %12s %12s %6s\n", xName, yName, "ci-lo", "ci-hi", "n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "    %12.4g %12.4g %12.4g %12.4g %6d\n",
			p.X, p.Y*scale, p.Lo*scale, p.Hi*scale, p.N)
	}
	return b.String()
}

// classSeries aggregates one usage column by the paper's 100 kbps × 2^k
// capacity classes: per-class mean with 95% CI, positioned at the geometric
// center of the class in Mbps. Classes with fewer than minN users are
// dropped. The aggregation runs columnar — per-class index vectors into
// col, no per-class value copies.
func classSeries(label string, v dataset.View, col []float64, minN int) Series {
	groups := byClass(v)
	classes := make([]stats.CapacityClass, 0, len(groups))
	for c := range groups {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	s := Series{Label: label}
	for _, c := range classes {
		idx := groups[c].Idx
		if len(idx) < minN {
			continue
		}
		iv, err := stats.MeanCIIdx(col, idx, 0.95)
		if err != nil {
			continue
		}
		x := math.Sqrt(c.Lower().Mbps() * c.Upper().Mbps())
		s.Points = append(s.Points, SeriesPoint{X: x, Y: iv.Point, Lo: iv.Lo, Hi: iv.Hi, N: len(idx)})
	}
	return s
}

// byClass splits a view into per-capacity-class sub-views, preserving view
// order within each class.
func byClass(v dataset.View) map[stats.CapacityClass]dataset.View {
	groups := make(map[stats.CapacityClass][]int32)
	for _, i := range v.Idx {
		c := stats.ClassOf(unit.Bitrate(v.P.Capacity[i]))
		groups[c] = append(groups[c], i)
	}
	out := make(map[stats.CapacityClass]dataset.View, len(groups))
	for c, idx := range groups {
		out[c] = dataset.View{P: v.P, Idx: idx}
	}
	return out
}

// usagePanels is the four-way metric × BT-handling sweep Figs. 2 and 6
// share: each entry names a subfigure and its usage column.
func usagePanels(p *dataset.Panel) []struct {
	Name string
	Col  []float64
} {
	return []struct {
		Name string
		Col  []float64
	}{
		{"(a) mean w/ BT", p.UsageMean},
		{"(b) 95th %ile w/ BT", p.UsagePeak},
		{"(c) mean no BT", p.UsageMeanNoBT},
		{"(d) 95th %ile no BT", p.UsagePeakNoBT},
	}
}

// seriesLogCorrelation is the log-log Pearson correlation of a binned
// series — the r the paper quotes for Figs. 2 and 3.
func seriesLogCorrelation(s Series) (float64, error) {
	xs := make([]float64, 0, len(s.Points))
	ys := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	return stats.LogPearson(xs, ys)
}

// ecdfQuantiles renders an ECDF compactly as its key quantiles.
func ecdfQuantiles(label string, xs []float64, format func(float64) string) (string, error) {
	e, err := stats.NewECDF(xs)
	if err != nil {
		return "", fmt.Errorf("%s: %w", label, err)
	}
	return fmt.Sprintf("  %-28s %s\n", label+":", e.RenderQuantiles(format)), nil
}

// fmtMbps formats a bps value in Mbps for rendering.
func fmtMbps(v float64) string { return fmt.Sprintf("%.3g Mbps", v/1e6) }

// fmtMs formats a seconds value in milliseconds.
func fmtMs(v float64) string { return fmt.Sprintf("%.3g ms", v*1000) }

// fmtPct formats a fraction as percent.
func fmtPct(v float64) string { return fmt.Sprintf("%.3g%%", v*100) }

// dasuView selects the end-host panel (all years unless year > 0) as a
// columnar view.
func dasuView(d *dataset.Dataset, year int) dataset.View {
	preds := []dataset.ColPred{dataset.ColVantage(dataset.VantageDasu)}
	if year > 0 {
		preds = append(preds, dataset.ColYear(year))
	}
	return d.Panel().Where(preds...)
}

// yearsOf gathers the sorted distinct observation years of a view — the
// one column-gather seam behind primaryYear and Fig. 6's cohort list
// (which previously each re-scanned the user structs).
func yearsOf(v dataset.View) []int {
	set := map[int]bool{}
	for _, i := range v.Idx {
		set[v.P.Year[i]] = true
	}
	years := make([]int, 0, len(set))
	for y := range set {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// primaryYear returns the latest year present in the panel.
func primaryYear(d *dataset.Dataset) int {
	year := 0
	for _, y := range yearsOf(d.Panel().All()) {
		if y > year {
			year = y
		}
	}
	return year
}

// formatP renders p-values the way the paper's tables do.
func formatP(p float64) string { return stats.FormatP(p) }

// header renders the standard report heading.
func header(id, title string) string {
	return fmt.Sprintf("=== %s — %s ===\n", id, title)
}

// tierKey renders a capacity in the paper's tier buckets used by Fig. 5
// (0.25–1, 1–4, 4–16, 16–64, 64–256 Mbps).
type switchTier int

var switchTierBounds = []unit.Bitrate{
	unit.KbpsOf(250), unit.MbpsOf(1), unit.MbpsOf(4), unit.MbpsOf(16), unit.MbpsOf(64), unit.MbpsOf(256),
}

func switchTierOf(r unit.Bitrate) (switchTier, bool) {
	for i := 0; i+1 < len(switchTierBounds); i++ {
		if r > switchTierBounds[i] && r <= switchTierBounds[i+1] {
			return switchTier(i), true
		}
	}
	return 0, false
}

func (t switchTier) String() string {
	names := []string{"0.25-1", "1-4", "4-16", "16-64", "64-256"}
	if int(t) < len(names) {
		return names[t] + " Mbps"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}
