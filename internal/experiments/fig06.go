package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig06 reproduces Figure 6 and the Sec. 4 longitudinal analysis: demand
// versus capacity class, one curve per year. The paper's finding is a
// non-result with teeth: despite the multi-fold growth in global traffic,
// within-class demand stays constant across 2011–2013 — growth comes from
// subscribers moving to higher classes, not from using existing classes
// harder. The companion natural experiment (same class, 2013 vs 2011) must
// therefore come out null.
type Fig06 struct {
	Years  []int
	Panels []Fig06Panel
	// YearExperiments tests, per populated class, H: 2013 users impose
	// higher peak demand than 2011 users of the same class.
	YearExperiments []Fig06Exp
}

// Fig06Panel is one subfigure (metric × BT handling) with one series per year.
type Fig06Panel struct {
	Name   string
	Series []Series
}

// Fig06Exp is a per-class cross-year comparison.
type Fig06Exp struct {
	Class   stats.CapacityClass
	Result  core.Result
	Skipped bool
}

// ID implements Report.
func (f *Fig06) ID() string { return "Fig. 6" }

// Title implements Report.
func (f *Fig06) Title() string { return "Longitudinal demand vs. capacity, by year (2011–2013)" }

// Render implements Report.
func (f *Fig06) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "  panel %s\n", p.Name)
		for _, s := range p.Series {
			b.WriteString(s.render("cap (Mbps)", "usage (Mbps)", 1e-6))
		}
	}
	b.WriteString("  cross-year experiment per class (H: later year uses more; expected NULL):\n")
	for _, e := range f.YearExperiments {
		if e.Skipped {
			fmt.Fprintf(&b, "    %-22s (too few pairs)\n", e.Class)
			continue
		}
		verdict := "null ✓"
		if e.Result.Sig.Significant() {
			verdict = "SIGNIFICANT"
		}
		fmt.Fprintf(&b, "    %-22s %5.1f%% p=%s  %s\n",
			e.Class, 100*e.Result.Fraction(), formatP(e.Result.PValue()), verdict)
	}
	return b.String()
}

// RunFig06 computes the longitudinal figure and its companion experiment.
func RunFig06(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	dasu := dasuView(d, 0)
	years := yearsOf(dasu)
	if len(years) < 2 {
		return nil, fmt.Errorf("fig06: need at least two cohort years, have %v", years)
	}
	f := &Fig06{Years: years}
	yearViews := make([]dataset.View, len(years))
	for i, y := range years {
		yearViews[i] = dasu.Where(dataset.ColYear(y))
	}
	for _, p := range usagePanels(dasu.P) {
		panel := Fig06Panel{Name: p.Name}
		for i, y := range years {
			panel.Series = append(panel.Series, classSeries(fmt.Sprintf("%d", y), yearViews[i], p.Col, MinGroup))
		}
		f.Panels = append(f.Panels, panel)
	}

	// Companion experiment: within each class, latest year vs earliest.
	first, last := years[0], years[len(years)-1]
	oldByClass := byClass(yearViews[0])
	newByClass := byClass(yearViews[len(years)-1])
	var classes []stats.CapacityClass
	for c := range newByClass {
		if oldByClass[c].Len() >= MinGroup && newByClass[c].Len() >= MinGroup {
			classes = append(classes, c)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		exp := core.Experiment{
			Name:      fmt.Sprintf("%v: %d vs %d", c, last, first),
			Treatment: newByClass[c].Users(),
			Control:   oldByClass[c].Users(),
			Matcher:   quadMatcher(),
			Outcome:   dataset.PeakUsageNoBT,
			MinPairs:  MinGroup,
		}
		res, err := exp.Run(rng.SplitN("year", int(c)))
		e := Fig06Exp{Class: c}
		switch {
		case errors.Is(err, core.ErrTooFewPairs):
			e.Skipped = true
		case err != nil:
			return nil, err
		default:
			e.Result = res
		}
		f.YearExperiments = append(f.YearExperiments, e)
	}
	if len(f.YearExperiments) == 0 {
		return nil, fmt.Errorf("fig06: no class populated in both %d and %d", first, last)
	}
	return f, nil
}
