package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig05 reproduces Figure 5: the average change in demand when upgrading,
// grouped by the initial service tier (0.25–1, 1–4, 4–16, 16–64, 64–256
// Mbps), for mean and peak usage, with and without BitTorrent. The paper's
// shape: clear increases when upgrading from slow tiers, noisy/insignificant
// changes above ≈16 Mbps (wide confidence intervals).
type Fig05 struct {
	Panels []Fig05Panel
}

// Fig05Panel is one of the four subfigures.
type Fig05Panel struct {
	Name string
	Rows []Fig05Row
}

// Fig05Row is the average demand change for upgrades out of one tier.
type Fig05Row struct {
	FromTier string
	Change   stats.Interval // bps
	N        int
}

// ID implements Report.
func (f *Fig05) ID() string { return "Fig. 5" }

// Title implements Report.
func (f *Fig05) Title() string { return "Change in demand when switching, by initial service tier" }

// Render implements Report.
func (f *Fig05) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "  panel %s\n", p.Name)
		fmt.Fprintf(&b, "    %-14s %14s %22s %5s\n", "initial tier", "Δ (Mbps)", "95% CI", "n")
		for _, r := range p.Rows {
			fmt.Fprintf(&b, "    %-14s %14.4f [%9.4f, %9.4f] %5d\n",
				r.FromTier, r.Change.Point/1e6, r.Change.Lo/1e6, r.Change.Hi/1e6, r.N)
		}
	}
	return b.String()
}

// RunFig05 computes per-tier upgrade deltas.
func RunFig05(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	if len(d.Switches) == 0 {
		return nil, fmt.Errorf("fig05: no switch records")
	}
	panels := []struct {
		name  string
		delta func(dataset.Switch) float64
	}{
		{"(a) mean w/ BT", func(s dataset.Switch) float64 { return float64(s.After.Mean - s.Before.Mean) }},
		{"(b) 95th %ile w/ BT", func(s dataset.Switch) float64 { return float64(s.After.Peak - s.Before.Peak) }},
		{"(c) mean no BT", func(s dataset.Switch) float64 { return float64(s.After.MeanNoBT - s.Before.MeanNoBT) }},
		{"(d) 95th %ile no BT", func(s dataset.Switch) float64 { return float64(s.After.PeakNoBT - s.Before.PeakNoBT) }},
	}
	f := &Fig05{}
	for _, p := range panels {
		groups := make(map[switchTier][]float64)
		for _, s := range d.Switches {
			tier, ok := switchTierOf(s.FromDown)
			if !ok {
				continue
			}
			groups[tier] = append(groups[tier], p.delta(s))
		}
		panel := Fig05Panel{Name: p.name}
		for t := switchTier(0); t < 5; t++ {
			vals := groups[t]
			if len(vals) < 3 {
				continue
			}
			iv, err := stats.MeanCI(vals, 0.95)
			if err != nil {
				continue
			}
			panel.Rows = append(panel.Rows, Fig05Row{FromTier: t.String(), Change: iv, N: len(vals)})
		}
		if len(panel.Rows) == 0 {
			return nil, fmt.Errorf("fig05: panel %q has no populated tiers", p.name)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f, nil
}
