package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// Table02 reproduces Table 2: the matched-pair capacity experiment. Users
// in adjacent capacity classes are matched on connection quality (latency,
// loss) and market prices (access price, upgrade cost); H states the
// higher-capacity user imposes higher peak demand. The paper's shape: for
// the global Dasu panel the effect is strong at low capacities (75.2% in
// the lowest bins) and decays to chance above ≈12.8 Mbps; for the US-only
// FCC panel every bin stays significant.
type Table02 struct {
	Dasu []Table02Row
	FCC  []Table02Row
	// DasuFDR and FCCFDR mark, per populated row, whether it survives the
	// Benjamini–Hochberg correction at q=0.05 across its panel's family —
	// a multiplicity guard the paper leaves implicit (it runs every rung
	// at raw α=0.05).
	DasuFDR []bool
	FCCFDR  []bool
}

// Table02Row is one control/treatment class comparison.
type Table02Row struct {
	Control   stats.CapacityClass
	Treatment stats.CapacityClass
	Result    core.Result
	Skipped   bool // too few matched pairs in this world
}

// ID implements Report.
func (t *Table02) ID() string { return "Table 2" }

// Title implements Report.
func (t *Table02) Title() string {
	return "Matched-pair experiment: does higher capacity raise peak demand?"
}

// Render implements Report.
func (t *Table02) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	render := func(name string, rows []Table02Row, fdr []bool) {
		fmt.Fprintf(&b, "  %s data\n", name)
		fmt.Fprintf(&b, "    %-22s %-22s %10s %12s %7s %5s\n", "Control", "Treatment", "% H holds", "p-value", "pairs", "FDR")
		fi := 0
		for _, r := range rows {
			if r.Skipped {
				fmt.Fprintf(&b, "    %-22s %-22s %10s %12s %7s %5s\n",
					r.Control, r.Treatment, "-", "(too few)", "-", "-")
				continue
			}
			star := ""
			if !r.Result.Sig.Significant() {
				star = "*"
			}
			fdrMark := "-"
			if fi < len(fdr) {
				if fdr[fi] {
					fdrMark = "yes"
				} else {
					fdrMark = "no"
				}
				fi++
			}
			fmt.Fprintf(&b, "    %-22s %-22s %9.1f%%%s %12s %7d %5s\n",
				r.Control, r.Treatment, 100*r.Result.Fraction(), star, formatP(r.Result.PValue()), r.Result.Pairs, fdrMark)
		}
	}
	render("Dasu", t.Dasu, t.DasuFDR)
	render("FCC", t.FCC, t.FCCFDR)
	return b.String()
}

// RunTable02 evaluates the capacity matching experiment for both panels.
func RunTable02(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	p := d.Panel()
	dasu := dasuView(d, 0)
	fcc := p.Where(dataset.ColVantage(dataset.VantageGateway))
	t := &Table02{}
	var err error
	// The paper's Dasu rows span (0.1,0.2] → (51.2,102.4]; its FCC rows
	// start at (0.4,0.8].
	t.Dasu, err = capacityLadder(dasu, stats.ClassOf(unit.KbpsOf(150)), 9, quadMatcher(), rng.Split("dasu"))
	if err != nil {
		return nil, fmt.Errorf("table02 dasu: %w", err)
	}
	t.FCC, err = capacityLadder(fcc, stats.ClassOf(unit.KbpsOf(600)), 7, qualityOnlyMatcher(), rng.Split("fcc"))
	if err != nil {
		return nil, fmt.Errorf("table02 fcc: %w", err)
	}
	if t.DasuFDR, err = ladderFDR(t.Dasu); err != nil {
		return nil, err
	}
	if t.FCCFDR, err = ladderFDR(t.FCC); err != nil {
		return nil, err
	}
	return t, nil
}

// ladderFDR applies the Benjamini–Hochberg correction across a panel's
// populated rungs.
func ladderFDR(rows []Table02Row) ([]bool, error) {
	var pvals []float64
	for _, r := range rows {
		if !r.Skipped {
			pvals = append(pvals, r.Result.PValue())
		}
	}
	if len(pvals) == 0 {
		return nil, nil
	}
	return stats.BenjaminiHochberg(pvals, 0.05)
}

// quadMatcher matches on the full confounder set used for cross-market
// comparisons.
func quadMatcher() core.Matcher {
	return core.Matcher{Confounders: []core.Confounder{
		core.ConfounderRTT(), core.ConfounderLoss(),
		core.ConfounderAccessPrice(), core.ConfounderUpgradeCost(),
	}}
}

// qualityOnlyMatcher matches on connection quality only — appropriate
// within a single market (the FCC panel is US-only, so prices are constant).
func qualityOnlyMatcher() core.Matcher {
	return core.Matcher{Confounders: []core.Confounder{
		core.ConfounderRTT(), core.ConfounderLoss(),
	}}
}

// capacityLadder runs the adjacent-class experiment for `steps` rungs
// starting at class `first`. The matcher needs full user rows, so each
// populated rung materializes its two classes from the columnar view.
func capacityLadder(v dataset.View, first stats.CapacityClass, steps int, m core.Matcher, rng *randx.Source) ([]Table02Row, error) {
	classes := byClass(v)
	var rows []Table02Row
	for k := first; k < first+stats.CapacityClass(steps); k++ {
		control, treatment := classes[k].Users(), classes[k+1].Users()
		row := Table02Row{Control: k, Treatment: k + 1}
		exp := core.Experiment{
			Name:      fmt.Sprintf("%v vs %v", k, k+1),
			Treatment: treatment,
			Control:   control,
			Matcher:   m,
			Outcome:   dataset.PeakUsageNoBT,
			MinPairs:  MinGroup,
		}
		res, err := exp.Run(rng.SplitN("ladder", int(k)))
		switch {
		case errors.Is(err, core.ErrTooFewPairs):
			row.Skipped = true
		case err != nil:
			return nil, err
		default:
			row.Result = res
		}
		rows = append(rows, row)
	}
	populated := 0
	for _, r := range rows {
		if !r.Skipped {
			populated++
		}
	}
	if populated == 0 {
		return nil, fmt.Errorf("no populated ladder rungs")
	}
	return rows, nil
}
