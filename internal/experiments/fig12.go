package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig12 reproduces Figure 12: the packet-loss CDF for users in India versus
// the rest of the population. India's distribution sits well to the right —
// the paper's evidence that poor connection quality (together with Fig. 11's
// latencies) is the probable cause of India's depressed demand.
type Fig12 struct {
	India, Rest             []float64 `golden:"-"` // loss fractions
	MedianIndia, MedianRest float64
	FracIndiaOver1          float64 // share of Indian users above 1% loss
	FracRestOver1           float64
	// KS quantifies the CDF separation the figure shows.
	KS stats.KSResult
}

// ID implements Report.
func (f *Fig12) ID() string { return "Fig. 12" }

// Title implements Report.
func (f *Fig12) Title() string { return "Packet-loss CDFs: India vs. the rest of the population" }

// Render implements Report.
func (f *Fig12) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	if s, err := ecdfQuantiles("India", f.India, fmtPct); err == nil {
		b.WriteString(s)
	}
	if s, err := ecdfQuantiles("Rest of population", f.Rest, fmtPct); err == nil {
		b.WriteString(s)
	}
	fmt.Fprintf(&b, "  median loss: India %.3g%% vs rest %.3g%%; above 1%%: India %.0f%% vs rest %.0f%%\n",
		f.MedianIndia*100, f.MedianRest*100, 100*f.FracIndiaOver1, 100*f.FracRestOver1)
	fmt.Fprintf(&b, "  KS separation D=%.3f (p=%s)\n", f.KS.D, formatP(f.KS.P))
	return b.String()
}

// RunFig12 computes the India loss comparison.
func RunFig12(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	p := v.P
	inCode, inKnown := p.Countries.Code("IN")
	f := &Fig12{}
	for _, i := range v.Idx {
		l := p.Loss[i]
		if inKnown && p.Country[i] == inCode {
			f.India = append(f.India, l)
			if l > 0.01 {
				f.FracIndiaOver1++
			}
		} else {
			f.Rest = append(f.Rest, l)
			if l > 0.01 {
				f.FracRestOver1++
			}
		}
	}
	if len(f.India) < MinGroup {
		return nil, fmt.Errorf("fig12: only %d Indian users", len(f.India))
	}
	f.FracIndiaOver1 /= float64(len(f.India))
	f.FracRestOver1 /= float64(len(f.Rest))
	var err error
	if f.MedianIndia, err = stats.Median(f.India); err != nil {
		return nil, err
	}
	if f.MedianRest, err = stats.Median(f.Rest); err != nil {
		return nil, err
	}
	if f.KS, err = stats.KSTest(f.India, f.Rest); err != nil {
		return nil, err
	}
	return f, nil
}
