package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

// Fig03 reproduces Figure 3: mean and peak demand by capacity class for the
// FCC gateway panel versus US end-host (Dasu) users when not using
// BitTorrent. The paper's reading: average usage is slightly higher for the
// end-host panel (its sampling is biased toward busy hours) while peak
// usage is nearly identical; both correlate strongly with capacity
// (r ≈ 0.915 and 0.905).
type Fig03 struct {
	MeanFCC, MeanDasu Series
	PeakFCC, PeakDasu Series
	RMean, RPeak      float64 // over the pooled panels, as the paper reports one r per subfigure
	// MeanRatio and PeakRatio compare Dasu to FCC within shared classes.
	MeanRatio, PeakRatio float64
}

// ID implements Report.
func (f *Fig03) ID() string { return "Fig. 3" }

// Title implements Report.
func (f *Fig03) Title() string {
	return "FCC gateway vs. Dasu US end-host demand by capacity (no BitTorrent)"
}

// Render implements Report.
func (f *Fig03) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	fmt.Fprintf(&b, "  (a) mean (r = %.3f)\n", f.RMean)
	b.WriteString(f.MeanFCC.render("cap (Mbps)", "usage (Mbps)", 1e-6))
	b.WriteString(f.MeanDasu.render("cap (Mbps)", "usage (Mbps)", 1e-6))
	fmt.Fprintf(&b, "  (b) 95th %%ile (r = %.3f)\n", f.RPeak)
	b.WriteString(f.PeakFCC.render("cap (Mbps)", "usage (Mbps)", 1e-6))
	b.WriteString(f.PeakDasu.render("cap (Mbps)", "usage (Mbps)", 1e-6))
	fmt.Fprintf(&b, "  Dasu/FCC ratio in shared classes: mean ×%.2f, peak ×%.2f\n", f.MeanRatio, f.PeakRatio)
	return b.String()
}

// RunFig03 computes the cross-vantage comparison.
func RunFig03(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	year := primaryYear(d)
	p := d.Panel()
	fcc := p.Where(dataset.ColVantage(dataset.VantageGateway))
	dasuUS := p.Where(
		dataset.ColVantage(dataset.VantageDasu), dataset.ColCountry("US"), dataset.ColYear(year))
	if fcc.Len() == 0 || dasuUS.Len() == 0 {
		return nil, fmt.Errorf("fig03: need both panels (fcc=%d, dasu-us=%d)", fcc.Len(), dasuUS.Len())
	}
	f := &Fig03{
		MeanFCC:  classSeries("FCC mean", fcc, p.UsageMeanNoBT, MinGroup),
		MeanDasu: classSeries("Dasu US mean", dasuUS, p.UsageMeanNoBT, MinGroup),
		PeakFCC:  classSeries("FCC 95th %ile", fcc, p.UsagePeakNoBT, MinGroup),
		PeakDasu: classSeries("Dasu US 95th %ile", dasuUS, p.UsagePeakNoBT, MinGroup),
	}
	if len(f.MeanFCC.Points) < 2 || len(f.MeanDasu.Points) < 2 {
		return nil, fmt.Errorf("fig03: too few populated classes")
	}
	pooledR := func(a, b Series) (float64, error) {
		joined := Series{Points: append(append([]SeriesPoint{}, a.Points...), b.Points...)}
		return seriesLogCorrelation(joined)
	}
	var err error
	if f.RMean, err = pooledR(f.MeanFCC, f.MeanDasu); err != nil {
		return nil, err
	}
	if f.RPeak, err = pooledR(f.PeakFCC, f.PeakDasu); err != nil {
		return nil, err
	}
	f.MeanRatio = sharedClassRatio(f.MeanDasu, f.MeanFCC)
	f.PeakRatio = sharedClassRatio(f.PeakDasu, f.PeakFCC)
	return f, nil
}

// sharedClassRatio averages a/b over x-positions both series populate.
func sharedClassRatio(a, b Series) float64 {
	bByX := make(map[float64]float64, len(b.Points))
	for _, p := range b.Points {
		bByX[p.X] = p.Y
	}
	total, n := 0.0, 0
	for _, p := range a.Points {
		if bv, ok := bByX[p.X]; ok && bv > 0 {
			total += p.Y / bv
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
