package experiments

import (
	"testing"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/market"
	"github.com/nwca/broadband/internal/synth"
)

// Every runner must fail cleanly — never panic, never return a nil report —
// on degenerate datasets.

func runAllAgainst(t *testing.T, d *dataset.Dataset, label string) {
	t.Helper()
	entries := append(Registry(), Extensions()...)
	for _, e := range entries {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s panicked on %s dataset: %v", e.ID, label, r)
				}
			}()
			rep, err := e.Run(d, rng(label+e.ID))
			if err == nil && rep == nil {
				t.Errorf("%s returned nil report without error on %s dataset", e.ID, label)
			}
			if err == nil && rep != nil && rep.Render() == "" {
				t.Errorf("%s returned empty render on %s dataset", e.ID, label)
			}
		}()
	}
}

func TestRunnersOnEmptyDataset(t *testing.T) {
	t.Parallel()
	runAllAgainst(t, &dataset.Dataset{Markets: map[string]market.MarketSummary{}}, "empty")
}

func TestRunnersOnSwitchlessDataset(t *testing.T) {
	t.Parallel()
	d := evalData(t)
	clone := *d
	clone.Switches = nil
	// The switch-panel artifacts must error; everything else must run.
	for _, id := range []string{"Table 1", "Fig. 4", "Fig. 5"} {
		e, _ := Find(id)
		if _, err := e.Run(&clone, rng("noswitch"+id)); err == nil {
			t.Errorf("%s should fail without switch records", id)
		}
	}
	for _, id := range []string{"Fig. 1", "Table 2", "Fig. 10"} {
		e, _ := Find(id)
		if _, err := e.Run(&clone, rng("noswitch"+id)); err != nil {
			t.Errorf("%s should not need switches: %v", id, err)
		}
	}
}

func TestRunnersOnSingleCountryDataset(t *testing.T) {
	t.Parallel()
	// A US-only world: the case-study artifacts (which need BW/SA/JP) and
	// the India artifacts must fail cleanly; US-internal analyses survive.
	w, err := synth.Build(synth.Config{
		Seed: 55, Users: 300, FCCUsers: 60, Days: 1, SwitchTarget: 40,
		Profiles: usOnlyProfiles(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	runAllAgainst(t, &w.Data, "us-only")
	for _, id := range []string{"Table 4", "Fig. 7", "Fig. 11", "Fig. 12"} {
		e, _ := Find(id)
		if _, err := e.Run(&w.Data, rng("us"+id)); err == nil {
			t.Errorf("%s should fail on a US-only world", id)
		}
	}
	for _, id := range []string{"Fig. 1", "Fig. 2", "Table 1"} {
		e, _ := Find(id)
		if _, err := e.Run(&w.Data, rng("us"+id)); err != nil {
			t.Errorf("%s should survive a US-only world: %v", id, err)
		}
	}
}

func usOnlyProfiles(t *testing.T) []market.Profile {
	t.Helper()
	us, ok := market.FindProfile("US")
	if !ok {
		t.Fatal("no US profile")
	}
	return []market.Profile{us}
}

func TestRunnersOnTinyDataset(t *testing.T) {
	t.Parallel()
	w, err := synth.Build(synth.Config{Seed: 56, Users: 25, FCCUsers: 5, Days: 1, SwitchTarget: 3})
	if err != nil {
		t.Fatal(err)
	}
	runAllAgainst(t, &w.Data, "tiny")
}
