package experiments

import (
	"strings"
	"testing"

	"github.com/nwca/broadband/internal/traffic"
)

func TestExtensionsRegistry(t *testing.T) {
	t.Parallel()
	exts := Extensions()
	if len(exts) != 3 {
		t.Fatalf("extensions = %d", len(exts))
	}
	d := evalData(t)
	for _, e := range exts {
		rep, err := e.Run(d, rng(e.ID))
		if err != nil {
			t.Errorf("%s failed: %v", e.ID, err)
			continue
		}
		if rep.ID() != e.ID || !strings.Contains(rep.Render(), e.ID) {
			t.Errorf("%s render/id mismatch", e.ID)
		}
	}
	if _, ok := FindExtension("Ext. A"); !ok {
		t.Error("FindExtension failed")
	}
	if _, ok := FindExtension("Ext. Z"); ok {
		t.Error("FindExtension resolved a bogus id")
	}
}

func TestExtACapsSuppressDemand(t *testing.T) {
	t.Parallel()
	rep, err := RunExtA(evalData(t), rng("extA"))
	if err != nil {
		t.Fatal(err)
	}
	e := rep.(*ExtA)
	if e.CappedShare <= 0.02 || e.CappedShare >= 0.6 {
		t.Errorf("capped share = %.2f, expected a real minority", e.CappedShare)
	}
	if e.Skipped && e.TightSkipped {
		t.Fatal("both comparisons skipped")
	}
	// Most caps are generous and never bind, so the any-cap comparison may
	// sit near chance; it must not invert hard.
	if !e.Skipped && e.Result.Fraction() < 0.45 {
		t.Errorf("any-cap comparison inverted: %v", e.Result)
	}
	// The binding caps carry the effect; at the eval world's size the
	// tight group holds only a few dozen pairs, so the strict bound only
	// applies to well-powered samples (the 12k-user bbrepro run shows
	// 66% at n=83).
	if e.TightSkipped {
		t.Fatal("tight-cap comparison skipped")
	}
	if e.TightResult.Pairs >= 60 {
		if e.TightResult.Fraction() <= 0.54 {
			t.Errorf("binding caps should clearly suppress demand: %v", e.TightResult)
		}
	} else if e.TightResult.Fraction() < 0.40 {
		t.Errorf("tight-cap comparison inverted hard at n=%d: %v", e.TightResult.Pairs, e.TightResult)
	}
}

func TestExtCDesignsAgree(t *testing.T) {
	t.Parallel()
	rep, err := RunExtC(evalData(t), rng("extC"))
	if err != nil {
		t.Fatal(err)
	}
	e := rep.(*ExtC)
	agree, populated := 0, 0
	for _, r := range e.Rows {
		if r.NNSkipped || r.QEDSkipped {
			continue
		}
		populated++
		if r.Agree() {
			agree++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d rungs populated in both designs", populated)
	}
	if float64(agree)/float64(populated) < 0.7 {
		t.Errorf("the designs disagree on %d/%d rungs", populated-agree, populated)
	}
}

func TestExtBArchetypeContrasts(t *testing.T) {
	t.Parallel()
	rep, err := RunExtB(evalData(t), rng("extB"))
	if err != nil {
		t.Fatal(err)
	}
	e := rep.(*ExtB)
	byArch := map[traffic.Archetype]ExtBRow{}
	for _, r := range e.Rows {
		byArch[r.Archetype] = r
	}
	str, okS := byArch[traffic.Streamer]
	bro, okB := byArch[traffic.Browser]
	if !okS || !okB {
		t.Fatal("streamer/browser rows missing")
	}
	if str.MeanDemand.Point <= bro.MeanDemand.Point {
		t.Errorf("streamers should out-consume browsers: %.3f vs %.3f Mbps",
			str.MeanDemand.Point/1e6, bro.MeanDemand.Point/1e6)
	}
	if !e.Skipped {
		if e.StreamerVsBrowser.Fraction() <= 0.55 {
			t.Errorf("matched streamer-vs-browser too weak: %v", e.StreamerVsBrowser)
		}
	}
	if e.GamerHighRTTBelowMedian > 0 && e.GamerHighRTTBelowMedian < 0.5 {
		t.Errorf("high-latency gamers should skew below their category median: %.2f", e.GamerHighRTTBelowMedian)
	}
}
