package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/core"
	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
)

// latencyBand is one of the paper's exponential latency bins (seconds).
type latencyBand struct {
	Lo, Hi float64
}

func (b latencyBand) String() string {
	return fmt.Sprintf("(%.0f, %.0f] ms", b.Lo*1000, b.Hi*1000)
}

func (b latencyBand) contains(rtt float64) bool { return rtt > b.Lo && rtt <= b.Hi }

// Table07 reproduces Table 7: the latency natural experiment. The control
// group sits in the problematic (512, 2048] ms band; each treatment group
// is a faster band; H states that lower latency yields higher peak demand.
// Paper: 63.5% / 63.4% / 59.4% / 56.3% (all significant) for bands
// (0,64], (64,128], (128,256] and (256,512] ms.
type Table07 struct {
	Control latencyBand
	Rows    []Table07Row
}

// Table07Row is one treatment band.
type Table07Row struct {
	Treatment latencyBand
	Result    core.Result
	Skipped   bool
}

// ID implements Report.
func (t *Table07) ID() string { return "Table 7" }

// Title implements Report.
func (t *Table07) Title() string {
	return "Latency experiment: does lower latency raise peak demand?"
}

// Render implements Report.
func (t *Table07) Render() string {
	var b strings.Builder
	b.WriteString(header(t.ID(), t.Title()))
	fmt.Fprintf(&b, "  control group: %v\n", t.Control)
	fmt.Fprintf(&b, "  %-18s %10s %12s %7s\n", "Treatment", "% H holds", "p-value", "pairs")
	for _, r := range t.Rows {
		if r.Skipped {
			fmt.Fprintf(&b, "  %-18s %10s %12s %7s\n", r.Treatment, "-", "(too few)", "-")
			continue
		}
		star := ""
		if !r.Result.Sig.Significant() {
			star = "*"
		}
		fmt.Fprintf(&b, "  %-18s %9.1f%%%s %12s %7d\n",
			r.Treatment, 100*r.Result.Fraction(), star, formatP(r.Result.PValue()), r.Result.Pairs)
	}
	return b.String()
}

// RunTable07 evaluates the latency experiment.
func RunTable07(d *dataset.Dataset, rng *randx.Source) (Report, error) {
	v := dasuView(d, 0)
	control := latencyBand{0.512, 2.048}
	treatments := []latencyBand{
		{0, 0.064}, {0.064, 0.128}, {0.128, 0.256}, {0.256, 0.512},
	}
	inBand := func(b latencyBand) []*dataset.User {
		var idx []int32
		for _, i := range v.Idx {
			if b.contains(v.P.RTT[i]) {
				idx = append(idx, i)
			}
		}
		return dataset.View{P: v.P, Idx: idx}.Users()
	}
	controlUsers := inBand(control)
	// Matching on capacity, loss and both market price metrics isolates
	// latency from the market-development confounders it travels with.
	m := core.Matcher{Confounders: []core.Confounder{
		core.ConfounderCapacity(), core.ConfounderLoss(),
		core.ConfounderAccessPrice(), core.ConfounderUpgradeCost(),
	}}
	t := &Table07{Control: control}
	populated := 0
	for i, band := range treatments {
		exp := core.Experiment{
			Name:      fmt.Sprintf("%v vs %v", control, band),
			Treatment: inBand(band),
			Control:   controlUsers,
			Matcher:   m,
			Outcome:   dataset.PeakUsageNoBT,
			MinPairs:  MinGroup,
		}
		res, err := exp.Run(rng.SplitN("latency", i))
		row := Table07Row{Treatment: band}
		switch {
		case errors.Is(err, core.ErrTooFewPairs):
			row.Skipped = true
		case err != nil:
			return nil, err
		default:
			row.Result = res
			populated++
		}
		t.Rows = append(t.Rows, row)
	}
	if populated == 0 {
		return nil, fmt.Errorf("table07: no treatment band matched enough pairs")
	}
	return t, nil
}
