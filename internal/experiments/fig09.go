package experiments

import (
	"fmt"
	"strings"

	"github.com/nwca/broadband/internal/dataset"
	"github.com/nwca/broadband/internal/randx"
	"github.com/nwca/broadband/internal/stats"
)

// Fig09 reproduces Figure 9: average peak (95th-percentile) demand per
// country × tier bar chart. Landmarks: in the US, demand rises with every
// tier even though utilization falls; within a tier, the expensive market
// leads (Botswana <1 over US <1; Saudi 1–8 over US 1–8; US >32 over
// Japan >32 by ≈0.8 Mbps).
type Fig09 struct {
	Bars []Fig09Bar
}

// Fig09Bar is one country × tier average peak demand.
type Fig09Bar struct {
	Country string
	Tier    stats.Tier
	Demand  stats.Interval // bps, mean with 95% CI
	N       int
}

// ID implements Report.
func (f *Fig09) ID() string { return "Fig. 9" }

// Title implements Report.
func (f *Fig09) Title() string { return "Average peak demand per country and service tier" }

// Render implements Report.
func (f *Fig09) Render() string {
	var b strings.Builder
	b.WriteString(header(f.ID(), f.Title()))
	fmt.Fprintf(&b, "  %-4s %-12s %12s %24s %5s\n", "cc", "tier", "avg p95", "95% CI", "n")
	for _, bar := range f.Bars {
		fmt.Fprintf(&b, "  %-4s %-12s %9.3f Mbps [%8.3f, %8.3f] %5d\n",
			bar.Country, bar.Tier, bar.Demand.Point/1e6, bar.Demand.Lo/1e6, bar.Demand.Hi/1e6, bar.N)
	}
	return b.String()
}

// Bar returns the bar for a country/tier, if reported.
func (f *Fig09) Bar(country string, tier stats.Tier) (Fig09Bar, bool) {
	for _, bar := range f.Bars {
		if bar.Country == country && bar.Tier == tier {
			return bar, true
		}
	}
	return Fig09Bar{}, false
}

// RunFig09 computes the per-tier demand bars.
func RunFig09(d *dataset.Dataset, _ *randx.Source) (Report, error) {
	f := &Fig09{}
	p := d.Panel()
	for _, cc := range CaseStudyCountries {
		v := p.Where(dataset.ColCountry(cc), dataset.ColVantage(dataset.VantageDasu))
		for _, tier := range stats.Tiers() {
			tv := v.Where(dataset.ColTier(tier))
			if tv.Len() < MinGroup {
				continue
			}
			iv, err := stats.MeanCIIdx(p.UsagePeakNoBT, tv.Idx, 0.95)
			if err != nil {
				continue
			}
			f.Bars = append(f.Bars, Fig09Bar{Country: cc, Tier: tier, Demand: iv, N: tv.Len()})
		}
	}
	if len(f.Bars) == 0 {
		return nil, fmt.Errorf("fig09: no country×tier group reached %d users", MinGroup)
	}
	return f, nil
}
