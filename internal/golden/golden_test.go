package golden

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

type inner struct {
	Name string
	R    float64
}

type sample struct {
	ID      string
	Count   int
	Flag    bool
	Ratio   float64
	Rows    []inner
	ByKey   map[string]float64
	Hidden  string `golden:"-"`
	Renamed int    `golden:"Alias"`
	private int
}

func sampleValue() sample {
	tenth, fifth := 0.1, 0.2 // runtime sum: 0.30000000000000004
	return sample{
		ID: "Table X", Count: 3, Flag: true, Ratio: tenth + fifth,
		Rows:    []inner{{"a", 0.5}, {"b", -1.25}},
		ByKey:   map[string]float64{"z": 1, "a": 2},
		Hidden:  "never serialized",
		Renamed: 7,
		private: 9,
	}
}

func TestMarshalCanonicalAndRoundTrip(t *testing.T) {
	t.Parallel()
	data, err := Marshal(sampleValue())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, "Hidden") || strings.Contains(s, "private") {
		t.Errorf("tagged/unexported fields leaked into output:\n%s", s)
	}
	if !strings.Contains(s, "\"Alias\": 7") {
		t.Errorf("renamed field missing:\n%s", s)
	}
	// Map keys sort: "a" before "z".
	if strings.Index(s, "\"a\":") > strings.Index(s, "\"z\":") {
		t.Errorf("map keys not sorted:\n%s", s)
	}
	// 0.1+0.2 must round-trip exactly through the shortest representation.
	if !strings.Contains(s, "0.30000000000000004") {
		t.Errorf("float not round-trippable:\n%s", s)
	}
	// Parse → Encode must be a fixed point.
	v, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(v.Encode()); got != s {
		t.Errorf("Parse∘Encode not a fixed point:\nfirst:\n%s\nsecond:\n%s", s, got)
	}
	// And the parsed tree must compare clean against the original.
	orig, err := ToValue(sampleValue())
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(v, orig, Options{}); len(diffs) != 0 {
		t.Errorf("round-tripped tree differs: %v", diffs)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	t.Parallel()
	a, err := Marshal(sampleValue())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := Marshal(sampleValue())
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("marshal not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestNonFiniteFloats(t *testing.T) {
	t.Parallel()
	type nf struct{ A, B, C float64 }
	data, err := Marshal(nf{math.NaN(), math.Inf(1), math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"NaN"`, `"+Inf"`, `"-Inf"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("output missing %s:\n%s", want, data)
		}
	}
	// NaN must compare equal to NaN: regenerate and diff.
	w, _ := ToValue(nf{math.NaN(), math.Inf(1), math.Inf(-1)})
	g, _ := ToValue(nf{math.NaN(), math.Inf(1), math.Inf(-1)})
	if diffs := Compare(w, g, Options{}); len(diffs) != 0 {
		t.Errorf("NaN/Inf not self-equal: %v", diffs)
	}
	// But NaN vs a number is a diff.
	g2, _ := ToValue(nf{1, math.Inf(1), math.Inf(-1)})
	if diffs := Compare(w, g2, Options{}); len(diffs) != 1 {
		t.Errorf("NaN vs 1 should be one diff, got %v", diffs)
	}
}

func TestCompareTolerances(t *testing.T) {
	t.Parallel()
	type obj struct {
		Exact float64
		Loose float64
		Rows  []float64
	}
	want, _ := ToValue(obj{Exact: 1, Loose: 100, Rows: []float64{1, 2, 3}})
	got, _ := ToValue(obj{Exact: 1, Loose: 100.4, Rows: []float64{1, 2, 3.0001}})

	// No tolerance: two diffs.
	if diffs := Compare(want, got, Options{}); len(diffs) != 2 {
		t.Fatalf("want 2 diffs, got %v", diffs)
	}
	// Absolute rule on Loose, relative rule on the rows.
	opts := Options{Tolerances: []Tolerance{
		{Path: "Loose", Abs: 0.5},
		{Path: "Rows/*", Rel: 1e-3},
	}}
	if diffs := Compare(want, got, opts); len(diffs) != 0 {
		t.Errorf("tolerances should absorb drift, got %v", diffs)
	}
	// Artifact-scoped rule only applies to its artifact.
	scoped := Options{Artifact: "Fig. 9", Tolerances: []Tolerance{
		{Artifact: "Fig. 1", Path: "Loose", Abs: 0.5},
		{Path: "Rows/*", Rel: 1e-3},
	}}
	if diffs := Compare(want, got, scoped); len(diffs) != 1 {
		t.Errorf("rule for another artifact must not apply, got %v", diffs)
	}
}

func TestCompareStructural(t *testing.T) {
	t.Parallel()
	want, _ := Parse([]byte(`{"A": 1, "B": [1, 2], "C": "x"}`))
	got, _ := Parse([]byte(`{"A": "1", "B": [1], "D": true}`))
	diffs := Compare(want, got, Options{})
	msgs := map[string]bool{}
	for _, d := range diffs {
		msgs[d.Path] = true
	}
	for _, p := range []string{"A", "B", "C", "D"} {
		if !msgs[p] {
			t.Errorf("expected a diff at %s, got %v", p, diffs)
		}
	}
}

func TestCompareSetOrder(t *testing.T) {
	t.Parallel()
	type row struct {
		K string
		V float64
	}
	type obj struct{ Rows []row }
	want, _ := ToValue(obj{Rows: []row{{"a", 1}, {"b", 2}}})
	got, _ := ToValue(obj{Rows: []row{{"b", 2}, {"a", 1}}})
	if diffs := Compare(want, got, Options{}); len(diffs) == 0 {
		t.Fatal("ordered comparison should flag the swap")
	}
	opts := Options{Tolerances: []Tolerance{{Path: "Rows", Set: true}}}
	if diffs := Compare(want, got, opts); len(diffs) != 0 {
		t.Errorf("set comparison should accept the swap, got %v", diffs)
	}
	// An element that matches nothing is still a diff under set order.
	got2, _ := ToValue(obj{Rows: []row{{"b", 2}, {"c", 1}}})
	if diffs := Compare(want, got2, opts); len(diffs) != 1 {
		t.Errorf("unmatched element should be one diff, got %v", diffs)
	}
}

func TestSelect(t *testing.T) {
	t.Parallel()
	v, err := Parse([]byte(`{
		"Panels": [{"R": 0.9, "N": 1}, {"R": 0.8, "N": 2}],
		"MeanSlow": 1, "MeanFast": 2
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sel := Select(v, "Panels/*/R")
	if len(sel) != 2 || sel[0].V.Num != 0.9 || sel[1].V.Num != 0.8 {
		t.Errorf("Panels/*/R selected %v", sel)
	}
	// Glob over sibling scalars selects in key order.
	sel = Select(v, "Mean*")
	if len(sel) != 2 || sel[0].Path != "MeanSlow" || sel[1].Path != "MeanFast" {
		t.Errorf("Mean* selected %v", sel)
	}
}

func floatp(f float64) *float64 { return &f }

func TestEvalChecks(t *testing.T) {
	t.Parallel()
	v, err := Parse([]byte(`{
		"Rows": [
			{"Frac": 0.778, "P": 1e-6},
			{"Frac": 0, "P": 0},
			{"Frac": 0.61, "P": 0.002},
			{"Frac": 0.65, "P": 0.04}
		],
		"Slow": 1.0, "Fast": 2.0,
		"Delta": -0.25
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    Check
		ok   bool
	}{
		{"range over populated rows", Check{Path: "Rows/*/Frac", Op: "range", Min: floatp(0.5), NonzeroOnly: true, MinCount: 3}, true},
		{"range catches the skipped zero without nonzero_only", Check{Path: "Rows/*/Frac", Op: "range", Min: floatp(0.5)}, false},
		{"peak_first on the ladder", Check{Path: "Rows/*/Frac", Op: "peak_first", NonzeroOnly: true}, true},
		{"nonincreasing fails on the wobble", Check{Path: "Rows/*/Frac", Op: "nonincreasing", NonzeroOnly: true}, false},
		{"nonincreasing with slack", Check{Path: "Rows/*/Frac", Op: "nonincreasing", Tol: 0.05, NonzeroOnly: true}, true},
		{"ordering across fields", Check{Paths: []string{"Slow", "Fast"}, Op: "nondecreasing"}, true},
		{"ordering violated", Check{Paths: []string{"Fast", "Slow"}, Op: "nondecreasing"}, false},
		{"sign", Check{Path: "Delta", Op: "sign", Sign: -1}, true},
		{"wrong sign", Check{Path: "Delta", Op: "sign", Sign: 1}, false},
		{"stale path fails", Check{Path: "NoSuchField", Op: "range", Min: floatp(0)}, false},
		{"min_count enforced", Check{Path: "Rows/*/Frac", Op: "range", Min: floatp(0), MinCount: 10}, false},
	}
	for _, tc := range cases {
		tc.c.Name = tc.name
		vio := EvalChecks(v, []Check{tc.c}, false)
		if ok := len(vio) == 0; ok != tc.ok {
			t.Errorf("%s: ok=%v want %v (violations %v)", tc.name, ok, tc.ok, vio)
		}
	}
	// Scale-invariant filtering: a failing non-SI check is skipped.
	failing := Check{Name: "f", Path: "Delta", Op: "sign", Sign: 1}
	if vio := EvalChecks(v, []Check{failing}, true); len(vio) != 0 {
		t.Errorf("non-scale-invariant check must be skipped, got %v", vio)
	}
}

func TestManifestValidation(t *testing.T) {
	t.Parallel()
	if _, err := ParseManifest([]byte(`{"artifacts": [{"id": "Fig. 1", "checks": [{"name": "x", "op": "range"}]}]}`)); err == nil {
		t.Error("check without path must fail validation")
	}
	if _, err := ParseManifest([]byte(`{"artifacts": [{"id": "Fig. 1", "checks": [{"name": "x", "path": "A", "op": "wat"}]}]}`)); err == nil {
		t.Error("unknown op must fail validation")
	}
	m, err := ParseManifest([]byte(`{"artifacts": [{"id": "Fig. 1", "checks": [{"name": "x", "path": "A", "op": "range", "min": 0}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checks("Fig. 1")) != 1 || m.Checks("Fig. 2") != nil {
		t.Error("Checks lookup broken")
	}
}

func TestSlug(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"Fig. 1":   "fig01",
		"Fig. 12":  "fig12",
		"Table 2":  "table02",
		"Table 10": "table10",
		"Ext. A":   "exta",
	}
	for id, want := range cases {
		if got := Slug(id); got != want {
			t.Errorf("Slug(%q) = %q, want %q", id, got, want)
		}
	}
}

func TestVerifyUpdateCycle(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "golden")
	arts := []Artifact{{ID: "Fig. 1", Obj: sampleValue()}}

	// Before update: missing golden fails verification.
	r, err := Verify(arts, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || !r.Artifacts[0].Missing {
		t.Fatalf("missing golden must fail: %+v", r.Artifacts[0])
	}

	if err := Update(arts, dir); err != nil {
		t.Fatal(err)
	}
	r, err = Verify(arts, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("fresh goldens must verify: %s", r.Render())
	}

	// A perturbed regeneration must fail with the drifted field named.
	pert := sampleValue()
	pert.Ratio *= 1.01
	r, err = Verify([]Artifact{{ID: "Fig. 1", Obj: pert}}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || r.Failed() != 1 {
		t.Fatal("perturbation must fail verification")
	}
	if !strings.Contains(r.Render(), "Ratio") {
		t.Errorf("drift report must name the drifted field:\n%s", r.Render())
	}
	if !strings.Contains(string(r.JSON()), "\"path\": \"Ratio\"") {
		t.Errorf("JSON report must carry the drift path:\n%s", r.JSON())
	}
}
