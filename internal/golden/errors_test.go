package golden

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindNum: "number",
		KindStr: "string", KindArr: "array", KindObj: "object",
		Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestValueFieldAndRender(t *testing.T) {
	t.Parallel()
	v, err := Parse([]byte(`{"A": 1, "B": [1, 2], "C": "x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if f := v.Field("A"); f == nil || f.Num != 1 {
		t.Errorf("Field(A) = %v", f)
	}
	if v.Field("Missing") != nil {
		t.Error("Field on a missing key must be nil")
	}
	if v.Field("A").Field("X") != nil {
		t.Error("Field on a non-object must be nil")
	}
	var nilv *Value
	if nilv.Field("A") != nil {
		t.Error("Field on a nil value must be nil")
	}
	if got := nilv.Render(); got != "<missing>" {
		t.Errorf("nil Render = %q", got)
	}
	if got := v.Render(); !strings.HasPrefix(got, "object{") {
		t.Errorf("object Render = %q", got)
	}
	if got := v.Field("B").Render(); got != "array[2]" {
		t.Errorf("array Render = %q", got)
	}
	if got := v.Field("C").Render(); got != `"x"` {
		t.Errorf("scalar Render = %q", got)
	}
}

func TestToValueUnsupportedAndNil(t *testing.T) {
	t.Parallel()
	v, err := ToValue(nil)
	if err != nil || v.Kind != KindNull {
		t.Errorf("ToValue(nil) = %v, %v", v, err)
	}
	if _, err := ToValue(make(chan int)); err == nil {
		t.Error("channel must be unsupported")
	}
	if _, err := Marshal(map[int]int{1: 2}); err == nil {
		t.Error("non-string map keys must be unsupported")
	}
	// Errors propagate out of containers with the path named.
	type bad struct{ Rows []chan int }
	if _, err := ToValue(bad{Rows: make([]chan int, 1)}); err == nil || !strings.Contains(err.Error(), "Rows/0") {
		t.Errorf("nested unsupported value must name its path, got %v", err)
	}
	if _, err := ToValue(map[string]chan int{"k": nil}); err == nil {
		t.Error("unsupported map value must error")
	}
}

func TestEncodeEmptyContainers(t *testing.T) {
	t.Parallel()
	type obj struct {
		P     *int
		Empty []int
		ByKey map[string]int
		On    bool
	}
	data, err := Marshal(obj{Empty: []int{}, ByKey: map[string]int{}, On: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"P": null`, `"Empty": []`, `"ByKey": {}`, `"On": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("output missing %q:\n%s", want, data)
		}
	}
	// And the empty forms parse back to the same bytes.
	v, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Encode()) != string(data) {
		t.Errorf("empty containers not a Parse∘Encode fixed point:\n%s\nvs\n%s", data, v.Encode())
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"invalid":       `{"A": }`,
		"trailing data": `{"A": 1} extra`,
		"unclosed":      `[1, 2`,
		"huge number":   `[1e999]`,
		"empty":         ``,
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: Parse(%q) should fail", name, in)
		}
	}
}

func TestLoadManifest(t *testing.T) {
	t.Parallel()
	file := filepath.Join(t.TempDir(), "assertions.json")
	doc := `{"artifacts": [{"id": "Fig. 1", "checks": [{"name": "x", "path": "A", "op": "sign", "sign": 1}]}]}`
	if err := os.WriteFile(file, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checks("Fig. 1")) != 1 {
		t.Errorf("loaded manifest lost its checks: %+v", m)
	}
	if _, err := LoadManifest(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing manifest file must error")
	}
}

func TestParseManifestErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"invalid json": `{`,
		"empty id":     `{"artifacts": [{"id": "", "checks": []}]}`,
		"path and paths": `{"artifacts": [{"id": "A", "checks": [
			{"name": "x", "path": "A", "paths": ["B"], "op": "range", "min": 0}]}]}`,
		"range without bounds": `{"artifacts": [{"id": "A", "checks": [
			{"name": "x", "path": "A", "op": "range"}]}]}`,
		"sign out of range": `{"artifacts": [{"id": "A", "checks": [
			{"name": "x", "path": "A", "op": "sign", "sign": 5}]}]}`,
	}
	for name, doc := range cases {
		if _, err := ParseManifest([]byte(doc)); err == nil {
			t.Errorf("%s: ParseManifest should fail", name)
		}
	}
}

func TestViolationAndDiffStrings(t *testing.T) {
	t.Parallel()
	v := Violation{Check: "range", Msg: "out of bounds"}
	if got := v.String(); got != "range: out of bounds" {
		t.Errorf("Violation.String() = %q", got)
	}
	d := Diff{Path: "A", Want: "1", Got: "2"}
	if got := d.String(); got != "A: want 1, got 2" {
		t.Errorf("Diff.String() = %q", got)
	}
	d.Msg = "drift +1"
	if got := d.String(); got != "A: drift +1 (want 1, got 2)" {
		t.Errorf("Diff.String() with msg = %q", got)
	}
}

func TestEvalCheckNonNumber(t *testing.T) {
	t.Parallel()
	v, err := Parse([]byte(`{"Name": "Fig. 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	vio := EvalChecks(v, []Check{{Name: "x", Path: "Name", Op: "range", Min: floatp(0)}}, false)
	if len(vio) != 1 || !strings.Contains(vio[0].Msg, "not a number") {
		t.Errorf("selecting a string must violate, got %v", vio)
	}
}

func TestCompareMissingAndKindChange(t *testing.T) {
	t.Parallel()
	num, _ := Parse([]byte(`1`))
	str, _ := Parse([]byte(`"1"`))
	flag, _ := Parse([]byte(`true`))
	unflag, _ := Parse([]byte(`false`))
	if diffs := Compare(nil, num, Options{}); len(diffs) != 1 || diffs[0].Msg != "missing value" {
		t.Errorf("nil want: %v", diffs)
	}
	if diffs := Compare(num, nil, Options{}); len(diffs) != 1 {
		t.Errorf("nil got: %v", diffs)
	}
	if diffs := Compare(nil, nil, Options{}); len(diffs) != 0 {
		t.Errorf("nil vs nil: %v", diffs)
	}
	if diffs := Compare(num, str, Options{}); len(diffs) != 1 || !strings.Contains(diffs[0].Msg, "kind changed") {
		t.Errorf("kind change: %v", diffs)
	}
	if diffs := Compare(flag, unflag, Options{}); len(diffs) != 1 {
		t.Errorf("bool flip: %v", diffs)
	}
}

func TestCompareSetLengthChange(t *testing.T) {
	t.Parallel()
	want, _ := Parse([]byte(`{"Rows": [1, 2]}`))
	got, _ := Parse([]byte(`{"Rows": [1]}`))
	opts := Options{Tolerances: []Tolerance{{Path: "Rows", Set: true}}}
	diffs := Compare(want, got, opts)
	if len(diffs) != 1 || !strings.Contains(diffs[0].Msg, "length changed") {
		t.Errorf("set length change: %v", diffs)
	}
}

func TestFormatDriftZeroBaseline(t *testing.T) {
	t.Parallel()
	want, _ := Parse([]byte(`{"A": 0}`))
	got, _ := Parse([]byte(`{"A": 0.5}`))
	diffs := Compare(want, got, Options{})
	if len(diffs) != 1 {
		t.Fatalf("want one diff, got %v", diffs)
	}
	// No percentage against a zero baseline.
	if strings.Contains(diffs[0].Msg, "%") || !strings.Contains(diffs[0].Msg, "+0.5") {
		t.Errorf("zero-baseline drift message = %q", diffs[0].Msg)
	}
}

func TestReportRenderBranches(t *testing.T) {
	t.Parallel()
	r := &Report{Artifacts: []ArtifactReport{
		{ID: "Fig. 1"},
		{ID: "Fig. 2", Err: "boom"},
		{ID: "Fig. 3", Missing: true},
		{ID: "Fig. 4", Violations: []Violation{{Check: "c", Msg: "m"}}},
	}}
	out := r.Render()
	for _, want := range []string{"ok   Fig. 1", "FAIL Fig. 2: boom", "no golden file", "assert c: m"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if r.OK() || r.Failed() != 3 {
		t.Errorf("OK/Failed wrong: ok=%v failed=%d", r.OK(), r.Failed())
	}
}

func TestVerifyHarnessErrorPaths(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	// A corrupt golden file is an artifact error, not a panic.
	if err := os.WriteFile(GoldenPath(dir, "Fig. 1"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Verify([]Artifact{{ID: "Fig. 1", Obj: sampleValue()}}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || !strings.Contains(r.Artifacts[0].Err, "golden file") {
		t.Errorf("corrupt golden: %+v", r.Artifacts[0])
	}

	// An unserializable artifact is reported, and assertions are skipped.
	m := &Manifest{Artifacts: []ArtifactAssertions{{ID: "Fig. 2", Checks: []Check{
		{Name: "x", Path: "A", Op: "range", Min: floatp(0)},
	}}}}
	r, err = Verify([]Artifact{{ID: "Fig. 2", Obj: make(chan int)}}, dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || r.Artifacts[0].Err == "" || len(r.Artifacts[0].Violations) != 0 {
		t.Errorf("unserializable artifact: %+v", r.Artifacts[0])
	}

	// A golden path that cannot be read (it is a directory) is an error too.
	if err := os.MkdirAll(GoldenPath(dir, "Fig. 3"), 0o755); err != nil {
		t.Fatal(err)
	}
	r, err = Verify([]Artifact{{ID: "Fig. 3", Obj: sampleValue()}}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || r.Artifacts[0].Err == "" {
		t.Errorf("unreadable golden: %+v", r.Artifacts[0])
	}
}

func TestUpdateErrorPaths(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if err := Update([]Artifact{{ID: "Fig. 1", Obj: make(chan int)}}, dir); err == nil {
		t.Error("unserializable artifact must abort Update")
	}
	// A directory squatting on the golden path blocks the write.
	if err := os.MkdirAll(GoldenPath(dir, "Fig. 2"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := Update([]Artifact{{ID: "Fig. 2", Obj: sampleValue()}}, dir); err == nil {
		t.Error("unwritable golden path must abort Update")
	}
	// MkdirAll failure: the target dir is an existing file.
	file := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Update([]Artifact{{ID: "Fig. 3", Obj: sampleValue()}}, file); err == nil {
		t.Error("file in place of the golden dir must abort Update")
	}
}
