package golden

import (
	"fmt"
	"math"
	"path"
	"strconv"
)

// Tolerance relaxes the comparison at every tree location matching Path.
// Paths are slash-joined field names and array indices ("Panels/2/R");
// globbing follows path.Match, so "*" spans one segment and never crosses
// a slash ("Dasu/*/Result/Binomial/P" matches every row's p-value).
type Tolerance struct {
	// Artifact restricts the rule to one artifact ID ("" = every artifact).
	Artifact string `json:"artifact,omitempty"`
	Path     string `json:"path"`
	// Abs and Rel accept |want-got| <= Abs or <= Rel*max(|want|,|got|);
	// either bound passing is enough.
	Abs float64 `json:"abs,omitempty"`
	Rel float64 `json:"rel,omitempty"`
	// Set compares the arrays at matching paths as unordered multisets:
	// each wanted element must match some distinct got element under the
	// remaining rules, wherever it moved.
	Set bool `json:"set,omitempty"`
}

// Options configures a comparison.
type Options struct {
	// DefaultAbs and DefaultRel apply to every numeric field without a
	// more specific Tolerance rule. The defaults (zero) demand exact
	// equality, which deterministic regeneration on one platform
	// provides; cross-platform drift is what per-field rules are for.
	DefaultAbs, DefaultRel float64
	Tolerances             []Tolerance
	// Artifact scopes Artifact-qualified tolerance rules.
	Artifact string
}

// Diff is one divergence between a golden tree and a regenerated one.
type Diff struct {
	Path string `json:"path"`
	Want string `json:"want"`
	Got  string `json:"got"`
	Msg  string `json:"msg,omitempty"`
}

func (d Diff) String() string {
	if d.Msg != "" {
		return fmt.Sprintf("%s: %s (want %s, got %s)", d.Path, d.Msg, d.Want, d.Got)
	}
	return fmt.Sprintf("%s: want %s, got %s", d.Path, d.Want, d.Got)
}

// Compare diffs a regenerated tree against the golden one, returning every
// divergence (nil means the trees match under the options). The walk is
// structural: missing/extra object fields and array-length changes are
// diffs, numbers compare under the per-path tolerances, and non-finite
// markers ("NaN", "+Inf", "-Inf") compare by identity.
func Compare(want, got *Value, opts Options) []Diff {
	c := &comparer{opts: opts}
	c.compare("", want, got)
	return c.diffs
}

type comparer struct {
	opts  Options
	diffs []Diff
}

func (c *comparer) add(p string, want, got *Value, msg string) {
	c.diffs = append(c.diffs, Diff{Path: p, Want: want.Render(), Got: got.Render(), Msg: msg})
}

// tolAt resolves the tolerance rule for a path. The last matching rule
// wins, so manifests can layer a broad rule and then a narrower override.
func (c *comparer) tolAt(p string) (abs, rel float64, set bool) {
	abs, rel = c.opts.DefaultAbs, c.opts.DefaultRel
	for _, t := range c.opts.Tolerances {
		if t.Artifact != "" && t.Artifact != c.opts.Artifact {
			continue
		}
		if ok, err := path.Match(t.Path, p); err == nil && ok {
			abs, rel, set = t.Abs, t.Rel, t.Set
		}
	}
	return abs, rel, set
}

func (c *comparer) compare(p string, want, got *Value) {
	if want == nil || got == nil {
		if want != got {
			c.add(p, want, got, "missing value")
		}
		return
	}
	if want.Kind != got.Kind {
		c.add(p, want, got, fmt.Sprintf("kind changed (%s → %s)", want.Kind, got.Kind))
		return
	}
	switch want.Kind {
	case KindNull:
	case KindBool:
		if want.Bool != got.Bool {
			c.add(p, want, got, "")
		}
	case KindStr:
		if want.Str != got.Str {
			c.add(p, want, got, "")
		}
	case KindNum:
		abs, rel, _ := c.tolAt(p)
		if !numEqual(want.Num, got.Num, abs, rel) {
			c.add(p, want, got, fmt.Sprintf("drift %s", formatDrift(want.Num, got.Num)))
		}
	case KindArr:
		if _, _, set := c.tolAt(p); set {
			c.compareSet(p, want, got)
			return
		}
		n := len(want.Arr)
		if len(got.Arr) != n {
			c.add(p, want, got, fmt.Sprintf("length changed (%d → %d)", n, len(got.Arr)))
			if len(got.Arr) < n {
				n = len(got.Arr)
			}
		}
		for i := 0; i < n; i++ {
			c.compare(childPath(p, strconv.Itoa(i)), want.Arr[i], got.Arr[i])
		}
	case KindObj:
		for _, k := range want.Keys {
			gv, ok := got.Fields[k]
			if !ok {
				c.add(childPath(p, k), want.Fields[k], nil, "field removed")
				continue
			}
			c.compare(childPath(p, k), want.Fields[k], gv)
		}
		for _, k := range got.Keys {
			if _, ok := want.Fields[k]; !ok {
				c.add(childPath(p, k), nil, got.Fields[k], "field added")
			}
		}
	}
}

// compareSet matches array elements as an unordered multiset: each wanted
// element claims the first unclaimed got element it matches cleanly
// (greedy bipartite matching — quadratic, fine at artifact sizes).
func (c *comparer) compareSet(p string, want, got *Value) {
	if len(want.Arr) != len(got.Arr) {
		c.add(p, want, got, fmt.Sprintf("length changed (%d → %d)", len(want.Arr), len(got.Arr)))
		return
	}
	used := make([]bool, len(got.Arr))
outer:
	for i, wv := range want.Arr {
		for j, gv := range got.Arr {
			if used[j] {
				continue
			}
			probe := &comparer{opts: c.opts}
			probe.compare(childPath(p, strconv.Itoa(i)), wv, gv)
			if len(probe.diffs) == 0 {
				used[j] = true
				continue outer
			}
		}
		c.add(fmt.Sprintf("%s/%d", p, i), wv, nil, "no matching element in set")
	}
}

// numEqual applies the absolute-or-relative acceptance rule.
func numEqual(a, b, abs, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*scale
}

func formatDrift(want, got float64) string {
	d := got - want
	if want != 0 {
		return fmt.Sprintf("%+g (%+.3g%%)", d, 100*d/want)
	}
	return fmt.Sprintf("%+g", d)
}
