package golden

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"strconv"

	"github.com/nwca/broadband/internal/stats"
)

// Manifest is the machine-readable encoding of EXPERIMENTS.md's shape
// scorecard plus the comparator's per-field tolerance rules. It lives in
// testdata/assertions.json and is the single source of truth for both
// bbverify and the metamorphic test suite.
type Manifest struct {
	// Tolerances relax the golden comparison at matching paths.
	Tolerances []Tolerance `json:"tolerances,omitempty"`
	// Artifacts lists the qualitative checks per registry artifact.
	Artifacts []ArtifactAssertions `json:"artifacts"`
}

// ArtifactAssertions is the check set for one registry artifact.
type ArtifactAssertions struct {
	ID     string  `json:"id"`
	Checks []Check `json:"checks"`
}

// Check is one qualitative assertion on an artifact's canonical tree. The
// selected values are the numbers at every tree location matching Path (or
// the Paths list, concatenated in list order — the way to compare fields
// whose relative order in the struct does not match the wanted ordering).
type Check struct {
	// Name labels the check in drift reports.
	Name string `json:"name"`
	// Path selects values by slash-glob; Paths concatenates several
	// selections in order. Exactly one of the two must be set.
	Path  string   `json:"path,omitempty"`
	Paths []string `json:"paths,omitempty"`
	// Op is the assertion: "range" (every value within [min, max]),
	// "sign" (every value has the given sign), "nondecreasing" /
	// "nonincreasing" (the selected sequence is monotone within tol), or
	// "peak_first" (no later value exceeds the first by more than tol).
	Op string `json:"op"`
	// Min and Max bound "range" (either may be omitted).
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Sign is the wanted sign for "sign": -1, 0 or 1.
	Sign int `json:"sign,omitempty"`
	// Tol is the absolute slack for the monotone ops.
	Tol float64 `json:"tol,omitempty"`
	// MinCount fails the check when fewer values are selected (default 1
	// — a check that selects nothing is a stale path, not a pass).
	MinCount int `json:"min_count,omitempty"`
	// NonzeroOnly drops exact zeros from the selection before evaluating.
	// Rows skipped for small samples leave zero-valued results behind
	// (fraction 0, p 0); this is how ladder checks see only populated
	// rungs.
	NonzeroOnly bool `json:"nonzero_only,omitempty"`
	// ScaleInvariant marks checks that must hold for any reasonable world
	// size and seed, not just the default reproduction config. The
	// metamorphic suite evaluates exactly these.
	ScaleInvariant bool `json:"scale_invariant,omitempty"`
}

// LoadManifest reads and validates an assertion manifest.
func LoadManifest(file string) (*Manifest, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("golden: manifest: %w", err)
	}
	for _, a := range m.Artifacts {
		if a.ID == "" {
			return nil, fmt.Errorf("golden: manifest artifact with empty id")
		}
		for _, c := range a.Checks {
			if err := c.validate(); err != nil {
				return nil, fmt.Errorf("golden: manifest %s, check %q: %w", a.ID, c.Name, err)
			}
		}
	}
	return &m, nil
}

func (c Check) validate() error {
	if (c.Path == "") == (len(c.Paths) == 0) {
		return fmt.Errorf("exactly one of path/paths must be set")
	}
	switch c.Op {
	case "range":
		if c.Min == nil && c.Max == nil {
			return fmt.Errorf("range needs min and/or max")
		}
	case "sign":
		if c.Sign < -1 || c.Sign > 1 {
			return fmt.Errorf("sign must be -1, 0 or 1")
		}
	case "nondecreasing", "nonincreasing", "peak_first":
	default:
		return fmt.Errorf("unknown op %q", c.Op)
	}
	return nil
}

// Checks returns the assertions registered for an artifact ID.
func (m *Manifest) Checks(id string) []Check {
	for _, a := range m.Artifacts {
		if a.ID == id {
			return a.Checks
		}
	}
	return nil
}

// Violation is one failed assertion.
type Violation struct {
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Check, v.Msg) }

// EvalChecks evaluates assertions against an artifact tree. When
// scaleInvariantOnly is set, only checks marked scale_invariant run — the
// metamorphic suite's view of the manifest.
func EvalChecks(v *Value, checks []Check, scaleInvariantOnly bool) []Violation {
	var out []Violation
	for _, c := range checks {
		if scaleInvariantOnly && !c.ScaleInvariant {
			continue
		}
		if msg := evalCheck(v, c); msg != "" {
			out = append(out, Violation{Check: c.Name, Msg: msg})
		}
	}
	return out
}

func evalCheck(v *Value, c Check) string {
	globs := c.Paths
	if c.Path != "" {
		globs = []string{c.Path}
	}
	var vals []float64
	var paths []string
	for _, g := range globs {
		sel := Select(v, g)
		for _, s := range sel {
			if s.V.Kind != KindNum {
				return fmt.Sprintf("%s is %s, not a number", s.Path, s.V.Render())
			}
			if c.NonzeroOnly && s.V.Num == 0 {
				continue
			}
			vals = append(vals, s.V.Num)
			paths = append(paths, s.Path)
		}
	}
	minCount := c.MinCount
	if minCount <= 0 {
		minCount = 1
	}
	if len(vals) < minCount {
		return fmt.Sprintf("selected %d values, need at least %d (globs %v)", len(vals), minCount, globs)
	}
	switch c.Op {
	case "range":
		for i, x := range vals {
			if c.Min != nil && !(x >= *c.Min) {
				return fmt.Sprintf("%s = %g below min %g", paths[i], x, *c.Min)
			}
			if c.Max != nil && !(x <= *c.Max) {
				return fmt.Sprintf("%s = %g above max %g", paths[i], x, *c.Max)
			}
		}
	case "sign":
		for i, x := range vals {
			if stats.Sign(x) != c.Sign {
				return fmt.Sprintf("%s = %g has sign %+d, want %+d", paths[i], x, stats.Sign(x), c.Sign)
			}
		}
	case "nondecreasing":
		if !stats.NonDecreasing(vals, c.Tol) {
			return fmt.Sprintf("sequence %v is not non-decreasing (tol %g)", vals, c.Tol)
		}
	case "nonincreasing":
		if !stats.NonIncreasing(vals, c.Tol) {
			return fmt.Sprintf("sequence %v is not non-increasing (tol %g)", vals, c.Tol)
		}
	case "peak_first":
		if !stats.PeakFirst(vals, c.Tol) {
			return fmt.Sprintf("sequence %v does not peak at its first element (tol %g)", vals, c.Tol)
		}
	}
	return ""
}

// Selected is one value picked out of a tree by a path glob.
type Selected struct {
	Path string
	V    *Value
}

// Select returns every tree location matching the slash-glob, in tree
// order (struct declaration order for objects, index order for arrays) —
// the order monotonicity checks evaluate in.
func Select(v *Value, glob string) []Selected {
	var out []Selected
	selectWalk(v, "", glob, &out)
	return out
}

func selectWalk(v *Value, p, glob string, out *[]Selected) {
	if v == nil {
		return
	}
	if p != "" {
		if ok, err := path.Match(glob, p); err == nil && ok {
			*out = append(*out, Selected{Path: p, V: v})
			return
		}
	}
	switch v.Kind {
	case KindObj:
		for _, k := range v.Keys {
			selectWalk(v.Fields[k], childPath(p, k), glob, out)
		}
	case KindArr:
		for i, c := range v.Arr {
			selectWalk(c, childPath(p, strconv.Itoa(i)), glob, out)
		}
	}
}

func childPath(p, k string) string {
	if p == "" {
		return k
	}
	return p + "/" + k
}
