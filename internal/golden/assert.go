package golden

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path"
	"strconv"

	"github.com/nwca/broadband/internal/stats"
)

// Manifest is the machine-readable encoding of EXPERIMENTS.md's shape
// scorecard plus the comparator's per-field tolerance rules. It lives in
// testdata/assertions.json and is the single source of truth for both
// bbverify and the metamorphic test suite.
type Manifest struct {
	// Tolerances relax the golden comparison at matching paths.
	Tolerances []Tolerance `json:"tolerances,omitempty"`
	// Artifacts lists the qualitative checks per registry artifact.
	Artifacts []ArtifactAssertions `json:"artifacts"`
}

// ArtifactAssertions is the check set for one registry artifact.
type ArtifactAssertions struct {
	ID     string  `json:"id"`
	Checks []Check `json:"checks"`
}

// Check is one qualitative assertion on an artifact's canonical tree. The
// selected values are the numbers at every tree location matching Path (or
// the Paths list, concatenated in list order — the way to compare fields
// whose relative order in the struct does not match the wanted ordering).
type Check struct {
	// Name labels the check in drift reports.
	Name string `json:"name"`
	// Path selects values by slash-glob; Paths concatenates several
	// selections in order. Exactly one of the two must be set.
	Path  string   `json:"path,omitempty"`
	Paths []string `json:"paths,omitempty"`
	// Op is the assertion: "range" (every value within [min, max]),
	// "sign" (every value has the given sign), "nondecreasing" /
	// "nonincreasing" (the selected sequence is monotone within tol), or
	// "peak_first" (no later value exceeds the first by more than tol).
	//
	// Three further ops are differential — they compare the selection
	// against the same selection in a baseline tree and are evaluated by
	// EvalDiffCheck (the scenario runner's path), never by EvalChecks:
	// "increases" / "decreases" (the aggregated selection moves in the
	// given direction by more than the tolerance band) and "unchanged"
	// (it stays inside the band; with no tolerances set, bit-exactly).
	Op string `json:"op"`
	// Min and Max bound "range" (either may be omitted).
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Sign is the wanted sign for "sign": -1, 0 or 1.
	Sign int `json:"sign,omitempty"`
	// Tol is the absolute slack for the monotone ops.
	Tol float64 `json:"tol,omitempty"`
	// MinCount fails the check when fewer values are selected (default 1
	// — a check that selects nothing is a stale path, not a pass).
	MinCount int `json:"min_count,omitempty"`
	// NonzeroOnly drops exact zeros from the selection before evaluating.
	// Rows skipped for small samples leave zero-valued results behind
	// (fraction 0, p 0); this is how ladder checks see only populated
	// rungs.
	NonzeroOnly bool `json:"nonzero_only,omitempty"`
	// ScaleInvariant marks checks that must hold for any reasonable world
	// size and seed, not just the default reproduction config. The
	// metamorphic suite evaluates exactly these.
	ScaleInvariant bool `json:"scale_invariant,omitempty"`

	// The fields below parameterize the differential ops only.

	// Agg reduces the selection to the scalar that is compared across the
	// two trees: "mean" (the default), "median", "sum", "min", "max" or
	// "count" (selection size; how a check asserts on populations).
	Agg string `json:"agg,omitempty"`
	// AbsTol and RelTol define the indifference band around the baseline
	// aggregate b: tol = abs_tol + rel_tol·|b|. "unchanged" passes inside
	// the band; "increases"/"decreases" require the move to clear it.
	AbsTol float64 `json:"abs_tol,omitempty"`
	RelTol float64 `json:"rel_tol,omitempty"`
	// MinRel / MaxRel bound the relative move |s−b|/|b| of a passing
	// "increases"/"decreases" from below/above (zero = unset) — the way a
	// check demands a material shift, or asserts sublinearity by capping
	// one quantity's move below another check's floor.
	MinRel float64 `json:"min_rel,omitempty"`
	MaxRel float64 `json:"max_rel,omitempty"`
}

// Differential reports whether the op compares against a baseline tree
// (EvalDiffCheck) rather than asserting on a single tree (EvalChecks).
func (c Check) Differential() bool {
	switch c.Op {
	case "increases", "decreases", "unchanged":
		return true
	}
	return false
}

// Validate reports whether the check is well-formed. Scenario packs load
// checks outside a Manifest and validate them through this.
func (c Check) Validate() error { return c.validate() }

// LoadManifest reads and validates an assertion manifest.
func LoadManifest(file string) (*Manifest, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("golden: manifest: %w", err)
	}
	for _, a := range m.Artifacts {
		if a.ID == "" {
			return nil, fmt.Errorf("golden: manifest artifact with empty id")
		}
		for _, c := range a.Checks {
			if err := c.validate(); err != nil {
				return nil, fmt.Errorf("golden: manifest %s, check %q: %w", a.ID, c.Name, err)
			}
		}
	}
	return &m, nil
}

func (c Check) validate() error {
	if (c.Path == "") == (len(c.Paths) == 0) {
		return fmt.Errorf("exactly one of path/paths must be set")
	}
	switch c.Op {
	case "range":
		if c.Min == nil && c.Max == nil {
			return fmt.Errorf("range needs min and/or max")
		}
	case "sign":
		if c.Sign < -1 || c.Sign > 1 {
			return fmt.Errorf("sign must be -1, 0 or 1")
		}
	case "nondecreasing", "nonincreasing", "peak_first":
	case "increases", "decreases", "unchanged":
		switch c.Agg {
		case "", "mean", "median", "sum", "min", "max", "count":
		default:
			return fmt.Errorf("unknown agg %q", c.Agg)
		}
		if c.AbsTol < 0 || c.RelTol < 0 || c.MinRel < 0 || c.MaxRel < 0 {
			return fmt.Errorf("differential tolerances must be non-negative")
		}
		if c.Op == "unchanged" && (c.MinRel != 0 || c.MaxRel != 0) {
			return fmt.Errorf("min_rel/max_rel apply to increases/decreases only")
		}
		if c.MinRel != 0 && c.MaxRel != 0 && c.MinRel > c.MaxRel {
			return fmt.Errorf("min_rel %g exceeds max_rel %g", c.MinRel, c.MaxRel)
		}
	default:
		return fmt.Errorf("unknown op %q", c.Op)
	}
	if c.Agg != "" && !c.Differential() {
		return fmt.Errorf("agg applies to differential ops only")
	}
	return nil
}

// Checks returns the assertions registered for an artifact ID.
func (m *Manifest) Checks(id string) []Check {
	for _, a := range m.Artifacts {
		if a.ID == id {
			return a.Checks
		}
	}
	return nil
}

// Violation is one failed assertion.
type Violation struct {
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Check, v.Msg) }

// EvalChecks evaluates assertions against an artifact tree. When
// scaleInvariantOnly is set, only checks marked scale_invariant run — the
// metamorphic suite's view of the manifest.
func EvalChecks(v *Value, checks []Check, scaleInvariantOnly bool) []Violation {
	var out []Violation
	for _, c := range checks {
		if scaleInvariantOnly && !c.ScaleInvariant {
			continue
		}
		if msg := evalCheck(v, c); msg != "" {
			out = append(out, Violation{Check: c.Name, Msg: msg})
		}
	}
	return out
}

// collect gathers the numeric selection of a check from one tree, in tree
// order. The returned message is non-empty when the selection is unusable
// (a non-numeric match, or fewer values than min_count).
func collect(v *Value, c Check) (vals []float64, paths []string, msg string) {
	globs := c.Paths
	if c.Path != "" {
		globs = []string{c.Path}
	}
	for _, g := range globs {
		sel := Select(v, g)
		for _, s := range sel {
			if s.V.Kind != KindNum {
				return nil, nil, fmt.Sprintf("%s is %s, not a number", s.Path, s.V.Render())
			}
			if c.NonzeroOnly && s.V.Num == 0 {
				continue
			}
			vals = append(vals, s.V.Num)
			paths = append(paths, s.Path)
		}
	}
	minCount := c.MinCount
	if minCount <= 0 {
		minCount = 1
	}
	if len(vals) < minCount {
		return nil, nil, fmt.Sprintf("selected %d values, need at least %d (globs %v)", len(vals), minCount, globs)
	}
	return vals, paths, ""
}

func evalCheck(v *Value, c Check) string {
	if c.Differential() {
		return fmt.Sprintf("op %q needs a baseline tree (EvalDiffCheck)", c.Op)
	}
	vals, paths, msg := collect(v, c)
	if msg != "" {
		return msg
	}
	switch c.Op {
	case "range":
		for i, x := range vals {
			if c.Min != nil && !(x >= *c.Min) {
				return fmt.Sprintf("%s = %g below min %g", paths[i], x, *c.Min)
			}
			if c.Max != nil && !(x <= *c.Max) {
				return fmt.Sprintf("%s = %g above max %g", paths[i], x, *c.Max)
			}
		}
	case "sign":
		for i, x := range vals {
			if stats.Sign(x) != c.Sign {
				return fmt.Sprintf("%s = %g has sign %+d, want %+d", paths[i], x, stats.Sign(x), c.Sign)
			}
		}
	case "nondecreasing":
		if !stats.NonDecreasing(vals, c.Tol) {
			return fmt.Sprintf("sequence %v is not non-decreasing (tol %g)", vals, c.Tol)
		}
	case "nonincreasing":
		if !stats.NonIncreasing(vals, c.Tol) {
			return fmt.Sprintf("sequence %v is not non-increasing (tol %g)", vals, c.Tol)
		}
	case "peak_first":
		if !stats.PeakFirst(vals, c.Tol) {
			return fmt.Sprintf("sequence %v does not peak at its first element (tol %g)", vals, c.Tol)
		}
	}
	return ""
}

// aggregate reduces a non-empty selection per the check's Agg field.
func aggregate(vals []float64, agg string) (float64, error) {
	switch agg {
	case "count":
		return float64(len(vals)), nil
	case "median":
		return stats.Median(vals)
	case "sum":
		s := 0.0
		for _, x := range vals {
			s += x
		}
		return s, nil
	case "min":
		m := vals[0]
		for _, x := range vals[1:] {
			if x < m {
				m = x
			}
		}
		return m, nil
	case "max":
		m := vals[0]
		for _, x := range vals[1:] {
			if x > m {
				m = x
			}
		}
		return m, nil
	case "", "mean":
		return stats.Mean(vals)
	}
	return 0, fmt.Errorf("unknown agg %q", agg)
}

// EvalDiffCheck evaluates one differential assertion: the check's selection
// is gathered from the baseline and scenario trees, reduced by Agg, and the
// two scalars compared per the op. The empty string means the check passed.
//
// With identical inputs the aggregates are bit-identical, so "unchanged"
// with no tolerances is an exact no-interference assertion — the sharpest
// statement a counterfactual can make about the cohorts it must not touch.
func EvalDiffCheck(base, got *Value, c Check) string {
	if !c.Differential() {
		return fmt.Sprintf("op %q is not differential (EvalChecks)", c.Op)
	}
	bVals, _, msg := collect(base, c)
	if msg != "" {
		return "baseline: " + msg
	}
	gVals, _, msg := collect(got, c)
	if msg != "" {
		return "scenario: " + msg
	}
	b, err := aggregate(bVals, c.Agg)
	if err != nil {
		return "baseline: " + err.Error()
	}
	s, err := aggregate(gVals, c.Agg)
	if err != nil {
		return "scenario: " + err.Error()
	}
	if math.IsNaN(b) || math.IsNaN(s) {
		return fmt.Sprintf("aggregate is NaN (baseline %g, scenario %g)", b, s)
	}
	agg := c.Agg
	if agg == "" {
		agg = "mean"
	}
	tol := c.AbsTol + c.RelTol*math.Abs(b)
	delta := s - b
	rel := math.Inf(1) // a move off a zero baseline counts as unboundedly large
	if b != 0 {
		rel = math.Abs(delta) / math.Abs(b)
	} else if delta == 0 {
		rel = 0
	}
	describe := func() string {
		return fmt.Sprintf("%s(%d values) %g -> %s(%d values) %g (delta %+g, tol %g)",
			agg, len(bVals), b, agg, len(gVals), s, delta, tol)
	}
	switch c.Op {
	case "unchanged":
		if math.Abs(delta) > tol {
			return "not unchanged: " + describe()
		}
	case "increases":
		if !(delta > tol) {
			return "does not increase: " + describe()
		}
	case "decreases":
		if !(-delta > tol) {
			return "does not decrease: " + describe()
		}
	}
	if c.Op != "unchanged" {
		if c.MinRel != 0 && rel < c.MinRel {
			return fmt.Sprintf("moves only %.3g×, below min_rel %g: %s", rel, c.MinRel, describe())
		}
		if c.MaxRel != 0 && rel > c.MaxRel {
			return fmt.Sprintf("moves %.3g×, above max_rel %g: %s", rel, c.MaxRel, describe())
		}
	}
	return ""
}

// Selected is one value picked out of a tree by a path glob.
type Selected struct {
	Path string
	V    *Value
}

// Select returns every tree location matching the slash-glob, in tree
// order (struct declaration order for objects, index order for arrays) —
// the order monotonicity checks evaluate in.
func Select(v *Value, glob string) []Selected {
	var out []Selected
	selectWalk(v, "", glob, &out)
	return out
}

func selectWalk(v *Value, p, glob string, out *[]Selected) {
	if v == nil {
		return
	}
	if p != "" {
		if ok, err := path.Match(glob, p); err == nil && ok {
			*out = append(*out, Selected{Path: p, V: v})
			return
		}
	}
	switch v.Kind {
	case KindObj:
		for _, k := range v.Keys {
			selectWalk(v.Fields[k], childPath(p, k), glob, out)
		}
	case KindArr:
		for i, c := range v.Arr {
			selectWalk(c, childPath(p, strconv.Itoa(i)), glob, out)
		}
	}
}

func childPath(p, k string) string {
	if p == "" {
		return k
	}
	return p + "/" + k
}
