// Package golden is the regression harness for the reproduction's
// artifacts: a canonical JSON serialization of every registry report, a
// tolerance-aware comparator against checked-in golden files, and an
// assertion-manifest evaluator that encodes EXPERIMENTS.md's qualitative
// scorecard (correlation signs, monotone shapes, value ranges) in
// machine-readable form.
//
// The canonical form is deliberately narrow:
//
//   - struct fields serialize in declaration order (stable across runs;
//     golden files are versioned together with the structs that produce
//     them), skipping unexported fields and fields tagged `golden:"-"`
//     (raw per-user sample slices are tagged out — goldens capture the
//     statistics, not the population);
//   - map keys sort lexicographically;
//   - floats render with strconv.FormatFloat(-1) — the shortest
//     round-trippable form, the same convention the CSV layer uses — and
//     the non-finite values NaN/+Inf/-Inf encode as those literal strings
//     so the files stay valid JSON.
package golden

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the canonical value tree.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindNum
	KindStr
	KindArr
	KindObj
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNum:
		return "number"
	case KindStr:
		return "string"
	case KindArr:
		return "array"
	case KindObj:
		return "object"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is one node of the canonical tree. Exactly the field selected by
// Kind is meaningful.
type Value struct {
	Kind   Kind
	Bool   bool
	Num    float64
	Str    string
	Arr    []*Value
	Keys   []string // object keys, in canonical order
	Fields map[string]*Value
}

// Field returns the named child of an object, or nil.
func (v *Value) Field(name string) *Value {
	if v == nil || v.Kind != KindObj {
		return nil
	}
	return v.Fields[name]
}

// Non-finite floats encode as these literal strings; Parse leaves them as
// KindStr and the comparator matches them by string equality, which is
// what makes the pipeline NaN-aware end to end (NaN compares equal to
// NaN, unlike the float it came from).
const (
	strNaN    = "NaN"
	strPosInf = "+Inf"
	strNegInf = "-Inf"
)

// ToValue converts an arbitrary Go value (typically a registry artifact
// struct) into the canonical tree via reflection.
func ToValue(v any) (*Value, error) {
	if v == nil {
		return &Value{Kind: KindNull}, nil
	}
	return toValue(reflect.ValueOf(v), "")
}

func toValue(rv reflect.Value, path string) (*Value, error) {
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return &Value{Kind: KindNull}, nil
		}
		return toValue(rv.Elem(), path)
	case reflect.Bool:
		return &Value{Kind: KindBool, Bool: rv.Bool()}, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return numValue(float64(rv.Int())), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return numValue(float64(rv.Uint())), nil
	case reflect.Float32, reflect.Float64:
		return numValue(rv.Float()), nil
	case reflect.String:
		return &Value{Kind: KindStr, Str: rv.String()}, nil
	case reflect.Slice, reflect.Array:
		if rv.Kind() == reflect.Slice && rv.IsNil() {
			return &Value{Kind: KindArr}, nil
		}
		out := &Value{Kind: KindArr, Arr: make([]*Value, rv.Len())}
		for i := 0; i < rv.Len(); i++ {
			cv, err := toValue(rv.Index(i), fmt.Sprintf("%s/%d", path, i))
			if err != nil {
				return nil, err
			}
			out.Arr[i] = cv
		}
		return out, nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return nil, fmt.Errorf("golden: %s: unsupported map key type %s", path, rv.Type().Key())
		}
		keys := make([]string, 0, rv.Len())
		for _, k := range rv.MapKeys() {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		out := &Value{Kind: KindObj, Keys: keys, Fields: make(map[string]*Value, len(keys))}
		for _, k := range keys {
			cv, err := toValue(rv.MapIndex(reflect.ValueOf(k).Convert(rv.Type().Key())), path+"/"+k)
			if err != nil {
				return nil, err
			}
			out.Fields[k] = cv
		}
		return out, nil
	case reflect.Struct:
		t := rv.Type()
		out := &Value{Kind: KindObj, Fields: make(map[string]*Value)}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := f.Name
			switch tag := f.Tag.Get("golden"); tag {
			case "":
			case "-":
				continue
			default:
				name = tag
			}
			cv, err := toValue(rv.Field(i), path+"/"+name)
			if err != nil {
				return nil, err
			}
			out.Keys = append(out.Keys, name)
			out.Fields[name] = cv
		}
		return out, nil
	default:
		return nil, fmt.Errorf("golden: %s: unsupported kind %s", path, rv.Kind())
	}
}

func numValue(f float64) *Value {
	switch {
	case math.IsNaN(f):
		return &Value{Kind: KindStr, Str: strNaN}
	case math.IsInf(f, 1):
		return &Value{Kind: KindStr, Str: strPosInf}
	case math.IsInf(f, -1):
		return &Value{Kind: KindStr, Str: strNegInf}
	default:
		return &Value{Kind: KindNum, Num: f}
	}
}

// Encode renders the tree as canonical JSON: two-space indentation, object
// keys in tree order, floats in shortest round-trippable form, trailing
// newline. Encoding the same tree always yields the same bytes.
func (v *Value) Encode() []byte {
	var b bytes.Buffer
	v.encode(&b, 0)
	b.WriteByte('\n')
	return b.Bytes()
}

func (v *Value) encode(b *bytes.Buffer, depth int) {
	switch v.Kind {
	case KindNull:
		b.WriteString("null")
	case KindBool:
		b.WriteString(strconv.FormatBool(v.Bool))
	case KindNum:
		b.Write(appendFloat(nil, v.Num))
	case KindStr:
		b.Write(encodeJSONString(v.Str))
	case KindArr:
		if len(v.Arr) == 0 {
			b.WriteString("[]")
			return
		}
		b.WriteString("[\n")
		for i, c := range v.Arr {
			indent(b, depth+1)
			c.encode(b, depth+1)
			if i < len(v.Arr)-1 {
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
		indent(b, depth)
		b.WriteByte(']')
	case KindObj:
		if len(v.Keys) == 0 {
			b.WriteString("{}")
			return
		}
		b.WriteString("{\n")
		for i, k := range v.Keys {
			indent(b, depth+1)
			b.Write(encodeJSONString(k))
			b.WriteString(": ")
			v.Fields[k].encode(b, depth+1)
			if i < len(v.Keys)-1 {
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
		indent(b, depth)
		b.WriteByte('}')
	}
}

func indent(b *bytes.Buffer, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// appendFloat renders a finite float in the shortest form that parses back
// to the identical bits — the same FormatFloat(-1) convention as the CSV
// layer, restricted to JSON-legal syntax (json numbers cannot say "Inf").
func appendFloat(dst []byte, f float64) []byte {
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

func encodeJSONString(s string) []byte {
	out, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		panic(err)
	}
	return out
}

// Marshal is ToValue followed by Encode.
func Marshal(v any) ([]byte, error) {
	cv, err := ToValue(v)
	if err != nil {
		return nil, err
	}
	return cv.Encode(), nil
}

// Parse reads a JSON document (typically a golden file) into the canonical
// tree, preserving object key order and exact float values.
func Parse(data []byte) (*Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	v, err := parseValue(dec)
	if err != nil {
		return nil, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("golden: trailing data after JSON document")
	}
	return v, nil
}

func parseValue(dec *json.Decoder) (*Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("golden: %w", err)
	}
	return parseToken(dec, tok)
}

func parseToken(dec *json.Decoder, tok json.Token) (*Value, error) {
	switch t := tok.(type) {
	case nil:
		return &Value{Kind: KindNull}, nil
	case bool:
		return &Value{Kind: KindBool, Bool: t}, nil
	case string:
		return &Value{Kind: KindStr, Str: t}, nil
	case json.Number:
		f, err := strconv.ParseFloat(t.String(), 64)
		if err != nil {
			return nil, fmt.Errorf("golden: bad number %q: %w", t, err)
		}
		return &Value{Kind: KindNum, Num: f}, nil
	case json.Delim:
		switch t {
		case '[':
			out := &Value{Kind: KindArr}
			for dec.More() {
				cv, err := parseValue(dec)
				if err != nil {
					return nil, err
				}
				out.Arr = append(out.Arr, cv)
			}
			if _, err := dec.Token(); err != nil { // closing ]
				return nil, fmt.Errorf("golden: %w", err)
			}
			return out, nil
		case '{':
			out := &Value{Kind: KindObj, Fields: make(map[string]*Value)}
			for dec.More() {
				ktok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("golden: %w", err)
				}
				key, ok := ktok.(string)
				if !ok {
					return nil, fmt.Errorf("golden: object key %v is not a string", ktok)
				}
				cv, err := parseValue(dec)
				if err != nil {
					return nil, err
				}
				out.Keys = append(out.Keys, key)
				out.Fields[key] = cv
			}
			if _, err := dec.Token(); err != nil { // closing }
				return nil, fmt.Errorf("golden: %w", err)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("golden: unexpected token %v", tok)
}

// Render describes a value in one line for diff and assertion messages.
func (v *Value) Render() string {
	if v == nil {
		return "<missing>"
	}
	switch v.Kind {
	case KindArr:
		return fmt.Sprintf("array[%d]", len(v.Arr))
	case KindObj:
		return fmt.Sprintf("object{%s}", strings.Join(v.Keys, ","))
	default:
		return strings.TrimSuffix(string(v.Encode()), "\n")
	}
}
