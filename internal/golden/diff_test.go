package golden

import (
	"strings"
	"testing"
)

// tree builds a canonical value from any serializable object.
func tree(t *testing.T, obj any) *Value {
	t.Helper()
	v, err := ToValue(obj)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

type diffFixture struct {
	Median float64
	Rows   []diffRow
}

type diffRow struct {
	Y float64
}

func rows(ys ...float64) []diffRow {
	out := make([]diffRow, len(ys))
	for i, y := range ys {
		out[i] = diffRow{Y: y}
	}
	return out
}

func TestEvalDiffCheck(t *testing.T) {
	base := tree(t, diffFixture{Median: 10, Rows: rows(1, 2, 3)})
	cases := []struct {
		name    string
		got     diffFixture
		check   Check
		wantMsg string // substring of the failure, "" = pass
	}{
		{
			name:  "increases passes on a strict move",
			got:   diffFixture{Median: 12, Rows: rows(1, 2, 3)},
			check: Check{Path: "Median", Op: "increases"},
		},
		{
			name:    "increases fails on no move",
			got:     diffFixture{Median: 10, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Median", Op: "increases"},
			wantMsg: "does not increase",
		},
		{
			name:    "increases fails on a move inside the band",
			got:     diffFixture{Median: 10.5, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Median", Op: "increases", RelTol: 0.1},
			wantMsg: "does not increase",
		},
		{
			name:  "increases clears an absolute band",
			got:   diffFixture{Median: 12, Rows: rows(1, 2, 3)},
			check: Check{Path: "Median", Op: "increases", AbsTol: 1},
		},
		{
			name:    "min_rel demands a material move",
			got:     diffFixture{Median: 10.2, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Median", Op: "increases", MinRel: 0.1},
			wantMsg: "below min_rel",
		},
		{
			name:    "max_rel caps the move (sublinearity)",
			got:     diffFixture{Median: 25, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Median", Op: "increases", MaxRel: 0.5},
			wantMsg: "above max_rel",
		},
		{
			name:  "decreases passes",
			got:   diffFixture{Median: 8, Rows: rows(1, 2, 3)},
			check: Check{Path: "Median", Op: "decreases", MinRel: 0.1},
		},
		{
			name:    "decreases rejects an increase",
			got:     diffFixture{Median: 12, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Median", Op: "decreases"},
			wantMsg: "does not decrease",
		},
		{
			name:  "unchanged is exact with no tolerances",
			got:   diffFixture{Median: 10, Rows: rows(1, 2, 3)},
			check: Check{Path: "Median", Op: "unchanged"},
		},
		{
			name:    "unchanged rejects any drift without tolerances",
			got:     diffFixture{Median: 10 + 1e-12, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Median", Op: "unchanged"},
			wantMsg: "not unchanged",
		},
		{
			name:  "unchanged honors the band",
			got:   diffFixture{Median: 10.4, Rows: rows(1, 2, 3)},
			check: Check{Path: "Median", Op: "unchanged", RelTol: 0.05},
		},
		{
			name:  "mean aggregate over a glob selection",
			got:   diffFixture{Median: 10, Rows: rows(2, 3, 4)},
			check: Check{Path: "Rows/*/Y", Op: "increases", Agg: "mean"},
		},
		{
			name:  "mean aggregate tolerates differing selection sizes",
			got:   diffFixture{Median: 10, Rows: rows(5, 6)},
			check: Check{Path: "Rows/*/Y", Op: "increases"},
		},
		{
			name:  "count aggregate sees population growth",
			got:   diffFixture{Median: 10, Rows: rows(1, 2, 3, 4)},
			check: Check{Path: "Rows/*/Y", Op: "increases", Agg: "count"},
		},
		{
			name:  "median aggregate",
			got:   diffFixture{Median: 10, Rows: rows(1, 9, 3)},
			check: Check{Path: "Rows/*/Y", Op: "increases", Agg: "median"},
		},
		{
			name:  "sum aggregate",
			got:   diffFixture{Median: 10, Rows: rows(1, 2, 2)},
			check: Check{Path: "Rows/*/Y", Op: "decreases", Agg: "sum"},
		},
		{
			name:  "max aggregate",
			got:   diffFixture{Median: 10, Rows: rows(0, 0, 5)},
			check: Check{Path: "Rows/*/Y", Op: "increases", Agg: "max"},
		},
		{
			name:  "min aggregate",
			got:   diffFixture{Median: 10, Rows: rows(0.5, 2, 3)},
			check: Check{Path: "Rows/*/Y", Op: "decreases", Agg: "min"},
		},
		{
			name:    "stale path fails on the scenario side",
			got:     diffFixture{Median: 10, Rows: rows(1, 2, 3)},
			check:   Check{Path: "Rows/*/Y", Op: "unchanged", MinCount: 4},
			wantMsg: "baseline: selected 3 values",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.check.validate(); err != nil {
				t.Fatalf("check does not validate: %v", err)
			}
			msg := EvalDiffCheck(base, tree(t, tc.got), tc.check)
			if tc.wantMsg == "" && msg != "" {
				t.Fatalf("want pass, got %q", msg)
			}
			if tc.wantMsg != "" && !strings.Contains(msg, tc.wantMsg) {
				t.Fatalf("want failure containing %q, got %q", tc.wantMsg, msg)
			}
		})
	}
}

func TestDiffCheckValidation(t *testing.T) {
	bad := []Check{
		{Path: "X", Op: "increases", Agg: "p99"},
		{Path: "X", Op: "range", Min: f(0), Agg: "mean"},
		{Path: "X", Op: "increases", AbsTol: -1},
		{Path: "X", Op: "unchanged", MinRel: 0.1},
		{Path: "X", Op: "increases", MinRel: 0.5, MaxRel: 0.1},
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("case %d: check %+v validated, want error", i, c)
		}
	}
	if err := (Check{Path: "X", Op: "unchanged"}).validate(); err != nil {
		t.Errorf("bare unchanged should validate: %v", err)
	}
}

func TestEvalChecksRejectsDifferentialOps(t *testing.T) {
	v := tree(t, diffFixture{Median: 1})
	out := EvalChecks(v, []Check{{Name: "d", Path: "Median", Op: "increases"}}, false)
	if len(out) != 1 || !strings.Contains(out[0].Msg, "baseline") {
		t.Fatalf("want a needs-a-baseline violation, got %v", out)
	}
}

func f(x float64) *float64 { return &x }
