package golden

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/nwca/broadband/internal/fsx"
)

// Artifact pairs a registry ID with the typed report it produced. The
// driver serializes Obj itself, so callers pass the concrete report
// structs without adapters.
type Artifact struct {
	ID  string
	Obj any
}

// Slug converts an artifact ID to its golden filename stem:
// "Fig. 2" → "fig02", "Table 10" → "table10", "Ext. A" → "exta".
func Slug(id string) string {
	s := strings.ToLower(id)
	s = strings.ReplaceAll(s, ".", "")
	fields := strings.Fields(s)
	for i, f := range fields {
		if len(f) == 1 && f >= "0" && f <= "9" {
			fields[i] = "0" + f
		}
	}
	return strings.Join(fields, "")
}

// GoldenPath returns the golden file for an artifact under dir.
func GoldenPath(dir, id string) string {
	return filepath.Join(dir, Slug(id)+".json")
}

// ArtifactReport is the verification outcome for one artifact.
type ArtifactReport struct {
	ID string `json:"id"`
	// Missing reports that no golden file exists for the artifact.
	Missing bool `json:"missing,omitempty"`
	// Diffs are golden-comparison divergences (empty when clean).
	Diffs []Diff `json:"diffs,omitempty"`
	// Violations are failed manifest assertions (empty when clean).
	Violations []Violation `json:"violations,omitempty"`
	// Err records a serialization or I/O failure for this artifact.
	Err string `json:"error,omitempty"`
}

// OK reports whether the artifact verified cleanly.
func (a ArtifactReport) OK() bool {
	return !a.Missing && a.Err == "" && len(a.Diffs) == 0 && len(a.Violations) == 0
}

// Report is the full verification outcome: the drift report bbverify
// prints and CI uploads.
type Report struct {
	Artifacts []ArtifactReport `json:"artifacts"`
}

// OK reports whether every artifact verified cleanly.
func (r *Report) OK() bool {
	for _, a := range r.Artifacts {
		if !a.OK() {
			return false
		}
	}
	return true
}

// Failed counts artifacts that did not verify cleanly.
func (r *Report) Failed() int {
	n := 0
	for _, a := range r.Artifacts {
		if !a.OK() {
			n++
		}
	}
	return n
}

// Render formats the per-artifact drift report for humans.
func (r *Report) Render() string {
	var b strings.Builder
	for _, a := range r.Artifacts {
		switch {
		case a.OK():
			fmt.Fprintf(&b, "ok   %s\n", a.ID)
		case a.Err != "":
			fmt.Fprintf(&b, "FAIL %s: %s\n", a.ID, a.Err)
		case a.Missing:
			fmt.Fprintf(&b, "FAIL %s: no golden file (run with -update to create it)\n", a.ID)
		default:
			fmt.Fprintf(&b, "FAIL %s: %d field drift(s), %d assertion violation(s)\n",
				a.ID, len(a.Diffs), len(a.Violations))
			for _, d := range a.Diffs {
				fmt.Fprintf(&b, "       golden %s\n", d)
			}
			for _, v := range a.Violations {
				fmt.Fprintf(&b, "       assert %s\n", v)
			}
		}
	}
	return b.String()
}

// JSON renders the machine-readable drift report (the CI artifact).
func (r *Report) JSON() []byte {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil { // plain structs; cannot happen
		panic(err)
	}
	return append(out, '\n')
}

// Verify checks every artifact against its golden file under dir and the
// manifest's assertions (manifest may be nil to skip assertions). The
// returned error covers harness problems only; drift is reported through
// the Report.
func Verify(arts []Artifact, dir string, m *Manifest) (*Report, error) {
	r := &Report{}
	for _, art := range arts {
		ar := ArtifactReport{ID: art.ID}
		got, err := ToValue(art.Obj)
		if err != nil {
			ar.Err = err.Error()
			r.Artifacts = append(r.Artifacts, ar)
			continue
		}
		data, err := os.ReadFile(GoldenPath(dir, art.ID))
		switch {
		case os.IsNotExist(err):
			ar.Missing = true
		case err != nil:
			ar.Err = err.Error()
		default:
			want, perr := Parse(data)
			if perr != nil {
				ar.Err = fmt.Sprintf("golden file: %v", perr)
				break
			}
			opts := Options{Artifact: art.ID}
			if m != nil {
				opts.Tolerances = m.Tolerances
			}
			ar.Diffs = Compare(want, got, opts)
		}
		if m != nil && ar.Err == "" {
			ar.Violations = EvalChecks(got, m.Checks(art.ID), false)
		}
		r.Artifacts = append(r.Artifacts, ar)
	}
	return r, nil
}

// Update regenerates the golden files for every artifact under dir,
// creating the directory as needed.
func Update(arts []Artifact, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, art := range arts {
		data, err := Marshal(art.Obj)
		if err != nil {
			return fmt.Errorf("golden: %s: %w", art.ID, err)
		}
		if err := fsx.WriteFileAtomic(GoldenPath(dir, art.ID), data, 0o644); err != nil {
			return fmt.Errorf("golden: %s: %w", art.ID, err)
		}
	}
	return nil
}
