package stats

import "math/rand/v2"

// newTestRand returns a deterministic generator for a test-provided seed.
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0xda7a5e7))
}
