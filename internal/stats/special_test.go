package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
	almost(t, "LogBeta(1,1)", LogBeta(1, 1), 0, 1e-12)
	almost(t, "LogBeta(2,3)", LogBeta(2, 3), math.Log(1.0/12), 1e-12)
	almost(t, "LogBeta(0.5,0.5)", LogBeta(0.5, 0.5), math.Log(math.Pi), 1e-12)
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		almost(t, "I_x(1,1)", RegIncBeta(1, 1, x), x, 1e-12)
	}
	// I_x(2, 1) = x^2.
	almost(t, "I_0.3(2,1)", RegIncBeta(2, 1, 0.3), 0.09, 1e-12)
	// I_x(1, b) = 1 - (1-x)^b.
	almost(t, "I_0.2(1,5)", RegIncBeta(1, 5, 0.2), 1-math.Pow(0.8, 5), 1e-12)
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	almost(t, "symmetry", RegIncBeta(3.5, 2.25, 0.35), 1-RegIncBeta(2.25, 3.5, 0.65), 1e-12)
	// Bounds.
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("RegIncBeta must be 0 at x=0 and 1 at x=1")
	}
	if !math.IsNaN(RegIncBeta(-1, 2, 0.5)) || !math.IsNaN(RegIncBeta(2, 2, math.NaN())) {
		t.Error("invalid arguments should produce NaN")
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(a, b, x1, x2 float64) bool {
		a = 0.1 + math.Mod(math.Abs(a), 20)
		b = 0.1 + math.Mod(math.Abs(b), 20)
		x1 = math.Mod(math.Abs(x1), 1)
		x2 = math.Mod(math.Abs(x2), 1)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1, v2 := RegIncBeta(a, b, x1), RegIncBeta(a, b, x2)
		return v1 <= v2+1e-12 && v1 >= -1e-15 && v2 <= 1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDF(t *testing.T) {
	almost(t, "Phi(0)", NormalCDF(0), 0.5, 1e-15)
	almost(t, "Phi(1.96)", NormalCDF(1.959963984540054), 0.975, 1e-9)
	almost(t, "Phi(-1.96)", NormalCDF(-1.959963984540054), 0.025, 1e-9)
	almost(t, "Phi(3)", NormalCDF(3), 0.9986501019683699, 1e-12)
}

func TestNormalQuantile(t *testing.T) {
	almost(t, "z(0.5)", NormalQuantile(0.5), 0, 1e-9)
	almost(t, "z(0.975)", NormalQuantile(0.975), 1.959963984540054, 1e-9)
	almost(t, "z(0.025)", NormalQuantile(0.025), -1.959963984540054, 1e-9)
	almost(t, "z(1e-6)", NormalQuantile(1e-6), -4.753424308822899, 1e-7)
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ±Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) {
		t.Error("quantile outside [0,1] should be NaN")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		p = 0.0001 + 0.9998*math.Mod(math.Abs(p), 1)
		z := NormalQuantile(p)
		return math.Abs(NormalCDF(z)-p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStudentT(t *testing.T) {
	// df=1 is the Cauchy distribution: CDF(1) = 3/4.
	almost(t, "T1(1)", StudentTCDF(1, 1), 0.75, 1e-10)
	almost(t, "T1(0)", StudentTCDF(0, 1), 0.5, 1e-15)
	// Large df converges to the normal.
	almost(t, "T1e6(1.96)", StudentTCDF(1.96, 1e6), NormalCDF(1.96), 1e-5)
	// Classic table value: t_{0.975, 10} = 2.2281.
	almost(t, "tq(0.975,10)", StudentTQuantile(0.975, 10), 2.228138852, 1e-6)
	almost(t, "tq(0.975,1)", StudentTQuantile(0.975, 1), 12.7062047362, 1e-5)
	almost(t, "tq(0.5,7)", StudentTQuantile(0.5, 7), 0, 1e-12)
	// Symmetry.
	almost(t, "tq symmetry", StudentTQuantile(0.1, 5), -StudentTQuantile(0.9, 5), 1e-9)
}

func TestStudentTQuantileRoundTrip(t *testing.T) {
	f := func(p, df float64) bool {
		p = 0.001 + 0.998*math.Mod(math.Abs(p), 1)
		df = 1 + math.Mod(math.Abs(df), 200)
		q := StudentTQuantile(p, df)
		return math.Abs(StudentTCDF(q, df)-p) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
