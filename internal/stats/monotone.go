package stats

import "math"

// Sign classifies a value as -1, 0 or +1. NaN maps to 0 so that callers
// comparing qualitative shapes treat an undefined effect as "no sign"
// rather than propagating NaN through boolean logic.
func Sign(x float64) int {
	switch {
	case math.IsNaN(x), x == 0:
		return 0
	case x > 0:
		return 1
	default:
		return -1
	}
}

// SameSign reports whether every value in the sample has the given sign
// (see Sign). An empty sample is vacuously true.
func SameSign(xs []float64, sign int) bool {
	for _, x := range xs {
		if Sign(x) != sign {
			return false
		}
	}
	return true
}

// NonDecreasing reports whether the sequence never drops by more than tol
// between consecutive elements: xs[i+1] >= xs[i] - tol for every i. tol is
// an absolute slack (0 demands exact monotonicity); a NaN anywhere in the
// sequence fails. The empty sequence is vacuously monotone.
func NonDecreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(xs[i-1]) {
			return false
		}
		if xs[i] < xs[i-1]-tol {
			return false
		}
	}
	return len(xs) == 0 || !math.IsNaN(xs[0])
}

// NonIncreasing is the mirror of NonDecreasing: xs[i+1] <= xs[i] + tol.
func NonIncreasing(xs []float64, tol float64) bool {
	neg := make([]float64, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	return NonDecreasing(neg, tol)
}

// PeakFirst reports whether the first element dominates the rest of the
// sequence within tol: xs[i] <= xs[0] + tol for every i > 0. This is the
// "strong at the bottom, decaying after" shape of the paper's matched
// ladders (Table 2), which is not monotone — later rungs may wobble — but
// never exceeds the first rung. NaN anywhere fails; empty is false.
func PeakFirst(xs []float64, tol float64) bool {
	if len(xs) == 0 || math.IsNaN(xs[0]) {
		return false
	}
	for _, x := range xs[1:] {
		if math.IsNaN(x) || x > xs[0]+tol {
			return false
		}
	}
	return true
}
