package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Mean", m, 5, 1e-12)
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Variance", v, 32.0/7, 1e-12)
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "StdDev", sd, math.Sqrt(32.0/7), 1e-12)
}

func TestEmptyAndShortErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance([]float64{1}); err != ErrShortSample {
		t.Errorf("Variance(1 elem) err = %v, want ErrShortSample", err)
	}
	if _, err := Variance(nil); err != ErrEmpty {
		t.Errorf("Variance(nil) err = %v, want ErrEmpty", err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Errorf("GeoMean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := GeoMean([]float64{1, -2}); err != ErrNonPositive {
		t.Errorf("GeoMean(negative) err = %v, want ErrNonPositive", err)
	}
	if _, err := GeoMean([]float64{0, 2}); err != ErrNonPositive {
		t.Errorf("GeoMean(zero) err = %v, want ErrNonPositive", err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "GeoMean", g, 10, 1e-9)
}

func TestMeanCI(t *testing.T) {
	// n=9, sd=1: margin = t_{.975,8} / 3 ≈ 2.306/3.
	xs := make([]float64, 9)
	for i := range xs {
		xs[i] = float64(i%2)*2 - 1 // alternating -1, 1... fix below for sd
	}
	xs = []float64{-1, 1, -1, 1, -1, 1, -1, 1, 0} // mean 0, var 1 (n-1 = 8, ss = 8)
	iv, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "CI point", iv.Point, 0, 1e-12)
	almost(t, "CI halfwidth", iv.HalfWidth(), 2.30600413520417/3, 1e-6)
	if !iv.Contains(0) || iv.Contains(5) {
		t.Error("Contains misbehaves")
	}
	// Degenerate single-sample interval.
	iv, err = MeanCI([]float64{4.2}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 4.2 || iv.Hi != 4.2 {
		t.Errorf("single-sample CI = [%v, %v], want degenerate at 4.2", iv.Lo, iv.Hi)
	}
	if _, err := MeanCI(nil, 0.95); err != ErrEmpty {
		t.Error("MeanCI(nil) should be ErrEmpty")
	}
}

func TestMeanCICoversTruthProperty(t *testing.T) {
	// The 95% CI from a decent-size normal sample should contain the true
	// mean the vast majority of the time. With fixed quick seeds this is a
	// deterministic regression test, tolerant to a few misses.
	misses := 0
	trials := 0
	f := func(seed int64) bool {
		trials++
		rng := newTestRand(seed)
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = 3 + 2*rng.NormFloat64()
		}
		iv, err := MeanCI(xs, 0.95)
		if err != nil {
			return false
		}
		if !iv.Contains(3) {
			misses++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if frac := float64(misses) / float64(trials); frac > 0.12 {
		t.Errorf("CI missed true mean in %.0f%% of samples, want ≈5%%", 100*frac)
	}
}
