package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample. Every
// "CDF of users" figure in the paper is an ECDF; the type also supports
// quantile lookup and a compact text rendering for terminal output.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (which it copies and sorts). A
// sample containing NaN returns ErrNaN: sort.Float64s leaves NaNs in
// unspecified positions, so Eval/Quantile/Curve over NaN-contaminated data
// would be nondeterministic garbage — the same contract Quantile and the
// rest of the order-statistic family enforce.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for _, x := range s {
		if math.IsNaN(x) {
			return nil, ErrNaN
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// N returns the number of observations.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns F(x) = fraction of observations ≤ x.
func (e *ECDF) Eval(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// need the count of values <= x, so search for the insertion point
	// after any run of values equal to x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the underlying sample (type 7).
func (e *ECDF) Quantile(p float64) float64 { return quantileSorted(e.sorted, p) }

// Min and Max report the sample range.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max reports the largest observation.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Point is one (x, F(x)) coordinate of an ECDF curve.
type Point struct {
	X float64
	F float64
}

// Curve returns up to n evenly spaced (in probability) points on the ECDF,
// the series a plotting tool would consume.
func (e *ECDF) Curve(n int) []Point {
	if n < 2 {
		n = 2
	}
	if n > len(e.sorted)+1 {
		n = len(e.sorted) + 1
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		pts = append(pts, Point{X: e.Quantile(p), F: p})
	}
	return pts
}

// RenderQuantiles formats the ECDF as a fixed set of quantiles, the compact
// representation used in the experiment reports. format is applied to each
// x value (e.g. to attach units).
func (e *ECDF) RenderQuantiles(format func(float64) string) string {
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.4g", v) }
	}
	var b strings.Builder
	for i, p := range []float64{0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95} {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "p%02.0f=%s", p*100, format(e.Quantile(p)))
	}
	return b.String()
}
