package stats

import "math"

// LinearFit is the result of a simple ordinary-least-squares regression
// y = Intercept + Slope·x. The paper fits price-vs-capacity per market
// (Sec. 6) and uses the slope as the "cost of increasing capacity".
type LinearFit struct {
	Slope     float64
	Intercept float64
	R         float64 // Pearson correlation of x and y
	R2        float64 // coefficient of determination
	N         int     // number of points fitted
	ResidStd  float64 // residual standard deviation (n−2 denominator)
}

// LinearRegression fits y = a + b·x by OLS. It requires at least two points
// with non-zero x variance.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrMismatched
	}
	if len(xs) < 2 {
		if len(xs) == 0 {
			return LinearFit{}, ErrEmpty
		}
		return LinearFit{}, ErrShortSample
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrShortSample
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         len(xs),
	}
	if syy > 0 {
		fit.R = sxy / math.Sqrt(sxx*syy)
		fit.R2 = fit.R * fit.R
	} else {
		// A perfectly flat response is perfectly explained by a zero slope.
		fit.R, fit.R2 = 0, 1
	}
	if len(xs) > 2 {
		var ss float64
		for i := range xs {
			resid := ys[i] - fit.Predict(xs[i])
			ss += resid * resid
		}
		fit.ResidStd = math.Sqrt(ss / float64(len(xs)-2))
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }
