package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func normalSample(seed int64, n int, mean, sd float64) []float64 {
	rng := newTestRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + sd*rng.NormFloat64()
	}
	return out
}

func TestKSTestIdenticalDistributions(t *testing.T) {
	a := normalSample(1, 400, 0, 1)
	b := normalSample(2, 400, 0, 1)
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("same-distribution KS rejected: D=%v p=%v", res.D, res.P)
	}
	if res.N1 != 400 || res.N2 != 400 {
		t.Errorf("sizes: %d, %d", res.N1, res.N2)
	}
}

func TestKSTestSeparatedDistributions(t *testing.T) {
	a := normalSample(3, 300, 0, 1)
	b := normalSample(4, 300, 1.2, 1)
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("shifted distributions not detected: D=%v p=%v", res.D, res.P)
	}
	if res.D < 0.3 {
		t.Errorf("D = %v, want a large separation", res.D)
	}
}

func TestKSTestEdgeCases(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err != ErrEmpty {
		t.Error("empty sample should error")
	}
	// Completely disjoint supports → D = 1, p ≈ 0.
	res, err := KSTest([]float64{1, 2, 3, 4, 5}, []float64{10, 11, 12, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("disjoint supports D = %v, want 1", res.D)
	}
	if res.P > 0.01 {
		t.Errorf("disjoint supports p = %v", res.P)
	}
}

func TestKSDBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		a := make([]float64, 20+rng.IntN(50))
		b := make([]float64, 20+rng.IntN(50))
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64() * (1 + rng.Float64())
		}
		res, err := KSTest(a, b)
		return err == nil && res.D >= 0 && res.D <= 1 && res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMannWhitneyNull(t *testing.T) {
	a := normalSample(5, 250, 3, 1)
	b := normalSample(6, 250, 3, 1)
	res, err := MannWhitneyU(a, b, TailTwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("null U test rejected: z=%v p=%v", res.Z, res.P)
	}
}

func TestMannWhitneyShift(t *testing.T) {
	a := normalSample(7, 200, 3.6, 1)
	b := normalSample(8, 200, 3.0, 1)
	res, err := MannWhitneyU(a, b, TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Errorf("0.6σ shift not detected: z=%v p=%v", res.Z, res.P)
	}
	// Reversed tail must be near 1.
	rev, _ := MannWhitneyU(a, b, TailLess)
	if rev.P < 0.99 {
		t.Errorf("wrong-tail p = %v, want ≈1", rev.P)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Hand-computable: a = {1,2,3}, b = {4,5,6}: U_a = 0.
	res, err := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6}, TailLess)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
	if res.P > 0.05 {
		t.Errorf("p = %v for fully separated samples", res.P)
	}
	// Ties: all equal → U = n1*n2/2, z = 0 (tie-degenerate variance).
	tied, err := MannWhitneyU([]float64{1, 1}, []float64{1, 1}, TailTwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if tied.P != 1 {
		t.Errorf("fully tied p = %v, want 1", tied.P)
	}
	if _, err := MannWhitneyU(nil, []float64{1}, TailGreater); err != ErrEmpty {
		t.Error("empty input should error")
	}
}

func TestWilcoxonSignedRankDetectsShift(t *testing.T) {
	rng := newTestRand(9)
	n := 120
	before := make([]float64, n)
	after := make([]float64, n)
	for i := 0; i < n; i++ {
		before[i] = 5 + rng.NormFloat64()
		after[i] = before[i] + 0.4 + 0.8*rng.NormFloat64()
	}
	res, err := WilcoxonSignedRank(before, after, TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-3 {
		t.Errorf("paired shift not detected: z=%v p=%v", res.Z, res.P)
	}
	if res.N != n {
		t.Errorf("used %d pairs, want %d", res.N, n)
	}
}

func TestWilcoxonNull(t *testing.T) {
	rng := newTestRand(10)
	n := 150
	before := make([]float64, n)
	after := make([]float64, n)
	for i := 0; i < n; i++ {
		before[i] = rng.NormFloat64()
		after[i] = rng.NormFloat64()
	}
	res, err := WilcoxonSignedRank(before, after, TailTwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("null paired test rejected: z=%v p=%v", res.Z, res.P)
	}
}

func TestWilcoxonEdgeCases(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}, TailGreater); err != ErrMismatched {
		t.Error("mismatched lengths should error")
	}
	// All-zero differences drop out entirely.
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}, TailGreater); err != ErrEmpty {
		t.Error("all-tied pairs should error")
	}
	// Every difference positive: one-tailed p must be small.
	res, err := WilcoxonSignedRank(
		[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20},
		[]float64{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21},
		TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Errorf("uniformly positive differences p = %v", res.P)
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := normalSample(11, 300, 10, 2)
	rng := newTestRand(12)
	meanStat := func(v []float64) float64 {
		m, _ := Mean(v)
		return m
	}
	iv, err := BootstrapCI(xs, meanStat, 0.95, 800, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(10) {
		t.Errorf("bootstrap CI [%v, %v] misses the true mean 10", iv.Lo, iv.Hi)
	}
	// Must agree with the analytic CI within a factor.
	analytic, _ := MeanCI(xs, 0.95)
	if iv.HalfWidth() < 0.5*analytic.HalfWidth() || iv.HalfWidth() > 2*analytic.HalfWidth() {
		t.Errorf("bootstrap halfwidth %v vs analytic %v", iv.HalfWidth(), analytic.HalfWidth())
	}
	if _, err := BootstrapCI(nil, meanStat, 0.95, 100, rng.Float64); err != ErrEmpty {
		t.Error("empty input should error")
	}
	if _, err := BootstrapCI(xs, meanStat, 0.95, 100, nil); err == nil {
		t.Error("nil randomness source should error")
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	// Bootstrap works for statistics with no closed-form CI, e.g. median.
	xs := normalSample(13, 400, 7, 3)
	rng := newTestRand(14)
	medStat := func(v []float64) float64 {
		m, _ := Median(v)
		return m
	}
	iv, err := BootstrapCI(xs, medStat, 0.9, 500, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(7) {
		t.Errorf("median CI [%v, %v] misses 7", iv.Lo, iv.Hi)
	}
	if math.Abs(iv.Point-7) > 0.6 {
		t.Errorf("median point %v far from 7", iv.Point)
	}
}
