package stats

import (
	"math"
	"sort"
)

// prepareSorted returns a sorted, NaN-free view of the sample in one pass:
// it scans once for NaN (ErrNaN) and sortedness, returning the input slice
// itself when it is already ordered — the fast path the artifact inner
// loops hit after an ECDF or a prior Summarize has sorted the values — and
// a sorted copy otherwise. The input is never mutated.
func prepareSorted(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := true
	prev := xs[0]
	if math.IsNaN(prev) {
		return nil, ErrNaN
	}
	for _, x := range xs[1:] {
		if math.IsNaN(x) {
			return nil, ErrNaN
		}
		if x < prev {
			sorted = false
		}
		prev = x
	}
	if sorted {
		return xs, nil
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp, nil
}

// Quantile returns the p-quantile (p in [0, 1]) of the sample using linear
// interpolation between order statistics (Hyndman–Fan type 7, the default of
// R and NumPy). The input need not be sorted (already-sorted input skips the
// internal copy). A sample containing NaN returns ErrNaN.
func Quantile(xs []float64, p float64) (float64, error) {
	sorted, err := prepareSorted(xs)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(p) {
		return math.NaN(), nil
	}
	return quantileSorted(sorted, p), nil
}

// quantileSorted computes the type-7 quantile of an already sorted sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case p <= 0:
		return sorted[0]
	case p >= 1:
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	if frac == 0 {
		// Exact order statistic; also keeps 0·Inf out of the
		// interpolation when a neighbor is infinite.
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Percentile returns the q-th percentile (q in [0, 100]) of the sample; the
// paper's peak-demand metric is Percentile(xs, 95).
func Percentile(xs []float64, q float64) (float64, error) {
	return Quantile(xs, q/100)
}

// Median returns the sample median.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// IQR returns the interquartile range (Q3 − Q1) of the sample. A sample
// containing NaN returns ErrNaN.
func IQR(xs []float64) (float64, error) {
	sorted, err := prepareSorted(xs)
	if err != nil {
		return 0, err
	}
	return quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25), nil
}

// Summary is a five-number-plus summary of a sample, convenient for the
// dataset characterization tables.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, Median, Max   float64
	P05, P25, P75, P95 float64
}

// Summarize computes a Summary in one pass over a sorted view (already-
// sorted input skips the copy). A sample containing NaN returns ErrNaN.
func Summarize(xs []float64) (Summary, error) {
	sorted, err := prepareSorted(xs)
	if err != nil {
		return Summary{}, err
	}
	m, _ := Mean(sorted)
	sd := 0.0
	if len(sorted) > 1 {
		sd, _ = StdDev(sorted)
	}
	return Summary{
		N:      len(sorted),
		Mean:   m,
		StdDev: sd,
		Min:    sorted[0],
		Median: quantileSorted(sorted, 0.5),
		Max:    sorted[len(sorted)-1],
		P05:    quantileSorted(sorted, 0.05),
		P25:    quantileSorted(sorted, 0.25),
		P75:    quantileSorted(sorted, 0.75),
		P95:    quantileSorted(sorted, 0.95),
	}, nil
}
