package stats

import (
	"math"
	"testing"
)

var nan = math.NaN()

func TestSign(t *testing.T) {
	t.Parallel()
	cases := []struct {
		x    float64
		want int
	}{
		{3.5, 1}, {1e-300, 1}, {math.Inf(1), 1},
		{-2, -1}, {-1e-300, -1}, {math.Inf(-1), -1},
		{0, 0}, {math.Copysign(0, -1), 0}, {nan, 0},
	}
	for _, c := range cases {
		if got := Sign(c.x); got != c.want {
			t.Errorf("Sign(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestSameSign(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		xs   []float64
		sign int
		want bool
	}{
		{"all positive", []float64{1, 2, 0.5}, 1, true},
		{"one zero breaks positive", []float64{1, 0, 2}, 1, false},
		{"all negative", []float64{-1, -3}, -1, true},
		{"mixed fails", []float64{-1, 2}, -1, false},
		{"zeros and NaN count as sign 0", []float64{0, nan}, 0, true},
		{"empty vacuous", nil, 1, true},
	}
	for _, c := range cases {
		if got := SameSign(c.xs, c.sign); got != c.want {
			t.Errorf("%s: SameSign(%v, %+d) = %v, want %v", c.name, c.xs, c.sign, got, c.want)
		}
	}
}

func TestMonotone(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		xs     []float64
		tol    float64
		nonDec bool
		nonInc bool
	}{
		{"empty vacuous", nil, 0, true, true},
		{"single vacuous", []float64{5}, 0, true, true},
		{"strictly rising", []float64{1, 2, 3}, 0, true, false},
		{"strictly falling", []float64{3, 2, 1}, 0, false, true},
		{"flat is both", []float64{2, 2, 2}, 0, true, true},
		{"dip within tol", []float64{1, 2, 1.95, 3}, 0.1, true, false},
		{"dip beyond tol", []float64{1, 2, 1.5, 3}, 0.1, false, false},
		{"NaN fails both", []float64{1, nan, 3}, 10, false, false},
		{"leading NaN fails", []float64{nan}, 0, false, false},
	}
	for _, c := range cases {
		if got := NonDecreasing(c.xs, c.tol); got != c.nonDec {
			t.Errorf("%s: NonDecreasing(%v, %g) = %v, want %v", c.name, c.xs, c.tol, got, c.nonDec)
		}
		if got := NonIncreasing(c.xs, c.tol); got != c.nonInc {
			t.Errorf("%s: NonIncreasing(%v, %g) = %v, want %v", c.name, c.xs, c.tol, got, c.nonInc)
		}
	}
}

func TestPeakFirst(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		xs   []float64
		tol  float64
		want bool
	}{
		{"empty is false", nil, 0, false},
		{"single peaks trivially", []float64{4}, 0, true},
		{"decaying ladder", []float64{0.85, 0.8, 0.7, 0.72}, 0, true},
		{"wobble within tol", []float64{0.8, 0.82, 0.7}, 0.05, true},
		{"later rung exceeds first", []float64{0.7, 0.85}, 0.05, false},
		{"NaN first fails", []float64{nan, 0.5}, 0, false},
		{"NaN later fails", []float64{0.8, nan}, 10, false},
	}
	for _, c := range cases {
		if got := PeakFirst(c.xs, c.tol); got != c.want {
			t.Errorf("%s: PeakFirst(%v, %g) = %v, want %v", c.name, c.xs, c.tol, got, c.want)
		}
	}
}

// TestMonotoneMirrorProperty: NonIncreasing must be exactly NonDecreasing
// of the negated sequence, whatever the input.
func TestMonotoneMirrorProperty(t *testing.T) {
	t.Parallel()
	seqs := [][]float64{
		{1, 2, 3}, {3, 1, 2}, {0, 0, 0}, {-1, -2}, {1, nan, 2}, {}, {5},
	}
	for _, xs := range seqs {
		neg := make([]float64, len(xs))
		for i, x := range xs {
			neg[i] = -x
		}
		for _, tol := range []float64{0, 0.5} {
			if NonIncreasing(xs, tol) != NonDecreasing(neg, tol) {
				t.Errorf("mirror property broken for %v tol %g", xs, tol)
			}
		}
	}
}
