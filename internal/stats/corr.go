package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrMismatched is returned when paired samples differ in length.
var ErrMismatched = errors.New("stats: paired samples of different length")

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples. It errs on fewer than two pairs or zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatched
	}
	if len(xs) < 2 {
		if len(xs) == 0 {
			return 0, ErrEmpty
		}
		return 0, ErrShortSample
	}
	n := float64(len(xs))
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrShortSample
	}
	_ = n
	return sxy / math.Sqrt(sxx*syy), nil
}

// LogPearson returns the Pearson correlation of the element-wise logarithms
// of two strictly positive samples. The paper's capacity/usage correlations
// (Fig. 2, Fig. 3) are computed on log-log axes, where this is the natural
// statistic. Non-positive pairs are skipped.
func LogPearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatched
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return Pearson(lx, ly)
}

// Spearman returns the Spearman rank correlation coefficient, robust to
// monotone transformations; used as a cross-check on the price–capacity
// relationships in markets with outlier plans.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatched
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return Pearson(rx, ry)
}

// ranks assigns average ranks (1-based) to the sample, averaging ties.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
