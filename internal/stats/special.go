// Package stats implements the descriptive and inferential statistics used
// throughout the study: summaries, quantiles, empirical CDFs, correlation,
// ordinary least squares, confidence intervals, one-tailed binomial tests and
// the paper's capacity-class binning.
//
// Everything is implemented from the standard library up (math.Lgamma,
// math.Erfc and a regularized-incomplete-beta continued fraction carry all of
// the distribution theory), because the reproduction must run offline with no
// third-party numerical dependencies.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by estimators that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// ErrShortSample is returned by estimators that need more observations than
// they were given (e.g. variance of a single point).
var ErrShortSample = errors.New("stats: sample too small")

// ErrNaN is returned by the order-statistic family (Quantile, Percentile,
// Median, IQR, Summarize) when the sample contains a NaN: sorting places
// NaNs in unspecified positions, so quantiles of NaN-contaminated data
// would be nondeterministic garbage rather than a well-defined statistic.
var ErrNaN = errors.New("stats: sample contains NaN")

// ErrNonPositive is returned by estimators that are only defined on
// strictly positive samples (e.g. the geometric mean).
var ErrNonPositive = errors.New("stats: sample contains non-positive value")

// ErrInvalidQuantile is returned when a streaming quantile estimator is
// configured with a probability outside (0, 1).
var ErrInvalidQuantile = errors.New("stats: quantile probability outside (0, 1)")

// ErrInvalidBins is returned when a binned sketch is configured with an
// empty bin count or a degenerate (or, in log mode, non-positive) span.
var ErrInvalidBins = errors.New("stats: invalid bin configuration")

const ibetaEps = 1e-14

// LogBeta returns the natural log of the Beta function B(a, b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1], evaluated with the Lentz continued fraction
// (Numerical Recipes 6.4). It underpins the exact binomial tail and the
// Student-t CDF.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Front factor x^a (1-x)^b / (a B(a,b)).
	lnFront := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	front := math.Exp(lnFront)
	// Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
	// fraction in its rapidly converging region.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log1p(-x)+a*math.Log(x)-LogBeta(b, a))*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 300; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < ibetaEps {
			break
		}
	}
	return h
}

// NormalCDF returns the standard normal cumulative distribution Φ(z).
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), via the Acklam rational
// approximation refined with one Halley step (absolute error ≪ 1e-12).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// StudentTCDF returns the CDF of Student's t distribution with df degrees of
// freedom at t.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTQuantile returns the p-quantile of Student's t distribution with
// df degrees of freedom, by monotone bisection on the CDF (plenty fast for
// confidence-interval construction).
func StudentTQuantile(p, df float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 || df <= 0 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	// Bracket using the normal quantile scaled for heavy tails.
	z := NormalQuantile(p)
	lo, hi := z-1, z+1
	for StudentTCDF(lo, df) > p {
		lo = lo*2 - 1
	}
	for StudentTCDF(hi, df) < p {
		hi = hi*2 + 1
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if hi-lo < 1e-12*(1+math.Abs(mid)) {
			return mid
		}
		if StudentTCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
