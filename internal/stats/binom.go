package stats

import (
	"fmt"
	"math"
)

// Tail selects which alternative a binomial test evaluates.
type Tail int

const (
	// TailGreater tests H1: success probability > p0 (the paper's
	// one-tailed design: "H holds more often than chance").
	TailGreater Tail = iota
	// TailLess tests H1: success probability < p0.
	TailLess
	// TailTwoSided tests H1: success probability ≠ p0 (doubled smaller tail).
	TailTwoSided
)

// BinomialResult reports a binomial hypothesis test on k successes out of n
// trials against a null success probability P0.
type BinomialResult struct {
	N         int     // number of trials (matched pairs)
	Successes int     // trials where the hypothesis held
	P0        float64 // null success probability (0.5 throughout the paper)
	Fraction  float64 // observed success fraction
	P         float64 // p-value for the selected tail
	Tail      Tail
}

// String renders the result in the paper's reporting style.
func (r BinomialResult) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%), p=%s", r.Successes, r.N, 100*r.Fraction, FormatP(r.P))
}

// FormatP renders a p-value the way the paper's tables do: scientific
// notation below 1e-3, fixed decimals otherwise.
func FormatP(p float64) string {
	switch {
	case math.IsNaN(p):
		return "NaN"
	case p < 1e-3:
		return fmt.Sprintf("%.2e", p)
	default:
		return fmt.Sprintf("%.3g", p)
	}
}

// BinomialTest performs an exact binomial test of k successes in n trials
// against null probability p0. The upper tail P(X ≥ k) is computed through
// the regularized incomplete beta identity P(X ≥ k) = I_p0(k, n−k+1), which
// stays accurate for the n ≈ 10⁴ matched-pair counts in this study where
// naive summation of binomial pmf terms would underflow.
func BinomialTest(k, n int, p0 float64, tail Tail) (BinomialResult, error) {
	if n <= 0 {
		return BinomialResult{}, ErrEmpty
	}
	if k < 0 || k > n {
		return BinomialResult{}, fmt.Errorf("stats: %d successes out of %d trials", k, n)
	}
	if p0 <= 0 || p0 >= 1 {
		return BinomialResult{}, fmt.Errorf("stats: null probability %v outside (0,1)", p0)
	}
	res := BinomialResult{
		N:         n,
		Successes: k,
		P0:        p0,
		Fraction:  float64(k) / float64(n),
		Tail:      tail,
	}
	upper := binomUpperTail(k, n, p0)       // P(X >= k)
	lower := 1 - binomUpperTail(k+1, n, p0) // P(X <= k)
	switch tail {
	case TailGreater:
		res.P = upper
	case TailLess:
		res.P = lower
	case TailTwoSided:
		res.P = math.Min(1, 2*math.Min(upper, lower))
	default:
		return BinomialResult{}, fmt.Errorf("stats: unknown tail %d", tail)
	}
	return res, nil
}

// binomUpperTail returns P(X ≥ k) for X ~ Binomial(n, p).
func binomUpperTail(k, n int, p float64) float64 {
	switch {
	case k <= 0:
		return 1
	case k > n:
		return 0
	}
	return RegIncBeta(float64(k), float64(n-k+1), p)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), evaluated in log
// space so it is usable at large n.
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(ln - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// Significance encodes the paper's twofold decision rule (Sec. 2.3): a
// result must be statistically significant (p < 0.05) AND practically
// important (the hypothesis holds in at least 52% of pairs, guarding against
// the large-sample problem where trivial deviations reach significance).
type Significance struct {
	Statistical bool // p < alpha
	Practical   bool // fraction >= practical threshold
}

// Significant reports whether both criteria hold.
func (s Significance) Significant() bool { return s.Statistical && s.Practical }

// Alpha and PracticalMin are the thresholds used throughout the paper.
const (
	Alpha        = 0.05
	PracticalMin = 0.52
)

// Assess applies the paper's decision rule to a binomial result.
func (r BinomialResult) Assess() Significance {
	return Significance{
		Statistical: r.P < Alpha,
		Practical:   r.Fraction >= PracticalMin,
	}
}
