package stats_test

import (
	"fmt"

	"github.com/nwca/broadband/internal/stats"
	"github.com/nwca/broadband/internal/unit"
)

// The paper's core decision rule: a one-tailed binomial test on matched
// pairs plus the 52% practical-importance bar.
func ExampleBinomialTest() {
	// Table 1's peak-usage row: 70.3% of ~1000 pairs.
	res, err := stats.BinomialTest(703, 1000, 0.5, stats.TailGreater)
	if err != nil {
		panic(err)
	}
	fmt.Println(res)
	fmt.Println("significant:", res.Assess().Significant())
	// Output:
	// 703/1000 (70.3%), p=6.75e-39
	// significant: true
}

// The practical-importance rule rejects statistically significant but
// trivially small deviations.
func ExampleBinomialResult_Assess() {
	res, _ := stats.BinomialTest(51000, 100000, 0.5, stats.TailGreater)
	s := res.Assess()
	fmt.Printf("statistical=%v practical=%v significant=%v\n",
		s.Statistical, s.Practical, s.Significant())
	// Output:
	// statistical=true practical=false significant=false
}

// Capacity classes are the paper's (100 kbps × 2^(k−1), 100 kbps × 2^k]
// service bins.
func ExampleClassOf() {
	c := stats.ClassOf(unit.MbpsOf(10))
	fmt.Println(c)
	fmt.Println(c.Contains(unit.MbpsOf(12.8)), c.Contains(unit.MbpsOf(12.9)))
	// Output:
	// (6.4 Mbps, 12.8 Mbps]
	// true false
}

// ECDFs drive every "CDF of users" figure.
func ExampleECDF() {
	e, _ := stats.NewECDF([]float64{1, 2, 2, 4, 8})
	fmt.Printf("F(2) = %.1f, median = %.0f\n", e.Eval(2), e.Quantile(0.5))
	// Output:
	// F(2) = 0.6, median = 2
}

// MinDetectableFraction quantifies the paper's large-sample caution: at
// n = 100,000 pairs even a 50.4% deviation reaches significance.
func ExampleMinDetectableFraction() {
	f, _ := stats.MinDetectableFraction(100000, 0.05, 0.8)
	fmt.Printf("detectable fraction at n=100k: %.3f\n", f)
	// Output:
	// detectable fraction at n=100k: 0.504
}
