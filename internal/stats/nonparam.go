package stats

import (
	"math"
	"sort"
)

// Nonparametric tests used as robustness cross-checks on the paper's
// binomial designs: the Kolmogorov–Smirnov two-sample test quantifies the
// distributional separations the CDF figures show (India vs. the rest),
// Mann–Whitney U compares unpaired groups without normality assumptions,
// and the Wilcoxon signed-rank test strengthens the within-subject upgrade
// analysis by using effect magnitudes where the paper's sign-style binomial
// test uses directions only.

// KSResult reports a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D  float64 // maximum CDF separation
	P  float64 // asymptotic p-value (two-sided)
	N1 int
	N2 int
}

// KSTest performs the two-sample Kolmogorov–Smirnov test. The asymptotic
// Kolmogorov distribution is accurate for n1, n2 ≳ 20.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrEmpty
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		if sa[i] <= sb[j] {
			i++
		} else {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	n1, n2 := float64(len(sa)), float64(len(sb))
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProb(lambda), N1: len(sa), N2: len(sb)}, nil
}

// ksProb is the Kolmogorov survival function Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}.
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// UTestResult reports a Mann–Whitney U test.
type UTestResult struct {
	U float64 // statistic of sample a
	Z float64 // normal-approximation z-score (tie-corrected)
	P float64 // p-value for the selected tail
}

// MannWhitneyU tests whether values of a tend to exceed values of b, via
// the rank-sum statistic with the tie-corrected normal approximation
// (appropriate at the sample sizes of this study).
func MannWhitneyU(a, b []float64, tail Tail) (UTestResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return UTestResult{}, ErrEmpty
	}
	n1, n2 := float64(len(a)), float64(len(b))
	combined := make([]float64, 0, len(a)+len(b))
	combined = append(combined, a...)
	combined = append(combined, b...)
	r := ranks(combined)
	var ra float64
	for i := range a {
		ra += r[i]
	}
	u := ra - n1*(n1+1)/2
	mu := n1 * n2 / 2
	// Tie correction to the variance.
	tieSum := 0.0
	sorted := append([]float64(nil), combined...)
	sort.Float64s(sorted)
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			tieSum += t*t*t - t
		}
		i = j + 1
	}
	n := n1 + n2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if sigma2 <= 0 {
		return UTestResult{U: u, Z: 0, P: 1}, nil
	}
	z := (u - mu) / math.Sqrt(sigma2)
	res := UTestResult{U: u, Z: z}
	switch tail {
	case TailGreater:
		res.P = 1 - NormalCDF(z)
	case TailLess:
		res.P = NormalCDF(z)
	default:
		res.P = 2 * (1 - NormalCDF(math.Abs(z)))
	}
	return res, nil
}

// WilcoxonResult reports a Wilcoxon signed-rank test over paired samples.
type WilcoxonResult struct {
	WPlus float64 // rank sum of positive differences
	Z     float64
	P     float64
	N     int // non-zero differences used
}

// WilcoxonSignedRank tests whether paired differences (after − before) tend
// to be positive, with the normal approximation (valid for n ≳ 20). Zero
// differences are dropped, ties share average ranks.
func WilcoxonSignedRank(before, after []float64, tail Tail) (WilcoxonResult, error) {
	if len(before) != len(after) {
		return WilcoxonResult{}, ErrMismatched
	}
	var diffs []float64
	for i := range before {
		if d := after[i] - before[i]; d != 0 {
			diffs = append(diffs, d)
		}
	}
	if len(diffs) == 0 {
		return WilcoxonResult{}, ErrEmpty
	}
	abs := make([]float64, len(diffs))
	for i, d := range diffs {
		abs[i] = math.Abs(d)
	}
	r := ranks(abs)
	var wPlus float64
	for i, d := range diffs {
		if d > 0 {
			wPlus += r[i]
		}
	}
	n := float64(len(diffs))
	mu := n * (n + 1) / 4
	sigma := math.Sqrt(n * (n + 1) * (2*n + 1) / 24)
	z := (wPlus - mu) / sigma
	res := WilcoxonResult{WPlus: wPlus, Z: z, N: len(diffs)}
	switch tail {
	case TailGreater:
		res.P = 1 - NormalCDF(z)
	case TailLess:
		res.P = NormalCDF(z)
	default:
		res.P = 2 * (1 - NormalCDF(math.Abs(z)))
	}
	return res, nil
}

// BootstrapCI estimates a confidence interval for an arbitrary statistic by
// the percentile bootstrap. The resampling stream is supplied by next (a
// function returning uniform [0,1) draws) so callers control determinism.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, rounds int, next func() float64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if rounds <= 0 {
		rounds = 1000
	}
	if next == nil {
		return Interval{}, ErrShortSample
	}
	point := stat(xs)
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[int(next()*float64(len(xs)))]
		}
		estimates[r] = stat(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	lo := quantileSorted(estimates, alpha)
	hi := quantileSorted(estimates, 1-alpha)
	return Interval{Point: point, Lo: lo, Hi: hi, Level: level}, nil
}
