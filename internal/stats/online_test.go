package stats

import (
	"math"
	"testing"

	"github.com/nwca/broadband/internal/randx"
)

// lognormalSample draws a deterministic heavy-tailed sample shaped like the
// broadband metrics the sketches will meet (bitrates spanning decades).
func lognormalSample(n int, seed uint64) []float64 {
	rng := randx.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.LogNormalMedian(8, 1.1) // median 8 Mbps, wide spread
	}
	return xs
}

func TestMomentsMatchesTwoPass(t *testing.T) {
	t.Parallel()
	xs := lognormalSample(5000, 7)
	var m Moments
	if err := m.AddAll(xs); err != nil {
		t.Fatal(err)
	}
	wantMean, _ := Mean(xs)
	wantVar, _ := Variance(xs)
	wantLo, wantHi, _ := MinMax(xs)
	gotMean, err := m.Mean()
	if err != nil {
		t.Fatal(err)
	}
	gotVar, err := m.Variance()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(gotMean-wantMean) / wantMean; rel > 1e-12 {
		t.Errorf("Welford mean %v vs two-pass %v (rel %g)", gotMean, wantMean, rel)
	}
	if rel := math.Abs(gotVar-wantVar) / wantVar; rel > 1e-9 {
		t.Errorf("Welford variance %v vs two-pass %v (rel %g)", gotVar, wantVar, rel)
	}
	if lo, _ := m.Min(); lo != wantLo {
		t.Errorf("Min = %v, want %v", lo, wantLo)
	}
	if hi, _ := m.Max(); hi != wantHi {
		t.Errorf("Max = %v, want %v", hi, wantHi)
	}
	if m.N() != int64(len(xs)) {
		t.Errorf("N = %d, want %d", m.N(), len(xs))
	}
}

// TestMomentsMerge pins the shard-fold contract: accumulating a sample in
// one pass and merging per-chunk accumulators agree to floating-point
// association, for uneven chunk boundaries and empty chunks.
func TestMomentsMerge(t *testing.T) {
	t.Parallel()
	xs := lognormalSample(4001, 11)
	var whole Moments
	if err := whole.AddAll(xs); err != nil {
		t.Fatal(err)
	}
	bounds := []int{0, 17, 17, 1300, 4001} // includes an empty chunk
	var merged Moments
	for i := 0; i+1 < len(bounds); i++ {
		var part Moments
		if err := part.AddAll(xs[bounds[i]:bounds[i+1]]); err != nil {
			t.Fatal(err)
		}
		merged.Merge(&part)
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
	}
	wm, _ := whole.Mean()
	mm, _ := merged.Mean()
	if math.Abs(wm-mm)/wm > 1e-12 {
		t.Errorf("merged mean %v vs whole %v", mm, wm)
	}
	wv, _ := whole.Variance()
	mv, _ := merged.Variance()
	if math.Abs(wv-mv)/wv > 1e-9 {
		t.Errorf("merged variance %v vs whole %v", mv, wv)
	}
	wlo, _ := whole.Min()
	mlo, _ := merged.Min()
	whi, _ := whole.Max()
	mhi, _ := merged.Max()
	if wlo != mlo || whi != mhi {
		t.Errorf("merged range [%v,%v] vs whole [%v,%v]", mlo, mhi, wlo, whi)
	}
}

func TestMomentsEdge(t *testing.T) {
	t.Parallel()
	var m Moments
	if _, err := m.Mean(); err != ErrEmpty {
		t.Errorf("empty Mean err = %v, want ErrEmpty", err)
	}
	if err := m.Add(math.NaN()); err != ErrNaN {
		t.Errorf("Add(NaN) err = %v, want ErrNaN", err)
	}
	if m.N() != 0 {
		t.Errorf("rejected NaN still counted: N = %d", m.N())
	}
	if err := m.Add(4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Variance(); err != ErrShortSample {
		t.Errorf("single-point Variance err = %v, want ErrShortSample", err)
	}
	mean, err := m.Mean()
	if err != nil || mean != 4 {
		t.Errorf("single-point Mean = %v, %v; want 4, nil", mean, err)
	}
	// Merging an empty accumulator is a no-op in both directions.
	var empty Moments
	m.Merge(&empty)
	if m.N() != 1 {
		t.Errorf("merge of empty changed N to %d", m.N())
	}
	empty.Merge(&m)
	if got, _ := empty.Mean(); got != 4 {
		t.Errorf("merge into empty lost the state: mean %v", got)
	}
}

func TestP2AccuracyVsExact(t *testing.T) {
	t.Parallel()
	for _, n := range []int{50, 1000, 20000} {
		xs := lognormalSample(n, uint64(n))
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			est, err := NewP2(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				if err := est.Add(x); err != nil {
					t.Fatal(err)
				}
			}
			got, err := est.Quantile()
			if err != nil {
				t.Fatal(err)
			}
			want, err := Quantile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			// P² converges on smooth distributions; the band is far
			// looser than observed error at scale yet still catches a
			// broken marker update outright. Small heavy-tailed samples
			// are where P² is legitimately rough, so n=50 only gets a
			// sanity band.
			tol := 0.10
			if n < 1000 {
				tol = 0.40
			}
			if rel := math.Abs(got-want) / want; rel > tol {
				t.Errorf("P2(n=%d, p=%v) = %v, exact %v (rel %.3f)", n, p, got, want, rel)
			}
		}
	}
}

func TestP2SmallSamplesExact(t *testing.T) {
	t.Parallel()
	est, err := NewP2(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Quantile(); err != ErrEmpty {
		t.Errorf("empty Quantile err = %v, want ErrEmpty", err)
	}
	for _, x := range []float64{9, 1, 5} {
		if err := est.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	got, err := est.Quantile()
	if err != nil || got != 5 {
		t.Errorf("P2 median of {9,1,5} = %v, %v; want exact 5", got, err)
	}
	if err := est.Add(math.NaN()); err != ErrNaN {
		t.Errorf("Add(NaN) err = %v, want ErrNaN", err)
	}
	if est.N() != 3 {
		t.Errorf("rejected NaN still counted: N = %d", est.N())
	}
	for _, p := range []float64{0, 1, -0.3, 1.7, math.NaN()} {
		if _, err := NewP2(p); err != ErrInvalidQuantile {
			t.Errorf("NewP2(%v) err = %v, want ErrInvalidQuantile", p, err)
		}
	}
}

func TestOnlineECDFQuantileWithinBinResolution(t *testing.T) {
	t.Parallel()
	xs := lognormalSample(30000, 3)
	// Span chosen like the production sketches: generous decades around
	// the data with 2048 log bins → ≲0.7% relative bin width.
	e, err := NewOnlineECDF(0.01, 10000, 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if err := e.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	relWidth := math.Pow(10000/0.01, 1.0/2048) - 1
	for _, p := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		got, err := e.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Quantile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		// One bin of relative error is the declared worst case; allow two
		// for the interpolation at bin boundaries.
		if rel := math.Abs(got-want) / want; rel > 2*relWidth {
			t.Errorf("OnlineECDF.Quantile(%v) = %v, exact %v (rel %.5f > %.5f)",
				p, got, want, rel, 2*relWidth)
		}
	}
	// Extremes are exact: the sketch tracks true min/max.
	wantLo, wantHi, _ := MinMax(xs)
	if got, _ := e.Quantile(0); got != wantLo {
		t.Errorf("Quantile(0) = %v, want exact min %v", got, wantLo)
	}
	if got, _ := e.Quantile(1); got != wantHi {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, wantHi)
	}
}

func TestOnlineECDFEvalAgainstExact(t *testing.T) {
	t.Parallel()
	xs := lognormalSample(20000, 5)
	exact, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewOnlineECDF(0.01, 10000, 2048, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if err := e.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range []float64{0.5, 1, 2, 4, 8, 16, 40, 120} {
		got, want := e.Eval(x), exact.Eval(x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Eval(%v) = %v, exact %v", x, got, want)
		}
	}
	if got := e.Eval(0); got != 0 {
		t.Errorf("Eval below support = %v, want 0", got)
	}
	if got := e.Eval(1e12); got != 1 {
		t.Errorf("Eval above support = %v, want 1", got)
	}
}

// TestOnlineECDFMergeEquivalence pins the shard-fold contract for the
// binned ECDF: merging per-chunk sketches equals the single-pass sketch
// exactly (bin counts are integers — no tolerance needed).
func TestOnlineECDFMergeEquivalence(t *testing.T) {
	t.Parallel()
	xs := lognormalSample(9001, 13)
	mk := func() *OnlineECDF {
		e, err := NewOnlineECDF(0.01, 10000, 512, true)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	whole := mk()
	for _, x := range xs {
		if err := whole.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	merged := mk()
	bounds := []int{0, 0, 1234, 5000, 9001} // includes an empty chunk
	for i := 0; i+1 < len(bounds); i++ {
		part := mk()
		for _, x := range xs[bounds[i]:bounds[i+1]] {
			if err := part.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		a, _ := whole.Quantile(p)
		b, _ := merged.Quantile(p)
		if a != b {
			t.Errorf("Quantile(%v): whole %v != merged %v", p, a, b)
		}
	}
	// Mismatched configurations refuse to merge.
	other, err := NewOnlineECDF(0.01, 10000, 256, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.Merge(other); err != ErrMismatched {
		t.Errorf("Merge of mismatched config err = %v, want ErrMismatched", err)
	}
}

func TestOnlineECDFEdge(t *testing.T) {
	t.Parallel()
	for _, c := range []struct {
		lo, hi float64
		bins   int
		log    bool
	}{
		{1, 1, 8, false},      // degenerate span
		{5, 1, 8, false},      // inverted span
		{1, 10, 0, false},     // no bins
		{0, 10, 8, true},      // log mode needs positive lo
		{-1, 10, 8, true},     // log mode needs positive lo
		{math.NaN(), 1, 8, false},
	} {
		if _, err := NewOnlineECDF(c.lo, c.hi, c.bins, c.log); err != ErrInvalidBins {
			t.Errorf("NewOnlineECDF(%v,%v,%d,log=%v) err = %v, want ErrInvalidBins",
				c.lo, c.hi, c.bins, c.log, err)
		}
	}
	e, err := NewOnlineECDF(0, 1, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Quantile(0.5); err != ErrEmpty {
		t.Errorf("empty Quantile err = %v, want ErrEmpty", err)
	}
	if _, err := e.Curve(5); err != ErrEmpty {
		t.Errorf("empty Curve err = %v, want ErrEmpty", err)
	}
	if err := e.Add(math.NaN()); err != ErrNaN {
		t.Errorf("Add(NaN) err = %v, want ErrNaN", err)
	}
	if e.N() != 0 {
		t.Errorf("rejected NaN still counted: N = %d", e.N())
	}
	// Out-of-span values clamp into terminal bins but keep exact extrema.
	for _, x := range []float64{-3, 0.5, 9} {
		if err := e.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if lo, _ := e.Min(); lo != -3 {
		t.Errorf("Min = %v, want -3", lo)
	}
	if hi, _ := e.Max(); hi != 9 {
		t.Errorf("Max = %v, want 9", hi)
	}
	if got, _ := e.Quantile(0); got != -3 {
		t.Errorf("Quantile(0) = %v, want -3", got)
	}
	if got, _ := e.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) = %v, want 9", got)
	}
	pts, err := e.Curve(3)
	if err != nil || len(pts) != 3 || pts[0].X != -3 || pts[2].X != 9 {
		t.Errorf("Curve(3) = %v, %v", pts, err)
	}
}
