package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinomialTestExactSmall(t *testing.T) {
	// Fair coin, 9 heads out of 10: P(X>=9) = (10+1)/1024 = 0.0107421875.
	r, err := BinomialTest(9, 10, 0.5, TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "upper tail", r.P, 11.0/1024, 1e-12)
	// Lower tail of the same outcome: P(X<=9) = 1 - 1/1024.
	r, _ = BinomialTest(9, 10, 0.5, TailLess)
	almost(t, "lower tail", r.P, 1-1.0/1024, 1e-12)
	// Two-sided doubles the smaller tail.
	r, _ = BinomialTest(9, 10, 0.5, TailTwoSided)
	almost(t, "two-sided", r.P, 2*11.0/1024, 1e-12)
}

func TestBinomialTestDegenerate(t *testing.T) {
	r, err := BinomialTest(0, 10, 0.5, TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "k=0 upper", r.P, 1, 1e-12)
	r, _ = BinomialTest(10, 10, 0.5, TailGreater)
	almost(t, "k=n upper", r.P, math.Pow(0.5, 10), 1e-12)
	r, _ = BinomialTest(0, 10, 0.5, TailLess)
	almost(t, "k=0 lower", r.P, math.Pow(0.5, 10), 1e-12)
}

func TestBinomialTestErrors(t *testing.T) {
	if _, err := BinomialTest(1, 0, 0.5, TailGreater); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := BinomialTest(-1, 10, 0.5, TailGreater); err == nil {
		t.Error("negative k should error")
	}
	if _, err := BinomialTest(11, 10, 0.5, TailGreater); err == nil {
		t.Error("k>n should error")
	}
	if _, err := BinomialTest(5, 10, 0, TailGreater); err == nil {
		t.Error("p0=0 should error")
	}
	if _, err := BinomialTest(5, 10, 0.5, Tail(99)); err == nil {
		t.Error("unknown tail should error")
	}
}

func TestBinomialMatchesPaperScale(t *testing.T) {
	// The paper's Table 1: 66.8% of a large sample with p ≈ 1.94e-25.
	// Back out the implied n: for fraction 0.668, p≈2e-25 needs n ≈ 900.
	// We verify our test reproduces the same order of magnitude.
	n := 900
	k := int(0.668 * float64(n))
	r, err := BinomialTest(k, n, 0.5, TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-20 || r.P < 1e-30 {
		t.Errorf("p-value %v not in the expected 1e-25 regime", r.P)
	}
}

func TestBinomialAgainstNormalApproxProperty(t *testing.T) {
	// For large n the exact tail must agree with the continuity-corrected
	// normal approximation.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 500 + rng.IntN(5000)
		k := int(float64(n) * (0.45 + 0.1*rng.Float64()))
		r, err := BinomialTest(k, n, 0.5, TailGreater)
		if err != nil {
			return false
		}
		mu := 0.5 * float64(n)
		sd := math.Sqrt(float64(n) * 0.25)
		approx := 1 - NormalCDF((float64(k)-0.5-mu)/sd)
		return math.Abs(r.P-approx) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBinomialTailComplementProperty(t *testing.T) {
	// P(X >= k) + P(X <= k-1) = 1 exactly.
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 1 + rng.IntN(2000)
		k := 1 + rng.IntN(n)
		up, err1 := BinomialTest(k, n, 0.5, TailGreater)
		lo, err2 := BinomialTest(k-1, n, 0.5, TailLess)
		return err1 == nil && err2 == nil && math.Abs(up.P+lo.P-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMF(t *testing.T) {
	almost(t, "pmf(5,10,.5)", BinomialPMF(5, 10, 0.5), 252.0/1024, 1e-12)
	almost(t, "pmf(0,4,.5)", BinomialPMF(0, 4, 0.5), 1.0/16, 1e-12)
	if BinomialPMF(-1, 10, 0.5) != 0 || BinomialPMF(11, 10, 0.5) != 0 {
		t.Error("out-of-support pmf should be 0")
	}
	if BinomialPMF(0, 10, 0) != 1 || BinomialPMF(10, 10, 1) != 1 {
		t.Error("degenerate p should concentrate mass")
	}
	// PMF sums to 1.
	sum := 0.0
	for k := 0; k <= 30; k++ {
		sum += BinomialPMF(k, 30, 0.3)
	}
	almost(t, "pmf sum", sum, 1, 1e-9)
}

func TestSignificanceRule(t *testing.T) {
	// Statistically significant but practically unimportant: huge n, 51%.
	r, err := BinomialTest(51000, 100000, 0.5, TailGreater)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Assess()
	if !s.Statistical {
		t.Error("51% of 100k should be statistically significant")
	}
	if s.Practical || s.Significant() {
		t.Error("51% must fail the paper's 52% practical-importance rule")
	}
	// Both criteria met.
	r, _ = BinomialTest(60, 100, 0.5, TailGreater)
	if !r.Assess().Significant() {
		t.Error("60% of 100 should be significant on both criteria")
	}
	// Practically large but statistically weak (tiny n).
	r, _ = BinomialTest(3, 5, 0.5, TailGreater)
	s = r.Assess()
	if s.Statistical {
		t.Error("3/5 should not be statistically significant")
	}
	if !s.Practical {
		t.Error("60% should pass the practical threshold")
	}
}

func TestBinomialResultString(t *testing.T) {
	r, _ := BinomialTest(703, 1000, 0.5, TailGreater)
	s := r.String()
	if !strings.Contains(s, "703/1000") || !strings.Contains(s, "70.3%") {
		t.Errorf("String() = %q", s)
	}
	if FormatP(0.0166) != "0.0166" {
		t.Errorf("FormatP(0.0166) = %q", FormatP(0.0166))
	}
	if !strings.Contains(FormatP(1.94e-25), "e-25") {
		t.Errorf("FormatP(1.94e-25) = %q", FormatP(1.94e-25))
	}
	if FormatP(math.NaN()) != "NaN" {
		t.Error("FormatP(NaN)")
	}
}
