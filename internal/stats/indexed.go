package stats

import "math"

// Indexed aggregation entry points: the no-copy twins of Sum/Mean/Variance/
// StdDev/MinMax/MeanCI, consuming a column through an index vector (the
// dataset package's columnar views select rows as []int32). Each variant
// visits the selected elements in index order with exactly the arithmetic
// of its slice counterpart, so an aggregate over a view is bit-identical
// to first gathering the rows into a fresh slice and aggregating that —
// the property the golden artifacts pin.

// SumIdx returns the sum of xs at idx (0 for an empty selection).
func SumIdx(xs []float64, idx []int32) float64 {
	s := 0.0
	for _, i := range idx {
		s += xs[i]
	}
	return s
}

// MeanIdx returns the arithmetic mean of xs at idx.
func MeanIdx(xs []float64, idx []int32) (float64, error) {
	if len(idx) == 0 {
		return 0, ErrEmpty
	}
	return SumIdx(xs, idx) / float64(len(idx)), nil
}

// VarianceIdx returns the unbiased (n−1) sample variance of xs at idx.
func VarianceIdx(xs []float64, idx []int32) (float64, error) {
	if len(idx) < 2 {
		if len(idx) == 0 {
			return 0, ErrEmpty
		}
		return 0, ErrShortSample
	}
	m, _ := MeanIdx(xs, idx)
	ss := 0.0
	for _, i := range idx {
		d := xs[i] - m
		ss += d * d
	}
	return ss / float64(len(idx)-1), nil
}

// StdDevIdx returns the unbiased sample standard deviation of xs at idx.
func StdDevIdx(xs []float64, idx []int32) (float64, error) {
	v, err := VarianceIdx(xs, idx)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMaxIdx returns the smallest and largest of xs at idx.
func MinMaxIdx(xs []float64, idx []int32) (lo, hi float64, err error) {
	if len(idx) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[idx[0]], xs[idx[0]]
	for _, i := range idx[1:] {
		x := xs[i]
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// MeanCIIdx returns the Student-t confidence interval for the population
// mean of xs at idx at the given level.
func MeanCIIdx(xs []float64, idx []int32, level float64) (Interval, error) {
	if len(idx) == 0 {
		return Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	m, _ := MeanIdx(xs, idx)
	if len(idx) == 1 {
		return Interval{Point: m, Lo: m, Hi: m, Level: level}, nil
	}
	sd, err := StdDevIdx(xs, idx)
	if err != nil {
		return Interval{}, err
	}
	n := float64(len(idx))
	tcrit := StudentTQuantile(0.5+level/2, n-1)
	margin := tcrit * sd / math.Sqrt(n)
	return Interval{Point: m, Lo: m - margin, Hi: m + margin, Level: level}, nil
}
