package stats

import "math"

// Sum returns the sum of the sample (0 for an empty sample).
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of the sample.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// Variance returns the unbiased (n−1) sample variance.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		if len(xs) == 0 {
			return 0, ErrEmpty
		}
		return 0, ErrShortSample
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in the sample.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// GeoMean returns the geometric mean of a strictly positive sample. A
// sample containing a zero or negative value returns ErrNonPositive (the
// log-domain mean is undefined there — distinct from ErrShortSample, which
// signals too few observations).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, ErrNonPositive
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point float64 // the estimate (e.g. sample mean)
	Lo    float64 // lower confidence bound
	Hi    float64 // upper confidence bound
	Level float64 // confidence level, e.g. 0.95
}

// HalfWidth returns half the interval width, the ± margin used when drawing
// error bars (every figure in the paper shows 95% CIs of the mean).
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// MeanCI returns the Student-t confidence interval for the population mean
// at the given level (e.g. 0.95). A single observation yields a degenerate
// interval at the point.
func MeanCI(xs []float64, level float64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	m, _ := Mean(xs)
	if len(xs) == 1 {
		return Interval{Point: m, Lo: m, Hi: m, Level: level}, nil
	}
	sd, err := StdDev(xs)
	if err != nil {
		return Interval{}, err
	}
	n := float64(len(xs))
	tcrit := StudentTQuantile(0.5+level/2, n-1)
	margin := tcrit * sd / math.Sqrt(n)
	return Interval{Point: m, Lo: m - margin, Hi: m + margin, Level: level}, nil
}
