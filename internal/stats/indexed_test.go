package stats

import (
	"errors"
	"math"
	"testing"
)

// indexedFixture is a column plus a selection over it; the indexed
// aggregates must be bit-identical to their slice twins applied to the
// gathered values.
func indexedFixture() (xs []float64, idx []int32, gathered []float64) {
	xs = make([]float64, 200)
	for i := range xs {
		// Deterministic, irregular values spanning several magnitudes.
		xs[i] = math.Sin(float64(i)*1.7)*1e6 + float64(i%13)*0.003
	}
	for i := 3; i < len(xs); i += 7 {
		idx = append(idx, int32(i))
	}
	gathered = make([]float64, len(idx))
	for k, i := range idx {
		gathered[k] = xs[i]
	}
	return xs, idx, gathered
}

func TestIndexedAggregatesBitIdentical(t *testing.T) {
	xs, idx, g := indexedFixture()

	if got, want := SumIdx(xs, idx), Sum(g); got != want {
		t.Fatalf("SumIdx = %v, Sum = %v", got, want)
	}

	gotM, err1 := MeanIdx(xs, idx)
	wantM, err2 := Mean(g)
	if err1 != nil || err2 != nil || gotM != wantM {
		t.Fatalf("MeanIdx = %v (%v), Mean = %v (%v)", gotM, err1, wantM, err2)
	}

	gotV, err1 := VarianceIdx(xs, idx)
	wantV, err2 := Variance(g)
	if err1 != nil || err2 != nil || gotV != wantV {
		t.Fatalf("VarianceIdx = %v (%v), Variance = %v (%v)", gotV, err1, wantV, err2)
	}

	gotS, err1 := StdDevIdx(xs, idx)
	wantS, err2 := StdDev(g)
	if err1 != nil || err2 != nil || gotS != wantS {
		t.Fatalf("StdDevIdx = %v (%v), StdDev = %v (%v)", gotS, err1, wantS, err2)
	}

	gotLo, gotHi, err1 := MinMaxIdx(xs, idx)
	wantLo, wantHi, err2 := MinMax(g)
	if err1 != nil || err2 != nil || gotLo != wantLo || gotHi != wantHi {
		t.Fatalf("MinMaxIdx = (%v, %v), MinMax = (%v, %v)", gotLo, gotHi, wantLo, wantHi)
	}

	for _, level := range []float64{0.90, 0.95, 0.99} {
		gotCI, err1 := MeanCIIdx(xs, idx, level)
		wantCI, err2 := MeanCI(g, level)
		if err1 != nil || err2 != nil || gotCI != wantCI {
			t.Fatalf("level %v: MeanCIIdx = %+v (%v), MeanCI = %+v (%v)", level, gotCI, err1, wantCI, err2)
		}
	}
}

func TestIndexedAggregatesEdgeCases(t *testing.T) {
	xs := []float64{1, 2, 3}

	if _, err := MeanIdx(xs, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("MeanIdx(empty) err = %v, want ErrEmpty", err)
	}
	if _, _, err := MinMaxIdx(xs, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("MinMaxIdx(empty) err = %v, want ErrEmpty", err)
	}
	if _, err := VarianceIdx(xs, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("VarianceIdx(empty) err = %v, want ErrEmpty", err)
	}
	if _, err := VarianceIdx(xs, []int32{1}); !errors.Is(err, ErrShortSample) {
		t.Fatalf("VarianceIdx(n=1) err = %v, want ErrShortSample", err)
	}
	if _, err := MeanCIIdx(xs, nil, 0.95); !errors.Is(err, ErrEmpty) {
		t.Fatalf("MeanCIIdx(empty) err = %v, want ErrEmpty", err)
	}

	// n == 1: degenerate interval at the single point, same as MeanCI.
	gotCI, err := MeanCIIdx(xs, []int32{2}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	wantCI, err := MeanCI(xs[2:3], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if gotCI != wantCI {
		t.Fatalf("n=1: MeanCIIdx = %+v, MeanCI = %+v", gotCI, wantCI)
	}

	// Sparse duplicate indices are legal: the aggregate just visits the
	// row twice, like a gathered slice with the value repeated.
	dup := []int32{0, 0, 2}
	gd := []float64{xs[0], xs[0], xs[2]}
	gotV, _ := VarianceIdx(xs, dup)
	wantV, _ := Variance(gd)
	if gotV != wantV {
		t.Fatalf("duplicate idx: VarianceIdx = %v, Variance = %v", gotV, wantV)
	}
}
