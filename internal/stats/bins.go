package stats

import (
	"fmt"
	"math"

	"github.com/nwca/broadband/internal/unit"
)

// CapacityClass is the paper's service-class index k: class k contains
// download capacities in (100 kbps × 2^(k−1), 100 kbps × 2^k]. Class 1 is
// (100, 200] kbps; class 10 is (25.6, 51.2] Mbps.
type CapacityClass int

// capacityBase is the 100 kbps base of the class ladder.
const capacityBase = 100 * unit.Kbps

// ClassOf returns the capacity class containing rate. Rates at or below the
// base of the ladder map to class 1's lower neighbors (class ≤ 0 is possible
// for sub-100 kbps links and handled by callers that clamp).
func ClassOf(rate unit.Bitrate) CapacityClass {
	if rate <= 0 {
		return math.MinInt32
	}
	// Solve 100k·2^(k−1) < rate ≤ 100k·2^k for integer k.
	k := math.Ceil(math.Log2(float64(rate) / float64(capacityBase)))
	// Guard the boundary: floating error can push an exact power either way.
	c := CapacityClass(k)
	for rate <= c.Lower() {
		c--
	}
	for rate > c.Upper() {
		c++
	}
	return c
}

// Lower returns the exclusive lower bound of the class.
func (c CapacityClass) Lower() unit.Bitrate {
	return capacityBase * unit.Bitrate(math.Pow(2, float64(c-1)))
}

// Upper returns the inclusive upper bound of the class.
func (c CapacityClass) Upper() unit.Bitrate {
	return capacityBase * unit.Bitrate(math.Pow(2, float64(c)))
}

// Contains reports whether rate falls inside the class interval.
func (c CapacityClass) Contains(rate unit.Bitrate) bool {
	return rate > c.Lower() && rate <= c.Upper()
}

// String renders the class as its interval, e.g. "(6.4, 12.8] Mbps".
func (c CapacityClass) String() string {
	return fmt.Sprintf("(%s, %s]", formatMbps(c.Lower()), formatMbps(c.Upper()))
}

func formatMbps(r unit.Bitrate) string {
	v := r.Mbps()
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f Mbps", v)
	}
	return fmt.Sprintf("%.1f Mbps", v)
}

// GroupByClass partitions values by the capacity class of their keys,
// returning a map from class to the indices of members. Callers use the
// indices to slice their own parallel arrays.
func GroupByClass(rates []unit.Bitrate) map[CapacityClass][]int {
	groups := make(map[CapacityClass][]int)
	for i, r := range rates {
		if r <= 0 {
			continue
		}
		c := ClassOf(r)
		groups[c] = append(groups[c], i)
	}
	return groups
}

// Tier is a named capacity band used by the cross-country comparisons
// (Sec. 5): <1, 1–8, 8–16, 16–32 and >32 Mbps.
type Tier int

// The paper's five service tiers.
const (
	TierSub1 Tier = iota
	Tier1to8
	Tier8to16
	Tier16to32
	TierOver32
	numTiers
)

// TierOf returns the tier containing the rate.
func TierOf(rate unit.Bitrate) Tier {
	switch {
	case rate < 1*unit.Mbps:
		return TierSub1
	case rate < 8*unit.Mbps:
		return Tier1to8
	case rate < 16*unit.Mbps:
		return Tier8to16
	case rate < 32*unit.Mbps:
		return Tier16to32
	default:
		return TierOver32
	}
}

// Tiers lists all five tiers in ascending order.
func Tiers() []Tier {
	return []Tier{TierSub1, Tier1to8, Tier8to16, Tier16to32, TierOver32}
}

// String renders the tier the way the paper labels it.
func (t Tier) String() string {
	switch t {
	case TierSub1:
		return "<1 Mbps"
	case Tier1to8:
		return "1-8 Mbps"
	case Tier8to16:
		return "8-16 Mbps"
	case Tier16to32:
		return "16-32 Mbps"
	case TierOver32:
		return ">32 Mbps"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// LogBins builds n logarithmically spaced bin edges spanning [lo, hi],
// used to aggregate scatter data for the usage-vs-capacity figures.
func LogBins(lo, hi float64, n int) []float64 {
	if n < 1 || lo <= 0 || hi <= lo {
		return nil
	}
	edges := make([]float64, n+1)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i <= n; i++ {
		edges[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n))
	}
	edges[0], edges[n] = lo, hi // pin the ends against rounding
	return edges
}

// BinIndex returns the index of the bin (edges[i], edges[i+1]] containing v,
// or -1 when v is outside the covered range. Values equal to the lowest edge
// land in bin 0.
func BinIndex(edges []float64, v float64) int {
	if len(edges) < 2 || v < edges[0] || v > edges[len(edges)-1] {
		return -1
	}
	if v == edges[0] {
		return 0
	}
	lo, hi := 0, len(edges)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if v > edges[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
